package oasis

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"oasis/internal/faults"
	"oasis/internal/ssd"
)

// runClusterScenario builds the same two-pod rack with pod-local workloads
// and a cross-pod migration driver on either a serial or a partitioned
// cluster, runs a fixed span, and returns the workload transcript plus the
// full merged stats snapshot — both of which must not depend on the mode.
func runClusterScenario(t *testing.T, partitioned bool) (string, []byte, int64) {
	t.Helper()
	var c *Cluster
	if partitioned {
		c = NewPartitionedCluster()
	} else {
		c = NewCluster()
	}
	for i := 0; i < 2; i++ {
		cfg := DefaultConfig()
		p := c.AddPod(cfg)
		hA := p.AddHost()
		hB := p.AddHost()
		p.AddNIC(hB, false)
		p.AddSSD(hB, 1<<16)
		_ = hA
	}
	p0, p1 := c.Pod(0), c.Pod(1)
	inst := p0.AddInstance(p0.Hosts[0], IP(10, 0, 0, 10))
	vol := p0.AddVolume(inst, 1, 64)
	// Skew pod0 so the balancer has something to move.
	for i := 0; i < 2; i++ {
		p0.AddInstance(p0.Hosts[1], IP(10, 0, 3, byte(20+i)))
	}
	c.Start()

	// Each process logs into its own shard: shards from different
	// partitions fill concurrently, so a shared slice would record the
	// wall-clock interleaving (and race); per-process virtual timelines
	// are the mode-invariant artifact.
	logs := make([][]string, 4)
	data := bytes.Repeat([]byte{0xA7}, 8*ssd.BlockSize)
	// Pod-local seeding runs inside pod0's own execution domain.
	c.GoPod(0, "seeder", func(p *Proc) {
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("source volume not ready")
			return
		}
		if err := vol.Write(p, 0, data); err != nil {
			t.Errorf("seed write: %v", err)
			return
		}
		logs[0] = append(logs[0], fmt.Sprintf("%v seeded", p.Now()))
	})
	// Independent pod-local workers: these are what partitioned mode runs
	// in parallel. Their virtual timelines must be mode-invariant.
	for i := 0; i < 2; i++ {
		i := i
		c.GoPod(i, fmt.Sprintf("worker%d", i), func(p *Proc) {
			for n := 0; n < 4; n++ {
				p.Sleep(time.Duration(3+i) * time.Millisecond)
				logs[1+i] = append(logs[1+i], fmt.Sprintf("%v worker%d tick %d", p.Now(), i, n))
			}
		})
	}
	// The cross-pod driver is a mobile process: every pod touch hops.
	c.Go("balancer", func(p *Proc) {
		p.Sleep(10 * time.Millisecond) // let the seeder finish
		newInst, err := c.MigrateInstance(p, IP(10, 0, 0, 10), 1)
		if err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		logs[3] = append(logs[3], fmt.Sprintf("%v migrated", p.Now()))
		c.hop(p, p1)
		nv := newInst.Host().SFE.Volume(newInst.IPAddr())
		if nv == nil {
			t.Error("no volume on destination")
			return
		}
		got, err := nv.Read(p, 0, 8)
		if err != nil {
			t.Errorf("dest read: %v", err)
		} else if !bytes.Equal(got, data) {
			t.Error("migrated volume data mismatch")
		}
		logs[3] = append(logs[3], fmt.Sprintf("%v verified", p.Now()))
	})
	c.Run(80 * time.Millisecond)
	snap := c.Stats().JSON()
	migrations := c.Migrations
	c.Shutdown()
	var all []string
	for _, shard := range logs {
		all = append(all, shard...)
	}
	return strings.Join(all, "\n"), snap, migrations
}

// Serial and partitioned execution are two schedules of the same
// simulation: transcript, merged stats snapshot, and migration count must
// be byte-identical.
func TestPartitionedClusterMatchesSerial(t *testing.T) {
	serialLog, serialSnap, serialMig := runClusterScenario(t, false)
	partLog, partSnap, partMig := runClusterScenario(t, true)
	if serialMig != 1 || partMig != 1 {
		t.Fatalf("migrations: serial %d, partitioned %d, want 1", serialMig, partMig)
	}
	if !strings.Contains(serialLog, "verified") {
		t.Fatalf("scenario incomplete:\n%s", serialLog)
	}
	if serialLog != partLog {
		t.Fatalf("transcripts diverge:\n--- serial ---\n%s\n--- partitioned ---\n%s", serialLog, partLog)
	}
	if !bytes.Equal(serialSnap, partSnap) {
		t.Fatalf("stats snapshots diverge:\n--- serial ---\n%s\n--- partitioned ---\n%s", serialSnap, partSnap)
	}
}

// A partitioned cluster reports its shape and enforces the mobile-process
// contract on hop latency.
func TestPartitionedClusterShape(t *testing.T) {
	c := NewPartitionedCluster()
	if !c.Partitioned() || c.Partitions() != 1 {
		t.Fatalf("fresh partitioned cluster: Partitioned=%v Partitions=%d", c.Partitioned(), c.Partitions())
	}
	c.AddPod(DefaultConfig())
	c.AddPod(DefaultConfig())
	if c.Partitions() != 3 {
		t.Fatalf("2 pods: Partitions=%d, want 3 (control + one per pod)", c.Partitions())
	}
	s := NewCluster()
	if s.Partitioned() || s.Partitions() != 1 {
		t.Fatalf("serial cluster: Partitioned=%v Partitions=%d", s.Partitioned(), s.Partitions())
	}
}

// A fault plan that targets a pod while an instance is migrating into it
// must still route by pod index — the plan names rack positions, not
// instance locations — and whatever the fault does to the copy, the
// migration must either complete with the data intact or abort with the
// source instance fully restored (writes unfrozen).
func TestClusterFaultPlanMidMigrationRouting(t *testing.T) {
	const lbaCount = 2048 // long copy so the fault lands mid-flight
	c, p0, p1 := twoPodCluster(t)
	inst := p0.AddInstance(p0.Hosts[0], IP(10, 0, 0, 10))
	vol := p0.AddVolume(inst, 1, lbaCount)
	c.Start()

	data := bytes.Repeat([]byte{0x3C}, lbaCount*ssd.BlockSize)
	var migErr error
	var migrated *Instance
	finished := false
	c.Go("migrate", func(p *Proc) {
		defer c.Shutdown()
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("source volume not ready")
			return
		}
		chunk := p0.cfg.Storage.MaxBlocksPerRequest()
		for lba := 0; lba < lbaCount; lba += chunk {
			end := lba + chunk
			if end > lbaCount {
				end = lbaCount
			}
			if err := vol.Write(p, uint64(lba), data[lba*ssd.BlockSize:end*ssd.BlockSize]); err != nil {
				t.Errorf("seed write at lba %d: %v", lba, err)
				return
			}
		}
		start := p.Now()
		// Fire the destination-pod fault while the copy is in flight.
		if err := c.RunFaultPlan(faults.Plan{Name: "midmig", Events: []faults.Event{
			{At: start + 200*time.Microsecond, Kind: faults.SSDFail, Target: "pod1/ssd1", Heal: 30 * time.Millisecond},
		}}); err != nil {
			t.Errorf("mid-migration plan: %v", err)
			return
		}
		migrated, migErr = c.MigrateInstance(p, IP(10, 0, 0, 10), 1)
		finished = true
	})
	c.Run(5 * time.Second)
	if !finished {
		t.Fatal("migration scenario did not finish")
	}
	if c.Pod(1).Injector() == nil {
		t.Fatal("destination pod's injector never bound: plan was not routed by pod index")
	}
	if c.Pod(1).Injector().Injected(faults.SSDFail) != 1 {
		t.Fatalf("destination injector fired %d SSDFail events, want 1", c.Pod(1).Injector().Injected(faults.SSDFail))
	}
	if inj := c.Pod(0).Injector(); inj != nil && inj.Injected(faults.SSDFail) != 0 {
		t.Fatal("source pod received the destination-scoped fault")
	}
	if migErr == nil {
		// Completed despite the fault: data must be on pod1.
		if migrated == nil || migrated.topo != p1.Topology {
			t.Fatal("migration reported success but instance is not on pod1")
		}
	} else {
		// Aborted: typed error, source placement intact and writable again.
		if !errors.Is(migErr, ErrMigrationFailed) {
			t.Fatalf("migration failure not typed: %v", migErr)
		}
		if pod, _ := c.findInstance(IP(10, 0, 0, 10)); pod != p0 {
			t.Fatal("aborted migration lost the source placement")
		}
	}
}
