package oasis

import (
	"bytes"
	"encoding/binary"
	"errors"
	"strings"
	"testing"
	"time"

	"oasis/internal/faults"
	"oasis/internal/ssd"
)

// twoPodCluster builds a small two-pod rack: each pod has two hosts, one
// pooled NIC, and one pooled SSD; pod0 additionally carries a backup SSD
// so its volumes survive drive faults.
func twoPodCluster(t *testing.T) (*Cluster, *Pod, *Pod) {
	t.Helper()
	c := NewCluster()
	for i := 0; i < 2; i++ {
		cfg := DefaultConfig()
		p := c.AddPod(cfg)
		hA := p.AddHost()
		hB := p.AddHost()
		p.AddNIC(hB, false)
		p.AddSSD(hB, 1<<16)
		if i == 0 {
			p.AddBackupSSD(hA, 1<<16)
		}
	}
	return c, c.Pod(0), c.Pod(1)
}

func TestClusterPlacementLeastLoaded(t *testing.T) {
	c := NewCluster()
	// pod0: two usable NICs; pod1: one. Placement is instances-per-NIC, so
	// the first three placements should land pod0, pod0, pod1 (0/2 < 0/1;
	// 1/2 < 1/1 after a tie at 0.5 resolves to the lower index... walk it).
	for i := 0; i < 2; i++ {
		cfg := DefaultConfig()
		p := c.AddPod(cfg)
		hA := p.AddHost()
		hB := p.AddHost()
		p.AddNIC(hB, false)
		if i == 0 {
			p.AddNIC(hA, false)
		}
	}
	c.Start()
	var got []int
	for i := 0; i < 6; i++ {
		inst, err := c.PlaceInstanceErr(IP(10, 0, 1, byte(10+i)))
		if err != nil {
			t.Fatalf("place %d: %v", i, err)
		}
		got = append(got, inst.topo.podIndex)
	}
	// load after k placements on pod0 is k/2, pod1 is k/1. Greedy
	// least-loaded with low-index ties: 0,1,0,0,1,0.
	want := []int{0, 1, 0, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("placement sequence %v, want %v", got, want)
		}
	}
	if _, err := c.PlaceInstanceErr(IP(10, 0, 1, 10)); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate IP across pods: got %v, want ErrDuplicateNode", err)
	}
	c.Shutdown()
	c.Run(time.Millisecond)
}

func TestClusterMigrationPreservesData(t *testing.T) {
	c, p0, p1 := twoPodCluster(t)
	inst := p0.AddInstance(p0.Hosts[0], IP(10, 0, 0, 10))
	vol := p0.AddVolume(inst, 1, 64)
	c.Start()

	data := bytes.Repeat([]byte{0x5A}, 8*ssd.BlockSize)
	done := false
	c.Go("migrate", func(p *Proc) {
		defer c.Shutdown()
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("source volume not ready")
			return
		}
		if err := vol.Write(p, 0, data); err != nil {
			t.Errorf("seed write: %v", err)
			return
		}
		newInst, err := c.MigrateInstance(p, IP(10, 0, 0, 10), 1)
		if err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		if newInst.topo != p1.Topology {
			t.Error("migrated instance not on pod1")
		}
		nv := newInst.Host().SFE.Volume(newInst.IPAddr())
		if nv == nil {
			t.Error("no volume on destination")
			return
		}
		got, err := nv.Read(p, 0, 8)
		if err != nil {
			t.Errorf("dest read: %v", err)
		} else if !bytes.Equal(got, data) {
			t.Error("migrated volume data mismatch")
		}
		// Source placement must be gone.
		if pod, _ := c.findInstance(IP(10, 0, 0, 10)); pod != p1 {
			t.Error("instance still registered on source pod")
		}
		if p0.Hosts[0].SFE.Volume(IP(10, 0, 0, 10)) != nil {
			t.Error("source volume still registered")
		}
		done = true
	})
	c.Run(2 * time.Second)
	if !done {
		t.Fatal("migration scenario did not complete")
	}
	if c.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", c.Migrations)
	}
}

// TestClusterMigrationUnderChaosNoAckedWriteLost runs a writer against a
// pod0 volume while a fault plan tears at both pods (SSD failover, port
// flap, engine stall), migrates the instance to pod1 mid-stream, and then
// verifies on the destination that every block holds the data of the last
// acked write to it (or of a later write that errored — a failed write
// promised nothing). Writes rejected during the migration freeze were
// never acked, so the invariant is exactly "no acked write lost".
func TestClusterMigrationUnderChaosNoAckedWriteLost(t *testing.T) {
	const lbaCount = 16
	c, p0, _ := twoPodCluster(t)
	inst := p0.AddInstance(p0.Hosts[0], IP(10, 0, 0, 10))
	vol := p0.AddVolume(inst, 1, lbaCount)
	c.Start()

	plan := faults.Plan{
		Name: "cluster-migration-chaos",
		Seed: 7,
		Events: []faults.Event{
			{At: 2 * time.Millisecond, Kind: faults.SSDFail, Target: "pod0/ssd1", Heal: 3 * time.Millisecond},
			{At: 4 * time.Millisecond, Kind: faults.PortFlap, Target: "pod0/nic1", Heal: time.Millisecond},
			{At: 6 * time.Millisecond, Kind: faults.EngineStall, Target: "pod1/host1/be1", Heal: 2 * time.Millisecond},
			{At: 9 * time.Millisecond, Kind: faults.SSDFail, Target: "pod1/ssd1", Heal: 2 * time.Millisecond},
		},
	}
	if err := c.RunFaultPlan(plan); err != nil {
		t.Fatalf("schedule: %v", err)
	}

	fill := func(blk []byte, seq, lba uint64) {
		binary.BigEndian.PutUint64(blk, seq)
		pat := byte(seq) ^ byte(lba)
		for i := 8; i < len(blk); i++ {
			blk[i] = pat
		}
	}
	var (
		acked       [lbaCount]uint64
		failedAfter [lbaCount][]uint64
		ackedWrites int
		writerDone  bool
	)
	c.Go("writer", func(p *Proc) {
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("volume not ready")
			return
		}
		blk := make([]byte, ssd.BlockSize)
		for seq := uint64(1); p.Now() < 14*time.Millisecond; seq++ {
			lba := seq % lbaCount
			fill(blk, seq, lba)
			if err := vol.Write(p, lba, blk); err == nil {
				acked[lba] = seq
				failedAfter[lba] = failedAfter[lba][:0]
				ackedWrites++
			} else {
				failedAfter[lba] = append(failedAfter[lba], seq)
			}
			p.Sleep(40 * time.Microsecond)
		}
		writerDone = true
	})

	verified := false
	c.Go("migrator", func(p *Proc) {
		defer c.Shutdown()
		p.Sleep(8 * time.Millisecond) // mid-chaos, mid-writer
		newInst, err := c.MigrateInstance(p, IP(10, 0, 0, 10), 1)
		if err != nil {
			t.Errorf("migrate: %v", err)
			return
		}
		// Let the writer's tail (all failing against the dead source
		// volume) drain before checking the frozen acked state.
		for p.Now() < 15*time.Millisecond {
			p.Sleep(time.Millisecond)
		}
		nv := newInst.Host().SFE.Volume(newInst.IPAddr())
		if nv == nil {
			t.Error("no destination volume")
			return
		}
		for lba := uint64(0); lba < lbaCount; lba++ {
			want := acked[lba]
			if want == 0 {
				continue // never acked: nothing promised
			}
			got, err := nv.Read(p, lba, 1)
			if err != nil {
				t.Errorf("lba %d: read: %v", lba, err)
				continue
			}
			seq := binary.BigEndian.Uint64(got)
			ok := seq == want
			for _, f := range failedAfter[lba] {
				ok = ok || seq == f
			}
			pat := byte(seq) ^ byte(lba)
			for i := 8; ok && i < len(got); i++ {
				ok = got[i] == pat
			}
			if !ok {
				t.Errorf("lba %d: holds seq %d, want acked seq %d (acked write lost)", lba, seq, want)
			}
		}
		verified = true
	})
	c.Run(time.Second)
	if !verified || !writerDone {
		t.Fatalf("scenario incomplete: writerDone=%v verified=%v", writerDone, verified)
	}
	if ackedWrites == 0 {
		t.Fatal("writer never got an ack; scenario vacuous")
	}
}

// TestClusterMigrationAbortsOnDestinationSSDFail kills the destination
// pod's only SSD while a pre-copy migration is mid-flight (writer still
// streaming, dirty rounds in progress). The migration must abort cleanly:
// ErrMigrationFailed comes back, the half-built destination instance and
// volume are torn down, and the source volume is left intact — unfrozen,
// tracking disarmed, every previously-acked write still readable and new
// writes succeeding. Pod1 has no backup SSD, so the dirty-flush writes on
// the destination fail outright rather than failing over.
func TestClusterMigrationAbortsOnDestinationSSDFail(t *testing.T) {
	const lbaCount = 16
	c, p0, _ := twoPodCluster(t)
	ip := IP(10, 0, 0, 10)
	inst := p0.AddInstance(p0.Hosts[0], ip)
	vol := p0.AddVolume(inst, 1, lbaCount)
	c.Start()

	// No heal: the destination SSD stays dead for the rest of the run.
	plan := faults.Plan{
		Name: "migration-dest-ssd-fail",
		Seed: 11,
		Events: []faults.Event{
			{At: 8100 * time.Microsecond, Kind: faults.SSDFail, Target: "pod1/ssd1"},
		},
	}
	if err := c.RunFaultPlan(plan); err != nil {
		t.Fatalf("schedule: %v", err)
	}

	fill := func(blk []byte, seq, lba uint64) {
		binary.BigEndian.PutUint64(blk, seq)
		pat := byte(seq) ^ byte(lba)
		for i := 8; i < len(blk); i++ {
			blk[i] = pat
		}
	}
	var (
		acked       [lbaCount]uint64
		failedAfter [lbaCount][]uint64
		ackedWrites int
		writerDone  bool
	)
	c.Go("writer", func(p *Proc) {
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("volume not ready")
			return
		}
		blk := make([]byte, ssd.BlockSize)
		for seq := uint64(1); p.Now() < 16*time.Millisecond; seq++ {
			lba := seq % lbaCount
			fill(blk, seq, lba)
			if err := vol.Write(p, lba, blk); err == nil {
				acked[lba] = seq
				failedAfter[lba] = failedAfter[lba][:0]
				ackedWrites++
			} else {
				failedAfter[lba] = append(failedAfter[lba], seq)
			}
			p.Sleep(40 * time.Microsecond)
		}
		writerDone = true
	})

	verified := false
	c.Go("migrator", func(p *Proc) {
		defer c.Shutdown()
		p.Sleep(8 * time.Millisecond) // start the copy just before the fault
		_, err := c.MigrateInstance(p, ip, 1)
		if !errors.Is(err, ErrMigrationFailed) {
			t.Errorf("migrate: got %v, want ErrMigrationFailed", err)
			return
		}
		// The failure must come from the destination copy path, not from
		// volume setup — that is what makes this an abort mid-pre-copy.
		if !strings.Contains(err.Error(), "write") {
			t.Errorf("migrate failed outside the copy-write phase: %v", err)
		}
		t.Logf("migration aborted at %v: %v", p.Now(), err)
		// Source placement and volume must be intact, destination gone.
		if pod, _ := c.findInstance(ip); pod != p0 {
			t.Error("instance no longer registered on source pod")
		}
		if p0.Hosts[0].SFE.Volume(ip) == nil {
			t.Error("source volume gone after aborted migration")
		}
		if vol.Migrating() {
			t.Error("source volume still frozen after abort")
		}
		if vol.DirtyCount() != 0 {
			t.Error("dirty tracking still armed after abort")
		}
		// The copy-write stalls on the dead destination SSD until its
		// request timeout, so by the time the abort returns the writer has
		// long finished — its acked state is frozen and safe to verify.
		for lba := uint64(0); lba < lbaCount; lba++ {
			want := acked[lba]
			if want == 0 {
				continue
			}
			got, err := vol.Read(p, lba, 1)
			if err != nil {
				t.Errorf("lba %d: read: %v", lba, err)
				continue
			}
			seq := binary.BigEndian.Uint64(got)
			ok := seq == want
			for _, f := range failedAfter[lba] {
				ok = ok || seq == f
			}
			pat := byte(seq) ^ byte(lba)
			for i := 8; ok && i < len(got); i++ {
				ok = got[i] == pat
			}
			if !ok {
				t.Errorf("lba %d: holds seq %d, want acked seq %d (acked write lost)", lba, seq, want)
			}
		}
		// A fresh write against the recovered source volume must be acked:
		// the abort left it unfrozen and fully serviceable.
		blk := make([]byte, ssd.BlockSize)
		fill(blk, 1<<32, 0)
		if err := vol.Write(p, 0, blk); err != nil {
			t.Errorf("post-abort write on source: %v", err)
		}
		verified = true
	})
	c.Run(time.Second)
	if !verified || !writerDone {
		t.Fatalf("scenario incomplete: writerDone=%v verified=%v", writerDone, verified)
	}
	if ackedWrites == 0 {
		t.Fatal("writer never got an ack; scenario vacuous")
	}
	if c.Migrations != 0 {
		t.Fatalf("Migrations = %d after a failed migration, want 0", c.Migrations)
	}
}

func TestClusterFaultPlanRouting(t *testing.T) {
	c, _, _ := twoPodCluster(t)
	c.Start()
	// Unscoped targets must be rejected at the cluster layer.
	err := c.RunFaultPlan(faults.Plan{Name: "x", Events: []faults.Event{
		{At: time.Millisecond, Kind: faults.SSDFail, Target: "ssd1"},
	}})
	if err == nil || !strings.Contains(err.Error(), "pod scope") {
		t.Fatalf("unscoped target: got %v, want pod-scope error", err)
	}
	// Out-of-range pods too.
	err = c.RunFaultPlan(faults.Plan{Name: "x", Events: []faults.Event{
		{At: time.Millisecond, Kind: faults.SSDFail, Target: "pod7/ssd1"},
	}})
	if !errors.Is(err, ErrNoSuchPod) {
		t.Fatalf("pod7 target: got %v, want ErrNoSuchPod", err)
	}
	// Scoped events land on the right pod's injector.
	err = c.RunFaultPlan(faults.Plan{Name: "x", Events: []faults.Event{
		{At: time.Millisecond, Kind: faults.SSDFail, Target: "pod1/ssd1", Heal: time.Millisecond},
		{At: time.Millisecond, Kind: faults.PortFlap, Target: "pod0/nic1", Heal: time.Millisecond},
	}})
	if err != nil {
		t.Fatalf("scoped plan: %v", err)
	}
	if c.Pod(0).Injector() == nil || c.Pod(1).Injector() == nil {
		t.Fatal("scoped events did not bind both pod injectors")
	}
	c.Run(5 * time.Millisecond)
	c.Shutdown()
	c.Run(time.Millisecond)
}

func TestClusterStatsMergedAndScoped(t *testing.T) {
	c, _, _ := twoPodCluster(t)
	inst := c.PlaceInstance(IP(10, 0, 2, 10))
	c.Start()
	c.Go("app", func(p *Proc) {
		inst.WaitReady(p, 50*time.Millisecond)
		c.Shutdown()
	})
	c.Run(100 * time.Millisecond)
	s := c.Stats()
	seen := map[string]bool{}
	for i, pt := range s.Points {
		// Every metric embeds its pod scope (either leading, "pod0/alloc",
		// or after a type prefix, "core/pod0/host0/...").
		switch {
		case strings.Contains(pt.Name, "pod0/"):
			seen["pod0/"] = true
		case strings.Contains(pt.Name, "pod1/"):
			seen["pod1/"] = true
		default:
			t.Fatalf("unscoped metric %q in cluster snapshot", pt.Name)
		}
		if i > 0 {
			prev := s.Points[i-1]
			if pt.Name < prev.Name || (pt.Name == prev.Name && pt.Label < prev.Label) {
				t.Fatalf("snapshot not sorted at %d: %q/%q after %q/%q", i, pt.Name, pt.Label, prev.Name, prev.Label)
			}
		}
	}
	if !seen["pod0/"] || !seen["pod1/"] {
		t.Fatalf("merged snapshot missing a pod's metrics: %v", seen)
	}
}

func TestClusterRebalanceOnce(t *testing.T) {
	c, p0, p1 := twoPodCluster(t)
	// Load pod0 with three instances directly (bypassing the balanced
	// placement path) so the rack is visibly skewed.
	for i := 0; i < 3; i++ {
		p0.AddInstance(p0.Hosts[0], IP(10, 0, 3, byte(10+i)))
	}
	c.Start()
	moved := false
	c.Go("balance", func(p *Proc) {
		defer c.Shutdown()
		inst, err := c.RebalanceOnce(p, 1.5)
		if err != nil {
			t.Errorf("rebalance: %v", err)
			return
		}
		if inst == nil {
			t.Error("skewed cluster: rebalance moved nothing")
			return
		}
		if inst.topo != p1.Topology {
			t.Error("rebalance moved instance to the wrong pod")
		}
		moved = true
	})
	c.Run(time.Second)
	if !moved {
		t.Fatal("rebalance did not run")
	}
	if len(p0.instances) != 2 || len(p1.instances) != 1 {
		t.Fatalf("post-rebalance split %d/%d, want 2/1", len(p0.instances), len(p1.instances))
	}
}
