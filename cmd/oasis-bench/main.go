// Command oasis-bench regenerates the paper's tables and figures.
//
//	oasis-bench -list
//	oasis-bench -run all
//	oasis-bench -run fig6,fig13 -scale 0.5
//
// Each experiment prints the same rows/series the paper reports plus the
// paper's reference numbers; EXPERIMENTS.md records a full comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"oasis/internal/experiments"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	scale := flag.Float64("scale", 1.0, "measurement scale in (0,1]: shrinks windows/loads")
	values := flag.Bool("values", false, "also print machine-readable values")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := experiments.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "oasis-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "oasis-bench: nothing to run")
		os.Exit(2)
	}

	for _, id := range ids {
		runner, _ := experiments.Lookup(id)
		start := time.Now()
		report := runner(*scale)
		fmt.Print(report.String())
		if *values {
			for _, k := range sortedKeys(report.Values) {
				fmt.Printf("  value %s = %.4f\n", k, report.Values[k])
			}
		}
		fmt.Printf("(%s completed in %v wall time)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
