// Command oasis-bench regenerates the paper's tables and figures.
//
//	oasis-bench -list
//	oasis-bench -run all
//	oasis-bench -run fig6,fig13 -scale 0.5
//
// Each experiment prints the same rows/series the paper reports plus the
// paper's reference numbers; EXPERIMENTS.md records a full comparison.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"oasis/internal/experiments"
	"oasis/internal/par"
)

func main() {
	list := flag.Bool("list", false, "list experiment ids and exit")
	run := flag.String("run", "all", "comma-separated experiment ids, or 'all'")
	scale := flag.Float64("scale", 1.0, "measurement scale in (0,1]: shrinks windows/loads")
	values := flag.Bool("values", false, "also print machine-readable values")
	parallel := flag.Bool("parallel", false,
		"fan independent experiments and their inner sweeps out across all CPUs; "+
			"results are printed in the same order with identical bytes (only wall times differ)")
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var ids []string
	if *run == "all" {
		ids = experiments.IDs()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			if id == "" {
				continue
			}
			if _, ok := experiments.Lookup(id); !ok {
				fmt.Fprintf(os.Stderr, "oasis-bench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "oasis-bench: nothing to run")
		os.Exit(2)
	}

	workers := 1
	if *parallel {
		workers = runtime.GOMAXPROCS(0)
		experiments.SetParallelism(workers)
	}

	// Each experiment renders into its own buffer; buffers are flushed in
	// the requested order as soon as all earlier ones have finished, so the
	// byte stream matches a serial run line for line (wall times aside).
	outs := make([]string, len(ids))
	done := make([]chan struct{}, len(ids))
	for i := range done {
		done[i] = make(chan struct{})
	}
	go par.Do(workers, len(ids), func(i int) {
		defer close(done[i])
		runner, _ := experiments.Lookup(ids[i])
		var b strings.Builder
		start := time.Now()
		report := runner(*scale)
		b.WriteString(report.String())
		if *values {
			for _, k := range sortedKeys(report.Values) {
				fmt.Fprintf(&b, "  value %s = %.4f\n", k, report.Values[k])
			}
		}
		fmt.Fprintf(&b, "(%s completed in %v wall time)\n\n", ids[i], time.Since(start).Round(time.Millisecond))
		outs[i] = b.String()
	})
	for i := range ids {
		<-done[i]
		fmt.Print(outs[i])
	}
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
