// Command oasis-pod builds a custom pod, drives a workload through it, and
// prints the full stats report — the "kick the tires on my own topology"
// tool.
//
//	oasis-pod -hosts 4 -nics 2 -instances 6 -duration 200ms
//	oasis-pod -hosts 3 -nics 1 -backup -instances 2 -fail-at 100ms -duration 300ms
//	oasis-pod -hosts 2 -nics 1 -ssds 1 -instances 1 -workload kv
//	oasis-pod -hosts 2 -nics 1 -instances 1 -stats json > stats.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"oasis"
	"oasis/internal/instance"
)

func main() {
	hosts := flag.Int("hosts", 2, "pod hosts")
	nics := flag.Int("nics", 1, "pooled NICs (placed round-robin on hosts)")
	backup := flag.Bool("backup", false, "reserve an extra backup NIC on the last host")
	ssds := flag.Int("ssds", 0, "pooled SSDs")
	instances := flag.Int("instances", 1, "container instances (placed round-robin)")
	duration := flag.Duration("duration", 200*time.Millisecond, "virtual run length")
	workload := flag.String("workload", "echo", "echo | kv")
	rate := flag.Float64("rate", 20e3, "client request rate per instance (req/s)")
	failAt := flag.Duration("fail-at", 0, "inject a NIC-port failure on nic1 at this time (0 = never)")
	raft := flag.Bool("raft", false, "replicate the allocator with Raft (needs ≥3 hosts)")
	sharedCore := flag.Bool("shared-core", false, "multiplex each host's engine loops on one driver core (§5.1)")
	stats := flag.String("stats", "text", "stats output format: text | json | prom")
	flag.Parse()

	if *stats != "text" && *stats != "json" && *stats != "prom" {
		fmt.Fprintf(os.Stderr, "oasis-pod: unknown -stats format %q (want text, json, or prom)\n", *stats)
		os.Exit(2)
	}

	if *hosts < 1 || *nics < 1 || *instances < 1 {
		fmt.Fprintln(os.Stderr, "oasis-pod: need at least 1 host, 1 NIC, 1 instance")
		os.Exit(2)
	}

	cfg := oasis.DefaultConfig()
	cfg.Engine.IdleBackoff = 20 * time.Microsecond
	cfg.SharedHostCore = *sharedCore
	if *raft {
		cfg.RaftReplicas = 3
	}
	pod := oasis.NewPod(cfg)

	var hs []*oasis.Host
	for i := 0; i < *hosts; i++ {
		hs = append(hs, pod.AddHost())
	}
	var nicIDs []uint16
	for i := 0; i < *nics; i++ {
		n := pod.AddNIC(hs[i%len(hs)], false)
		nicIDs = append(nicIDs, n.ID)
	}
	if *backup {
		pod.AddNIC(hs[len(hs)-1], true)
	}
	var drives []uint16
	for i := 0; i < *ssds; i++ {
		d := pod.AddSSD(hs[(i+1)%len(hs)], 1<<18)
		drives = append(drives, d.ID)
	}
	var insts []*oasis.Instance
	var stores []*instance.Store
	for i := 0; i < *instances; i++ {
		in := pod.AddInstance(hs[i%len(hs)], oasis.IP(10, 0, 0, byte(10+i)))
		insts = append(insts, in)
		if *workload == "kv" && len(drives) > 0 {
			vol := pod.AddVolume(in, drives[i%len(drives)], 1<<14)
			store := instance.NewStore(vol, 3*time.Microsecond)
			stores = append(stores, store)
			v := vol
			inCopy := in
			pod.Go("kv-start", func(p *oasis.Proc) {
				if v.WaitReady(p, 100*time.Millisecond) {
					instance.ServeKV(pod.Eng, inCopy.Stack, 11211, store)
				}
			})
		}
	}
	client := pod.AddClient(oasis.IP(10, 0, 99, 1))
	pod.Start()
	for _, in := range insts {
		in.RequestAllocation()
	}
	if *failAt > 0 && len(nicIDs) > 0 {
		at := *failAt
		pod.Eng.At(at, func() {
			fmt.Printf("t=%v: failing nic%d's switch port\n", at, nicIDs[0])
			pod.FailNICPort(nicIDs[0])
		})
	}

	switch *workload {
	case "echo":
		for _, in := range insts {
			in := in
			pod.Go("echo", func(p *oasis.Proc) {
				conn, err := in.Stack.ListenUDP(7)
				if err != nil {
					return
				}
				for {
					dg := conn.Recv(p)
					if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
						return
					}
				}
			})
		}
		sent, recv := 0, 0
		pod.Go("client", func(p *oasis.Proc) {
			conn, err := client.Stack.ListenUDP(0)
			if err != nil {
				return
			}
			p.Sleep(5 * time.Millisecond)
			interval := oasis.Duration(float64(time.Second) / (*rate * float64(len(insts))))
			for p.Now() < *duration {
				for _, in := range insts {
					sent++
					if conn.SendTo(p, in.IPAddr(), 7, []byte("probe-payload")) != nil {
						continue
					}
					if _, ok := conn.RecvTimeout(p, 5*time.Millisecond); ok {
						recv++
					}
					p.Sleep(interval)
				}
			}
			pod.Shutdown()
		})
		pod.Run(*duration + 5*time.Second)
		fmt.Printf("echo: %d sent, %d received (%.2f%% loss)\n",
			sent, recv, 100*float64(sent-recv)/float64(max(sent, 1)))
	case "kv":
		if len(stores) == 0 {
			fmt.Fprintln(os.Stderr, "oasis-pod: -workload kv needs -ssds >= 1")
			os.Exit(2)
		}
		ops := 0
		pod.Go("client", func(p *oasis.Proc) {
			p.Sleep(10 * time.Millisecond)
			kv, err := instance.DialKV(p, client.Stack, insts[0].IPAddr(), 11211)
			if err != nil {
				pod.Shutdown()
				return
			}
			for p.Now() < *duration {
				key := fmt.Sprintf("k%04d", ops%512)
				if ops%3 == 0 {
					if kv.Set(p, key, []byte("value")) == nil {
						ops++
					}
				} else {
					if _, _, err := kv.Get(p, key); err == nil {
						ops++
					}
				}
			}
			pod.Shutdown()
		})
		pod.Run(*duration + 5*time.Second)
		fmt.Printf("kv: %d operations (sets persisted to the pooled SSD)\n", ops)
	default:
		fmt.Fprintf(os.Stderr, "oasis-pod: unknown workload %q\n", *workload)
		os.Exit(2)
	}
	snap := pod.Stats()
	switch *stats {
	case "json":
		os.Stdout.Write(snap.JSON())
		fmt.Println()
	case "prom":
		fmt.Print(snap.PromText())
	default:
		fmt.Print(snap.String())
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
