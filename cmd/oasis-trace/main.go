// Command oasis-trace generates and inspects the synthetic workload traces
// that stand in for the paper's production Azure traces.
//
//	oasis-trace -kind packets -peak 0.39 -span 1s        # bursty NIC trace
//	oasis-trace -kind packets -rack A                    # Table 2's rack A set
//	oasis-trace -kind alloc -hosts 512                   # stranding inputs
//	oasis-trace -kind packets -series                    # 10 µs bandwidth series (Fig. 3)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"oasis/internal/strand"
	"oasis/internal/trace"
)

func main() {
	kind := flag.String("kind", "packets", "packets | alloc")
	span := flag.Duration("span", time.Second, "packet trace length")
	peak := flag.Float64("peak", 0.39, "burst (P99.99) utilization target")
	mean := flag.Float64("mean", 0.0026, "mean utilization target")
	link := flag.Float64("link", 100e9, "link rate, bits/s")
	seed := flag.Int64("seed", 1, "generator seed")
	rack := flag.String("rack", "", "generate a Table 2 rack set: A or B")
	series := flag.Bool("series", false, "dump the 10 µs bandwidth series (Fig. 3 data)")
	hosts := flag.Int("hosts", 512, "alloc: hosts to fill")
	flag.Parse()

	switch *kind {
	case "packets":
		if *rack != "" {
			var traces []*trace.PacketTrace
			var linkBps float64
			switch *rack {
			case "A":
				traces, linkBps = trace.RackA(*span), 100e9
			case "B":
				traces, linkBps = trace.RackB(*span), 50e9
			default:
				fmt.Fprintln(os.Stderr, "oasis-trace: -rack must be A or B")
				os.Exit(2)
			}
			bucket := 10 * time.Microsecond
			for i, tr := range traces {
				fmt.Printf("host %d: %7d packets, mean %.4f, P99 %.3f, P99.99 %.3f\n",
					i+1, len(tr.Events), tr.MeanUtil(),
					tr.UtilizationAt(99, bucket), tr.UtilizationAt(99.99, bucket))
			}
			agg := trace.Merge(4*linkBps, traces...)
			fmt.Printf("aggregated P99.99 over 4 hosts: %.3f\n", agg.UtilizationAt(99.99, bucket))
			return
		}
		cfg := trace.BurstyConfig{
			Span: *span, LinkBps: *link, PeakUtil: *peak, MeanUtil: *mean,
			BurstMean: 120 * time.Microsecond, Seed: *seed,
		}
		tr := trace.GenBursty(cfg)
		bucket := 10 * time.Microsecond
		fmt.Printf("packets: %d, bytes: %d, mean util %.4f, P99 %.3f, P99.99 %.3f\n",
			len(tr.Events), tr.TotalBytes(), tr.MeanUtil(),
			tr.UtilizationAt(99, bucket), tr.UtilizationAt(99.99, bucket))
		if *series {
			s := tr.BandwidthSeries(bucket)
			for i := 0; i < s.Len(); i++ {
				if v := s.At(i); v > 0 {
					gbps := v * 8 / bucket.Seconds() / 1e9
					fmt.Printf("%d\t%.3f\n", i*10, gbps) // µs, Gbps
				}
			}
		}
	case "alloc":
		cfg := strand.DefaultConfig()
		cfg.Hosts = *hosts
		demands := strand.FillHosts(cfg)
		var cpu, mem, nicD, ssd float64
		for _, d := range demands {
			cpu += d.CPU
			mem += d.Mem
			nicD += d.NIC
			ssd += d.SSD
		}
		n := float64(len(demands))
		fmt.Printf("hosts: %d, avg demand per host: cpu %.1f cores, mem %.1f GB, nic %.1f Gbps, ssd %.0f GB\n",
			len(demands), cpu/n, mem/n, nicD/n, ssd/n)
		shape := cfg.Shape
		fmt.Printf("avg utilization: cpu %.1f%%, mem %.1f%%, nic %.1f%%, ssd %.1f%%\n",
			100*cpu/n/shape.CPU, 100*mem/n/shape.Mem, 100*nicD/n/shape.NIC, 100*ssd/n/shape.SSD)
	default:
		fmt.Fprintln(os.Stderr, "oasis-trace: -kind must be packets or alloc")
		os.Exit(2)
	}
}
