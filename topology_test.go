package oasis

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// --- topology mutation edges ---

func TestRemoveHostWithLiveInstances(t *testing.T) {
	pod := NewPod(DefaultConfig())
	h0 := pod.AddHost()
	h1 := pod.AddHost()
	h2 := pod.AddHost()
	h3 := pod.AddHost() // safely removable: no allocator, no raft replica
	_ = h2
	pod.AddNIC(h1, false)
	inst := pod.AddInstance(h3, IP(10, 0, 0, 10))

	if err := pod.RemoveHostErr(h3); !errors.Is(err, ErrHostNotEmpty) {
		t.Fatalf("remove host with live instance: got %v, want ErrHostNotEmpty", err)
	}
	if err := pod.RemoveHostErr(h0); !errors.Is(err, ErrNodeInUse) {
		t.Fatalf("remove allocator host: got %v, want ErrNodeInUse", err)
	}
	if err := pod.RemoveHostErr(h1); !errors.Is(err, ErrHostNotEmpty) {
		t.Fatalf("remove NIC backend host: got %v, want ErrHostNotEmpty", err)
	}
	if err := pod.RemoveInstanceErr(inst); err != nil {
		t.Fatalf("remove instance: %v", err)
	}
	if err := pod.RemoveHostErr(h3); err != nil {
		t.Fatalf("remove emptied host: %v", err)
	}
	if !h3.Removed() {
		t.Fatal("host not marked removed")
	}
	if err := pod.RemoveHostErr(h3); !errors.Is(err, ErrNoSuchNode) {
		t.Fatalf("double host removal: got %v, want ErrNoSuchNode", err)
	}
	// Host slots stay index-stable after removal.
	if len(pod.Hosts) != 4 || pod.Hosts[3] != h3 {
		t.Fatal("removal perturbed host indices")
	}
}

func TestDoubleAddSameID(t *testing.T) {
	pod := NewPod(DefaultConfig())
	h := pod.AddHost()
	pod.AddNIC(h, false)
	pod.AddInstance(h, IP(10, 0, 0, 10))
	if _, err := pod.AddInstanceErr(h, IP(10, 0, 0, 10)); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("duplicate instance IP: got %v, want ErrDuplicateNode", err)
	}
	// Removal releases the id for reuse.
	inst := pod.instances[0]
	if err := pod.RemoveInstanceErr(inst); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := pod.AddInstanceErr(h, IP(10, 0, 0, 10)); err != nil {
		t.Fatalf("re-add after removal: %v", err)
	}
}

// TestAddDeviceAfterRunStarted verifies the incremental path end-to-end:
// a NIC and an instance added after virtual time has already advanced get
// wired into the live pod and carry real traffic.
func TestAddDeviceAfterRunStarted(t *testing.T) {
	pod := NewPod(DefaultConfig())
	hA := pod.AddHost()
	hB := pod.AddHost()
	pod.AddNIC(hB, false)
	client := pod.AddClient(IP(10, 0, 99, 1))
	pod.Start()
	pod.Run(5 * time.Millisecond) // the pod is live; time has passed

	hC, err := pod.AddHostErr()
	if err != nil {
		t.Fatalf("late AddHost: %v", err)
	}
	if _, err := pod.AddNICErr(hC, false); err != nil {
		t.Fatalf("late AddNIC: %v", err)
	}
	inst, err := pod.AddInstanceErr(hA, IP(10, 0, 0, 20))
	if err != nil {
		t.Fatalf("late AddInstance: %v", err)
	}
	inst.RequestAllocation()

	echoed := false
	pod.Go("late-echo", func(p *Proc) {
		if !inst.WaitReady(p, 100*time.Millisecond) {
			t.Error("late instance never became ready")
			pod.Shutdown()
			return
		}
		conn, err := inst.Stack.ListenUDP(7)
		if err != nil {
			t.Errorf("listen: %v", err)
			pod.Shutdown()
			return
		}
		dg := conn.Recv(p)
		conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data)
	})
	pod.Go("late-client", func(p *Proc) {
		defer pod.Shutdown()
		conn, err := client.Stack.ListenUDP(0)
		if err != nil {
			return
		}
		p.Sleep(2 * time.Millisecond)
		for try := 0; try < 20 && !echoed; try++ {
			if conn.SendTo(p, inst.IPAddr(), 7, []byte("late")) != nil {
				continue
			}
			if _, ok := conn.RecvTimeout(p, 2*time.Millisecond); ok {
				echoed = true
			}
		}
	})
	pod.Run(time.Second)
	if !echoed {
		t.Fatal("late-added instance carried no traffic")
	}
}

// --- wrapper equivalence ---

// TestPanicWrappersMatchErrForms pins down that the legacy panic wrappers
// are pure pass-throughs: a pod built with AddHost/AddNIC/... and one
// built with the Err forms run the same workload to byte-identical
// observability snapshots.
func TestPanicWrappersMatchErrForms(t *testing.T) {
	workload := func(pod *Pod, inst *Instance, client *Client) []byte {
		pod.Start()
		inst.RequestAllocation()
		pod.Go("echo", func(p *Proc) {
			if !inst.WaitReady(p, 100*time.Millisecond) {
				return
			}
			conn, err := inst.Stack.ListenUDP(7)
			if err != nil {
				return
			}
			for {
				dg := conn.Recv(p)
				if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
					return
				}
			}
		})
		pod.Go("client", func(p *Proc) {
			defer pod.Shutdown()
			conn, err := client.Stack.ListenUDP(0)
			if err != nil {
				return
			}
			p.Sleep(2 * time.Millisecond)
			for i := 0; i < 50; i++ {
				if conn.SendTo(p, inst.IPAddr(), 7, []byte("ping")) != nil {
					continue
				}
				conn.RecvTimeout(p, 2*time.Millisecond)
			}
		})
		pod.Run(time.Second)
		return pod.Stats().JSON()
	}

	viaPanic := func() []byte {
		pod := NewPod(DefaultConfig())
		hA := pod.AddHost()
		hB := pod.AddHost()
		pod.AddNIC(hB, false)
		pod.AddSSD(hB, 1<<12)
		inst := pod.AddInstance(hA, IP(10, 0, 0, 10))
		pod.AddVolume(inst, 1, 16)
		client := pod.AddClient(IP(10, 0, 99, 1))
		return workload(pod, inst, client)
	}
	viaErr := func() []byte {
		pod := NewPod(DefaultConfig())
		hA, err := pod.AddHostErr()
		if err != nil {
			t.Fatal(err)
		}
		hB, err := pod.AddHostErr()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pod.AddNICErr(hB, false); err != nil {
			t.Fatal(err)
		}
		if _, err := pod.AddSSDErr(hB, 1<<12); err != nil {
			t.Fatal(err)
		}
		inst, err := pod.AddInstanceErr(hA, IP(10, 0, 0, 10))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pod.AddVolumeErr(inst, 1, 16); err != nil {
			t.Fatal(err)
		}
		client, err := pod.AddClientErr(IP(10, 0, 99, 1))
		if err != nil {
			t.Fatal(err)
		}
		return workload(pod, inst, client)
	}

	a, b := viaPanic(), viaErr()
	if !bytes.Equal(a, b) {
		t.Fatalf("panic-wrapper pod and Err-form pod diverged:\n--- wrappers ---\n%s\n--- Err forms ---\n%s", a, b)
	}
}
