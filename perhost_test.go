package oasis

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"oasis/internal/metrics"
)

// buildPerHostEchoPod is buildEchoPod's per-host twin: the pod core on
// partition 0, the client on a partition of its own behind a RemotePort.
func buildPerHostEchoPod() *echoPod {
	cfg := DefaultConfig()
	pod := NewPerHostPod(cfg)
	hostA := pod.AddHost()
	hostB := pod.AddHost()
	n1 := pod.AddNIC(hostB, false)
	e := &echoPod{pod: pod, hostA: hostA, hostB: hostB, nic1: n1}
	e.inst = pod.AddInstance(hostA, IP(10, 0, 0, 10))
	e.client = pod.AddClient(IP(10, 0, 99, 1))
	pod.Start()
	return e
}

// perHostEchoRun drives one fixed-length per-host echo run and returns its
// observable timeline: every RTT plus the final clock. Per-host runs are
// fixed-length with an external Shutdown — a mid-window Shutdown from
// inside a partition is not a single global instant.
func perHostEchoRun(t *testing.T) (rtts []time.Duration, end Duration) {
	e := buildPerHostEchoPod()
	e.inst.RequestAllocation()
	e.startEchoServer(t)
	payload := bytes.Repeat([]byte{0xEE}, 64)
	e.client.Go("client", func(p *Proc) {
		conn, _ := e.client.Stack.ListenUDP(0)
		p.Sleep(2 * time.Millisecond) // registration warmup
		for i := 0; i < 20; i++ {
			start := p.Now()
			if err := conn.SendTo(p, e.inst.IPAddr(), 7, payload); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			dg, ok := conn.RecvTimeout(p, 10*time.Millisecond)
			if !ok {
				t.Errorf("echo %d timed out", i)
				return
			}
			if !bytes.Equal(dg.Data, payload) {
				t.Errorf("echo %d corrupted", i)
				return
			}
			rtts = append(rtts, p.Now()-start)
			p.Sleep(100 * time.Microsecond)
		}
	})
	end = e.pod.Run(50 * time.Millisecond)
	e.pod.Shutdown()
	return rtts, end
}

// TestPerHostPodUDPEcho runs the evaluation echo flow with the client on
// its own partition: the datapath must work end to end through the
// RemotePort relay, and the RTT must stay in the same low-µs regime as the
// single-engine pod (the remote attachment adds ~1.4 µs of cable both
// ways).
func TestPerHostPodUDPEcho(t *testing.T) {
	rtts, _ := perHostEchoRun(t)
	if len(rtts) != 20 {
		t.Fatalf("completed %d echoes, want 20", len(rtts))
	}
	med := metrics.ExactPercentile(rtts, 50)
	if med < time.Microsecond || med > 40*time.Microsecond {
		t.Fatalf("median RTT = %v, want low µs", med)
	}
	t.Logf("per-host echo RTT: median=%v", med)
}

// TestPerHostPodDeterministic re-runs the per-host echo flow and insists
// the full RTT timeline is byte-identical: partitioned execution's windows
// derive purely from virtual state, so worker interleaving must not leak.
// verify.sh re-runs this at GOMAXPROCS=1, 2, and 8.
func TestPerHostPodDeterministic(t *testing.T) {
	trace := func() string {
		rtts, end := perHostEchoRun(t)
		return fmt.Sprintf("%v@%v", rtts, end)
	}
	a, b := trace(), trace()
	if a != b {
		t.Fatalf("per-host pod not deterministic across reruns:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// TestPerHostPodShape checks the partition layout: pod core + one
// partition per client.
func TestPerHostPodShape(t *testing.T) {
	pod := NewPerHostPod(DefaultConfig())
	if !pod.PerHost() || pod.Group() == nil {
		t.Fatal("NewPerHostPod did not enter per-host mode")
	}
	pod.AddHost()
	if got := pod.Group().Partitions(); got != 1 {
		t.Fatalf("pod core alone should be 1 partition, got %d", got)
	}
	c1 := pod.AddClient(IP(10, 0, 99, 1))
	c2 := pod.AddClient(IP(10, 0, 99, 2))
	if !c1.Remote() || !c2.Remote() {
		t.Fatal("per-host clients should attach remotely")
	}
	if got := pod.Group().Partitions(); got != 3 {
		t.Fatalf("pod + 2 clients should be 3 partitions, got %d", got)
	}
}

// TestPerHostGuestChannel exercises a guest-compute partition: a guest
// process ping-pongs RPCs with a pod-side responder over the CXL-pool
// channel, whose latency is the pool's intrinsic cross-host minimum.
func TestPerHostGuestChannel(t *testing.T) {
	pod := NewPerHostPod(DefaultConfig())
	h := pod.AddHost()
	g := pod.AddGuest(h)
	if got := pod.Group().Partitions(); got != 2 {
		t.Fatalf("pod + guest should be 2 partitions, got %d", got)
	}
	if lat := g.Chan.Latency(); lat != pod.Pool.CrossLatency() {
		t.Fatalf("guest channel latency = %v, want pool cross latency %v", lat, pod.Pool.CrossLatency())
	}
	pod.Start()
	pod.Go("responder", func(p *Proc) {
		for {
			if msg, ok := g.PodChan.Poll(p); ok {
				g.PodChan.Send(p, msg)
			} else {
				p.Sleep(5 * time.Microsecond)
			}
		}
	})
	roundTrips := 0
	g.Go("guest", func(p *Proc) {
		deadline := 5 * Duration(time.Millisecond)
		for p.Now() < deadline {
			g.Chan.Send(p, []byte("ping"))
			for {
				if _, ok := g.Chan.Poll(p); ok {
					roundTrips++
					break
				}
				if p.Now() >= deadline {
					return
				}
				p.Sleep(5 * time.Microsecond)
			}
		}
	})
	pod.Run(10 * time.Millisecond)
	pod.Shutdown()
	if roundTrips < 10 {
		t.Fatalf("guest completed %d round trips, want >= 10", roundTrips)
	}
}

// TestAddGuestNeedsPerHostPod: a serial pod has no partition group for a
// guest to join.
func TestAddGuestNeedsPerHostPod(t *testing.T) {
	pod := NewPod(DefaultConfig())
	h := pod.AddHost()
	if _, err := pod.AddGuestErr(h); err == nil {
		t.Fatal("AddGuestErr on a serial pod should fail")
	}
}
