GO ?= go

.PHONY: all build vet test race verify bench fmt

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The simulation is single-threaded by design (one cooperative engine), so
# the race detector only has teeth on the packages that never touch the sim
# engine and may be used from concurrent tooling.
RACE_PKGS = ./internal/memalloc ./internal/metrics ./internal/obs/... ./internal/core/...

race:
	$(GO) test -race $(RACE_PKGS)

verify:
	./scripts/verify.sh

bench:
	$(GO) test -bench=. -benchmem ./...

fmt:
	gofmt -l -w .
