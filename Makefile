GO ?= go

.PHONY: all build vet test race verify bench fmt chaos grayfail blackout fuzz

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One engine is single-threaded by design (cooperative scheduling), so the
# race detector has teeth on two fronts: packages used from concurrent
# tooling, and the experiments harness whose parallel runner fans whole
# engines out across workers. For experiments only the parallel-runner
# tests run under race — the full suite re-runs every figure at ~10x race
# overhead without touching any additional concurrency.
RACE_PKGS = ./internal/memalloc ./internal/metrics ./internal/obs/... ./internal/core/... ./internal/faults ./internal/topo

race:
	$(GO) test -race $(RACE_PKGS) ./internal/par ./internal/sim
	$(GO) test -race -short -run 'Parallel|Chaos' ./internal/experiments
	$(GO) test -race -run 'TestPartitionedCluster|TestClusterFaultPlanMidMigration|TestPerHost' .

verify:
	./scripts/verify.sh

# Regenerate the per-experiment benchmark suite and snapshot it as
# BENCH_results.json: parsed ns/op + headline paper metrics for trend
# tracking across PRs, plus the raw lines (`jq -r '.raw[]'`) for benchstat.
# The default 1 s benchtime is the iteration floor: sub-second analytic
# benchmarks (Fig2 stranding, Table 1) iterate until it fills — so their
# ns/op is a real average, not a single cold run — while the multi-second
# simulation benchmarks still execute exactly once. The RacksweepSim pair
# is the partitions=1 vs partitions=N comparison row (see bench_test.go).
bench:
	$(GO) test -run XXX -bench . -benchmem . | tee /dev/stderr | $(GO) run scripts/benchjson.go > BENCH_results.json

fmt:
	gofmt -l -w .

# Run the seeded chaos campaign and print the full report (fault plan,
# injection log, recovery histograms, invariant verdict).
chaos:
	$(GO) run ./cmd/oasis-bench -run chaos

# Run the seeded gray-failure campaign: four degraded-mode faults, health
# scorer evacuations, hard failovers silent.
grayfail:
	$(GO) run ./cmd/oasis-bench -run grayfail

# Measure the migration write-blackout, pre-copy vs stop-the-world, across
# the write-rate grid.
blackout:
	$(GO) run ./cmd/oasis-bench -run blackout

# Replay the FuzzParsePlan seed corpus as a plain regression test (no long
# fuzzing); run `go test -fuzz=FuzzParsePlan ./internal/faults` to explore.
fuzz:
	$(GO) test -run FuzzParsePlan -v ./internal/faults
