package oasis

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"oasis/internal/faults"
	"oasis/internal/netstack"
	"oasis/internal/obs"
	"oasis/internal/sim"
	"oasis/internal/ssd"
	"oasis/internal/storengine"
	"oasis/internal/topo"
)

// Typed cluster errors.
var (
	// ErrNoSuchPod marks an operation addressed to a pod index the cluster
	// does not hold.
	ErrNoSuchPod = errors.New("no such pod")
	// ErrMigrationFailed marks a cross-pod migration that aborted with the
	// source instance intact (writes unfrozen again).
	ErrMigrationFailed = errors.New("cross-pod migration failed")
)

// Cluster composes pods into a rack-scale topology. All pods share ONE
// simulation engine — cross-pod interactions (migrations, staggered fault
// plans) happen on a single virtual clock — while each pod keeps its own
// CXL pool, ToR switch, allocator, and raft group, exactly as standalone.
// Pods are identity-scoped: pod i's hosts, devices, drivers, metrics, and
// fault targets all carry the "pod<i>/" prefix from internal/topo, so a
// merged cluster snapshot never collides and a fault plan can name any
// node in the rack.
//
// The cluster adds a thin cross-pod placement layer: PlaceInstance routes
// an instance to the least-loaded pod, and MigrateInstance moves an
// instance (with its volume, epoch-fenced) between pods — the §3.5
// allocator's job lifted one level up.
type Cluster struct {
	Eng  *sim.Engine
	pods []*Pod

	// group is non-nil in partitioned mode (NewPartitionedCluster): each
	// pod runs on its own partition engine and Eng is the control
	// partition hosting cluster-level processes.
	group *sim.Group
	// perHostClients additionally gives every pod client a partition of
	// its own (NewPerHostCluster): the pods' topologies carry the group,
	// so AddClient attaches through a RemotePort exactly as in a
	// standalone per-host pod.
	perHostClients bool

	// MigrationCopyBudget bounds how long a migration waits for the source
	// volume to quiesce and for the destination volume to register.
	MigrationCopyBudget Duration

	// StopTheWorldMigration reverts MigrateInstance to the freeze-first
	// protocol: writes are frozen for the entire volume copy instead of
	// only the final dirty flush. Kept for comparison — the blackout
	// experiment runs both modes side by side.
	StopTheWorldMigration bool

	// PrecopyRounds bounds the iterative dirty-flush rounds a pre-copy
	// migration runs before freezing: each round re-copies the blocks
	// dirtied during the previous one, so the set shrinks geometrically
	// when the copy outruns the writer. More rounds shrink the final
	// freeze window at the cost of total migration time.
	PrecopyRounds int

	// PrecopyFlushBlocks stops the iterative rounds early: once a round
	// begins with at most this many dirty blocks, the migration freezes
	// and flushes the remainder inside the blackout window.
	PrecopyFlushBlocks int

	// LastBlackout is the length of the write-blackout window (freeze to
	// cutover) of the most recent successful volume-backed
	// MigrateInstance.
	LastBlackout Duration

	// HopLatency is the modeled control-plane RPC cost a cluster-level
	// operation pays each time it moves between pods (placement probe,
	// migration step). Charged identically in serial and partitioned mode
	// — in the latter it doubles as the mobile-process lookahead — so the
	// two modes produce byte-identical virtual timelines. Set it via
	// SetHopLatency before spawning cluster processes.
	HopLatency Duration

	// Stats.
	Placements int64
	Migrations int64
}

// DefaultHopLatency models one cross-pod control RPC: a rack-local
// round trip through the spine plus kernel/IPC overhead on both ends.
const DefaultHopLatency = 20 * time.Microsecond

// NewCluster creates an empty cluster on a fresh shared engine: every pod
// shares one serial event loop.
func NewCluster() *Cluster {
	return &Cluster{
		Eng:                 sim.New(),
		MigrationCopyBudget: 500 * time.Millisecond,
		HopLatency:          DefaultHopLatency,
		PrecopyRounds:       4,
		PrecopyFlushBlocks:  16,
	}
}

// NewPartitionedCluster creates an empty cluster in partitioned execution
// mode: each AddPod gets its own sim partition, cluster-level processes
// (Cluster.Go) run as mobile processes that hop between pods, and Run
// advances all partitions in parallel under the group's conservative
// windows. Simulation results are byte-identical to NewCluster provided
// cross-pod work is written against the cluster API (Go/GoPod/Migrate*):
// pods share no other channels, so the only cross-partition traffic is the
// hop itself, which serial mode charges as an equal Sleep.
func NewPartitionedCluster() *Cluster {
	g := sim.NewGroup()
	c := &Cluster{
		Eng:                 g.AddPartition(),
		group:               g,
		MigrationCopyBudget: 500 * time.Millisecond,
		HopLatency:          DefaultHopLatency,
		PrecopyRounds:       4,
		PrecopyFlushBlocks:  16,
	}
	g.SetMobileLatency(c.HopLatency)
	return c
}

// NewPerHostCluster creates a partitioned cluster that also splits out
// every pod client onto a partition of its own: pods execute in parallel
// with each other AND with their load generators. Client attachment goes
// through a switch RemotePort (one extra cable hop each way, declared as
// lookahead), so the modeled topology — and with it the virtual timeline —
// differs from NewCluster/NewPartitionedCluster; the per-host timeline is
// itself byte-identical across reruns and GOMAXPROCS settings.
func NewPerHostCluster() *Cluster {
	c := NewPartitionedCluster()
	c.perHostClients = true
	return c
}

// Partitioned reports whether the cluster runs in partitioned mode.
func (c *Cluster) Partitioned() bool { return c.group != nil }

// PerHost reports whether pod clients get partitions of their own.
func (c *Cluster) PerHost() bool { return c.perHostClients }

// Partitions returns the number of sim partitions backing the cluster
// (1 + one per pod in partitioned mode, 1 in serial mode).
func (c *Cluster) Partitions() int {
	if c.group == nil {
		return 1
	}
	return c.group.Partitions()
}

// SetHopLatency changes the modeled cross-pod control RPC cost. Call it
// before spawning cluster processes; in partitioned mode the latency is
// also the mobile-process lookahead, so it must respect the group's floor.
func (c *Cluster) SetHopLatency(d Duration) {
	c.HopLatency = d
	if c.group != nil {
		c.group.SetMobileLatency(d)
	}
}

// AddPodErr appends a pod built from cfg; its index (and thereby its
// "pod<i>/" identity scope) is its position. Pods may be added after Start
// — the new pod is empty until its own nodes are added, and Cluster.Start
// has already run its (empty) wiring pass, so late node adds wire
// immediately.
func (c *Cluster) AddPodErr(cfg Config) (*Pod, error) {
	idx := len(c.pods)
	eng := c.Eng
	if c.group != nil {
		// Partitioned mode: the pod is a partition of its own. Pods share
		// no sim channels (cross-pod interaction is the migration layer's
		// hop), so no CrossLink registration is needed here; wiring that
		// ever spans pods must declare one (cxl.Pool.DeclareCrossLink,
		// netsw.Switch.DeclareCrossUplink, core.NewCrossChannel).
		eng = c.group.AddPartition()
	}
	p := &Pod{Topology: newTopology(eng, cfg, idx, false)}
	if c.perHostClients {
		// Per-host mode: hand the pod's topology the group so AddClient
		// (and AddGuest) split out partitions of their own. ownEngine
		// stays false — the cluster drives the group's lifecycle.
		p.Topology.group = c.group
	}
	c.pods = append(c.pods, p)
	return p, nil
}

// AddPod is the panic-on-error wrapper around AddPodErr.
func (c *Cluster) AddPod(cfg Config) *Pod {
	p, err := c.AddPodErr(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Pods returns the cluster's pods in index order.
func (c *Cluster) Pods() []*Pod { return c.pods }

// Pod returns pod i, or nil when out of range.
func (c *Cluster) Pod(i int) *Pod {
	if i < 0 || i >= len(c.pods) {
		return nil
	}
	return c.pods[i]
}

// Start wires and launches every pod, in index order.
func (c *Cluster) Start() {
	for _, p := range c.pods {
		p.Start()
	}
}

// Go spawns a cluster-level application process. In serial mode it runs on
// the shared engine; in partitioned mode it becomes a mobile process homed
// on the control partition, free to hop between pods (MigrateInstance and
// friends hop on its behalf). Cross-pod drivers — anything that may call
// the migration layer — must be spawned here, not with GoPod.
func (c *Cluster) Go(name string, fn func(p *Proc)) {
	if c.group != nil {
		c.group.GoMobile(c.Eng, name, fn)
		return
	}
	c.Eng.Go(name, fn)
}

// GoPod spawns an application process inside pod i's own execution domain:
// its partition in partitioned mode, the shared engine in serial mode
// (where the two are the same thing). Pod-local workloads spawned here are
// what partitioned execution runs in parallel.
func (c *Cluster) GoPod(i int, name string, fn func(p *Proc)) {
	pod := c.Pod(i)
	if pod == nil {
		panic(fmt.Sprintf("oasis: GoPod: no such pod %d", i))
	}
	pod.Eng.Go(name, fn)
}

// Run executes d of virtual time across the whole cluster.
func (c *Cluster) Run(d Duration) Duration {
	if c.group != nil {
		return c.group.RunUntil(d)
	}
	return c.Eng.RunUntil(d)
}

// Shutdown unwinds all processes in every pod.
func (c *Cluster) Shutdown() {
	if c.group != nil {
		c.group.Shutdown()
		return
	}
	c.Eng.Shutdown()
}

// Now returns the cluster's virtual clock: the shared engine's clock in
// serial mode, the committed (barrier) time in partitioned mode.
func (c *Cluster) Now() Duration {
	if c.group != nil {
		return c.group.Now()
	}
	return c.Eng.Now()
}

// hop moves a cluster-level process's execution context to pod, charging
// HopLatency of virtual time: a partition hop in partitioned mode, a plain
// sleep in serial mode — identical timelines either way.
func (c *Cluster) hop(p *Proc, pod *Pod) {
	if c.group != nil {
		c.group.Hop(p, pod.Eng)
		return
	}
	p.Sleep(c.HopLatency)
}

// podLoad is the placement layer's load proxy for one pod: placed
// instances per usable (non-backup) NIC. It needs no cross-pod telemetry
// — instance counts and NIC counts are construction-time facts — which
// keeps placement deterministic and allocator-agnostic.
func (c *Cluster) podLoad(p *Pod) float64 {
	nics := 0
	for _, id := range p.nicIDs() {
		n := p.NICs[id]
		if n.BE != nil && !n.Backup {
			nics++
		}
	}
	if nics == 0 {
		return float64(len(p.instances)) + 1e9 // effectively unplaceable
	}
	return float64(len(p.instances)) / float64(nics)
}

// leastLoadedPod picks the pod with the lowest load (ties: lowest index).
func (c *Cluster) leastLoadedPod() *Pod {
	var best *Pod
	bestLoad := 0.0
	for _, p := range c.pods {
		l := c.podLoad(p)
		if best == nil || l < bestLoad {
			best, bestLoad = p, l
		}
	}
	return best
}

// leastLoadedHost picks the live host with the fewest instances (ties:
// lowest index).
func leastLoadedHost(p *Pod) *Host {
	counts := make(map[*Host]int)
	for _, inst := range p.instances {
		counts[inst.host]++
	}
	var best *Host
	bestN := 0
	for _, ph := range p.Hosts {
		if ph.removed {
			continue
		}
		if n := counts[ph]; best == nil || n < bestN {
			best, bestN = ph, n
		}
	}
	return best
}

// findInstance locates an instance by IP across the cluster.
func (c *Cluster) findInstance(ip netstack.IP) (*Pod, *Instance) {
	for _, p := range c.pods {
		for _, inst := range p.instances {
			if inst.IPAddr() == ip {
				return p, inst
			}
		}
	}
	return nil, nil
}

// PlaceInstanceErr routes an instance to the least-loaded pod (placed
// instances per usable NIC; ties go to the lowest pod index) and the
// least-loaded host within it, then asks that pod's allocator for a NIC
// assignment. Instance IPs are cluster-unique.
func (c *Cluster) PlaceInstanceErr(ip netstack.IP) (*Instance, error) {
	if len(c.pods) == 0 {
		return nil, fmt.Errorf("oasis: %w: cluster has no pods", ErrNoSuchPod)
	}
	if p, _ := c.findInstance(ip); p != nil {
		return nil, fmt.Errorf("oasis: %w: inst-%v already placed in pod%d", ErrDuplicateNode, ip, p.podIndex)
	}
	pod := c.leastLoadedPod()
	host := leastLoadedHost(pod)
	if host == nil {
		return nil, fmt.Errorf("oasis: %w: pod%d has no live hosts", ErrNoSuchNode, pod.podIndex)
	}
	inst, err := pod.AddInstanceErr(host, ip)
	if err != nil {
		return nil, err
	}
	if pod.Started() && pod.Alloc != nil {
		inst.RequestAllocation()
	}
	c.Placements++
	return inst, nil
}

// PlaceInstance is the panic-on-error wrapper around PlaceInstanceErr.
func (c *Cluster) PlaceInstance(ip netstack.IP) *Instance {
	inst, err := c.PlaceInstanceErr(ip)
	if err != nil {
		panic(err)
	}
	return inst
}

// MigrateInstance moves an instance — and its volume, if it has one — to
// pod dst. It must run inside a simulation process (use Cluster.Go).
//
// The default protocol is a pre-copy migration: the bulk of the volume is
// copied while the instance keeps writing, and only the final dirty-set
// flush runs inside the write-freeze window, so the blackout is bounded by
// the write rate rather than the volume size. It reuses the storage
// engine's epoch/fencing machinery so no acked write is ever lost, even
// when the fault injector is tearing at both pods:
//
//  1. Track: arm dirty-block tracking on the source volume. Every write
//     acked from here on has its blocks recorded.
//  2. Copy: read the full volume image through the ordinary read path —
//     writes still flowing — and write it into a fresh volume on the
//     destination pod. Blocks written during the copy are stale in the
//     image but present in the dirty set.
//  3. Iterate: re-copy the blocks dirtied during the previous pass, up to
//     PrecopyRounds times or until at most PrecopyFlushBlocks remain. The
//     set shrinks geometrically whenever the copy outruns the writer.
//  4. Fence: freeze writes (new writes fail fast with ErrMigrating — they
//     are never acknowledged, so no promise exists) and quiesce. The
//     quiesce bumps the volume's fencing epoch, so a wedged backend's
//     late completion is rejected (StaleRejected) rather than applied
//     after the cutover — the same zombie defense the SSD failover path
//     uses. Acked writes are now durable and all marked dirty-or-copied.
//  5. Flush: copy the remaining dirty blocks to the destination. This is
//     the only copy work inside the blackout window.
//  6. Cutover: re-place the instance on the destination (new frontend
//     port, allocator assignment) and remove the source instance, volume,
//     and placement. LastBlackout records freeze→cutover.
//
// StopTheWorldMigration selects the old protocol — freeze and quiesce
// first, then copy everything inside the blackout — for comparison.
//
// On any failure the source instance is left intact with writes unfrozen
// and tracking disarmed (the epoch bump is harmless) and
// ErrMigrationFailed is returned.
//
// The driver executes against one pod at a time, paying a HopLatency
// control RPC to move between them: source for track/copy-read/fence,
// destination for placement and copy-write, source again for the cutover
// removal; each pre-copy round pays one more round trip. In partitioned
// mode each hop re-homes the (mobile) process onto that pod's partition,
// which is also what makes the pod-local state it touches race-free;
// serial mode charges the identical virtual time as a sleep (hopping to
// the current pod charges the same, keeping the modes byte-identical).
// Call it only from processes spawned with Cluster.Go.
func (c *Cluster) MigrateInstance(p *Proc, ip netstack.IP, dst int) (*Instance, error) {
	dstPod := c.Pod(dst)
	if dstPod == nil {
		return nil, fmt.Errorf("oasis: %w: pod%d", ErrNoSuchPod, dst)
	}
	srcPod, inst := c.findInstance(ip)
	if inst == nil {
		return nil, fmt.Errorf("oasis: %w: inst-%v", ErrNoSuchNode, ip)
	}
	if srcPod == dstPod {
		return inst, nil
	}
	if inst.Port == nil {
		return nil, fmt.Errorf("oasis: %w: baseline local instance %v cannot migrate", ErrNodeInUse, ip)
	}
	c.hop(p, srcPod)

	var vol *storengine.Volume
	if sfe := inst.host.SFE; sfe != nil {
		vol = sfe.Volume(ip)
	}
	precopy := vol != nil && !c.StopTheWorldMigration
	var frozeAt Duration // zero until the freeze begins
	// readChunks reads [lba, lba+nblocks) via the ordinary read path,
	// honoring the per-request block limit. Runs in the source pod domain.
	srcChunk := srcPod.cfg.Storage.MaxBlocksPerRequest()
	readChunks := func(lba, nblocks uint64, dst []byte) error {
		for off := uint64(0); off < nblocks; off += uint64(srcChunk) {
			n := srcChunk
			if rem := nblocks - off; uint64(n) > rem {
				n = int(rem)
			}
			data, err := vol.Read(p, lba+off, n)
			if err != nil {
				return err
			}
			copy(dst[(off)*uint64(ssd.BlockSize):], data)
		}
		return nil
	}
	// cleanupSrc disarms the migration machinery on the source volume; it
	// must only run in the source pod domain.
	cleanupSrc := func() {
		if vol == nil {
			return
		}
		vol.UnfreezeWrites()
		vol.StopDirtyTracking()
	}

	var image []byte
	var blocks uint64
	if vol != nil {
		if precopy {
			vol.StartDirtyTracking()
		} else {
			frozeAt = p.Now()
			vol.FreezeWrites()
			// A quiesce timeout is safe to proceed past: the epoch bump
			// fences the wedged request, so it can only end StaleRejected —
			// never acked, never applied after the copy reads below.
			vol.Quiesce(p, c.MigrationCopyBudget)
		}
		blocks = vol.Blocks()
		image = make([]byte, blocks*uint64(ssd.BlockSize))
		if err := readChunks(0, blocks, image); err != nil {
			cleanupSrc()
			return nil, fmt.Errorf("oasis: %w: copy read: %v", ErrMigrationFailed, err)
		}
	}

	c.hop(p, dstPod)
	// unwind returns to the source pod's domain before unfreezing: the
	// volume is source-pod state and must only be touched from there.
	unwind := func(reason error) (*Instance, error) {
		c.hop(p, srcPod)
		cleanupSrc()
		return nil, fmt.Errorf("oasis: %w: %v", ErrMigrationFailed, reason)
	}
	dstHost := leastLoadedHost(dstPod)
	if dstHost == nil {
		return unwind(fmt.Errorf("pod%d has no live hosts", dst))
	}
	newInst, err := dstPod.AddInstanceErr(dstHost, ip)
	if err != nil {
		return unwind(err)
	}
	// abort tears the half-built destination down; it must only run in the
	// destination pod domain.
	abort := func(reason error) (*Instance, error) {
		_ = dstPod.RemoveInstanceErr(newInst)
		return unwind(reason)
	}
	if dstPod.Started() && dstPod.Alloc != nil {
		newInst.RequestAllocation()
	}
	var newVol *storengine.Volume
	if vol != nil {
		dstSSD := uint16(0)
		for _, id := range dstPod.ssdIDs() {
			if !dstPod.SSDs[id].Backup {
				dstSSD = id
				break
			}
		}
		if dstSSD == 0 {
			return abort(fmt.Errorf("pod%d has no usable SSD for the volume", dst))
		}
		newVol, err = dstPod.AddVolumeErr(newInst, dstSSD, blocks)
		if err != nil {
			return abort(err)
		}
		if !newVol.WaitReady(p, c.MigrationCopyBudget) {
			return abort(fmt.Errorf("destination volume on %s never became ready", dstPod.ssdName(dstSSD)))
		}
		dstChunk := dstPod.cfg.Storage.MaxBlocksPerRequest()
		writeChunks := func(lba, nblocks uint64, src []byte) error {
			for off := uint64(0); off < nblocks; off += uint64(dstChunk) {
				n := dstChunk
				if rem := nblocks - off; uint64(n) > rem {
					n = int(rem)
				}
				data := src[off*uint64(ssd.BlockSize) : (off+uint64(n))*uint64(ssd.BlockSize)]
				if err := newVol.Write(p, lba+off, data); err != nil {
					return err
				}
			}
			return nil
		}
		if err := writeChunks(0, blocks, image); err != nil {
			return abort(fmt.Errorf("copy write: %v", err))
		}
		if precopy {
			// Iterative dirty flushes, then the fenced final flush. Each
			// round drains the dirty set at the source and replays it at
			// the destination; the last round runs frozen.
			for round := 0; ; round++ {
				c.hop(p, srcPod)
				final := round >= c.PrecopyRounds || vol.DirtyCount() <= c.PrecopyFlushBlocks
				if final {
					frozeAt = p.Now()
					vol.FreezeWrites()
					vol.Quiesce(p, c.MigrationCopyBudget)
				}
				dirty := vol.TakeDirty()
				var flush []byte
				for _, r := range dirty {
					buf := make([]byte, r.Blocks*uint64(ssd.BlockSize))
					if err := readChunks(r.LBA, r.Blocks, buf); err != nil {
						c.hop(p, dstPod)
						return abort(fmt.Errorf("dirty read at lba %d: %v", r.LBA, err))
					}
					flush = append(flush, buf...)
				}
				if final {
					vol.StopDirtyTracking()
				}
				c.hop(p, dstPod)
				off := uint64(0)
				for _, r := range dirty {
					if err := writeChunks(r.LBA, r.Blocks, flush[off*uint64(ssd.BlockSize):]); err != nil {
						return abort(fmt.Errorf("dirty write at lba %d: %v", r.LBA, err))
					}
					off += r.Blocks
				}
				if final {
					break
				}
			}
		}
	}
	c.hop(p, srcPod)
	if err := srcPod.RemoveInstanceErr(inst); err != nil {
		c.hop(p, dstPod)
		return abort(err)
	}
	if vol != nil {
		c.LastBlackout = p.Now() - frozeAt
	}
	c.Migrations++
	return newInst, nil
}

// RebalanceOnce migrates one instance from the most-loaded pod to the
// least-loaded pod when their load ratio exceeds ratio (>1). Returns the
// migrated instance, or nil if the cluster is balanced. Run it from a
// simulation process.
func (c *Cluster) RebalanceOnce(p *Proc, ratio float64) (*Instance, error) {
	if len(c.pods) < 2 {
		return nil, nil
	}
	var hot, cold *Pod
	for _, pod := range c.pods {
		if hot == nil || c.podLoad(pod) > c.podLoad(hot) {
			hot = pod
		}
		if cold == nil || c.podLoad(pod) < c.podLoad(cold) {
			cold = pod
		}
	}
	if hot == cold || c.podLoad(hot) == 0 {
		return nil, nil // nothing placed anywhere, or no skew possible
	}
	if c.podLoad(cold) > 0 && c.podLoad(hot)/c.podLoad(cold) <= ratio {
		return nil, nil
	}
	if len(hot.instances) == 0 {
		return nil, nil
	}
	victim := hot.instances[len(hot.instances)-1] // newest placement moves
	return c.MigrateInstance(p, victim.IPAddr(), cold.podIndex)
}

// RunFaultPlan routes a cluster-wide fault plan: every event's target must
// carry a "pod<P>/" scope (the internal/topo grammar), and each event is
// scheduled on that pod's own injector. The per-pod sub-plans inherit the
// plan's name and seed.
func (c *Cluster) RunFaultPlan(pl faults.Plan) error {
	perPod := make(map[int][]faults.Event)
	for i, ev := range pl.Events {
		r, err := topo.Parse(ev.Target)
		if err != nil {
			return fmt.Errorf("oasis: cluster plan event %d: %w", i, err)
		}
		if r.Pod == topo.Unscoped {
			return fmt.Errorf("oasis: cluster plan event %d: target %q must carry a pod scope (\"pod<P>/…\")", i, ev.Target)
		}
		if c.Pod(r.Pod) == nil {
			return fmt.Errorf("oasis: cluster plan event %d: %w: pod%d", i, ErrNoSuchPod, r.Pod)
		}
		perPod[r.Pod] = append(perPod[r.Pod], ev)
	}
	idxs := make([]int, 0, len(perPod))
	for idx := range perPod {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		sub := faults.Plan{Name: pl.Name, Seed: pl.Seed, Events: perPod[idx]}
		if err := c.pods[idx].RunFaultPlan(sub); err != nil {
			return err
		}
	}
	return nil
}

// Stats merges every pod's snapshot into one cluster-wide view. Pod
// identity scoping ("pod<i>/" prefixes on hosts, devices, drivers, alloc,
// raft, faults) keeps the merged namespace collision-free; points re-sort
// by name and trace events merge in time order (ties: pod order).
func (c *Cluster) Stats() obs.Snapshot {
	s := obs.Snapshot{At: c.Eng.Now()}
	for _, p := range c.pods {
		ps := p.Stats()
		s.Points = append(s.Points, ps.Points...)
		s.Events = append(s.Events, ps.Events...)
	}
	sort.Slice(s.Points, func(a, b int) bool {
		if s.Points[a].Name != s.Points[b].Name {
			return s.Points[a].Name < s.Points[b].Name
		}
		return s.Points[a].Label < s.Points[b].Label
	})
	sort.SliceStable(s.Events, func(a, b int) bool { return s.Events[a].At < s.Events[b].At })
	return s
}

// StatsReport renders the merged cluster snapshot.
func (c *Cluster) StatsReport() string { return c.Stats().String() }
