// Package oasis is the public API of this reproduction of "Oasis: Pooling
// PCIe Devices Over CXL to Boost Utilization" (SOSP 2025).
//
// Oasis pools PCIe devices — NICs here, SSDs via the storage engine — in
// software across the hosts of a CXL pod: a rack-scale group of servers
// sharing a non-cache-coherent CXL 2.0 memory pool. Instances (containers)
// on any pod host can use any pooled device; the datapath runs over shared
// CXL memory with software-managed coherence, and a pod-wide allocator
// handles placement, load balancing, and failover.
//
// The package is a builder over a deterministic discrete-event simulation
// of the full substrate (CXL pool, per-host CPU caches, NICs, ToR switch,
// SSDs — see DESIGN.md for the hardware-substitution argument). A minimal
// pod:
//
//	pod := oasis.NewPod(oasis.DefaultConfig())
//	h0 := pod.AddHost()              // has the pod's NIC
//	h1 := pod.AddHost()              // diskless/NIC-less host
//	nic := pod.AddNIC(h0, false)     // false: not the reserved backup
//	inst := pod.AddInstance(h1, oasis.IP(10, 0, 0, 10))
//	client := pod.AddClient(oasis.IP(10, 0, 99, 1))
//	pod.Start()
//	// … spawn application processes with pod.Go, then pod.Run…
//
// Everything runs in virtual time: pod.Run(d) executes d of simulated time
// deterministically.
//
// # Builder errors and migration
//
// Every Add* builder has two forms. The AddNICErr/AddSSDErr/AddVolumeErr/
// AddInstanceErr (and AddLocalNICErr/AddLocalInstanceErr) forms return
// (T, error) and are the preferred API: wiring mistakes — duplicate
// instance IPs, exhausted pool memory, a frozen topology — come back as
// errors the caller can handle. The original AddNIC/AddSSD/AddVolume/
// AddInstance forms are kept as thin legacy wrappers that panic on those
// same errors, which is fine for tests and examples where a wiring bug
// should abort loudly. New code should migrate to the Err forms; the panic
// wrappers will not grow new capabilities.
//
// # Observability
//
// Pod.Stats() samples every component's registered instruments into a
// typed, deterministic Snapshot (sorted series, JSON-marshalable, plus a
// Prometheus-style text encoding); Pod.StatsReport() is Snapshot.String().
// See internal/obs and DESIGN.md's observability section for the
// instrument taxonomy and naming scheme.
package oasis

import (
	"fmt"
	"sort"
	"time"

	"oasis/internal/allocator"
	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/faults"
	"oasis/internal/host"
	"oasis/internal/netengine"
	"oasis/internal/netstack"
	"oasis/internal/netsw"
	"oasis/internal/nic"
	"oasis/internal/obs"
	"oasis/internal/raft"
	"oasis/internal/sim"
	"oasis/internal/ssd"
	"oasis/internal/storengine"
)

// Re-exported simulation handles so applications only import this package.
type (
	// Proc is a simulated process (one core's worth of execution).
	Proc = sim.Proc
	// Duration is virtual time.
	Duration = sim.Duration
)

// IP builds an IPv4 address.
func IP(a, b, c, d byte) netstack.IP { return netstack.IPv4(a, b, c, d) }

// Config assembles per-component parameters.
type Config struct {
	PoolBytes int64
	CXL       cxl.Params
	Host      host.Config
	NIC       nic.Params
	Switch    netsw.Params
	Engine    netengine.Config
	Storage   storengine.Config
	SSD       ssd.Params
	Stack     netstack.Config
	Allocator allocator.Config
	// NoAllocator disables the pod-wide allocator; instances must then be
	// assigned to NICs explicitly with Instance.Assign.
	NoAllocator bool
	// SharedHostCore multiplexes each host's engine loops — network
	// frontend, storage frontend, and any locally-attached NIC/SSD backends
	// — onto ONE driver core per host instead of a dedicated core per
	// driver. This reproduces §5.1's observation that "the frontend and
	// backend driver cores also handle other tasks, which delays message
	// passing": all loops share the core's iterations. The baseline local
	// driver and the allocator keep their own cores.
	SharedHostCore bool
	// RaftReplicas replicates the allocator's decision log with Raft over
	// 64 B message channels across the first N pod hosts (§3.5). 0 disables
	// replication; otherwise it must be an odd count ≥ 3 and ≤ len(hosts).
	RaftReplicas int
}

// DefaultConfig mirrors the paper's evaluation platform (§5): a CXL 2.0
// pool on ×8 ports, 100 Gbit CX5-class NICs, one ToR switch.
func DefaultConfig() Config {
	return Config{
		PoolBytes: 1 << 30,
		CXL:       cxl.DefaultParams(),
		Host:      host.DefaultConfig(),
		NIC:       nic.DefaultParams(),
		Switch:    netsw.DefaultParams(),
		Engine:    netengine.DefaultConfig(),
		Storage:   storengine.DefaultConfig(),
		SSD:       ssd.DefaultParams(),
		Stack:     netstack.DefaultConfig(),
		Allocator: allocator.DefaultConfig(),
	}
}

// Host is one pod member: the underlying host model, its frontend driver,
// and any backend drivers for locally-attached NICs.
type Host struct {
	H   *host.Host
	FE  *netengine.Frontend
	BEs []*netengine.Backend
	// SFE is the storage frontend (created on demand by AddSSD/AddVolume).
	SFE *storengine.Frontend
	// LD is the baseline Junction-style local driver (set by AddLocalNIC).
	LD *netengine.LocalDriver
	// Driver is the host's shared driver core when Config.SharedHostCore is
	// set: every engine loop on this host polls from it.
	Driver *core.Driver
}

// SSDDev is one pooled SSD: the device and its storage backend driver.
type SSDDev struct {
	ID     uint16
	Dev    *ssd.SSD
	BE     *storengine.Backend
	Backup bool
}

// NIC is one pooled NIC: the device and its backend driver.
type NIC struct {
	ID     uint16
	Dev    *nic.NIC
	BE     *netengine.Backend
	SwPort *netsw.Port
	Backup bool
}

// Instance is a container instance: its frontend attachment and its
// network stack. Exactly one of Port (pooled, via the Oasis frontend) or
// LocalPort (baseline, via a LocalDriver) is set.
type Instance struct {
	Port      *netengine.InstancePort
	LocalPort *netengine.LocalPort
	Stack     *netstack.Stack
	host      *Host
	pod       *Pod
}

// IPAddr returns the instance's address.
func (i *Instance) IPAddr() netstack.IP { return i.Stack.IP() }

// Host returns the pod host the instance runs on.
func (i *Instance) Host() *Host { return i.host }

// IsPooled reports whether the instance attaches to the pooled datapath
// (an Oasis frontend port) rather than a baseline local driver.
func (i *Instance) IsPooled() bool { return i.Port != nil }

// Assign sets the instance's primary and backup NICs directly (bypassing
// the allocator). backup may be 0. Baseline local instances have no pooled
// frontend port to assign; that returns a descriptive error instead of the
// historical nil-pointer panic.
func (i *Instance) Assign(primary, backup uint16) error {
	if i.Port == nil {
		return fmt.Errorf("oasis: Assign on baseline local instance %v: it has no pooled frontend port (AddLocalInstance attaches to the host's local driver; use AddInstance for the pooled datapath)", i.IPAddr())
	}
	i.Port.Assign(primary, backup)
	return nil
}

// RequestAllocation asks the pod-wide allocator for a NIC assignment.
// Baseline local instances need no assignment; the request is ignored.
func (i *Instance) RequestAllocation() {
	if i.Port == nil {
		return
	}
	i.Port.RequestAllocation()
}

// WaitReady blocks until the instance can transmit. Baseline local
// instances are ready immediately.
func (i *Instance) WaitReady(p *Proc, timeout Duration) bool {
	if i.Port == nil {
		return true
	}
	return i.Port.WaitReady(p, timeout)
}

// Client is a load-generator node outside the pod, attached directly to
// the ToR switch (the paper's "network load driver", §5).
type Client struct {
	Stack  *netstack.Stack
	SwPort *netsw.Port
	mac    netsw.MAC
}

// Transmit implements netstack.Endpoint for the raw client.
func (c *Client) Transmit(p *Proc, frame []byte) {
	var f netsw.Frame
	copy(f.Dst[:], frame[0:6])
	copy(f.Src[:], frame[6:12])
	f.Bytes = frame
	c.SwPort.Send(&f)
}

// DeliverFrame implements netsw.Sink for the raw client.
func (c *Client) DeliverFrame(f *netsw.Frame) { c.Stack.DeliverFrame(f.Bytes) }

// Pod owns the whole simulated rack.
type Pod struct {
	Eng    *sim.Engine
	Pool   *cxl.Pool
	Switch *netsw.Switch
	Hosts  []*Host
	NICs   map[uint16]*NIC
	SSDs   map[uint16]*SSDDev
	Alloc  *allocator.Allocator
	// Raft holds the allocator's replicas when Config.RaftReplicas > 0;
	// Raft[0] runs beside the allocator and is the expected leader.
	Raft []*raft.Node

	cfg       Config
	obs       *obs.Registry
	nicDir    map[uint16]netsw.MAC
	nextNICID uint16
	nextSSDID uint16
	nextMAC   uint64
	instances []*Instance
	clients   []*Client
	started   bool
	injector  *faults.Injector
}

// NewPod creates an empty pod.
func NewPod(cfg Config) *Pod {
	eng := sim.New()
	return &Pod{
		Eng:       eng,
		Pool:      cxl.NewPool(eng, cfg.PoolBytes, cfg.CXL),
		Switch:    netsw.New(eng, cfg.Switch),
		NICs:      make(map[uint16]*NIC),
		SSDs:      make(map[uint16]*SSDDev),
		cfg:       cfg,
		obs:       obs.New(),
		nicDir:    make(map[uint16]netsw.MAC),
		nextNICID: 1,
		nextSSDID: 1,
		nextMAC:   0x02_00_00_00_00_01, // locally administered
	}
}

// AddHost adds a pod member with a frontend driver.
func (pod *Pod) AddHost() *Host {
	pod.mustNotBeStarted()
	id := len(pod.Hosts)
	h := host.New(pod.Eng, id, fmt.Sprintf("host%d", id), pod.Pool, pod.cfg.Host)
	ph := &Host{H: h, FE: netengine.NewFrontend(h, pod.Pool, pod.cfg.Engine)}
	pod.Hosts = append(pod.Hosts, ph)
	return ph
}

// allocMAC hands out a unique locally-administered MAC.
func (pod *Pod) allocMAC() netsw.MAC {
	var m netsw.MAC
	v := pod.nextMAC
	pod.nextMAC++
	for i := 5; i >= 0; i-- {
		m[i] = byte(v)
		v >>= 8
	}
	return m
}

// AddNICErr attaches a pooled NIC to a host and creates its backend driver.
// backup marks the pod's reserved failover NIC (§3.3.3).
func (pod *Pod) AddNICErr(on *Host, backup bool) (*NIC, error) {
	if err := pod.frozenErr(); err != nil {
		return nil, err
	}
	id := pod.nextNICID
	pod.nextNICID++
	mac := pod.allocMAC()
	name := fmt.Sprintf("nic%d", id)
	dev := nic.New(pod.Eng, name, mac, pod.Pool.AttachPort(name+"-dma"), netstack.FlowKey, pod.cfg.NIC)
	swPort := pod.Switch.AttachPort(name, dev)
	dev.Connect(swPort)
	dev.SetSnooper(on.H.Cache) // DMA snoops the owning host's cache (§3.2.1)
	be, err := netengine.NewBackend(on.H, id, dev, pod.Pool, pod.nicDir, pod.cfg.Engine)
	if err != nil {
		return nil, err
	}
	pod.nicDir[id] = mac
	n := &NIC{ID: id, Dev: dev, BE: be, SwPort: swPort, Backup: backup}
	pod.NICs[id] = n
	on.BEs = append(on.BEs, be)
	return n, nil
}

// AddNIC is the legacy panic-on-error wrapper around AddNICErr.
func (pod *Pod) AddNIC(on *Host, backup bool) *NIC {
	n, err := pod.AddNICErr(on, backup)
	if err != nil {
		panic(err)
	}
	return n
}

// AddLocalNICErr attaches a NIC served by a Junction-style local driver —
// the evaluation baseline (§5.1): one intermediary core, no pooling, no
// message channels. Instances added with AddLocalInstance use it.
func (pod *Pod) AddLocalNICErr(on *Host) (*NIC, error) {
	if err := pod.frozenErr(); err != nil {
		return nil, err
	}
	if on.LD != nil {
		return nil, fmt.Errorf("oasis: host %s already has a local driver", on.H.Name)
	}
	id := pod.nextNICID
	pod.nextNICID++
	mac := pod.allocMAC()
	name := fmt.Sprintf("nic%d", id)
	dev := nic.New(pod.Eng, name, mac, pod.Pool.AttachPort(name+"-dma"), netstack.FlowKey, pod.cfg.NIC)
	swPort := pod.Switch.AttachPort(name, dev)
	dev.Connect(swPort)
	dev.SetSnooper(on.H.Cache)
	ld, err := netengine.NewLocalDriver(on.H, dev, pod.Pool, pod.cfg.Engine)
	if err != nil {
		return nil, err
	}
	on.LD = ld
	n := &NIC{ID: id, Dev: dev, SwPort: swPort}
	pod.NICs[id] = n
	return n, nil
}

// AddLocalNIC is the legacy panic-on-error wrapper around AddLocalNICErr.
func (pod *Pod) AddLocalNIC(on *Host) *NIC {
	n, err := pod.AddLocalNICErr(on)
	if err != nil {
		panic(err)
	}
	return n
}

// AddLocalInstanceErr launches an instance on the host's baseline local
// driver.
func (pod *Pod) AddLocalInstanceErr(on *Host, ip netstack.IP) (*Instance, error) {
	if err := pod.frozenErr(); err != nil {
		return nil, err
	}
	if on.LD == nil {
		return nil, fmt.Errorf("oasis: AddLocalInstance requires AddLocalNIC first")
	}
	lp, err := on.LD.AddInstance(ip)
	if err != nil {
		return nil, err
	}
	stack := netstack.NewStack(pod.Eng, fmt.Sprintf("inst-%v", ip), ip, lp.CurrentMAC, lp, pod.cfg.Stack)
	lp.AttachStack(stack)
	inst := &Instance{LocalPort: lp, Stack: stack, host: on, pod: pod}
	pod.instances = append(pod.instances, inst)
	return inst, nil
}

// AddLocalInstance is the legacy panic-on-error wrapper around
// AddLocalInstanceErr.
func (pod *Pod) AddLocalInstance(on *Host, ip netstack.IP) *Instance {
	inst, err := pod.AddLocalInstanceErr(on, ip)
	if err != nil {
		panic(err)
	}
	return inst
}

// AddSSDErr attaches a pooled SSD of the given capacity (in 4 KiB blocks)
// to a host and creates its storage backend driver (§3.4).
func (pod *Pod) AddSSDErr(on *Host, capacityBlocks uint64) (*SSDDev, error) {
	return pod.addSSD(on, capacityBlocks, false)
}

// AddSSD is the legacy panic-on-error wrapper around AddSSDErr.
func (pod *Pod) AddSSD(on *Host, capacityBlocks uint64) *SSDDev {
	d, err := pod.AddSSDErr(on, capacityBlocks)
	if err != nil {
		panic(err)
	}
	return d
}

// AddBackupSSDErr attaches the pod's reserved backup drive — the §3.3.3
// backup-NIC mechanism applied to storage. Every volume on other drives is
// mirrored onto it (RAID-1 style) by the storage frontends, and the
// allocator re-binds volumes onto it when their primary drive fails. A pod
// has at most one backup drive; it should be at least as large as the sum
// of the volumes it protects.
func (pod *Pod) AddBackupSSDErr(on *Host, capacityBlocks uint64) (*SSDDev, error) {
	for _, id := range pod.ssdIDs() {
		if pod.SSDs[id].Backup {
			return nil, fmt.Errorf("oasis: pod already has backup SSD %d", id)
		}
	}
	return pod.addSSD(on, capacityBlocks, true)
}

// AddBackupSSD is the panic-on-error wrapper around AddBackupSSDErr.
func (pod *Pod) AddBackupSSD(on *Host, capacityBlocks uint64) *SSDDev {
	d, err := pod.AddBackupSSDErr(on, capacityBlocks)
	if err != nil {
		panic(err)
	}
	return d
}

func (pod *Pod) addSSD(on *Host, capacityBlocks uint64, backup bool) (*SSDDev, error) {
	if err := pod.frozenErr(); err != nil {
		return nil, err
	}
	id := pod.nextSSDID
	pod.nextSSDID++
	name := fmt.Sprintf("ssd%d", id)
	dev := ssd.New(pod.Eng, name, pod.Pool.AttachPort(name+"-dma"), pod.cfg.SSD)
	be := storengine.NewBackend(on.H, id, dev, capacityBlocks, pod.cfg.Storage)
	d := &SSDDev{ID: id, Dev: dev, BE: be, Backup: backup}
	pod.SSDs[id] = d
	return d, nil
}

// storageFE returns (creating if needed) a host's storage frontend.
func (pod *Pod) storageFE(on *Host) *storengine.Frontend {
	if on.SFE == nil {
		on.SFE = storengine.NewFrontend(on.H, pod.Pool, pod.cfg.Storage)
	}
	return on.SFE
}

// AddVolumeErr provisions a block volume for an instance on a pooled SSD.
// Must be called before Start (the registration completes shortly after).
// The instance's host is taken from the instance itself (recorded at
// AddInstance time), so no pod-wide scan is needed.
func (pod *Pod) AddVolumeErr(inst *Instance, ssdID uint16, blocks uint64) (*storengine.Volume, error) {
	if err := pod.frozenErr(); err != nil {
		return nil, err
	}
	if inst == nil || inst.host == nil {
		return nil, fmt.Errorf("oasis: AddVolume: instance has no host (not built by AddInstance/AddLocalInstance)")
	}
	fe := pod.storageFE(inst.host)
	return fe.AddVolume(inst.IPAddr(), ssdID, blocks)
}

// AddVolume is the legacy panic-on-error wrapper around AddVolumeErr.
func (pod *Pod) AddVolume(inst *Instance, ssdID uint16, blocks uint64) *storengine.Volume {
	vol, err := pod.AddVolumeErr(inst, ssdID, blocks)
	if err != nil {
		panic(err)
	}
	return vol
}

// AddInstanceErr launches a container instance on a pod host.
func (pod *Pod) AddInstanceErr(on *Host, ip netstack.IP) (*Instance, error) {
	if err := pod.frozenErr(); err != nil {
		return nil, err
	}
	port, err := on.FE.AddInstance(ip)
	if err != nil {
		return nil, err
	}
	name := fmt.Sprintf("inst-%v", ip)
	stack := netstack.NewStack(pod.Eng, name, ip, port.CurrentMAC, port, pod.cfg.Stack)
	port.AttachStack(stack)
	inst := &Instance{Port: port, Stack: stack, host: on, pod: pod}
	pod.instances = append(pod.instances, inst)
	return inst, nil
}

// AddInstance is the legacy panic-on-error wrapper around AddInstanceErr.
func (pod *Pod) AddInstance(on *Host, ip netstack.IP) *Instance {
	inst, err := pod.AddInstanceErr(on, ip)
	if err != nil {
		panic(err)
	}
	return inst
}

// AddClient attaches a raw load-generator node to the switch.
func (pod *Pod) AddClient(ip netstack.IP) *Client {
	pod.mustNotBeStarted()
	c := &Client{mac: pod.allocMAC()}
	c.SwPort = pod.Switch.AttachPort(fmt.Sprintf("client-%v", ip), c)
	mac := c.mac
	c.Stack = netstack.NewStack(pod.Eng, fmt.Sprintf("client-%v", ip), ip,
		func() netsw.MAC { return mac }, c, pod.cfg.Stack)
	pod.clients = append(pod.clients, c)
	return c
}

// nicIDs returns the pooled NIC ids in ascending order, so pod wiring and
// reports never depend on map iteration order (determinism).
func (pod *Pod) nicIDs() []uint16 {
	ids := make([]uint16, 0, len(pod.NICs))
	for id := range pod.NICs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ssdIDs returns the pooled SSD ids in ascending order.
func (pod *Pod) ssdIDs() []uint16 {
	ids := make([]uint16, 0, len(pod.SSDs))
	for id := range pod.SSDs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// backupSSDID returns the pod's reserved backup drive id (0 if none).
func (pod *Pod) backupSSDID() uint16 {
	for _, id := range pod.ssdIDs() {
		if pod.SSDs[id].Backup {
			return id
		}
	}
	return 0
}

// Start wires the control and data links (frontend↔backend full mesh,
// allocator links for every device backend) and launches every driver,
// device, and stack process. Topology is frozen afterwards.
func (pod *Pod) Start() {
	if pod.started {
		return
	}
	pod.started = true
	nicIDs, ssdIDs := pod.nicIDs(), pod.ssdIDs()

	// Data links: every frontend to every backend.
	for _, ph := range pod.Hosts {
		for _, id := range nicIDs {
			n := pod.NICs[id]
			if n.BE == nil {
				continue // baseline local NIC: no backend driver
			}
			feEnd, beEnd, err := core.NewDuplexLink(pod.Pool, ph.H, n.BE.Host(), pod.cfg.Engine.Chan)
			if err != nil {
				panic(err)
			}
			ph.FE.ConnectBackend(n.ID, n.Dev.MAC(), feEnd)
			n.BE.ConnectFrontend(ph.H.ID, beEnd)
		}
		if ph.SFE != nil {
			for _, id := range ssdIDs {
				d := pod.SSDs[id]
				feEnd, beEnd, err := core.NewDuplexLink(pod.Pool, ph.H, d.BE.Host(), pod.cfg.Storage.Chan)
				if err != nil {
					panic(err)
				}
				ph.SFE.ConnectBackend(d.ID, feEnd)
				d.BE.ConnectFrontend(ph.H.ID, beEnd)
			}
		}
	}

	// Backup-drive mirroring: every storage frontend mirrors its volumes
	// onto the pod's reserved backup drive (the §3.3.3 mechanism applied to
	// storage). Needs the backend mesh above so mirror registrations can
	// ride the normal request path.
	if bid := pod.backupSSDID(); bid != 0 {
		for _, ph := range pod.Hosts {
			if ph.SFE != nil {
				ph.SFE.SetBackupSSD(bid)
			}
		}
	}

	// Control plane: the allocator gets a link to every frontend and every
	// device backend — NIC and SSD backends report through the same path.
	if !pod.cfg.NoAllocator && len(pod.Hosts) > 0 {
		ah := pod.Hosts[0].H // allocator runs on host 0
		pod.Alloc = allocator.New(ah, pod.cfg.Allocator)
		for _, ph := range pod.Hosts {
			aEnd, feEnd, err := core.NewDuplexLink(pod.Pool, ah, ph.H, pod.cfg.Engine.Chan)
			if err != nil {
				panic(err)
			}
			pod.Alloc.AddFrontend(ph.H.ID, aEnd)
			ph.FE.SetControlLink(feEnd)
		}
		for _, id := range nicIDs {
			n := pod.NICs[id]
			if n.BE == nil {
				continue
			}
			aEnd, beEnd, err := core.NewDuplexLink(pod.Pool, ah, n.BE.Host(), pod.cfg.Engine.Chan)
			if err != nil {
				panic(err)
			}
			pod.Alloc.AddNIC(allocator.NICInfo{
				ID:          n.ID,
				HostID:      n.BE.Host().ID,
				CapacityBps: pod.cfg.Switch.PortBandwidth,
				Backup:      n.Backup,
			}, aEnd)
			n.BE.SetControlLink(beEnd)
		}
		for _, id := range ssdIDs {
			d := pod.SSDs[id]
			aEnd, beEnd, err := core.NewDuplexLink(pod.Pool, ah, d.BE.Host(), pod.cfg.Engine.Chan)
			if err != nil {
				panic(err)
			}
			pod.Alloc.AddSSD(allocator.SSDInfo{ID: d.ID, HostID: d.BE.Host().ID, Backup: d.Backup}, aEnd)
			d.BE.SetControlLink(beEnd)
		}
		// Storage frontends get a control link too: SSD failover commands
		// (volume re-binds, fencing epochs) are broadcast over it.
		for _, ph := range pod.Hosts {
			if ph.SFE == nil {
				continue
			}
			aEnd, sfeEnd, err := core.NewDuplexLink(pod.Pool, ah, ph.H, pod.cfg.Engine.Chan)
			if err != nil {
				panic(err)
			}
			pod.Alloc.AddStorageFrontend(ph.H.ID, aEnd)
			ph.SFE.SetControlLink(sfeEnd)
		}
		if pod.cfg.RaftReplicas > 0 {
			pod.setupRaft()
		}
		pod.Alloc.Start()
	}

	// Shared host cores (§5.1): one driver core per host multiplexes the
	// host's frontend loops and locally-attached backend loops. Joins must
	// precede each engine's Start (which then just starts the shared core).
	if pod.cfg.SharedHostCore {
		for _, ph := range pod.Hosts {
			ph.Driver = core.NewDriver(ph.H, ph.H.Name+"/engines", core.DriverConfig{
				LoopCost:    pod.cfg.Engine.LoopCost,
				IdleBackoff: pod.cfg.Engine.IdleBackoff,
			})
			ph.FE.Join(ph.Driver)
			if ph.SFE != nil {
				ph.SFE.Join(ph.Driver)
			}
			for _, be := range ph.BEs {
				be.Join(ph.Driver)
			}
		}
		for _, id := range ssdIDs {
			d := pod.SSDs[id]
			for _, ph := range pod.Hosts {
				if ph.H == d.BE.Host() {
					d.BE.Join(ph.Driver)
					break
				}
			}
		}
	}

	// Launch everything.
	for _, id := range nicIDs {
		n := pod.NICs[id]
		n.Dev.Start()
		if n.BE != nil {
			n.BE.Start()
		}
	}
	for _, id := range ssdIDs {
		d := pod.SSDs[id]
		d.Dev.Start()
		d.BE.Start()
	}
	for _, ph := range pod.Hosts {
		ph.FE.Start()
		if ph.SFE != nil {
			ph.SFE.Start()
		}
		if ph.LD != nil {
			ph.LD.Start()
		}
	}
	for _, inst := range pod.instances {
		inst.Stack.Start()
	}
	for _, c := range pod.clients {
		c.Stack.Start()
	}

	pod.registerObs()
}

// registerObs walks the frozen topology and registers every component's
// instruments with the pod registry. Runs once, at the end of Start, so
// channel-latency trackers and driver loops already exist. Registration
// order is deterministic (sorted device ids, host insertion order), and
// Snapshot re-sorts by name anyway.
func (pod *Pod) registerObs() {
	r := pod.obs
	seen := make(map[*core.Driver]bool)
	regDriver := func(d *core.Driver, prefix string) {
		if d == nil || seen[d] {
			return
		}
		seen[d] = true
		d.RegisterObs(r, prefix)
	}
	for _, id := range pod.nicIDs() {
		n := pod.NICs[id]
		n.Dev.RegisterObs(r, fmt.Sprintf("nic%d", id))
		if n.BE != nil {
			n.BE.RegisterObs(r, n.BE.LoopName())
		}
	}
	for _, id := range pod.ssdIDs() {
		d := pod.SSDs[id]
		d.Dev.RegisterObs(r, fmt.Sprintf("ssd%d", id))
		d.BE.RegisterObs(r, d.BE.LoopName())
	}
	for _, pt := range pod.Pool.Ports() {
		pt.RegisterObs(r, "cxl/port/"+pt.Name())
	}
	for _, ph := range pod.Hosts {
		if ph.H.Cache != nil {
			ph.H.Cache.RegisterObs(r, ph.H.Name+"/cache")
		}
		ph.FE.RegisterObs(r, ph.FE.LoopName())
		if ph.SFE != nil {
			ph.SFE.RegisterObs(r, ph.SFE.LoopName())
		}
		if ph.LD != nil {
			ph.LD.RegisterObs(r, ph.LD.LoopName())
		}
		// The shared host core (if any) registers under core/<host>; the
		// dedicated per-engine drivers below dedupe against it by pointer
		// and register under core/<loop name> instead.
		regDriver(ph.Driver, "core/"+ph.H.Name)
		if d := ph.FE.Driver(); d != nil {
			regDriver(d, "core/"+d.Name())
		}
		if ph.SFE != nil {
			if d := ph.SFE.Driver(); d != nil {
				regDriver(d, "core/"+d.Name())
			}
		}
		if ph.LD != nil {
			if d := ph.LD.Driver(); d != nil {
				regDriver(d, "core/"+d.Name())
			}
		}
		for _, be := range ph.BEs {
			if d := be.Driver(); d != nil {
				regDriver(d, "core/"+d.Name())
			}
		}
	}
	for _, id := range pod.ssdIDs() {
		if d := pod.SSDs[id].BE.Driver(); d != nil {
			regDriver(d, "core/"+d.Name())
		}
	}
	if pod.Alloc != nil {
		pod.Alloc.RegisterObs(r, "alloc")
		if d := pod.Alloc.Driver(); d != nil {
			regDriver(d, "core/"+d.Name())
		}
	}
	for i, node := range pod.Raft {
		node.RegisterObs(r, fmt.Sprintf("raft/%d", i))
	}
}

// Go spawns an application process.
func (pod *Pod) Go(name string, fn func(p *Proc)) { pod.Eng.Go(name, fn) }

// Run executes d of virtual time and returns the clock.
func (pod *Pod) Run(d Duration) Duration { return pod.Eng.RunUntil(d) }

// Shutdown unwinds all processes (end of an experiment).
func (pod *Pod) Shutdown() { pod.Eng.Shutdown() }

// Now returns the virtual clock.
func (pod *Pod) Now() Duration { return pod.Eng.Now() }

// FailNICPort injects the paper's §5.3 failure: the switch port connected
// to the NIC is disabled.
func (pod *Pod) FailNICPort(id uint16) {
	if n, ok := pod.NICs[id]; ok {
		n.SwPort.SetEnabled(false)
	}
}

// RestoreNICPort re-enables a failed port.
func (pod *Pod) RestoreNICPort(id uint16) {
	if n, ok := pod.NICs[id]; ok {
		n.SwPort.SetEnabled(true)
	}
}

// frozenErr reports whether the pod topology is frozen (Start has run).
// The ...Err builder forms return it; the legacy wrappers panic on it.
func (pod *Pod) frozenErr() error {
	if pod.started {
		return fmt.Errorf("oasis: pod topology is frozen after Start")
	}
	return nil
}

func (pod *Pod) mustNotBeStarted() {
	if err := pod.frozenErr(); err != nil {
		panic(err)
	}
}

// setupRaft builds the allocator's replica group: RaftReplicas nodes on the
// first hosts, RPCs over 64 B message channels, with the allocator's
// decisions proposed to the log before being acted on (§3.5).
func (pod *Pod) setupRaft() {
	n := pod.cfg.RaftReplicas
	if n < 3 || n%2 == 0 || n > len(pod.Hosts) {
		panic(fmt.Sprintf("oasis: RaftReplicas = %d needs an odd count >= 3 and <= hosts", n))
	}
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	trs := make([]*raft.ChannelTransport, n)
	for i := range trs {
		trs[i] = raft.NewChannelTransport(pod.Eng, i)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := trs[i].ConnectPeer(pod.Pool, pod.Hosts[i].H, trs[j], pod.Hosts[j].H); err != nil {
				panic(err)
			}
		}
	}
	for i := 0; i < n; i++ {
		cfg := raft.DefaultConfig()
		cfg.Seed = 11
		// Fail proposals fast: the allocator retries them with backoff (see
		// allocator.deferRetry), so a commit stuck behind a mid-election
		// group should return quickly rather than stall the control plane.
		cfg.ProposeLimit = 100 * time.Millisecond
		if i == 0 {
			// The allocator runs on host 0; bias it to win the first
			// election so proposals originate beside the leader.
			cfg.ElectionMin = 10 * time.Millisecond
			cfg.ElectionMax = 15 * time.Millisecond
		} else {
			cfg.ElectionMin = 40 * time.Millisecond
			cfg.ElectionMax = 60 * time.Millisecond
		}
		node := raft.New(pod.Eng, i, ids, trs[i], nil, cfg)
		trs[i].Bind(node)
		pod.Raft = append(pod.Raft, node)
		node.Start()
	}
	pod.Alloc.Replicate(&multiReplicator{nodes: pod.Raft})
}

// multiReplicator adapts the raft group to the allocator's replication
// hook. Unlike a replicator pinned to one node, it proposes through
// whichever live replica currently leads, so allocator decisions survive
// the loss of the original leader (node 0's host crashing): after
// re-election the promoted follower carries the log and proposals resume
// through it.
type multiReplicator struct {
	nodes []*raft.Node
}

// Propose finds a live leader (bounded wait, exponential backoff while an
// election is in flight) and blocks until the command commits. A stopped
// node still claiming leadership is a zombie and is skipped.
func (r *multiReplicator) Propose(p *Proc, cmd []byte) bool {
	deadline := p.Now() + 120*time.Millisecond
	backoff := time.Millisecond
	for {
		for _, node := range r.nodes {
			if node.IsLeader() && !node.Stopped() {
				return node.Propose(p, cmd)
			}
		}
		if p.Now() >= deadline {
			return false
		}
		p.Sleep(backoff)
		if backoff < 16*time.Millisecond {
			backoff *= 2
		}
	}
}

// Snapshot is the structured result of Pod.Stats: a sorted, deterministic
// view of every registered series plus the retained trace events. It
// marshals to stable JSON and renders to Prometheus text via PromText.
type Snapshot = obs.Snapshot

// Obs exposes the pod's metrics registry so applications and tests can
// register their own instruments alongside the built-in ones.
func (pod *Pod) Obs() *obs.Registry { return pod.obs }

// Stats samples every registered instrument at the current virtual time and
// returns a typed, deterministically ordered snapshot. Instruments are only
// read here — sampling costs no virtual time and never perturbs the run.
func (pod *Pod) Stats() Snapshot { return pod.obs.Snapshot(pod.Eng.Now()) }

// StatsReport returns a human-readable dump of the pod's counters: per-NIC
// traffic, per-port CXL bandwidth by category, driver counters, and
// allocator decisions. Examples and operators print it after a run. It is
// exactly Stats().String(); use Stats for programmatic access.
func (pod *Pod) StatsReport() string { return pod.Stats().String() }
