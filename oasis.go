// Package oasis is the public API of this reproduction of "Oasis: Pooling
// PCIe Devices Over CXL to Boost Utilization" (SOSP 2025).
//
// Oasis pools PCIe devices — NICs here, SSDs via the storage engine — in
// software across the hosts of a CXL pod: a rack-scale group of servers
// sharing a non-cache-coherent CXL 2.0 memory pool. Instances (containers)
// on any pod host can use any pooled device; the datapath runs over shared
// CXL memory with software-managed coherence, and a pod-wide allocator
// handles placement, load balancing, and failover.
//
// The package is a builder over a deterministic discrete-event simulation
// of the full substrate (CXL pool, per-host CPU caches, NICs, ToR switch,
// SSDs — see DESIGN.md for the hardware-substitution argument). A minimal
// pod:
//
//	pod := oasis.NewPod(oasis.DefaultConfig())
//	h0 := pod.AddHost()              // has the pod's NIC
//	h1 := pod.AddHost()              // diskless/NIC-less host
//	nic := pod.AddNIC(h0, false)     // false: not the reserved backup
//	inst := pod.AddInstance(h1, oasis.IP(10, 0, 0, 10))
//	client := pod.AddClient(oasis.IP(10, 0, 99, 1))
//	pod.Start()
//	// … spawn application processes with pod.Go, then pod.Run…
//
// Everything runs in virtual time: pod.Run(d) executes d of simulated time
// deterministically.
//
// # Topology graph and incremental wiring
//
// Pod is a thin compatibility wrapper over Topology, the incremental node
// graph that owns every host, device, instance, and client. Nodes are
// added (and removed) one at a time through the ...Err builders; Start
// wires whatever exists in a deterministic order, and nodes added after
// Start are wired immediately — links to every peer, driver launch, and
// metric registration happen as part of the add. See DESIGN.md §10.
//
// # Clusters
//
// Cluster composes pods into a rack-scale topology on one shared engine:
// each pod keeps its own CXL pool, ToR switch, allocator, and raft group,
// while the cluster routes instance placements to the least-loaded pod and
// migrates instances (with their volumes, epoch-fenced) between pods on
// load imbalance. Node identity is pod-scoped — metric names and fault
// targets gain a "pod<P>/" prefix resolved through internal/topo.
//
// # Builder errors and migration
//
// Every Add* builder has two forms. The AddNICErr/AddSSDErr/AddVolumeErr/
// AddInstanceErr (and AddLocalNICErr/AddLocalInstanceErr) forms return
// (T, error) and are the preferred API: wiring mistakes — duplicate
// instance IPs, exhausted pool memory, a frozen baseline topology — come
// back as errors the caller can handle. The original AddNIC/AddSSD/
// AddVolume/AddInstance forms are thin legacy wrappers that call the Err
// forms and panic on those same errors, which is fine for tests and
// examples where a wiring bug should abort loudly. There is exactly one
// wiring code path: the wrappers add nothing but the panic.
//
// # Observability
//
// Pod.Stats() samples every component's registered instruments into a
// typed, deterministic Snapshot (sorted series, JSON-marshalable, plus a
// Prometheus-style text encoding); Pod.StatsReport() is Snapshot.String().
// See internal/obs and DESIGN.md's observability section for the
// instrument taxonomy and naming scheme.
package oasis

import (
	"oasis/internal/allocator"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/netengine"
	"oasis/internal/netstack"
	"oasis/internal/netsw"
	"oasis/internal/nic"
	"oasis/internal/obs"
	"oasis/internal/sim"
	"oasis/internal/ssd"
	"oasis/internal/storengine"
	"oasis/internal/topo"
)

// Re-exported simulation handles so applications only import this package.
type (
	// Proc is a simulated process (one core's worth of execution).
	Proc = sim.Proc
	// Duration is virtual time.
	Duration = sim.Duration
)

// IP builds an IPv4 address.
func IP(a, b, c, d byte) netstack.IP { return netstack.IPv4(a, b, c, d) }

// Config assembles per-component parameters.
type Config struct {
	PoolBytes int64
	CXL       cxl.Params
	Host      host.Config
	NIC       nic.Params
	Switch    netsw.Params
	Engine    netengine.Config
	Storage   storengine.Config
	SSD       ssd.Params
	Stack     netstack.Config
	Allocator allocator.Config
	// NoAllocator disables the pod-wide allocator; instances must then be
	// assigned to NICs explicitly with Instance.Assign.
	NoAllocator bool
	// SharedHostCore multiplexes each host's engine loops — network
	// frontend, storage frontend, and any locally-attached NIC/SSD backends
	// — onto ONE driver core per host instead of a dedicated core per
	// driver. This reproduces §5.1's observation that "the frontend and
	// backend driver cores also handle other tasks, which delays message
	// passing": all loops share the core's iterations. The baseline local
	// driver and the allocator keep their own cores.
	SharedHostCore bool
	// RaftReplicas replicates the allocator's decision log with Raft over
	// 64 B message channels across the first N pod hosts (§3.5). 0 disables
	// replication; otherwise it must be an odd count ≥ 3 and ≤ len(hosts).
	RaftReplicas int
}

// DefaultConfig mirrors the paper's evaluation platform (§5): a CXL 2.0
// pool on ×8 ports, 100 Gbit CX5-class NICs, one ToR switch.
func DefaultConfig() Config {
	return Config{
		PoolBytes: 1 << 30,
		CXL:       cxl.DefaultParams(),
		Host:      host.DefaultConfig(),
		NIC:       nic.DefaultParams(),
		Switch:    netsw.DefaultParams(),
		Engine:    netengine.DefaultConfig(),
		Storage:   storengine.DefaultConfig(),
		SSD:       ssd.DefaultParams(),
		Stack:     netstack.DefaultConfig(),
		Allocator: allocator.DefaultConfig(),
	}
}

// Pod owns one whole simulated rack-scale pod. It is a thin compatibility
// wrapper over Topology: every builder, accessor, and lifecycle method is
// promoted from the embedded graph, so historical code keeps working while
// new code may hold the Topology directly (or compose pods with Cluster).
type Pod struct {
	*Topology
}

// NewPod creates an empty standalone pod (its own engine, flat metric
// names, local fault targets).
func NewPod(cfg Config) *Pod {
	return &Pod{Topology: NewTopology(cfg)}
}

// NewPodOnEngine creates an empty standalone pod driven by a
// caller-supplied engine — typically a partition of a sim.Group — instead
// of a private one. Identity stays flat (unscoped) like NewPod; lifecycle
// calls on the pod delegate to the given engine, but in a group the
// group's own RunUntil/Shutdown drive the clock.
func NewPodOnEngine(eng *sim.Engine, cfg Config) *Pod {
	return &Pod{Topology: newTopology(eng, cfg, topo.Unscoped, false)}
}

// NewPerHostPod creates an empty standalone pod in per-host partitioned
// execution mode: the pod core — hosts, CXL pool, ToR switch, devices,
// instances — runs on partition 0 of a private sim.Group, every AddClient
// gets a partition of its own behind a switch RemotePort (the cable
// extension is the declared lookahead), and AddGuest adds host-compute
// partitions coupled through the pool at its intrinsic cross-host latency.
// Pod.Run/Shutdown/Now drive the whole group, so single-pod experiments
// exploit multiple cores: load generation and guest compute advance in
// parallel with the pod under the group's conservative windows.
//
// The remote attachment adds real modeled latency (one extra cable hop
// each way), so a per-host run's virtual timeline differs from the same
// pod built with NewPod — per-host mode is a different physical topology,
// not a different execution of the same one. What partitioned execution
// guarantees is that the per-host timeline itself is byte-identical across
// reruns and GOMAXPROCS settings.
func NewPerHostPod(cfg Config) *Pod {
	g := sim.NewGroup()
	t := newTopology(g.AddPartition(), cfg, topo.Unscoped, true)
	t.group = g
	return &Pod{Topology: t}
}

// Snapshot is the structured result of Pod.Stats: a sorted, deterministic
// view of every registered series plus the retained trace events. It
// marshals to stable JSON and renders to Prometheus text via PromText.
type Snapshot = obs.Snapshot
