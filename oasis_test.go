package oasis

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"oasis/internal/faults"
	"oasis/internal/metrics"
	"oasis/internal/storengine"
)

// echoPod builds the evaluation topology (§5): hostA runs the instance,
// hostB owns the NIC serving it, a client drives load from outside the pod.
type echoPod struct {
	pod    *Pod
	hostA  *Host
	hostB  *Host
	nic1   *NIC
	inst   *Instance
	client *Client
}

func buildEchoPod(backup bool) *echoPod {
	cfg := DefaultConfig()
	pod := NewPod(cfg)
	hostA := pod.AddHost()
	hostB := pod.AddHost()
	n1 := pod.AddNIC(hostB, false)
	var _ = n1
	e := &echoPod{pod: pod, hostA: hostA, hostB: hostB, nic1: n1}
	if backup {
		hostC := pod.AddHost()
		pod.AddNIC(hostC, true)
	}
	e.inst = pod.AddInstance(hostA, IP(10, 0, 0, 10))
	e.client = pod.AddClient(IP(10, 0, 99, 1))
	pod.Start()
	return e
}

// startEchoServer runs a UDP echo app on the instance.
func (e *echoPod) startEchoServer(t *testing.T) {
	e.pod.Go("echo-server", func(p *Proc) {
		conn, err := e.inst.Stack.ListenUDP(7)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			dg := conn.Recv(p)
			if err := conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data); err != nil {
				return
			}
		}
	})
}

func TestRemoteNICUDPEcho(t *testing.T) {
	e := buildEchoPod(false)
	e.inst.RequestAllocation()
	e.startEchoServer(t)
	var rtts []time.Duration
	payload := bytes.Repeat([]byte{0xEE}, 64)
	e.pod.Go("client", func(p *Proc) {
		conn, _ := e.client.Stack.ListenUDP(0)
		p.Sleep(2 * time.Millisecond) // registration warmup
		for i := 0; i < 20; i++ {
			start := p.Now()
			if err := conn.SendTo(p, e.inst.IPAddr(), 7, payload); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			dg, ok := conn.RecvTimeout(p, 10*time.Millisecond)
			if !ok {
				t.Errorf("echo %d timed out", i)
				return
			}
			if !bytes.Equal(dg.Data, payload) {
				t.Errorf("echo %d corrupted", i)
				return
			}
			rtts = append(rtts, p.Now()-start)
			p.Sleep(100 * time.Microsecond)
		}
		e.pod.Shutdown()
	})
	e.pod.Run(time.Second)
	if len(rtts) != 20 {
		t.Fatalf("completed %d echoes, want 20", len(rtts))
	}
	med := metrics.ExactPercentile(rtts, 50)
	// Remote-NIC path: a handful of µs each way (Fig. 10's Oasis curve runs
	// ~5-10 µs at low load on a small testbed).
	if med < time.Microsecond || med > 30*time.Microsecond {
		t.Fatalf("median RTT = %v, want low µs", med)
	}
	t.Logf("remote-NIC echo RTT: median=%v", med)
	// The data path must have used the CXL pool for payloads.
	if e.hostA.H.CXLPort.WriteMeter().Category("payload") == 0 {
		t.Fatal("instance TX never wrote payload to the CXL pool")
	}
	if e.inst.Port.TxPackets == 0 || e.inst.Port.RxPackets == 0 {
		t.Fatal("instance port counters did not move")
	}
}

func TestTxBuffersRecycled(t *testing.T) {
	e := buildEchoPod(false)
	e.inst.RequestAllocation()
	e.startEchoServer(t)
	payload := bytes.Repeat([]byte{1}, 1400)
	done := false
	e.pod.Go("client", func(p *Proc) {
		conn, _ := e.client.Stack.ListenUDP(0)
		p.Sleep(2 * time.Millisecond)
		for i := 0; i < 500; i++ {
			if err := conn.SendTo(p, e.inst.IPAddr(), 7, payload); err != nil {
				t.Error(err)
				return
			}
			if _, ok := conn.RecvTimeout(p, 10*time.Millisecond); !ok {
				t.Errorf("echo %d lost", i)
				return
			}
		}
		done = true
		// Let completions drain, then check for leaks.
		p.Sleep(10 * time.Millisecond)
		e.pod.Shutdown()
	})
	e.pod.Run(5 * time.Second)
	if !done {
		t.Fatal("client did not finish")
	}
	if e.inst.Port.TxDropsNoBuffer != 0 {
		t.Fatalf("TX buffer drops = %d; area leaked", e.inst.Port.TxDropsNoBuffer)
	}
	// All TX buffers must be back (completions recycle them).
	// All RX buffers must be back in the NIC ring or free list.
	be := e.nic1.BE
	if got := be.RxNoRoute; got > 5 {
		t.Fatalf("unexpected RxNoRoute = %d", got)
	}
}

func TestFlowTagFallbackInspectionOnlyForARP(t *testing.T) {
	e := buildEchoPod(false)
	e.inst.RequestAllocation()
	e.startEchoServer(t)
	e.pod.Go("client", func(p *Proc) {
		conn, _ := e.client.Stack.ListenUDP(0)
		p.Sleep(2 * time.Millisecond)
		for i := 0; i < 50; i++ {
			conn.SendTo(p, e.inst.IPAddr(), 7, []byte("x"))
			conn.RecvTimeout(p, 10*time.Millisecond)
		}
		e.pod.Shutdown()
	})
	e.pod.Run(time.Second)
	// UDP data packets are steered by flow tags; only the ARP exchange hits
	// the inspection fallback.
	if e.nic1.BE.Inspected > 4 {
		t.Fatalf("backend inspected %d packets; flow tagging not effective", e.nic1.BE.Inspected)
	}
	if e.nic1.BE.RxForwarded < 50 {
		t.Fatalf("forwarded %d, want >= 50", e.nic1.BE.RxForwarded)
	}
}

func TestAllocatorPlacesOnLocalNICFirst(t *testing.T) {
	cfg := DefaultConfig()
	pod := NewPod(cfg)
	hA := pod.AddHost()
	hB := pod.AddHost()
	nA := pod.AddNIC(hA, false)
	nB := pod.AddNIC(hB, false)
	instA := pod.AddInstance(hA, IP(10, 0, 0, 1))
	instB := pod.AddInstance(hB, IP(10, 0, 0, 2))
	pod.Start()
	instA.RequestAllocation()
	instB.RequestAllocation()
	ok := false
	pod.Go("wait", func(p *Proc) {
		ok = instA.WaitReady(p, 100*time.Millisecond) && instB.WaitReady(p, 100*time.Millisecond)
		pod.Shutdown()
	})
	pod.Run(time.Second)
	if !ok {
		t.Fatal("instances never became ready")
	}
	if got, _ := pod.Alloc.PrimaryOf(instA.IPAddr()); got != nA.ID {
		t.Fatalf("instA placed on NIC %d, want local %d", got, nA.ID)
	}
	if got, _ := pod.Alloc.PrimaryOf(instB.IPAddr()); got != nB.ID {
		t.Fatalf("instB placed on NIC %d, want local %d", got, nB.ID)
	}
}

func TestNICFailoverUDP(t *testing.T) {
	e := buildEchoPod(true) // with reserved backup NIC
	e.inst.RequestAllocation()
	e.startEchoServer(t)
	var lost, delivered int
	var gapStart, gapEnd time.Duration
	failAt := 50 * time.Millisecond
	e.pod.Eng.At(failAt, func() { e.pod.FailNICPort(e.nic1.ID) })
	e.pod.Go("client", func(p *Proc) {
		conn, _ := e.client.Stack.ListenUDP(0)
		p.Sleep(2 * time.Millisecond)
		// 1 kHz probe stream for 300 ms of virtual time.
		for p.Now() < 350*time.Millisecond {
			sendAt := p.Now()
			if err := conn.SendTo(p, e.inst.IPAddr(), 7, []byte("probe")); err != nil {
				t.Error(err)
				return
			}
			if _, ok := conn.RecvTimeout(p, time.Millisecond); ok {
				delivered++
				if gapStart != 0 && gapEnd == 0 {
					gapEnd = sendAt
				}
			} else {
				lost++
				if gapStart == 0 {
					gapStart = sendAt
				}
			}
		}
		e.pod.Shutdown()
	})
	e.pod.Run(time.Second)
	if delivered == 0 || lost == 0 {
		t.Fatalf("delivered=%d lost=%d; failover scenario did not engage", delivered, lost)
	}
	if gapEnd == 0 {
		t.Fatal("service never recovered after NIC failure")
	}
	outage := gapEnd - gapStart
	t.Logf("failover outage: %v (lost %d probes)", outage, lost)
	// §5.3: tens of milliseconds — dominated by link-down detection.
	if outage < 5*time.Millisecond || outage > 120*time.Millisecond {
		t.Fatalf("outage = %v, want tens of ms", outage)
	}
	if e.pod.Alloc.Failovers != 1 {
		t.Fatalf("allocator failovers = %d, want 1", e.pod.Alloc.Failovers)
	}
}

func TestGracefulMigrationNoLoss(t *testing.T) {
	cfg := DefaultConfig()
	pod := NewPod(cfg)
	hA := pod.AddHost()
	hB := pod.AddHost()
	hC := pod.AddHost()
	n1 := pod.AddNIC(hB, false)
	n2 := pod.AddNIC(hC, false)
	inst := pod.AddInstance(hA, IP(10, 0, 0, 10))
	client := pod.AddClient(IP(10, 0, 99, 1))
	pod.Start()
	inst.RequestAllocation() // lands on n1: least-loaded, first registered
	_ = n1
	pod.Go("echo", func(p *Proc) {
		conn, _ := inst.Stack.ListenUDP(7)
		for {
			dg := conn.Recv(p)
			conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data)
		}
	})
	// Migrate mid-stream.
	pod.Eng.At(50*time.Millisecond, func() { pod.Alloc.Migrate(inst.IPAddr(), n2.ID) })
	lost := 0
	sent := 0
	pod.Go("client", func(p *Proc) {
		conn, _ := client.Stack.ListenUDP(0)
		p.Sleep(2 * time.Millisecond)
		for p.Now() < 150*time.Millisecond {
			sent++
			conn.SendTo(p, inst.IPAddr(), 7, []byte("m"))
			if _, ok := conn.RecvTimeout(p, 5*time.Millisecond); !ok {
				lost++
			}
		}
		pod.Shutdown()
	})
	pod.Run(time.Second)
	if sent < 100 {
		t.Fatalf("sent only %d probes", sent)
	}
	// §3.3.4: graceful migration loses nothing (dual-RX window + GARP).
	if lost != 0 {
		t.Fatalf("graceful migration lost %d/%d probes", lost, sent)
	}
	if n2.Dev.TxPackets == 0 {
		t.Fatal("traffic never moved to the new NIC")
	}
	if pod.Alloc.Migrations != 1 {
		t.Fatalf("allocator migrations = %d", pod.Alloc.Migrations)
	}
}

func TestTwoInstancesShareOneNIC(t *testing.T) {
	// The multiplexing premise (§5.2): two instances on different hosts
	// share one NIC with correct isolation (each sees only its traffic).
	cfg := DefaultConfig()
	pod := NewPod(cfg)
	hA := pod.AddHost()
	hB := pod.AddHost()
	n1 := pod.AddNIC(hB, false)
	i1 := pod.AddInstance(hA, IP(10, 0, 0, 1))
	i2 := pod.AddInstance(hB, IP(10, 0, 0, 2))
	client := pod.AddClient(IP(10, 0, 99, 1))
	pod.Start()
	i1.Assign(n1.ID, 0)
	i2.Assign(n1.ID, 0)
	for _, in := range []*Instance{i1, i2} {
		in := in
		pod.Go("echo", func(p *Proc) {
			conn, _ := in.Stack.ListenUDP(7)
			for {
				dg := conn.Recv(p)
				// Tag the echo with the instance's own IP byte to prove
				// isolation.
				resp := append([]byte{byte(in.IPAddr())}, dg.Data...)
				conn.SendTo(p, dg.Src, dg.SrcPort, resp)
			}
		})
	}
	okCount := 0
	pod.Go("client", func(p *Proc) {
		conn, _ := client.Stack.ListenUDP(0)
		p.Sleep(2 * time.Millisecond)
		for i := 0; i < 40; i++ {
			target := i1.IPAddr()
			if i%2 == 1 {
				target = i2.IPAddr()
			}
			conn.SendTo(p, target, 7, []byte("q"))
			dg, ok := conn.RecvTimeout(p, 10*time.Millisecond)
			if !ok {
				t.Errorf("probe %d lost", i)
				return
			}
			if dg.Src != target || dg.Data[0] != byte(target) {
				t.Errorf("probe %d answered by wrong instance", i)
				return
			}
			okCount++
		}
		pod.Shutdown()
	})
	pod.Run(time.Second)
	if okCount != 40 {
		t.Fatalf("completed %d/40 probes", okCount)
	}
}

func TestFailoverWithRaftReplicatedAllocator(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RaftReplicas = 3
	pod := NewPod(cfg)
	hA := pod.AddHost()
	hB := pod.AddHost()
	hC := pod.AddHost()
	n1 := pod.AddNIC(hB, false)
	pod.AddNIC(hC, true) // backup
	inst := pod.AddInstance(hA, IP(10, 0, 0, 10))
	client := pod.AddClient(IP(10, 0, 99, 1))
	pod.Start()
	inst.RequestAllocation()
	pod.Go("echo", func(p *Proc) {
		conn, _ := inst.Stack.ListenUDP(7)
		for {
			dg := conn.Recv(p)
			conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data)
		}
	})
	pod.Eng.At(100*time.Millisecond, func() { pod.FailNICPort(n1.ID) })
	recovered := false
	pod.Go("client", func(p *Proc) {
		conn, _ := client.Stack.ListenUDP(0)
		p.Sleep(30 * time.Millisecond) // raft election + registration
		for p.Now() < 400*time.Millisecond {
			conn.SendTo(p, inst.IPAddr(), 7, []byte("x"))
			if _, ok := conn.RecvTimeout(p, 2*time.Millisecond); ok && p.Now() > 200*time.Millisecond {
				recovered = true
			}
		}
		pod.Shutdown()
	})
	pod.Run(time.Second)
	if !recovered {
		t.Fatal("service did not recover after failover with raft-replicated allocator")
	}
	if pod.Alloc.Failovers != 1 {
		t.Fatalf("failovers = %d", pod.Alloc.Failovers)
	}
	// The placement and failover decisions must be in every replica's log.
	for i, n := range pod.Raft {
		if n.CommitIndex() < 2 {
			t.Fatalf("replica %d committed %d entries, want >= 2 (place + failover)", i, n.CommitIndex())
		}
	}
}

func TestPooledSSDVolume(t *testing.T) {
	cfg := DefaultConfig()
	pod := NewPod(cfg)
	hA := pod.AddHost()
	hB := pod.AddHost()
	pod.AddNIC(hB, false)
	d := pod.AddSSD(hB, 1<<16)
	inst := pod.AddInstance(hA, IP(10, 0, 0, 10))
	vol := pod.AddVolume(inst, d.ID, 4096)
	pod.Start()
	ok := false
	pod.Go("app", func(p *Proc) {
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("volume not ready")
			pod.Shutdown()
			return
		}
		data := bytes.Repeat([]byte{0x42}, 8192)
		if err := vol.Write(p, 0, data); err != nil {
			t.Errorf("write: %v", err)
		}
		got, err := vol.Read(p, 0, 2)
		if err != nil {
			t.Errorf("read: %v", err)
		} else if !bytes.Equal(got, data) {
			t.Error("pooled SSD round trip mismatch")
		} else {
			ok = true
		}
		pod.Shutdown()
	})
	pod.Run(time.Second)
	if !ok {
		t.Fatal("pooled SSD I/O did not complete")
	}
}

func TestLargePodDeterministicStress(t *testing.T) {
	// Eight hosts, three pooled NICs + backup, eight instances all echoing
	// concurrently: exercises multi-frontend/multi-backend interleaving and
	// pins down determinism at scale.
	run := func() (int64, uint64) {
		cfg := DefaultConfig()
		pod := NewPod(cfg)
		var hosts []*Host
		for i := 0; i < 8; i++ {
			hosts = append(hosts, pod.AddHost())
		}
		pod.AddNIC(hosts[1], false)
		pod.AddNIC(hosts[3], false)
		pod.AddNIC(hosts[5], false)
		pod.AddNIC(hosts[7], true) // backup
		var insts []*Instance
		for i := 0; i < 8; i++ {
			insts = append(insts, pod.AddInstance(hosts[i], IP(10, 0, 0, byte(10+i))))
		}
		client := pod.AddClient(IP(10, 0, 99, 1))
		pod.Start()
		for _, in := range insts {
			in.RequestAllocation()
		}
		for _, in := range insts {
			in := in
			pod.Go("echo", func(p *Proc) {
				conn, err := in.Stack.ListenUDP(7)
				if err != nil {
					return
				}
				for {
					dg := conn.Recv(p)
					if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
						return
					}
				}
			})
		}
		var echoed int64
		pod.Go("client", func(p *Proc) {
			conn, _ := client.Stack.ListenUDP(0)
			p.Sleep(5 * time.Millisecond)
			for round := 0; round < 12; round++ {
				for _, in := range insts {
					conn.SendTo(p, in.IPAddr(), 7, []byte{byte(round)})
					if _, ok := conn.RecvTimeout(p, 10*time.Millisecond); ok {
						echoed++
					}
				}
			}
			pod.Shutdown()
		})
		end := pod.Run(5 * time.Second)
		return echoed, uint64(end)
	}
	e1, t1 := run()
	e2, t2 := run()
	if e1 != 96 {
		t.Fatalf("echoed %d/96 across 8 instances", e1)
	}
	if e1 != e2 || t1 != t2 {
		t.Fatalf("nondeterministic at scale: (%d,%d) vs (%d,%d)", e1, t1, e2, t2)
	}
}

func TestPodCXLAccountingConsistency(t *testing.T) {
	// Sanity invariant: every payload byte an instance transmits shows up
	// in the pool's write meters, and the NIC's DMA reads at least match
	// what it put on the wire.
	e := buildTestEcho(t)
	e.pod.Run(time.Second)
	var payloadWrites int64
	for _, port := range e.pod.Pool.Ports() {
		payloadWrites += port.WriteMeter().Category("payload")
	}
	if payloadWrites == 0 {
		t.Fatal("no payload writes metered")
	}
	if e.nic1.Dev.TxBytes == 0 {
		t.Fatal("NIC transmitted nothing")
	}
	// Line-granular metering means metered bytes >= wire bytes.
	var dmaReads int64
	for _, port := range e.pod.Pool.Ports() {
		dmaReads += port.ReadMeter().Category("payload")
	}
	if dmaReads < e.nic1.Dev.TxBytes {
		t.Fatalf("DMA payload reads (%d) below wire bytes (%d)", dmaReads, e.nic1.Dev.TxBytes)
	}
}

// buildTestEcho assembles a 2-host echo pod, runs 50 echoes, and returns it
// (the pod is shut down by the client process).
func buildTestEcho(t *testing.T) *echoPod {
	t.Helper()
	e := buildEchoPod(false)
	e.inst.RequestAllocation()
	e.startEchoServer(t)
	e.pod.Go("client", func(p *Proc) {
		conn, _ := e.client.Stack.ListenUDP(0)
		p.Sleep(2 * time.Millisecond)
		for i := 0; i < 50; i++ {
			conn.SendTo(p, e.inst.IPAddr(), 7, bytes.Repeat([]byte{1}, 1000))
			conn.RecvTimeout(p, 10*time.Millisecond)
		}
		e.pod.Shutdown()
	})
	return e
}

func TestAERProactiveFailoverEndToEnd(t *testing.T) {
	// A dying NIC (uncorrectable PCIe error burst, link still up) is failed
	// over proactively by the allocator — no packet-loss window at all,
	// because TX reroutes before anything is dropped.
	e := buildEchoPod(true)
	e.inst.RequestAllocation()
	e.startEchoServer(t)
	// Inject an error burst shortly before a telemetry window closes.
	e.pod.Eng.At(95*time.Millisecond, func() {
		for i := 0; i < 40; i++ {
			e.nic1.Dev.InjectAER(true)
		}
	})
	lost := 0
	e.pod.Go("client", func(p *Proc) {
		conn, _ := e.client.Stack.ListenUDP(0)
		p.Sleep(5 * time.Millisecond)
		for p.Now() < 300*time.Millisecond {
			conn.SendTo(p, e.inst.IPAddr(), 7, []byte("x"))
			if _, ok := conn.RecvTimeout(p, 2*time.Millisecond); !ok {
				lost++
			}
		}
		e.pod.Shutdown()
	})
	e.pod.Run(time.Second)
	if e.pod.Alloc.AERFailovers != 1 {
		t.Fatalf("AER failovers = %d, want 1", e.pod.Alloc.AERFailovers)
	}
	// The switch path never went down: proactive failover loses at most a
	// couple of in-flight probes.
	if lost > 3 {
		t.Fatalf("lost %d probes; proactive failover should be nearly lossless", lost)
	}
}

func TestStatsReportCoversComponents(t *testing.T) {
	e := buildTestEcho(t)
	e.pod.Run(time.Second)
	rep := e.pod.StatsReport()
	for _, want := range []string{
		"nic1/tx_packets", "host0/cache/hits", "alloc/placements",
		"host0/fe/tx_forwarded", "cxl/port/host0/rd_bytes{payload}",
		"host0/fe/chan/nic1/rx_lat",
	} {
		if !strings.Contains(rep, want) {
			t.Fatalf("stats report missing %q:\n%s", want, rep)
		}
	}
	// The same data is available as a typed snapshot.
	snap := e.pod.Stats()
	if snap.Value("alloc/placements") != 1 {
		t.Fatalf("alloc/placements = %v, want 1", snap.Value("alloc/placements"))
	}
	if snap.Value("nic1/tx_packets") == 0 {
		t.Fatal("nic1/tx_packets = 0, want traffic")
	}
}

func TestSharedHostCoreRunsNetAndStorage(t *testing.T) {
	// Tentpole payoff (§5.1): with SharedHostCore set, each host multiplexes
	// all of its engine loops onto ONE driver core. hostA runs its net and
	// storage frontends on a single core; hostB runs its net frontend plus
	// the NIC and SSD backend loops on another. Both datapaths must still
	// work end to end through the shared cores.
	cfg := DefaultConfig()
	cfg.SharedHostCore = true
	pod := NewPod(cfg)
	hA := pod.AddHost()
	hB := pod.AddHost()
	n1 := pod.AddNIC(hB, false)
	d := pod.AddSSD(hB, 1<<16)
	inst := pod.AddInstance(hA, IP(10, 0, 0, 10))
	vol := pod.AddVolume(inst, d.ID, 4096)
	client := pod.AddClient(IP(10, 0, 99, 1))
	pod.Start()

	// Every engine loop must run on its host's shared core, not a private one.
	if hA.Driver == nil || hB.Driver == nil {
		t.Fatal("hosts did not get shared driver cores")
	}
	if got := len(hA.Driver.Loops()); got != 2 { // net FE + storage FE
		t.Fatalf("hostA core runs %d loops, want 2 (net fe + storage fe)", got)
	}
	if got := len(hB.Driver.Loops()); got != 3 { // net FE + NIC BE + SSD BE
		t.Fatalf("hostB core runs %d loops, want 3 (net fe + nic be + ssd be)", got)
	}
	if hA.FE.Driver() != hA.Driver || hA.SFE.Driver() != hA.Driver {
		t.Fatal("hostA engines not attached to the shared core")
	}
	if n1.BE.Driver() != hB.Driver || d.BE.Driver() != hB.Driver {
		t.Fatal("hostB backends not attached to the shared core")
	}

	inst.RequestAllocation()
	pod.Go("echo-server", func(p *Proc) {
		conn, err := inst.Stack.ListenUDP(7)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			dg := conn.Recv(p)
			if err := conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data); err != nil {
				return
			}
		}
	})
	netOK, storOK := false, false
	pod.Go("app", func(p *Proc) {
		defer pod.Shutdown()
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("volume not ready")
			return
		}
		data := bytes.Repeat([]byte{0x5a}, 8192)
		if err := vol.Write(p, 0, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		got, err := vol.Read(p, 0, 2)
		if err != nil || !bytes.Equal(got, data) {
			t.Errorf("pooled SSD round trip failed (err=%v)", err)
			return
		}
		storOK = true
		conn, _ := client.Stack.ListenUDP(0)
		p.Sleep(2 * time.Millisecond)
		payload := bytes.Repeat([]byte{0xAB}, 64)
		for i := 0; i < 10; i++ {
			if err := conn.SendTo(p, inst.IPAddr(), 7, payload); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
			dg, ok := conn.RecvTimeout(p, 10*time.Millisecond)
			if !ok || !bytes.Equal(dg.Data, payload) {
				t.Errorf("echo %d failed", i)
				return
			}
		}
		netOK = true
	})
	pod.Run(time.Second)
	if !storOK || !netOK {
		t.Fatalf("shared-core datapaths incomplete: storage=%v net=%v", storOK, netOK)
	}
	if hB.Driver.Processed == 0 {
		t.Fatal("hostB shared core processed no messages")
	}
	snap := pod.Stats()
	if got := snap.Value("core/host1/loops"); got != 3 {
		t.Fatalf("core/host1/loops = %v, want 3:\n%s", got, snap.String())
	}
	if snap.Value("core/host1/processed") == 0 {
		t.Fatal("core/host1/processed = 0, want messages through the shared core")
	}
}

func TestChannelLatencyHistogram(t *testing.T) {
	// Fig. 6-style measurement: one-way delivery latency on the message
	// channel feeding host0's frontend from nic1's backend. The paper
	// reports single-digit-microsecond channel latencies; the simulated
	// CXL timings land the median in the same low-microsecond band.
	e := buildTestEcho(t)
	e.pod.Run(time.Second)
	h := e.pod.Stats().Histogram("host0/fe/chan/nic1/rx_lat")
	if h == nil {
		t.Fatal("no rx_lat histogram registered for host0/fe/chan/nic1")
	}
	if h.Count < 50 {
		t.Fatalf("rx_lat count = %d, want >= 50 (one per echo)", h.Count)
	}
	if h.P50 <= 0 || h.P50 > 20*time.Microsecond {
		t.Fatalf("rx_lat p50 = %v, want low-microsecond one-way latency", h.P50)
	}
	if h.P99 < h.P50 || h.Max < h.P99 {
		t.Fatalf("quantiles not monotone: p50=%v p99=%v max=%v", h.P50, h.P99, h.Max)
	}
}

func TestPodSnapshotJSONDeterministic(t *testing.T) {
	// Two identical runs must serialize to byte-identical JSON: same series,
	// same order, same values, same trace events at the same virtual times.
	run := func() []byte {
		e := buildTestEcho(t)
		e.pod.Run(time.Second)
		return e.pod.Stats().JSON()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("snapshot JSON differs across identical runs:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestBuilderErrForms(t *testing.T) {
	cfg := DefaultConfig()
	pod := NewPod(cfg)
	h := pod.AddHost()
	n, err := pod.AddNICErr(h, false)
	if err != nil || n == nil {
		t.Fatalf("AddNICErr: %v", err)
	}
	inst, err := pod.AddInstanceErr(h, IP(10, 0, 0, 1))
	if err != nil {
		t.Fatalf("AddInstanceErr: %v", err)
	}
	if inst.Host() != h {
		t.Fatal("instance did not record its host")
	}
	if _, err := pod.AddInstanceErr(h, IP(10, 0, 0, 1)); err == nil {
		t.Fatal("duplicate instance IP accepted")
	}
	if _, err := pod.AddVolumeErr(&Instance{}, 1, 64); err == nil {
		t.Fatal("AddVolumeErr accepted an instance with no host")
	}
	pod.Start()
	// The topology stays mutable after Start: pooled adds wire their node
	// immediately…
	if _, err := pod.AddNICErr(h, false); err != nil {
		t.Fatalf("AddNICErr after Start: %v", err)
	}
	if _, err := pod.AddSSDErr(h, 1024); err != nil {
		t.Fatalf("AddSSDErr after Start: %v", err)
	}
	if _, err := pod.AddInstanceErr(h, IP(10, 0, 0, 2)); err != nil {
		t.Fatalf("AddInstanceErr after Start: %v", err)
	}
	if _, err := pod.AddVolumeErr(inst, 1, 64); err != nil {
		t.Fatalf("AddVolumeErr after Start: %v", err)
	}
	// …while the baseline local-driver path stays construct-then-run and
	// refuses with the typed frozen error.
	if _, err := pod.AddLocalNICErr(h); !errors.Is(err, ErrFrozen) {
		t.Fatalf("AddLocalNICErr after Start: got %v, want ErrFrozen", err)
	}
	if _, err := pod.AddLocalInstanceErr(h, IP(10, 0, 0, 3)); !errors.Is(err, ErrFrozen) {
		t.Fatalf("AddLocalInstanceErr after Start: got %v, want ErrFrozen", err)
	}
	pod.Shutdown()
}

func TestAssignOnLocalInstanceErrors(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NoAllocator = true
	pod := NewPod(cfg)
	h := pod.AddHost()
	pod.AddLocalNIC(h)
	inst := pod.AddLocalInstance(h, IP(10, 0, 0, 1))
	if inst.IsPooled() {
		t.Fatal("local instance reported as pooled")
	}
	err := inst.Assign(1, 0)
	if err == nil {
		t.Fatal("Assign on a local instance should error, not panic")
	}
	if !strings.Contains(err.Error(), "local instance") {
		t.Fatalf("Assign error not descriptive: %v", err)
	}
	pod.Shutdown()
}

// TestSSDFailoverEpochFence drives the full storage recovery path: the
// drive's backend engine stalls, the allocator's lease expires, the volume
// re-binds onto the backup drive with a bumped epoch, and — once the
// zombie backend resumes and drains its ring — its late completions are
// rejected by the epoch fence instead of corrupting state. No acked write
// may be lost across the failover.
func TestSSDFailoverEpochFence(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Allocator.LeaseTimeout = 100 * time.Millisecond
	cfg.Storage.TelemetryEvery = 40 * time.Millisecond
	pod := NewPod(cfg)
	h0 := pod.AddHost() // allocator
	h1 := pod.AddHost() // primary drive
	h2 := pod.AddHost() // backup drive
	h3 := pod.AddHost() // instance
	_, _ = h0, h2
	prim := pod.AddSSD(h1, 1<<12)
	back := pod.AddBackupSSD(h2, 1<<12)
	inst := pod.AddInstance(h3, IP(10, 0, 0, 10))
	vol := pod.AddVolume(inst, prim.ID, 64)
	pod.Start()
	if err := pod.RunFaultPlan(faults.Plan{
		Name: "ssd-stall",
		Events: []faults.Event{
			{At: 50 * time.Millisecond, Kind: faults.EngineStall, Target: "host1/storage-be1", Heal: 300 * time.Millisecond},
		},
	}); err != nil {
		t.Fatal(err)
	}
	var acked, failed int
	var lastAcked byte
	pod.Go("writer", func(p *Proc) {
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("volume never became ready")
			pod.Shutdown()
			return
		}
		blk := make([]byte, 4096)
		for seq := byte(1); p.Now() < 500*time.Millisecond; seq++ {
			for i := range blk {
				blk[i] = seq
			}
			if err := vol.Write(p, 0, blk); err != nil {
				failed++
			} else {
				acked++
				lastAcked = seq
			}
			p.Sleep(time.Millisecond)
		}
		got, err := vol.Read(p, 0, 1)
		if err != nil {
			t.Errorf("post-failover read: %v", err)
		} else if got[0] != lastAcked {
			t.Errorf("acked write lost: read seq %d, last acked %d", got[0], lastAcked)
		}
		pod.Shutdown()
	})
	pod.Run(time.Second)
	if vol.Primary() != back.ID {
		t.Fatalf("volume primary = ssd%d, want backup ssd%d", vol.Primary(), back.ID)
	}
	if vol.Epoch() == 0 {
		t.Fatal("failover did not bump the volume epoch")
	}
	if vol.Lost() {
		t.Fatal("volume declared lost despite a live backup")
	}
	sfe := h3.SFE
	if sfe.Rebinds < 1 {
		t.Fatalf("rebinds = %d, want >= 1", sfe.Rebinds)
	}
	if sfe.StaleRejected < 1 {
		t.Fatalf("stale completions rejected = %d, want >= 1 (zombie backend drained its ring)", sfe.StaleRejected)
	}
	if pod.Alloc.SSDFailovers < 1 {
		t.Fatalf("allocator SSD failovers = %d, want >= 1", pod.Alloc.SSDFailovers)
	}
	if acked == 0 {
		t.Fatal("writer never got an ack")
	}
	// Both new metric families must surface through Pod.Stats.
	rep := pod.StatsReport()
	for _, want := range []string{"faults/engine-stall/injected", "alloc/recovery/ssd_failovers", "alloc/recovery/detect_lat"} {
		if !strings.Contains(rep, want) {
			t.Errorf("Pod.Stats missing %q", want)
		}
	}
}

// TestVolumeLostWithoutBackup exercises the typed degraded state: when the
// primary drive fails and the pod has no backup drive, the allocator
// declares the volumes lost and the frontend surfaces ErrVolumeLost to the
// guest instead of retrying forever.
func TestVolumeLostWithoutBackup(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Allocator.LeaseTimeout = 100 * time.Millisecond
	cfg.Storage.TelemetryEvery = 40 * time.Millisecond
	pod := NewPod(cfg)
	h0 := pod.AddHost()
	h1 := pod.AddHost()
	h2 := pod.AddHost()
	_ = h0
	d := pod.AddSSD(h1, 1<<12)
	inst := pod.AddInstance(h2, IP(10, 0, 0, 10))
	vol := pod.AddVolume(inst, d.ID, 64)
	pod.Start()
	if err := pod.RunFaultPlan(faults.Plan{
		Name: "drive-dies",
		Events: []faults.Event{
			{At: 50 * time.Millisecond, Kind: faults.SSDFail, Target: "ssd1"},
		},
	}); err != nil {
		t.Fatal(err)
	}
	var lostErr error
	pod.Go("writer", func(p *Proc) {
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("volume never became ready")
			pod.Shutdown()
			return
		}
		blk := make([]byte, 4096)
		for p.Now() < 600*time.Millisecond {
			if err := vol.Write(p, 0, blk); err != nil {
				lostErr = err
				break
			}
			p.Sleep(time.Millisecond)
		}
		pod.Shutdown()
	})
	pod.Run(time.Second)
	if lostErr == nil {
		t.Fatal("write never failed after the only drive died")
	}
	if !errors.Is(lostErr, storengine.ErrVolumeLost) {
		t.Fatalf("write error = %v, want ErrVolumeLost", lostErr)
	}
	if !vol.Lost() {
		t.Fatal("volume not marked lost")
	}
	if h2.SFE.VolumesLost < 1 {
		t.Fatalf("VolumesLost = %d, want >= 1", h2.SFE.VolumesLost)
	}
}

// TestAllocatorSurvivesLeaderCrash crashes the allocator host — taking
// down both the allocator engine and the raft leader — while an instance
// is asking for a NIC. The frontend must retry the allocation RPC, the
// surviving replicas must elect a new leader, and the resumed allocator
// must reconstruct its leases and place the instance through the new
// leader.
func TestAllocatorSurvivesLeaderCrash(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RaftReplicas = 3
	cfg.Allocator.LeaseTimeout = 100 * time.Millisecond
	cfg.Engine.TelemetryEvery = 40 * time.Millisecond
	pod := NewPod(cfg)
	h0 := pod.AddHost() // allocator + raft leader (node 0 elects first)
	h1 := pod.AddHost()
	h2 := pod.AddHost()
	h3 := pod.AddHost()
	_ = h0
	pod.AddNIC(h1, false)
	pod.AddNIC(h2, false)
	inst := pod.AddInstance(h3, IP(10, 0, 0, 10))
	pod.Start()
	if err := pod.RunFaultPlan(faults.Plan{
		Name: "leader-loss",
		Events: []faults.Event{
			{At: 50 * time.Millisecond, Kind: faults.HostCrash, Target: "host0", Heal: 200 * time.Millisecond},
		},
	}); err != nil {
		t.Fatal(err)
	}
	readyIn := Duration(0)
	pod.Go("app", func(p *Proc) {
		p.Sleep(60 * time.Millisecond) // ask while the allocator is down
		inst.RequestAllocation()
		if inst.WaitReady(p, time.Second) {
			readyIn = p.Now() - 60*time.Millisecond
		}
		p.Sleep(100 * time.Millisecond) // let the restarted replica catch up
		pod.Shutdown()
	})
	pod.Run(2 * time.Second)
	if readyIn == 0 {
		t.Fatal("instance never allocated after allocator host crash")
	}
	if readyIn > 500*time.Millisecond {
		t.Fatalf("allocation took %v, want < 500ms after the allocator resumed", readyIn)
	}
	if h3.FE.AllocRetries < 1 {
		t.Fatalf("frontend alloc retries = %d, want >= 1", h3.FE.AllocRetries)
	}
	if pod.Alloc.LeaseReconstructions < 1 {
		t.Fatalf("lease reconstructions = %d, want >= 1", pod.Alloc.LeaseReconstructions)
	}
	leaders := 0
	for _, n := range pod.Raft {
		if n.IsLeader() && !n.Stopped() {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("live leaders = %d, want exactly 1", leaders)
	}
	// The placement must be in the replicated log everywhere.
	for i, n := range pod.Raft {
		if n.CommitIndex() < 1 {
			t.Fatalf("replica %d committed nothing — placement not replicated", i)
		}
	}
}
