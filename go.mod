module oasis

go 1.22
