package oasis

import (
	"fmt"

	"oasis/internal/allocator"
	"oasis/internal/core"
)

// registerObs walks the topology and registers every component's
// instruments with the registry. Runs once at the end of Start, so
// channel-latency trackers and driver loops already exist; nodes added
// later register their own instruments as part of late wiring (the
// obsDrivers set dedupes shared cores across both paths). Registration
// order is deterministic (sorted device ids, host insertion order), and
// Snapshot re-sorts by name anyway.
func (t *Topology) registerObs() {
	r := t.obs
	for _, id := range t.nicIDs() {
		n := t.NICs[id]
		n.Dev.RegisterObs(r, t.nicName(id))
		if n.BE != nil {
			n.BE.RegisterObs(r, n.BE.LoopName())
		}
	}
	for _, id := range t.ssdIDs() {
		d := t.SSDs[id]
		d.Dev.RegisterObs(r, t.ssdName(id))
		d.BE.RegisterObs(r, d.BE.LoopName())
	}
	for _, pt := range t.Pool.Ports() {
		pt.RegisterObs(r, "cxl/port/"+pt.Name())
	}
	for _, ph := range t.Hosts {
		if ph.removed {
			continue
		}
		if ph.H.Cache != nil {
			ph.H.Cache.RegisterObs(r, ph.H.Name+"/cache")
		}
		ph.FE.RegisterObs(r, ph.FE.LoopName())
		if ph.SFE != nil {
			ph.SFE.RegisterObs(r, ph.SFE.LoopName())
		}
		if ph.LD != nil {
			ph.LD.RegisterObs(r, ph.LD.LoopName())
		}
		// The shared host core (if any) registers under core/<host>; the
		// dedicated per-engine drivers below dedupe against it by pointer
		// and register under core/<loop name> instead.
		t.regDriver(ph.Driver, "core/"+ph.H.Name)
		if d := ph.FE.Driver(); d != nil {
			t.regDriver(d, "core/"+d.Name())
		}
		if ph.SFE != nil {
			if d := ph.SFE.Driver(); d != nil {
				t.regDriver(d, "core/"+d.Name())
			}
		}
		if ph.LD != nil {
			if d := ph.LD.Driver(); d != nil {
				t.regDriver(d, "core/"+d.Name())
			}
		}
		for _, be := range ph.BEs {
			if d := be.Driver(); d != nil {
				t.regDriver(d, "core/"+d.Name())
			}
		}
	}
	for _, id := range t.ssdIDs() {
		if d := t.SSDs[id].BE.Driver(); d != nil {
			t.regDriver(d, "core/"+d.Name())
		}
	}
	if t.Alloc != nil {
		t.Alloc.RegisterObs(r, t.scope+"alloc")
		if d := t.Alloc.Driver(); d != nil {
			t.regDriver(d, "core/"+d.Name())
		}
	}
	for i, node := range t.Raft {
		node.RegisterObs(r, fmt.Sprintf("%sraft/%d", t.scope, i))
	}
}

// regDriver registers a driver core's instruments once (shared host cores
// are reached through several engines; the persistent set dedupes them
// across Start and late wiring).
func (t *Topology) regDriver(d *core.Driver, prefix string) {
	if d == nil || t.obsDrivers[d] {
		return
	}
	t.obsDrivers[d] = true
	d.RegisterObs(t.obs, prefix)
}

// --- Late wiring: the post-Start halves of the Add* builders. Each mirrors
// the corresponding slice of Start for exactly one node: links to every
// existing peer, control-plane registration, driver launch, and metric
// registration. The engine is cooperative, so growing the link and peer
// maps between poll iterations is safe.

// wireHostLate wires a host added after Start.
func (t *Topology) wireHostLate(ph *Host) error {
	for _, id := range t.nicIDs() {
		n := t.NICs[id]
		if n.BE == nil {
			continue
		}
		feEnd, beEnd, err := core.NewDuplexLink(t.Pool, ph.H, n.BE.Host(), t.cfg.Engine.Chan)
		if err != nil {
			return err
		}
		ph.FE.ConnectBackend(n.ID, n.Dev.MAC(), feEnd)
		n.BE.ConnectFrontend(ph.H.ID, beEnd)
	}
	if t.Alloc != nil {
		aEnd, feEnd, err := core.NewDuplexLink(t.Pool, t.allocHost().H, ph.H, t.cfg.Engine.Chan)
		if err != nil {
			return err
		}
		t.Alloc.AddFrontend(ph.H.ID, aEnd)
		ph.FE.SetControlLink(feEnd)
	}
	if t.cfg.SharedHostCore {
		ph.Driver = core.NewDriver(ph.H, ph.H.Name+"/engines", core.DriverConfig{
			LoopCost:    t.cfg.Engine.LoopCost,
			IdleBackoff: t.cfg.Engine.IdleBackoff,
		})
		ph.FE.Join(ph.Driver)
	}
	ph.FE.Start()
	if pt := ph.H.CXLPort; pt != nil {
		pt.RegisterObs(t.obs, "cxl/port/"+pt.Name())
	}
	if ph.H.Cache != nil {
		ph.H.Cache.RegisterObs(t.obs, ph.H.Name+"/cache")
	}
	ph.FE.RegisterObs(t.obs, ph.FE.LoopName())
	t.regDriver(ph.Driver, "core/"+ph.H.Name)
	if d := ph.FE.Driver(); d != nil {
		t.regDriver(d, "core/"+d.Name())
	}
	return nil
}

// wireNICLate wires a pooled NIC added after Start.
func (t *Topology) wireNICLate(on *Host, n *NIC) error {
	for _, ph := range t.Hosts {
		if ph.removed {
			continue
		}
		feEnd, beEnd, err := core.NewDuplexLink(t.Pool, ph.H, n.BE.Host(), t.cfg.Engine.Chan)
		if err != nil {
			return err
		}
		ph.FE.ConnectBackend(n.ID, n.Dev.MAC(), feEnd)
		n.BE.ConnectFrontend(ph.H.ID, beEnd)
	}
	if t.Alloc != nil {
		aEnd, beEnd, err := core.NewDuplexLink(t.Pool, t.allocHost().H, n.BE.Host(), t.cfg.Engine.Chan)
		if err != nil {
			return err
		}
		t.Alloc.AddNIC(allocator.NICInfo{
			ID:          n.ID,
			HostID:      n.BE.Host().ID,
			CapacityBps: t.cfg.Switch.PortBandwidth,
			Backup:      n.Backup,
		}, aEnd)
		n.BE.SetControlLink(beEnd)
	}
	if t.cfg.SharedHostCore && on.Driver != nil {
		n.BE.Join(on.Driver)
	}
	n.Dev.Start()
	n.BE.Start()
	n.Dev.RegisterObs(t.obs, t.nicName(n.ID))
	n.BE.RegisterObs(t.obs, n.BE.LoopName())
	if n.dmaPort != nil {
		n.dmaPort.RegisterObs(t.obs, "cxl/port/"+n.dmaPort.Name())
	}
	if d := n.BE.Driver(); d != nil {
		t.regDriver(d, "core/"+d.Name())
	}
	return nil
}

// wireSSDLate wires a pooled SSD added after Start.
func (t *Topology) wireSSDLate(on *Host, d *SSDDev) error {
	for _, ph := range t.Hosts {
		if ph.removed || ph.SFE == nil {
			continue
		}
		feEnd, beEnd, err := core.NewDuplexLink(t.Pool, ph.H, d.BE.Host(), t.cfg.Storage.Chan)
		if err != nil {
			return err
		}
		ph.SFE.ConnectBackend(d.ID, feEnd)
		d.BE.ConnectFrontend(ph.H.ID, beEnd)
	}
	if t.Alloc != nil {
		aEnd, beEnd, err := core.NewDuplexLink(t.Pool, t.allocHost().H, d.BE.Host(), t.cfg.Engine.Chan)
		if err != nil {
			return err
		}
		t.Alloc.AddSSD(allocator.SSDInfo{ID: d.ID, HostID: d.BE.Host().ID, Backup: d.Backup}, aEnd)
		d.BE.SetControlLink(beEnd)
	}
	if t.cfg.SharedHostCore && on.Driver != nil {
		d.BE.Join(on.Driver)
	}
	d.Dev.Start()
	d.BE.Start()
	if d.Backup {
		for _, ph := range t.Hosts {
			if !ph.removed && ph.SFE != nil {
				ph.SFE.SetBackupSSD(d.ID)
			}
		}
	}
	d.Dev.RegisterObs(t.obs, t.ssdName(d.ID))
	d.BE.RegisterObs(t.obs, d.BE.LoopName())
	if d.dmaPort != nil {
		d.dmaPort.RegisterObs(t.obs, "cxl/port/"+d.dmaPort.Name())
	}
	if drv := d.BE.Driver(); drv != nil {
		t.regDriver(drv, "core/"+drv.Name())
	}
	return nil
}

// wireStorageFELate wires a storage frontend created after Start (first
// AddVolume on a host that had none).
func (t *Topology) wireStorageFELate(ph *Host) error {
	for _, id := range t.ssdIDs() {
		d := t.SSDs[id]
		feEnd, beEnd, err := core.NewDuplexLink(t.Pool, ph.H, d.BE.Host(), t.cfg.Storage.Chan)
		if err != nil {
			return err
		}
		ph.SFE.ConnectBackend(d.ID, feEnd)
		d.BE.ConnectFrontend(ph.H.ID, beEnd)
	}
	if bid := t.backupSSDID(); bid != 0 {
		ph.SFE.SetBackupSSD(bid)
	}
	if t.Alloc != nil {
		aEnd, sfeEnd, err := core.NewDuplexLink(t.Pool, t.allocHost().H, ph.H, t.cfg.Engine.Chan)
		if err != nil {
			return err
		}
		t.Alloc.AddStorageFrontend(ph.H.ID, aEnd)
		ph.SFE.SetControlLink(sfeEnd)
	}
	if t.cfg.SharedHostCore && ph.Driver != nil {
		ph.SFE.Join(ph.Driver)
	}
	ph.SFE.Start()
	ph.SFE.RegisterObs(t.obs, ph.SFE.LoopName())
	if d := ph.SFE.Driver(); d != nil {
		t.regDriver(d, "core/"+d.Name())
	}
	return nil
}
