// Benchmark harness: one testing.B benchmark per table and figure in the
// paper's evaluation. Each benchmark executes the corresponding experiment
// runner (the same code cmd/oasis-bench uses) and reports its headline
// metrics via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates every result. Wall-clock cost varies per experiment; the
// failover runs simulate multiple virtual seconds. Scales below trade a
// little statistical tightness for tractable benchmark time; run
// cmd/oasis-bench -scale 1 for the full-length versions.
package oasis_test

import (
	"testing"

	"oasis/internal/experiments"
)

// runExperiment executes the runner once per benchmark iteration and
// report the chosen metrics.
func runExperiment(b *testing.B, id string, scale float64, metrics map[string]string) {
	b.Helper()
	runner, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	for i := 0; i < b.N; i++ {
		r := runner(scale)
		for key, unit := range metrics {
			if v, ok := r.Values[key]; ok {
				b.ReportMetric(v, unit)
			}
		}
	}
}

// BenchmarkFig2Stranding regenerates Figure 2: stranded NIC/SSD/CPU/memory
// percentages vs pod size under pooled provisioning.
func BenchmarkFig2Stranding(b *testing.B) {
	runExperiment(b, "fig2", 1, map[string]string{
		"base_nic": "NICstranded-pod1",
		"pod8_nic": "NICstranded-pod8",
		"base_ssd": "SSDstranded-pod1",
		"pod8_ssd": "SSDstranded-pod8",
	})
}

// BenchmarkFig3Trace regenerates Figure 3: the bursty inbound traffic of
// four production-like hosts.
func BenchmarkFig3Trace(b *testing.B) {
	runExperiment(b, "fig3", 1, map[string]string{
		"host1_p9999":     "P99.99util",
		"host1_peak_gbps": "peakGbps",
	})
}

// BenchmarkTable1Requirements prints the device-model parameters matching
// Table 1.
func BenchmarkTable1Requirements(b *testing.B) {
	runExperiment(b, "tab1", 1, map[string]string{
		"nic_mops": "NIC-MOp/s",
		"ssd_mops": "SSD-MOp/s",
	})
}

// BenchmarkTable2Utilization regenerates Table 2: per-host and aggregated
// P99.99 NIC utilization.
func BenchmarkTable2Utilization(b *testing.B) {
	runExperiment(b, "tab2", 1, map[string]string{
		"rackA_agg": "rackA-agg-P99.99",
		"rackB_agg": "rackB-agg-P99.99",
	})
}

// BenchmarkFig6MsgChannel regenerates Figure 6: throughput and median
// latency of the four message-channel designs.
func BenchmarkFig6MsgChannel(b *testing.B) {
	runExperiment(b, "fig6", 1, map[string]string{
		"sat_0":                  "bypass-MOp/s",
		"sat_1":                  "naive-MOp/s",
		"sat_2":                  "invConsumed-MOp/s",
		"sat_3":                  "invPrefetched-MOp/s",
		"lat14_invPrefetched_us": "final-lat14-µs",
	})
}

// BenchmarkFig8WebApps regenerates Figure 8: the Oasis overhead on the
// four web applications.
func BenchmarkFig8WebApps(b *testing.B) {
	runExperiment(b, "fig8", 0.5, map[string]string{
		"nginx_c1_delta_p50_us":       "nginx-Δp50-µs",
		"python-http_c1_delta_p50_us": "python-Δp50-µs",
	})
}

// BenchmarkFig9Memcached regenerates Figure 9.
func BenchmarkFig9Memcached(b *testing.B) {
	runExperiment(b, "fig9", 1, map[string]string{
		"memcached_c1_delta_p50_us": "Δp50-µs",
		"memcached_c1_delta_p99_us": "Δp99-µs",
	})
}

// BenchmarkFig10UDPEcho regenerates Figure 10: echo overhead vs packet
// size and load.
func BenchmarkFig10UDPEcho(b *testing.B) {
	runExperiment(b, "fig10", 1, map[string]string{
		"s75_r5000_delta_p50_us":   "75B-Δp50-µs",
		"s1500_r5000_delta_p50_us": "1500B-Δp50-µs",
	})
}

// BenchmarkFig11Breakdown regenerates Figure 11: baseline vs baseline+CXL
// buffers vs Oasis.
func BenchmarkFig11Breakdown(b *testing.B) {
	runExperiment(b, "fig11", 1, map[string]string{
		"cxlbuf_minus_base_us":  "buffers-in-CXL-µs",
		"oasis_minus_cxlbuf_us": "message-passing-µs",
	})
}

// BenchmarkTable3CXLBandwidth regenerates Table 3: CXL link bandwidth by
// category under idle and busy load.
func BenchmarkTable3CXLBandwidth(b *testing.B) {
	runExperiment(b, "tab3", 1, map[string]string{
		"Idle_message":          "idle-msg-GB/s",
		"Busy (1500 B)_payload": "busy1500-payload-GB/s",
		"Busy (1500 B)_message": "busy1500-msg-GB/s",
	})
}

// BenchmarkFig12Multiplexing regenerates Figure 12: trace-replay RTTs with
// and without NIC sharing.
func BenchmarkFig12Multiplexing(b *testing.B) {
	runExperiment(b, "fig12", 0.5, map[string]string{
		"base_h1_p99_us":   "ownNIC-h1-p99-µs",
		"mux_h1_p99_us":    "shared-h1-p99-µs",
		"util_multiplexed": "agg-P99.99util",
	})
}

// BenchmarkFig13FailoverUDP regenerates Figure 13: the UDP interruption
// window around a NIC failure.
func BenchmarkFig13FailoverUDP(b *testing.B) {
	runExperiment(b, "fig13", 0.3, map[string]string{
		"outage_ms": "outage-ms",
		"lost":      "probes-lost",
	})
}

// BenchmarkFig14FailoverTCP regenerates Figure 14: memcached P99 recovery
// after the failure.
func BenchmarkFig14FailoverTCP(b *testing.B) {
	runExperiment(b, "fig14", 0.3, map[string]string{
		"recovery_ms": "recovery-ms",
		"base_p99_us": "steady-p99-µs",
	})
}

// --- ablation benches (design choices from DESIGN.md §5 and the paper's §6
// future-work extensions) ---

// BenchmarkAblCounterBatch sweeps the consumed-counter batch size (§4).
func BenchmarkAblCounterBatch(b *testing.B) {
	runExperiment(b, "abl-counter", 1, map[string]string{
		"batch1":    "perMsg-MOp/s",
		"batch4096": "batched-MOp/s",
	})
}

// BenchmarkAblBackendInspect compares flow tagging vs payload inspection
// (§3.3.1).
func BenchmarkAblBackendInspect(b *testing.B) {
	runExperiment(b, "abl-inspect", 1, map[string]string{
		"tagged_p50_us":  "tagged-p50-µs",
		"inspect_p50_us": "inspect-p50-µs",
	})
}

// BenchmarkAblFailoverMechanism compares MAC borrowing vs GARP-only (§3.3.3).
func BenchmarkAblFailoverMechanism(b *testing.B) {
	runExperiment(b, "abl-failover", 0.5, map[string]string{
		"borrow_ms": "borrow-ms",
		"garp_ms":   "garp-ms",
	})
}

// BenchmarkAblHWCoherent measures the CXL 3.0 Back-Invalidation channel (§6).
func BenchmarkAblHWCoherent(b *testing.B) {
	runExperiment(b, "abl-coherent", 1, map[string]string{
		"sw_mops": "sw-MOp/s",
		"hw_mops": "hw-MOp/s",
	})
}

// BenchmarkAblSharding measures multi-channel scaling (§6).
func BenchmarkAblSharding(b *testing.B) {
	runExperiment(b, "abl-sharding", 1, map[string]string{
		"shards1": "1shard-MOp/s",
		"shards8": "8shards-MOp/s",
	})
}

// BenchmarkAblQoS measures RDT-style bandwidth partitioning (§6).
func BenchmarkAblQoS(b *testing.B) {
	runExperiment(b, "abl-qos", 1, map[string]string{
		"noqos_p99_us": "noQoS-p99-µs",
		"qos_p99_us":   "QoS-p99-µs",
	})
}

// BenchmarkAblStorage measures the storage engine's IOPS/latency curve
// (§3.4; no paper reference numbers — the engine is unimplemented there).
func BenchmarkAblStorage(b *testing.B) {
	runExperiment(b, "abl-storage", 1, map[string]string{
		"d1_p50_us": "depth1-p50-µs",
		"d64_kiops": "depth64-kIOPS",
	})
}

// BenchmarkRacksweep measures the rack-scale sweep: a 512-host multi-pod
// cluster (placement, hot-spot migration, live traffic, serial execution)
// plus the pooling model at 2048 hosts. Its ns/op is the headline
// wall-clock number for simulator capacity at rack scale.
func BenchmarkRacksweep(b *testing.B) {
	runExperiment(b, "racksweep", 1, map[string]string{
		"hosts":      "hosts",
		"migrations": "migrations",
		"pod64_nic":  "NICstranded-pod64",
	})
}

// benchRacksweepSim is the partitions=1 vs partitions=N comparison row:
// the same 512-host rack simulation (no analytic tail), timed over its Run
// phase only — construction is serial in both modes. The partitioned
// variant runs each pod's event loop on its own goroutine inside
// conservative lookahead windows; "run-s" is the metric to compare. Even
// single-core, the split wins ~1.5× (smaller per-pod heaps, more Sleep
// fast-path hits); multi-core hosts add parallel speedup on top.
func benchRacksweepSim(b *testing.B, mode string) {
	for i := 0; i < b.N; i++ {
		secs, parts, vals := experiments.RacksweepSimTimedMode(0.2, mode)
		b.ReportMetric(secs, "run-s")
		b.ReportMetric(float64(parts), "partitions")
		b.ReportMetric(vals["hosts"], "hosts")
		b.ReportMetric(vals["echoes"], "echoes")
	}
}

// BenchmarkRacksweepSimPartitions1 is the serial baseline row.
func BenchmarkRacksweepSimPartitions1(b *testing.B) { benchRacksweepSim(b, "serial") }

// BenchmarkRacksweepSimPartitionsN runs the identical simulation split
// into one partition per pod (plus the control partition).
func BenchmarkRacksweepSimPartitionsN(b *testing.B) { benchRacksweepSim(b, "perpod") }

// BenchmarkRacksweepSimPerHost splits out one partition per client on top
// of the per-pod split (33 partitions at this shape): the load generators
// advance in parallel with the pods they drive. Not byte-comparable to the
// other two rows — the remote client attachment adds real cable latency —
// but run-s measures the same Run phase over the same workload shape.
func BenchmarkRacksweepSimPerHost(b *testing.B) { benchRacksweepSim(b, "perhost") }
