// Package faults is the pod's deterministic fault-injection subsystem: a
// typed vocabulary of failures — fail-stop (host crashes, engine stalls,
// link drops, drive failures, switch-port flaps) and degraded-mode gray
// failures (slow drives, lossy NICs, CXL jitter, flaky links) — a replayable
// Plan that schedules them on the simulation clock, and an Injector that
// executes the plan through per-kind handlers supplied by the binding
// layer (the pod). Everything is driven by virtual time and fixed seeds,
// so a chaos campaign is byte-for-byte reproducible: the same Plan against
// the same topology yields the same injection log, the same recovery
// histograms, and the same experiment report.
//
// The package deliberately knows nothing about pod internals — handlers
// close over whatever state a fault needs to flip. That keeps the fault
// vocabulary reusable (experiments, tests, examples) and the blast radius
// of each fault explicit at the binding site.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"oasis/internal/metrics"
	"oasis/internal/obs"
	"oasis/internal/sim"
)

// Kind enumerates the fault vocabulary.
type Kind uint8

const (
	// HostCrash fail-stops a pod host: every engine loop on it freezes and
	// its raft replica (if any) stops. Healing restarts the loops and the
	// replica (which rejoins as a follower).
	HostCrash Kind = iota + 1
	// EngineStall freezes one engine's driver loop — the software analogue
	// of a wedged driver core. Healing resumes it; a stalled backend that
	// held I/Os completes them late, which is exactly the zombie the
	// storage engine's epoch fencing must reject.
	EngineStall
	// NICLinkDown forces a NIC's PHY link down (below the switch port, so
	// debounce state is invalidated). Healing forces it back up.
	NICLinkDown
	// SSDFail fail-stops a drive's controller. Healing repairs the
	// controller, but the drive's contents are treated as stale — a healed
	// drive does not get its volumes back (no automatic fail-back).
	SSDFail
	// PortFlap disables a switch port and re-enables it after Heal — the
	// paper's §5.3 failure injection, made transient.
	PortFlap
	// CXLDegrade multiplies a CXL port's latency by LatMult and cuts its
	// bandwidth to BWFrac of nominal — a degraded retimer/link, the gray
	// failure between healthy and dead. Healing restores nominal service.
	CXLDegrade
	// SSDSlow inflates a drive's media latency by LatMult without failing
	// it — the classic gray drive: I/O still completes, just late enough to
	// drag every dependent tail. Healing restores nominal latency.
	SSDSlow
	// NICLossy drops a pseudo-random fraction Drop of the NIC's frames
	// (seeded, deterministic), leaving the link administratively up — loss
	// the link-state machinery never sees. Healing stops the drops.
	NICLossy
	// CXLJitter adds a fixed Jitter to every transaction on a host's CXL
	// port, on top of nominal latency — a marginal retimer adding delay
	// without losing bandwidth. Healing removes it.
	CXLJitter
	// LinkFlaky pulses a NIC's switch port down for Stall every Period.
	// Each pulse is meant to undercut the NIC's link debounce so the link
	// never *reports* down while traffic stalls intermittently — the
	// gray counterpart of PortFlap. Healing stops the pulse train.
	LinkFlaky
)

var kindNames = map[Kind]string{
	HostCrash:   "host-crash",
	EngineStall: "engine-stall",
	NICLinkDown: "nic-link-down",
	SSDFail:     "ssd-fail",
	PortFlap:    "port-flap",
	CXLDegrade:  "cxl-degrade",
	SSDSlow:     "ssd-slow",
	NICLossy:    "nic-lossy",
	CXLJitter:   "cxl-jitter",
	LinkFlaky:   "link-flaky",
}

// Kinds lists every fault kind in declaration order (stable for reports).
func Kinds() []Kind {
	return []Kind{HostCrash, EngineStall, NICLinkDown, SSDFail, PortFlap, CXLDegrade,
		SSDSlow, NICLossy, CXLJitter, LinkFlaky}
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// kindFromString is the inverse of String (used by ParsePlan).
func kindFromString(s string) (Kind, bool) {
	for _, k := range Kinds() {
		if kindNames[k] == s {
			return k, true
		}
	}
	return 0, false
}

// Event is one scheduled fault.
type Event struct {
	At     sim.Duration // injection time on the sim clock
	Kind   Kind
	Target string       // binding-layer name: "host2", "nic1", "ssd1", a driver loop…
	Heal   sim.Duration // delay until auto-heal; 0 = never heals
	// Degradation parameters (each read only by the kinds noted).
	LatMult float64      // latency multiplier, >= 1 (cxl-degrade, ssd-slow)
	BWFrac  float64      // remaining bandwidth fraction, in (0, 1] (cxl-degrade)
	Drop    float64      // dropped-frame fraction, in (0, 1] (nic-lossy)
	Jitter  sim.Duration // added per-transaction latency, > 0 (cxl-jitter)
	Period  sim.Duration // stall cadence, > 0 (link-flaky)
	Stall   sim.Duration // per-pulse stall length, in (0, Period) (link-flaky)
}

// Plan is a named, seeded schedule of fault events. The seed does not
// drive anything inside this package (injection times are explicit); it is
// carried so experiments that randomize their plan record the seed with it
// and replays are self-describing.
type Plan struct {
	Name   string
	Seed   int64
	Events []Event
}

// Sorted returns a copy of the plan with events in injection order
// (stable, so same-time events keep their declaration order).
func (pl Plan) Sorted() Plan {
	out := Plan{Name: pl.Name, Seed: pl.Seed, Events: make([]Event, len(pl.Events))}
	copy(out.Events, pl.Events)
	sort.SliceStable(out.Events, func(i, j int) bool { return out.Events[i].At < out.Events[j].At })
	return out
}

// Validate checks the plan is executable: known kinds, named targets,
// non-negative times, flaps that heal (a permanently disabled switch port
// is a topology change, not a fault), and positive degradation factors.
func (pl Plan) Validate() error {
	for i, ev := range pl.Events {
		if _, ok := kindNames[ev.Kind]; !ok {
			return fmt.Errorf("faults: event %d: unknown kind %d", i, ev.Kind)
		}
		if ev.Target == "" {
			return fmt.Errorf("faults: event %d (%v): empty target", i, ev.Kind)
		}
		if ev.At < 0 || ev.Heal < 0 {
			return fmt.Errorf("faults: event %d (%v %s): negative time", i, ev.Kind, ev.Target)
		}
		if ev.Kind == PortFlap && ev.Heal == 0 {
			return fmt.Errorf("faults: event %d: port-flap on %s must heal (set Heal > 0)", i, ev.Target)
		}
		if ev.Kind == CXLDegrade && !(ev.LatMult >= 1 && ev.BWFrac > 0 && ev.BWFrac <= 1) {
			return fmt.Errorf("faults: event %d: cxl-degrade on %s needs LatMult >= 1 and BWFrac in (0,1], got %g/%g",
				i, ev.Target, ev.LatMult, ev.BWFrac)
		}
		if ev.Kind == SSDSlow && !(ev.LatMult >= 1) {
			return fmt.Errorf("faults: event %d: ssd-slow on %s needs LatMult >= 1, got %g", i, ev.Target, ev.LatMult)
		}
		if ev.Kind == NICLossy && !(ev.Drop > 0 && ev.Drop <= 1) {
			return fmt.Errorf("faults: event %d: nic-lossy on %s needs Drop in (0,1], got %g", i, ev.Target, ev.Drop)
		}
		if ev.Kind == CXLJitter && ev.Jitter <= 0 {
			return fmt.Errorf("faults: event %d: cxl-jitter on %s needs Jitter > 0, got %v", i, ev.Target, ev.Jitter)
		}
		if ev.Kind == LinkFlaky {
			if ev.Period <= 0 || ev.Stall <= 0 || ev.Stall >= ev.Period {
				return fmt.Errorf("faults: event %d: link-flaky on %s needs 0 < Stall < Period, got %v/%v",
					i, ev.Target, ev.Stall, ev.Period)
			}
			if ev.Heal == 0 {
				return fmt.Errorf("faults: event %d: link-flaky on %s must heal (set Heal > 0)", i, ev.Target)
			}
		}
	}
	return nil
}

// Encode renders the plan in its canonical replayable text form:
//
//	plan <name> seed=<seed>
//	<at> <kind> <target> heal=<heal> [lat=<mult> bw=<frac>]
//
// Encode(ParsePlan(s)) == s for canonical s, and two plans are equal iff
// their encodings are byte-identical — the property the chaos experiment's
// replay recipe relies on.
func (pl Plan) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan %s seed=%d\n", pl.Name, pl.Seed)
	for _, ev := range pl.Sorted().Events {
		fmt.Fprintf(&b, "%v %s %s heal=%v", ev.At, ev.Kind, ev.Target, ev.Heal)
		switch ev.Kind {
		case CXLDegrade:
			fmt.Fprintf(&b, " lat=%g bw=%g", ev.LatMult, ev.BWFrac)
		case SSDSlow:
			fmt.Fprintf(&b, " lat=%g", ev.LatMult)
		case NICLossy:
			fmt.Fprintf(&b, " drop=%g", ev.Drop)
		case CXLJitter:
			fmt.Fprintf(&b, " jitter=%v", ev.Jitter)
		case LinkFlaky:
			fmt.Fprintf(&b, " period=%v stall=%v", ev.Period, ev.Stall)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ParsePlan parses the Encode text form.
func ParsePlan(s string) (Plan, error) {
	var pl Plan
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "plan ") {
		return pl, fmt.Errorf("faults: plan text must start with a \"plan\" header")
	}
	head := strings.Fields(lines[0])
	if len(head) != 3 || !strings.HasPrefix(head[2], "seed=") {
		return pl, fmt.Errorf("faults: malformed plan header %q", lines[0])
	}
	pl.Name = head[1]
	seed, err := strconv.ParseInt(strings.TrimPrefix(head[2], "seed="), 10, 64)
	if err != nil {
		return pl, fmt.Errorf("faults: bad seed in %q: %w", lines[0], err)
	}
	pl.Seed = seed
	for _, line := range lines[1:] {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		f := strings.Fields(line)
		if len(f) < 4 {
			return pl, fmt.Errorf("faults: malformed event line %q", line)
		}
		at, err := time.ParseDuration(f[0])
		if err != nil {
			return pl, fmt.Errorf("faults: bad time in %q: %w", line, err)
		}
		kind, ok := kindFromString(f[1])
		if !ok {
			return pl, fmt.Errorf("faults: unknown kind in %q", line)
		}
		ev := Event{At: at, Kind: kind, Target: f[2]}
		for _, opt := range f[3:] {
			k, v, found := strings.Cut(opt, "=")
			if !found {
				return pl, fmt.Errorf("faults: malformed option %q in %q", opt, line)
			}
			switch k {
			case "heal":
				if ev.Heal, err = time.ParseDuration(v); err != nil {
					return pl, fmt.Errorf("faults: bad heal in %q: %w", line, err)
				}
			case "lat":
				if ev.LatMult, err = strconv.ParseFloat(v, 64); err != nil {
					return pl, fmt.Errorf("faults: bad lat in %q: %w", line, err)
				}
			case "bw":
				if ev.BWFrac, err = strconv.ParseFloat(v, 64); err != nil {
					return pl, fmt.Errorf("faults: bad bw in %q: %w", line, err)
				}
			case "drop":
				if ev.Drop, err = strconv.ParseFloat(v, 64); err != nil {
					return pl, fmt.Errorf("faults: bad drop in %q: %w", line, err)
				}
			case "jitter":
				if ev.Jitter, err = time.ParseDuration(v); err != nil {
					return pl, fmt.Errorf("faults: bad jitter in %q: %w", line, err)
				}
			case "period":
				if ev.Period, err = time.ParseDuration(v); err != nil {
					return pl, fmt.Errorf("faults: bad period in %q: %w", line, err)
				}
			case "stall":
				if ev.Stall, err = time.ParseDuration(v); err != nil {
					return pl, fmt.Errorf("faults: bad stall in %q: %w", line, err)
				}
			default:
				return pl, fmt.Errorf("faults: unknown option %q in %q", opt, line)
			}
		}
		pl.Events = append(pl.Events, ev)
	}
	if err := pl.Validate(); err != nil {
		return pl, err
	}
	return pl, nil
}

// Handler executes one fault kind against the live topology. Inject flips
// the failure on; Heal flips it off (called only for events with Heal > 0).
// Either may return an error (unknown target, fault already active), which
// the injector records in its log and error counter rather than panicking:
// a chaos campaign should report a bad plan, not crash the simulator.
type Handler struct {
	Inject func(ev Event) error
	Heal   func(ev Event) error
}

// Injector schedules a Plan's events on the simulation clock and runs them
// through registered handlers, keeping deterministic per-kind accounting.
type Injector struct {
	eng      *sim.Engine
	handlers map[Kind]Handler

	injected map[Kind]int64
	healed   map[Kind]int64
	errors   int64
	active   int64
	recovery map[Kind]*metrics.Histogram
	log      []string
	events   *obs.TraceRing
}

// NewInjector creates an injector bound to an engine.
func NewInjector(eng *sim.Engine) *Injector {
	in := &Injector{
		eng:      eng,
		handlers: make(map[Kind]Handler),
		injected: make(map[Kind]int64),
		healed:   make(map[Kind]int64),
		recovery: make(map[Kind]*metrics.Histogram),
	}
	for _, k := range Kinds() {
		in.recovery[k] = &metrics.Histogram{}
	}
	return in
}

// Handle registers the handler for one fault kind.
func (in *Injector) Handle(k Kind, h Handler) { in.handlers[k] = h }

// Schedule validates the plan and arms every event (and its heal) on the
// simulation clock. It can be called before or during the run; events in
// the past of the sim clock fire immediately on the next engine step.
func (in *Injector) Schedule(pl Plan) error {
	if err := pl.Validate(); err != nil {
		return err
	}
	sorted := pl.Sorted()
	for _, ev := range sorted.Events {
		if _, ok := in.handlers[ev.Kind]; !ok {
			return fmt.Errorf("faults: no handler registered for %v (target %s)", ev.Kind, ev.Target)
		}
	}
	for _, ev := range sorted.Events {
		ev := ev
		in.eng.At(ev.At, func() { in.inject(ev) })
		if ev.Heal > 0 {
			in.eng.At(ev.At+ev.Heal, func() { in.heal(ev) })
		}
	}
	return nil
}

func (in *Injector) inject(ev Event) {
	in.injected[ev.Kind]++
	in.active++
	line := fmt.Sprintf("%v inject %v %s", in.eng.Now(), ev.Kind, ev.Target)
	if err := in.handlers[ev.Kind].Inject(ev); err != nil {
		in.errors++
		line += " ERR " + err.Error()
	}
	in.log = append(in.log, line)
	in.events.Emit(in.eng.Now(), "faults", line)
}

func (in *Injector) heal(ev Event) {
	in.healed[ev.Kind]++
	in.active--
	line := fmt.Sprintf("%v heal %v %s", in.eng.Now(), ev.Kind, ev.Target)
	h := in.handlers[ev.Kind]
	if h.Heal == nil {
		in.errors++
		line += " ERR no heal handler"
	} else if err := h.Heal(ev); err != nil {
		in.errors++
		line += " ERR " + err.Error()
	}
	in.log = append(in.log, line)
	in.events.Emit(in.eng.Now(), "faults", line)
}

// RecordRecovery feeds the per-kind recovery-time histogram: the observed
// interval from a fault's injection until the pod's service was whole
// again, as measured by whoever can see it (the chaos experiment's
// probes). Separate from heal time — recovery often completes before the
// fault heals (failover) or after (post-heal re-registration).
func (in *Injector) RecordRecovery(k Kind, d time.Duration) {
	if h, ok := in.recovery[k]; ok {
		h.Record(d)
	}
}

// Recovery returns the recovery-time histogram for a kind (nil if unknown).
func (in *Injector) Recovery(k Kind) *metrics.Histogram { return in.recovery[k] }

// Injected returns how many events of a kind have fired.
func (in *Injector) Injected(k Kind) int64 { return in.injected[k] }

// Healed returns how many events of a kind have auto-healed.
func (in *Injector) Healed(k Kind) int64 { return in.healed[k] }

// Active returns the number of currently-outstanding (unhealed) faults.
func (in *Injector) Active() int64 { return in.active }

// Errors returns how many handler invocations failed.
func (in *Injector) Errors() int64 { return in.errors }

// Log returns the deterministic injection log: one line per inject/heal
// action, stamped with virtual time, in execution order.
func (in *Injector) Log() []string {
	out := make([]string, len(in.log))
	copy(out, in.log)
	return out
}

// RegisterObs registers the faults.* metric family: per-kind injected/
// healed counters and recovery histograms, the active gauge, and the
// handler error counter. Also hooks the injector to the registry's trace
// ring so every action leaves an event.
func (in *Injector) RegisterObs(r *obs.Registry, prefix string) {
	r.Gauge(prefix+"/active", func() float64 { return float64(in.active) })
	r.Counter(prefix+"/errors", func() int64 { return in.errors })
	for _, k := range Kinds() {
		k := k
		kpfx := prefix + "/" + k.String()
		r.Counter(kpfx+"/injected", func() int64 { return in.injected[k] })
		r.Counter(kpfx+"/healed", func() int64 { return in.healed[k] })
		r.Histogram(kpfx+"/recovery", in.recovery[k])
	}
	in.events = r.Events
}
