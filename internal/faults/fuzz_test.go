package faults

import (
	"strings"
	"testing"
)

// FuzzParsePlan drives arbitrary text through the plan grammar and checks
// the two properties every tool in the repo leans on:
//
//  1. ParsePlan never panics, whatever the input (it may error).
//  2. The canonical form is a fixpoint: for any input that parses, the
//     first Encode is canonical — re-parsing and re-encoding it must
//     reproduce it byte for byte. This is what makes plan files reliable
//     replay artifacts (EXPERIMENTS.md's replay recipes diff encodings).
//
// Run the stored corpus as a regression test with ordinary `go test`; run
// `go test -fuzz=FuzzParsePlan` locally to explore.
func FuzzParsePlan(f *testing.F) {
	seeds := []string{
		"plan empty seed=0\n",
		"plan crash seed=42\n100ms host-crash pod0/h1 heal=0s\n",
		"plan flap seed=7\n5ms port-flap pod0/h0 heal=10ms\n",
		"plan degrade seed=1\n1s cxl-degrade pod0/h2 heal=2s lat=3 bw=0.5\n",
		"plan gray seed=9\n" +
			"10ms ssd-slow pod0/ssd1 heal=50ms lat=8\n" +
			"20ms nic-lossy pod0/nic2 heal=60ms drop=0.25\n" +
			"30ms cxl-jitter pod0/h1 heal=70ms jitter=2µs\n" +
			"40ms link-flaky pod0/nic1 heal=80ms period=10ms stall=2ms\n",
		"plan ssdfail seed=3\n1ms ssd-fail pod1/ssd3 heal=0s\n",
		"plan nicfail seed=4\n2ms nic-fail pod0/nic1 heal=5ms\n",
		// Near-misses that must error, not panic.
		"plan bad seed=x\n",
		"plan bad seed=1\n-5ms host-crash pod0/h0 heal=0s\n",
		"plan bad seed=1\n1ms ssd-slow pod0/ssd1 heal=0s lat=NaN\n",
		"plan bad seed=1\n1ms nic-lossy pod0/nic1 heal=0s drop=2\n",
		"plan bad seed=1\n1ms link-flaky pod0/nic1 heal=5ms period=1ms stall=1ms\n",
		"plan bad seed=1\n1ms cxl-jitter pod0/h0 heal=0s jitter=-1ms\n",
		"no header at all",
		"plan trailing seed=0\n1ms host-crash pod0/h0 heal=0s extra=1\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		pl, err := ParsePlan(s)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		enc := pl.Encode()
		pl2, err := ParsePlan(enc)
		if err != nil {
			t.Fatalf("canonical encoding does not re-parse: %v\ninput: %q\nencoded: %q", err, s, enc)
		}
		enc2 := pl2.Encode()
		if enc != enc2 {
			t.Fatalf("canonical form is not a fixpoint:\nfirst:  %q\nsecond: %q", enc, enc2)
		}
		if !strings.HasPrefix(enc, "plan ") {
			t.Fatalf("encoding lost its header: %q", enc)
		}
	})
}
