package faults

import (
	"strings"
	"testing"
	"time"

	"oasis/internal/sim"
)

func samplePlan() Plan {
	return Plan{
		Name: "sample",
		Seed: 42,
		Events: []Event{
			{At: 30 * time.Millisecond, Kind: PortFlap, Target: "nic1", Heal: 5 * time.Millisecond},
			{At: 10 * time.Millisecond, Kind: HostCrash, Target: "host0", Heal: 20 * time.Millisecond},
			{At: 20 * time.Millisecond, Kind: SSDFail, Target: "ssd1"},
			{At: 40 * time.Millisecond, Kind: CXLDegrade, Target: "host2", Heal: 10 * time.Millisecond, LatMult: 4, BWFrac: 0.25},
		},
	}
}

func TestPlanEncodeParseRoundTrip(t *testing.T) {
	pl := samplePlan()
	text := pl.Encode()
	back, err := ParsePlan(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got := back.Encode(); got != text {
		t.Fatalf("round trip:\n got %q\nwant %q", got, text)
	}
	if back.Seed != 42 || back.Name != "sample" || len(back.Events) != 4 {
		t.Fatalf("parsed plan: %+v", back)
	}
	// Sorted: events come back in injection order.
	if back.Events[0].Kind != HostCrash || back.Events[3].Kind != CXLDegrade {
		t.Fatalf("events not sorted by At: %+v", back.Events)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Events: []Event{{At: 0, Kind: Kind(99), Target: "x"}}},
		{Events: []Event{{At: 0, Kind: HostCrash}}},
		{Events: []Event{{At: -1, Kind: HostCrash, Target: "host0"}}},
		{Events: []Event{{At: 0, Kind: PortFlap, Target: "nic1"}}}, // flap must heal
		{Events: []Event{{At: 0, Kind: CXLDegrade, Target: "host0", LatMult: 0.5, BWFrac: 1}}},
		{Events: []Event{{At: 0, Kind: CXLDegrade, Target: "host0", LatMult: 2, BWFrac: 0}}},
	}
	for i, pl := range bad {
		if pl.Validate() == nil {
			t.Errorf("plan %d validated but should not have", i)
		}
	}
	if err := samplePlan().Validate(); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestInjectorRunsPlanDeterministically(t *testing.T) {
	run := func() []string {
		eng := sim.New()
		in := NewInjector(eng)
		state := make(map[string]bool)
		for _, k := range Kinds() {
			k := k
			in.Handle(k, Handler{
				Inject: func(ev Event) error { state[ev.Target] = true; return nil },
				Heal:   func(ev Event) error { state[ev.Target] = false; return nil },
			})
		}
		if err := in.Schedule(samplePlan()); err != nil {
			t.Fatalf("schedule: %v", err)
		}
		eng.RunUntil(100 * time.Millisecond)
		if state["ssd1"] != true {
			t.Error("unhealed ssd-fail should still be active")
		}
		if state["host0"] || state["nic1"] || state["host2"] {
			t.Error("healed faults should be inactive")
		}
		if in.Injected(HostCrash) != 1 || in.Healed(HostCrash) != 1 {
			t.Errorf("host-crash accounting: injected=%d healed=%d", in.Injected(HostCrash), in.Healed(HostCrash))
		}
		if in.Active() != 1 { // only the unhealed ssd-fail
			t.Errorf("active = %d, want 1", in.Active())
		}
		if in.Errors() != 0 {
			t.Errorf("errors = %d", in.Errors())
		}
		return in.Log()
	}
	a, b := run(), run()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Fatalf("injection log differs across reruns:\n%v\n---\n%v", a, b)
	}
	if len(a) != 7 { // 4 injects + 3 heals
		t.Fatalf("log has %d lines, want 7:\n%s", len(a), strings.Join(a, "\n"))
	}
}

func TestScheduleRejectsMissingHandler(t *testing.T) {
	eng := sim.New()
	in := NewInjector(eng)
	in.Handle(HostCrash, Handler{Inject: func(Event) error { return nil }})
	err := in.Schedule(Plan{Events: []Event{{At: 0, Kind: SSDFail, Target: "ssd1"}}})
	if err == nil {
		t.Fatal("schedule accepted a plan with no ssd-fail handler")
	}
}

func TestRecoveryHistogram(t *testing.T) {
	in := NewInjector(sim.New())
	in.RecordRecovery(PortFlap, 12*time.Millisecond)
	in.RecordRecovery(PortFlap, 30*time.Millisecond)
	h := in.Recovery(PortFlap)
	if h.Count() != 2 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Max() < 25*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
}
