package nic

import "oasis/internal/obs"

// RegisterObs registers the device's counters under prefix/* (conventionally
// the NIC's pod name, e.g. nic1).
func (n *NIC) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/tx_packets", func() int64 { return n.TxPackets })
	r.Counter(prefix+"/tx_bytes", func() int64 { return n.TxBytes })
	r.Counter(prefix+"/rx_packets", func() int64 { return n.RxPackets })
	r.Counter(prefix+"/rx_bytes", func() int64 { return n.RxBytes })
	r.Counter(prefix+"/rx_no_desc", func() int64 { return n.RxNoDesc })
	r.Counter(prefix+"/tx_ring_full", func() int64 { return n.TxRingFull })
	r.Counter(prefix+"/oversize", func() int64 { return n.Oversize })
	r.Counter(prefix+"/aer_correctable", func() int64 { return n.AERCorrectable })
	r.Counter(prefix+"/aer_uncorrectable", func() int64 { return n.AERUncorrectable })
	r.Gauge(prefix+"/link_up", func() float64 {
		if n.linkUp {
			return 1
		}
		return 0
	})
}
