// Package nic models a datacenter NIC (Mellanox ConnectX-5 class) as the
// Oasis backend driver sees it through a kernel-bypass driver (§3.3):
// descriptor rings for TX and RX, completion queues, DMA into an arbitrary
// memory space (host DDR for the baseline, the CXL pool for Oasis), flow
// tagging that matches RX packets to instances by destination IP without
// the CPU touching the payload, a link-status register with PHY debounce,
// and line-rate/packet-rate limits.
//
// DMA always bypasses CPU caches (DDIO disabled, §3.2.1); the snoop cost of
// violating that discipline is modelled by the cache package and charged by
// whoever configures a SnoopTarget.
package nic

import (
	"fmt"
	"time"

	"oasis/internal/netsw"
	"oasis/internal/sim"
)

// DMAMemory is the space the NIC's DMA engine reads packets from and writes
// packets to. *cxl.Port implements it for pool-backed buffers;
// host.LocalMemory implements it for the baseline's DDR buffers.
type DMAMemory interface {
	DMARead(addr int64, buf []byte, category string) sim.Duration
	DMAWrite(addr int64, data []byte, category string) sim.Duration
}

// Snooper covers the case where a CPU cache may hold lines of a DMA target
// (e.g. the backend inspected a buffer). cache.Cache implements it.
type Snooper interface {
	Snoop(addr int64, n int, category string) sim.Duration
}

// LineInstaller is the DDIO target: a CPU cache that accepts allocating
// writes. cache.Cache implements it.
type LineInstaller interface {
	InstallLine(addr int64, data []byte)
}

// Params configures the NIC's performance model.
type Params struct {
	// PacketCost is the per-packet pipeline cost, bounding packet rate
	// (~250 ns ≈ 4 MOp/s, Table 1).
	PacketCost sim.Duration
	// DoorbellCost is the CPU-side MMIO cost of posting work (charged to
	// the backend driver's core).
	DoorbellCost sim.Duration
	// LinkDebounce is how long after a physical link event the link-status
	// register reflects it. Tens of milliseconds on real PHYs; this
	// dominates the paper's 38 ms failover interruption.
	LinkDebounce sim.Duration
	// DDIO enables "PCIe allocating write flows" (Intel DDIO, §3.2.1): RX
	// DMA writes land in the owning host's cache instead of memory. Oasis
	// requires this OFF — across a non-coherent pod the payload never
	// reaches pool memory, so remote frontends read stale bytes. Off by
	// default, as §3.2.1 assumes; tests exercise the hazard.
	DDIO bool
	// TxRing and RxRing bound outstanding descriptors.
	TxRing, RxRing int
}

// DefaultParams models a 100 Gbit CX5-class NIC.
func DefaultParams() Params {
	return Params{
		PacketCost:   250 * time.Nanosecond,
		DoorbellCost: 100 * time.Nanosecond,
		LinkDebounce: 35 * time.Millisecond,
		TxRing:       1024,
		RxRing:       4096,
	}
}

// WQE is a transmit work-queue entry: a packet already resident in DMA
// memory. Cookie comes back in the TX completion.
type WQE struct {
	Addr   int64
	Len    int
	Cookie uint64
}

// RxDesc is a receive descriptor: a free buffer the NIC may write one
// packet into.
type RxDesc struct {
	Addr int64
	Cap  int
}

// TxCompletion reports a transmitted packet.
type TxCompletion struct {
	Cookie uint64
}

// RxCompletion reports a received packet.
type RxCompletion struct {
	Addr    int64
	Len     int
	Tag     uint32 // flow tag (instance identifier)
	Matched bool   // false when no flow rule matched (§3.3.1 footnote)
}

// FlowKeyFunc extracts the flow-steering key (destination IPv4 address)
// from a frame's bytes. Supplied by the network stack so the NIC package
// stays independent of the packet format.
type FlowKeyFunc func(frame []byte) (key uint32, ok bool)

// NIC is one physical NIC.
type NIC struct {
	eng    *sim.Engine
	name   string
	mac    netsw.MAC
	params Params
	mem    DMAMemory
	snoop  Snooper // optional: set when a CPU cache may alias DMA targets
	port   *netsw.Port

	flowKey FlowKeyFunc
	flows   map[uint32]uint32 // dst IP -> tag

	freeRxOps []*rxCompOp // recycled RX-completion ops (engine-local, no lock)

	txq    *sim.Queue[WQE]
	txOut  int // occupied TX ring slots (posted, not yet completed)
	rxFree []RxDesc
	txcq   *sim.Queue[TxCompletion]
	rxcq   *sim.Queue[RxCompletion]

	linkUp  bool
	linkGen int // invalidates stale debounce timers

	lossRate float64 // > 0 while a nic-lossy fault drops RX frames
	lossRng  uint64  // seeded LCG state driving the drop decisions

	// Stats.
	TxPackets, RxPackets int64
	TxBytes, RxBytes     int64
	RxNoDesc             int64 // frames dropped: RX ring empty
	TxRingFull           int64 // posts refused
	Oversize             int64 // frames dropped: larger than the RX buffer
	RxLossDropped        int64 // frames dropped by an injected nic-lossy fault
	TxCarrierErrs        int64 // frames transmitted into a disabled port (carrier lost)

	// PCIe Advanced Error Reporting counters (§3.5: backend telemetry
	// includes "network health metrics (e.g., link status and PCIe AER
	// counters)"). Correctable errors are normal background noise; a burst
	// of uncorrectable errors is a dying device.
	AERCorrectable   int64
	AERUncorrectable int64
}

// New creates a NIC that DMAs through mem. Call Connect to wire it to a
// switch port, then Start to launch its TX engine.
func New(eng *sim.Engine, name string, mac netsw.MAC, mem DMAMemory, flowKey FlowKeyFunc, params Params) *NIC {
	return &NIC{
		eng:     eng,
		name:    name,
		mac:     mac,
		params:  params,
		mem:     mem,
		flowKey: flowKey,
		flows:   make(map[uint32]uint32),
		txq:     sim.NewQueue[WQE](eng),
		txcq:    sim.NewQueue[TxCompletion](eng),
		rxcq:    sim.NewQueue[RxCompletion](eng),
		linkUp:  true,
	}
}

// Name returns the NIC's diagnostic name.
func (n *NIC) Name() string { return n.name }

// MAC returns the NIC's burned-in address.
func (n *NIC) MAC() netsw.MAC { return n.mac }

// Connect wires the NIC to a switch port and registers for link events.
func (n *NIC) Connect(port *netsw.Port) {
	n.port = port
	n.linkUp = port.Enabled()
	port.OnLinkChange(func(up bool) {
		n.linkGen++
		gen := n.linkGen
		// The status register lags the physical event by the PHY debounce.
		n.eng.After(n.params.LinkDebounce, func() {
			if n.linkGen == gen {
				n.linkUp = up
			}
		})
	})
}

// Start launches the NIC's TX engine process.
func (n *NIC) Start() {
	n.eng.Go(n.name+"/tx", func(p *sim.Proc) { n.txLoop(p) })
}

// ForceLink overrides the PHY state (failure injection): down takes the
// link-status register down immediately, regardless of the switch port; up
// restores it only if the attached port is actually enabled. Any in-flight
// debounce timer is invalidated so a stale event can't undo the injection.
func (n *NIC) ForceLink(up bool) {
	n.linkGen++
	if up && n.port != nil && !n.port.Enabled() {
		up = false
	}
	n.linkUp = up
}

// InjectAER increments an AER counter (failure injection for the
// proactive-failover tests).
func (n *NIC) InjectAER(uncorrectable bool) {
	if uncorrectable {
		n.AERUncorrectable++
	} else {
		n.AERCorrectable++
	}
}

// LinkUp reads the link-status register (§3.3.3: the backend driver polls
// this to detect hardware faults, cable pulls, and switch linecard issues).
func (n *NIC) LinkUp() bool { return n.linkUp }

// SetLossy makes the NIC silently drop a pseudo-random fraction rate of
// incoming frames while the link stays administratively up — gray-failure
// injection (faults.NICLossy). The drop sequence is a seeded LCG stepped
// once per delivered frame, so a replay is deterministic. SetLossy(0, _)
// — or ClearLossy — restores lossless delivery.
func (n *NIC) SetLossy(rate float64, seed int64) {
	n.lossRate = rate
	n.lossRng = uint64(seed)*2862933555777941757 + 3037000493
}

// ClearLossy stops an injected nic-lossy fault.
func (n *NIC) ClearLossy() { n.lossRate = 0 }

// Lossy reports whether a nic-lossy fault is active.
func (n *NIC) Lossy() bool { return n.lossRate > 0 }

// dropLossy steps the loss LCG for one incoming frame and reports whether
// the frame is to be dropped.
func (n *NIC) dropLossy() bool {
	if n.lossRate <= 0 {
		return false
	}
	n.lossRng = n.lossRng*6364136223846793005 + 1442695040888963407
	if float64(n.lossRng>>11)/(1<<53) < n.lossRate {
		n.RxLossDropped++
		return true
	}
	return false
}

// SetSnooper configures a CPU cache that may alias DMA buffers; used by the
// DDIO/inspection ablations.
func (n *NIC) SetSnooper(s Snooper) { n.snoop = s }

// AddFlowRule steers packets with the given destination IP to tag
// (rte_flow-style, §3.3.1).
func (n *NIC) AddFlowRule(dstIP uint32, tag uint32) { n.flows[dstIP] = tag }

// RemoveFlowRule deletes a steering rule.
func (n *NIC) RemoveFlowRule(dstIP uint32) { delete(n.flows, dstIP) }

// PostTx posts a transmit WQE, charging the doorbell cost to the calling
// core. It returns false when the TX ring is full.
func (n *NIC) PostTx(p *sim.Proc, wqe WQE) bool {
	p.Sleep(n.params.DoorbellCost)
	if n.txOut >= n.params.TxRing {
		n.TxRingFull++
		return false
	}
	n.txOut++
	n.txq.Push(wqe)
	return true
}

// PostRx replenishes one RX descriptor, charging the doorbell cost.
// It returns false when the RX ring is full.
func (n *NIC) PostRx(p *sim.Proc, desc RxDesc) bool {
	p.Sleep(n.params.DoorbellCost)
	if len(n.rxFree) >= n.params.RxRing {
		return false
	}
	n.rxFree = append(n.rxFree, desc)
	return true
}

// RxDescCount returns the number of free RX descriptors posted.
func (n *NIC) RxDescCount() int { return len(n.rxFree) }

// PollTxCompletion returns one TX completion if available.
func (n *NIC) PollTxCompletion() (TxCompletion, bool) { return n.txcq.TryPop() }

// PollRxCompletion returns one RX completion if available.
func (n *NIC) PollRxCompletion() (RxCompletion, bool) { return n.rxcq.TryPop() }

// txLoop is the NIC's transmit pipeline: fetch WQE, DMA-read the packet
// (bypassing CPU caches), pace by the per-packet cost, hand the frame to
// the wire, and complete.
func (n *NIC) txLoop(p *sim.Proc) {
	for {
		wqe := n.txq.Pop(p)
		p.Sleep(n.params.PacketCost)
		// Drawn from the pool but never recycled: the frame escapes to the
		// switch, which may flood it to several sinks. DMARead overwrites
		// every byte, so recycled contents are harmless.
		buf := n.eng.Bufs().Get(wqe.Len)
		if n.snoop != nil {
			if d := n.snoop.Snoop(wqe.Addr, wqe.Len, "dma-snoop"); d > 0 {
				p.Sleep(d)
			}
		}
		arrival := n.mem.DMARead(wqe.Addr, buf, "payload")
		if wait := arrival - p.Now(); wait > 0 {
			p.Sleep(wait)
		}
		frame, err := parseFrame(buf)
		if err != nil {
			// Malformed WQE contents are a driver bug; complete it anyway so
			// the ring does not leak, but do not transmit.
			n.completeTx(wqe)
			continue
		}
		if n.port != nil {
			// A MAC transmitting into a dead cable records a carrier error —
			// the counter that makes a sub-debounce flaky link visible to
			// telemetry while the link-status register still reads "up".
			if !n.port.Enabled() {
				n.TxCarrierErrs++
			}
			n.port.Send(frame)
		}
		n.TxPackets++
		n.TxBytes += int64(wqe.Len)
		n.completeTx(wqe)
	}
}

func (n *NIC) completeTx(wqe WQE) {
	n.txOut--
	n.txcq.Push(TxCompletion{Cookie: wqe.Cookie})
}

// parseFrame extracts src/dst MACs from the wire image (bytes 0-5 dst,
// 6-11 src, as on real Ethernet).
func parseFrame(b []byte) (*netsw.Frame, error) {
	if len(b) < 14 {
		return nil, fmt.Errorf("nic: frame too short (%d bytes)", len(b))
	}
	var f netsw.Frame
	copy(f.Dst[:], b[0:6])
	copy(f.Src[:], b[6:12])
	f.Bytes = b
	return &f, nil
}

// ddioWrite lands the packet in the owning host's cache (allocating write).
// Pool memory is NOT updated — the §3.2.1 hazard this models.
func (n *NIC) ddioWrite(addr int64, data []byte) sim.Duration {
	inst, ok := n.snoop.(LineInstaller)
	if !ok {
		return n.mem.DMAWrite(addr, data, "payload")
	}
	first := addr &^ 63
	last := (addr + int64(len(data)) - 1) &^ 63
	var line [64]byte
	for a := first; a <= last; a += 64 {
		for i := range line {
			line[i] = 0
		}
		lo, hi := a, a+64
		if lo < addr {
			lo = addr
		}
		if hi > addr+int64(len(data)) {
			hi = addr + int64(len(data))
		}
		copy(line[lo-a:hi-a], data[lo-addr:hi-addr])
		inst.InstallLine(a, line[:])
	}
	// An allocating write is a cache-speed operation.
	return n.eng.Now() + 100*time.Nanosecond
}

// SendRaw injects a pre-built frame directly (used for the failover
// MAC-borrowing frame, §3.3.3, which the backend crafts rather than an
// instance). It bypasses the DMA path; timing is one packet cost.
func (n *NIC) SendRaw(f *netsw.Frame) {
	if n.port == nil {
		return
	}
	n.eng.After(n.params.PacketCost, func() { n.port.Send(f) })
	n.TxPackets++
	n.TxBytes += int64(len(f.Bytes))
}

// DeliverFrame implements netsw.Sink: a frame arrived from the wire. The
// NIC claims an RX descriptor, DMA-writes the packet, classifies it, and
// raises an RX completion.
func (n *NIC) DeliverFrame(f *netsw.Frame) {
	if n.dropLossy() {
		return
	}
	if len(n.rxFree) == 0 {
		n.RxNoDesc++
		return
	}
	desc := n.rxFree[0]
	if len(f.Bytes) > desc.Cap {
		n.Oversize++
		return
	}
	n.rxFree = n.rxFree[1:]
	n.RxPackets++
	n.RxBytes += int64(len(f.Bytes))
	if n.snoop != nil {
		n.snoop.Snoop(desc.Addr, len(f.Bytes), "dma-snoop")
	}
	var done sim.Duration
	if n.params.DDIO {
		done = n.ddioWrite(desc.Addr, f.Bytes)
	} else {
		done = n.mem.DMAWrite(desc.Addr, f.Bytes, "payload")
	}
	comp := RxCompletion{Addr: desc.Addr, Len: len(f.Bytes)}
	if key, ok := n.flowKey(f.Bytes); ok {
		if tag, hit := n.flows[key]; hit {
			comp.Tag = tag
			comp.Matched = true
		}
	}
	var op *rxCompOp
	if k := len(n.freeRxOps); k > 0 {
		op = n.freeRxOps[k-1]
		n.freeRxOps[k-1] = nil
		n.freeRxOps = n.freeRxOps[:k-1]
	} else {
		op = &rxCompOp{}
	}
	op.n, op.comp = n, comp
	n.eng.AtTimer(done+n.params.PacketCost, op)
}

// rxCompOp is the pooled posting of an RX completion once the packet's DMA
// lands; firing it as a sim.Timer avoids a closure allocation per received
// packet (see sim.Timer).
type rxCompOp struct {
	n    *NIC
	comp RxCompletion
}

func (op *rxCompOp) Fire() {
	n := op.n
	comp := op.comp
	op.n = nil
	n.freeRxOps = append(n.freeRxOps, op)
	n.rxcq.Push(comp)
}
