package nic

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"oasis/internal/cache"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/netsw"
	"oasis/internal/sim"
)

var (
	macA = netsw.MAC{0xaa, 0, 0, 0, 0, 1}
	macB = netsw.MAC{0xbb, 0, 0, 0, 0, 2}
)

// testFrame builds a minimal "IPv4-like" frame whose dst IP lives at the
// real IPv4 offset so FlowKey-style classification works.
func testFrame(src, dst netsw.MAC, dstIP uint32, size int) []byte {
	if size < 34 {
		size = 34
	}
	b := make([]byte, size)
	copy(b[0:6], dst[:])
	copy(b[6:12], src[:])
	binary.BigEndian.PutUint16(b[12:14], 0x0800)
	binary.BigEndian.PutUint32(b[30:34], dstIP)
	return b
}

func testFlowKey(frame []byte) (uint32, bool) {
	if len(frame) < 34 || binary.BigEndian.Uint16(frame[12:14]) != 0x0800 {
		return 0, false
	}
	return binary.BigEndian.Uint32(frame[30:34]), true
}

// nicRig: two NICs on a switch, DMA through one CXL pool.
type nicRig struct {
	eng  *sim.Engine
	pool *cxl.Pool
	sw   *netsw.Switch
	a, b *NIC
}

func newNICRig(t *testing.T) *nicRig {
	t.Helper()
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<22, cxl.DefaultParams())
	sw := netsw.New(eng, netsw.DefaultParams())
	r := &nicRig{eng: eng, pool: pool, sw: sw}
	r.a = New(eng, "nicA", macA, pool.AttachPort("nicA-dma"), testFlowKey, DefaultParams())
	r.b = New(eng, "nicB", macB, pool.AttachPort("nicB-dma"), testFlowKey, DefaultParams())
	r.a.Connect(sw.AttachPort("pA", r.a))
	r.b.Connect(sw.AttachPort("pB", r.b))
	r.a.Start()
	r.b.Start()
	return r
}

func TestTxDMAToWireToRxDMA(t *testing.T) {
	r := newNICRig(t)
	// Stage a frame for nicA in the pool, post an RX buffer for nicB.
	frame := testFrame(macA, macB, 0x0a000002, 200)
	r.pool.Poke(0, frame)
	r.b.AddFlowRule(0x0a000002, 77)
	var comp RxCompletion
	gotRx := false
	r.eng.Go("driver", func(p *sim.Proc) {
		if !r.b.PostRx(p, RxDesc{Addr: 4096, Cap: 2048}) {
			t.Error("PostRx failed")
		}
		// Teach the switch where macB lives (send a frame from b first).
		bcast := testFrame(macB, netsw.Broadcast, 0, 64)
		r.pool.Poke(8192, bcast)
		r.b.PostTx(p, WQE{Addr: 8192, Len: 64, Cookie: 9})
		p.Sleep(10 * time.Microsecond)

		if !r.a.PostTx(p, WQE{Addr: 0, Len: len(frame), Cookie: 1}) {
			t.Error("PostTx failed")
		}
		// Wait for the completion to show up.
		for i := 0; i < 1000; i++ {
			if c, ok := r.b.PollRxCompletion(); ok {
				comp = c
				gotRx = true
				break
			}
			p.Sleep(time.Microsecond)
		}
		if tc, ok := r.a.PollTxCompletion(); !ok || tc.Cookie != 1 {
			t.Errorf("TX completion = %+v, %v", tc, ok)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if !gotRx {
		t.Fatal("no RX completion")
	}
	if comp.Addr != 4096 || comp.Len != len(frame) || !comp.Matched || comp.Tag != 77 {
		t.Fatalf("completion = %+v", comp)
	}
	// The packet bytes must have landed in the RX buffer via DMA.
	got := make([]byte, len(frame))
	r.pool.Peek(4096, got)
	if !bytes.Equal(got, frame) {
		t.Fatal("RX buffer contents mismatch")
	}
}

func TestRxDropWithoutDescriptor(t *testing.T) {
	r := newNICRig(t)
	frame := testFrame(macA, netsw.Broadcast, 0x0a000002, 100)
	r.pool.Poke(0, frame)
	r.eng.Go("driver", func(p *sim.Proc) {
		r.a.PostTx(p, WQE{Addr: 0, Len: len(frame), Cookie: 1})
		p.Sleep(50 * time.Microsecond)
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.b.RxNoDesc != 1 {
		t.Fatalf("RxNoDesc = %d, want 1", r.b.RxNoDesc)
	}
}

func TestUnmatchedFlowCompletion(t *testing.T) {
	r := newNICRig(t)
	frame := testFrame(macA, macB, 0x0a000063, 100) // no rule for this IP
	r.pool.Poke(0, frame)
	var comp RxCompletion
	got := false
	r.eng.Go("driver", func(p *sim.Proc) {
		r.b.PostRx(p, RxDesc{Addr: 4096, Cap: 2048})
		bcast := testFrame(macB, netsw.Broadcast, 0, 64)
		r.pool.Poke(8192, bcast)
		r.b.PostTx(p, WQE{Addr: 8192, Len: 64, Cookie: 9})
		p.Sleep(10 * time.Microsecond)
		r.a.PostTx(p, WQE{Addr: 0, Len: len(frame), Cookie: 1})
		for i := 0; i < 1000 && !got; i++ {
			if c, ok := r.b.PollRxCompletion(); ok {
				comp, got = c, true
			}
			p.Sleep(time.Microsecond)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if !got || comp.Matched {
		t.Fatalf("completion = %+v got=%v; want unmatched delivery", comp, got)
	}
}

func TestLinkDebounce(t *testing.T) {
	r := newNICRig(t)
	swPort := r.sw.Ports()[0] // nicA's port
	r.eng.At(time.Millisecond, func() { swPort.SetEnabled(false) })
	var upAtFailure, upBeforeDebounce, upAfterDebounce bool
	r.eng.At(time.Millisecond+time.Microsecond, func() { upAtFailure = r.a.LinkUp() })
	r.eng.At(time.Millisecond+20*time.Millisecond, func() { upBeforeDebounce = r.a.LinkUp() })
	r.eng.At(time.Millisecond+40*time.Millisecond, func() { upAfterDebounce = r.a.LinkUp() })
	r.eng.At(100*time.Millisecond, func() { r.eng.Shutdown() })
	r.eng.Run()
	if !upAtFailure || !upBeforeDebounce {
		t.Fatal("link status dropped before the PHY debounce elapsed")
	}
	if upAfterDebounce {
		t.Fatal("link status still up after debounce")
	}
}

func TestLinkFlapCancelsDebounce(t *testing.T) {
	r := newNICRig(t)
	swPort := r.sw.Ports()[0]
	r.eng.At(time.Millisecond, func() { swPort.SetEnabled(false) })
	r.eng.At(2*time.Millisecond, func() { swPort.SetEnabled(true) }) // flap back fast
	var up bool
	r.eng.At(50*time.Millisecond, func() { up = r.a.LinkUp(); r.eng.Shutdown() })
	r.eng.Run()
	if !up {
		t.Fatal("fast flap should leave the link up (stale debounce must cancel)")
	}
}

func TestTxRingFull(t *testing.T) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<20, cxl.DefaultParams())
	params := DefaultParams()
	params.TxRing = 2
	n := New(eng, "n", macA, pool.AttachPort("dma"), testFlowKey, params)
	// No Start(): WQEs stay queued, so the ring fills.
	eng.Go("driver", func(p *sim.Proc) {
		ok1 := n.PostTx(p, WQE{Addr: 0, Len: 64})
		ok2 := n.PostTx(p, WQE{Addr: 64, Len: 64})
		ok3 := n.PostTx(p, WQE{Addr: 128, Len: 64})
		if !ok1 || !ok2 || ok3 {
			t.Errorf("PostTx results = %v %v %v, want true true false", ok1, ok2, ok3)
		}
		if n.TxRingFull != 1 {
			t.Errorf("TxRingFull = %d", n.TxRingFull)
		}
	})
	eng.Run()
}

func TestSendRawReachesWire(t *testing.T) {
	r := newNICRig(t)
	// Raw MAC-borrow frame from nicB using macA as source: the switch must
	// relearn macA onto nicB's port.
	r.eng.At(0, func() {
		f := &netsw.Frame{Src: macA, Dst: netsw.Broadcast, Bytes: testFrame(macA, netsw.Broadcast, 0, 64)}
		r.b.SendRaw(f)
	})
	r.eng.At(time.Millisecond, func() { r.eng.Shutdown() })
	r.eng.Run()
	if r.sw.LookupMAC(macA) != r.sw.Ports()[1] {
		t.Fatal("raw frame did not teach the switch (MAC borrowing broken)")
	}
}

func TestLocalMemoryDMA(t *testing.T) {
	// NIC DMA through host-local DDR (the baseline configuration).
	eng := sim.New()
	mem := host.NewLocalMemory(eng, 1<<20, host.DefaultMemParams())
	sw := netsw.New(eng, netsw.DefaultParams())
	n := New(eng, "n", macA, mem, testFlowKey, DefaultParams())
	col := &frameCollector{}
	n.Connect(sw.AttachPort("p", col))
	// Attach a second port so the flood has somewhere to go.
	other := &frameCollector{}
	sw.AttachPort("q", other)
	n.Start()
	frame := testFrame(macA, macB, 1, 120)
	mem.Poke(256, frame)
	eng.Go("driver", func(p *sim.Proc) {
		n.PostTx(p, WQE{Addr: 256, Len: len(frame), Cookie: 5})
		p.Sleep(100 * time.Microsecond)
		eng.Shutdown()
	})
	eng.Run()
	if len(other.frames) != 1 || !bytes.Equal(other.frames[0].Bytes, frame) {
		t.Fatalf("frame not forwarded from local-memory DMA (got %d)", len(other.frames))
	}
}

type frameCollector struct{ frames []*netsw.Frame }

func (c *frameCollector) DeliverFrame(f *netsw.Frame) { c.frames = append(c.frames, f) }

func TestDDIOHazardAcrossHosts(t *testing.T) {
	// §3.2.1: with DDIO on, RX DMA lands in the owning host's cache and the
	// pool never sees the payload — a remote host reads stale bytes. This
	// is exactly why Oasis assumes DDIO is disabled.
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<20, cxl.DefaultParams())
	sw := netsw.New(eng, netsw.DefaultParams())
	owner := cache.New(eng, pool.AttachPort("owner"), cache.DefaultParams())
	params := DefaultParams()
	params.DDIO = true
	n := New(eng, "n", macB, pool.AttachPort("nic-dma"), testFlowKey, params)
	n.SetSnooper(owner)
	n.Connect(sw.AttachPort("p", n))
	// Second port so a frame can be injected from "the wire".
	injector := sw.AttachPort("q", nil)
	n.Start()
	remote := cache.New(eng, pool.AttachPort("remote"), cache.DefaultParams())

	frame := testFrame(macA, macB, 0x0a000002, 200)
	eng.Go("driver", func(p *sim.Proc) {
		n.PostRx(p, RxDesc{Addr: 4096, Cap: 2048})
		var f netsw.Frame
		copy(f.Dst[:], frame[0:6])
		copy(f.Src[:], frame[6:12])
		f.Bytes = frame
		injector.Send(&f)
		p.Sleep(100 * time.Microsecond)

		// The OWNING host's cache sees the packet (DDIO win)...
		got := make([]byte, len(frame))
		owner.Read(p, 4096, got, "payload")
		if !bytes.Equal(got, frame) {
			t.Error("owning host's cache missing the DDIO-installed packet")
		}
		// ...but pool memory was never written, so a REMOTE host reads
		// stale zeros: the cross-host corruption §3.2.1 forbids.
		poolBytes := make([]byte, len(frame))
		pool.Peek(4096, poolBytes)
		if bytes.Equal(poolBytes, frame) {
			t.Error("pool updated despite DDIO: hazard not modelled")
		}
		remoteBytes := make([]byte, len(frame))
		remote.Read(p, 4096, remoteBytes, "payload")
		if bytes.Equal(remoteBytes, frame) {
			t.Error("remote host read fresh data; DDIO hazard not reproduced")
		}
		eng.Shutdown()
	})
	eng.Run()
	if owner.Stats().DDIOInstalls == 0 {
		t.Fatal("DDIO installs never happened")
	}
}

func TestDDIOOffWritesPool(t *testing.T) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<20, cxl.DefaultParams())
	sw := netsw.New(eng, netsw.DefaultParams())
	owner := cache.New(eng, pool.AttachPort("owner"), cache.DefaultParams())
	n := New(eng, "n", macB, pool.AttachPort("nic-dma"), testFlowKey, DefaultParams())
	n.SetSnooper(owner)
	n.Connect(sw.AttachPort("p", n))
	injector := sw.AttachPort("q", nil)
	n.Start()
	frame := testFrame(macA, macB, 0x0a000002, 200)
	eng.Go("driver", func(p *sim.Proc) {
		n.PostRx(p, RxDesc{Addr: 4096, Cap: 2048})
		var f netsw.Frame
		copy(f.Dst[:], frame[0:6])
		copy(f.Src[:], frame[6:12])
		f.Bytes = frame
		injector.Send(&f)
		p.Sleep(100 * time.Microsecond)
		got := make([]byte, len(frame))
		pool.Peek(4096, got)
		if !bytes.Equal(got, frame) {
			t.Error("with DDIO off, DMA must land in pool memory")
		}
		eng.Shutdown()
	})
	eng.Run()
	if owner.Stats().DDIOInstalls != 0 {
		t.Fatal("DDIO installs with DDIO disabled")
	}
}
