package nic

import (
	"testing"
	"time"

	"oasis/internal/netsw"
	"oasis/internal/sim"
)

// TestTxAllocBudget guards the NIC transmit path. A TX packet can never be
// fully alloc-free — the parsed frame escapes to the switch, which may hold
// it across deferred delivery — but everything else (WQE queues, DMA reads,
// completions, engine events) must stay on free lists. The budget below is
// the measured steady state plus slack; if a change pushes past it, a
// per-packet allocation crept back into the hot path.
func TestTxAllocBudget(t *testing.T) {
	r := newNICRig(t)
	frame := testFrame(macA, macB, 0x0a000002, 200)
	r.pool.Poke(0, frame)
	r.eng.Go("driver", func(p *sim.Proc) {
		// Teach the switch where macB lives so TX frames unicast instead
		// of flooding.
		bcast := testFrame(macB, netsw.Broadcast, 0, 64)
		r.pool.Poke(8192, bcast)
		r.b.PostTx(p, WQE{Addr: 8192, Len: 64, Cookie: 9})
		p.Sleep(10 * time.Microsecond)
		for {
			if !r.a.PostTx(p, WQE{Addr: 0, Len: len(frame), Cookie: 1}) {
				p.Sleep(time.Microsecond)
			}
			for {
				if _, ok := r.a.PollTxCompletion(); !ok {
					break
				}
			}
		}
	})
	const window = 100 * time.Microsecond
	r.eng.RunUntil(window)
	before := r.a.TxPackets

	const runs = 5
	allocs := testing.AllocsPerRun(runs, func() {
		r.eng.RunUntil(r.eng.Now() + window)
	})
	// AllocsPerRun adds one untimed warm-up call, so runs+1 windows passed.
	pkts := float64(r.a.TxPackets-before) / float64(runs+1)
	if pkts < 50 {
		t.Fatalf("only %.0f TX packets per window; harness broken", pkts)
	}
	// Two allocations are inherent to this rig: the parsed *netsw.Frame
	// (escapes to the switch, which may retain it across flood/deferred
	// delivery) and the frame buffer itself (nothing feeds the buffer pool
	// here, so Get falls back to make; real pods recycle DMA snapshots into
	// the same size class). Everything else — WQE/completion queues, DMA
	// posting, engine events — must stay on free lists.
	perPkt := allocs / pkts
	t.Logf("%.0f pkts/window, %.1f allocs/window, %.3f allocs/pkt", pkts, allocs, perPkt)
	if perPkt > 2.5 {
		t.Fatalf("NIC TX allocated %.3f objects per packet, budget is 2.5", perPkt)
	}
	r.eng.Shutdown()
}
