// Package memalloc provides a first-fit span allocator used by every
// simulated memory (the CXL pool, per-host local DDR).
package memalloc

import "fmt"

type span struct{ base, end int64 }

// Allocator hands out [base, base+size) spans from a fixed range with
// first-fit placement and coalescing free.
type Allocator struct {
	size  int64
	align int64
	holes []span
}

// New returns an allocator over [0, size) that rounds every request up to a
// multiple of align.
func New(size, align int64) *Allocator {
	if size <= 0 || align <= 0 || size%align != 0 {
		panic(fmt.Sprintf("memalloc: invalid size %d / align %d", size, align))
	}
	return &Allocator{size: size, align: align, holes: []span{{0, size}}}
}

// Size returns the managed range's total bytes.
func (a *Allocator) Size() int64 { return a.size }

// Align returns the allocation granularity.
func (a *Allocator) Align() int64 { return a.align }

// Alloc reserves size bytes (rounded up to the alignment), returning the
// base offset.
func (a *Allocator) Alloc(size int64) (base, rounded int64, err error) {
	if size <= 0 {
		return 0, 0, fmt.Errorf("memalloc: invalid allocation size %d", size)
	}
	size = (size + a.align - 1) / a.align * a.align
	for i, h := range a.holes {
		if h.end-h.base >= size {
			base = h.base
			h.base += size
			if h.base == h.end {
				a.holes = append(a.holes[:i], a.holes[i+1:]...)
			} else {
				a.holes[i] = h
			}
			return base, size, nil
		}
	}
	return 0, 0, fmt.Errorf("memalloc: out of memory allocating %d bytes (%d free)", size, a.FreeBytes())
}

// Free returns [base, base+size) to the allocator, coalescing with
// neighbouring holes. size must be the rounded size returned by Alloc.
func (a *Allocator) Free(base, size int64) {
	if base < 0 || size <= 0 || base+size > a.size || base%a.align != 0 || size%a.align != 0 {
		panic(fmt.Sprintf("memalloc: bad free [%d, %d)", base, base+size))
	}
	s := span{base, base + size}
	idx := len(a.holes)
	for i, h := range a.holes {
		if h.base > s.base {
			idx = i
			break
		}
	}
	a.holes = append(a.holes, span{})
	copy(a.holes[idx+1:], a.holes[idx:])
	a.holes[idx] = s
	merged := a.holes[:0]
	for _, h := range a.holes {
		if n := len(merged); n > 0 && merged[n-1].end >= h.base {
			if h.base < merged[n-1].end {
				// Overlap means a double free — always a simulation bug.
				panic(fmt.Sprintf("memalloc: double free detected at [%d, %d)", base, base+size))
			}
			if h.end > merged[n-1].end {
				merged[n-1].end = h.end
			}
			continue
		}
		merged = append(merged, h)
	}
	a.holes = merged
}

// FreeBytes returns the number of unallocated bytes.
func (a *Allocator) FreeBytes() int64 {
	var n int64
	for _, h := range a.holes {
		n += h.end - h.base
	}
	return n
}
