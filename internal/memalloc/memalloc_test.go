package memalloc

import (
	"testing"
	"testing/quick"
)

func TestAllocRoundsUp(t *testing.T) {
	a := New(1024, 64)
	base, rounded, err := a.Alloc(1)
	if err != nil || base != 0 || rounded != 64 {
		t.Fatalf("Alloc(1) = %d,%d,%v", base, rounded, err)
	}
	if a.FreeBytes() != 960 {
		t.Fatalf("free = %d", a.FreeBytes())
	}
}

func TestExhaustion(t *testing.T) {
	a := New(128, 64)
	if _, _, err := a.Alloc(128); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Alloc(1); err == nil {
		t.Fatal("expected exhaustion")
	}
}

func TestFreeCoalescesAcrossThree(t *testing.T) {
	a := New(192, 64)
	b1, s1, _ := a.Alloc(64)
	b2, s2, _ := a.Alloc(64)
	b3, s3, _ := a.Alloc(64)
	// Free outer spans, then middle: all three must coalesce.
	a.Free(b1, s1)
	a.Free(b3, s3)
	a.Free(b2, s2)
	if _, _, err := a.Alloc(192); err != nil {
		t.Fatalf("full-range alloc after coalescing: %v", err)
	}
}

func TestDoubleFreePanics(t *testing.T) {
	a := New(128, 64)
	b, s, _ := a.Alloc(64)
	a.Free(b, s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected double-free panic")
		}
	}()
	a.Free(b, s)
}

func TestInvalidFreePanics(t *testing.T) {
	a := New(128, 64)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unaligned free")
		}
	}()
	a.Free(32, 64)
}

func TestZeroAllocRejected(t *testing.T) {
	a := New(128, 64)
	if _, _, err := a.Alloc(0); err == nil {
		t.Fatal("Alloc(0) must fail")
	}
}

func TestConservationProperty(t *testing.T) {
	// Property: free bytes plus live bytes always equals the managed size,
	// and live spans never overlap.
	f := func(ops []uint16) bool {
		a := New(1<<16, 64)
		type spanT struct{ base, size int64 }
		var live []spanT
		var liveBytes int64
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				a.Free(live[i].base, live[i].size)
				liveBytes -= live[i].size
				live = append(live[:i], live[i+1:]...)
			} else {
				base, rounded, err := a.Alloc(int64(op%4096) + 1)
				if err != nil {
					continue
				}
				for _, o := range live {
					if base < o.base+o.size && o.base < base+rounded {
						return false
					}
				}
				live = append(live, spanT{base, rounded})
				liveBytes += rounded
			}
			if a.FreeBytes()+liveBytes != 1<<16 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
