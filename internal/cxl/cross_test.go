package cxl

import (
	"testing"
	"time"

	"oasis/internal/sim"
)

// The pool must declare the cheaper of its load and write latencies as
// lookahead — any larger claim would let a posted write outrun the window.
func TestDeclareCrossLinkLatency(t *testing.T) {
	g := sim.NewGroup()
	a, b := g.AddPartition(), g.AddPartition()
	pool := NewPool(a, 1<<20, DefaultParams())
	link := pool.DeclareCrossLink(g, b)
	want := DefaultParams().WriteLatency
	if DefaultParams().LoadLatency < want {
		want = DefaultParams().LoadLatency
	}
	if link.MinLatency() != want {
		t.Fatalf("declared lookahead %v, want min(load, write) = %v", link.MinLatency(), want)
	}
	if link.Src() != a || link.Dst() != b {
		t.Fatal("link endpoints do not match the pool's partition and its peer")
	}
	// The declared latency must actually carry events across the partition.
	var at sim.Duration
	a.Go("poker", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		link.Send(p.Now()+link.MinLatency(), func() { at = b.Now() })
	})
	g.RunUntil(10 * time.Microsecond)
	g.Shutdown()
	if at != time.Microsecond+want {
		t.Fatalf("cross event fired at %v, want %v", at, time.Microsecond+want)
	}
}
