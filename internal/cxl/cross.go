package cxl

import "oasis/internal/sim"

// DeclareCrossLink registers a cross-partition event channel from the
// pool's partition toward dst, declaring the pool's intrinsic minimum
// event latency as lookahead: no CXL-mediated interaction — a line load,
// a posted write landing, a message-channel doorbell — can reach another
// host faster than the cheaper of the pool's load and write latencies.
// Wiring code calls this when a channel it builds over the pool spans
// partitions; the returned link carries the events.
func (p *Pool) DeclareCrossLink(g *sim.Group, dst *sim.Engine) *sim.CrossLink {
	return g.Link(p.eng, dst, p.CrossLatency())
}

// CrossLatency returns the pool's intrinsic minimum cross-host event
// latency — the cheaper of a line load and a posted write. Per-host
// partitioning uses it as the declared lookahead for host-compute
// partitions coupled through pool memory channels.
func (p *Pool) CrossLatency() sim.Duration {
	min := p.params.LoadLatency
	if p.params.WriteLatency < min {
		min = p.params.WriteLatency
	}
	return min
}
