package cxl

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"oasis/internal/sim"
)

func newTestPool(size int64) *Pool {
	return NewPool(sim.New(), size, DefaultParams())
}

func TestPokePeekRoundTrip(t *testing.T) {
	p := newTestPool(1 << 20)
	data := []byte("hello, cxl pool")
	p.Poke(5000, data) // crosses a page? (page 4096: [5000,5015) inside page 1)
	got := make([]byte, len(data))
	p.Peek(5000, got)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestPokePeekAcrossPages(t *testing.T) {
	p := newTestPool(1 << 20)
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	p.Poke(pageSize-100, data)
	got := make([]byte, len(data))
	p.Peek(pageSize-100, got)
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page poke/peek mismatch")
	}
}

func TestPeekUntouchedIsZero(t *testing.T) {
	p := newTestPool(1 << 20)
	buf := []byte{1, 2, 3, 4}
	p.Peek(777, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatal("untouched memory must read zero")
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	p := newTestPool(4096)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range access")
		}
	}()
	p.Peek(4090, make([]byte, 10))
}

func TestAllocAlignmentAndExhaustion(t *testing.T) {
	p := newTestPool(1024)
	r1, err := p.Alloc(100) // rounds to 128
	if err != nil {
		t.Fatal(err)
	}
	if r1.Size != 128 || r1.Base%LineSize != 0 {
		t.Fatalf("r1 = %+v", r1)
	}
	r2, err := p.Alloc(896)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Base != 128 {
		t.Fatalf("r2.Base = %d, want 128", r2.Base)
	}
	if _, err := p.Alloc(64); err == nil {
		t.Fatal("expected exhaustion")
	}
	if p.FreeBytes() != 0 {
		t.Fatalf("free = %d, want 0", p.FreeBytes())
	}
}

func TestFreeCoalesces(t *testing.T) {
	p := newTestPool(1024)
	var regs []Region
	for i := 0; i < 4; i++ {
		r, err := p.Alloc(256)
		if err != nil {
			t.Fatal(err)
		}
		regs = append(regs, r)
	}
	// Free middle two out of order; they must coalesce so a 512 alloc fits.
	p.Free(regs[2])
	p.Free(regs[1])
	r, err := p.Alloc(512)
	if err != nil {
		t.Fatalf("coalesced alloc failed: %v", err)
	}
	if r.Base != 256 {
		t.Fatalf("base = %d, want 256", r.Base)
	}
}

func TestAllocFreeNeverOverlaps(t *testing.T) {
	// Property: live allocations never overlap, regardless of alloc/free
	// interleaving.
	f := func(ops []uint16) bool {
		p := newTestPool(1 << 16)
		var live []Region
		for _, op := range ops {
			if op%3 == 0 && len(live) > 0 {
				i := int(op) % len(live)
				p.Free(live[i])
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := int64(op%2048) + 1
			r, err := p.Alloc(size)
			if err != nil {
				continue // exhausted is fine
			}
			for _, o := range live {
				if r.Base < o.Base+o.Size && o.Base < r.Base+r.Size {
					return false
				}
			}
			live = append(live, r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRegionContains(t *testing.T) {
	p := newTestPool(1 << 12)
	r, _ := p.Alloc(256)
	if !r.Contains(r.Base, 256) || r.Contains(r.Base, 257) || r.Contains(r.Base-1, 1) {
		t.Fatal("Contains boundary checks failed")
	}
}

func TestFetchLineTimingAndMetering(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, 1<<20, Params{LoadLatency: 200 * time.Nanosecond, PortBandwidth: 64e9})
	port := pool.AttachPort("h0")
	pool.Poke(0, []byte{0xAB})

	var arrival sim.Duration
	eng.At(0, func() { arrival = port.FetchLine(0, "message") })
	eng.Run()
	// Serialization of 64B at 64 GB/s = 1 ns; arrival = 1ns + 200ns.
	if arrival != 201*time.Nanosecond {
		t.Fatalf("arrival = %v, want 201ns", arrival)
	}
	if port.ReadMeter().Category("message") != 64 {
		t.Fatalf("metered %d bytes, want 64", port.ReadMeter().Category("message"))
	}
	buf := make([]byte, LineSize)
	port.CollectLine(0, buf)
	if buf[0] != 0xAB {
		t.Fatal("CollectLine returned wrong data")
	}
}

func TestLinkSerializationQueues(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, 1<<20, Params{LoadLatency: 100 * time.Nanosecond, PortBandwidth: 6.4e9})
	port := pool.AttachPort("h0")
	// 64 B at 6.4 GB/s = 10 ns serialization. Two back-to-back fetches:
	// the second queues behind the first on the link.
	var a1, a2 sim.Duration
	eng.At(0, func() {
		a1 = port.FetchLine(0, "m")
		a2 = port.FetchLine(64, "m")
	})
	eng.Run()
	if a1 != 110*time.Nanosecond || a2 != 120*time.Nanosecond {
		t.Fatalf("arrivals = %v, %v; want 110ns, 120ns", a1, a2)
	}
}

func TestWriteLineUpdatesPoolImmediately(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, 1<<20, DefaultParams())
	port := pool.AttachPort("h0")
	data := make([]byte, LineSize)
	data[0] = 0xCD
	eng.At(0, func() { port.WriteLine(128, data, "message") })
	eng.Run()
	got := make([]byte, 1)
	pool.Peek(128, got)
	if got[0] != 0xCD {
		t.Fatal("WriteLine did not reach pool memory")
	}
	if port.WriteMeter().Category("message") != 64 {
		t.Fatal("write not metered")
	}
}

func TestDMAReadWholeLinesMetered(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, 1<<20, DefaultParams())
	port := pool.AttachPort("nic-dma")
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	pool.Poke(30, payload) // spans lines 0,1,2 (offsets 30..129)
	buf := make([]byte, 100)
	eng.At(0, func() { port.DMARead(30, buf, "payload") })
	eng.Run()
	if !bytes.Equal(buf, payload) {
		t.Fatal("DMARead data mismatch")
	}
	if got := port.ReadMeter().Category("payload"); got != 3*64 {
		t.Fatalf("metered %d, want 192 (3 lines)", got)
	}
}

func TestDMAWriteRoundTrip(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, 1<<20, DefaultParams())
	port := pool.AttachPort("nic-dma")
	payload := []byte("packet payload bytes")
	var done sim.Duration
	eng.At(0, func() { done = port.DMAWrite(4096, payload, "payload") })
	eng.Run()
	if done <= 0 {
		t.Fatal("DMAWrite completion time must be positive")
	}
	got := make([]byte, len(payload))
	pool.Peek(4096, got)
	if !bytes.Equal(got, payload) {
		t.Fatal("DMAWrite data mismatch")
	}
}

func TestLinesSpanned(t *testing.T) {
	cases := []struct {
		addr int64
		n    int
		want int
	}{
		{0, 0, 0}, {0, 1, 1}, {0, 64, 1}, {0, 65, 2},
		{63, 1, 1}, {63, 2, 2}, {30, 100, 3}, {64, 64, 1},
	}
	for _, c := range cases {
		if got := linesSpanned(c.addr, c.n); got != c.want {
			t.Errorf("linesSpanned(%d,%d) = %d, want %d", c.addr, c.n, got, c.want)
		}
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0) != 0 || LineAddr(63) != 0 || LineAddr(64) != 64 || LineAddr(130) != 128 {
		t.Fatal("LineAddr wrong")
	}
}

func TestPoolSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unaligned pool size")
		}
	}()
	NewPool(sim.New(), 100, DefaultParams())
}

func TestQoSThrottlesClassAndProtectsOthers(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, 1<<20, Params{LoadLatency: 200 * time.Nanosecond, WriteLatency: 100 * time.Nanosecond, PortBandwidth: 32e9})
	port := pool.AttachPort("h0")
	port.SetQoS("olap", 0.5)
	var olapDone, msgDone sim.Duration
	eng.At(0, func() {
		// 64 KiB OLAP burst: at 16 GB/s (half the port) it occupies 4 µs...
		buf := make([]byte, 65536)
		olapDone = port.DMARead(0, buf, "olap")
		// ...but a message fetch issued right after must NOT queue behind it.
		msgDone = port.FetchLine(65536, "message")
	})
	eng.Run()
	if olapDone < 4*time.Microsecond {
		t.Fatalf("olap burst finished at %v; throttle to 16 GB/s not applied", olapDone)
	}
	if msgDone > time.Microsecond {
		t.Fatalf("message fetch at %v queued behind the throttled class", msgDone)
	}
}

func TestNoQoSMeansFIFOInterference(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, 1<<20, Params{LoadLatency: 200 * time.Nanosecond, WriteLatency: 100 * time.Nanosecond, PortBandwidth: 32e9})
	port := pool.AttachPort("h0")
	var msgDone sim.Duration
	eng.At(0, func() {
		buf := make([]byte, 65536)
		port.DMARead(0, buf, "olap")
		msgDone = port.FetchLine(65536, "message")
	})
	eng.Run()
	// Without QoS the line fetch serializes behind 64 KiB at 32 GB/s (~2 µs).
	if msgDone < 2*time.Microsecond {
		t.Fatalf("message fetch at %v; expected FIFO queueing without QoS", msgDone)
	}
}

func TestQoSRejectsBadFraction(t *testing.T) {
	eng := sim.New()
	pool := NewPool(eng, 1<<20, DefaultParams())
	port := pool.AttachPort("h0")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for fraction > 1")
		}
	}()
	port.SetQoS("x", 1.5)
}
