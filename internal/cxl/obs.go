package cxl

import "oasis/internal/obs"

// RegisterObs registers the port's per-category byte meters under prefix/*
// (conventionally cxl/port/<port name>), one snapshot point per traffic
// category — Table 3's payload-vs-message breakdown falls out directly.
func (pt *Port) RegisterObs(r *obs.Registry, prefix string) {
	r.Meter(prefix+"/rd_bytes", pt.rdMeter)
	r.Meter(prefix+"/wr_bytes", pt.wrMeter)
}
