// Package cxl models a CXL 2.0 pooled memory device (a multi-headed device,
// MHD) shared by the hosts of a pod.
//
// The pool is byte-addressable backing memory plus one Port per host. Ports
// meter traffic by category ("payload" vs "message", Table 3) and serialize
// transfers on per-direction link resources sized like a ×8 CXL 2.0 link
// (4 GB/s per lane, §2.3). Load-to-use latency defaults to ~2.2× local DDR
// (§2.3).
//
// Crucially, the pool is *not* cache-coherent across hosts (§2.3, §3.2):
// coherence is the job of the software running above — package cache models
// each host's CPU cache, and packages msgchan/core implement the paper's
// software coherence protocols on top.
//
// Backing memory is sparse (4 KiB pages allocated on first touch) so that
// simulations can declare paper-sized regions (4 GB TX areas) without
// committing host RAM.
package cxl

import (
	"fmt"
	"sort"
	"time"

	"oasis/internal/memalloc"
	"oasis/internal/metrics"
	"oasis/internal/sim"
)

// LineSize is the coherence/transfer granularity in bytes.
const LineSize = 64

const pageSize = 4096

// Params configures the pool's timing model.
type Params struct {
	// LoadLatency is idle load-to-use latency for one line.
	LoadLatency sim.Duration
	// WriteLatency is how long a posted write takes to land in pool memory
	// and become visible to other ports. The paper's ~0.6 µs idle message
	// latency is one write propagation plus one load (§3.2.2 ①).
	WriteLatency sim.Duration
	// PortBandwidth is per-port, per-direction link bandwidth in bytes/s.
	PortBandwidth float64
	// HWCoherent enables CXL 3.0-style Back Invalidation (§6): every write
	// that lands in pool memory invalidates the line in all registered
	// host caches. No CXL 2.0 device supports this; it exists here for the
	// paper's forward-compatibility ablation and defaults to off.
	HWCoherent bool
}

// DefaultParams matches the paper's platform: a ×8 CXL 2.0 port (8 lanes ×
// 4 GB/s). The paper withholds the device's raw latency and reports only
// the ~2.2×-DDR ratio (§2.3) plus one absolute anchor: ~0.6 µs idle one-way
// message latency ≈ one CXL write + one CXL read (§3.2.2 ①). These values
// are calibrated to that anchor.
func DefaultParams() Params {
	return Params{
		LoadLatency:   300 * time.Nanosecond,
		WriteLatency:  220 * time.Nanosecond,
		PortBandwidth: 32e9,
	}
}

// Pool is the shared CXL memory device.
type Pool struct {
	eng     *sim.Engine
	params  Params
	size    int64
	pages   [][]byte // sparse backing store, indexed by addr/pageSize
	ports   []*Port
	alloc   *memalloc.Allocator
	classes []classSpan // sorted latency-class overrides
	bi      []BackInvalidator
}

// BackInvalidator receives CXL 3.0 Back Invalidation messages when the pool
// runs in HWCoherent mode. Host caches implement it.
type BackInvalidator interface {
	BackInvalidate(lineAddr int64)
}

// RegisterBI subscribes a cache to Back Invalidation (no-op unless the pool
// is HWCoherent).
func (p *Pool) RegisterBI(b BackInvalidator) { p.bi = append(p.bi, b) }

// backInvalidate drops [addr, addr+n) from every registered cache.
func (p *Pool) backInvalidate(addr int64, n int) {
	if !p.params.HWCoherent || len(p.bi) == 0 || n <= 0 {
		return
	}
	last := LineAddr(addr + int64(n) - 1)
	for a := LineAddr(addr); a <= last; a += LineSize {
		for _, b := range p.bi {
			b.BackInvalidate(a)
		}
	}
}

// Class overrides load/write latency for a region. The Figure 11 breakdown
// ("baseline + I/O buffers in CXL") mixes DDR-latency message rings with
// CXL-latency buffers in one address space; classes express that. Zero
// values fall back to the pool defaults.
type Class struct {
	Load  sim.Duration
	Write sim.Duration
}

// LocalClass returns DDR-like latencies for regions modelling host-local
// shared memory (Junction-style IPC rings).
func LocalClass() Class {
	return Class{Load: 90 * time.Nanosecond, Write: 40 * time.Nanosecond}
}

type classSpan struct {
	base, end int64
	c         Class
}

// classFor returns the effective latencies for an address.
func (p *Pool) classFor(addr int64) (load, write sim.Duration) {
	i := sort.Search(len(p.classes), func(i int) bool { return p.classes[i].end > addr })
	if i < len(p.classes) && p.classes[i].base <= addr {
		c := p.classes[i].c
		load, write = c.Load, c.Write
	}
	if load == 0 {
		load = p.params.LoadLatency
	}
	if write == 0 {
		write = p.params.WriteLatency
	}
	return load, write
}

// NewPool creates a pool of the given byte size.
func NewPool(eng *sim.Engine, size int64, params Params) *Pool {
	if size <= 0 || size%LineSize != 0 {
		panic("cxl: pool size must be a positive multiple of the line size")
	}
	return &Pool{
		eng:    eng,
		params: params,
		size:   size,
		pages:  make([][]byte, (size+pageSize-1)/pageSize),
		alloc:  memalloc.New(size, LineSize),
	}
}

// Engine returns the simulation engine the pool is bound to.
func (p *Pool) Engine() *sim.Engine { return p.eng }

// Params returns the timing parameters.
func (p *Pool) Params() Params { return p.params }

// Size returns the pool capacity in bytes.
func (p *Pool) Size() int64 { return p.size }

// AttachPort adds a host-facing port and returns it. The name appears in
// bandwidth reports ("host0", "nic1-dma", ...).
func (p *Pool) AttachPort(name string) *Port {
	port := &Port{
		pool:    p,
		name:    name,
		id:      len(p.ports),
		rdLink:  sim.NewResource(p.eng),
		wrLink:  sim.NewResource(p.eng),
		rdMeter: metrics.NewMeter(),
		wrMeter: metrics.NewMeter(),
	}
	p.ports = append(p.ports, port)
	return port
}

// Ports returns all attached ports.
func (p *Pool) Ports() []*Port { return p.ports }

// Alloc carves a line-aligned region of the given size out of the pool using
// first-fit. It returns an error when the pool is exhausted.
func (p *Pool) Alloc(size int64) (Region, error) {
	return p.AllocClass(size, Class{})
}

// AllocClass allocates a region with a latency-class override.
func (p *Pool) AllocClass(size int64, c Class) (Region, error) {
	base, rounded, err := p.alloc.Alloc(size)
	if err != nil {
		return Region{}, fmt.Errorf("cxl: %w", err)
	}
	r := Region{pool: p, Base: base, Size: rounded}
	if c != (Class{}) {
		p.setClass(r, c)
	}
	return r, nil
}

// setClass records a latency override, keeping spans sorted.
func (p *Pool) setClass(r Region, c Class) {
	span := classSpan{base: r.Base, end: r.Base + r.Size, c: c}
	i := sort.Search(len(p.classes), func(i int) bool { return p.classes[i].base >= span.base })
	p.classes = append(p.classes, classSpan{})
	copy(p.classes[i+1:], p.classes[i:])
	p.classes[i] = span
}

// Free returns a region to the pool, coalescing with adjacent holes.
func (p *Pool) Free(r Region) {
	if r.pool != p {
		panic("cxl: freeing a region that does not belong to this pool")
	}
	p.alloc.Free(r.Base, r.Size)
}

// FreeBytes returns the number of unallocated bytes.
func (p *Pool) FreeBytes() int64 { return p.alloc.FreeBytes() }

// page returns the backing page for addr, allocating it on first touch.
func (p *Pool) page(addr int64) []byte {
	i := addr / pageSize
	pg := p.pages[i]
	if pg == nil {
		pg = make([]byte, pageSize)
		p.pages[i] = pg
	}
	return pg
}

// checkRange panics on out-of-pool accesses — these are simulation bugs.
func (p *Pool) checkRange(addr int64, n int) {
	if addr < 0 || addr+int64(n) > p.size {
		panic(fmt.Sprintf("cxl: access [%d, %d) outside pool of size %d", addr, addr+int64(n), p.size))
	}
}

// peek copies pool contents into buf with no timing or metering; used by the
// cache model at fill completion and by tests.
func (p *Pool) peek(addr int64, buf []byte) {
	p.checkRange(addr, len(buf))
	for len(buf) > 0 {
		pg := p.page(addr)
		off := addr & (pageSize - 1)
		n := copy(buf, pg[off:])
		buf = buf[n:]
		addr += int64(n)
	}
}

// poke writes buf into pool contents with no timing or metering.
func (p *Pool) poke(addr int64, buf []byte) {
	p.checkRange(addr, len(buf))
	for len(buf) > 0 {
		pg := p.page(addr)
		off := addr & (pageSize - 1)
		n := copy(pg[off:], buf)
		buf = buf[n:]
		addr += int64(n)
	}
}

// Peek is the test/debug accessor for raw pool contents.
func (p *Pool) Peek(addr int64, buf []byte) { p.peek(addr, buf) }

// Poke is the test/debug mutator for raw pool contents.
func (p *Pool) Poke(addr int64, buf []byte) { p.poke(addr, buf) }

// Region is a line-aligned allocation within the pool.
type Region struct {
	pool *Pool
	Base int64
	Size int64
}

// Contains reports whether [addr, addr+n) lies inside the region.
func (r Region) Contains(addr int64, n int) bool {
	return addr >= r.Base && addr+int64(n) <= r.Base+r.Size
}

// Pool returns the pool the region was allocated from.
func (r Region) Pool() *Pool { return r.pool }

// Port is one host's (or one device's DMA path's) attachment to the pool.
type Port struct {
	pool   *Pool
	name   string
	id     int
	rdLink *sim.Resource // pool -> host
	wrLink *sim.Resource // host -> pool

	rdMeter *metrics.Meter
	wrMeter *metrics.Meter

	freeWrites []*postedWrite // recycled posted-write ops (engine-local, no lock)

	// QoS (§6): Intel RDT-style bandwidth throttling. A category with a
	// share is serialized on its own sub-link at share × PortBandwidth,
	// so a bandwidth-hungry co-tenant (e.g. an OLAP scan) cannot queue
	// ahead of Oasis's latency-critical message traffic.
	qosRd map[string]*classLink
	qosWr map[string]*classLink

	// Degradation (fault injection): a flaky retimer or downgraded link
	// width stretches every latency term by latMult and shrinks the
	// effective bandwidth to bwFrac × PortBandwidth. Zero values mean
	// healthy (multiplier 1).
	latMult float64
	bwFrac  float64
	// jitter is a flat added latency per transaction (cxl-jitter gray
	// fault): a marginal retimer adding delay without shrinking bandwidth.
	jitter sim.Duration
}

type classLink struct {
	res *sim.Resource
	bps float64
}

// SetQoS throttles a traffic category to fraction × the port bandwidth,
// isolating every other category from its queueing. fraction must be in
// (0, 1].
func (pt *Port) SetQoS(category string, fraction float64) {
	if fraction <= 0 || fraction > 1 {
		panic(fmt.Sprintf("cxl: QoS fraction %v out of (0,1]", fraction))
	}
	if pt.qosRd == nil {
		pt.qosRd = make(map[string]*classLink)
		pt.qosWr = make(map[string]*classLink)
	}
	bps := pt.pool.params.PortBandwidth * fraction
	pt.qosRd[category] = &classLink{res: sim.NewResource(pt.pool.eng), bps: bps}
	pt.qosWr[category] = &classLink{res: sim.NewResource(pt.pool.eng), bps: bps}
}

// SetDegraded injects (or, with 1, 1, clears) a link-quality fault on this
// port: latencies are multiplied by latMult and bandwidth scaled to bwFrac
// of nominal. Both must be positive; latMult ≥ 1 and bwFrac ≤ 1 model
// degradation, the inverse would model an (unphysical) upgrade.
func (pt *Port) SetDegraded(latMult, bwFrac float64) {
	if latMult <= 0 || bwFrac <= 0 {
		panic(fmt.Sprintf("cxl: SetDegraded(%v, %v) requires positive factors", latMult, bwFrac))
	}
	pt.latMult, pt.bwFrac = latMult, bwFrac
}

// SetJitter injects (or, with 0, clears) a flat added latency on every
// transaction through this port — the cxl-jitter gray fault. Unlike
// SetDegraded's multiplier it is independent of the nominal latency term,
// so even cache-speed operations pay it.
func (pt *Port) SetJitter(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("cxl: SetJitter(%v) requires a non-negative delay", d))
	}
	pt.jitter = d
}

// Jitter reports the active injected per-transaction latency (0 = none).
func (pt *Port) Jitter() sim.Duration { return pt.jitter }

// Degraded reports whether a degradation fault is active.
func (pt *Port) Degraded() bool {
	return (pt.latMult != 0 && pt.latMult != 1) || (pt.bwFrac != 0 && pt.bwFrac != 1) || pt.jitter != 0
}

// scaleLat stretches a latency term by the active degradation multiplier
// and adds the active jitter.
func (pt *Port) scaleLat(d sim.Duration) sim.Duration {
	if pt.latMult != 0 && pt.latMult != 1 {
		d = sim.Duration(float64(d) * pt.latMult)
	}
	return d + pt.jitter
}

// scaleSer stretches a serialization term by the active bandwidth fraction.
func (pt *Port) scaleSer(d sim.Duration) sim.Duration {
	if pt.bwFrac != 0 && pt.bwFrac != 1 {
		return sim.Duration(float64(d) / pt.bwFrac)
	}
	return d
}

// reserveRd books n bytes on the read direction for a category.
func (pt *Port) reserveRd(category string, n int) sim.Duration {
	if cl, ok := pt.qosRd[category]; ok {
		return cl.res.Reserve(pt.scaleSer(sim.Duration(float64(n) / cl.bps * float64(time.Second))))
	}
	return pt.rdLink.Reserve(pt.serialization(n))
}

// reserveWr books n bytes on the write direction for a category.
func (pt *Port) reserveWr(category string, n int) sim.Duration {
	if cl, ok := pt.qosWr[category]; ok {
		return cl.res.Reserve(pt.scaleSer(sim.Duration(float64(n) / cl.bps * float64(time.Second))))
	}
	return pt.wrLink.Reserve(pt.serialization(n))
}

// Name returns the port's diagnostic name.
func (pt *Port) Name() string { return pt.name }

// Pool returns the pool this port attaches to.
func (pt *Port) Pool() *Pool { return pt.pool }

// ReadMeter returns the device-to-host byte meter.
func (pt *Port) ReadMeter() *metrics.Meter { return pt.rdMeter }

// WriteMeter returns the host-to-device byte meter.
func (pt *Port) WriteMeter() *metrics.Meter { return pt.wrMeter }

// serialization returns the link occupancy time of n bytes.
func (pt *Port) serialization(n int) sim.Duration {
	return pt.scaleSer(sim.Duration(float64(n) / pt.pool.params.PortBandwidth * float64(time.Second)))
}

// FetchLine initiates a line read and returns the absolute time at which the
// data arrives. The data itself must be collected at (or after) that time
// with CollectLine; splitting issue from collection lets callers model
// overlapped (prefetched) fills. The category labels the traffic for
// Table 3 accounting.
func (pt *Port) FetchLine(addr int64, category string) sim.Duration {
	pt.pool.checkRange(addr, LineSize)
	pt.rdMeter.Add(category, LineSize)
	done := pt.reserveRd(category, LineSize)
	load, _ := pt.pool.classFor(addr)
	return done + pt.scaleLat(load)
}

// CollectLine snapshots the line's pool contents into buf. Callers must only
// invoke it at or after the arrival time returned by FetchLine.
func (pt *Port) CollectLine(addr int64, buf []byte) {
	if len(buf) != LineSize {
		panic("cxl: CollectLine requires a full line buffer")
	}
	pt.pool.peek(addr, buf)
}

// WriteLine pushes a full line to the pool. The write is posted: the caller
// does not stall, but the data only lands in pool memory — and becomes
// visible to other ports — at the returned time (link occupancy plus write
// propagation latency).
func (pt *Port) WriteLine(addr int64, data []byte, category string) sim.Duration {
	if len(data) != LineSize {
		panic("cxl: WriteLine requires a full line")
	}
	pt.pool.checkRange(addr, LineSize)
	pt.wrMeter.Add(category, LineSize)
	_, write := pt.pool.classFor(addr)
	done := pt.reserveWr(category, LineSize) + pt.scaleLat(write)
	// The in-flight snapshot is recycled once it lands in pool memory; its
	// ownership provably ends after poke.
	snap := pt.pool.eng.Bufs().Get(LineSize)
	copy(snap, data)
	pt.postWrite(addr, snap, done)
	return done
}

// postedWrite is the pooled in-flight half of WriteLine/DMAWrite: the
// snapshot lands in pool memory at the scheduled time. Pooling the op (and
// firing it as a sim.Timer rather than a closure) keeps posted writes — the
// single hottest allocation site in cache-heavy runs — off the heap.
type postedWrite struct {
	pt   *Port
	addr int64
	snap []byte
}

func (w *postedWrite) Fire() {
	pt := w.pt
	pt.pool.poke(w.addr, w.snap)
	pt.pool.backInvalidate(w.addr, len(w.snap))
	pt.pool.eng.Bufs().Put(w.snap)
	w.pt, w.snap = nil, nil
	pt.freeWrites = append(pt.freeWrites, w)
}

func (pt *Port) postWrite(addr int64, snap []byte, done sim.Duration) {
	var w *postedWrite
	if n := len(pt.freeWrites); n > 0 {
		w = pt.freeWrites[n-1]
		pt.freeWrites[n-1] = nil
		pt.freeWrites = pt.freeWrites[:n-1]
	} else {
		w = &postedWrite{}
	}
	w.pt, w.addr, w.snap = pt, addr, snap
	pt.pool.eng.AtTimer(done, w)
}

// DMARead models a device reading n bytes from the pool (bypassing CPU
// caches, §3.2.1). It returns the completion time and fills buf with the
// data. Transfers are line-granular on the link.
func (pt *Port) DMARead(addr int64, buf []byte, category string) sim.Duration {
	pt.pool.checkRange(addr, len(buf))
	lines := linesSpanned(addr, len(buf))
	pt.rdMeter.Add(category, int64(lines*LineSize))
	done := pt.reserveRd(category, lines*LineSize)
	pt.pool.peek(addr, buf)
	load, _ := pt.pool.classFor(addr)
	return done + pt.scaleLat(load)
}

// DMAWrite models a device writing n bytes into the pool. Completion — and
// visibility to other ports — is when the last line clears the link and
// propagates into pool memory.
func (pt *Port) DMAWrite(addr int64, data []byte, category string) sim.Duration {
	pt.pool.checkRange(addr, len(data))
	lines := linesSpanned(addr, len(data))
	pt.wrMeter.Add(category, int64(lines*LineSize))
	_, write := pt.pool.classFor(addr)
	done := pt.reserveWr(category, lines*LineSize) + pt.scaleLat(write)
	snap := pt.pool.eng.Bufs().Get(len(data))
	copy(snap, data)
	pt.postWrite(addr, snap, done)
	return done
}

// linesSpanned counts the cache lines touched by [addr, addr+n).
func linesSpanned(addr int64, n int) int {
	if n == 0 {
		return 0
	}
	first := addr / LineSize
	last := (addr + int64(n) - 1) / LineSize
	return int(last - first + 1)
}

// LineAddr returns the base address of the line containing addr.
func LineAddr(addr int64) int64 { return addr &^ (LineSize - 1) }
