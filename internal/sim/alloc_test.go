package sim

import (
	"testing"
	"time"
)

// TestScheduleDispatchAllocFree guards the event free list: once the list is
// warm, a schedule → dispatch round trip must not touch the heap at all.
// This is the engine's hottest path (every Sleep, timer, and queue wakeup
// goes through it), so even one object per event shows up directly in
// experiment wall time.
func TestScheduleDispatchAllocFree(t *testing.T) {
	eng := New()
	n := 0
	cb := func() { n++ }
	// Warm up: grow the timeline heap and populate the free list.
	for i := 1; i <= 64; i++ {
		eng.After(Duration(i)*time.Microsecond, cb)
	}
	eng.RunUntil(eng.Now() + time.Millisecond)

	allocs := testing.AllocsPerRun(200, func() {
		eng.After(time.Microsecond, cb)
		eng.RunUntil(eng.Now() + 2*time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("schedule/dispatch allocated %.2f objects per event, want 0", allocs)
	}
	if n == 0 {
		t.Fatal("callbacks never ran")
	}
}

// TestSameTimestampBatchAllocFree covers the now-queue: many events landing
// on one timestamp (the common queue-wakeup pattern) must also stay off the
// heap once warm.
func TestSameTimestampBatchAllocFree(t *testing.T) {
	eng := New()
	n := 0
	cb := func() { n++ }
	for i := 0; i < 128; i++ {
		eng.After(time.Microsecond, cb)
	}
	eng.RunUntil(eng.Now() + time.Millisecond)

	allocs := testing.AllocsPerRun(100, func() {
		for i := 0; i < 128; i++ {
			eng.After(time.Microsecond, cb)
		}
		eng.RunUntil(eng.Now() + 2*time.Microsecond)
	})
	if allocs != 0 {
		t.Fatalf("same-timestamp batch allocated %.2f objects per batch, want 0", allocs)
	}
}
