// Partitioned execution: conservative-lookahead parallel discrete-event
// simulation (PDES) inside one run.
//
// A Group splits a simulation into N partitions — each an ordinary Engine
// with its own clock, heap, and token-passing loop — and advances them in
// conservative time windows on separate goroutines. The window width is
// derived from the minimum latency cross-partition interactions can have:
// if every event one partition can send another arrives at least L in the
// future, the destination can safely execute a window of L without ever
// receiving an event in its committed past. Those minima are declared up
// front:
//
//   - CrossLink{MinLatency}: a registered cross-partition event channel
//     (core.LinkSet, cxl, and netsw declare one when a channel spans
//     partitions). Sends are timestamp-fenced (at >= sender now + min) and
//     land in the destination's bounded inbox; a barrier between windows
//     merges inboxes in (timestamp, source partition, source sequence)
//     order, so delivery — and with it every simulation result — is
//     byte-identical regardless of GOMAXPROCS or worker interleaving.
//
//   - Mobile processes: a process registered with GoMobile may Hop between
//     partitions, modeling a control-plane RPC with the group's mobile
//     latency. While any mobile process could act (it is runnable or
//     parked on a signal), windows shrink to the mobile latency; while all
//     mobile processes are parked on pure timers, windows extend to their
//     next wake + latency; with none left, windows open to the deadline.
//
// Window ends are per partition, not global: the declarations form a
// lookahead matrix L[src][dst], and each barrier solves the standard
// conservative-PDES fixpoint over it. EOT(j) is the earliest virtual time
// partition j could still execute anything — its own horizon if it has
// pending events, else the earliest arrival that could wake it (which is
// itself a sum of some other partition's EOT and an edge latency, so the
// bound is transitive through relays). EIT(i), the earliest time anything
// can reach i, is the minimum of EOT(src)+L[src][i] over incoming edges
// plus the mobile-process bound; partition i's window then runs to
// EIT(i)−1. Partitions coupled only through slow paths — or not coupled
// at all — advance in wide windows while tight CXL neighbors stay in
// lockstep, and each partition commits its own clock at its own pace (the
// group time is the minimum commit). When a partition has received no
// cross traffic for several consecutive barriers, the fixpoint swaps its
// sources' conservative "could act at their committed time" vector for
// the exact event-horizon vector, extending the window toward the next
// event that actually exists; the first delivery drops it back.
//
// Windows execute on persistent per-partition workers: one long-lived
// goroutine per partition parked on a wake channel, with an atomic
// counter + sense-reversing completion barrier — no per-window goroutine
// spawns and no WaitGroup churn.
//
// Zero-lookahead couplings (shared-core hosts, intra-pod links) are not
// expressible as CrossLinks — the affected processes must share one
// partition. A degenerate one-partition group delegates RunUntil straight
// to the engine, reducing byte-for-byte to the serial loop.
package sim

import (
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
)

// simCheck enables the scheduling-in-the-past invariant guard
// (OASIS_SIMCHECK=1): any event scheduled before its partition's committed
// window start indicates a lookahead bug and panics immediately instead of
// silently clamping. Tests may toggle it directly.
var simCheck = os.Getenv("OASIS_SIMCHECK") == "1"

// minCrossLatency is the physical floor for declared cross-partition
// latencies. Anything smaller makes windows degenerate (and 0 would
// livelock the barrier loop); real cross-partition media — CXL port hops,
// NIC wire latency, cross-pod RPCs — are all far above it.
const minCrossLatency Duration = 100

// DefaultInboxBound caps each partition's cross-event inbox per window.
// Overflow panics: a partition flooding another faster than the barrier
// drains is a model bug (unbounded hidden queueing), not backpressure.
const DefaultInboxBound = 1 << 14

// quietWindows is the adaptive-window hysteresis: after this many
// consecutive barriers with zero deliveries to a partition, its window
// bound switches from the conservative committed-time vector to the exact
// event-horizon vector. Any delivery resets the counter, so a partition
// under cross traffic always runs conservative windows.
const quietWindows = 4

// extEvent is a cross-partition event awaiting barrier delivery: a
// callback or timer sent through a CrossLink, or a mobile process transfer
// (proc != nil). (at, srcPid, srcSeq) is its canonical merge key.
type extEvent struct {
	at     Duration
	srcPid int
	srcSeq uint64
	fn     func()
	tm     Timer
	proc   *Proc
	srcEng *Engine // transfer bookkeeping (nprocs accounting, unwinding)
	dst    *Engine // transfer destination
}

// inbox is one partition's bounded cross-event queue. Senders append under
// the lock while the destination window runs; only the barrier drains it.
type inbox struct {
	mu  sync.Mutex
	evs []extEvent
}

// windowOrder is one window assignment handed to a partition's persistent
// worker: run to wend, then report completion on the barrier channel the
// sense bit selects.
type windowOrder struct {
	wend  Duration
	sense uint32
}

// Group coordinates partitioned execution. Build one with NewGroup, add
// partitions, register cross-partition couplings (Link, SetMobileLatency),
// then drive the whole simulation with RunUntil. Methods on Group must be
// called from the coordinating goroutine (the one calling RunUntil) unless
// documented otherwise.
type Group struct {
	parts     []*Engine
	now       Duration     // committed group time: min over partition commits
	la        [][]Duration // la[src][dst]: min declared latency, MaxTime if no edge
	mobileLat Duration     // hop latency for mobile processes; 0 = none set
	inboxCap  int

	mu        sync.Mutex // guards transfers + mobile + la during windows
	transfers []extEvent
	mobile    map[*Proc]bool

	// Persistent window workers (see RunUntil): an atomic countdown of
	// in-flight partitions plus a pair of completion channels indexed by a
	// sense bit that flips every window.
	pending atomic.Int32
	barrier [2]chan struct{}
	sense   uint32

	// Barrier scratch, reused across windows (see windows / deliver).
	wend       []Duration
	busy       []bool
	quiet      []int // consecutive barriers with zero deliveries, per partition
	ndeliv     []int
	actC, actH []Duration
	eotC, eitC []Duration
	eotH, eitH []Duration
	extFree    [][]extEvent // recycled extEvent slices (deliver swaps them in)

	running bool
}

// NewGroup returns an empty group with no partitions.
func NewGroup() *Group {
	return &Group{inboxCap: DefaultInboxBound, mobile: make(map[*Proc]bool)}
}

// AddPartition creates a new partition engine. Partitions added after the
// group has advanced start at the committed group time, matching the
// clamp-to-now semantics a late-built component sees on a shared engine.
func (g *Group) AddPartition() *Engine {
	e := New()
	e.group = g
	e.pid = len(g.parts)
	e.now = g.now
	g.parts = append(g.parts, e)
	for i := range g.la {
		g.la[i] = append(g.la[i], MaxTime)
	}
	row := make([]Duration, len(g.parts))
	for i := range row {
		row[i] = MaxTime
	}
	g.la = append(g.la, row)
	return e
}

// Partition returns partition i, or nil when out of range.
func (g *Group) Partition(i int) *Engine {
	if i < 0 || i >= len(g.parts) {
		return nil
	}
	return g.parts[i]
}

// Partitions returns the number of partitions.
func (g *Group) Partitions() int { return len(g.parts) }

// Now returns the committed group time — the minimum partition commit:
// every partition has executed all events up to and including it.
func (g *Group) Now() Duration { return g.now }

// Procs returns the number of live processes across all partitions.
func (g *Group) Procs() int {
	n := 0
	for _, e := range g.parts {
		n += e.nprocs
	}
	return n
}

// SetInboxBound overrides the per-partition cross-event inbox cap.
func (g *Group) SetInboxBound(n int) {
	if n < 1 {
		n = 1
	}
	g.inboxCap = n
}

// SetMobileLatency declares the virtual latency of a mobile-process Hop —
// the control-plane RPC cost of moving execution between partitions. It is
// a lookahead source, so it must be at least the 100 ns physical floor.
func (g *Group) SetMobileLatency(d Duration) {
	if d < minCrossLatency {
		panic(fmt.Sprintf("sim: mobile latency %v below the %v lookahead floor", d, minCrossLatency))
	}
	g.mobileLat = d
}

// MobileLatency returns the declared hop latency (0 if unset).
func (g *Group) MobileLatency() Duration { return g.mobileLat }

// CrossLink is a declared cross-partition event channel. Every event sent
// through it must carry a timestamp at least MinLatency after the sender's
// clock — the conservative lookahead that lets the destination run a
// window of MinLatency in parallel. core.LinkSet, cxl, and netsw declare
// one whenever a channel they wire spans partitions.
type CrossLink struct {
	g        *Group
	src, dst *Engine
	min      Duration
}

// Link registers a cross-partition channel from src to dst with the given
// minimum event latency and returns it. The declaration tightens exactly
// one entry of the pairwise lookahead matrix — only dst's window shrinks,
// and only relative to src's progress; unrelated partition pairs keep
// their own wider bounds. src == dst is allowed (the link degenerates to
// local scheduling), letting callers wire uniformly and only pay for
// spans that exist.
func (g *Group) Link(src, dst *Engine, min Duration) *CrossLink {
	if src.group != g || dst.group != g {
		panic("sim: CrossLink endpoints must be partitions of this group")
	}
	if min < minCrossLatency {
		panic(fmt.Sprintf("sim: cross-partition latency %v below the %v lookahead floor (zero-lookahead edges must share a partition)", min, minCrossLatency))
	}
	if src != dst {
		g.mu.Lock()
		if min < g.la[src.pid][dst.pid] {
			g.la[src.pid][dst.pid] = min
		}
		g.mu.Unlock()
	}
	return &CrossLink{g: g, src: src, dst: dst, min: min}
}

// MinLatency returns the link's declared minimum event latency.
func (x *CrossLink) MinLatency() Duration { return x.min }

// Src and Dst return the link's endpoints.
func (x *CrossLink) Src() *Engine { return x.src }
func (x *CrossLink) Dst() *Engine { return x.dst }

// Send schedules fn on the destination partition at absolute time at. It
// must be called from the source partition's execution context (a process
// or callback running there). The timestamp fence — at >= sender now +
// MinLatency — is what makes the declared lookahead sound, so violating
// it panics rather than silently reordering the simulation.
func (x *CrossLink) Send(at Duration, fn func()) { x.send(at, fn, nil) }

// SendTimer is the closure-free form of Send.
func (x *CrossLink) SendTimer(at Duration, tm Timer) { x.send(at, nil, tm) }

func (x *CrossLink) send(at Duration, fn func(), tm Timer) {
	if at < x.src.now+x.min {
		panic(fmt.Sprintf("sim: cross-partition send at %v violates timestamp fence (sender now %v + min latency %v)",
			at, x.src.now, x.min))
	}
	if x.src == x.dst {
		x.src.schedule(at, fn, tm, nil)
		return
	}
	x.src.seq++
	ev := extEvent{at: at, srcPid: x.src.pid, srcSeq: x.src.seq, fn: fn, tm: tm}
	ib := &x.dst.inbox
	ib.mu.Lock()
	if len(ib.evs) >= x.g.inboxCap {
		ib.mu.Unlock()
		panic(fmt.Sprintf("sim: partition %d inbox overflow (bound %d): partition %d is flooding faster than the barrier drains",
			x.dst.pid, x.g.inboxCap, x.src.pid))
	}
	ib.evs = append(ib.evs, ev)
	ib.mu.Unlock()
}

// GoMobile spawns fn as a mobile process homed on partition e: it may Hop
// between partitions mid-run. While it is registered the group's windows
// stay within the mobile latency of its next possible action; the
// registration is dropped automatically when fn returns. Register mobile
// processes before RunUntil (or from another mobile process): a mobile
// spawned mid-window by a non-mobile context is invisible to the window
// bound already in force and its first hop may trip the delivery fence.
func (g *Group) GoMobile(e *Engine, name string, fn func(p *Proc)) *Proc {
	if g.mobileLat == 0 {
		panic("sim: GoMobile requires SetMobileLatency")
	}
	var p *Proc
	p = e.Go(name, func(q *Proc) {
		defer g.demobilize(q)
		fn(q)
	})
	g.mu.Lock()
	g.mobile[p] = true
	g.mu.Unlock()
	return p
}

// demobilize drops a mobile registration; safe from partition goroutines.
func (g *Group) demobilize(p *Proc) {
	g.mu.Lock()
	delete(g.mobile, p)
	g.mu.Unlock()
}

// Hop moves the calling mobile process to partition dst, arriving exactly
// MobileLatency later — the modeled cost of a cross-partition control RPC.
// A same-partition hop degenerates to a sleep of the same length, so a
// process's virtual timeline is identical however partitions are drawn
// (and identical to a serial run that sleeps at the same points). Must be
// called by the process itself.
func (g *Group) Hop(p *Proc, dst *Engine) {
	if g.mobileLat == 0 {
		panic("sim: Hop requires SetMobileLatency")
	}
	src := p.eng
	if src == dst {
		p.Sleep(g.mobileLat)
		return
	}
	if dst.group != g || src.group != g {
		panic("sim: Hop destination must be a partition of this group")
	}
	at := src.now + g.mobileLat
	src.seq++
	g.mu.Lock()
	if !g.mobile[p] {
		g.mu.Unlock()
		panic(fmt.Sprintf("sim: process %q hopped without GoMobile registration", p.name))
	}
	g.transfers = append(g.transfers, extEvent{at: at, srcPid: src.pid, srcSeq: src.seq, proc: p, srcEng: src, dst: dst})
	g.mu.Unlock()
	p.parkDetached()
}

// parkDetached parks a process that is leaving its engine: no wake event
// exists locally — the barrier re-homes it and schedules its arrival on
// the destination. The calling goroutine keeps driving the old engine's
// loop exactly as an ordinary park would.
func (p *Proc) parkDetached() {
	e := p.eng
	if e.dead {
		panic(killed{})
	}
	switch e.drive(p) {
	case driveOwnerWakeup:
		panic("sim: detached process has a pending local wakeup")
	case driveDone:
		if e.dead {
			panic(killed{})
		}
		e.host <- struct{}{} // window over while we're in flight: wake RunUntil
	case driveHandoff:
		// another process drives the old engine; wait for the barrier
	}
	<-p.run
	if p.eng.dead { // p.eng is the NEW home once the barrier re-homed us
		panic(killed{})
	}
}

// getExt pops a recycled extEvent slice (zero length, retained capacity),
// or returns nil and lets append allocate. Coordinator-only.
func (g *Group) getExt() []extEvent {
	if n := len(g.extFree); n > 0 {
		s := g.extFree[n-1]
		g.extFree[n-1] = nil
		g.extFree = g.extFree[:n-1]
		return s
	}
	return nil
}

// putExt recycles a drained extEvent slice, dropping the element payloads
// so pooled slices never pin callbacks, frames, or processes.
func (g *Group) putExt(evs []extEvent) {
	if cap(evs) == 0 {
		return
	}
	for i := range evs {
		evs[i] = extEvent{}
	}
	g.extFree = append(g.extFree, evs[:0])
}

// deliver merges all pending cross-partition traffic into the destination
// heaps: first process transfers, then each partition's inbox, each sorted
// by the canonical (timestamp, source partition, source sequence) key so
// local sequence numbers — and with them all tie-breaks — are assigned
// identically on every run. It also counts deliveries per destination for
// the adaptive-window hysteresis. The drained slices are recycled; senders
// get a pooled replacement. Runs only between windows, on the coordinator.
func (g *Group) deliver() {
	if len(g.ndeliv) != len(g.parts) {
		g.growScratch()
	}
	for i := range g.ndeliv {
		g.ndeliv[i] = 0
	}
	repl := g.getExt()
	g.mu.Lock()
	tr := g.transfers
	g.transfers = repl
	g.mu.Unlock()
	sortExt(tr)
	for _, t := range tr {
		g.fence(t.at, t.srcPid, t.dst)
		t.srcEng.nprocs--
		t.dst.nprocs++
		t.proc.eng = t.dst
		t.dst.schedule(t.at, nil, nil, t.proc)
		g.ndeliv[t.dst.pid]++
	}
	g.putExt(tr)
	for _, e := range g.parts {
		repl := g.getExt()
		e.inbox.mu.Lock()
		evs := e.inbox.evs
		e.inbox.evs = repl
		e.inbox.mu.Unlock()
		sortExt(evs)
		for _, ev := range evs {
			g.fence(ev.at, ev.srcPid, e)
			e.schedule(ev.at, ev.fn, ev.tm, nil)
		}
		g.ndeliv[e.pid] += len(evs)
		g.putExt(evs)
	}
	for i := range g.parts {
		if g.ndeliv[i] == 0 {
			g.quiet[i]++
		} else {
			g.quiet[i] = 0
		}
	}
}

// fence asserts an arriving cross event lands strictly after the
// destination's committed time — the always-on half of the lookahead
// invariant, now per destination: a partition that committed far ahead
// must never have been reachable by this event.
func (g *Group) fence(at Duration, srcPid int, dst *Engine) {
	if at <= dst.now && dst.now > 0 {
		panic(fmt.Sprintf("sim: cross-partition event from partition %d arrives at %v, inside partition %d's committed window (commit %v)",
			srcPid, at, dst.pid, dst.now))
	}
}

// drained reports whether every partition's queues are empty (transfers and
// inboxes were merged by the deliver that just ran). Signal-parked processes
// with no event that could ever wake them do not keep the group alive —
// matching a serial Run returning on an exhausted heap.
func (g *Group) drained() bool {
	for _, e := range g.parts {
		if len(e.events) > 0 || e.nowQHead < len(e.nowQ) {
			return false
		}
	}
	return true
}

func extLess(a, b *extEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.srcPid != b.srcPid {
		return a.srcPid < b.srcPid
	}
	return a.srcSeq < b.srcSeq
}

// sortExt orders by the canonical merge key. Typical barrier batches are a
// handful of events, where insertion sort beats sort.Slice and — unlike it —
// allocates nothing (the closure and reflect header escape); large batches
// fall back.
func sortExt(evs []extEvent) {
	if len(evs) <= 32 {
		for i := 1; i < len(evs); i++ {
			ev := evs[i]
			j := i - 1
			for j >= 0 && extLess(&ev, &evs[j]) {
				evs[j+1] = evs[j]
				j--
			}
			evs[j+1] = ev
		}
		return
	}
	sort.Slice(evs, func(i, j int) bool { return extLess(&evs[i], &evs[j]) })
}

// growScratch sizes the per-barrier scratch vectors to the partition count,
// preserving the adaptive counters for existing partitions.
func (g *Group) growScratch() {
	n := len(g.parts)
	grow := func(s []Duration) []Duration {
		if cap(s) >= n {
			return s[:n]
		}
		return make([]Duration, n)
	}
	g.wend = grow(g.wend)
	g.actC = grow(g.actC)
	g.actH = grow(g.actH)
	g.eotC = grow(g.eotC)
	g.eitC = grow(g.eitC)
	g.eotH = grow(g.eotH)
	g.eitH = grow(g.eitH)
	for len(g.quiet) < n {
		g.quiet = append(g.quiet, 0)
	}
	g.quiet = g.quiet[:n]
	if cap(g.ndeliv) >= n {
		g.ndeliv = g.ndeliv[:n]
	} else {
		g.ndeliv = make([]int, n)
	}
	if cap(g.busy) >= n {
		g.busy = g.busy[:n]
	} else {
		g.busy = make([]bool, n)
	}
}

// eitFixpoint solves the conservative EOT/EIT system over the lookahead
// matrix for one "earliest action" vector act:
//
//	eot[j] = min(act[j], max(eit[j], commit[j]+1))
//	eit[j] = min over incoming edges (eot[src] + L[src][j]), and the
//	         mobile-process bound mob (a mobile may hop anywhere)
//
// starting from the top (eit = MaxTime) and iterating to the greatest
// fixpoint: every finite bound traces back to a real pending event through
// edges of at least the 100 ns floor, so relayed influence — a drained
// partition woken next barrier and then emitting — is bounded transitively.
// Values only decrease and each pass propagates bounds one more hop, so it
// converges within len(parts) passes.
func (g *Group) eitFixpoint(act, eot, eit []Duration, mob Duration) {
	n := len(g.parts)
	for j := 0; j < n; j++ {
		eot[j] = act[j]
		eit[j] = MaxTime
	}
	for changed := true; changed; {
		changed = false
		for dst := 0; dst < n; dst++ {
			m := mob
			for src := 0; src < n; src++ {
				l := g.la[src][dst]
				if l == MaxTime || eot[src] == MaxTime {
					continue
				}
				if a := eot[src] + l; a < m {
					m = a
				}
			}
			if m < eit[dst] {
				eit[dst] = m
				changed = true
			}
			o := eit[dst]
			if lo := g.parts[dst].now + 1; o != MaxTime && o < lo {
				o = lo
			}
			if act[dst] < o {
				o = act[dst]
			}
			if o < eot[dst] {
				eot[dst] = o
				changed = true
			}
		}
	}
}

// windows computes each partition's next conservative window end into
// g.wend. Two action vectors feed the fixpoint: the conservative one (a
// partition with pending events could act from its committed time) and the
// horizon one (it provably cannot act before its earliest pending event).
// A destination that has seen cross traffic recently is bounded by the
// conservative solution; after quietWindows delivery-free barriers it
// switches to the horizon solution, extending its window toward the next
// event that actually exists. Both solutions derive purely from virtual
// state, so window shapes — and with them all merge orders — are identical
// at any GOMAXPROCS. Window ends are inclusive (RunUntil executes events at
// the boundary), so bounds subtract one tick to keep arrivals strictly
// outside the window.
func (g *Group) windows(deadline Duration) {
	if len(g.wend) != len(g.parts) {
		g.growScratch()
	}
	for i, e := range g.parts {
		pending := len(e.events) > 0 || e.nowQHead < len(e.nowQ)
		if !pending {
			g.actC[i], g.actH[i] = MaxTime, MaxTime
			continue
		}
		g.actC[i] = e.now
		h := e.now
		if e.nowQHead >= len(e.nowQ) && len(e.events) > 0 {
			h = e.events[0].at
		}
		g.actH[i] = h
	}
	mob := MaxTime
	g.mu.Lock()
	for p := range g.mobile {
		earliest := p.eng.now
		if p.blockedIdx == -1 && p.hasWake {
			// Parked on a pure timer: provably inert until wakeAt. A
			// signal-parked or runnable mobile process may act any time, so
			// it pins the bound at its partition's committed time.
			earliest = p.wakeAt
		}
		if earliest >= MaxTime-g.mobileLat {
			continue
		}
		if b := earliest + g.mobileLat; b < mob {
			mob = b
		}
	}
	g.mu.Unlock()
	g.eitFixpoint(g.actC, g.eotC, g.eitC, mob)
	g.eitFixpoint(g.actH, g.eotH, g.eitH, mob)
	for i, e := range g.parts {
		eit := g.eitC[i]
		if g.quiet[i] >= quietWindows {
			eit = g.eitH[i]
		}
		w := deadline
		if eit != MaxTime && eit-1 < w {
			w = eit - 1
		}
		if w < e.now {
			w = e.now // held: this partition legally sits this round out
		}
		g.wend[i] = w
	}
}

// ensureWorkers lazily starts the persistent window workers: one goroutine
// per partition, parked on its wake channel until the coordinator assigns
// it a window. Workers live until Shutdown closes the channels.
func (g *Group) ensureWorkers() {
	if g.barrier[0] == nil {
		g.barrier[0] = make(chan struct{}, 1)
		g.barrier[1] = make(chan struct{}, 1)
	}
	for _, e := range g.parts {
		if e.wake == nil {
			e.wake = make(chan windowOrder, 1)
			go g.worker(e, e.wake)
		}
	}
}

// worker is one partition's persistent window loop: run each assigned
// window with the ordinary serial engine loop, then count down the barrier;
// the last partition to finish releases the coordinator on the channel the
// window's sense bit selects. The wake channel is passed by value so only
// the coordinator ever touches the Engine field (Shutdown nils it).
func (g *Group) worker(e *Engine, wake <-chan windowOrder) {
	for w := range wake {
		e.RunUntil(w.wend)
		if g.pending.Add(-1) == 0 {
			g.barrier[w.sense] <- struct{}{}
		}
	}
}

// RunUntil advances every partition to the deadline through the barrier
// loop: deliver pending cross events, solve the pairwise windows, dispatch
// each partition with work to its persistent worker (partitions whose
// window is empty just commit their clock; partitions already at their
// bound sit the round out), wait on the completion barrier, repeat. A
// one-partition group delegates directly to the engine — byte-for-byte the
// serial loop.
func (g *Group) RunUntil(deadline Duration) Duration {
	if g.running {
		panic("sim: Group.RunUntil called re-entrantly")
	}
	if len(g.parts) == 0 {
		panic("sim: group has no partitions")
	}
	g.running = true
	defer func() { g.running = false }()
	if len(g.parts) == 1 {
		g.parts[0].RunUntil(deadline)
		g.now = g.parts[0].now
		return g.now
	}
	g.ensureWorkers()
	for {
		g.deliver()
		g.now = g.parts[0].now
		for _, e := range g.parts[1:] {
			if e.now < g.now {
				g.now = e.now
			}
		}
		if g.now >= deadline {
			return g.now
		}
		if deadline == MaxTime && g.drained() {
			// Open-ended run and every queue is empty: the simulation is
			// over, exactly as a serial Run returns on an exhausted heap.
			// Commit to the latest partition time — the last event anywhere.
			for _, e := range g.parts {
				if e.now > g.now {
					g.now = e.now
				}
			}
			return g.now
		}
		g.windows(deadline)
		nbusy := 0
		progress := false
		for i, e := range g.parts {
			g.busy[i] = false
			wend := g.wend[i]
			if wend <= e.now {
				continue // held
			}
			if e.nowQHead >= len(e.nowQ) && (len(e.events) == 0 || e.events[0].at > wend) {
				// Idle window: nothing to execute, just commit the clock.
				if wend != MaxTime {
					e.now = wend
					progress = true
				}
				continue
			}
			g.busy[i] = true
			nbusy++
			progress = true
			e.windowStart = e.now
		}
		if !progress {
			panic(fmt.Sprintf("sim: window collapsed at %v (no partition can advance; mobile latency %v)", g.now, g.mobileLat))
		}
		if nbusy == 0 {
			continue
		}
		s := g.sense
		g.pending.Store(int32(nbusy))
		for i, e := range g.parts {
			if g.busy[i] {
				e.wake <- windowOrder{wend: g.wend[i], sense: s}
			}
		}
		<-g.barrier[s]
		g.sense ^= 1
	}
}

// Run executes until every partition drains or the clock never advances —
// partitioned simulations are usually driven with an explicit deadline, so
// Run is a convenience for tests.
func (g *Group) Run() Duration { return g.RunUntil(MaxTime) }

// Shutdown terminates the whole group: the persistent workers exit, every
// partition's processes unwind (including mobile processes caught mid-hop)
// and pending events drop. Must not be called while RunUntil is executing
// a window.
func (g *Group) Shutdown() {
	if g.running {
		panic("sim: Group.Shutdown called during a window")
	}
	for _, e := range g.parts {
		if e.wake != nil {
			close(e.wake)
			e.wake = nil
		}
	}
	g.mu.Lock()
	tr := g.transfers
	g.transfers = nil
	g.mu.Unlock()
	for _, e := range g.parts {
		e.Shutdown()
	}
	// In-flight mobile processes belong to no heap and no blocked list;
	// unwind them exactly as Shutdown's victim loop would.
	for _, t := range tr {
		e := t.srcEng
		if t.proc.done {
			continue
		}
		e.unwinding = true
		t.proc.run <- struct{}{}
		<-e.ack
		e.unwinding = false
	}
}
