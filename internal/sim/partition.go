// Partitioned execution: conservative-lookahead parallel discrete-event
// simulation (PDES) inside one run.
//
// A Group splits a simulation into N partitions — each an ordinary Engine
// with its own clock, heap, and token-passing loop — and advances them in
// conservative time windows on separate goroutines. The window width is
// derived from the minimum latency any cross-partition interaction can
// have: if every event one partition can send another arrives at least L
// in the future, then all partitions can safely execute a window of L in
// parallel without ever receiving an event in their committed past. That
// minimum is declared up front:
//
//   - CrossLink{MinLatency}: a registered cross-partition event channel
//     (core.LinkSet, cxl, and netsw declare one when a channel spans
//     partitions). Sends are timestamp-fenced (at >= sender now + min) and
//     land in the destination's bounded inbox; a barrier between windows
//     merges inboxes in (timestamp, source partition, source sequence)
//     order, so delivery — and with it every simulation result — is
//     byte-identical regardless of GOMAXPROCS or worker interleaving.
//
//   - Mobile processes: a process registered with GoMobile may Hop between
//     partitions, modeling a control-plane RPC with the group's mobile
//     latency. While any mobile process could act (it is runnable or
//     parked on a signal), windows shrink to the mobile latency; while all
//     mobile processes are parked on pure timers, windows extend to their
//     next wake + latency; with none left, windows open to the deadline.
//
// Zero-lookahead couplings (shared-core hosts, intra-pod links) are not
// expressible as CrossLinks — the affected processes must share one
// partition. A degenerate one-partition group delegates RunUntil straight
// to the engine, reducing byte-for-byte to the serial loop.
package sim

import (
	"fmt"
	"os"
	"sort"
	"sync"
)

// simCheck enables the scheduling-in-the-past invariant guard
// (OASIS_SIMCHECK=1): any event scheduled before its partition's committed
// window start indicates a lookahead bug and panics immediately instead of
// silently clamping. Tests may toggle it directly.
var simCheck = os.Getenv("OASIS_SIMCHECK") == "1"

// minCrossLatency is the physical floor for declared cross-partition
// latencies. Anything smaller makes windows degenerate (and 0 would
// livelock the barrier loop); real cross-partition media — CXL port hops,
// NIC wire latency, cross-pod RPCs — are all far above it.
const minCrossLatency Duration = 100

// DefaultInboxBound caps each partition's cross-event inbox per window.
// Overflow panics: a partition flooding another faster than the barrier
// drains is a model bug (unbounded hidden queueing), not backpressure.
const DefaultInboxBound = 1 << 14

// extEvent is a cross-partition event awaiting barrier delivery: a
// callback or timer sent through a CrossLink, or a mobile process transfer
// (proc != nil). (at, srcPid, srcSeq) is its canonical merge key.
type extEvent struct {
	at     Duration
	srcPid int
	srcSeq uint64
	fn     func()
	tm     Timer
	proc   *Proc
	srcEng *Engine // transfer bookkeeping (nprocs accounting, unwinding)
	dst    *Engine // transfer destination
}

// inbox is one partition's bounded cross-event queue. Senders append under
// the lock while the destination window runs; only the barrier drains it.
type inbox struct {
	mu  sync.Mutex
	evs []extEvent
}

// Group coordinates partitioned execution. Build one with NewGroup, add
// partitions, register cross-partition couplings (Link, SetMobileLatency),
// then drive the whole simulation with RunUntil. Methods on Group must be
// called from the coordinating goroutine (the one calling RunUntil) unless
// documented otherwise.
type Group struct {
	parts     []*Engine
	now       Duration // committed global time (last barrier)
	lookahead Duration // min over registered CrossLinks; MaxTime if none
	mobileLat Duration // hop latency for mobile processes; 0 = none set
	inboxCap  int

	mu        sync.Mutex // guards transfers + mobile during windows
	transfers []extEvent
	mobile    map[*Proc]bool

	running bool
}

// NewGroup returns an empty group with no partitions.
func NewGroup() *Group {
	return &Group{lookahead: MaxTime, inboxCap: DefaultInboxBound, mobile: make(map[*Proc]bool)}
}

// AddPartition creates a new partition engine. Partitions added after the
// group has advanced start at the committed global time, matching the
// clamp-to-now semantics a late-built component sees on a shared engine.
func (g *Group) AddPartition() *Engine {
	e := New()
	e.group = g
	e.pid = len(g.parts)
	e.now = g.now
	g.parts = append(g.parts, e)
	return e
}

// Partition returns partition i, or nil when out of range.
func (g *Group) Partition(i int) *Engine {
	if i < 0 || i >= len(g.parts) {
		return nil
	}
	return g.parts[i]
}

// Partitions returns the number of partitions.
func (g *Group) Partitions() int { return len(g.parts) }

// Now returns the committed global time: every partition has executed all
// events up to and including it.
func (g *Group) Now() Duration { return g.now }

// Procs returns the number of live processes across all partitions.
func (g *Group) Procs() int {
	n := 0
	for _, e := range g.parts {
		n += e.nprocs
	}
	return n
}

// SetInboxBound overrides the per-partition cross-event inbox cap.
func (g *Group) SetInboxBound(n int) {
	if n < 1 {
		n = 1
	}
	g.inboxCap = n
}

// SetMobileLatency declares the virtual latency of a mobile-process Hop —
// the control-plane RPC cost of moving execution between partitions. It is
// a lookahead source, so it must be at least the 100 ns physical floor.
func (g *Group) SetMobileLatency(d Duration) {
	if d < minCrossLatency {
		panic(fmt.Sprintf("sim: mobile latency %v below the %v lookahead floor", d, minCrossLatency))
	}
	g.mobileLat = d
}

// MobileLatency returns the declared hop latency (0 if unset).
func (g *Group) MobileLatency() Duration { return g.mobileLat }

// CrossLink is a declared cross-partition event channel. Every event sent
// through it must carry a timestamp at least MinLatency after the sender's
// clock — the conservative lookahead that lets partitions run a window of
// MinLatency in parallel. core.LinkSet, cxl, and netsw declare one
// whenever a channel they wire spans partitions.
type CrossLink struct {
	g        *Group
	src, dst *Engine
	min      Duration
}

// Link registers a cross-partition channel from src to dst with the given
// minimum event latency and returns it. The group's window shrinks to the
// smallest registered latency. src == dst is allowed (the link degenerates
// to local scheduling), letting callers wire uniformly and only pay for
// spans that exist.
func (g *Group) Link(src, dst *Engine, min Duration) *CrossLink {
	if src.group != g || dst.group != g {
		panic("sim: CrossLink endpoints must be partitions of this group")
	}
	if min < minCrossLatency {
		panic(fmt.Sprintf("sim: cross-partition latency %v below the %v lookahead floor (zero-lookahead edges must share a partition)", min, minCrossLatency))
	}
	if src != dst && min < g.lookahead {
		g.lookahead = min
	}
	return &CrossLink{g: g, src: src, dst: dst, min: min}
}

// MinLatency returns the link's declared minimum event latency.
func (x *CrossLink) MinLatency() Duration { return x.min }

// Src and Dst return the link's endpoints.
func (x *CrossLink) Src() *Engine { return x.src }
func (x *CrossLink) Dst() *Engine { return x.dst }

// Send schedules fn on the destination partition at absolute time at. It
// must be called from the source partition's execution context (a process
// or callback running there). The timestamp fence — at >= sender now +
// MinLatency — is what makes the declared lookahead sound, so violating
// it panics rather than silently reordering the simulation.
func (x *CrossLink) Send(at Duration, fn func()) { x.send(at, fn, nil) }

// SendTimer is the closure-free form of Send.
func (x *CrossLink) SendTimer(at Duration, tm Timer) { x.send(at, nil, tm) }

func (x *CrossLink) send(at Duration, fn func(), tm Timer) {
	if at < x.src.now+x.min {
		panic(fmt.Sprintf("sim: cross-partition send at %v violates timestamp fence (sender now %v + min latency %v)",
			at, x.src.now, x.min))
	}
	if x.src == x.dst {
		x.src.schedule(at, fn, tm, nil)
		return
	}
	x.src.seq++
	ev := extEvent{at: at, srcPid: x.src.pid, srcSeq: x.src.seq, fn: fn, tm: tm}
	ib := &x.dst.inbox
	ib.mu.Lock()
	if len(ib.evs) >= x.g.inboxCap {
		ib.mu.Unlock()
		panic(fmt.Sprintf("sim: partition %d inbox overflow (bound %d): partition %d is flooding faster than the barrier drains",
			x.dst.pid, x.g.inboxCap, x.src.pid))
	}
	ib.evs = append(ib.evs, ev)
	ib.mu.Unlock()
}

// GoMobile spawns fn as a mobile process homed on partition e: it may Hop
// between partitions mid-run. While it is registered the group's windows
// stay within the mobile latency of its next possible action; the
// registration is dropped automatically when fn returns. Register mobile
// processes before RunUntil (or from another mobile process): a mobile
// spawned mid-window by a non-mobile context is invisible to the window
// bound already in force and its first hop may trip the delivery fence.
func (g *Group) GoMobile(e *Engine, name string, fn func(p *Proc)) *Proc {
	if g.mobileLat == 0 {
		panic("sim: GoMobile requires SetMobileLatency")
	}
	var p *Proc
	p = e.Go(name, func(q *Proc) {
		defer g.demobilize(q)
		fn(q)
	})
	g.mu.Lock()
	g.mobile[p] = true
	g.mu.Unlock()
	return p
}

// demobilize drops a mobile registration; safe from partition goroutines.
func (g *Group) demobilize(p *Proc) {
	g.mu.Lock()
	delete(g.mobile, p)
	g.mu.Unlock()
}

// Hop moves the calling mobile process to partition dst, arriving exactly
// MobileLatency later — the modeled cost of a cross-partition control RPC.
// A same-partition hop degenerates to a sleep of the same length, so a
// process's virtual timeline is identical however partitions are drawn
// (and identical to a serial run that sleeps at the same points). Must be
// called by the process itself.
func (g *Group) Hop(p *Proc, dst *Engine) {
	if g.mobileLat == 0 {
		panic("sim: Hop requires SetMobileLatency")
	}
	src := p.eng
	if src == dst {
		p.Sleep(g.mobileLat)
		return
	}
	if dst.group != g || src.group != g {
		panic("sim: Hop destination must be a partition of this group")
	}
	at := src.now + g.mobileLat
	src.seq++
	g.mu.Lock()
	if !g.mobile[p] {
		g.mu.Unlock()
		panic(fmt.Sprintf("sim: process %q hopped without GoMobile registration", p.name))
	}
	g.transfers = append(g.transfers, extEvent{at: at, srcPid: src.pid, srcSeq: src.seq, proc: p, srcEng: src, dst: dst})
	g.mu.Unlock()
	p.parkDetached()
}

// parkDetached parks a process that is leaving its engine: no wake event
// exists locally — the barrier re-homes it and schedules its arrival on
// the destination. The calling goroutine keeps driving the old engine's
// loop exactly as an ordinary park would.
func (p *Proc) parkDetached() {
	e := p.eng
	if e.dead {
		panic(killed{})
	}
	switch e.drive(p) {
	case driveOwnerWakeup:
		panic("sim: detached process has a pending local wakeup")
	case driveDone:
		if e.dead {
			panic(killed{})
		}
		e.host <- struct{}{} // window over while we're in flight: wake RunUntil
	case driveHandoff:
		// another process drives the old engine; wait for the barrier
	}
	<-p.run
	if p.eng.dead { // p.eng is the NEW home once the barrier re-homed us
		panic(killed{})
	}
}

// deliver merges all pending cross-partition traffic into the destination
// heaps: first process transfers, then each partition's inbox, each sorted
// by the canonical (timestamp, source partition, source sequence) key so
// local sequence numbers — and with them all tie-breaks — are assigned
// identically on every run. Runs only between windows, on the coordinator.
func (g *Group) deliver() {
	g.mu.Lock()
	tr := g.transfers
	g.transfers = nil
	g.mu.Unlock()
	sortExt(tr)
	for _, t := range tr {
		g.fence(t.at, t.srcPid)
		t.srcEng.nprocs--
		t.dst.nprocs++
		t.proc.eng = t.dst
		t.dst.schedule(t.at, nil, nil, t.proc)
	}
	for _, e := range g.parts {
		e.inbox.mu.Lock()
		evs := e.inbox.evs
		e.inbox.evs = nil
		e.inbox.mu.Unlock()
		sortExt(evs)
		for _, ev := range evs {
			g.fence(ev.at, ev.srcPid)
			e.schedule(ev.at, ev.fn, ev.tm, nil)
		}
	}
}

// fence asserts an arriving cross event lands strictly after the committed
// global time — the always-on half of the lookahead invariant.
func (g *Group) fence(at Duration, srcPid int) {
	if at <= g.now && g.now > 0 {
		panic(fmt.Sprintf("sim: cross-partition event from partition %d arrives at %v, inside committed window (global time %v)",
			srcPid, at, g.now))
	}
}

// drained reports whether every partition's queues are empty (transfers and
// inboxes were merged by the deliver that just ran). Signal-parked processes
// with no event that could ever wake them do not keep the group alive —
// matching a serial Run returning on an exhausted heap.
func (g *Group) drained() bool {
	for _, e := range g.parts {
		if len(e.events) > 0 || e.nowQHead < len(e.nowQ) {
			return false
		}
	}
	return true
}

func sortExt(evs []extEvent) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.srcPid != b.srcPid {
			return a.srcPid < b.srcPid
		}
		return a.srcSeq < b.srcSeq
	})
}

// window computes the next conservative window end: the committed time
// plus the smallest declared cross-partition latency, tightened or relaxed
// by mobile-process state, capped at the deadline. Window ends are
// inclusive (RunUntil executes events at the boundary), so lookahead
// bounds subtract one tick to keep arrivals strictly outside the window.
func (g *Group) window(deadline Duration) Duration {
	wend := deadline
	if g.lookahead != MaxTime {
		if b := g.now + g.lookahead - 1; b < wend {
			wend = b
		}
	}
	g.mu.Lock()
	for p := range g.mobile {
		earliest := g.now
		if p.blockedIdx == -1 && p.hasWake {
			// Parked on a pure timer: provably inert until wakeAt. A
			// signal-parked or runnable mobile process may act any time, so
			// it pins the bound at the committed time.
			earliest = p.wakeAt
		}
		if b := earliest + g.mobileLat - 1; b < wend {
			wend = b
		}
	}
	g.mu.Unlock()
	if wend < g.now {
		wend = g.now
	}
	return wend
}

// RunUntil advances every partition to the deadline through the barrier
// loop: deliver pending cross events, compute the conservative window, run
// each partition's ordinary serial loop to the window end on its own
// goroutine, repeat. A one-partition group delegates directly to the
// engine — byte-for-byte the serial loop.
func (g *Group) RunUntil(deadline Duration) Duration {
	if g.running {
		panic("sim: Group.RunUntil called re-entrantly")
	}
	if len(g.parts) == 0 {
		panic("sim: group has no partitions")
	}
	g.running = true
	defer func() { g.running = false }()
	if len(g.parts) == 1 {
		g.parts[0].RunUntil(deadline)
		g.now = g.parts[0].now
		return g.now
	}
	for {
		g.deliver()
		if g.now >= deadline {
			return g.now
		}
		if deadline == MaxTime && g.drained() {
			// Open-ended run and every queue is empty: the simulation is
			// over, exactly as a serial Run returns on an exhausted heap.
			return g.now
		}
		wend := g.window(deadline)
		if wend <= g.now {
			panic(fmt.Sprintf("sim: window collapsed at %v (lookahead %v, mobile latency %v)", g.now, g.lookahead, g.mobileLat))
		}
		var wg sync.WaitGroup
		for _, e := range g.parts {
			if e.nowQHead >= len(e.nowQ) && (len(e.events) == 0 || e.events[0].at > wend) {
				// Idle window: nothing to execute, just commit the clock.
				if wend != MaxTime && e.now < wend {
					e.now = wend
				}
				continue
			}
			e.windowStart = e.now
			wg.Add(1)
			go func(e *Engine) {
				defer wg.Done()
				e.RunUntil(wend)
			}(e)
		}
		wg.Wait()
		if wend == MaxTime {
			// Unbounded window (no cross couplings left): partitions drained
			// at their own final times; commit to the latest real one.
			for _, e := range g.parts {
				if e.now > g.now {
					g.now = e.now
				}
			}
			continue
		}
		g.now = wend
	}
}

// Run executes until every partition drains or the clock never advances —
// partitioned simulations are usually driven with an explicit deadline, so
// Run is a convenience for tests.
func (g *Group) Run() Duration { return g.RunUntil(MaxTime) }

// Shutdown terminates the whole group: every partition's processes unwind
// (including mobile processes caught mid-hop) and pending events drop.
// Must not be called while RunUntil is executing a window.
func (g *Group) Shutdown() {
	if g.running {
		panic("sim: Group.Shutdown called during a window")
	}
	g.mu.Lock()
	tr := g.transfers
	g.transfers = nil
	g.mu.Unlock()
	for _, e := range g.parts {
		e.Shutdown()
	}
	// In-flight mobile processes belong to no heap and no blocked list;
	// unwind them exactly as Shutdown's victim loop would.
	for _, t := range tr {
		e := t.srcEng
		if t.proc.done {
			continue
		}
		e.unwinding = true
		t.proc.run <- struct{}{}
		<-e.ack
		e.unwinding = false
	}
}
