// Package sim provides a deterministic, process-based discrete-event
// simulation engine.
//
// All Oasis components — hosts, polling cores, NICs, the CXL pool, the
// switch — run as simulated processes whose every operation advances a
// shared virtual clock by a calibrated cost. Virtual time makes the
// microsecond-scale phenomena the paper reports (0.6 µs message-channel
// latency, 4–7 µs datapath overhead, 38 ms failover) deterministic and
// exactly measurable, which wall-clock time in a garbage-collected runtime
// is not.
//
// The engine is cooperatively single-threaded: although each process runs
// on its own goroutine, exactly one process executes at a time and control
// returns to the engine whenever a process blocks (Sleep, Wait, queue pop).
// Event ordering is total: events fire in (time, sequence) order, so two
// runs of the same simulation produce identical results.
package sim

import (
	"fmt"
	"math"
	"time"

	"oasis/internal/bufpool"
)

// Duration is virtual time, measured in nanoseconds since simulation start.
// It aliases time.Duration so cost constants read naturally
// (205 * time.Nanosecond, 5 * time.Second).
type Duration = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime = Duration(math.MaxInt64)

// event is a scheduled callback or process wakeup. Dispatched events are
// recycled through the engine's free list, which is safe because no caller
// ever retains an *event across its dispatch.
type event struct {
	at   Duration
	seq  uint64 // tie-breaker: FIFO among same-time events
	fn   func()
	tm   Timer
	proc *Proc // non-nil when the event resumes (or starts) a process
}

// Timer is the closure-free way to schedule work. At(t, func(){...})
// allocates a fresh closure (plus boxed captures) per call, which on
// per-packet paths dominates the allocation profile; a Timer is typically a
// small struct pooled by its owner, and a pointer inside an interface value
// costs nothing to schedule. Fire runs exactly once, in event context, at
// the scheduled time — or never, if the engine shuts down first, so owners
// must not leak resources that only Fire would release.
type Timer interface{ Fire() }

// before reports whether a orders strictly before b. (at, seq) is a strict
// total order — seq is unique — so every correct priority queue pops the
// same sequence; the heap's shape is free to differ between implementations.
func (a *event) before(b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Engine owns the virtual clock and the event queue.
// The zero value is not usable; call New.
type Engine struct {
	now    Duration
	seq    uint64
	events []*event // 4-ary min-heap ordered by (at, seq); see heapPush/heapPop
	// nowQ holds events scheduled at the current time while the engine is
	// running. They bypass the heap entirely: same-time scheduling is the
	// dominant pattern (signal wakeups, yields), and a FIFO append/scan is
	// both cheaper than O(log n) heap fix-ups and provably order-preserving —
	// any heap entry at the current time was scheduled before the clock
	// reached it, so it carries a smaller sequence number than every
	// now-queue entry and is dispatched first.
	nowQ     []*event
	nowQHead int
	free     []*event // recycled events; dispatch returns them here
	running  bool
	dead     bool    // Shutdown was called; processes unwind
	nprocs   int     // live processes (for leak detection in tests)
	blocked  []*Proc // processes parked on signals/queues (no pending event)
	deadline Duration
	bufs     *bufpool.Pool

	// Token-passing scheduler plumbing (see RunUntil). host wakes the
	// RunUntil caller when the loop finishes on a process goroutine; ack
	// serializes victim unwinding during Shutdown.
	host      chan struct{}
	ack       chan struct{}
	unwinding bool  // inside Shutdown's victim loop
	cur       *Proc // process currently holding the token, nil if the host is

	// Partitioned execution (see partition.go). A standalone engine has
	// group == nil and behaves exactly as before; a partition is an
	// ordinary engine whose windows are driven by its Group.
	group       *Group
	pid         int              // partition index within the group
	windowStart Duration         // partition commit at window entry (SIMCHECK)
	inbox       inbox            // cross-partition events awaiting barrier delivery
	wake        chan windowOrder // persistent window worker's assignment channel
}

// New returns an Engine with the clock at zero and no pending events.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Duration { return e.now }

// Bufs returns the engine-local buffer free list used by the datapath's
// per-packet/per-line allocation sites. Engine-local means race-free by
// construction: exactly one process (or callback) executes at a time, so
// the pool needs no locking, and parallel simulations — one engine per
// worker — never share a pool.
func (e *Engine) Bufs() *bufpool.Pool {
	if e.bufs == nil {
		e.bufs = bufpool.New()
	}
	return e.bufs
}

// newEvent pops a recycled event or allocates one.
func (e *Engine) newEvent() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{}
}

// recycle returns a dispatched event to the free list, dropping references
// so recycled events never pin callbacks or processes.
func (e *Engine) recycle(ev *event) {
	ev.fn, ev.tm, ev.proc = nil, nil, nil
	e.free = append(e.free, ev)
}

// schedule inserts an event at absolute time at (clamped to now).
func (e *Engine) schedule(at Duration, fn func(), tm Timer, p *Proc) {
	if simCheck && at < e.windowStart {
		panic(fmt.Sprintf("sim: event scheduled at %v, in the past of partition %d's window start %v",
			at, e.pid, e.windowStart))
	}
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := e.newEvent()
	ev.at, ev.seq, ev.fn, ev.tm, ev.proc = at, e.seq, fn, tm, p
	if p != nil {
		// A parked process's next wakeup time feeds the group's conservative
		// window bound for mobile processes (see Group.window).
		p.hasWake, p.wakeAt = true, at
	}
	if e.running && at == e.now {
		e.nowQ = append(e.nowQ, ev)
		return
	}
	e.heapPush(ev)
}

// heapPush inserts ev into the timeline. The heap is 4-ary and hand-rolled:
// container/heap's interface indirection was ~20% of a simulation-bound
// profile, and the wider fan-out halves the levels each pop has to walk.
func (e *Engine) heapPush(ev *event) {
	e.events = append(e.events, ev)
	h := e.events
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) >> 2
		p := h[parent]
		if p.before(ev) {
			break
		}
		h[i] = p
		i = parent
	}
	h[i] = ev
}

// heapPop removes and returns the earliest event.
func (e *Engine) heapPop() *event {
	h := e.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = nil
	e.events = h[:n]
	if n > 0 {
		h = h[:n]
		i := 0
		for {
			first := i<<2 + 1
			if first >= n {
				break
			}
			best, be := first, h[first]
			end := first + 4
			if end > n {
				end = n
			}
			for j := first + 1; j < end; j++ {
				if c := h[j]; c.before(be) {
					best, be = j, c
				}
			}
			if last.before(be) {
				break
			}
			h[i] = be
			i = best
		}
		h[i] = last
	}
	return top
}

// At schedules fn to run at absolute virtual time t (or now, if t has passed).
func (e *Engine) At(t Duration, fn func()) { e.schedule(t, fn, nil, nil) }

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) { e.schedule(e.now+d, fn, nil, nil) }

// AtTimer schedules tm.Fire to run at absolute virtual time t. See Timer for
// when to prefer this over At.
func (e *Engine) AtTimer(t Duration, tm Timer) { e.schedule(t, nil, tm, nil) }

// AfterTimer schedules tm.Fire to run d from now.
func (e *Engine) AfterTimer(d Duration, tm Timer) { e.schedule(e.now+d, nil, tm, nil) }

// Go spawns a new simulated process that begins executing at the current
// virtual time. The name appears in diagnostics. fn runs on its own
// goroutine but only ever executes while the engine is blocked on it, so
// processes never race with each other or with event callbacks.
//
// The goroutine is not created until the startup event fires: a process
// whose startup event is dropped by Shutdown simply never existed, and its
// slot in the live-process count is released immediately.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, run: make(chan struct{}), fn: fn, blockedIdx: -1}
	e.nprocs++
	e.schedule(e.now, nil, nil, p)
	return p
}

// Run executes events until the queue is empty or Shutdown is called.
// It returns the final virtual time.
func (e *Engine) Run() Duration { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= deadline and then sets the
// clock to deadline (if any event was beyond it, the clock stops at
// deadline). It returns the final virtual time.
//
// Scheduling is token-passing: exactly one goroutine at a time "drives" the
// event loop. The RunUntil caller starts driving; when the next event
// resumes a process, the driver hands control directly to that process's
// goroutine and the loop continues there the next time that process parks.
// There is no dedicated engine goroutine in the middle, so a process-to-
// process switch costs one channel handoff instead of two — and a process
// whose own wakeup is the next event continues with no handoff at all.
// Event selection is unchanged, so the dispatch order (and with it every
// simulation result) is identical to a centrally-driven loop.
func (e *Engine) RunUntil(deadline Duration) Duration {
	if e.running {
		panic("sim: RunUntil called re-entrantly")
	}
	e.running = true
	e.deadline = deadline
	e.cur = nil // the host goroutine drives first
	if e.host == nil {
		e.host = make(chan struct{})
	}
	defer func() { e.running = false }()
	if e.drive(nil) == driveHandoff {
		// The loop moved onto process goroutines; block until it finishes
		// there (deadline reached, queue drained, or shutdown).
		<-e.host
	}
	if e.now < deadline && deadline != MaxTime {
		e.now = deadline
	}
	return e.now
}

// driveResult says how a drive call ended.
type driveResult int

const (
	driveDone        driveResult = iota // deadline/empty queue/shutdown
	driveHandoff                        // control handed to a process goroutine
	driveOwnerWakeup                    // owner's own wakeup reached; it keeps running
)

// drive executes events on the calling goroutine until the loop terminates,
// control is handed to a process goroutine, or (when owner is non-nil) the
// next event is owner's own wakeup.
func (e *Engine) drive(owner *Proc) driveResult {
	deadline := e.deadline
	for !e.dead {
		// Drain the current instant before moving the clock: heap entries at
		// the current time first (smaller sequence numbers — see nowQ), then
		// the now-queue in FIFO order.
		var next *event
		if len(e.events) > 0 && e.events[0].at == e.now && e.now <= deadline {
			next = e.heapPop()
		} else if e.nowQHead < len(e.nowQ) {
			// A busy instant appends while we drain, so the head chases the
			// tail; compact once the dispatched prefix dominates, keeping the
			// queue's footprint bounded at amortized O(1) per event.
			if e.nowQHead >= 64 && e.nowQHead*2 >= len(e.nowQ) {
				n := copy(e.nowQ, e.nowQ[e.nowQHead:])
				e.nowQ = e.nowQ[:n]
				e.nowQHead = 0
			}
			next = e.nowQ[e.nowQHead]
			e.nowQ[e.nowQHead] = nil
			e.nowQHead++
		} else {
			e.nowQ = e.nowQ[:0]
			e.nowQHead = 0
			if len(e.events) == 0 {
				return driveDone
			}
			if e.events[0].at > deadline {
				e.now = deadline
				return driveDone
			}
			next = e.heapPop()
			e.now = next.at
		}
		switch {
		case next.proc != nil:
			q := next.proc
			q.hasWake = false
			e.recycle(next)
			if q == owner {
				return driveOwnerWakeup
			}
			e.transfer(q)
			return driveHandoff
		case next.tm != nil:
			next.tm.Fire()
			e.recycle(next)
		case next.fn != nil:
			next.fn()
			e.recycle(next)
		default:
			e.recycle(next)
		}
	}
	return driveDone
}

// transfer hands the control token to process q, spawning its goroutine on
// first resume. The caller stops driving immediately after.
func (e *Engine) transfer(q *Proc) {
	e.cur = q
	if !q.started {
		q.started = true
		fn := q.fn
		q.fn = nil // don't pin the closure for the process's whole lifetime
		go q.main(fn)
		return
	}
	q.run <- struct{}{}
}

// Shutdown terminates the simulation: all parked processes are unwound (their
// blocking calls panic with a killed marker that Proc.main recovers), pending
// events are dropped, and Run returns. A process whose startup event never
// fired is dropped without ever spawning its goroutine. Safe to call from
// within a callback or a process.
func (e *Engine) Shutdown() {
	if e.dead {
		return
	}
	e.dead = true
	var victims []*Proc
	for _, ev := range e.events {
		if ev.proc != nil {
			victims = append(victims, ev.proc)
		}
	}
	for _, ev := range e.nowQ[e.nowQHead:] {
		if ev.proc != nil {
			victims = append(victims, ev.proc)
		}
	}
	victims = append(victims, e.blocked...)
	e.events = nil
	e.nowQ = nil
	e.nowQHead = 0
	e.blocked = nil
	if e.ack == nil {
		e.ack = make(chan struct{})
	}
	// The token holder may be the one calling us (Shutdown from a callback
	// dispatched on a parked process's goroutine). It must not be sent its
	// own run token — it unwinds itself when the current dispatch returns.
	// Between RunUntil calls no goroutine holds the token, so a stale cur
	// from the previous run must not shield a victim.
	self := e.cur
	if !e.running {
		self = nil
	}
	e.unwinding = true
	for _, p := range victims {
		switch {
		case p.done:
		case p == self:
		case !p.started:
			// The startup event never fired: no goroutine exists to unwind.
			// Release the process slot directly.
			p.done = true
			e.nprocs--
		default:
			// Wake the parked process; it sees dead, unwinds, and acks from
			// its exit path so victims die strictly one at a time.
			p.run <- struct{}{}
			<-e.ack
		}
	}
	e.unwinding = false
}

// addBlocked registers a process parked on a signal or queue so Shutdown can
// unwind it; primitives call removeBlocked when they wake the process.
func (e *Engine) addBlocked(p *Proc) {
	p.blockedIdx = len(e.blocked)
	e.blocked = append(e.blocked, p)
}

// removeBlocked unregisters a parked process in O(1): the process records
// its slot, and the last entry swaps into the vacated position.
func (e *Engine) removeBlocked(p *Proc) {
	i := p.blockedIdx
	if i < 0 {
		return
	}
	last := len(e.blocked) - 1
	q := e.blocked[last]
	e.blocked[i] = q
	q.blockedIdx = i
	e.blocked[last] = nil
	e.blocked = e.blocked[:last]
	p.blockedIdx = -1
}

// Procs returns the number of live processes. Useful in tests to verify that
// a simulation wound down cleanly.
func (e *Engine) Procs() int { return e.nprocs }

// killed is the panic value used to unwind processes on Shutdown.
type killed struct{}

// Proc is a simulated process. Methods on Proc must only be called from the
// process's own function.
type Proc struct {
	eng  *Engine
	name string
	// run delivers the control token to this process: a parked process
	// blocks in a receive on it, and whoever dispatches the process's
	// wakeup sends. The reverse direction needs no channel — a parking
	// process keeps driving the event loop on its own goroutine (see
	// RunUntil), so a switch is one channel operation, not a round trip.
	run        chan struct{}
	fn         func(p *Proc) // body; retained until the startup event fires
	started    bool
	done       bool
	blockedIdx int // slot in eng.blocked, -1 when not parked on a primitive

	// Mobile-process bookkeeping (see Group). hasWake/wakeAt mirror the
	// process's pending wake event so the barrier can classify a parked
	// mobile process without scanning the heap: parked on a pure timer
	// (hasWake, blockedIdx == -1) means it provably cannot act before
	// wakeAt; parked on a signal means it may act anywhere in the next
	// window.
	hasWake bool
	wakeAt  Duration
}

// main runs the process body, handling unwind-on-shutdown. On a normal
// return the dying goroutine keeps driving the event loop — some other
// process's wakeup or the RunUntil caller takes over from there.
func (p *Proc) main(fn func(p *Proc)) {
	defer func() {
		p.done = true
		e := p.eng
		e.nprocs--
		if r := recover(); r != nil {
			if _, ok := r.(killed); !ok {
				panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
			}
			if e.unwinding {
				e.ack <- struct{}{} // Shutdown's victim loop is waiting
			} else {
				// Died holding the token after Shutdown (it was the caller):
				// the loop is over, wake RunUntil.
				e.host <- struct{}{}
			}
			return
		}
		if e.drive(nil) == driveDone {
			e.host <- struct{}{}
		}
	}()
	fn(p)
}

// park hands the event loop to this goroutine until the process's own wakeup
// fires; if the loop ends or moves elsewhere first, it blocks until resumed.
// If the engine was (or is while parked) shut down, it unwinds the process.
func (p *Proc) park() {
	e := p.eng
	if e.dead {
		panic(killed{}) // main's deferred recover hands control onward
	}
	switch e.drive(p) {
	case driveOwnerWakeup:
		return // our own wakeup was next: keep running, zero handoffs
	case driveDone:
		if e.dead {
			// A callback we dispatched called Shutdown: unwind; main's
			// deferred recover wakes RunUntil exactly once.
			panic(killed{})
		}
		e.host <- struct{}{} // loop over while we're parked: wake RunUntil
	case driveHandoff:
		// another process is running; wait for our wakeup
	}
	<-p.run
	if e.dead {
		panic(killed{})
	}
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Duration { return p.eng.now }

// Sleep advances this process's local time by d; other events run meanwhile.
// A non-positive d yields without advancing the clock (the process is
// re-scheduled at the current time, after already-pending same-time events).
//
// Fast path: when no pending event could fire during the sleep, the clock
// advances in place without a goroutine handoff. This is semantically
// identical to park-and-immediately-resume (the wake event would be next
// anyway) and makes busy-polling simulations orders of magnitude faster.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	t := e.now + d
	if d > 0 && !e.dead && t <= e.deadline && e.nowQHead >= len(e.nowQ) &&
		(len(e.events) == 0 || e.events[0].at > t) {
		e.now = t
		return
	}
	e.schedule(t, nil, nil, p)
	p.park()
}

// Yield lets all other events scheduled at the current time run first.
func (p *Proc) Yield() { p.Sleep(0) }
