// Package sim provides a deterministic, process-based discrete-event
// simulation engine.
//
// All Oasis components — hosts, polling cores, NICs, the CXL pool, the
// switch — run as simulated processes whose every operation advances a
// shared virtual clock by a calibrated cost. Virtual time makes the
// microsecond-scale phenomena the paper reports (0.6 µs message-channel
// latency, 4–7 µs datapath overhead, 38 ms failover) deterministic and
// exactly measurable, which wall-clock time in a garbage-collected runtime
// is not.
//
// The engine is cooperatively single-threaded: although each process runs
// on its own goroutine, exactly one process executes at a time and control
// returns to the engine whenever a process blocks (Sleep, Wait, queue pop).
// Event ordering is total: events fire in (time, sequence) order, so two
// runs of the same simulation produce identical results.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"time"
)

// Duration is virtual time, measured in nanoseconds since simulation start.
// It aliases time.Duration so cost constants read naturally
// (205 * time.Nanosecond, 5 * time.Second).
type Duration = time.Duration

// MaxTime is the largest representable virtual time.
const MaxTime = Duration(math.MaxInt64)

// event is a scheduled callback or process wakeup.
type event struct {
	at   Duration
	seq  uint64 // tie-breaker: FIFO among same-time events
	fn   func()
	proc *Proc // non-nil when the event resumes a parked process
	idx  int   // heap index, -1 when popped or cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].idx = i
	h[j].idx = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.idx = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.idx = -1
	*h = old[:n-1]
	return e
}

// Engine owns the virtual clock and the event queue.
// The zero value is not usable; call New.
type Engine struct {
	now      Duration
	seq      uint64
	events   eventHeap
	running  bool
	dead     bool    // Shutdown was called; processes unwind
	nprocs   int     // live processes (for leak detection in tests)
	blocked  []*Proc // processes parked on signals/queues (no pending event)
	deadline Duration
}

// New returns an Engine with the clock at zero and no pending events.
func New() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Duration { return e.now }

// schedule inserts an event at absolute time at (clamped to now).
func (e *Engine) schedule(at Duration, fn func(), p *Proc) *event {
	if at < e.now {
		at = e.now
	}
	e.seq++
	ev := &event{at: at, seq: e.seq, fn: fn, proc: p}
	heap.Push(&e.events, ev)
	return ev
}

// At schedules fn to run at absolute virtual time t (or now, if t has passed).
func (e *Engine) At(t Duration, fn func()) { e.schedule(t, fn, nil) }

// After schedules fn to run d from now.
func (e *Engine) After(d Duration, fn func()) { e.schedule(e.now+d, fn, nil) }

// Go spawns a new simulated process that begins executing at the current
// virtual time. The name appears in diagnostics. fn runs on its own
// goroutine but only ever executes while the engine is blocked on it, so
// processes never race with each other or with event callbacks.
func (e *Engine) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{eng: e, name: name, wake: make(chan struct{}), parked: make(chan struct{})}
	e.nprocs++
	started := false
	e.schedule(e.now, func() {
		if !started {
			started = true
			go p.main(fn)
			<-p.parked
		}
	}, nil)
	return p
}

// Run executes events until the queue is empty or Shutdown is called.
// It returns the final virtual time.
func (e *Engine) Run() Duration { return e.RunUntil(MaxTime) }

// RunUntil executes events with timestamps <= deadline and then sets the
// clock to deadline (if any event was beyond it, the clock stops at
// deadline). It returns the final virtual time.
func (e *Engine) RunUntil(deadline Duration) Duration {
	if e.running {
		panic("sim: RunUntil called re-entrantly")
	}
	e.running = true
	e.deadline = deadline
	defer func() { e.running = false }()
	for len(e.events) > 0 && !e.dead {
		next := e.events[0]
		if next.at > deadline {
			e.now = deadline
			return e.now
		}
		heap.Pop(&e.events)
		e.now = next.at
		e.dispatch(next)
	}
	if e.now < deadline && deadline != MaxTime {
		e.now = deadline
	}
	return e.now
}

// dispatch runs one event to completion (including any process execution it
// triggers; the engine regains control when the process parks or exits).
func (e *Engine) dispatch(ev *event) {
	if ev.proc != nil {
		ev.proc.resume()
		return
	}
	if ev.fn != nil {
		ev.fn()
	}
}

// Shutdown terminates the simulation: all parked processes are unwound (their
// blocking calls panic with a killed marker that Proc.main recovers), pending
// events are dropped, and Run returns. Safe to call from within a callback or
// a process.
func (e *Engine) Shutdown() {
	if e.dead {
		return
	}
	e.dead = true
	var victims []*Proc
	for _, ev := range e.events {
		if ev.proc != nil {
			victims = append(victims, ev.proc)
		}
	}
	victims = append(victims, e.blocked...)
	e.events = nil
	e.blocked = nil
	for _, p := range victims {
		if !p.done {
			p.resume() // wakes into park, which sees dead and unwinds
		}
	}
}

// addBlocked registers a process parked on a signal or queue so Shutdown can
// unwind it; primitives call removeBlocked when they wake the process.
func (e *Engine) addBlocked(p *Proc) {
	e.blocked = append(e.blocked, p)
}

func (e *Engine) removeBlocked(p *Proc) {
	for i, q := range e.blocked {
		if q == p {
			e.blocked = append(e.blocked[:i], e.blocked[i+1:]...)
			return
		}
	}
}

// Procs returns the number of live processes. Useful in tests to verify that
// a simulation wound down cleanly.
func (e *Engine) Procs() int { return e.nprocs }

// killed is the panic value used to unwind processes on Shutdown.
type killed struct{}

// Proc is a simulated process. Methods on Proc must only be called from the
// process's own function.
type Proc struct {
	eng    *Engine
	name   string
	wake   chan struct{} // resumer -> process: run
	parked chan struct{} // process -> resumer: parked or exited
	done   bool
}

// main runs the process body, handling unwind-on-shutdown.
func (p *Proc) main(fn func(p *Proc)) {
	defer func() {
		p.done = true
		p.eng.nprocs--
		if r := recover(); r != nil {
			if _, ok := r.(killed); ok {
				p.parked <- struct{}{}
				return
			}
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, r))
		}
		p.parked <- struct{}{}
	}()
	fn(p)
}

// resume hands control to the process and blocks until it parks again.
// Resume chains nest like a call stack: each resumer waits on the resumed
// process's own parked channel, so nested resumes (e.g. a process shutting
// down its peers) cannot cross wires.
func (p *Proc) resume() {
	p.wake <- struct{}{}
	<-p.parked
}

// park returns control to the engine and blocks until resumed.
// If the engine was (or is while parked) shut down, it unwinds the process.
func (p *Proc) park() {
	if p.eng.dead {
		panic(killed{}) // main's deferred recover hands control back
	}
	p.parked <- struct{}{}
	<-p.wake
	if p.eng.dead {
		panic(killed{})
	}
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Name returns the process name.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Duration { return p.eng.now }

// Sleep advances this process's local time by d; other events run meanwhile.
// A non-positive d yields without advancing the clock (the process is
// re-scheduled at the current time, after already-pending same-time events).
//
// Fast path: when no pending event could fire during the sleep, the clock
// advances in place without a goroutine handoff. This is semantically
// identical to park-and-immediately-resume (the wake event would be next
// anyway) and makes busy-polling simulations orders of magnitude faster.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	e := p.eng
	t := e.now + d
	if d > 0 && !e.dead && t <= e.deadline && (len(e.events) == 0 || e.events[0].at > t) {
		e.now = t
		return
	}
	e.schedule(t, nil, p)
	p.park()
}

// Yield lets all other events scheduled at the current time run first.
func (p *Proc) Yield() { p.Sleep(0) }
