package sim

import (
	"testing"
	"time"
)

func TestCallbackOrdering(t *testing.T) {
	eng := New()
	var order []int
	eng.At(30*time.Nanosecond, func() { order = append(order, 3) })
	eng.At(10*time.Nanosecond, func() { order = append(order, 1) })
	eng.At(20*time.Nanosecond, func() { order = append(order, 2) })
	end := eng.Run()
	if end != 30*time.Nanosecond {
		t.Fatalf("end time = %v, want 30ns", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

func TestSameTimeFIFO(t *testing.T) {
	eng := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		eng.At(5*time.Nanosecond, func() { order = append(order, i) })
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO among same-time events)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	eng := New()
	var at Duration
	eng.At(100*time.Nanosecond, func() {
		eng.After(50*time.Nanosecond, func() { at = eng.Now() })
	})
	eng.Run()
	if at != 150*time.Nanosecond {
		t.Fatalf("nested After fired at %v, want 150ns", at)
	}
}

func TestProcessSleep(t *testing.T) {
	eng := New()
	var stamps []Duration
	eng.Go("sleeper", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(10 * time.Nanosecond)
			stamps = append(stamps, p.Now())
		}
	})
	eng.Run()
	want := []Duration{10 * time.Nanosecond, 20 * time.Nanosecond, 30 * time.Nanosecond}
	if len(stamps) != 3 {
		t.Fatalf("stamps = %v, want 3 entries", stamps)
	}
	for i := range want {
		if stamps[i] != want[i] {
			t.Fatalf("stamps[%d] = %v, want %v", i, stamps[i], want[i])
		}
	}
	if eng.Procs() != 0 {
		t.Fatalf("live procs = %d, want 0", eng.Procs())
	}
}

func TestTwoProcessesInterleave(t *testing.T) {
	eng := New()
	var order []string
	eng.Go("a", func(p *Proc) {
		p.Sleep(10 * time.Nanosecond)
		order = append(order, "a10")
		p.Sleep(20 * time.Nanosecond)
		order = append(order, "a30")
	})
	eng.Go("b", func(p *Proc) {
		p.Sleep(15 * time.Nanosecond)
		order = append(order, "b15")
		p.Sleep(20 * time.Nanosecond)
		order = append(order, "b35")
	})
	eng.Run()
	want := []string{"a10", "b15", "a30", "b35"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRunUntilStopsClock(t *testing.T) {
	eng := New()
	fired := false
	eng.At(time.Second, func() { fired = true })
	end := eng.RunUntil(100 * time.Millisecond)
	if fired {
		t.Fatal("event beyond deadline fired")
	}
	if end != 100*time.Millisecond {
		t.Fatalf("end = %v, want 100ms", end)
	}
	// Resuming runs the event.
	eng.Run()
	if !fired {
		t.Fatal("event did not fire after resuming Run")
	}
}

func TestSignalWakesFIFO(t *testing.T) {
	eng := New()
	sig := NewSignal(eng)
	var order []string
	eng.Go("w1", func(p *Proc) { sig.Wait(p); order = append(order, "w1") })
	eng.Go("w2", func(p *Proc) { sig.Wait(p); order = append(order, "w2") })
	eng.At(10*time.Nanosecond, func() {
		if sig.Waiters() != 2 {
			t.Errorf("waiters = %d, want 2", sig.Waiters())
		}
		sig.Signal()
	})
	eng.At(20*time.Nanosecond, func() { sig.Broadcast() })
	eng.Run()
	if len(order) != 2 || order[0] != "w1" || order[1] != "w2" {
		t.Fatalf("order = %v, want [w1 w2]", order)
	}
}

func TestSignalWaitTimeout(t *testing.T) {
	eng := New()
	sig := NewSignal(eng)
	var woken, timedOut bool
	var wokenAt, timeoutAt Duration
	eng.Go("lucky", func(p *Proc) {
		woken = sig.WaitTimeout(p, 100*time.Nanosecond)
		wokenAt = p.Now()
	})
	eng.Go("unlucky", func(p *Proc) {
		p.Sleep(1) // ensure "lucky" waits first so Signal picks it
		timedOut = !sig.WaitTimeout(p, 50*time.Nanosecond)
		timeoutAt = p.Now()
	})
	eng.At(10*time.Nanosecond, func() { sig.Signal() })
	eng.Run()
	if !woken || wokenAt != 10*time.Nanosecond {
		t.Fatalf("lucky: woken=%v at %v, want woken at 10ns", woken, wokenAt)
	}
	if !timedOut || timeoutAt != 51*time.Nanosecond {
		t.Fatalf("unlucky: timedOut=%v at %v, want timeout at 51ns", timedOut, timeoutAt)
	}
	if eng.Procs() != 0 {
		t.Fatalf("live procs = %d, want 0", eng.Procs())
	}
}

func TestQueueBlocksUntilPush(t *testing.T) {
	eng := New()
	q := NewQueue[int](eng)
	var got int
	var at Duration
	eng.Go("consumer", func(p *Proc) {
		got = q.Pop(p)
		at = p.Now()
	})
	eng.At(25*time.Nanosecond, func() { q.Push(42) })
	eng.Run()
	if got != 42 || at != 25*time.Nanosecond {
		t.Fatalf("got %d at %v, want 42 at 25ns", got, at)
	}
}

func TestQueueFIFOAndTryPop(t *testing.T) {
	eng := New()
	q := NewQueue[int](eng)
	eng.At(0, func() {
		q.Push(1)
		q.Push(2)
		q.Push(3)
		if q.Len() != 3 {
			t.Errorf("len = %d, want 3", q.Len())
		}
		for want := 1; want <= 3; want++ {
			v, ok := q.TryPop()
			if !ok || v != want {
				t.Errorf("TryPop = %d,%v, want %d,true", v, ok, want)
			}
		}
		if _, ok := q.TryPop(); ok {
			t.Error("TryPop on empty queue returned ok")
		}
	})
	eng.Run()
}

func TestQueuePopTimeout(t *testing.T) {
	eng := New()
	q := NewQueue[int](eng)
	var ok1, ok2 bool
	var v1 int
	eng.Go("c", func(p *Proc) {
		_, ok1 = q.PopTimeout(p, 10*time.Nanosecond) // times out
		v1, ok2 = q.PopTimeout(p, 100*time.Nanosecond)
	})
	eng.At(50*time.Nanosecond, func() { q.Push(7) })
	eng.Run()
	if ok1 {
		t.Fatal("first PopTimeout should have timed out")
	}
	if !ok2 || v1 != 7 {
		t.Fatalf("second PopTimeout = %d,%v, want 7,true", v1, ok2)
	}
}

func TestResourceSerializes(t *testing.T) {
	eng := New()
	r := NewResource(eng)
	var done []Duration
	for i := 0; i < 3; i++ {
		eng.Go("u", func(p *Proc) {
			r.Use(p, 100*time.Nanosecond)
			done = append(done, p.Now())
		})
	}
	eng.Run()
	want := []Duration{100 * time.Nanosecond, 200 * time.Nanosecond, 300 * time.Nanosecond}
	if len(done) != 3 {
		t.Fatalf("done = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if r.BusyTotal() != 300*time.Nanosecond {
		t.Fatalf("busyTotal = %v, want 300ns", r.BusyTotal())
	}
}

func TestResourceIdleGap(t *testing.T) {
	eng := New()
	r := NewResource(eng)
	var second Duration
	eng.Go("u", func(p *Proc) {
		r.Use(p, 10*time.Nanosecond) // completes at 10
		p.Sleep(100 * time.Nanosecond)
		r.Use(p, 10*time.Nanosecond) // idle gap; starts fresh at 110
		second = p.Now()
	})
	eng.Run()
	if second != 120*time.Nanosecond {
		t.Fatalf("second completion = %v, want 120ns", second)
	}
}

func TestShutdownUnwindsProcesses(t *testing.T) {
	eng := New()
	sig := NewSignal(eng)
	cleaned := 0
	eng.Go("waiter", func(p *Proc) {
		defer func() { cleaned++ }()
		sig.Wait(p) // never signalled
	})
	eng.Go("sleeper", func(p *Proc) {
		defer func() { cleaned++ }()
		p.Sleep(time.Hour)
	})
	eng.At(time.Millisecond, func() { eng.Shutdown() })
	eng.Run()
	if cleaned != 2 {
		t.Fatalf("cleaned = %d, want 2 (deferred cleanup must run on shutdown)", cleaned)
	}
	if eng.Procs() != 0 {
		t.Fatalf("live procs = %d, want 0", eng.Procs())
	}
}

func TestShutdownFromProcess(t *testing.T) {
	eng := New()
	reached := false
	eng.Go("killer", func(p *Proc) {
		p.Sleep(10 * time.Nanosecond)
		p.Engine().Shutdown()
		reached = true // code after Shutdown still runs until next park
		p.Sleep(time.Nanosecond)
		t.Error("process survived its own park after shutdown")
	})
	eng.Go("victim", func(p *Proc) {
		p.Sleep(time.Hour)
		t.Error("victim survived shutdown")
	})
	eng.Run()
	if !reached {
		t.Fatal("killer did not continue after calling Shutdown")
	}
	if eng.Procs() != 0 {
		t.Fatalf("live procs = %d, want 0", eng.Procs())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []Duration {
		eng := New()
		q := NewQueue[int](eng)
		var stamps []Duration
		for i := 0; i < 5; i++ {
			i := i
			eng.Go("producer", func(p *Proc) {
				p.Sleep(Duration(i*7) * time.Nanosecond)
				q.Push(i)
			})
		}
		eng.Go("consumer", func(p *Proc) {
			for i := 0; i < 5; i++ {
				q.Pop(p)
				stamps = append(stamps, p.Now())
				p.Sleep(3 * time.Nanosecond)
			}
		})
		eng.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != 5 || len(b) != 5 {
		t.Fatalf("runs produced %d and %d stamps, want 5", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run divergence at %d: %v vs %v", i, a, b)
		}
	}
}

func TestYieldRunsPendingSameTimeEventsFirst(t *testing.T) {
	eng := New()
	var order []string
	eng.Go("a", func(p *Proc) {
		p.Sleep(10 * time.Nanosecond)
		order = append(order, "a-before")
		p.Engine().After(0, func() { order = append(order, "cb") })
		p.Yield()
		order = append(order, "a-after")
	})
	eng.Run()
	// The callback was scheduled at the current time before Yield parked the
	// process, so FIFO ordering runs it during the Yield.
	want := []string{"a-before", "cb", "a-after"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// BenchmarkEngineCallbacks measures raw event dispatch (real wall time —
// the one benchmark in this repository where ns/op is the point).
func BenchmarkEngineCallbacks(b *testing.B) {
	eng := New()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			eng.After(time.Nanosecond, tick)
		}
	}
	b.ResetTimer()
	eng.After(time.Nanosecond, tick)
	eng.Run()
}

// BenchmarkEngineProcessSwitch measures the park/resume handoff between two
// processes — the cost every non-fast-path Sleep pays.
func BenchmarkEngineProcessSwitch(b *testing.B) {
	eng := New()
	q1 := NewQueue[int](eng)
	q2 := NewQueue[int](eng)
	eng.Go("a", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q1.Push(i)
			q2.Pop(p)
		}
	})
	eng.Go("b", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q1.Pop(p)
			q2.Push(i)
		}
	})
	b.ResetTimer()
	eng.Run()
}

// BenchmarkEngineFastPathSleep measures the in-place clock advance.
func BenchmarkEngineFastPathSleep(b *testing.B) {
	eng := New()
	eng.Go("spin", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ResetTimer()
	eng.Run()
}

func TestShutdownDropsNeverStartedProcs(t *testing.T) {
	eng := New()
	ran := false
	eng.Go("late", func(p *Proc) { ran = true })
	// Shutdown before the startup event fires: no goroutine ever exists
	// for the process, and its slot is released immediately.
	eng.Shutdown()
	eng.Run()
	if ran {
		t.Fatal("process body ran despite pre-run shutdown")
	}
	if eng.Procs() != 0 {
		t.Fatalf("live procs = %d, want 0", eng.Procs())
	}
}
