package sim

// Queue is an unbounded FIFO connecting simulated processes. Pop blocks the
// calling process until an item is available; Push never blocks. It is the
// simulation analogue of a Go channel and is used for intra-host IPC rings,
// NIC completion delivery, and control-plane mailboxes.
//
// Storage is a slice with a chasing head index rather than items[1:]
// re-slicing: slicing off the front discards capacity, which made every
// steady-state push/pop pair reallocate. The head compacts once the consumed
// prefix dominates, bounding the footprint at amortized O(1) per item.
type Queue[T any] struct {
	eng   *Engine
	items []T
	head  int
	avail *Signal
}

// NewQueue returns an empty queue bound to the engine.
func NewQueue[T any](eng *Engine) *Queue[T] {
	return &Queue[T]{eng: eng, avail: NewSignal(eng)}
}

// Push appends an item and wakes one waiting consumer, if any.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.avail.Signal()
}

// take removes and returns the head item; callers guarantee Len() > 0.
func (q *Queue[T]) take() T {
	v := q.items[q.head]
	var zero T
	q.items[q.head] = zero // drop references so consumed rows don't pin
	q.head++
	switch {
	case q.head == len(q.items):
		q.items = q.items[:0]
		q.head = 0
	case q.head >= 64 && q.head*2 >= len(q.items):
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return v
}

// Pop removes and returns the oldest item, parking the calling process until
// one is available.
func (q *Queue[T]) Pop(p *Proc) T {
	for q.Len() == 0 {
		q.avail.Wait(p)
	}
	return q.take()
}

// PopTimeout is like Pop but gives up after d, reporting ok=false.
func (q *Queue[T]) PopTimeout(p *Proc, d Duration) (v T, ok bool) {
	deadline := q.eng.Now() + d
	for q.Len() == 0 {
		remaining := deadline - q.eng.Now()
		if remaining <= 0 || !q.avail.WaitTimeout(p, remaining) {
			if q.Len() > 0 {
				break
			}
			return v, false
		}
	}
	return q.take(), true
}

// PushFront re-queues an item at the head — used by drivers that popped
// work they could not complete (e.g. a full downstream ring).
func (q *Queue[T]) PushFront(v T) {
	if q.head > 0 {
		q.head--
		q.items[q.head] = v
	} else {
		q.items = append(q.items, v)
		copy(q.items[1:], q.items)
		q.items[0] = v
	}
	q.avail.Signal()
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if q.Len() == 0 {
		return v, false
	}
	return q.take(), true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) - q.head }
