package sim

// Queue is an unbounded FIFO connecting simulated processes. Pop blocks the
// calling process until an item is available; Push never blocks. It is the
// simulation analogue of a Go channel and is used for intra-host IPC rings,
// NIC completion delivery, and control-plane mailboxes.
type Queue[T any] struct {
	eng   *Engine
	items []T
	avail *Signal
}

// NewQueue returns an empty queue bound to the engine.
func NewQueue[T any](eng *Engine) *Queue[T] {
	return &Queue[T]{eng: eng, avail: NewSignal(eng)}
}

// Push appends an item and wakes one waiting consumer, if any.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.avail.Signal()
}

// Pop removes and returns the oldest item, parking the calling process until
// one is available.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.avail.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// PopTimeout is like Pop but gives up after d, reporting ok=false.
func (q *Queue[T]) PopTimeout(p *Proc, d Duration) (v T, ok bool) {
	deadline := q.eng.Now() + d
	for len(q.items) == 0 {
		remaining := deadline - q.eng.Now()
		if remaining <= 0 || !q.avail.WaitTimeout(p, remaining) {
			if len(q.items) > 0 {
				break
			}
			return v, false
		}
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// PushFront re-queues an item at the head — used by drivers that popped
// work they could not complete (e.g. a full downstream ring).
func (q *Queue[T]) PushFront(v T) {
	q.items = append([]T{v}, q.items...)
	q.avail.Signal()
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (v T, ok bool) {
	if len(q.items) == 0 {
		return v, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
