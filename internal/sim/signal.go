package sim

// Signal is a condition-variable-like primitive: processes Wait on it and a
// callback or another process wakes them with Signal or Broadcast. Waiters
// wake in FIFO order, at the virtual time of the wake call.
type Signal struct {
	eng     *Engine
	waiters []*Proc
}

// NewSignal returns a Signal bound to the engine.
func NewSignal(eng *Engine) *Signal { return &Signal{eng: eng} }

// Wait parks the calling process until Signal or Broadcast wakes it.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	s.eng.addBlocked(p)
	p.park()
}

// WaitTimeout parks the calling process until woken or until d elapses.
// It reports whether the process was woken (true) or timed out (false).
func (s *Signal) WaitTimeout(p *Proc, d Duration) bool {
	woken := false
	s.waiters = append(s.waiters, p)
	s.eng.addBlocked(p)
	// Timer event: if it fires first, remove the waiter and wake with
	// woken=false. If Signal fires first, it removes the waiter; the timer
	// then finds the process absent and does nothing.
	timedOut := false
	s.eng.After(d, func() {
		if woken || timedOut {
			return
		}
		if s.remove(p) {
			timedOut = true
			s.eng.removeBlocked(p)
			s.eng.schedule(s.eng.now, nil, nil, p)
		}
	})
	p.park()
	if !timedOut {
		woken = true
	}
	return woken
}

// remove deletes p from the waiter list, reporting whether it was present.
func (s *Signal) remove(p *Proc) bool {
	for i, q := range s.waiters {
		if q == p {
			s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// Signal wakes the oldest waiter, if any. It reports whether a process was
// woken. Must be called from an event callback or another process (never
// from the woken process itself).
func (s *Signal) Signal() bool {
	if len(s.waiters) == 0 {
		return false
	}
	p := s.waiters[0]
	s.waiters = s.waiters[1:]
	s.eng.removeBlocked(p)
	s.eng.schedule(s.eng.now, nil, nil, p)
	return true
}

// Broadcast wakes all waiters in FIFO order.
func (s *Signal) Broadcast() {
	for _, p := range s.waiters {
		s.eng.removeBlocked(p)
		s.eng.schedule(s.eng.now, nil, nil, p)
	}
	s.waiters = nil
}

// Waiters returns the number of parked processes.
func (s *Signal) Waiters() int { return len(s.waiters) }
