package sim

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// trace is a simulation-visible event log. Identical traces mean identical
// executions — every assertion in this file ultimately reduces to "the
// trace is byte-identical".
type trace struct{ lines []string }

func (t *trace) log(now Duration, format string, args ...any) {
	t.lines = append(t.lines, fmt.Sprintf("%12d %s", now, fmt.Sprintf(format, args...)))
}
func (t *trace) String() string { return strings.Join(t.lines, "\n") }

// pingWorkload drives one engine through a representative mix of the
// engine's scheduling shapes: timers, same-instant events, process sleeps,
// yields, and signal handoffs.
func pingWorkload(e *Engine, tr *trace, tag string) {
	s := NewSignal(e)
	e.Go(tag+"-producer", func(p *Proc) {
		for i := 0; i < 20; i++ {
			p.Sleep(Duration(i%5) * 100)
			tr.log(p.Now(), "%s produce %d", tag, i)
			s.Broadcast()
			p.Yield()
		}
	})
	e.Go(tag+"-consumer", func(p *Proc) {
		for i := 0; i < 20; i++ {
			s.Wait(p)
			tr.log(p.Now(), "%s consume %d", tag, i)
		}
	})
	for i := 0; i < 10; i++ {
		i := i
		e.After(Duration(i)*137, func() { tr.log(e.Now(), "%s timer %d", tag, i) })
	}
}

// A one-partition group must reduce to the serial loop byte-for-byte: same
// trace, same final clock, same live-process count at every step.
func TestDegenerateGroupMatchesSerial(t *testing.T) {
	serial := &trace{}
	se := New()
	pingWorkload(se, serial, "w")
	sEnd := se.RunUntil(5 * time.Microsecond)

	part := &trace{}
	g := NewGroup()
	pe := g.AddPartition()
	pingWorkload(pe, part, "w")
	pEnd := g.RunUntil(5 * time.Microsecond)

	if serial.String() != part.String() {
		t.Fatalf("degenerate partition diverged from serial:\n--- serial ---\n%s\n--- partitioned ---\n%s", serial, part)
	}
	if sEnd != pEnd {
		t.Fatalf("final clock: serial %v, partitioned %v", sEnd, pEnd)
	}
	if se.Procs() != pe.Procs() {
		t.Fatalf("live procs: serial %d, partitioned %d", se.Procs(), pe.Procs())
	}
}

// crossWorkload builds an N-partition simulation where every partition runs
// a local workload and periodically fires events into its ring neighbor
// through a CrossLink. Returns the merged trace (sorted by construction:
// each partition logs into its own shard, shards are concatenated in
// partition order, and every line carries its virtual time).
func crossWorkload(nparts int, deadline Duration) string {
	g := NewGroup()
	const lat = 500 * time.Nanosecond
	engs := make([]*Engine, nparts)
	traces := make([]*trace, nparts)
	for i := range engs {
		engs[i] = g.AddPartition()
		traces[i] = &trace{}
	}
	links := make([]*CrossLink, nparts)
	for i := range engs {
		links[i] = g.Link(engs[i], engs[(i+1)%nparts], lat)
	}
	for i := range engs {
		i := i
		e, tr, link := engs[i], traces[i], links[i]
		pingWorkload(e, tr, fmt.Sprintf("p%d", i))
		e.Go(fmt.Sprintf("p%d-crosser", i), func(p *Proc) {
			for n := 0; n < 15; n++ {
				p.Sleep(Duration(300+i*37) * time.Nanosecond)
				at := p.Now() + lat
				n := n
				link.Send(at, func() {
					dst := (i + 1) % nparts
					traces[dst].log(engs[dst].Now(), "p%d cross-recv from p%d msg %d", dst, i, n)
				})
			}
		})
	}
	g.RunUntil(deadline)
	g.Shutdown()
	var all []string
	for i, tr := range traces {
		all = append(all, fmt.Sprintf("== partition %d ==", i))
		all = append(all, tr.lines...)
	}
	return strings.Join(all, "\n")
}

// Cross-partition events must merge deterministically: the trace is
// byte-identical across repeated runs and across GOMAXPROCS settings.
func TestCrossLinkDeterministic(t *testing.T) {
	ref := crossWorkload(4, 20*time.Microsecond)
	if !strings.Contains(ref, "cross-recv") {
		t.Fatal("workload produced no cross-partition deliveries")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, procs := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(procs)
		for rep := 0; rep < 3; rep++ {
			got := crossWorkload(4, 20*time.Microsecond)
			if got != ref {
				t.Fatalf("GOMAXPROCS=%d rep %d diverged:\n--- reference ---\n%s\n--- got ---\n%s", procs, rep, ref, got)
			}
		}
	}
}

// hopWorkload: a mobile process visits every partition in turn, doing local
// work on each; static local workloads run everywhere. In serial mode
// (parts == 1) the same code runs on one engine and every Hop degenerates
// to Sleep(mobileLat), so the mobile process's virtual timeline — and the
// work it interleaves with — must be identical.
func hopWorkload(parts int, counters []int64, tr *trace) Duration {
	g := NewGroup()
	g.SetMobileLatency(2 * time.Microsecond)
	engs := make([]*Engine, parts)
	for i := range engs {
		engs[i] = g.AddPartition()
	}
	for i := range counters {
		e := engs[i%parts]
		slot := &counters[i]
		e.Go(fmt.Sprintf("worker%d", i), func(p *Proc) {
			for p.Now() < 40*time.Microsecond {
				p.Sleep(700 * time.Nanosecond)
				atomic.AddInt64(slot, 1)
			}
		})
	}
	g.GoMobile(engs[0], "visitor", func(p *Proc) {
		for round := 0; round < 3; round++ {
			for i := 0; i < len(counters); i++ {
				g.Hop(p, engs[i%parts])
				tr.log(p.Now(), "visit worker %d round %d (count %d)", i, round, atomic.LoadInt64(&counters[i]))
				p.Sleep(1500 * time.Nanosecond)
			}
		}
	})
	end := g.RunUntil(50 * time.Microsecond)
	g.Shutdown()
	return end
}

// A mobile process's observed timeline must not depend on how partitions
// are drawn: 1 (serial), 2, and 4 partitions all yield the same trace.
func TestHopMatchesSerialSleep(t *testing.T) {
	const nworkers = 4
	run := func(parts int) (string, Duration, []int64) {
		counters := make([]int64, nworkers)
		tr := &trace{}
		end := hopWorkload(parts, counters, tr)
		return tr.String(), end, counters
	}
	refTrace, refEnd, refCounts := run(1)
	if !strings.Contains(refTrace, "visit worker") {
		t.Fatal("mobile visitor logged nothing")
	}
	for _, parts := range []int{2, 4} {
		got, end, counts := run(parts)
		if got != refTrace {
			t.Fatalf("%d partitions diverged from serial:\n--- serial ---\n%s\n--- partitioned ---\n%s", parts, refTrace, got)
		}
		if end != refEnd {
			t.Fatalf("%d partitions: final clock %v, serial %v", parts, end, refEnd)
		}
		for i := range counts {
			if counts[i] != refCounts[i] {
				t.Fatalf("%d partitions: worker %d did %d iterations, serial did %d", parts, i, counts[i], refCounts[i])
			}
		}
	}
}

func mustPanic(t *testing.T, substr string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, substr) {
			t.Fatalf("panic %q does not contain %q", msg, substr)
		}
	}()
	fn()
}

// The timestamp fence is the soundness guarantee of the declared lookahead:
// sending earlier than now+MinLatency must panic, not reorder.
func TestCrossLinkTimestampFence(t *testing.T) {
	g := NewGroup()
	a, b := g.AddPartition(), g.AddPartition()
	link := g.Link(a, b, 1*time.Microsecond)
	mustPanic(t, "timestamp fence", func() {
		link.Send(500*time.Nanosecond, func() {})
	})
}

// Zero-lookahead cross edges are a modeling error, not a tuning knob.
func TestCrossLinkLatencyFloor(t *testing.T) {
	g := NewGroup()
	a, b := g.AddPartition(), g.AddPartition()
	mustPanic(t, "lookahead floor", func() { g.Link(a, b, 10) })
	mustPanic(t, "lookahead floor", func() { g.SetMobileLatency(10) })
}

// Inbox overflow means a partition is outrunning the barrier — panic
// rather than hide unbounded queueing.
func TestCrossLinkInboxBound(t *testing.T) {
	g := NewGroup()
	g.SetInboxBound(8)
	a, b := g.AddPartition(), g.AddPartition()
	link := g.Link(a, b, 1*time.Microsecond)
	mustPanic(t, "inbox overflow", func() {
		for i := 0; i < 100; i++ {
			link.Send(2*time.Microsecond, func() {})
		}
	})
}

// OASIS_SIMCHECK: scheduling into the past of a partition's committed
// window start is a lookahead bug and must trip immediately.
func TestSimCheckPastWindow(t *testing.T) {
	old := simCheck
	simCheck = true
	defer func() { simCheck = old }()
	e := New()
	e.windowStart = 100
	mustPanic(t, "in the past of partition", func() { e.At(50, func() {}) })
}

// Group.Shutdown must unwind blocked processes on every partition,
// including a mobile process parked on a signal away from home.
func TestGroupShutdownUnwinds(t *testing.T) {
	g := NewGroup()
	g.SetMobileLatency(1 * time.Microsecond)
	a, b := g.AddPartition(), g.AddPartition()
	g.Link(a, b, 1*time.Microsecond) // bound the window so both sides advance
	stuck := NewSignal(b)
	b.Go("never-signaled", func(p *Proc) { stuck.Wait(p) })
	g.GoMobile(a, "migrant", func(p *Proc) {
		g.Hop(p, b)
		stuck.Wait(p) // parked on b forever
	})
	a.Go("ticker", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	g.RunUntil(10 * time.Microsecond)
	if g.Procs() == 0 {
		t.Fatal("expected blocked processes to still be live before shutdown")
	}
	g.Shutdown()
	if n := g.Procs(); n != 0 {
		t.Fatalf("%d processes leaked through Group.Shutdown", n)
	}
}

// Run (no deadline) must terminate once every partition drains even though
// conservative windows are finite.
func TestGroupRunDrains(t *testing.T) {
	g := NewGroup()
	a, b := g.AddPartition(), g.AddPartition()
	link := g.Link(a, b, 1*time.Microsecond)
	var got Duration
	a.Go("oneshot", func(p *Proc) {
		p.Sleep(3 * time.Microsecond)
		link.Send(p.Now()+time.Microsecond, func() { got = b.Now() })
	})
	end := g.Run()
	if got != 4*time.Microsecond {
		t.Fatalf("cross event ran at %v, want 4µs", got)
	}
	if end < got {
		t.Fatalf("group finished at %v, before its last event at %v", end, got)
	}
	g.Shutdown()
}

// countTimer is a pooled, closure-free cross-event payload for the alloc
// regression below; each partition gets its own so Fire never races.
type countTimer struct{ n int }

func (c *countTimer) Fire() { c.n++ }

// The barrier loop is the partitioned mode's hot path: once warm, a steady
// cross-traffic workload must run whole windows — deliver (pooled slices,
// insertion-sorted merges), the pairwise-window fixpoint, worker wakeups,
// and the sense-reversing completion barrier — without allocating.
func TestGroupBarrierAllocFree(t *testing.T) {
	g := NewGroup()
	a, b := g.AddPartition(), g.AddPartition()
	const lat = time.Microsecond
	ab := g.Link(a, b, lat)
	ba := g.Link(b, a, lat)
	toB, toA := &countTimer{}, &countTimer{}
	pinger := func(e *Engine, l *CrossLink, tm *countTimer) {
		e.Go("pinger", func(p *Proc) {
			for {
				p.Sleep(700 * time.Nanosecond)
				l.SendTimer(p.Now()+lat, tm)
			}
		})
	}
	pinger(a, ab, toB)
	pinger(b, ba, toA)
	next := 200 * time.Microsecond
	g.RunUntil(next) // warm: event free lists, ext pools, persistent workers
	allocs := testing.AllocsPerRun(20, func() {
		next += 100 * time.Microsecond
		g.RunUntil(next)
	})
	g.Shutdown()
	if toB.n == 0 || toA.n == 0 {
		t.Fatal("workload produced no cross deliveries")
	}
	if allocs > 2 {
		t.Fatalf("barrier loop allocated %.1f objects per ~100 windows, want ~0", allocs)
	}
}

// The SendTimer path shares the overflow guard with Send, and the panic
// must name both the flooded and the flooding partition.
func TestInboxOverflowSendTimer(t *testing.T) {
	g := NewGroup()
	g.SetInboxBound(4)
	a, b := g.AddPartition(), g.AddPartition()
	link := g.Link(a, b, 1*time.Microsecond)
	tm := &countTimer{}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected inbox overflow panic")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"partition 1 inbox overflow", "bound 4", "partition 0 is flooding"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic %q missing %q", msg, want)
			}
		}
	}()
	for i := 0; i < 100; i++ {
		link.SendTimer(2*time.Microsecond, tm)
	}
}

// The window-collapse panic is the barrier loop's no-progress invariant:
// it must be unreachable through correct lookahead accounting, so the test
// forges the kind of bug it exists to catch — a stale mobile registration
// whose wake bound pins every partition's window into its committed past
// while work remains.
func TestWindowCollapsePanics(t *testing.T) {
	g := NewGroup()
	g.SetMobileLatency(minCrossLatency)
	a, b := g.AddPartition(), g.AddPartition()
	g.Link(a, b, 200)
	a.Go("tick", func(p *Proc) { p.Sleep(time.Microsecond) })
	g.RunUntil(2 * time.Microsecond) // both partitions commit to 2µs
	forged := &Proc{eng: a, name: "forged", hasWake: true, wakeAt: 0, blockedIdx: -1, run: make(chan struct{})}
	g.mobile[forged] = true
	a.After(5*time.Microsecond, func() {}) // pending work that can never run
	mustPanic(t, "window collapsed", func() { g.RunUntil(10 * time.Microsecond) })
	delete(g.mobile, forged)
	g.Shutdown()
}

// Adaptive window sizing: a partition that receives no cross traffic for
// quietWindows consecutive barriers switches to horizon-bound windows, and
// the first delivery drops it straight back to conservative ones.
func TestAdaptiveQuietCounter(t *testing.T) {
	g := NewGroup()
	a, b := g.AddPartition(), g.AddPartition()
	link := g.Link(a, b, time.Microsecond)
	g.Link(b, a, time.Microsecond) // bound a's windows so many barriers run
	busy := func(e *Engine) {
		e.Go("local", func(p *Proc) {
			for i := 0; i < 50; i++ {
				p.Sleep(500 * time.Nanosecond)
			}
		})
	}
	busy(a)
	busy(b)
	g.RunUntil(100 * time.Microsecond)
	if g.quiet[b.pid] < quietWindows {
		t.Fatalf("partition %d saw no deliveries but quiet counter is %d, want >= %d",
			b.pid, g.quiet[b.pid], quietWindows)
	}
	link.Send(a.Now()+2*time.Microsecond, func() {})
	g.deliver()
	if g.quiet[b.pid] != 0 {
		t.Fatalf("delivery did not reset the quiet counter (got %d)", g.quiet[b.pid])
	}
	g.Shutdown()
}
