package sim

// Resource models a serially-shared facility with a fixed service order —
// a wire, a DMA engine, a CXL link direction. Work is admitted FIFO: each
// reservation begins when the previous one ends, so concurrent requests
// queue behind one another and total occupancy equals offered work.
type Resource struct {
	eng       *Engine
	busyUntil Duration
	busyTotal Duration // accumulated busy time, for utilization reporting
}

// NewResource returns an idle resource bound to the engine.
func NewResource(eng *Engine) *Resource { return &Resource{eng: eng} }

// Reserve books d of service time and returns the absolute virtual time at
// which the work completes. It never blocks; callers that need to wait
// should sleep until the returned time or schedule a callback there.
func (r *Resource) Reserve(d Duration) Duration {
	start := r.eng.Now()
	if r.busyUntil > start {
		start = r.busyUntil
	}
	r.busyUntil = start + d
	r.busyTotal += d
	return r.busyUntil
}

// Use books d of service time and parks the calling process until the work
// completes (queueing delay plus service time).
func (r *Resource) Use(p *Proc, d Duration) {
	done := r.Reserve(d)
	p.Sleep(done - r.eng.Now())
}

// BusyUntil returns the time at which the resource drains, or a past time if
// it is idle.
func (r *Resource) BusyUntil() Duration { return r.busyUntil }

// BusyTotal returns the accumulated service time ever booked, used to compute
// utilization over an interval.
func (r *Resource) BusyTotal() Duration { return r.busyTotal }
