// Package topo is the pod/cluster addressing scheme: one canonical string
// grammar that names every node in a topology, shared by the fault
// injector's target parser and the cluster placement layer so that a
// target string means the same node everywhere.
//
// Grammar (one node per string):
//
//	pod<P>                  a whole pod (cluster scope only)
//	host<N>                 pod host by index
//	nic<N>                  pooled NIC by device id
//	ssd<N>                  pooled SSD by device id
//	inst-<ip>               instance by IPv4 address ("inst-10.0.0.20")
//	<host>/<loop>           a driver core by its loop name ("host2/storage-be1")
//
// Any of the node forms may carry a "pod<P>/" prefix to scope it to one
// pod of a cluster: "pod1/host2", "pod0/nic3", "pod2/host0/fe". Unscoped
// strings address the local pod (Ref.Pod = -1).
//
// The grammar is intentionally closed: parsing and formatting round-trip,
// so a Ref can be carried in fault plans, placement decisions, and metric
// names without re-interpretation.
package topo

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies a node reference.
type Kind uint8

const (
	// KindInvalid is the zero Kind.
	KindInvalid Kind = iota
	// KindPod addresses a whole pod ("pod<P>").
	KindPod
	// KindHost addresses a pod host by index ("host<N>").
	KindHost
	// KindNIC addresses a pooled NIC by device id ("nic<N>").
	KindNIC
	// KindSSD addresses a pooled SSD by device id ("ssd<N>").
	KindSSD
	// KindInstance addresses an instance by IP ("inst-10.0.0.20").
	KindInstance
	// KindDriver addresses a driver core by loop name ("host2/storage-be1").
	KindDriver
)

func (k Kind) String() string {
	switch k {
	case KindPod:
		return "pod"
	case KindHost:
		return "host"
	case KindNIC:
		return "nic"
	case KindSSD:
		return "ssd"
	case KindInstance:
		return "instance"
	case KindDriver:
		return "driver"
	default:
		return "invalid"
	}
}

// Ref is one parsed node reference.
type Ref struct {
	// Pod is the pod index the node lives in, or Unscoped for a reference
	// that addresses the local pod.
	Pod int
	// Kind says what the node is.
	Kind Kind
	// Index is the host index or device id (KindHost/KindNIC/KindSSD), or
	// the pod index again for KindPod. Unused for instance/driver refs.
	Index int
	// Name carries the driver core's loop name (KindDriver) or the
	// instance's IP text (KindInstance).
	Name string
}

// Unscoped marks a Ref that does not name a pod (local-pod addressing).
const Unscoped = -1

// Parse interprets a target string against the grammar. The empty string
// is invalid.
func Parse(target string) (Ref, error) {
	r := Ref{Pod: Unscoped}
	s := target
	// Peel an optional "pod<P>/" scope. A bare "pod<P>" is a pod ref.
	if rest, ok := strings.CutPrefix(s, "pod"); ok {
		slash := strings.IndexByte(rest, '/')
		numPart := rest
		if slash >= 0 {
			numPart = rest[:slash]
		}
		p, err := strconv.Atoi(numPart)
		if err == nil && p >= 0 && numPart != "" {
			if slash < 0 {
				r.Kind = KindPod
				r.Pod, r.Index = p, p
				return r, nil
			}
			r.Pod = p
			s = rest[slash+1:]
		}
	}
	if s == "" {
		return Ref{}, fmt.Errorf("topo: empty target %q", target)
	}
	if ipText, ok := strings.CutPrefix(s, "inst-"); ok && !strings.Contains(s, "/") {
		r.Kind, r.Name = KindInstance, ipText
		return r, nil
	}
	// Driver core names are the only multi-segment form left.
	if strings.Contains(s, "/") {
		r.Kind, r.Name = KindDriver, s
		return r, nil
	}
	for _, pk := range [...]struct {
		prefix string
		kind   Kind
	}{{"host", KindHost}, {"nic", KindNIC}, {"ssd", KindSSD}} {
		if num, ok := strings.CutPrefix(s, pk.prefix); ok {
			idx, err := strconv.Atoi(num)
			if err != nil || idx < 0 {
				return Ref{}, fmt.Errorf("topo: bad target %q: %q is not a %s index", target, num, pk.prefix)
			}
			r.Kind, r.Index = pk.kind, idx
			return r, nil
		}
	}
	return Ref{}, fmt.Errorf("topo: target %q matches no node form (want pod<P>, host<N>, nic<N>, ssd<N>, inst-<ip>, or a driver core name)", target)
}

// String renders the canonical form; Parse(r.String()) round-trips.
func (r Ref) String() string {
	var b strings.Builder
	if r.Pod != Unscoped && r.Kind != KindPod {
		fmt.Fprintf(&b, "pod%d/", r.Pod)
	}
	switch r.Kind {
	case KindPod:
		fmt.Fprintf(&b, "pod%d", r.Index)
	case KindHost, KindNIC, KindSSD:
		fmt.Fprintf(&b, "%s%d", r.Kind, r.Index)
	case KindInstance:
		fmt.Fprintf(&b, "inst-%s", r.Name)
	case KindDriver:
		b.WriteString(r.Name)
	default:
		b.WriteString("invalid")
	}
	return b.String()
}

// InPod returns the same reference scoped to pod p.
func (r Ref) InPod(p int) Ref {
	r.Pod = p
	return r
}

// Local returns the same reference with the pod scope stripped, for
// resolution inside the pod it was routed to.
func (r Ref) Local() Ref {
	r.Pod = Unscoped
	return r
}

// Scope renders the metric/name prefix for pod index p: "" for Unscoped
// (standalone pods keep their historical flat names), "pod<P>/" otherwise.
// Both the obs metric tree and driver-core names use it, which is what
// makes a fault target like "pod1/host2/storage-be1" resolvable by exact
// name match.
func Scope(p int) string {
	if p == Unscoped {
		return ""
	}
	return "pod" + strconv.Itoa(p) + "/"
}

// HostName is the canonical name for host idx under scope p.
func HostName(p, idx int) string { return Scope(p) + "host" + strconv.Itoa(idx) }

// DeviceName is the canonical name for a device ("nic"/"ssd") id under
// scope p.
func DeviceName(p int, kind Kind, id int) string {
	return Scope(p) + kind.String() + strconv.Itoa(id)
}
