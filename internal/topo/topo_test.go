package topo

import "testing"

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		in   string
		want Ref
	}{
		{"host0", Ref{Pod: Unscoped, Kind: KindHost, Index: 0}},
		{"host12", Ref{Pod: Unscoped, Kind: KindHost, Index: 12}},
		{"nic3", Ref{Pod: Unscoped, Kind: KindNIC, Index: 3}},
		{"ssd1", Ref{Pod: Unscoped, Kind: KindSSD, Index: 1}},
		{"pod2", Ref{Pod: 2, Kind: KindPod, Index: 2}},
		{"pod1/host2", Ref{Pod: 1, Kind: KindHost, Index: 2}},
		{"pod0/nic7", Ref{Pod: 0, Kind: KindNIC, Index: 7}},
		{"pod3/ssd2", Ref{Pod: 3, Kind: KindSSD, Index: 2}},
		{"host2/storage-be1", Ref{Pod: Unscoped, Kind: KindDriver, Name: "host2/storage-be1"}},
		{"pod1/host2/storage-be1", Ref{Pod: 1, Kind: KindDriver, Name: "host2/storage-be1"}},
		{"host0/fe", Ref{Pod: Unscoped, Kind: KindDriver, Name: "host0/fe"}},
		{"inst-10.0.0.20", Ref{Pod: Unscoped, Kind: KindInstance, Name: "10.0.0.20"}},
		{"pod2/inst-10.0.0.20", Ref{Pod: 2, Kind: KindInstance, Name: "10.0.0.20"}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if rt := got.String(); rt != c.in {
			t.Fatalf("Parse(%q).String() = %q, does not round-trip", c.in, rt)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, in := range []string{"", "hostx", "host-1", "nic", "gpu3", "pod1/", "host"} {
		if r, err := Parse(in); err == nil {
			t.Fatalf("Parse(%q) accepted as %+v, want error", in, r)
		}
	}
}

func TestPodScopedWeirdNames(t *testing.T) {
	// "podX" with a non-numeric index is not a pod scope: it falls through
	// to the driver-name / error forms.
	r, err := Parse("podx/loop")
	if err != nil {
		t.Fatalf("podx/loop: %v", err)
	}
	if r.Kind != KindDriver || r.Name != "podx/loop" || r.Pod != Unscoped {
		t.Fatalf("podx/loop parsed as %+v", r)
	}
}

func TestScopeAndNames(t *testing.T) {
	if Scope(Unscoped) != "" {
		t.Fatal("unscoped prefix must be empty (standalone pods keep flat names)")
	}
	if Scope(2) != "pod2/" {
		t.Fatalf("Scope(2) = %q", Scope(2))
	}
	if HostName(Unscoped, 3) != "host3" || HostName(1, 3) != "pod1/host3" {
		t.Fatal("HostName wrong")
	}
	if DeviceName(0, KindNIC, 4) != "pod0/nic4" || DeviceName(Unscoped, KindSSD, 1) != "ssd1" {
		t.Fatal("DeviceName wrong")
	}
}

func TestLocalAndInPod(t *testing.T) {
	r, _ := Parse("pod1/host2")
	if r.Local().Pod != Unscoped || r.Local().Index != 2 {
		t.Fatal("Local() wrong")
	}
	u, _ := Parse("host2")
	if u.InPod(4).String() != "pod4/host2" {
		t.Fatal("InPod() wrong")
	}
}
