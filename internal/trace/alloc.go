package trace

import "math/rand"

// InstanceVec is one instance's resource request — the four dimensions the
// paper's stranding analysis tracks (§2.2): CPU cores, memory GB, NIC
// bandwidth Gbps, and SSD capacity GB.
type InstanceVec struct {
	CPU float64
	Mem float64
	NIC float64
	SSD float64
}

// HostShape is a host's capacity in the same units, modelled on the
// paper's evaluation-era cloud hosts (§2.1): ~100 cores, ~384 GB, one
// 100 Gbit NIC, six 4 TB SSDs.
type HostShape struct {
	CPU float64
	Mem float64
	NIC float64
	SSD float64
	// Device granularities, for the Fig. 2 provisioning question: NIC
	// bandwidth comes in whole NICs, SSD capacity in whole drives.
	NICUnit float64
	SSDUnit float64
}

// DefaultHostShape returns the calibration host.
func DefaultHostShape() HostShape {
	return HostShape{
		CPU: 96, Mem: 384, NIC: 100, SSD: 24000,
		NICUnit: 100, SSDUnit: 4000,
	}
}

// instanceType is a weighted template with per-instance jitter.
type instanceType struct {
	weight float64
	vec    InstanceVec
}

// The mix is calibrated so that CPU binds first on most hosts (the paper:
// "CPU cores and memory are the primary allocation bottleneck"), leaving
// the paper's stranding fractions unallocated on average:
// ~5 % CPU, ~9 % memory, ~27 % NIC bandwidth, ~33 % SSD capacity.
var defaultMix = []instanceType{
	// small general purpose (burstable web/dev boxes)
	{0.12, InstanceVec{CPU: 2, Mem: 8, NIC: 2, SSD: 0}},
	// general purpose (kube-ish 1:4 cpu:mem), moderate NIC, no local SSD
	{0.26, InstanceVec{CPU: 8, Mem: 32, NIC: 4, SSD: 0}},
	// memory optimized
	{0.14, InstanceVec{CPU: 8, Mem: 64, NIC: 4, SSD: 0}},
	// compute optimized
	{0.14, InstanceVec{CPU: 16, Mem: 32, NIC: 6, SSD: 0}},
	// storage optimized: local NVMe
	{0.25, InstanceVec{CPU: 8, Mem: 32, NIC: 8, SSD: 7500}},
	// network heavy (frontends, gateways)
	{0.09, InstanceVec{CPU: 8, Mem: 24, NIC: 25, SSD: 0}},
}

// AllocConfig drives the allocation-trace generator.
type AllocConfig struct {
	Seed int64
	// Jitter scales each drawn vector by U[1-Jitter, 1+Jitter].
	Jitter float64
}

// DefaultAllocConfig returns the calibrated defaults.
func DefaultAllocConfig() AllocConfig { return AllocConfig{Seed: 1, Jitter: 0.25} }

// Gen is a deterministic instance stream.
type Gen struct {
	rng *rand.Rand
	cfg AllocConfig
}

// NewGen creates a stream.
func NewGen(cfg AllocConfig) *Gen {
	return &Gen{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
}

// Next draws one instance request.
func (g *Gen) Next() InstanceVec {
	r := g.rng.Float64()
	acc := 0.0
	vec := defaultMix[len(defaultMix)-1].vec
	for _, t := range defaultMix {
		acc += t.weight
		if r < acc {
			vec = t.vec
			break
		}
	}
	scale := func(v float64) float64 {
		if v == 0 {
			return 0
		}
		return v * (1 - g.cfg.Jitter + 2*g.cfg.Jitter*g.rng.Float64())
	}
	return InstanceVec{CPU: scale(vec.CPU), Mem: scale(vec.Mem), NIC: scale(vec.NIC), SSD: scale(vec.SSD)}
}
