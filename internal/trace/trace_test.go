package trace

import (
	"testing"
	"time"
)

func TestBurstyTraceCalibration(t *testing.T) {
	cfg := DefaultBursty()
	tr := GenBursty(cfg)
	if len(tr.Events) == 0 {
		t.Fatal("empty trace")
	}
	// Events must be time-ordered and inside the span.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].At < tr.Events[i-1].At {
			t.Fatal("trace not time-ordered")
		}
	}
	if last := tr.Events[len(tr.Events)-1].At; last > cfg.Span {
		t.Fatalf("event at %v beyond span %v", last, cfg.Span)
	}
	// The defining property (§2.2): P99.99 near the peak target, P99 tiny.
	p9999 := tr.UtilizationAt(99.99, 10*time.Microsecond)
	p99 := tr.UtilizationAt(99, 10*time.Microsecond)
	if p9999 < cfg.PeakUtil*0.6 || p9999 > cfg.PeakUtil*1.4 {
		t.Errorf("P99.99 util = %.3f, want ≈ %.2f", p9999, cfg.PeakUtil)
	}
	if p99 > 0.05 {
		t.Errorf("P99 util = %.3f, want < 0.05 (bursty, not steady)", p99)
	}
	mean := tr.MeanUtil()
	if mean < cfg.MeanUtil/3 || mean > cfg.MeanUtil*3 {
		t.Errorf("mean util = %.4f, want ≈ %.4f", mean, cfg.MeanUtil)
	}
}

func TestBurstyDeterminism(t *testing.T) {
	a := GenBursty(DefaultBursty())
	b := GenBursty(DefaultBursty())
	if len(a.Events) != len(b.Events) {
		t.Fatal("nondeterministic generator")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatal("event divergence")
		}
	}
}

func TestRackAMatchesTable2(t *testing.T) {
	// Table 2 rack A inbound P99.99 per host: 39/30/0/23 %; aggregated
	// (over 4 hosts' combined capacity) ≈ 10 %.
	traces := RackA(time.Second)
	targets := []float64{0.39, 0.30, 0.0, 0.23}
	bucket := 10 * time.Microsecond
	for i, tr := range traces {
		got := tr.UtilizationAt(99.99, bucket)
		if targets[i] == 0 {
			if got > 0.02 {
				t.Errorf("host %d: P99.99 = %.3f, want ~0", i+1, got)
			}
			continue
		}
		if got < targets[i]*0.6 || got > targets[i]*1.4 {
			t.Errorf("host %d: P99.99 = %.3f, want ≈ %.2f", i+1, got, targets[i])
		}
	}
	agg := Merge(4*100e9, traces...)
	aggUtil := agg.UtilizationAt(99.99, bucket)
	if aggUtil < 0.05 || aggUtil > 0.20 {
		t.Errorf("aggregated P99.99 = %.3f, want ≈ 0.10 (Table 2)", aggUtil)
	}
	// The multiplexing headline: aggregate P99.99 well below any busy
	// host's own P99.99 — bursts rarely overlap.
	if aggUtil >= 0.39 {
		t.Error("aggregate utilization should be far below the busiest host's")
	}
}

func TestRackBMatchesTable2(t *testing.T) {
	traces := RackB(time.Second)
	targets := []float64{0.39, 0.75, 0.52, 0.79}
	bucket := 10 * time.Microsecond
	for i, tr := range traces {
		got := tr.UtilizationAt(99.99, bucket)
		if got < targets[i]*0.6 || got > targets[i]*1.4 {
			t.Errorf("host %d: P99.99 = %.3f, want ≈ %.2f", i+1, got, targets[i])
		}
	}
	agg := Merge(4*50e9, traces...)
	if got := agg.UtilizationAt(99.99, bucket); got < 0.10 || got > 0.35 {
		t.Errorf("aggregated P99.99 = %.3f, want ≈ 0.20", got)
	}
}

func TestBandwidthSeriesConsistency(t *testing.T) {
	tr := GenBursty(DefaultBursty())
	s := tr.BandwidthSeries(10 * time.Microsecond)
	if int64(s.Total()) != tr.TotalBytes() {
		t.Fatalf("series total %v != trace bytes %d", s.Total(), tr.TotalBytes())
	}
}

func TestMergeOrders(t *testing.T) {
	a := GenBursty(BurstyConfig{Span: 10 * time.Millisecond, LinkBps: 100e9, PeakUtil: 0.3, MeanUtil: 0.01, BurstMean: 100 * time.Microsecond, Seed: 1})
	b := GenBursty(BurstyConfig{Span: 10 * time.Millisecond, LinkBps: 100e9, PeakUtil: 0.3, MeanUtil: 0.01, BurstMean: 100 * time.Microsecond, Seed: 2})
	m := Merge(100e9, a, b)
	if len(m.Events) != len(a.Events)+len(b.Events) {
		t.Fatal("merge lost events")
	}
	for i := 1; i < len(m.Events); i++ {
		if m.Events[i].At < m.Events[i-1].At {
			t.Fatal("merged trace not ordered")
		}
	}
}

func TestGenDeterministicAndJittered(t *testing.T) {
	g1 := NewGen(DefaultAllocConfig())
	g2 := NewGen(DefaultAllocConfig())
	sawJitter := false
	for i := 0; i < 100; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatal("nondeterministic instance stream")
		}
		if a.CPU != 0 && a.CPU != 2 && a.CPU != 8 && a.CPU != 16 {
			sawJitter = true
		}
		if a.CPU < 0 || a.Mem < 0 || a.NIC < 0 || a.SSD < 0 {
			t.Fatal("negative resource draw")
		}
	}
	if !sawJitter {
		t.Fatal("jitter never applied")
	}
}
