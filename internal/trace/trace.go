// Package trace generates the synthetic workloads that stand in for the
// paper's proprietary Azure traces (§2.2, §5.2):
//
//   - Bursty per-host packet traces with calibrated tail utilization. The
//     paper's key observation (Fig. 3, Table 2) is that NIC traffic is
//     extremely bursty: P99 utilization under a few percent while P99.99
//     reaches 23-79%. The ON/OFF generator reproduces exactly that: rare
//     bursts at a calibrated peak rate separated by long idle gaps.
//   - Instance allocation traces with calibrated resource-vector mixes,
//     used by the stranding simulation (Fig. 2).
//
// Generators are deterministic given a seed; calibration targets are
// checked by tests, not assumed.
package trace

import (
	"math/rand"
	"sort"
	"time"

	"oasis/internal/metrics"
	"oasis/internal/sim"
)

// PacketEvent is one packet arrival in a trace.
type PacketEvent struct {
	At   sim.Duration
	Size int // wire bytes (Ethernet frame)
}

// PacketTrace is a time-ordered arrival sequence.
type PacketTrace struct {
	Events  []PacketEvent
	LinkBps float64 // the NIC line rate the utilizations are relative to
	Span    sim.Duration
}

// BurstyConfig calibrates an ON/OFF trace.
type BurstyConfig struct {
	Span    sim.Duration // trace length
	LinkBps float64      // line rate in bits/s (100 Gbit default)
	// PeakUtil is the burst-rate fraction of line rate — the value the
	// trace's P99.99 10 µs-bucket utilization lands on (Table 2).
	PeakUtil float64
	// MeanUtil is the long-run average utilization; the ON duty cycle is
	// MeanUtil/PeakUtil. Keep it ≲ PeakUtil/100 so P99 stays near zero, as
	// in the paper's racks.
	MeanUtil float64
	// BurstMean is the mean ON period (exponential).
	BurstMean sim.Duration
	// Seed fixes the generator.
	Seed int64
}

// DefaultBursty models rack A's host 1 (inbound): P99.99 ≈ 39 %, P99 < 3 %.
func DefaultBursty() BurstyConfig {
	return BurstyConfig{
		Span:      time.Second,
		LinkBps:   100e9,
		PeakUtil:  0.39,
		MeanUtil:  0.0026,
		BurstMean: 120 * time.Microsecond,
		Seed:      1,
	}
}

// packetSizes is a datacenter-ish mix: many MTU frames (storage/RDMA-like
// bulk) plus small RPCs.
var packetSizes = []struct {
	size   int
	weight float64
}{
	{1500, 0.55},
	{1024, 0.10},
	{512, 0.10},
	{256, 0.10},
	{128, 0.05},
	{90, 0.10},
}

func pickSize(rng *rand.Rand) int {
	r := rng.Float64()
	acc := 0.0
	for _, e := range packetSizes {
		acc += e.weight
		if r < acc {
			return e.size
		}
	}
	return 1500
}

// GenBursty produces a calibrated ON/OFF trace.
func GenBursty(cfg BurstyConfig) *PacketTrace {
	if cfg.PeakUtil <= 0 || cfg.Span <= 0 {
		return &PacketTrace{LinkBps: cfg.LinkBps, Span: cfg.Span}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tr := &PacketTrace{LinkBps: cfg.LinkBps, Span: cfg.Span}
	duty := cfg.MeanUtil / cfg.PeakUtil
	if duty > 1 {
		duty = 1
	}
	idleMean := sim.Duration(float64(cfg.BurstMean) * (1 - duty) / duty)
	burstBps := cfg.PeakUtil * cfg.LinkBps
	t := sim.Duration(0)
	exp := func(mean sim.Duration) sim.Duration {
		return sim.Duration(rng.ExpFloat64() * float64(mean))
	}
	for t < cfg.Span {
		t += exp(idleMean)
		burstEnd := t + exp(cfg.BurstMean)
		for t < burstEnd && t < cfg.Span {
			size := pickSize(rng)
			tr.Events = append(tr.Events, PacketEvent{At: t, Size: size})
			// Next arrival paced so the burst sustains burstBps.
			t += sim.Duration(float64(size*8) / burstBps * float64(time.Second))
		}
		t = burstEnd
	}
	return tr
}

// BandwidthSeries bins the trace into bucket-sized bandwidth samples
// (bytes per bucket), the form Figure 3 plots.
func (tr *PacketTrace) BandwidthSeries(bucket sim.Duration) *metrics.Series {
	s := metrics.NewSeries(bucket)
	for _, e := range tr.Events {
		s.Add(e.At, float64(e.Size))
	}
	return s
}

// UtilizationAt returns the P-th percentile utilization over bucket-sized
// windows spanning the whole trace (Table 2's metric: 10 µs buckets,
// P99.99).
func (tr *PacketTrace) UtilizationAt(p float64, bucket sim.Duration) float64 {
	if tr.Span <= 0 || tr.LinkBps <= 0 {
		return 0
	}
	s := tr.BandwidthSeries(bucket)
	n := int(tr.Span / bucket)
	bytesAtP := s.PercentileOverBins(p, n)
	capacity := tr.LinkBps / 8 * bucket.Seconds()
	return bytesAtP / capacity
}

// TotalBytes sums the trace's wire bytes.
func (tr *PacketTrace) TotalBytes() int64 {
	var n int64
	for _, e := range tr.Events {
		n += int64(e.Size)
	}
	return n
}

// MeanUtil returns the trace's long-run average utilization.
func (tr *PacketTrace) MeanUtil() float64 {
	if tr.Span <= 0 || tr.LinkBps <= 0 {
		return 0
	}
	return float64(tr.TotalBytes()*8) / (tr.LinkBps * tr.Span.Seconds())
}

// Merge combines traces (e.g. aggregate traffic of a rack) into one
// time-ordered trace relative to the same link rate.
func Merge(linkBps float64, traces ...*PacketTrace) *PacketTrace {
	out := &PacketTrace{LinkBps: linkBps}
	for _, tr := range traces {
		out.Events = append(out.Events, tr.Events...)
		if tr.Span > out.Span {
			out.Span = tr.Span
		}
	}
	sort.Slice(out.Events, func(i, j int) bool {
		return out.Events[i].At < out.Events[j].At
	})
	return out
}

// RackA returns the four-host inbound trace set matching Table 2's rack A
// (100 Gbit NICs; P99.99 utilizations 39/30/0/23 %).
func RackA(span sim.Duration) []*PacketTrace {
	targets := []float64{0.39, 0.30, 0.0, 0.23}
	out := make([]*PacketTrace, len(targets))
	for i, tgt := range targets {
		cfg := DefaultBursty()
		cfg.Span = span
		cfg.PeakUtil = tgt
		cfg.MeanUtil = tgt / 150 // duty ≈ 0.67 %: P99 idle, P99.99 at peak
		cfg.Seed = int64(i + 1)
		out[i] = GenBursty(cfg)
	}
	return out
}

// RackB returns Table 2's rack B inbound traces (50 Gbit NICs; P99.99
// utilizations 39/75/52/79 %).
func RackB(span sim.Duration) []*PacketTrace {
	targets := []float64{0.39, 0.75, 0.52, 0.79}
	out := make([]*PacketTrace, len(targets))
	for i, tgt := range targets {
		cfg := DefaultBursty()
		cfg.Span = span
		cfg.LinkBps = 50e9
		cfg.PeakUtil = tgt
		cfg.MeanUtil = tgt / 150
		cfg.Seed = int64(i + 101)
		out[i] = GenBursty(cfg)
	}
	return out
}
