package bufpool

import "testing"

func TestGetLenAndClassCap(t *testing.T) {
	p := New()
	for _, n := range []int{1, 63, 64, 65, 100, 1 << 12, 1 << 16} {
		buf := p.Get(n)
		if len(buf) != n {
			t.Fatalf("Get(%d): len=%d", n, len(buf))
		}
		if c := cap(buf); c&(c-1) != 0 || c < n {
			t.Fatalf("Get(%d): cap=%d not a covering power of two", n, c)
		}
	}
}

func TestRecycleRoundTrip(t *testing.T) {
	p := New()
	a := p.Get(100)
	a[0] = 0xAB
	p.Put(a)
	b := p.Get(70) // same 128 B class
	if p.Hits != 1 {
		t.Fatalf("expected a pool hit, got %d", p.Hits)
	}
	if cap(b) != 128 {
		t.Fatalf("recycled cap=%d, want 128", cap(b))
	}
	// Same class, different length: the recycled buffer is re-sliced.
	if len(b) != 70 {
		t.Fatalf("recycled len=%d, want 70", len(b))
	}
}

func TestOversizeAndZeroFallThrough(t *testing.T) {
	p := New()
	if buf := p.Get(0); buf != nil {
		t.Fatalf("Get(0) = %v, want nil", buf)
	}
	big := p.Get(1<<16 + 1)
	if len(big) != 1<<16+1 {
		t.Fatalf("oversize len=%d", len(big))
	}
	p.Put(big) // dropped: cap exceeds the pooled range
	if got := p.Get(1<<16 + 1); &got[0] == &big[0] {
		t.Fatal("oversize buffer was pooled")
	}
}

func TestPutForeignSliceDropped(t *testing.T) {
	p := New()
	p.Put(make([]byte, 100)) // cap 100: not a class size, dropped
	if buf := p.Get(100); cap(buf) != 128 {
		t.Fatalf("foreign slice entered the pool: cap=%d", cap(buf))
	}
	if p.Hits != 0 {
		t.Fatalf("unexpected hit count %d", p.Hits)
	}
	p.Put(nil) // must not panic
}

func TestPerClassCapBounded(t *testing.T) {
	p := New()
	bufs := make([][]byte, 0, perClassCap+10)
	for i := 0; i < perClassCap+10; i++ {
		bufs = append(bufs, make([]byte, 64, 64))
	}
	for _, b := range bufs {
		p.Put(b)
	}
	if n := len(p.free[0]); n != perClassCap {
		t.Fatalf("class 0 holds %d buffers, want cap %d", n, perClassCap)
	}
}

func TestClassFor(t *testing.T) {
	cases := []struct{ n, class int }{
		{1, 0}, {64, 0}, {65, 1}, {128, 1}, {129, 2},
		{1 << 16, nClasses - 1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Fatalf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
	}
	if classFor(0) != -1 || classFor(1<<16+1) != -1 {
		t.Fatal("out-of-range sizes must return -1")
	}
}

func BenchmarkGetPut(b *testing.B) {
	p := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := p.Get(1500)
		p.Put(buf)
	}
}
