// Package bufpool provides a size-classed free list for the simulation
// datapath's short-lived byte buffers: per-packet copies, cache-line
// snapshots, and RPC scratch space.
//
// A Pool is deliberately NOT safe for concurrent use. Each sim.Engine owns
// one (Engine.Bufs), and the engine is cooperatively single-threaded —
// exactly one process or callback runs at a time — so pool operations can
// never interleave. Parallel experiment runs each construct their own
// engine and therefore their own pool; nothing is shared between workers.
//
// Get returns a buffer whose contents are unspecified: callers must write
// every byte they later read. All adopted call sites immediately copy over
// the full length, so recycled garbage is never observable and runs remain
// byte-identical to the allocating implementation.
package bufpool

import "math/bits"

const (
	minShift = 6  // 64 B: one CXL cache line
	maxShift = 16 // 64 KiB: largest pooled buffer (bulk DMA scratch)
	nClasses = maxShift - minShift + 1

	// perClassCap bounds each class's free list so a transient burst (a
	// deep retransmit queue, a flood of in-flight lines) cannot pin an
	// unbounded amount of memory for the rest of the run.
	perClassCap = 1024
)

// Pool is a size-classed buffer free list. The zero value is unusable; call
// New.
type Pool struct {
	free [nClasses][][]byte

	// Stats, exposed for tests and diagnostics.
	Gets, Puts, Hits int64
}

// New returns an empty pool.
func New() *Pool { return &Pool{} }

// classFor returns the smallest size class holding n bytes, or -1 when n is
// out of the pooled range.
func classFor(n int) int {
	if n <= 0 || n > 1<<maxShift {
		return -1
	}
	c := bits.Len(uint(n-1)) - minShift
	if c < 0 {
		c = 0
	}
	return c
}

// Get returns a buffer of length n. Buffers beyond the pooled size range
// fall through to the allocator. The contents are unspecified.
func (p *Pool) Get(n int) []byte {
	p.Gets++
	c := classFor(n)
	if c < 0 {
		if n <= 0 {
			return nil
		}
		return make([]byte, n)
	}
	if s := p.free[c]; len(s) > 0 {
		buf := s[len(s)-1]
		s[len(s)-1] = nil
		p.free[c] = s[:len(s)-1]
		p.Hits++
		return buf[:n]
	}
	return make([]byte, n, 1<<(c+minShift))
}

// Put returns a buffer to the pool. Only buffers whose capacity is an exact
// class size are kept (i.e. buffers that came from Get); anything else —
// including nil and foreign slices — is dropped, so Put is always safe to
// call on a buffer whose provenance is unknown. The caller must not touch
// the buffer afterwards.
func (p *Pool) Put(buf []byte) {
	p.Puts++
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 || c < 1<<minShift || c > 1<<maxShift {
		return
	}
	cl := bits.Len(uint(c)) - 1 - minShift
	if len(p.free[cl]) >= perClassCap {
		return
	}
	p.free[cl] = append(p.free[cl], buf[:c])
}
