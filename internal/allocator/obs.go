package allocator

import (
	"fmt"

	"oasis/internal/obs"
)

// RegisterObs registers the allocator's decision counters, its view of
// device health/load, and its control-channel delivery latencies under
// prefix/* (conventionally alloc). It also hooks the allocator to the
// registry's trace ring so every decision leaves an event.
func (a *Allocator) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/placements", func() int64 { return a.Placements })
	r.Counter(prefix+"/failovers", func() int64 { return a.Failovers })
	r.Counter(prefix+"/aer_failovers", func() int64 { return a.AERFailovers })
	r.Counter(prefix+"/health/nic_evacs", func() int64 { return a.HealthNICEvacs })
	r.Counter(prefix+"/health/ssd_evacs", func() int64 { return a.HealthSSDEvacs })
	r.Counter(prefix+"/migrations", func() int64 { return a.Migrations })
	r.Counter(prefix+"/rebalances", func() int64 { return a.Rebalances })
	r.Counter(prefix+"/lease_expiries", func() int64 { return a.LeaseExpiries })
	r.Counter(prefix+"/ssd_lease_expiries", func() int64 { return a.SSDLeaseExpiries })
	r.Counter(prefix+"/recovery/ssd_failovers", func() int64 { return a.SSDFailovers })
	r.Counter(prefix+"/recovery/host_deaths", func() int64 { return a.HostDeaths })
	r.Counter(prefix+"/recovery/lease_rebuilds", func() int64 { return a.LeaseReconstructions })
	r.Counter(prefix+"/recovery/propose_retries", func() int64 { return a.ProposeRetries })
	r.Counter(prefix+"/recovery/propose_drops", func() int64 { return a.ProposeDrops })
	r.Counter(prefix+"/recovery/assign_resends", func() int64 { return a.AssignResends })
	r.Histogram(prefix+"/recovery/detect_lat", a.recoveryDetect)
	for _, id := range a.beOrder {
		id := id
		npfx := fmt.Sprintf("%s/nic/nic%d", prefix, id)
		r.Gauge(npfx+"/load_bps", func() float64 { return a.NICLoad(id) })
		r.Gauge(npfx+"/up", func() float64 { return boolGauge(a.NICUp(id)) })
		r.Gauge(npfx+"/quarantined", func() float64 { return boolGauge(a.NICQuarantined(id)) })
	}
	for _, id := range a.ssdOrder {
		id := id
		spfx := fmt.Sprintf("%s/ssd/ssd%d", prefix, id)
		r.Gauge(spfx+"/up", func() float64 { return boolGauge(a.SSDUp(id)) })
		r.Gauge(spfx+"/queue_depth", func() float64 { return float64(a.SSDQueueDepth(id)) })
		r.Gauge(spfx+"/quarantined", func() float64 { return boolGauge(a.SSDQuarantined(id)) })
	}
	for _, hostID := range a.feOrder {
		if h := a.feLinks[hostID].InLatency(); h != nil {
			r.Histogram(fmt.Sprintf("%s/chan/host%d/rx_lat", prefix, hostID), h)
		}
	}
	for _, id := range a.beOrder {
		if h := a.beLinks[id].InLatency(); h != nil {
			r.Histogram(fmt.Sprintf("%s/chan/nic%d/rx_lat", prefix, id), h)
		}
	}
	for _, id := range a.ssdOrder {
		if h := a.ssdLinks[id].InLatency(); h != nil {
			r.Histogram(fmt.Sprintf("%s/chan/ssd%d/rx_lat", prefix, id), h)
		}
	}
	a.events = r.Events
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
