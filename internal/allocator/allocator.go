// Package allocator implements Oasis's pod-wide allocator (§3.5): the
// logically-centralized control plane that maps PCIe devices to instances,
// ingests 100 ms telemetry from backend drivers, places new instances
// (host-local first, then least-loaded), and orchestrates NIC failover and
// graceful migration. It is never on the data path.
//
// The allocator converses with every frontend and backend driver over the
// datapath's message channels, speaking the shared control protocol
// (core.ControlMsg) that all device engines use. NICs and SSDs share the
// telemetry/lease path: host failures are inferred from missing telemetry
// (lease expiry), NIC failures also arrive as explicit link-down reports.
// A failed NIC triggers transparent failover (§3.3.3); a failed SSD triggers
// the same mechanism applied to storage — volumes re-bind onto the pod's
// backup drive under a bumped fencing epoch, or are declared lost when no
// backup exists (§3.4's error propagation). When every lease-tracked device
// on a host expires in the same pass, the host is presumed dead and all of
// its engines have been re-placed onto survivors. State can be replicated
// across peers with the raft package (see Replicate), matching §3.5's
// "replicated with Raft" design; a Propose that fails (e.g. mid-election
// after a leader crash) is retried with exponential backoff, and an
// allocator that was itself off the air rebuilds its leases from the next
// telemetry window instead of mass-expiring survivors.
package allocator

import (
	"fmt"
	"sort"
	"time"

	"oasis/internal/core"
	"oasis/internal/host"
	"oasis/internal/metrics"
	"oasis/internal/netstack"
	"oasis/internal/obs"
	"oasis/internal/sim"
)

// Config tunes the allocator.
type Config struct {
	// LeaseTimeout is how long a device may go silent (no telemetry) before
	// its host is presumed dead: a NIC's instances are failed over, an SSD
	// is marked down.
	LeaseTimeout sim.Duration
	// PollCost is the allocator core's per-iteration cost.
	PollCost sim.Duration
	// Burst bounds messages drained per link per iteration.
	Burst int

	// Rebalance enables the §6 "load balancing policies" extension: when a
	// NIC's telemetry-reported load exceeds RebalanceHigh (fraction of
	// capacity) and another non-backup NIC sits below RebalanceLow, one
	// instance is gracefully migrated from hot to cold. The paper only
	// rebalances at instance start and failure; this policy exploits the
	// fine-grained telemetry it already collects.
	Rebalance      bool
	RebalanceHigh  float64
	RebalanceLow   float64
	RebalanceEvery sim.Duration

	// AERFailThreshold is the per-telemetry-window count of uncorrectable
	// PCIe AER errors (§3.5's health metrics) above which a NIC is treated
	// as failing and proactively failed over — before the link even drops.
	// 0 disables the policy.
	AERFailThreshold uint16

	// Health enables the gray-failure scorer: per-telemetry-window
	// peer-relative outlier detection on the soft signals fail-stop
	// machinery never sees — a NIC's soft error/drop count, a drive's mean
	// request service latency. A device whose metric exceeds HealthFactor
	// times the mean of its healthy peers (and an absolute floor, so idle
	// pods don't flag noise) for HealthWindows consecutive windows is
	// quarantined and proactively evacuated: volumes re-bind off a suspect
	// drive under a bumped epoch, instances migrate off a suspect NIC.
	// The link stays up throughout — this is the degraded-mode complement
	// to the fail-stop lease/link-down paths.
	Health bool
	// HealthWindows is how many consecutive suspect windows are required
	// before evacuation (debounce against one-window blips).
	HealthWindows int
	// HealthFactor is the outlier multiplier over the healthy-peer mean.
	HealthFactor float64
	// HealthErrFloor is the minimum per-window soft error count for a NIC
	// to be considered suspect at all.
	HealthErrFloor uint16
	// HealthLatFloorUs is the minimum mean service latency (µs) for a
	// drive to be considered suspect at all; set it above the loaded
	// latency of a healthy drive.
	HealthLatFloorUs uint16
}

// DefaultConfig returns production-flavoured defaults (§3.5: telemetry
// every 100 ms; three missed records expire the lease).
func DefaultConfig() Config {
	return Config{
		LeaseTimeout:     300 * time.Millisecond,
		PollCost:         200 * time.Nanosecond,
		Burst:            32,
		RebalanceHigh:    0.80,
		RebalanceLow:     0.50,
		RebalanceEvery:   500 * time.Millisecond,
		AERFailThreshold: 16,
		// Gray-failure scoring is opt-in (Health: false): the floors below
		// are sane defaults for deployments that switch it on.
		HealthWindows:    3,
		HealthFactor:     4,
		HealthErrFloor:   8,
		HealthLatFloorUs: 400,
	}
}

// idleCap bounds the allocator core's idle backoff.
const idleCap = 20 * time.Microsecond

// NICInfo describes one pod NIC to the allocator.
type NICInfo struct {
	ID          uint16
	HostID      int
	CapacityBps float64
	Backup      bool // §3.3.3: the reserved per-pod backup NIC
}

// SSDInfo describes one pod SSD to the allocator.
type SSDInfo struct {
	ID     uint16
	HostID int
	Backup bool // the reserved per-pod backup drive (mirrors NICInfo.Backup)
}

type nicState struct {
	info       NICInfo
	up         bool
	lastSeen   sim.Duration
	loadBps    float64 // from telemetry
	queueDepth uint16  // from telemetry
	demand     float64 // sum of placed instances' demands
	errs       uint16  // last window's soft error/drop count (gray signal)
	suspect    int     // consecutive windows the health scorer flagged this NIC
	quarantine bool    // health scorer evacuated this NIC; skip for placement
}

type ssdState struct {
	info       SSDInfo
	up         bool
	lastSeen   sim.Duration
	loadBps    float64
	queueDepth uint16
	latUs      uint16 // last window's mean service latency in µs (gray signal)
	suspect    int    // consecutive windows the health scorer flagged this drive
	quarantine bool   // health scorer evacuated this drive
	// epoch fences a drive's generation of ownership: it is bumped on every
	// failover away from the drive, and storage frontends stamp it into
	// requests so a zombie backend's late completions are rejected.
	epoch uint16
}

type instState struct {
	ip      netstack.IP
	hostID  int
	demand  float64
	primary uint16
	backup  uint16
}

// Allocator is the control-plane service. Run it with Start on its host.
type Allocator struct {
	h   *host.Host
	cfg Config

	feLinks  map[int]*core.LinkEnd // by host id
	feOrder  []int
	beLinks  map[uint16]*core.LinkEnd // by NIC id
	beOrder  []uint16
	ssdLinks map[uint16]*core.LinkEnd // by SSD id
	ssdOrder []uint16
	sfeLinks map[int]*core.LinkEnd // storage-frontend control links, by host id
	sfeOrder []int
	nics     map[uint16]*nicState
	ssds     map[uint16]*ssdState
	insts    map[netstack.IP]*instState

	// instDemand lets the deployment declare expected per-instance NIC
	// bandwidth (the "instance type", §3.1); default if absent.
	instDemand    map[netstack.IP]float64
	defaultDemand float64

	cmds       *sim.Queue[func(p *sim.Proc)]
	rep        replicator
	timersInit bool
	nextLease  sim.Duration
	nextRebal  sim.Duration
	lastPoll   sim.Duration
	driver     *core.Driver

	// events receives decision trace events when RegisterObs hooked the
	// allocator to a pod trace ring (nil-safe otherwise).
	events *obs.TraceRing

	// recoveryDetect records how long failures went unnoticed before a lease
	// expiry caught them (detection latency, the first leg of recovery time).
	recoveryDetect *metrics.Histogram

	// Stats.
	Placements           int64
	Failovers            int64
	SSDFailovers         int64
	LeaseExpiries        int64
	SSDLeaseExpiries     int64
	Migrations           int64
	Rebalances           int64
	AERFailovers         int64
	HealthNICEvacs       int64
	HealthSSDEvacs       int64
	HostDeaths           int64
	LeaseReconstructions int64
	ProposeRetries       int64
	ProposeDrops         int64
	AssignResends        int64
}

// replicator abstracts the Raft log: Propose blocks conceptually until the
// command is committed, then the allocator applies it. The nullReplicator
// commits immediately (single-node operation).
type replicator interface {
	Propose(p *sim.Proc, cmd []byte) bool
}

type nullReplicator struct{}

func (nullReplicator) Propose(*sim.Proc, []byte) bool { return true }

// New creates an allocator hosted on h.
func New(h *host.Host, cfg Config) *Allocator {
	return &Allocator{
		h:              h,
		cfg:            cfg,
		feLinks:        make(map[int]*core.LinkEnd),
		beLinks:        make(map[uint16]*core.LinkEnd),
		ssdLinks:       make(map[uint16]*core.LinkEnd),
		sfeLinks:       make(map[int]*core.LinkEnd),
		nics:           make(map[uint16]*nicState),
		ssds:           make(map[uint16]*ssdState),
		insts:          make(map[netstack.IP]*instState),
		instDemand:     make(map[netstack.IP]float64),
		defaultDemand:  1e9, // 8 Gbit/s default ask
		cmds:           sim.NewQueue[func(p *sim.Proc)](h.Eng),
		rep:            nullReplicator{},
		recoveryDetect: &metrics.Histogram{},
	}
}

// Replicate installs a Raft-backed replicator (§3.5). Decisions are
// proposed to the log before being applied and broadcast.
func (a *Allocator) Replicate(r interface {
	Propose(p *sim.Proc, cmd []byte) bool
}) {
	a.rep = r
}

// AddNIC registers a pod NIC and its control link to the backend driver.
func (a *Allocator) AddNIC(info NICInfo, link *core.LinkEnd) {
	a.nics[info.ID] = &nicState{info: info, up: true}
	a.beLinks[info.ID] = link
	a.beOrder = append(a.beOrder, info.ID)
}

// AddSSD registers a pod SSD and its control link to the storage backend
// driver. Drives share the NICs' telemetry/lease path; expiry or explicit
// failure triggers storage failover onto the pod's backup drive (if any) —
// the §3.3.3 backup-NIC mechanism applied to storage.
func (a *Allocator) AddSSD(info SSDInfo, link *core.LinkEnd) {
	a.ssds[info.ID] = &ssdState{info: info, up: true}
	a.ssdLinks[info.ID] = link
	a.ssdOrder = append(a.ssdOrder, info.ID)
}

// AddFrontend registers a pod host's frontend control link.
func (a *Allocator) AddFrontend(hostID int, link *core.LinkEnd) {
	a.feLinks[hostID] = link
	a.feOrder = append(a.feOrder, hostID)
}

// AddStorageFrontend registers a pod host's storage-frontend control link,
// the channel over which SSD failover commands are broadcast.
func (a *Allocator) AddStorageFrontend(hostID int, link *core.LinkEnd) {
	a.sfeLinks[hostID] = link
	a.sfeOrder = append(a.sfeOrder, hostID)
}

// RemoveNIC forgets a NIC and its control link (topology removal). The
// caller guarantees no instance is still placed on it; the device simply
// stops existing for placement, failover, and leases.
func (a *Allocator) RemoveNIC(id uint16) {
	delete(a.nics, id)
	delete(a.beLinks, id)
	a.beOrder = removeID(a.beOrder, id)
}

// RemoveSSD forgets a drive and its control link (topology removal).
func (a *Allocator) RemoveSSD(id uint16) {
	delete(a.ssds, id)
	delete(a.ssdLinks, id)
	a.ssdOrder = removeID(a.ssdOrder, id)
}

// RemoveFrontend forgets a host's frontend control link (host removal).
func (a *Allocator) RemoveFrontend(hostID int) {
	delete(a.feLinks, hostID)
	a.feOrder = removeHostID(a.feOrder, hostID)
	delete(a.sfeLinks, hostID)
	a.sfeOrder = removeHostID(a.sfeOrder, hostID)
}

// ReleaseInstance forgets an instance's placement (cross-pod migration or
// teardown): its demand is returned to its NIC and it no longer
// participates in rebalancing or failover fan-out.
func (a *Allocator) ReleaseInstance(ip netstack.IP) {
	st := a.insts[ip]
	if st == nil {
		return
	}
	if ns := a.nics[st.primary]; ns != nil {
		ns.demand -= st.demand
	}
	delete(a.insts, ip)
}

// InstancesOn counts instances whose primary or backup assignment is the
// NIC — the "in use" check a topology-level NIC removal must clear.
func (a *Allocator) InstancesOn(nic uint16) int {
	n := 0
	for _, st := range a.insts {
		if st.primary == nic || st.backup == nic {
			n++
		}
	}
	return n
}

// Instances returns the number of placed instances.
func (a *Allocator) Instances() int { return len(a.insts) }

func removeID(s []uint16, id uint16) []uint16 {
	for i, v := range s {
		if v == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

func removeHostID(s []int, id int) []int {
	for i, v := range s {
		if v == id {
			return append(s[:i], s[i+1:]...)
		}
	}
	return s
}

// SetInstanceDemand declares an instance type's expected NIC bandwidth in
// bytes/s, used by placement (§3.5 "static policies such as instance types").
func (a *Allocator) SetInstanceDemand(ip netstack.IP, bps float64) {
	a.instDemand[ip] = bps
}

// BackupNIC returns the reserved backup NIC id (0 if none configured).
func (a *Allocator) BackupNIC() uint16 {
	for _, id := range a.beOrder {
		if a.nics[id].info.Backup {
			return id
		}
	}
	return 0
}

// BackupSSD returns the reserved backup drive id (0 if none configured).
func (a *Allocator) BackupSSD() uint16 {
	for _, id := range a.ssdOrder {
		if a.ssds[id].info.Backup {
			return id
		}
	}
	return 0
}

// Migrate asks the allocator to gracefully move an instance to a NIC
// (§3.3.4); used by load-balancing policies and experiments.
func (a *Allocator) Migrate(ip netstack.IP, newNIC uint16) {
	a.cmds.Push(func(p *sim.Proc) { a.migrateAttempt(p, ip, newNIC, 0) })
}

func (a *Allocator) migrateAttempt(p *sim.Proc, ip netstack.IP, newNIC uint16, attempt int) {
	st, ok := a.insts[ip]
	if !ok {
		return
	}
	if !a.rep.Propose(p, encodeCmd('M', uint32(ip), newNIC)) {
		a.deferRetry(attempt, func(p *sim.Proc, attempt int) { a.migrateAttempt(p, ip, newNIC, attempt) })
		return
	}
	old := st.primary
	st.primary = newNIC
	a.shiftDemand(old, newNIC, st.demand)
	a.sendToFE(p, st.hostID, ctlMsg{op: core.CtlMigrate, ip: ip, dev: newNIC})
	a.Migrations++
	a.events.Emit(p.Now(), "alloc", fmt.Sprintf("migrate ip=%v nic%d -> nic%d", ip, old, newNIC))
}

// Propose retry policy: a replicated decision that fails to commit (e.g.
// the local raft node lost leadership mid-election) is retried with
// exponential backoff rather than silently dropped. The retry re-runs the
// full decision function against fresh state, so a retry that has become
// moot (instance gone, device back up) degenerates to a no-op.
const (
	proposeMaxRetries = 10
	proposeRetryBase  = 25 * time.Millisecond
	proposeRetryCap   = 200 * time.Millisecond
)

// deferRetry schedules attempt+1 of a failed replicated decision after an
// exponential backoff, bounded by proposeMaxRetries.
func (a *Allocator) deferRetry(attempt int, fn func(p *sim.Proc, attempt int)) {
	if attempt >= proposeMaxRetries {
		a.ProposeDrops++
		return
	}
	a.ProposeRetries++
	d := proposeRetryBase
	for i := 0; i < attempt && d < proposeRetryCap; i++ {
		d *= 2
	}
	if d > proposeRetryCap {
		d = proposeRetryCap
	}
	a.h.Eng.After(d, func() {
		a.cmds.Push(func(p *sim.Proc) { fn(p, attempt+1) })
	})
}

// LoopName implements core.EngineLoop.
func (a *Allocator) LoopName() string { return a.h.Name + "/allocator" }

// Driver returns the core the allocator polls on (nil before Start/Join).
func (a *Allocator) Driver() *core.Driver { return a.driver }

// Join attaches the allocator to an already-created driver core. Must
// precede Start.
func (a *Allocator) Join(d *core.Driver) {
	if a.driver != nil {
		panic("allocator: already has a driver core")
	}
	a.driver = d
	d.Attach(a)
}

// Start launches the allocator's core. No-op if it joined a shared core.
func (a *Allocator) Start() {
	if a.driver != nil {
		a.driver.Start()
		return
	}
	a.driver = core.NewDriver(a.h, a.LoopName(), core.DriverConfig{
		LoopCost: a.cfg.PollCost, IdleBackoff: idleCap,
	})
	a.driver.Attach(a)
	a.driver.Start()
}

// PollOnce implements core.EngineLoop: one pass over deferred commands,
// frontend requests, backend telemetry (NIC and SSD), and the lease and
// rebalance windows.
func (a *Allocator) PollOnce(p *sim.Proc) int {
	if !a.timersInit {
		a.timersInit = true
		a.nextLease = p.Now() + a.cfg.LeaseTimeout
		a.nextRebal = p.Now() + a.cfg.RebalanceEvery
	}
	// Lease reconstruction (§3.5 applied to allocator recovery): if the
	// allocator itself was off the air longer than a lease (host crash,
	// leader re-election), every device's lastSeen is stale through no fault
	// of the device. Grant a one-window grace instead of mass-expiring the
	// pod; the next telemetry window rebuilds true liveness.
	if a.lastPoll > 0 && p.Now()-a.lastPoll > a.cfg.LeaseTimeout {
		for _, id := range a.beOrder {
			if ns := a.nics[id]; ns.lastSeen > 0 {
				ns.lastSeen = p.Now()
			}
		}
		for _, id := range a.ssdOrder {
			if ds := a.ssds[id]; ds.lastSeen > 0 {
				ds.lastSeen = p.Now()
			}
		}
		a.nextLease = p.Now() + a.cfg.LeaseTimeout
		a.LeaseReconstructions++
		a.events.Emit(p.Now(), "alloc", fmt.Sprintf("lease state reconstructed after %v gap", p.Now()-a.lastPoll))
	}
	a.lastPoll = p.Now()
	progress := 0
	for i := 0; i < a.cfg.Burst; i++ {
		cmd, ok := a.cmds.TryPop()
		if !ok {
			break
		}
		cmd(p)
		progress++
	}
	for _, hostID := range a.feOrder {
		l := a.feLinks[hostID]
		for i := 0; i < a.cfg.Burst; i++ {
			payload, ok := l.Poll(p)
			if !ok {
				break
			}
			a.handleFE(p, hostID, payload)
			progress++
		}
	}
	for _, nicID := range a.beOrder {
		l := a.beLinks[nicID]
		for i := 0; i < a.cfg.Burst; i++ {
			payload, ok := l.Poll(p)
			if !ok {
				break
			}
			a.handleNIC(p, nicID, payload)
			progress++
		}
	}
	for _, ssdID := range a.ssdOrder {
		l := a.ssdLinks[ssdID]
		for i := 0; i < a.cfg.Burst; i++ {
			payload, ok := l.Poll(p)
			if !ok {
				break
			}
			a.handleSSD(p, ssdID, payload)
			progress++
		}
	}
	if p.Now() >= a.nextLease {
		a.nextLease = p.Now() + a.cfg.LeaseTimeout/4
		a.checkLeases(p)
	}
	if a.cfg.Rebalance && p.Now() >= a.nextRebal {
		a.nextRebal = p.Now() + a.cfg.RebalanceEvery
		a.rebalance(p)
	}
	for _, hostID := range a.feOrder {
		a.feLinks[hostID].Flush(p)
	}
	for _, nicID := range a.beOrder {
		a.beLinks[nicID].Flush(p)
	}
	for _, ssdID := range a.ssdOrder {
		a.ssdLinks[ssdID].Flush(p)
	}
	for _, hostID := range a.sfeOrder {
		a.sfeLinks[hostID].Flush(p)
	}
	return progress
}

func (a *Allocator) handleFE(p *sim.Proc, hostID int, payload []byte) {
	m := core.DecodeControl(payload)
	switch m.Op {
	case core.CtlAllocRequest:
		a.place(p, hostID, m.IP)
	}
}

func (a *Allocator) handleNIC(p *sim.Proc, nicID uint16, payload []byte) {
	m := core.DecodeControl(payload)
	ns := a.nics[nicID]
	if ns == nil {
		return
	}
	switch m.Op {
	case core.CtlTelemetry:
		ns.lastSeen = p.Now()
		ns.loadBps = float64(m.Load) * float64(time.Second) / float64(a.leaseWindow())
		ns.queueDepth = m.QueueDepth
		ns.errs = uint16(m.Errs)
		ns.up = m.LinkUp
		if a.cfg.AERFailThreshold > 0 && m.AER >= a.cfg.AERFailThreshold && ns.up && !ns.info.Backup {
			// A burst of uncorrectable PCIe errors: the device is dying.
			// Fail over proactively instead of waiting for link-down.
			ns.up = false
			a.AERFailovers++
			a.events.Emit(p.Now(), "alloc", fmt.Sprintf("aer burst on nic%d: proactive failover", nicID))
			a.failNIC(p, nicID)
		}
		a.scoreNIC(p, nicID, ns)
	case core.CtlLinkDown:
		ns.lastSeen = p.Now()
		if ns.up {
			ns.up = false
			a.failNIC(p, nicID)
		}
	case core.CtlLinkUp:
		ns.lastSeen = p.Now()
		ns.up = true
	}
}

// handleSSD ingests storage-backend telemetry through the same control
// protocol as NICs. A drive transitioning to failed (LinkUp=false) triggers
// storage failover onto the pod's backup drive — the same mechanism as
// failNIC, fenced by the drive's epoch.
func (a *Allocator) handleSSD(p *sim.Proc, ssdID uint16, payload []byte) {
	m := core.DecodeControl(payload)
	ds := a.ssds[ssdID]
	if ds == nil {
		return
	}
	switch m.Op {
	case core.CtlTelemetry:
		ds.lastSeen = p.Now()
		ds.loadBps = float64(m.Load) * float64(time.Second) / float64(a.leaseWindow())
		ds.queueDepth = m.QueueDepth
		ds.latUs = m.AER // the per-kind health slot: mean service latency, µs
		wasUp := ds.up
		ds.up = m.LinkUp
		if wasUp && !ds.up {
			a.events.Emit(p.Now(), "alloc", fmt.Sprintf("ssd%d reported failed", ssdID))
			a.failSSD(p, ssdID)
		}
		a.scoreSSD(p, ssdID, ds)
	case core.CtlLinkDown:
		ds.lastSeen = p.Now()
		if ds.up {
			ds.up = false
			a.failSSD(p, ssdID)
		}
	case core.CtlLinkUp:
		ds.lastSeen = p.Now()
		ds.up = true
	}
}

func (a *Allocator) leaseWindow() sim.Duration { return 100 * time.Millisecond }

// scoreNIC runs one window of the gray-failure scorer over a NIC's soft
// error/drop count. The metric is judged peer-relative — an outlier vs. the
// mean of the pod's other healthy NICs — because absolute thresholds can't
// separate "the workload is bursty" from "this device is sick"; a floor
// keeps idle pods from flagging noise. HealthWindows consecutive suspect
// windows quarantine the NIC and steer its instances away.
func (a *Allocator) scoreNIC(p *sim.Proc, nicID uint16, ns *nicState) {
	if !a.cfg.Health || ns.quarantine || ns.info.Backup || !ns.up {
		return
	}
	metric := float64(ns.errs)
	var peerSum float64
	peers := 0
	for _, id := range a.beOrder {
		ps := a.nics[id]
		if id == nicID || ps.info.Backup || !ps.up || ps.quarantine || ps.lastSeen == 0 {
			continue
		}
		peerSum += float64(ps.errs)
		peers++
	}
	suspect := metric >= float64(a.cfg.HealthErrFloor)
	if suspect && peers > 0 {
		suspect = metric > a.cfg.HealthFactor*(peerSum/float64(peers))
	}
	if !suspect {
		ns.suspect = 0
		return
	}
	ns.suspect++
	if ns.suspect < a.cfg.HealthWindows {
		return
	}
	ns.quarantine = true
	a.events.Emit(p.Now(), "alloc", fmt.Sprintf("health: nic%d gray (errs=%d/window, %d windows): evacuating", nicID, ns.errs, ns.suspect))
	a.evacuateNICAttempt(p, nicID, 0)
}

// evacuateNICAttempt gracefully migrates every instance off a quarantined
// NIC. Unlike failNIC this is not a failover: the link is up, in-flight
// traffic still flows, and each instance moves via the ordinary §3.3.4
// migration path. The target is the least-loaded healthy NIC with headroom,
// falling back to the pod's backup NIC.
func (a *Allocator) evacuateNICAttempt(p *sim.Proc, suspect uint16, attempt int) {
	ns := a.nics[suspect]
	if ns == nil {
		return
	}
	target := uint16(0)
	var best *nicState
	for _, id := range a.beOrder {
		cand := a.nics[id]
		if id == suspect || cand.info.Backup || !cand.up || cand.quarantine {
			continue
		}
		if best == nil || cand.demand < best.demand {
			best = cand
		}
	}
	if best != nil {
		target = best.info.ID
	} else if b := a.BackupNIC(); b != 0 && b != suspect && a.nics[b].up {
		target = b
	}
	if target == 0 {
		// Nowhere to go: stay quarantined (no new placements land here) but
		// keep serving — a degraded NIC beats no NIC.
		a.events.Emit(p.Now(), "alloc", fmt.Sprintf("health: nic%d has no evacuation target; serving degraded", suspect))
		return
	}
	if !a.rep.Propose(p, encodeCmd('E', uint32(suspect), target)) {
		a.deferRetry(attempt, func(p *sim.Proc, attempt int) { a.evacuateNICAttempt(p, suspect, attempt) })
		return
	}
	a.HealthNICEvacs++
	a.events.Emit(p.Now(), "alloc", fmt.Sprintf("health evacuation nic%d -> nic%d", suspect, target))
	var ips []netstack.IP
	for ip, st := range a.insts {
		if st.primary == suspect {
			ips = append(ips, ip)
		}
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })
	for _, ip := range ips {
		a.migrateAttempt(p, ip, target, 0)
	}
}

// scoreSSD runs one window of the gray-failure scorer over a drive's mean
// request service latency (the storage health slot). Same peer-relative
// outlier rule as scoreNIC; HealthWindows consecutive suspect windows
// quarantine the drive and re-bind its volumes onto the pod's backup.
func (a *Allocator) scoreSSD(p *sim.Proc, ssdID uint16, ds *ssdState) {
	if !a.cfg.Health || ds.quarantine || ds.info.Backup || !ds.up {
		return
	}
	metric := float64(ds.latUs)
	var peerSum float64
	peers := 0
	for _, id := range a.ssdOrder {
		ps := a.ssds[id]
		if id == ssdID || ps.info.Backup || !ps.up || ps.quarantine || ps.lastSeen == 0 {
			continue
		}
		peerSum += float64(ps.latUs)
		peers++
	}
	suspect := metric >= float64(a.cfg.HealthLatFloorUs)
	if suspect && peers > 0 {
		suspect = metric > a.cfg.HealthFactor*(peerSum/float64(peers))
	}
	if !suspect {
		ds.suspect = 0
		return
	}
	ds.suspect++
	if ds.suspect < a.cfg.HealthWindows {
		return
	}
	ds.quarantine = true
	a.events.Emit(p.Now(), "alloc", fmt.Sprintf("health: ssd%d gray (lat=%dµs/req, %d windows): evacuating", ssdID, ds.latUs, ds.suspect))
	a.evacuateSSDAttempt(p, ssdID, 0)
}

// evacuateSSDAttempt re-binds a quarantined drive's volumes onto the pod's
// backup drive under a bumped fencing epoch — the failSSD machinery aimed at
// a drive that is still alive. Crucially, with no healthy backup it does
// NOT declare volumes lost (the drive still serves, just slowly): it leaves
// the quarantine in place and keeps going.
func (a *Allocator) evacuateSSDAttempt(p *sim.Proc, suspect uint16, attempt int) {
	ds := a.ssds[suspect]
	if ds == nil {
		return
	}
	target := a.BackupSSD()
	if target == suspect || (target != 0 && (!a.ssds[target].up || a.ssds[target].quarantine)) {
		target = 0
	}
	if target == 0 {
		a.events.Emit(p.Now(), "alloc", fmt.Sprintf("health: ssd%d has no evacuation target; serving degraded", suspect))
		return
	}
	if !a.rep.Propose(p, encodeCmd('V', uint32(suspect), target)) {
		a.deferRetry(attempt, func(p *sim.Proc, attempt int) { a.evacuateSSDAttempt(p, suspect, attempt) })
		return
	}
	ds.epoch++
	a.HealthSSDEvacs++
	a.events.Emit(p.Now(), "alloc", fmt.Sprintf("health evacuation ssd%d -> ssd%d epoch=%d", suspect, target, ds.epoch))
	for _, hostID := range a.sfeOrder {
		a.sendToSFE(p, hostID, ctlMsg{
			op: core.CtlFailover, kind: core.DeviceSSD, dev: suspect, aux: target, epoch: ds.epoch,
		})
	}
}

// place picks a primary NIC for a new instance: host-local first, then the
// least-loaded NIC with spare capacity (§3.5 "Device allocation"). A repeat
// request for an already-placed instance (a frontend retrying because the
// assignment got lost in an allocator crash window) is answered
// idempotently by re-sending the recorded assignment.
func (a *Allocator) place(p *sim.Proc, hostID int, ip netstack.IP) {
	a.placeAttempt(p, hostID, ip, 0)
}

func (a *Allocator) placeAttempt(p *sim.Proc, hostID int, ip netstack.IP, attempt int) {
	if st, ok := a.insts[ip]; ok {
		a.AssignResends++
		a.sendToFE(p, st.hostID, ctlMsg{op: core.CtlAssign, ip: ip, dev: st.primary, aux: st.backup})
		return
	}
	demand := a.defaultDemand
	if d, ok := a.instDemand[ip]; ok {
		demand = d
	}
	backup := a.BackupNIC()
	pick := uint16(0)
	// Host-local NICs first. Quarantined NICs (gray-failure scorer) are
	// skipped everywhere but the overcommit fallback: degraded beats none.
	for _, id := range a.beOrder {
		ns := a.nics[id]
		if ns.info.HostID == hostID && ns.up && !ns.info.Backup && !ns.quarantine && ns.demand+demand <= ns.info.CapacityBps {
			pick = id
			break
		}
	}
	if pick == 0 {
		// Greedy: lowest current demand with headroom.
		var best *nicState
		for _, id := range a.beOrder {
			ns := a.nics[id]
			if !ns.up || ns.info.Backup || ns.quarantine {
				continue
			}
			if ns.demand+demand > ns.info.CapacityBps {
				continue
			}
			if best == nil || ns.demand < best.demand {
				best = ns
			}
		}
		if best != nil {
			pick = best.info.ID
		}
	}
	if pick == 0 {
		// Overcommit the least-loaded non-backup NIC rather than refuse:
		// the paper oversubscribes deliberately (§2.2). Prefer healthy
		// NICs; fall back to quarantined ones only when nothing else is up.
		var best, bestQuar *nicState
		for _, id := range a.beOrder {
			ns := a.nics[id]
			if !ns.up || ns.info.Backup {
				continue
			}
			if ns.quarantine {
				if bestQuar == nil || ns.demand < bestQuar.demand {
					bestQuar = ns
				}
				continue
			}
			if best == nil || ns.demand < best.demand {
				best = ns
			}
		}
		if best == nil {
			best = bestQuar
		}
		if best == nil {
			return // no usable NICs at all
		}
		pick = best.info.ID
	}
	if !a.rep.Propose(p, encodeCmd('P', uint32(ip), pick)) {
		a.deferRetry(attempt, func(p *sim.Proc, attempt int) { a.placeAttempt(p, hostID, ip, attempt) })
		return
	}
	a.nics[pick].demand += demand
	a.insts[ip] = &instState{ip: ip, hostID: hostID, demand: demand, primary: pick, backup: backup}
	a.sendToFE(p, hostID, ctlMsg{op: core.CtlAssign, ip: ip, dev: pick, aux: backup})
	a.Placements++
	a.events.Emit(p.Now(), "alloc", fmt.Sprintf("placement ip=%v nic=%d backup=%d", ip, pick, backup))
}

// failNIC reroutes every instance on the failed NIC to the backup and has
// the backup borrow the failed NIC's MAC (§3.3.3).
func (a *Allocator) failNIC(p *sim.Proc, failed uint16) {
	a.failNICAttempt(p, failed, 0)
}

func (a *Allocator) failNICAttempt(p *sim.Proc, failed uint16, attempt int) {
	ns := a.nics[failed]
	if ns == nil || ns.up {
		return // repaired (or unknown) by the time the retry fired
	}
	backup := a.BackupNIC()
	if backup == 0 || backup == failed {
		return
	}
	if !a.rep.Propose(p, encodeCmd('F', uint32(failed), backup)) {
		a.deferRetry(attempt, func(p *sim.Proc, attempt int) { a.failNICAttempt(p, failed, attempt) })
		return
	}
	a.Failovers++
	a.events.Emit(p.Now(), "alloc", fmt.Sprintf("failover nic%d -> nic%d", failed, backup))
	// Tell the backup's backend to borrow the MAC first (RX path), then
	// repoint the frontends (TX path).
	a.sendToBE(p, backup, ctlMsg{op: core.CtlBorrowMAC, dev: failed})
	for _, hostID := range a.feOrder {
		a.sendToFE(p, hostID, ctlMsg{op: core.CtlFailover, dev: failed, aux: backup})
	}
	var moved float64
	for _, st := range a.insts {
		if st.primary == failed {
			st.primary = backup
			moved += st.demand
		}
	}
	a.shiftDemand(failed, backup, moved)
}

// failSSD re-binds every volume on the failed drive onto the pod's backup
// drive (§3.3.3's backup mechanism applied to storage). The drive's fencing
// epoch is bumped and broadcast with the failover so storage frontends
// reject the zombie backend's late completions. With no usable backup the
// failover is still broadcast with target 0: frontends mark the volumes
// lost and surface ErrVolumeLost (§3.4's error propagation).
func (a *Allocator) failSSD(p *sim.Proc, failed uint16) {
	a.failSSDAttempt(p, failed, 0)
}

func (a *Allocator) failSSDAttempt(p *sim.Proc, failed uint16, attempt int) {
	ds := a.ssds[failed]
	if ds == nil || ds.up {
		return // repaired (or unknown) by the time the retry fired
	}
	target := a.BackupSSD()
	if target == failed || (target != 0 && !a.ssds[target].up) {
		target = 0
	}
	if !a.rep.Propose(p, encodeCmd('S', uint32(failed), target)) {
		a.deferRetry(attempt, func(p *sim.Proc, attempt int) { a.failSSDAttempt(p, failed, attempt) })
		return
	}
	ds.epoch++
	a.SSDFailovers++
	if target == 0 {
		a.events.Emit(p.Now(), "alloc", fmt.Sprintf("ssd%d failed, no backup: volumes lost", failed))
	} else {
		a.events.Emit(p.Now(), "alloc", fmt.Sprintf("ssd failover ssd%d -> ssd%d epoch=%d", failed, target, ds.epoch))
	}
	for _, hostID := range a.sfeOrder {
		a.sendToSFE(p, hostID, ctlMsg{
			op: core.CtlFailover, kind: core.DeviceSSD, dev: failed, aux: target, epoch: ds.epoch,
		})
	}
}

// shiftDemand moves accounted demand between NICs.
func (a *Allocator) shiftDemand(from, to uint16, d float64) {
	if ns := a.nics[from]; ns != nil {
		ns.demand -= d
	}
	if ns := a.nics[to]; ns != nil {
		ns.demand += d
	}
}

// rebalance migrates one instance per period from the hottest overloaded
// NIC to the coldest underloaded one (§6 "Load balancing policies").
func (a *Allocator) rebalance(p *sim.Proc) {
	var hot, cold *nicState
	for _, id := range a.beOrder {
		ns := a.nics[id]
		if !ns.up || ns.info.Backup || ns.quarantine || ns.info.CapacityBps <= 0 {
			continue
		}
		util := ns.loadBps / ns.info.CapacityBps
		if util >= a.cfg.RebalanceHigh && (hot == nil || ns.loadBps > hot.loadBps) {
			hot = ns
		}
		if util <= a.cfg.RebalanceLow && (cold == nil || ns.loadBps < cold.loadBps) {
			cold = ns
		}
	}
	if hot == nil || cold == nil || hot == cold {
		return
	}
	// Move the largest-demand instance on the hot NIC.
	var victim *instState
	for _, st := range a.insts {
		if st.primary == hot.info.ID && (victim == nil || st.demand > victim.demand) {
			victim = st
		}
	}
	if victim == nil {
		return
	}
	if !a.rep.Propose(p, encodeCmd('M', uint32(victim.ip), cold.info.ID)) {
		return
	}
	old := victim.primary
	victim.primary = cold.info.ID
	a.shiftDemand(old, cold.info.ID, victim.demand)
	a.sendToFE(p, victim.hostID, ctlMsg{op: core.CtlMigrate, ip: victim.ip, dev: cold.info.ID})
	a.Migrations++
	a.Rebalances++
	a.events.Emit(p.Now(), "alloc", fmt.Sprintf("rebalance ip=%v nic%d -> nic%d", victim.ip, old, cold.info.ID))
}

// checkLeases expires devices whose telemetry went silent — the host-failure
// path (§3.5 "Host failures are instead inferred from missing telemetry").
// A NIC's lease expiry fails its instances over; an SSD's fails its volumes
// over onto the backup drive (or declares them lost without one). When
// every lease-tracked device a host owns has expired, the host itself is
// presumed dead — by that point each device's own recovery has already
// re-placed its engines onto survivors.
func (a *Allocator) checkLeases(p *sim.Proc) {
	var expiredHosts []int
	for _, id := range a.beOrder {
		ns := a.nics[id]
		if !ns.up || ns.info.Backup {
			continue
		}
		if ns.lastSeen == 0 {
			continue // never reported yet (startup grace)
		}
		if p.Now()-ns.lastSeen > a.cfg.LeaseTimeout {
			ns.up = false
			a.LeaseExpiries++
			a.recoveryDetect.Record(time.Duration(p.Now() - ns.lastSeen))
			a.events.Emit(p.Now(), "alloc", fmt.Sprintf("lease expired for nic%d", id))
			a.failNIC(p, id)
			expiredHosts = append(expiredHosts, ns.info.HostID)
		}
	}
	for _, id := range a.ssdOrder {
		ds := a.ssds[id]
		if !ds.up || ds.lastSeen == 0 {
			continue
		}
		if p.Now()-ds.lastSeen > a.cfg.LeaseTimeout {
			ds.up = false
			a.SSDLeaseExpiries++
			a.recoveryDetect.Record(time.Duration(p.Now() - ds.lastSeen))
			a.events.Emit(p.Now(), "alloc", fmt.Sprintf("lease expired for ssd%d", id))
			a.failSSD(p, id)
			expiredHosts = append(expiredHosts, ds.info.HostID)
		}
	}
	a.inferHostDeaths(p, expiredHosts)
}

// inferHostDeaths promotes per-device lease expiries to a host-death verdict
// when every lease-tracked device on a host (its non-backup NICs and its
// SSDs) is down. The verdict is observational — device recoveries already
// ran — but it is the pod-level signal operators and experiments key on.
func (a *Allocator) inferHostDeaths(p *sim.Proc, candidates []int) {
	if len(candidates) == 0 {
		return
	}
	sort.Ints(candidates)
	prev := -1 << 62
	for _, hostID := range candidates {
		if hostID == prev {
			continue // dedup: host had several devices expire this pass
		}
		prev = hostID
		dead, tracked := true, false
		for _, id := range a.beOrder {
			ns := a.nics[id]
			if ns.info.HostID != hostID || ns.info.Backup {
				continue
			}
			tracked = true
			if ns.up {
				dead = false
			}
		}
		for _, id := range a.ssdOrder {
			ds := a.ssds[id]
			if ds.info.HostID != hostID {
				continue
			}
			tracked = true
			if ds.up {
				dead = false
			}
		}
		if tracked && dead {
			a.HostDeaths++
			a.events.Emit(p.Now(), "alloc", fmt.Sprintf("host %d presumed dead: all device leases expired", hostID))
		}
	}
}

func (a *Allocator) sendToFE(p *sim.Proc, hostID int, m ctlMsg) {
	l := a.feLinks[hostID]
	if l == nil {
		return
	}
	var buf [15]byte
	if !l.Send(p, m.encode(buf[:])) {
		a.cmds.Push(func(p *sim.Proc) { a.sendToFE(p, hostID, m) })
		return
	}
	l.Flush(p)
}

func (a *Allocator) sendToSFE(p *sim.Proc, hostID int, m ctlMsg) {
	l := a.sfeLinks[hostID]
	if l == nil {
		return
	}
	var buf [15]byte
	if !l.Send(p, m.encode(buf[:])) {
		a.cmds.Push(func(p *sim.Proc) { a.sendToSFE(p, hostID, m) })
		return
	}
	l.Flush(p)
}

func (a *Allocator) sendToBE(p *sim.Proc, nicID uint16, m ctlMsg) {
	l := a.beLinks[nicID]
	if l == nil {
		return
	}
	var buf [15]byte
	if !l.Send(p, m.encode(buf[:])) {
		a.cmds.Push(func(p *sim.Proc) { a.sendToBE(p, nicID, m) })
		return
	}
	l.Flush(p)
}

// NICLoad returns the allocator's latest telemetry-derived load for a NIC
// in bytes/s (tests and load-balancing policies read this).
func (a *Allocator) NICLoad(id uint16) float64 {
	if ns := a.nics[id]; ns != nil {
		return ns.loadBps
	}
	return 0
}

// NICUp reports the allocator's view of a NIC's health.
func (a *Allocator) NICUp(id uint16) bool {
	if ns := a.nics[id]; ns != nil {
		return ns.up
	}
	return false
}

// SSDLoad returns the latest telemetry-derived load for an SSD in bytes/s.
func (a *Allocator) SSDLoad(id uint16) float64 {
	if ds := a.ssds[id]; ds != nil {
		return ds.loadBps
	}
	return 0
}

// SSDUp reports the allocator's view of a drive's health.
func (a *Allocator) SSDUp(id uint16) bool {
	if ds := a.ssds[id]; ds != nil {
		return ds.up
	}
	return false
}

// NICQuarantined reports whether the health scorer has quarantined a NIC.
func (a *Allocator) NICQuarantined(id uint16) bool {
	if ns := a.nics[id]; ns != nil {
		return ns.quarantine
	}
	return false
}

// SSDQuarantined reports whether the health scorer has quarantined a drive.
func (a *Allocator) SSDQuarantined(id uint16) bool {
	if ds := a.ssds[id]; ds != nil {
		return ds.quarantine
	}
	return false
}

// SSDServiceLatUs returns the drive's last-reported mean service latency µs.
func (a *Allocator) SSDServiceLatUs(id uint16) uint16 {
	if ds := a.ssds[id]; ds != nil {
		return ds.latUs
	}
	return 0
}

// NICErrs returns the NIC's last-reported per-window soft error count.
func (a *Allocator) NICErrs(id uint16) uint16 {
	if ns := a.nics[id]; ns != nil {
		return ns.errs
	}
	return 0
}

// SSDEpoch returns the drive's current fencing epoch (bumped per failover).
func (a *Allocator) SSDEpoch(id uint16) uint16 {
	if ds := a.ssds[id]; ds != nil {
		return ds.epoch
	}
	return 0
}

// RecoveryDetect exposes the failure-detection latency histogram.
func (a *Allocator) RecoveryDetect() *metrics.Histogram { return a.recoveryDetect }

// SSDQueueDepth returns the drive's last-reported queue occupancy.
func (a *Allocator) SSDQueueDepth(id uint16) uint16 {
	if ds := a.ssds[id]; ds != nil {
		return ds.queueDepth
	}
	return 0
}

// PrimaryOf returns the allocator's current NIC assignment for an instance.
func (a *Allocator) PrimaryOf(ip netstack.IP) (uint16, bool) {
	if st, ok := a.insts[ip]; ok {
		return st.primary, true
	}
	return 0, false
}

// encodeCmd packs a replicated decision for the Raft log.
func encodeCmd(kind byte, arg uint32, nic uint16) []byte {
	return []byte{kind, byte(arg), byte(arg >> 8), byte(arg >> 16), byte(arg >> 24), byte(nic), byte(nic >> 8)}
}

// ctlMsg is shorthand for building engine control messages. kind's zero
// value maps to DeviceNIC so the (dominant) NIC-engine call sites stay
// terse; storage failover sets kind explicitly.
type ctlMsg struct {
	op    byte
	kind  core.DeviceKind
	ip    netstack.IP
	dev   uint16
	aux   uint16
	epoch uint16
}

func (m ctlMsg) encode(buf []byte) []byte {
	kind := m.kind
	if kind == 0 {
		kind = core.DeviceNIC
	}
	return core.EncodeControl(buf, core.ControlMsg{
		Op: m.op, Kind: kind, IP: m.ip, Dev: m.dev, Aux: m.aux, Epoch: m.epoch,
	})
}
