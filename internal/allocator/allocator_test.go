package allocator

import (
	"testing"
	"time"

	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/msgchan"
	"oasis/internal/netstack"
	"oasis/internal/sim"
)

// allocRig wires an allocator to fake frontend/backend endpoints (plain
// link ends driven by test processes), isolating the allocator's protocol
// behaviour from the full engine.
type allocRig struct {
	eng   *sim.Engine
	pool  *cxl.Pool
	a     *Allocator
	fe    map[int]*core.LinkEnd    // test side of frontend links
	be    map[uint16]*core.LinkEnd // test side of backend links
	hosts []*host.Host
}

func newAllocRig(t *testing.T, nHosts int, nics []NICInfo) *allocRig {
	t.Helper()
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<27, cxl.DefaultParams())
	r := &allocRig{
		eng:  eng,
		pool: pool,
		fe:   make(map[int]*core.LinkEnd),
		be:   make(map[uint16]*core.LinkEnd),
	}
	for i := 0; i < nHosts; i++ {
		r.hosts = append(r.hosts, host.New(eng, i, "h", pool, host.DefaultConfig()))
	}
	r.a = New(r.hosts[0], DefaultConfig())
	for i := 1; i < nHosts; i++ {
		aEnd, feEnd, err := core.NewDuplexLink(pool, r.hosts[0], r.hosts[i], msgchan.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r.a.AddFrontend(i, aEnd)
		r.fe[i] = feEnd
	}
	for _, info := range nics {
		aEnd, beEnd, err := core.NewDuplexLink(pool, r.hosts[0], r.hosts[info.HostID], msgchan.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		r.a.AddNIC(info, aEnd)
		r.be[info.ID] = beEnd
	}
	r.a.Start()
	return r
}

// expectMsg polls a link until a control message arrives or times out.
func expectMsg(p *sim.Proc, end *core.LinkEnd, timeout sim.Duration) (core.ControlMsg, bool) {
	deadline := p.Now() + timeout
	for p.Now() < deadline {
		if payload, ok := end.Poll(p); ok {
			return core.DecodeControl(payload), true
		}
		p.Sleep(5 * time.Microsecond)
	}
	return core.ControlMsg{}, false
}

func sendCtl(p *sim.Proc, end *core.LinkEnd, m core.ControlMsg) {
	var buf [15]byte
	end.Send(p, core.EncodeControl(buf[:], m))
	end.Flush(p)
}

func TestPlacementPrefersLocalNIC(t *testing.T) {
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 12.5e9},
		{ID: 2, HostID: 2, CapacityBps: 12.5e9},
	}
	r := newAllocRig(t, 3, nics)
	ip := netstack.IPv4(10, 0, 0, 1)
	r.eng.Go("fe2", func(p *sim.Proc) {
		sendCtl(p, r.fe[2], core.ControlMsg{Op: core.CtlAllocRequest, IP: ip})
		m, ok := expectMsg(p, r.fe[2], 50*time.Millisecond)
		if !ok || m.Op != core.CtlAssign {
			t.Errorf("no assign: %+v ok=%v", m, ok)
		} else if m.Dev != 2 {
			t.Errorf("assigned NIC %d, want host-local 2", m.Dev)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if got, _ := r.a.PrimaryOf(ip); got != 2 {
		t.Fatalf("allocator state: primary = %d", got)
	}
}

func TestPlacementSpillsToLeastLoaded(t *testing.T) {
	// Host 1 has a tiny NIC; demand exceeds it, so the second instance on
	// host 1 must spill to the remote NIC with more headroom.
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 1.5e9},
		{ID: 2, HostID: 2, CapacityBps: 12.5e9},
	}
	r := newAllocRig(t, 3, nics)
	ip1 := netstack.IPv4(10, 0, 0, 1)
	ip2 := netstack.IPv4(10, 0, 0, 2)
	r.eng.Go("fe1", func(p *sim.Proc) {
		sendCtl(p, r.fe[1], core.ControlMsg{Op: core.CtlAllocRequest, IP: ip1})
		m1, ok1 := expectMsg(p, r.fe[1], 50*time.Millisecond)
		sendCtl(p, r.fe[1], core.ControlMsg{Op: core.CtlAllocRequest, IP: ip2})
		m2, ok2 := expectMsg(p, r.fe[1], 50*time.Millisecond)
		if !ok1 || !ok2 {
			t.Error("missing assignments")
		} else {
			if m1.Dev != 1 {
				t.Errorf("first instance on NIC %d, want local 1", m1.Dev)
			}
			if m2.Dev != 2 {
				t.Errorf("second instance on NIC %d, want spill to 2", m2.Dev)
			}
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestBackupNICNotUsedForPlacement(t *testing.T) {
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 12.5e9},
		{ID: 2, HostID: 2, CapacityBps: 12.5e9, Backup: true},
	}
	r := newAllocRig(t, 3, nics)
	ip := netstack.IPv4(10, 0, 0, 1)
	r.eng.Go("fe2", func(p *sim.Proc) {
		// Host 2's local NIC is the backup: placement must avoid it and
		// use NIC 1, with NIC 2 as the backup assignment.
		sendCtl(p, r.fe[2], core.ControlMsg{Op: core.CtlAllocRequest, IP: ip})
		m, ok := expectMsg(p, r.fe[2], 50*time.Millisecond)
		if !ok || m.Dev != 1 {
			t.Errorf("assigned %+v, want primary 1", m)
		}
		if m.Aux != 2 {
			t.Errorf("backup = %d, want the reserved NIC 2", m.Aux)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestLinkDownTriggersFailoverMessages(t *testing.T) {
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 12.5e9},
		{ID: 2, HostID: 2, CapacityBps: 12.5e9, Backup: true},
	}
	r := newAllocRig(t, 3, nics)
	ip := netstack.IPv4(10, 0, 0, 1)
	r.eng.Go("driver", func(p *sim.Proc) {
		sendCtl(p, r.fe[1], core.ControlMsg{Op: core.CtlAllocRequest, IP: ip})
		if _, ok := expectMsg(p, r.fe[1], 50*time.Millisecond); !ok {
			t.Error("no assignment")
			r.eng.Shutdown()
			return
		}
		// Backend of NIC 1 reports link down.
		sendCtl(p, r.be[1], core.ControlMsg{Op: core.CtlLinkDown, Dev: 1})
		// Every frontend must receive a failover command...
		m, ok := expectMsg(p, r.fe[1], 50*time.Millisecond)
		if !ok || m.Op != core.CtlFailover || m.Dev != 1 || m.Aux != 2 {
			t.Errorf("fe1 got %+v ok=%v, want failover 1->2", m, ok)
		}
		// ...and the backup's backend a borrow-MAC command.
		bm, ok := expectMsg(p, r.be[2], 50*time.Millisecond)
		if !ok || bm.Op != core.CtlBorrowMAC || bm.Dev != 1 {
			t.Errorf("backup backend got %+v ok=%v, want borrow-MAC 1", bm, ok)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.a.Failovers != 1 {
		t.Fatalf("failovers = %d", r.a.Failovers)
	}
	if got, _ := r.a.PrimaryOf(ip); got != 2 {
		t.Fatalf("instance not moved to backup: primary = %d", got)
	}
	if r.a.NICUp(1) {
		t.Fatal("failed NIC still marked up")
	}
}

func TestLeaseExpiryFailsSilentHost(t *testing.T) {
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 12.5e9},
		{ID: 2, HostID: 2, CapacityBps: 12.5e9, Backup: true},
	}
	r := newAllocRig(t, 3, nics)
	r.eng.Go("driver", func(p *sim.Proc) {
		// One telemetry record establishes the lease...
		sendCtl(p, r.be[1], core.ControlMsg{Op: core.CtlTelemetry, Dev: 1, Load: 100, LinkUp: true})
		// ...then silence for longer than the lease timeout.
		p.Sleep(DefaultConfig().LeaseTimeout + 200*time.Millisecond)
		m, ok := expectMsg(p, r.fe[1], 100*time.Millisecond)
		if !ok || m.Op != core.CtlFailover {
			t.Errorf("no failover after lease expiry: %+v ok=%v", m, ok)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.a.LeaseExpiries != 1 {
		t.Fatalf("lease expiries = %d", r.a.LeaseExpiries)
	}
}

func TestTelemetryUpdatesLoadView(t *testing.T) {
	nics := []NICInfo{{ID: 1, HostID: 1, CapacityBps: 12.5e9}}
	r := newAllocRig(t, 2, nics)
	r.eng.Go("driver", func(p *sim.Proc) {
		sendCtl(p, r.be[1], core.ControlMsg{Op: core.CtlTelemetry, Dev: 1, Load: 500_000_000, LinkUp: true})
		p.Sleep(5 * time.Millisecond)
		r.eng.Shutdown()
	})
	r.eng.Run()
	// 500 MB per 100 ms window = 5 GB/s.
	if got := r.a.NICLoad(1); got < 4.9e9 || got > 5.1e9 {
		t.Fatalf("telemetry-derived load = %v, want ≈ 5e9", got)
	}
}

func TestMigrateSendsCommandToOwningHost(t *testing.T) {
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 12.5e9},
		{ID: 2, HostID: 2, CapacityBps: 12.5e9},
	}
	r := newAllocRig(t, 3, nics)
	ip := netstack.IPv4(10, 0, 0, 1)
	r.eng.Go("driver", func(p *sim.Proc) {
		sendCtl(p, r.fe[1], core.ControlMsg{Op: core.CtlAllocRequest, IP: ip})
		expectMsg(p, r.fe[1], 50*time.Millisecond)
		r.a.Migrate(ip, 2)
		m, ok := expectMsg(p, r.fe[1], 50*time.Millisecond)
		if !ok || m.Op != core.CtlMigrate || m.Dev != 2 || m.IP != ip {
			t.Errorf("migrate command = %+v ok=%v", m, ok)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.a.Migrations != 1 {
		t.Fatalf("migrations = %d", r.a.Migrations)
	}
	if got, _ := r.a.PrimaryOf(ip); got != 2 {
		t.Fatalf("primary after migrate = %d", got)
	}
}

func TestRebalanceMovesInstanceOffHotNIC(t *testing.T) {
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 10e9},
		{ID: 2, HostID: 2, CapacityBps: 10e9},
	}
	r := newAllocRig(t, 3, nics)
	r.a.cfg.Rebalance = true
	r.a.cfg.RebalanceEvery = 50 * time.Millisecond
	ip := netstack.IPv4(10, 0, 0, 1)
	r.eng.Go("driver", func(p *sim.Proc) {
		sendCtl(p, r.fe[1], core.ControlMsg{Op: core.CtlAllocRequest, IP: ip})
		if m, ok := expectMsg(p, r.fe[1], 50*time.Millisecond); !ok || m.Dev != 1 {
			t.Errorf("placement: %+v ok=%v", m, ok)
		}
		// Telemetry: NIC 1 at 90% (hot), NIC 2 idle (cold). Load field is
		// bytes per 100 ms window → 0.9 GB/window = 9 GB/s on 10 Gbps... use
		// bytes: 9e8 per window = 9 GB/s? CapacityBps is bytes/s here (10e9).
		for i := 0; i < 12; i++ {
			sendCtl(p, r.be[1], core.ControlMsg{Op: core.CtlTelemetry, Dev: 1, Load: 9e8, LinkUp: true})
			sendCtl(p, r.be[2], core.ControlMsg{Op: core.CtlTelemetry, Dev: 2, Load: 1e7, LinkUp: true})
			p.Sleep(20 * time.Millisecond)
		}
		m, ok := expectMsg(p, r.fe[1], 200*time.Millisecond)
		if !ok || m.Op != core.CtlMigrate || m.Dev != 2 || m.IP != ip {
			t.Errorf("expected migrate to NIC 2, got %+v ok=%v", m, ok)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.a.Rebalances != 1 {
		t.Fatalf("rebalances = %d, want exactly 1 (hysteresis after the move)", r.a.Rebalances)
	}
	if got, _ := r.a.PrimaryOf(ip); got != 2 {
		t.Fatalf("instance still on NIC %d", got)
	}
}

func TestNoRebalanceWhenBalanced(t *testing.T) {
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 10e9},
		{ID: 2, HostID: 2, CapacityBps: 10e9},
	}
	r := newAllocRig(t, 3, nics)
	r.a.cfg.Rebalance = true
	r.a.cfg.RebalanceEvery = 50 * time.Millisecond
	r.eng.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			sendCtl(p, r.be[1], core.ControlMsg{Op: core.CtlTelemetry, Dev: 1, Load: 6e8, LinkUp: true})
			sendCtl(p, r.be[2], core.ControlMsg{Op: core.CtlTelemetry, Dev: 2, Load: 6e8, LinkUp: true})
			p.Sleep(25 * time.Millisecond)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.a.Rebalances != 0 {
		t.Fatalf("spurious rebalances = %d", r.a.Rebalances)
	}
}

func TestAERBurstTriggersProactiveFailover(t *testing.T) {
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 12.5e9},
		{ID: 2, HostID: 2, CapacityBps: 12.5e9, Backup: true},
	}
	r := newAllocRig(t, 3, nics)
	r.eng.Go("driver", func(p *sim.Proc) {
		// Healthy telemetry with a trickle of correctable-only noise (AER=0
		// here counts uncorrectable): no failover.
		sendCtl(p, r.be[1], core.ControlMsg{Op: core.CtlTelemetry, Dev: 1, Load: 100, LinkUp: true, AER: 3})
		p.Sleep(10 * time.Millisecond)
		if r.a.AERFailovers != 0 {
			t.Error("failover on sub-threshold AER noise")
		}
		// A burst of uncorrectable errors while the link is still up.
		sendCtl(p, r.be[1], core.ControlMsg{Op: core.CtlTelemetry, Dev: 1, Load: 100, LinkUp: true, AER: 40})
		m, ok := expectMsg(p, r.fe[1], 50*time.Millisecond)
		if !ok || m.Op != core.CtlFailover || m.Dev != 1 || m.Aux != 2 {
			t.Errorf("no proactive failover: %+v ok=%v", m, ok)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.a.AERFailovers != 1 || r.a.Failovers != 1 {
		t.Fatalf("AER failovers = %d, failovers = %d", r.a.AERFailovers, r.a.Failovers)
	}
	if r.a.NICUp(1) {
		t.Fatal("dying NIC still marked up")
	}
}

// newSSDRig extends the allocator rig with pooled SSDs on their own
// control links, mirroring how storage backends attach.
func (r *allocRig) addSSD(t *testing.T, info SSDInfo) *core.LinkEnd {
	t.Helper()
	aEnd, beEnd, err := core.NewDuplexLink(r.pool, r.hosts[0], r.hosts[info.HostID], msgchan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r.a.AddSSD(info, aEnd)
	return beEnd
}

func TestSSDTelemetryUpdatesLoadView(t *testing.T) {
	// Mirrors TestTelemetryUpdatesLoadView: a storage backend's 100 ms load
	// record flows through the same control path and lands in the
	// allocator's per-drive view.
	r := newAllocRig(t, 2, []NICInfo{{ID: 1, HostID: 1, CapacityBps: 12.5e9}})
	ssdEnd := r.addSSD(t, SSDInfo{ID: 1, HostID: 1})
	r.eng.Go("driver", func(p *sim.Proc) {
		sendCtl(p, ssdEnd, core.ControlMsg{
			Op: core.CtlTelemetry, Kind: core.DeviceSSD, Dev: 1,
			Load: 200_000_000, LinkUp: true, QueueDepth: 7,
		})
		p.Sleep(5 * time.Millisecond)
		r.eng.Shutdown()
	})
	r.eng.Run()
	// 200 MB per 100 ms window = 2 GB/s.
	if got := r.a.SSDLoad(1); got < 1.9e9 || got > 2.1e9 {
		t.Fatalf("SSD telemetry-derived load = %v, want ≈ 2e9", got)
	}
	if !r.a.SSDUp(1) {
		t.Fatal("healthy drive marked down")
	}
	if got := r.a.SSDQueueDepth(1); got != 7 {
		t.Fatalf("queue depth = %d, want 7", got)
	}
}

func TestSSDLeaseExpiryMarksDriveDown(t *testing.T) {
	// An SSD whose telemetry goes silent is marked failed — but, unlike a
	// NIC, nothing fails over: storage errors propagate to the guest (§3.4).
	r := newAllocRig(t, 2, []NICInfo{{ID: 1, HostID: 1, CapacityBps: 12.5e9}})
	ssdEnd := r.addSSD(t, SSDInfo{ID: 1, HostID: 1})
	r.eng.Go("driver", func(p *sim.Proc) {
		sendCtl(p, ssdEnd, core.ControlMsg{
			Op: core.CtlTelemetry, Kind: core.DeviceSSD, Dev: 1, Load: 100, LinkUp: true,
		})
		p.Sleep(DefaultConfig().LeaseTimeout + 200*time.Millisecond)
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.a.SSDUp(1) {
		t.Fatal("silent drive still marked up")
	}
	if r.a.SSDLeaseExpiries != 1 {
		t.Fatalf("SSD lease expiries = %d", r.a.SSDLeaseExpiries)
	}
	if r.a.Failovers != 0 {
		t.Fatalf("SSD expiry must not trigger failover, got %d", r.a.Failovers)
	}
}

func TestHealthScorerEvacuatesLossyNIC(t *testing.T) {
	// A NIC whose soft-error count is a sustained outlier vs. its peers is
	// quarantined and its instances are gracefully migrated away, even
	// though its link never goes down (gray failure).
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 12.5e9},
		{ID: 2, HostID: 2, CapacityBps: 12.5e9},
		{ID: 3, HostID: 2, CapacityBps: 12.5e9, Backup: true},
	}
	r := newAllocRig(t, 3, nics)
	r.a.cfg.Health = true
	ip := netstack.IPv4(10, 0, 0, 1)
	r.eng.Go("driver", func(p *sim.Proc) {
		sendCtl(p, r.fe[1], core.ControlMsg{Op: core.CtlAllocRequest, IP: ip})
		if m, ok := expectMsg(p, r.fe[1], 50*time.Millisecond); !ok || m.Dev != 1 {
			t.Errorf("placement: %+v ok=%v", m, ok)
		}
		// Three windows of outlier drops on NIC 1; NIC 2 stays clean.
		for i := 0; i < r.a.cfg.HealthWindows; i++ {
			sendCtl(p, r.be[2], core.ControlMsg{Op: core.CtlTelemetry, Dev: 2, Load: 100, LinkUp: true, Errs: 1})
			sendCtl(p, r.be[1], core.ControlMsg{Op: core.CtlTelemetry, Dev: 1, Load: 100, LinkUp: true, Errs: 40})
			p.Sleep(5 * time.Millisecond)
		}
		m, ok := expectMsg(p, r.fe[1], 100*time.Millisecond)
		if !ok || m.Op != core.CtlMigrate || m.IP != ip || m.Dev != 2 {
			t.Errorf("expected migrate off lossy NIC to NIC 2, got %+v ok=%v", m, ok)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.a.HealthNICEvacs != 1 {
		t.Fatalf("health NIC evacs = %d, want 1", r.a.HealthNICEvacs)
	}
	if !r.a.NICQuarantined(1) {
		t.Fatal("lossy NIC not quarantined")
	}
	if !r.a.NICUp(1) {
		t.Fatal("gray NIC must stay up (no fail-stop)")
	}
	if r.a.Failovers != 0 {
		t.Fatalf("health evacuation must not count as failover, got %d", r.a.Failovers)
	}
	if got, _ := r.a.PrimaryOf(ip); got != 2 {
		t.Fatalf("instance still on NIC %d", got)
	}
}

func TestHealthScorerIgnoresUniformNoise(t *testing.T) {
	// When every NIC sees the same soft-error rate (a lossy workload, not a
	// sick device), the peer-relative rule keeps the scorer quiet even
	// though the absolute floor is exceeded.
	nics := []NICInfo{
		{ID: 1, HostID: 1, CapacityBps: 12.5e9},
		{ID: 2, HostID: 2, CapacityBps: 12.5e9},
	}
	r := newAllocRig(t, 3, nics)
	r.a.cfg.Health = true
	r.eng.Go("driver", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			sendCtl(p, r.be[1], core.ControlMsg{Op: core.CtlTelemetry, Dev: 1, Load: 100, LinkUp: true, Errs: 30})
			sendCtl(p, r.be[2], core.ControlMsg{Op: core.CtlTelemetry, Dev: 2, Load: 100, LinkUp: true, Errs: 30})
			p.Sleep(5 * time.Millisecond)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.a.HealthNICEvacs != 0 || r.a.NICQuarantined(1) || r.a.NICQuarantined(2) {
		t.Fatalf("uniform noise flagged: evacs=%d q1=%v q2=%v",
			r.a.HealthNICEvacs, r.a.NICQuarantined(1), r.a.NICQuarantined(2))
	}
}

func TestHealthScorerEvacuatesSlowSSD(t *testing.T) {
	// A drive whose mean service latency is a sustained outlier is
	// quarantined: its volumes re-bind onto the backup under a bumped epoch
	// while the drive itself stays up.
	r := newAllocRig(t, 3, []NICInfo{{ID: 1, HostID: 1, CapacityBps: 12.5e9}})
	ssd1 := r.addSSD(t, SSDInfo{ID: 1, HostID: 1})
	ssd2 := r.addSSD(t, SSDInfo{ID: 2, HostID: 2})
	bk, sfeEnd, err := core.NewDuplexLink(r.pool, r.hosts[0], r.hosts[1], msgchan.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	r.a.AddStorageFrontend(1, bk)
	r.addSSD(t, SSDInfo{ID: 3, HostID: 2, Backup: true})
	r.a.cfg.Health = true
	r.eng.Go("driver", func(p *sim.Proc) {
		for i := 0; i < r.a.cfg.HealthWindows; i++ {
			sendCtl(p, ssd2, core.ControlMsg{Op: core.CtlTelemetry, Kind: core.DeviceSSD, Dev: 2, Load: 100, LinkUp: true, AER: 120})
			sendCtl(p, ssd1, core.ControlMsg{Op: core.CtlTelemetry, Kind: core.DeviceSSD, Dev: 1, Load: 100, LinkUp: true, AER: 2500})
			p.Sleep(5 * time.Millisecond)
		}
		m, ok := expectMsg(p, sfeEnd, 100*time.Millisecond)
		if !ok || m.Op != core.CtlFailover || m.Kind != core.DeviceSSD || m.Dev != 1 || m.Aux != 3 || m.Epoch != 1 {
			t.Errorf("expected epoch-fenced evacuation ssd1 -> ssd3, got %+v ok=%v", m, ok)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.a.HealthSSDEvacs != 1 {
		t.Fatalf("health SSD evacs = %d, want 1", r.a.HealthSSDEvacs)
	}
	if !r.a.SSDQuarantined(1) {
		t.Fatal("slow drive not quarantined")
	}
	if !r.a.SSDUp(1) {
		t.Fatal("gray drive must stay up (no fail-stop)")
	}
	if r.a.SSDFailovers != 0 {
		t.Fatalf("health evacuation must not count as SSD failover, got %d", r.a.SSDFailovers)
	}
	if r.a.SSDEpoch(1) != 1 {
		t.Fatalf("epoch = %d, want bump to 1", r.a.SSDEpoch(1))
	}
}
