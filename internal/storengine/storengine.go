// Package storengine implements the Oasis storage engine (§3.4): a block
// I/O frontend for instances and an SSD backend driver, connected by the
// datapath's 64-byte message channels whose payloads mirror NVMe commands.
//
// The engine follows the paper's design exactly:
//   - 64 B messages (vs the network engine's 16 B),
//   - I/O buffers in shared CXL memory, DMAed by the SSD, never inspected
//     by the backend (§3.2.1),
//   - redundancy mirrors the network engine's backup mechanism (§3.3.3):
//     a pod may designate a backup drive; writes are mirrored to it, and
//     on a primary failure the allocator re-binds volumes onto the backup
//     with an epoch-fenced failover so a zombie backend's late completions
//     are rejected and no acknowledged write is lost. Without a backup, a
//     drive failure surfaces ErrVolumeLost to the guest (§3.4's error
//     propagation) instead of stalling silently.
//
// Both drivers are instantiations of the core engine runtime (core.Driver +
// core.LinkSet) and the backend reports telemetry to the pod-wide allocator
// over the shared control protocol (§3.5) — the same path NIC backends use.
//
// The paper designs but does not implement this engine; it is implemented
// here to the section's specification.
package storengine

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/msgchan"
	"oasis/internal/netstack"
	"oasis/internal/sim"
	"oasis/internal/ssd"
)

// ErrVolumeLost marks a volume whose drive failed with no valid backup
// copy: the data is gone and every pending and future I/O fails. Callers
// detect it with errors.Is; the degraded state is permanent by design —
// the layer above must re-provision. (Before failover existed, this case
// stalled silently.)
var ErrVolumeLost = errors.New("storengine: volume lost")

// ErrMigrating marks writes rejected while a volume is frozen for
// migration. A rejected write was never acknowledged, so failing it breaks
// no durability promise; the guest retries against the destination volume
// after cutover.
var ErrMigrating = errors.New("storengine: volume is migrating")

// Config sizes the storage engine.
type Config struct {
	// BufAreaBytes is the per-volume I/O buffer area in shared CXL memory.
	BufAreaBytes int64
	// BufSize is one I/O buffer (bounds a single request's span).
	BufSize int
	// Chan configures the 64 B channels.
	Chan msgchan.Config
	// LoopCost / Burst / IdleBackoff mirror the network engine's core model.
	LoopCost    sim.Duration
	Burst       int
	IdleBackoff sim.Duration
	// TelemetryEvery is the backend's load-report period (§3.5: 100 ms).
	TelemetryEvery sim.Duration
	// PendingLimit bounds each peer link's queue of messages parked on a
	// full ring before the link reports backpressure (core.LinkSet).
	PendingLimit int
	// MaxRetries bounds per-request resubmissions after an errored or
	// fenced completion. The retry budget must outlast the allocator's
	// failure-detection window so a request caught by a drive failure
	// lands on the re-bound volume instead of erroring. 0 disables
	// retries (pre-failover behavior).
	MaxRetries int
	// RetryBase / RetryCap shape the exponential retry backoff.
	RetryBase sim.Duration
	RetryCap  sim.Duration
}

// DefaultConfig: 64 KiB buffers (16 blocks per request max).
func DefaultConfig() Config {
	ch := msgchan.DefaultConfig()
	ch.MsgSize = 64 // §3.4: storage messages mirror the 64 B NVMe command
	return Config{
		BufAreaBytes:   8 << 20,
		BufSize:        16 * ssd.BlockSize,
		Chan:           ch,
		LoopCost:       60 * time.Nanosecond,
		Burst:          32,
		IdleBackoff:    time.Microsecond,
		TelemetryEvery: 100 * time.Millisecond,
		PendingLimit:   core.DefaultPendingLimit,
		MaxRetries:     8,
		RetryBase:      5 * time.Millisecond,
		RetryCap:       100 * time.Millisecond,
	}
}

// MaxBlocksPerRequest is the per-request span bound.
func (c Config) MaxBlocksPerRequest() int { return c.BufSize / ssd.BlockSize }

// driverConfig derives the core runtime pacing from the engine config.
func (c Config) driverConfig() core.DriverConfig {
	return core.DriverConfig{LoopCost: c.LoopCost, IdleBackoff: c.IdleBackoff}
}

// retryBackoff is the wait before resubmission attempt n (1-based).
func (c Config) retryBackoff(attempt int) sim.Duration {
	d := c.RetryBase
	if d <= 0 {
		d = time.Millisecond
	}
	for i := 1; i < attempt; i++ {
		d *= 2
		if c.RetryCap > 0 && d >= c.RetryCap {
			return c.RetryCap
		}
	}
	if c.RetryCap > 0 && d > c.RetryCap {
		d = c.RetryCap
	}
	return d
}

// readyRecheck paces the frontend's re-examination of requests parked on a
// volume whose (re-bound) primary has not acked registration yet.
const readyRecheck = 50 * time.Microsecond

// Message opcodes.
const (
	sOpRead        = 1
	sOpWrite       = 2
	sOpComplete    = 3
	sOpRegister    = 4
	sOpRegisterAck = 5
)

// smsg is the 63-byte payload layout, mirroring an NVMe command (§3.4).
// The epoch field fences completions across failovers: the frontend stamps
// requests with the volume's epoch, the backend echoes it, and completions
// whose epoch does not match the in-flight leg are rejected as stale.
type smsg struct {
	op     byte
	cid    uint16
	lba    uint64
	blocks uint16
	buf    int64
	ip     netstack.IP
	status uint8
	base   uint64 // register ack: assigned base LBA
	size   uint64 // register: requested blocks; ack: granted blocks
	epoch  uint16 // volume epoch (fencing)
}

func (m smsg) encode(buf []byte) []byte {
	buf = buf[:0]
	var b [44]byte
	b[0] = m.op
	binary.LittleEndian.PutUint16(b[1:3], m.cid)
	binary.LittleEndian.PutUint64(b[3:11], m.lba)
	binary.LittleEndian.PutUint16(b[11:13], m.blocks)
	binary.LittleEndian.PutUint64(b[13:21], uint64(m.buf))
	binary.LittleEndian.PutUint32(b[21:25], uint32(m.ip))
	b[25] = m.status
	binary.LittleEndian.PutUint64(b[26:34], m.base)
	binary.LittleEndian.PutUint64(b[34:42], m.size)
	binary.LittleEndian.PutUint16(b[42:44], m.epoch)
	return append(buf, b[:]...)
}

func sdecode(payload []byte) smsg {
	var m smsg
	m.op = payload[0]
	m.cid = binary.LittleEndian.Uint16(payload[1:3])
	m.lba = binary.LittleEndian.Uint64(payload[3:11])
	m.blocks = binary.LittleEndian.Uint16(payload[11:13])
	m.buf = int64(binary.LittleEndian.Uint64(payload[13:21]))
	m.ip = netstack.IP(binary.LittleEndian.Uint32(payload[21:25]))
	m.status = payload[25]
	m.base = binary.LittleEndian.Uint64(payload[26:34])
	m.size = binary.LittleEndian.Uint64(payload[34:42])
	m.epoch = binary.LittleEndian.Uint16(payload[42:44])
	return m
}

// ioReq is one in-flight block request on the frontend. A request fans out
// into one leg per drive (primary, plus the mirror for writes); it settles
// — completes or retries — only when every leg has resolved.
type ioReq struct {
	vol    *Volume
	op     byte
	lba    uint64
	blocks int
	buf    int64 // CXL buffer address; -1 = none (register ops, quarantined)
	data   []byte
	result []byte
	status uint8
	done   bool
	lost   bool // completed with ErrVolumeLost
	sig    *sim.Signal

	regTarget   uint16       // register ops: drive to register on
	outstanding int          // legs in flight
	okOn        []uint16     // drives whose leg completed StatusOK
	attempts    int          // resubmissions so far
	notBefore   sim.Duration // retry backoff gate
}

// pendingLeg tracks one in-flight command on one drive.
type pendingLeg struct {
	req   *ioReq
	ssdID uint16
	epoch uint16
}

// sbeLink is the frontend's engine-specific peer state for one storage
// backend (one SSD), carried in the core link's Meta.
type sbeLink struct {
	ssdID uint16
	link  *core.Link
}

// Frontend is the per-host storage frontend driver: it exposes block
// volumes to local instances and forwards requests/completions. It is an
// engine loop on the core runtime — Start gives it a dedicated driver
// core, Join multiplexes it onto a shared one.
type Frontend struct {
	h    *host.Host
	pool *cxl.Pool
	cfg  Config

	links     *core.LinkSet // by SSD id; Meta holds *sbeLink
	vols      map[netstack.IP]*Volume
	volOrder  []netstack.IP
	reqQ      *sim.Queue[*ioReq]
	retryQ    []*ioReq // backoff-deferred requests
	pending   map[uint16]*pendingLeg
	nextCID   uint16
	ctrl      *core.LinkEnd // allocator command channel (failover)
	backupSSD uint16
	driver    *core.Driver

	// Stats.
	Reads, Writes, Errors int64
	MirrorWrites          int64 // write legs fanned out to the backup drive
	Retries               int64 // request resubmissions (error or fence)
	StaleRejected         int64 // completions rejected by cid/epoch fencing
	Rebinds               int64 // volume primary re-bindings (failover)
	VolumesLost           int64 // volumes declared lost (no valid backup)
	FailoversApplied      int64 // SSD failover commands processed
	QuarantinedBufs       int64 // buffers retired to dodge zombie DMA
}

// NewFrontend creates the storage frontend for a pod host.
func NewFrontend(h *host.Host, pool *cxl.Pool, cfg Config) *Frontend {
	if !h.InPod() {
		panic("storengine: frontend host must be in the CXL pod")
	}
	return &Frontend{
		h:       h,
		pool:    pool,
		cfg:     cfg,
		links:   core.NewLinkSet(cfg.PendingLimit),
		vols:    make(map[netstack.IP]*Volume),
		reqQ:    sim.NewQueue[*ioReq](h.Eng),
		pending: make(map[uint16]*pendingLeg),
	}
}

// ConnectBackend wires this frontend to a storage backend.
func (fe *Frontend) ConnectBackend(ssdID uint16, end *core.LinkEnd) {
	l := fe.links.Add(uint32(ssdID), end)
	l.Meta = &sbeLink{ssdID: ssdID, link: l}
}

// SetControlLink attaches the frontend's channel to the pod-wide allocator,
// which announces SSD failovers (volume re-binding) over it.
func (fe *Frontend) SetControlLink(end *core.LinkEnd) { fe.ctrl = end }

// SetBackupSSD designates the pod's backup drive (§3.3.3's backup-NIC
// mechanism applied to storage): every volume whose primary is a different
// drive registers a mirror there, and writes fan out to both copies so the
// allocator can re-bind volumes onto the backup when a primary fails.
func (fe *Frontend) SetBackupSSD(id uint16) {
	fe.backupSSD = id
	for _, ip := range fe.volOrder {
		v := fe.vols[ip]
		if v.primaryID != id {
			fe.reqQ.Push(&ioReq{vol: v, op: sOpRegister, lba: v.reqBlocks, regTarget: id, buf: -1})
		}
	}
}

// sbeLink returns the engine state for an SSD's link, or nil.
func (fe *Frontend) sbeLink(ssdID uint16) *sbeLink {
	l := fe.links.Get(uint32(ssdID))
	if l == nil {
		return nil
	}
	return l.Meta.(*sbeLink)
}

// Volume is an instance's block device: a slice of a pooled SSD reached
// through the storage engine, optionally mirrored onto the pod's backup
// drive.
type Volume struct {
	fe        *Frontend
	ip        netstack.IP // owning instance
	primaryID uint16
	link      *sbeLink // current primary's link
	mirror    *sbeLink // backup drive's link (nil when unmirrored)
	mirrorOK  bool     // backup copy valid (in sync)
	area      *core.BufferArea
	base      uint64 // assigned by the primary at registration
	blocks    uint64
	reqBlocks uint64          // requested size (re-registration after re-bind)
	ready     map[uint16]bool // per-drive registration acked
	everReady bool
	epoch     uint16 // bumped by each failover; fences stale completions
	lost      bool
	migrating bool // writes frozen for migration (FreezeWrites)
	inflight  int  // submitted requests not yet resolved (Quiesce)
	sig       *sim.Signal

	// Pre-copy migration support: while tracking is on, the LBA of every
	// acknowledged write is recorded so a migrator can copy the bulk of the
	// volume with writes still flowing and later flush only the remainder.
	tracking bool
	dirty    map[uint64]struct{} // dirty block numbers since StartDirtyTracking

	// Stats.
	IOErrors int64
	Rebinds  int64
}

// AddVolume provisions a volume of the given size on the given SSD for an
// instance, allocating its buffer area and registering with the backend.
func (fe *Frontend) AddVolume(ip netstack.IP, ssdID uint16, blocks uint64) (*Volume, error) {
	if _, dup := fe.vols[ip]; dup {
		return nil, fmt.Errorf("storengine: instance %v already has a volume", ip)
	}
	region, err := fe.pool.Alloc(fe.cfg.BufAreaBytes)
	if err != nil {
		return nil, err
	}
	area, err := core.NewBufferArea(region, fe.cfg.BufSize)
	if err != nil {
		return nil, err
	}
	// The backend link is resolved when the registration is forwarded, so
	// volumes may be declared before the pod's links are wired.
	v := &Volume{
		fe: fe, ip: ip, primaryID: ssdID, area: area, reqBlocks: blocks,
		ready: make(map[uint16]bool),
		sig:   sim.NewSignal(fe.h.Eng),
	}
	fe.vols[ip] = v
	fe.volOrder = append(fe.volOrder, ip)
	// Registration rides the request queue so it is sent from the driver
	// core after Start.
	fe.reqQ.Push(&ioReq{vol: v, op: sOpRegister, lba: blocks, regTarget: ssdID, buf: -1})
	if fe.backupSSD != 0 && fe.backupSSD != ssdID {
		fe.reqQ.Push(&ioReq{vol: v, op: sOpRegister, lba: blocks, regTarget: fe.backupSSD, buf: -1})
	}
	return v, nil
}

// Blocks returns the volume's size (0 until registration completes).
func (v *Volume) Blocks() uint64 { return v.blocks }

// Primary returns the drive currently backing the volume.
func (v *Volume) Primary() uint16 { return v.primaryID }

// Epoch returns the volume's fencing epoch (one bump per failover).
func (v *Volume) Epoch() uint16 { return v.epoch }

// Lost reports whether the volume's data is gone (drive failed, no valid
// backup). All I/O on a lost volume fails with ErrVolumeLost.
func (v *Volume) Lost() bool { return v.lost }

// Mirrored reports whether the backup drive currently holds a valid copy.
func (v *Volume) Mirrored() bool { return v.mirror != nil && v.mirrorOK }

// WaitReady blocks until the backend granted the volume (false on timeout
// or if the volume is lost).
func (v *Volume) WaitReady(p *sim.Proc, timeout sim.Duration) bool {
	deadline := p.Now() + timeout
	for !v.ready[v.primaryID] {
		if v.lost {
			return false
		}
		remaining := deadline - p.Now()
		if remaining <= 0 {
			return false
		}
		v.sig.WaitTimeout(p, remaining)
	}
	return true
}

// Read reads nblocks starting at lba, blocking the calling (instance)
// process until completion. Returns the data or an I/O error.
func (v *Volume) Read(p *sim.Proc, lba uint64, nblocks int) ([]byte, error) {
	req, err := v.submit(p, sOpRead, lba, nblocks, nil)
	if err != nil {
		return nil, err
	}
	if req.lost {
		v.IOErrors++
		return nil, fmt.Errorf("storengine: read on %v: %w", v.ip, ErrVolumeLost)
	}
	if req.status != ssd.StatusOK {
		v.IOErrors++
		return nil, fmt.Errorf("storengine: read failed with NVMe status %#x", req.status)
	}
	return req.result, nil
}

// Write writes data (a whole number of blocks) at lba, blocking until
// completion. A nil return means the write is acknowledged durable on the
// volume's current primary (and, when mirrored, its backup).
func (v *Volume) Write(p *sim.Proc, lba uint64, data []byte) error {
	if len(data)%ssd.BlockSize != 0 {
		return fmt.Errorf("storengine: write of %d bytes is not block-aligned", len(data))
	}
	req, err := v.submit(p, sOpWrite, lba, len(data)/ssd.BlockSize, data)
	if err != nil {
		return err
	}
	if req.lost {
		v.IOErrors++
		return fmt.Errorf("storengine: write on %v: %w", v.ip, ErrVolumeLost)
	}
	if req.status != ssd.StatusOK {
		v.IOErrors++
		return fmt.Errorf("storengine: write failed with NVMe status %#x", req.status)
	}
	// Marking at ack time (not submit) means the dirty set is exactly the
	// acked-durable writes a pre-copy migration must not lose: a write
	// submitted before tracking began but acked after is still captured.
	if v.tracking {
		for b := lba; b < lba+uint64(len(data)/ssd.BlockSize); b++ {
			v.dirty[b] = struct{}{}
		}
	}
	return nil
}

// submit runs the instance-side half of a request: buffer allocation, data
// staging (for writes, through the host cache — the frontend core writes it
// back), then blocks on the completion signal.
func (v *Volume) submit(p *sim.Proc, op byte, lba uint64, nblocks int, data []byte) (*ioReq, error) {
	if v.lost {
		return nil, fmt.Errorf("storengine: submit on %v: %w", v.ip, ErrVolumeLost)
	}
	if v.migrating && op == sOpWrite {
		return nil, fmt.Errorf("storengine: write on %v: %w", v.ip, ErrMigrating)
	}
	if !v.everReady {
		return nil, fmt.Errorf("storengine: volume not ready")
	}
	if nblocks <= 0 || nblocks > v.fe.cfg.MaxBlocksPerRequest() {
		return nil, fmt.Errorf("storengine: request of %d blocks exceeds limit %d", nblocks, v.fe.cfg.MaxBlocksPerRequest())
	}
	if lba+uint64(nblocks) > v.blocks {
		return nil, fmt.Errorf("storengine: request [%d, %d) outside volume of %d blocks", lba, lba+uint64(nblocks), v.blocks)
	}
	buf, ok := v.area.Alloc()
	if !ok {
		return nil, fmt.Errorf("storengine: volume buffer area exhausted")
	}
	if op == sOpWrite {
		v.fe.h.Cache.Write(p, buf, data, "payload")
	}
	p.Sleep(v.fe.h.IPCCost)
	req := &ioReq{
		vol: v, op: op, lba: lba, blocks: nblocks, buf: buf, data: data,
		sig: sim.NewSignal(v.fe.h.Eng),
	}
	v.inflight++
	v.fe.reqQ.Push(req)
	for !req.done {
		req.sig.Wait(p)
	}
	v.inflight--
	return req, nil
}

// StartDirtyTracking arms pre-copy migration: from this call on, the block
// numbers of acknowledged writes are recorded. The migrator copies the full
// volume concurrently with live writes, then freezes and re-copies only the
// dirty remainder — bounding the write-blackout window by the write rate
// instead of the volume size.
func (v *Volume) StartDirtyTracking() {
	v.tracking = true
	v.dirty = make(map[uint64]struct{})
}

// StopDirtyTracking disarms tracking and discards the dirty set (migration
// finished or aborted).
func (v *Volume) StopDirtyTracking() {
	v.tracking = false
	v.dirty = nil
}

// DirtyCount returns the number of distinct blocks dirtied since tracking
// began.
func (v *Volume) DirtyCount() int { return len(v.dirty) }

// DirtyRange is a run of consecutive dirty blocks.
type DirtyRange struct {
	LBA    uint64
	Blocks uint64
}

// TakeDirty drains the dirty set as sorted, coalesced ranges and resets it,
// so a flush pass can iterate deterministically while tracking continues to
// capture writes racing the pass.
func (v *Volume) TakeDirty() []DirtyRange {
	if len(v.dirty) == 0 {
		return nil
	}
	blocks := make([]uint64, 0, len(v.dirty))
	for b := range v.dirty {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	v.dirty = make(map[uint64]struct{})
	var runs []DirtyRange
	for _, b := range blocks {
		if n := len(runs); n > 0 && runs[n-1].LBA+runs[n-1].Blocks == b {
			runs[n-1].Blocks++
			continue
		}
		runs = append(runs, DirtyRange{LBA: b, Blocks: 1})
	}
	return runs
}

// FreezeWrites begins a migration: new writes on the volume fail fast with
// ErrMigrating (they are never acknowledged, so no durability promise is
// broken), while reads keep serving so the migrator can copy the blocks.
func (v *Volume) FreezeWrites() { v.migrating = true }

// Migrating reports whether writes are frozen (FreezeWrites ran).
func (v *Volume) Migrating() bool { return v.migrating }

// UnfreezeWrites aborts a migration: writes flow again. The epoch bump
// from an intervening Quiesce is harmless — it only widens the fence.
func (v *Volume) UnfreezeWrites() { v.migrating = false }

// Quiesce blocks until every in-flight request on the volume has resolved
// — acked writes are then durable and visible to subsequent reads — and
// bumps the fencing epoch so a straggler completion from a wedged backend
// is rejected as stale (StaleRejected) instead of landing after the
// cutover. Returns false if a leg was still stuck at the timeout; the
// epoch bump fences it regardless.
func (v *Volume) Quiesce(p *sim.Proc, timeout sim.Duration) bool {
	deadline := p.Now() + timeout
	for v.inflight > 0 {
		if p.Now() >= deadline {
			v.epoch++
			return false
		}
		v.sig.WaitTimeout(p, minDuration(100*time.Microsecond, deadline-p.Now()))
	}
	v.epoch++
	return true
}

func minDuration(a, b sim.Duration) sim.Duration {
	if a < b {
		return a
	}
	return b
}

// Volume returns the frontend's volume for an instance (nil if none).
func (fe *Frontend) Volume(ip netstack.IP) *Volume { return fe.vols[ip] }

// VolumeCount returns the number of attached volumes.
func (fe *Frontend) VolumeCount() int { return len(fe.volOrder) }

// UsesSSD reports whether any volume is bound to the drive as primary or
// mirror, or the drive is the designated backup while volumes exist — the
// checks a topology-level SSD removal must clear first.
func (fe *Frontend) UsesSSD(id uint16) bool {
	for _, ip := range fe.volOrder {
		v := fe.vols[ip]
		if v.primaryID == id {
			return true
		}
		if v.mirror != nil && v.mirror.ssdID == id {
			return true
		}
	}
	return fe.backupSSD == id && len(fe.volOrder) > 0
}

// RemoveVolume detaches a volume (end of migration or teardown). The
// volume is marked lost so any straggler leg resolves as an error rather
// than re-registering; its buffer area is intentionally not returned to
// the pool, so zombie DMA frees hit a dead area instead of a reused region
// (same quarantine policy the failover path applies).
func (fe *Frontend) RemoveVolume(ip netstack.IP) error {
	v := fe.vols[ip]
	if v == nil {
		return fmt.Errorf("storengine: no volume for %v", ip)
	}
	v.migrating = true
	v.lost = true
	v.sig.Broadcast()
	delete(fe.vols, ip)
	for i, o := range fe.volOrder {
		if o == ip {
			fe.volOrder = append(fe.volOrder[:i], fe.volOrder[i+1:]...)
			break
		}
	}
	return nil
}

// LoopName implements core.EngineLoop.
func (fe *Frontend) LoopName() string { return fe.h.Name + "/storage-fe" }

// Driver returns the core this frontend polls on (nil before Start/Join).
func (fe *Frontend) Driver() *core.Driver { return fe.driver }

// Join attaches the frontend to an already-created driver core, letting one
// core multiplex several engine loops (§5.1). Must precede Start.
func (fe *Frontend) Join(d *core.Driver) {
	if fe.driver != nil {
		panic("storengine: frontend already has a driver core")
	}
	fe.driver = d
	d.Attach(fe)
}

// Start launches the frontend's dedicated core. No-op if the frontend
// joined a shared core.
func (fe *Frontend) Start() {
	if fe.driver != nil {
		fe.driver.Start()
		return
	}
	fe.driver = core.NewDriver(fe.h, fe.LoopName(), fe.cfg.driverConfig())
	fe.driver.Attach(fe)
	fe.driver.Start()
}

// PollOnce implements core.EngineLoop: one pass over retry promotions, the
// request queue, backend completions, and allocator commands.
func (fe *Frontend) PollOnce(p *sim.Proc) int {
	var buf [63]byte
	progress := 0
	if len(fe.retryQ) > 0 {
		now := p.Now()
		kept := fe.retryQ[:0]
		for _, req := range fe.retryQ {
			if req.done {
				continue
			}
			if req.notBefore <= now {
				fe.reqQ.Push(req)
			} else {
				kept = append(kept, req)
			}
		}
		for i := len(kept); i < len(fe.retryQ); i++ {
			fe.retryQ[i] = nil
		}
		fe.retryQ = kept
	}
	for i := 0; i < fe.cfg.Burst; i++ {
		req, ok := fe.reqQ.TryPop()
		if !ok {
			break
		}
		fe.forward(p, req, buf[:])
		progress++
	}
	progress += fe.links.PollEach(p, fe.cfg.Burst, func(p *sim.Proc, l *core.Link, payload []byte) {
		fe.handleBackendMsg(p, l.Meta.(*sbeLink), sdecode(payload))
	})
	if fe.ctrl != nil {
		for i := 0; i < fe.cfg.Burst; i++ {
			payload, ok := fe.ctrl.Poll(p)
			if !ok {
				break
			}
			if core.IsControlOp(payload[0]) {
				fe.handleControlMsg(p, core.DecodeControl(payload))
				progress++
			}
		}
	}
	fe.links.FlushAll(p)
	return progress
}

// allocCID hands out the next free command id.
func (fe *Frontend) allocCID() uint16 {
	for {
		cid := fe.nextCID
		fe.nextCID++
		if _, busy := fe.pending[cid]; !busy {
			return cid
		}
	}
}

// forward publishes a request to the backend (§3.4: the frontend performs
// the write-back of staged write data; the backend never touches buffers).
// Writes additionally fan a mirror leg out to the backup drive.
func (fe *Frontend) forward(p *sim.Proc, req *ioReq, buf []byte) {
	if req.op == sOpRegister {
		l := fe.sbeLink(req.regTarget)
		if l == nil {
			fe.reqQ.Push(req) // backend not wired yet; retry
			return
		}
		m := smsg{op: sOpRegister, ip: req.vol.ip, size: req.lba, epoch: req.vol.epoch}
		if !l.link.Send(p, m.encode(buf)) {
			fe.reqQ.Push(req)
		}
		return
	}
	v := req.vol
	if v.lost {
		fe.completeLost(req)
		return
	}
	now := p.Now()
	if req.notBefore > now {
		fe.retryQ = append(fe.retryQ, req)
		return
	}
	if v.link == nil || v.link.ssdID != v.primaryID {
		v.link = fe.sbeLink(v.primaryID)
	}
	if v.link == nil || !v.ready[v.primaryID] {
		// Re-bound primary has not acked registration yet; park briefly.
		req.notBefore = now + readyRecheck
		fe.retryQ = append(fe.retryQ, req)
		return
	}
	if req.buf < 0 {
		// The original buffer was quarantined at a failover; stage afresh.
		b, ok := v.area.Alloc()
		if !ok {
			req.notBefore = now + readyRecheck
			fe.retryQ = append(fe.retryQ, req)
			return
		}
		req.buf = b
		if req.op == sOpWrite {
			fe.h.Cache.Write(p, req.buf, req.data, "payload")
		}
	}
	if req.op == sOpWrite {
		core.WritebackRange(p, fe.h.Cache, req.buf, len(req.data), "payload")
	}
	cid := fe.allocCID()
	m := smsg{
		op: req.op, cid: cid, lba: req.lba, blocks: uint16(req.blocks),
		buf: req.buf, ip: v.ip, epoch: v.epoch,
	}
	if !v.link.link.Send(p, m.encode(buf)) {
		fe.reqQ.Push(req)
		return
	}
	fe.pending[cid] = &pendingLeg{req: req, ssdID: v.primaryID, epoch: v.epoch}
	req.outstanding = 1
	if req.attempts == 0 {
		if req.op == sOpRead {
			fe.Reads++
		} else {
			fe.Writes++
		}
	}
	if req.op == sOpWrite && v.mirror != nil && v.mirrorOK &&
		v.mirror.ssdID != v.primaryID && v.ready[v.mirror.ssdID] {
		mcid := fe.allocCID()
		mm := m
		mm.cid = mcid
		// Mirror legs must not be dropped on a full ring — a write is only
		// acknowledged once both copies resolve — so they take the parked
		// (SendOrQueue) path.
		v.mirror.link.SendOrQueue(p, mm.encode(buf))
		fe.pending[mcid] = &pendingLeg{req: req, ssdID: v.mirror.ssdID, epoch: v.epoch}
		req.outstanding++
		fe.MirrorWrites++
	}
}

func (fe *Frontend) handleBackendMsg(p *sim.Proc, l *sbeLink, m smsg) {
	switch m.op {
	case sOpRegisterAck:
		v, ok := fe.vols[m.ip]
		if !ok {
			return
		}
		v.ready[l.ssdID] = true
		if l.ssdID == v.primaryID {
			v.base = m.base
			v.blocks = m.size
			v.everReady = true
			v.sig.Broadcast()
		} else if l.ssdID == fe.backupSSD && m.size > 0 {
			v.mirror = l
			v.mirrorOK = true
		}
	case sOpComplete:
		leg, ok := fe.pending[m.cid]
		if !ok || leg.epoch != m.epoch || leg.ssdID != l.ssdID {
			// A fenced (pre-failover) command's late completion — the
			// zombie-backend case — or a cid reused across epochs.
			fe.StaleRejected++
			return
		}
		delete(fe.pending, m.cid)
		req := leg.req
		req.outstanding--
		v := req.vol
		if m.status == ssd.StatusOK {
			req.okOn = append(req.okOn, leg.ssdID)
			if req.op == sOpRead && req.result == nil && leg.ssdID == v.primaryID {
				// Pull the data the SSD DMAed into shared CXL memory;
				// invalidate first so a recycled buffer's stale lines
				// cannot leak through.
				n := req.blocks * ssd.BlockSize
				core.InvalidateRange(p, fe.h.Cache, req.buf, n, "payload")
				out := make([]byte, n)
				fe.h.Cache.Read(p, req.buf, out, "payload")
				p.Sleep(fe.h.Local.TouchCost(n)) // copy into instance memory
				req.result = out
			}
		} else {
			req.status = m.status
			if v.mirror != nil && leg.ssdID == v.mirror.ssdID && leg.ssdID != v.primaryID {
				// The backup copy diverged; stop mirroring rather than
				// failing the request.
				v.mirrorOK = false
			}
		}
		if req.outstanding == 0 {
			fe.settle(p, req)
		}
	}
}

// settle decides a request's fate once every leg has resolved: complete if
// the volume's *current* primary acknowledged it, otherwise retry with
// exponential backoff until the allocator's failover re-binds the volume —
// or the budget runs out and the error propagates to the guest (§3.4).
func (fe *Frontend) settle(p *sim.Proc, req *ioReq) {
	v := req.vol
	if v.lost {
		fe.completeLost(req)
		return
	}
	ok := false
	for _, id := range req.okOn {
		if id == v.primaryID {
			ok = true
		}
	}
	if req.op == sOpRead && req.result == nil {
		ok = false
	}
	if ok {
		req.status = ssd.StatusOK
		v.area.Free(req.buf)
		req.buf = -1
		req.done = true
		req.sig.Broadcast()
		return
	}
	if req.attempts < fe.cfg.MaxRetries {
		req.attempts++
		fe.Retries++
		req.okOn = req.okOn[:0]
		req.status = 0
		req.notBefore = p.Now() + fe.cfg.retryBackoff(req.attempts)
		fe.retryQ = append(fe.retryQ, req)
		return
	}
	if req.status == ssd.StatusOK || req.status == 0 {
		req.status = ssd.StatusDeviceFault
	}
	fe.Errors++
	if req.buf >= 0 {
		v.area.Free(req.buf)
		req.buf = -1
	}
	req.done = true
	req.sig.Broadcast()
}

// completeLost fails a request with the volume-lost marker.
func (fe *Frontend) completeLost(req *ioReq) {
	req.lost = true
	req.status = ssd.StatusDeviceFault
	if req.buf >= 0 {
		req.vol.area.Free(req.buf)
		req.buf = -1
	}
	req.done = true
	req.sig.Broadcast()
}

// handleControlMsg applies an allocator SSD-failover command: fence every
// in-flight leg on the failed drive, re-bind affected volumes onto the
// backup (Aux) at the new epoch, and resubmit the fenced requests. Aux 0
// means no valid backup exists — the volumes are lost.
func (fe *Frontend) handleControlMsg(p *sim.Proc, m core.ControlMsg) {
	if m.Op != core.CtlFailover || m.Kind != core.DeviceSSD {
		return
	}
	failed, target := m.Dev, m.Aux
	// Fence first: cancel in-flight legs on the failed drive in
	// deterministic (sorted-cid) order. Their late completions — a zombie
	// backend may still deliver them — now miss the pending table.
	var cids []int
	for cid, leg := range fe.pending {
		if leg.ssdID == failed {
			cids = append(cids, int(cid))
		}
	}
	sort.Ints(cids)
	var settled []*ioReq
	for _, c := range cids {
		leg := fe.pending[uint16(c)]
		delete(fe.pending, uint16(c))
		req := leg.req
		req.outstanding--
		if req.op == sOpRead && req.buf >= 0 {
			// The zombie drive may still DMA into this buffer; retire it
			// rather than recycle — the software analogue of waiting out
			// IOMMU invalidation.
			fe.QuarantinedBufs++
			req.buf = -1
		}
		if req.outstanding == 0 {
			settled = append(settled, req)
		}
	}
	for _, ip := range fe.volOrder {
		v := fe.vols[ip]
		if v.mirror != nil && v.mirror.ssdID == failed {
			v.mirror = nil
			v.mirrorOK = false
		}
		if v.primaryID != failed {
			continue
		}
		v.epoch = m.Epoch
		if target == 0 {
			if !v.lost {
				v.lost = true
				fe.VolumesLost++
				v.sig.Broadcast()
			}
			continue
		}
		v.primaryID = target
		v.link = fe.sbeLink(target)
		// The failed drive's copy is stale from here on; there is no
		// fail-back, and the volume runs unmirrored until a new backup
		// is designated.
		if v.mirror != nil && v.mirror.ssdID == target {
			v.mirror = nil
		}
		v.mirrorOK = false
		v.Rebinds++
		fe.Rebinds++
		if !v.ready[target] {
			fe.reqQ.Push(&ioReq{vol: v, op: sOpRegister, lba: v.reqBlocks, regTarget: target, buf: -1})
		}
		v.sig.Broadcast()
	}
	// Resubmit fenced requests after the re-bind so their retries land on
	// the new primary. A mirror leg that already acked on the new primary
	// completes the request outright — the write was never lost.
	for _, req := range settled {
		fe.settle(p, req)
	}
	fe.FailoversApplied++
}

// Stats exports the uniform engine counter block (link traffic plus all
// volumes' buffer-area pressure).
func (fe *Frontend) Stats() core.EngineStats {
	s := core.EngineStats{Name: fe.LoopName(), Links: fe.links.Stats()}
	for _, ip := range fe.volOrder {
		s.AccumulateArea(fe.vols[ip].area)
	}
	return s
}

// sfeLink is the backend's engine-specific peer state for one frontend,
// carried in the core link's Meta.
type sfeLink struct {
	hostID int
	link   *core.Link
}

// svol is a granted volume on the backend.
type svol struct {
	ip     netstack.IP
	base   uint64
	blocks uint64
	link   *sfeLink
}

// pendingIO maps a device CID back to the requesting frontend. The epoch is
// echoed in the completion so the frontend can fence commands that were in
// flight across a failover.
type pendingIO struct {
	feCID     uint16
	epoch     uint16
	link      *sfeLink
	submitted sim.Duration // device submit time, for service-latency telemetry
}

// Backend is the per-SSD storage backend driver: it translates channel
// messages to SSD submissions and routes completions back, enforcing
// per-volume LBA bounds (isolation). Like the NIC backends, it reports
// 100 ms load/queue-depth telemetry to the pod-wide allocator over the
// shared control protocol; completions echo the frontend's fencing epoch so
// a backend that was presumed dead cannot smuggle stale acks past a
// failover.
type Backend struct {
	h     *host.Host
	ssdID uint16
	dev   *ssd.SSD
	cfg   Config

	links      *core.LinkSet // by frontend host id; Meta holds *sfeLink
	vols       map[netstack.IP]*svol
	nextLBA    uint64
	capacity   uint64
	inflight   map[uint16]pendingIO
	nextCID    uint16
	ctrl       *core.LinkEnd
	timersInit bool
	nextTelem  sim.Duration
	loadSnap   int64
	latSum     sim.Duration // summed service latency of IOs completed this window
	latOps     int64        // IOs completed this window
	driver     *core.Driver

	// Stats.
	Submitted, Completed int64
	BoundsViolations     int64
	RegistrationsDenied  int64
	ReRegistrations      int64 // idempotent re-acks of an existing grant
	TelemetrySent        int64
}

// NewBackend creates the backend for an SSD whose namespace 1 has the given
// capacity in blocks.
func NewBackend(h *host.Host, ssdID uint16, dev *ssd.SSD, capacityBlocks uint64, cfg Config) *Backend {
	dev.AddNamespace(1, capacityBlocks)
	return &Backend{
		h:        h,
		ssdID:    ssdID,
		dev:      dev,
		cfg:      cfg,
		links:    core.NewLinkSet(cfg.PendingLimit),
		vols:     make(map[netstack.IP]*svol),
		capacity: capacityBlocks,
		inflight: make(map[uint16]pendingIO),
	}
}

// SSDID returns the pod-wide SSD identifier.
func (be *Backend) SSDID() uint16 { return be.ssdID }

// Host returns the backend's host.
func (be *Backend) Host() *host.Host { return be.h }

// Device returns the SSD under management.
func (be *Backend) Device() *ssd.SSD { return be.dev }

// ConnectFrontend wires a frontend's link end.
func (be *Backend) ConnectFrontend(hostID int, end *core.LinkEnd) {
	l := be.links.Add(uint32(hostID), end)
	l.Meta = &sfeLink{hostID: hostID, link: l}
}

// SetControlLink attaches the backend's channel to the pod-wide allocator.
func (be *Backend) SetControlLink(end *core.LinkEnd) { be.ctrl = end }

// LoopName implements core.EngineLoop.
func (be *Backend) LoopName() string { return fmt.Sprintf("%s/storage-be%d", be.h.Name, be.ssdID) }

// Driver returns the core this backend polls on (nil before Start/Join).
func (be *Backend) Driver() *core.Driver { return be.driver }

// Join attaches the backend to an already-created driver core. Must precede
// Start.
func (be *Backend) Join(d *core.Driver) {
	if be.driver != nil {
		panic("storengine: backend already has a driver core")
	}
	be.driver = d
	d.Attach(be)
}

// Start launches the backend's dedicated core. No-op if the backend joined
// a shared core.
func (be *Backend) Start() {
	if be.driver != nil {
		be.driver.Start()
		return
	}
	be.driver = core.NewDriver(be.h, be.LoopName(), be.cfg.driverConfig())
	be.driver.Attach(be)
	be.driver.Start()
}

// PollOnce implements core.EngineLoop: one pass over parked completions,
// frontend messages, device completions, and the telemetry window.
func (be *Backend) PollOnce(p *sim.Proc) int {
	if !be.timersInit {
		be.timersInit = true
		be.nextTelem = p.Now() + be.cfg.TelemetryEvery
	}
	var buf [63]byte
	// Parked completions count as progress: the loop must stay hot until
	// they are delivered.
	progress := be.links.PendingCount()
	be.links.DrainPending(p)
	progress += be.links.PollEach(p, be.cfg.Burst, func(p *sim.Proc, l *core.Link, payload []byte) {
		be.handleFrontendMsg(p, l.Meta.(*sfeLink), sdecode(payload), buf[:])
	})
	for i := 0; i < be.cfg.Burst; i++ {
		comp, ok := be.dev.PollCompletion()
		if !ok {
			break
		}
		be.handleCompletion(p, comp, buf[:])
		progress++
	}
	if be.ctrl != nil {
		be.maybeSendTelemetry(p)
	}
	be.links.FlushAll(p)
	if be.ctrl != nil {
		be.ctrl.Flush(p)
	}
	return progress
}

// maybeSendTelemetry emits the periodic load record (§3.5: every 100 ms)
// through the same control path NIC backends use, tagged DeviceSSD so the
// allocator tracks drive leases and load alongside NICs.
func (be *Backend) maybeSendTelemetry(p *sim.Proc) {
	if p.Now() < be.nextTelem {
		return
	}
	be.nextTelem = p.Now() + be.cfg.TelemetryEvery
	load := be.dev.BytesRead + be.dev.BytesWritten
	delta := load - be.loadSnap
	be.loadSnap = load
	qdepth := len(be.inflight)
	if qdepth > 65535 {
		qdepth = 65535
	}
	// The per-kind health slot for storage is the window's mean request
	// service latency in µs (§3.5): a slow-but-alive drive shows up here
	// long before it fails its link.
	var meanUs uint64
	if be.latOps > 0 {
		meanUs = uint64(be.latSum/time.Microsecond) / uint64(be.latOps)
		if meanUs > 65535 {
			meanUs = 65535
		}
	}
	be.latSum, be.latOps = 0, 0
	var buf [15]byte
	be.ctrl.Send(p, core.EncodeControl(buf[:], core.ControlMsg{
		Op:         core.CtlTelemetry,
		Kind:       core.DeviceSSD,
		Dev:        be.ssdID,
		Load:       uint64(delta),
		LinkUp:     !be.dev.Failed(),
		AER:        uint16(meanUs),
		QueueDepth: uint16(qdepth),
	}))
	be.ctrl.Flush(p)
	be.TelemetrySent++
}

func (be *Backend) handleFrontendMsg(p *sim.Proc, l *sfeLink, m smsg, buf []byte) {
	switch m.op {
	case sOpRegister:
		if v, dup := be.vols[m.ip]; dup {
			// Idempotent re-registration (frontend retry, or a failover
			// re-bind onto a drive that already mirrors the volume):
			// re-ack the existing grant instead of double-allocating.
			be.ReRegistrations++
			v.link = l
			l.link.SendOrQueue(p, smsg{op: sOpRegisterAck, ip: m.ip, base: v.base, size: v.blocks, epoch: m.epoch}.encode(buf))
			return
		}
		blocks := m.size
		if be.nextLBA+blocks > be.capacity {
			be.RegistrationsDenied++
			l.link.SendOrQueue(p, smsg{op: sOpRegisterAck, ip: m.ip, base: 0, size: 0, epoch: m.epoch}.encode(buf))
			return
		}
		v := &svol{ip: m.ip, base: be.nextLBA, blocks: blocks, link: l}
		be.nextLBA += blocks
		be.vols[m.ip] = v
		l.link.SendOrQueue(p, smsg{op: sOpRegisterAck, ip: m.ip, base: v.base, size: v.blocks, epoch: m.epoch}.encode(buf))
	case sOpRead, sOpWrite:
		v, ok := be.vols[m.ip]
		if !ok || uint64(m.lba)+uint64(m.blocks) > v.blocks {
			// Bounds violation: reject without touching the device.
			be.BoundsViolations++
			l.link.SendOrQueue(p, smsg{op: sOpComplete, cid: m.cid, status: ssd.StatusLBARange, epoch: m.epoch}.encode(buf))
			return
		}
		op := uint8(ssd.OpRead)
		if m.op == sOpWrite {
			op = ssd.OpWrite
		}
		devCID := be.nextCID
		be.nextCID++
		be.inflight[devCID] = pendingIO{feCID: m.cid, epoch: m.epoch, link: l, submitted: p.Now()}
		cmd := ssd.Command{
			Opcode: op, CID: devCID, NSID: 1,
			LBA: v.base + m.lba, Blocks: m.blocks, Buf: m.buf,
		}
		// The backend never inspects the buffer (§3.2.1): the pointer goes
		// straight into the submission queue.
		if !be.dev.Submit(p, cmd) {
			delete(be.inflight, devCID)
			l.link.SendOrQueue(p, smsg{op: sOpComplete, cid: m.cid, status: ssd.StatusDeviceFault, epoch: m.epoch}.encode(buf))
			return
		}
		be.Submitted++
	}
}

func (be *Backend) handleCompletion(p *sim.Proc, comp ssd.Completion, buf []byte) {
	io, ok := be.inflight[comp.CID]
	if !ok {
		return
	}
	delete(be.inflight, comp.CID)
	be.Completed++
	be.latSum += p.Now() - io.submitted
	be.latOps++
	io.link.link.SendOrQueue(p, smsg{op: sOpComplete, cid: io.feCID, status: comp.Status, epoch: io.epoch}.encode(buf))
}

// Stats exports the uniform engine counter block.
func (be *Backend) Stats() core.EngineStats {
	return core.EngineStats{Name: be.LoopName(), Links: be.links.Stats()}
}
