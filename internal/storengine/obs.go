package storengine

import (
	"fmt"

	"oasis/internal/obs"
)

// RegisterObs registers the storage frontend's counters, its volumes'
// counters, and its per-SSD channel series under prefix/* (conventionally
// <host>/sfe).
func (fe *Frontend) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/reads", func() int64 { return fe.Reads })
	r.Counter(prefix+"/writes", func() int64 { return fe.Writes })
	r.Counter(prefix+"/errors", func() int64 { return fe.Errors })
	r.Counter(prefix+"/mirror_writes", func() int64 { return fe.MirrorWrites })
	r.Counter(prefix+"/retries", func() int64 { return fe.Retries })
	r.Counter(prefix+"/stale_rejected", func() int64 { return fe.StaleRejected })
	r.Counter(prefix+"/rebinds", func() int64 { return fe.Rebinds })
	r.Counter(prefix+"/volumes_lost", func() int64 { return fe.VolumesLost })
	r.Counter(prefix+"/failovers_applied", func() int64 { return fe.FailoversApplied })
	r.Counter(prefix+"/quarantined_bufs", func() int64 { return fe.QuarantinedBufs })
	fe.links.RegisterObs(r, prefix, func(peer uint32) string { return fmt.Sprintf("ssd%d", peer) })
	for _, ip := range fe.volOrder {
		v := fe.vols[ip]
		vpfx := fmt.Sprintf("%s/vol/%v", prefix, ip)
		r.Counter(vpfx+"/io_errors", func() int64 { return v.IOErrors })
		r.Counter(vpfx+"/rebinds", func() int64 { return v.Rebinds })
		v.area.RegisterObs(r, vpfx)
	}
}

// RegisterObs registers the storage backend's counters and its per-host
// channel series under prefix/* (conventionally <host>/sbe<ssd>).
func (be *Backend) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/submitted", func() int64 { return be.Submitted })
	r.Counter(prefix+"/completed", func() int64 { return be.Completed })
	r.Counter(prefix+"/bounds_violations", func() int64 { return be.BoundsViolations })
	r.Counter(prefix+"/registrations_denied", func() int64 { return be.RegistrationsDenied })
	r.Counter(prefix+"/re_registrations", func() int64 { return be.ReRegistrations })
	r.Counter(prefix+"/telemetry_sent", func() int64 { return be.TelemetrySent })
	be.links.RegisterObs(r, prefix, func(peer uint32) string { return fmt.Sprintf("host%d", peer) })
}
