package storengine

import (
	"bytes"
	"testing"
	"time"

	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/netstack"
	"oasis/internal/sim"
	"oasis/internal/ssd"
)

// storRig: host A runs the frontend (instance side), host B owns the SSD.
type storRig struct {
	eng  *sim.Engine
	pool *cxl.Pool
	hA   *host.Host
	hB   *host.Host
	fe   *Frontend
	be   *Backend
	dev  *ssd.SSD
}

func newStorRig(t *testing.T) *storRig {
	t.Helper()
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<28, cxl.DefaultParams())
	hA := host.New(eng, 0, "hostA", pool, host.DefaultConfig())
	hB := host.New(eng, 1, "hostB", pool, host.DefaultConfig())
	cfg := DefaultConfig()
	dev := ssd.New(eng, "ssd0", pool.AttachPort("ssd0-dma"), ssd.DefaultParams())
	fe := NewFrontend(hA, pool, cfg)
	be := NewBackend(hB, 1, dev, 1<<18, cfg)
	feEnd, beEnd, err := core.NewDuplexLink(pool, hA, hB, cfg.Chan)
	if err != nil {
		t.Fatal(err)
	}
	fe.ConnectBackend(1, feEnd)
	be.ConnectFrontend(hA.ID, beEnd)
	dev.Start()
	fe.Start()
	be.Start()
	return &storRig{eng: eng, pool: pool, hA: hA, hB: hB, fe: fe, be: be, dev: dev}
}

func TestVolumeWriteReadRoundTrip(t *testing.T) {
	r := newStorRig(t)
	vol, err := r.fe.AddVolume(netstack.IPv4(10, 0, 0, 1), 1, 4096)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A, 0xA5, 0x11, 0x22}, 2*ssd.BlockSize/4)
	r.eng.Go("app", func(p *sim.Proc) {
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("volume never ready")
			return
		}
		if err := vol.Write(p, 10, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		got, err := vol.Read(p, 10, 2)
		if err != nil {
			t.Errorf("read: %v", err)
			return
		}
		if !bytes.Equal(got, data) {
			t.Error("remote-SSD round trip mismatch")
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.fe.Reads != 1 || r.fe.Writes != 1 {
		t.Fatalf("fe counters: reads=%d writes=%d", r.fe.Reads, r.fe.Writes)
	}
	if r.be.Submitted != 2 || r.be.Completed != 2 {
		t.Fatalf("be counters: submitted=%d completed=%d", r.be.Submitted, r.be.Completed)
	}
}

func TestVolumeIsolationBounds(t *testing.T) {
	r := newStorRig(t)
	v1, _ := r.fe.AddVolume(netstack.IPv4(10, 0, 0, 1), 1, 100)
	v2, _ := r.fe.AddVolume(netstack.IPv4(10, 0, 0, 2), 1, 100)
	r.eng.Go("app", func(p *sim.Proc) {
		v1.WaitReady(p, 100*time.Millisecond)
		v2.WaitReady(p, 100*time.Millisecond)
		if v1.base == v2.base {
			t.Error("volumes overlap on the device")
		}
		// v1 writes its block 0; v2's block 0 must stay zero.
		blk := bytes.Repeat([]byte{7}, ssd.BlockSize)
		if err := v1.Write(p, 0, blk); err != nil {
			t.Errorf("v1 write: %v", err)
		}
		got, err := v2.Read(p, 0, 1)
		if err != nil {
			t.Errorf("v2 read: %v", err)
			return
		}
		for _, b := range got {
			if b != 0 {
				t.Error("v2 sees v1's data: isolation broken")
				return
			}
		}
		// Out-of-bounds access is refused by the backend.
		if _, err := v1.Read(p, 99, 2); err == nil {
			t.Error("cross-boundary read allowed")
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestDriveFailurePropagatesErrors(t *testing.T) {
	r := newStorRig(t)
	vol, _ := r.fe.AddVolume(netstack.IPv4(10, 0, 0, 1), 1, 1024)
	r.eng.Go("app", func(p *sim.Proc) {
		vol.WaitReady(p, 100*time.Millisecond)
		blk := make([]byte, ssd.BlockSize)
		if err := vol.Write(p, 0, blk); err != nil {
			t.Errorf("pre-failure write: %v", err)
		}
		r.dev.Fail()
		// §3.4: the engine propagates an I/O error to the guest.
		if err := vol.Write(p, 1, blk); err == nil {
			t.Error("write on failed drive succeeded")
		}
		if _, err := vol.Read(p, 0, 1); err == nil {
			t.Error("read on failed drive succeeded")
		}
		if vol.IOErrors != 2 {
			t.Errorf("volume IO errors = %d, want 2", vol.IOErrors)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestRegistrationDeniedWhenFull(t *testing.T) {
	r := newStorRig(t)
	// Capacity is 1<<18 blocks; ask for more across two volumes.
	v1, _ := r.fe.AddVolume(netstack.IPv4(10, 0, 0, 1), 1, 1<<18)
	v2, _ := r.fe.AddVolume(netstack.IPv4(10, 0, 0, 2), 1, 1)
	r.eng.Go("app", func(p *sim.Proc) {
		v1.WaitReady(p, 100*time.Millisecond)
		v2.WaitReady(p, 100*time.Millisecond)
		if v1.Blocks() != 1<<18 {
			t.Errorf("v1 blocks = %d", v1.Blocks())
		}
		if v2.Blocks() != 0 {
			t.Errorf("v2 should have been denied, got %d blocks", v2.Blocks())
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if r.be.RegistrationsDenied != 1 {
		t.Fatalf("denied = %d", r.be.RegistrationsDenied)
	}
}

func TestRemoteReadLatency(t *testing.T) {
	r := newStorRig(t)
	vol, _ := r.fe.AddVolume(netstack.IPv4(10, 0, 0, 1), 1, 1024)
	r.eng.Go("app", func(p *sim.Proc) {
		vol.WaitReady(p, 100*time.Millisecond)
		blk := make([]byte, ssd.BlockSize)
		vol.Write(p, 0, blk)
		start := p.Now()
		if _, err := vol.Read(p, 0, 1); err != nil {
			t.Errorf("read: %v", err)
		}
		lat := p.Now() - start
		// Device ~100 µs dominates; Oasis adds single-digit µs (§5.1's
		// thesis applied to storage).
		if lat < 80*time.Microsecond || lat > 150*time.Microsecond {
			t.Errorf("remote read latency = %v, want ~100µs + small overhead", lat)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestCodecRoundTrip(t *testing.T) {
	msgs := []smsg{
		{op: sOpRead, cid: 7, lba: 123456789, blocks: 16, buf: 0x1234567, ip: netstack.IPv4(10, 0, 0, 9)},
		{op: sOpWrite, cid: 65535, lba: 1 << 40, blocks: 1, buf: 1 << 30, ip: 1},
		{op: sOpComplete, cid: 42, status: ssd.StatusDeviceFault},
		{op: sOpComplete, cid: 43, status: ssd.StatusOK, epoch: 65535},
		{op: sOpRegister, ip: netstack.IPv4(1, 2, 3, 4), size: 1 << 20, epoch: 3},
		{op: sOpRegisterAck, ip: 5, base: 777, size: 888},
	}
	var buf [63]byte
	for i, m := range msgs {
		payload := m.encode(buf[:])
		if len(payload) > 63 {
			t.Fatalf("msg %d: %d bytes exceeds payload", i, len(payload))
		}
		// Pad to full payload size as the channel would deliver it.
		full := make([]byte, 63)
		copy(full, payload)
		got := sdecode(full)
		if got != m {
			t.Fatalf("msg %d round trip:\n got %+v\nwant %+v", i, got, m)
		}
	}
}

// TestDirtyTrackingMarksAndCoalesces exercises the pre-copy migration
// primitive: tracking marks exactly the blocks of acked writes, TakeDirty
// drains them as sorted, coalesced ranges, and stopping the tracker both
// disarms marking and clears any residue.
func TestDirtyTrackingMarksAndCoalesces(t *testing.T) {
	r := newStorRig(t)
	vol, err := r.fe.AddVolume(netstack.IPv4(10, 0, 0, 1), 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	r.eng.Go("app", func(p *sim.Proc) {
		defer r.eng.Shutdown()
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("volume never ready")
			return
		}
		blk := bytes.Repeat([]byte{3}, ssd.BlockSize)
		// Writes before tracking arms must not be recorded.
		if err := vol.Write(p, 0, blk); err != nil {
			t.Errorf("pre-tracking write: %v", err)
		}
		vol.StartDirtyTracking()
		if vol.DirtyCount() != 0 {
			t.Errorf("fresh tracker has %d dirty blocks", vol.DirtyCount())
		}
		// 10,11,12 coalesce; 30 stands alone; a two-block write spans 40-41.
		for _, lba := range []uint64{11, 30, 10, 12} {
			if err := vol.Write(p, lba, blk); err != nil {
				t.Errorf("write lba %d: %v", lba, err)
			}
		}
		wide := bytes.Repeat([]byte{4}, 2*ssd.BlockSize)
		if err := vol.Write(p, 40, wide); err != nil {
			t.Errorf("write lba 40-41: %v", err)
		}
		if got := vol.DirtyCount(); got != 6 {
			t.Errorf("DirtyCount = %d, want 6", got)
		}
		dirty := vol.TakeDirty()
		want := []DirtyRange{{LBA: 10, Blocks: 3}, {LBA: 30, Blocks: 1}, {LBA: 40, Blocks: 2}}
		if len(dirty) != len(want) {
			t.Fatalf("TakeDirty = %v, want %v", dirty, want)
		}
		for i := range want {
			if dirty[i] != want[i] {
				t.Fatalf("TakeDirty[%d] = %v, want %v", i, dirty[i], want[i])
			}
		}
		// TakeDirty drains: the set restarts empty but tracking stays armed.
		if vol.DirtyCount() != 0 {
			t.Errorf("dirty set not drained by TakeDirty: %d left", vol.DirtyCount())
		}
		if err := vol.Write(p, 5, blk); err != nil {
			t.Errorf("post-drain write: %v", err)
		}
		if vol.DirtyCount() != 1 {
			t.Errorf("tracking disarmed by TakeDirty: count = %d, want 1", vol.DirtyCount())
		}
		// Stop disarms and clears.
		vol.StopDirtyTracking()
		if err := vol.Write(p, 6, blk); err != nil {
			t.Errorf("post-stop write: %v", err)
		}
		if vol.DirtyCount() != 0 {
			t.Errorf("StopDirtyTracking left %d dirty blocks", vol.DirtyCount())
		}
	})
	r.eng.Run()
}
