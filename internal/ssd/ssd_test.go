package ssd

import (
	"bytes"
	"testing"
	"time"

	"oasis/internal/cxl"
	"oasis/internal/sim"
)

type ssdRig struct {
	eng  *sim.Engine
	pool *cxl.Pool
	dev  *SSD
}

func newSSDRig() *ssdRig {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<22, cxl.DefaultParams())
	dev := New(eng, "ssd0", pool.AttachPort("ssd0-dma"), DefaultParams())
	dev.AddNamespace(1, 1<<20)
	dev.Start()
	return &ssdRig{eng: eng, pool: pool, dev: dev}
}

// waitCompletion polls the CQ until one completion arrives.
func waitCompletion(p *sim.Proc, dev *SSD, timeout sim.Duration) (Completion, bool) {
	deadline := p.Now() + timeout
	for p.Now() < deadline {
		if c, ok := dev.PollCompletion(); ok {
			return c, true
		}
		p.Sleep(time.Microsecond)
	}
	return Completion{}, false
}

func TestWriteThenReadRoundTrip(t *testing.T) {
	r := newSSDRig()
	data := bytes.Repeat([]byte{0xAB, 0xCD}, 2*BlockSize/2) // 2 blocks
	r.pool.Poke(0, data)
	r.eng.Go("driver", func(p *sim.Proc) {
		if !r.dev.Submit(p, Command{Opcode: OpWrite, CID: 1, NSID: 1, LBA: 100, Blocks: 2, Buf: 0}) {
			t.Error("write submit failed")
			return
		}
		c, ok := waitCompletion(p, r.dev, 10*time.Millisecond)
		if !ok || c.CID != 1 || c.Status != StatusOK {
			t.Errorf("write completion = %+v ok=%v", c, ok)
			return
		}
		// Read into a different buffer.
		if !r.dev.Submit(p, Command{Opcode: OpRead, CID: 2, NSID: 1, LBA: 100, Blocks: 2, Buf: 65536}) {
			t.Error("read submit failed")
			return
		}
		c, ok = waitCompletion(p, r.dev, 10*time.Millisecond)
		if !ok || c.Status != StatusOK {
			t.Errorf("read completion = %+v ok=%v", c, ok)
			return
		}
		p.Sleep(10 * time.Microsecond) // DMA write propagation
		got := make([]byte, len(data))
		r.pool.Peek(65536, got)
		if !bytes.Equal(got, data) {
			t.Error("read data mismatch")
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestReadLatencyModel(t *testing.T) {
	r := newSSDRig()
	r.eng.Go("driver", func(p *sim.Proc) {
		r.dev.Submit(p, Command{Opcode: OpRead, CID: 1, NSID: 1, LBA: 0, Blocks: 1, Buf: 0})
		start := p.Now()
		_, ok := waitCompletion(p, r.dev, 10*time.Millisecond)
		lat := p.Now() - start
		if !ok {
			t.Error("no completion")
			return
		}
		// ~80µs media + ~2µs op cost + DMA: order 100 µs (Table 1).
		if lat < 50*time.Microsecond || lat > 200*time.Microsecond {
			t.Errorf("read latency = %v, want ~100µs", lat)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestInvalidNamespaceAndRange(t *testing.T) {
	r := newSSDRig()
	r.eng.Go("driver", func(p *sim.Proc) {
		r.dev.Submit(p, Command{Opcode: OpRead, CID: 1, NSID: 9, LBA: 0, Blocks: 1, Buf: 0})
		c, _ := waitCompletion(p, r.dev, 10*time.Millisecond)
		if c.Status != StatusInvalidNS {
			t.Errorf("status = %#x, want invalid NS", c.Status)
		}
		r.dev.Submit(p, Command{Opcode: OpRead, CID: 2, NSID: 1, LBA: 1 << 20, Blocks: 1, Buf: 0})
		c, _ = waitCompletion(p, r.dev, 10*time.Millisecond)
		if c.Status != StatusLBARange {
			t.Errorf("status = %#x, want LBA range", c.Status)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestFailureFailsCommands(t *testing.T) {
	r := newSSDRig()
	r.eng.Go("driver", func(p *sim.Proc) {
		r.dev.Fail()
		r.dev.Submit(p, Command{Opcode: OpWrite, CID: 1, NSID: 1, LBA: 0, Blocks: 1, Buf: 0})
		c, ok := waitCompletion(p, r.dev, 10*time.Millisecond)
		if !ok || c.Status != StatusDeviceFault {
			t.Errorf("completion = %+v ok=%v, want device fault", c, ok)
		}
		if r.dev.Errors != 1 {
			t.Errorf("errors = %d", r.dev.Errors)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestParallelWorkersOverlapReads(t *testing.T) {
	r := newSSDRig()
	r.eng.Go("driver", func(p *sim.Proc) {
		start := p.Now()
		n := 8
		for i := 0; i < n; i++ {
			r.dev.Submit(p, Command{Opcode: OpRead, CID: uint16(i), NSID: 1, LBA: uint64(i), Blocks: 1, Buf: int64(i) * BlockSize})
		}
		got := 0
		for got < n {
			if _, ok := r.dev.PollCompletion(); ok {
				got++
				continue
			}
			p.Sleep(time.Microsecond)
		}
		elapsed := p.Now() - start
		// 8 reads with 8 workers: ~1 media latency, not 8×.
		if elapsed > 300*time.Microsecond {
			t.Errorf("8 parallel reads took %v; workers not overlapping", elapsed)
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestQueueDepthEnforced(t *testing.T) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<20, cxl.DefaultParams())
	params := DefaultParams()
	params.QueueDepth = 4
	dev := New(eng, "ssd", pool.AttachPort("dma"), params)
	dev.AddNamespace(1, 1024)
	// No Start(): commands pile up in the SQ.
	eng.Go("driver", func(p *sim.Proc) {
		accepted := 0
		for i := 0; i < 10; i++ {
			if dev.Submit(p, Command{Opcode: OpRead, CID: uint16(i), NSID: 1, LBA: 0, Blocks: 1}) {
				accepted++
			}
		}
		if accepted != 4 {
			t.Errorf("accepted %d, want queue depth 4", accepted)
		}
		if dev.QueueFullRejects != 6 {
			t.Errorf("rejects = %d", dev.QueueFullRejects)
		}
	})
	eng.Run()
}

func TestUnwrittenBlocksReadZero(t *testing.T) {
	r := newSSDRig()
	r.pool.Poke(0, bytes.Repeat([]byte{0xFF}, BlockSize)) // dirty target buffer
	r.eng.Go("driver", func(p *sim.Proc) {
		r.dev.Submit(p, Command{Opcode: OpRead, CID: 1, NSID: 1, LBA: 500, Blocks: 1, Buf: 0})
		waitCompletion(p, r.dev, 10*time.Millisecond)
		p.Sleep(10 * time.Microsecond)
		got := make([]byte, BlockSize)
		r.pool.Peek(0, got)
		for _, b := range got {
			if b != 0 {
				t.Error("unwritten block returned nonzero data")
				return
			}
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}
