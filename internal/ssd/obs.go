package ssd

import "oasis/internal/obs"

// RegisterObs registers the drive's counters under prefix/* (conventionally
// the SSD's pod name, e.g. ssd1).
func (d *SSD) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/reads", func() int64 { return d.Reads })
	r.Counter(prefix+"/writes", func() int64 { return d.Writes })
	r.Counter(prefix+"/errors", func() int64 { return d.Errors })
	r.Counter(prefix+"/bytes_read", func() int64 { return d.BytesRead })
	r.Counter(prefix+"/bytes_written", func() int64 { return d.BytesWritten })
	r.Counter(prefix+"/queue_full_rejects", func() int64 { return d.QueueFullRejects })
}
