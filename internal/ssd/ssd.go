// Package ssd models a datacenter NVMe SSD as the Oasis storage backend
// sees it through a kernel-bypass driver (SPDK-style, §3.4): submission and
// completion queues carrying 64-byte commands, DMA to arbitrary memory
// (the CXL pool for Oasis), namespaces, a latency/bandwidth/IOPS
// performance model (Table 1: ~5 GB/s, 0.5 MOp/s, ~100 µs reads), and
// failure injection that fails outstanding and future commands — the
// paper's storage engine propagates those errors to the guest rather than
// attempting transparent failover (§3.4 "Failure semantics").
package ssd

import (
	"fmt"
	"time"

	"oasis/internal/sim"
)

// BlockSize is the logical block size in bytes.
const BlockSize = 4096

// DMAMemory is the space the SSD's DMA engine moves data through
// (*cxl.Port and host.LocalMemory both satisfy it).
type DMAMemory interface {
	DMARead(addr int64, buf []byte, category string) sim.Duration
	DMAWrite(addr int64, data []byte, category string) sim.Duration
}

// Opcodes (subset of the NVM command set).
const (
	OpRead  = 0x02
	OpWrite = 0x01
	OpFlush = 0x00
)

// Status codes.
const (
	StatusOK          = 0x00
	StatusDeviceFault = 0x06
	StatusInvalidNS   = 0x0B
	StatusLBARange    = 0x80
)

// Command mirrors the fields of a 64 B NVMe command (§3.4: the engine's
// channel messages carry exactly these).
type Command struct {
	Opcode uint8
	CID    uint16 // command identifier, echoed in the completion
	NSID   uint32
	LBA    uint64
	Blocks uint16 // number of logical blocks
	Buf    int64  // DMA address (PRP) in the SSD's memory space
}

// Completion is one CQ entry.
type Completion struct {
	CID    uint16
	Status uint8
}

// Params is the device performance model.
type Params struct {
	ReadLatency  sim.Duration // media read access time
	WriteLatency sim.Duration // program (buffered) time
	Bandwidth    float64      // bytes/s of media throughput
	OpCost       sim.Duration // per-command pipeline cost (bounds IOPS)
	Workers      int          // internal parallelism (channels/dies)
	QueueDepth   int          // max outstanding commands in the SQ
}

// DefaultParams models the paper's Table 1 SSD: 5 GB/s, 0.5 MOp/s, 100 µs.
func DefaultParams() Params {
	return Params{
		ReadLatency:  80 * time.Microsecond,
		WriteLatency: 20 * time.Microsecond,
		Bandwidth:    5e9,
		OpCost:       2 * time.Microsecond, // 0.5 MOp/s through the shared pipeline
		Workers:      64,                   // internal die/channel parallelism
		QueueDepth:   1024,
	}
}

// SSD is one simulated NVMe device.
type SSD struct {
	eng    *sim.Engine
	name   string
	params Params
	mem    DMAMemory

	namespaces  map[uint32]*Namespace
	sq          *sim.Queue[Command]
	cq          *sim.Queue[Completion]
	media       *sim.Resource // serializes media bandwidth
	pipeline    *sim.Resource // serializes per-command controller work (IOPS bound)
	outstanding int
	failed      bool
	slowMult    float64 // > 1 while an ssd-slow fault inflates media latency

	// Stats.
	Reads, Writes, Errors   int64
	BytesRead, BytesWritten int64
	QueueFullRejects        int64
}

// Namespace is a logical block range with sparse backing storage.
type Namespace struct {
	Blocks uint64
	data   map[uint64][]byte // block index -> 4 KiB
}

// New creates an SSD that DMAs through mem.
func New(eng *sim.Engine, name string, mem DMAMemory, params Params) *SSD {
	d := &SSD{
		eng:        eng,
		name:       name,
		params:     params,
		mem:        mem,
		namespaces: make(map[uint32]*Namespace),
		sq:         sim.NewQueue[Command](eng),
		cq:         sim.NewQueue[Completion](eng),
		media:      sim.NewResource(eng),
		pipeline:   sim.NewResource(eng),
	}
	return d
}

// AddNamespace creates namespace nsid with the given block count.
func (d *SSD) AddNamespace(nsid uint32, blocks uint64) *Namespace {
	ns := &Namespace{Blocks: blocks, data: make(map[uint64][]byte)}
	d.namespaces[nsid] = ns
	return ns
}

// Start launches the device's internal workers.
func (d *SSD) Start() {
	for i := 0; i < d.params.Workers; i++ {
		d.eng.Go(fmt.Sprintf("%s/w%d", d.name, i), d.worker)
	}
}

// Name returns the device name.
func (d *SSD) Name() string { return d.name }

// Fail injects a device failure: outstanding and future commands complete
// with a device fault (§3.4).
func (d *SSD) Fail() { d.failed = true }

// Repair clears an injected failure; subsequent commands execute normally.
// The stored blocks survive (the fault models a controller hang, not media
// loss) — but a frontend must still treat a repaired drive's copy as stale
// until re-mirrored, which is why failover never automatically fails back.
func (d *SSD) Repair() { d.failed = false }

// Failed reports the failure state (the backend's health check reads it).
func (d *SSD) Failed() bool { return d.failed }

// SetSlow inflates the drive's media latency by mult (>= 1) without
// failing it — the gray-failure half of the fault model (faults.SSDSlow):
// commands still succeed, they just take mult times the nominal media
// latency. SetSlow(1) restores nominal service.
func (d *SSD) SetSlow(mult float64) {
	if mult <= 1 {
		d.slowMult = 0
		return
	}
	d.slowMult = mult
}

// SlowMult reports the current latency inflation factor (1 = nominal).
func (d *SSD) SlowMult() float64 {
	if d.slowMult == 0 {
		return 1
	}
	return d.slowMult
}

// mediaLat applies the ssd-slow inflation to a nominal media latency.
func (d *SSD) mediaLat(lat sim.Duration) sim.Duration {
	if d.slowMult == 0 {
		return lat
	}
	return sim.Duration(float64(lat) * d.slowMult)
}

// Submit posts one command to the SQ, charging the doorbell cost to p.
// It reports false when the queue is full.
func (d *SSD) Submit(p *sim.Proc, cmd Command) bool {
	p.Sleep(100 * time.Nanosecond) // SQ doorbell
	if d.outstanding >= d.params.QueueDepth {
		d.QueueFullRejects++
		return false
	}
	d.outstanding++
	d.sq.Push(cmd)
	return true
}

// PollCompletion pops one CQ entry if available.
func (d *SSD) PollCompletion() (Completion, bool) {
	return d.cq.TryPop()
}

// worker drains the SQ, performing media access and DMA.
func (d *SSD) worker(p *sim.Proc) {
	for {
		cmd := d.sq.Pop(p)
		// The controller pipeline is shared across all internal workers:
		// it, not the worker count, bounds the device at 1/OpCost IOPS
		// (Table 1's 0.5 MOp/s).
		d.pipeline.Use(p, d.params.OpCost)
		status := d.execute(p, cmd)
		d.outstanding--
		if status != StatusOK {
			d.Errors++
		}
		d.cq.Push(Completion{CID: cmd.CID, Status: status})
	}
}

func (d *SSD) execute(p *sim.Proc, cmd Command) uint8 {
	if d.failed {
		return StatusDeviceFault
	}
	if cmd.Opcode == OpFlush {
		p.Sleep(5 * time.Microsecond)
		return StatusOK
	}
	ns, ok := d.namespaces[cmd.NSID]
	if !ok {
		return StatusInvalidNS
	}
	if cmd.Blocks == 0 || cmd.LBA+uint64(cmd.Blocks) > ns.Blocks {
		return StatusLBARange
	}
	n := int(cmd.Blocks) * BlockSize
	switch cmd.Opcode {
	case OpRead:
		// Media access, then DMA the data to the host buffer.
		d.media.Use(p, d.streamTime(n))
		p.Sleep(d.mediaLat(d.params.ReadLatency))
		buf := make([]byte, n)
		for b := 0; b < int(cmd.Blocks); b++ {
			blk := ns.data[cmd.LBA+uint64(b)]
			if blk != nil {
				copy(buf[b*BlockSize:], blk)
			}
		}
		done := d.mem.DMAWrite(cmd.Buf, buf, "payload")
		if wait := done - p.Now(); wait > 0 {
			p.Sleep(wait)
		}
		d.Reads++
		d.BytesRead += int64(n)
	case OpWrite:
		// DMA the data from the host buffer, then program the media.
		buf := make([]byte, n)
		arrive := d.mem.DMARead(cmd.Buf, buf, "payload")
		if wait := arrive - p.Now(); wait > 0 {
			p.Sleep(wait)
		}
		d.media.Use(p, d.streamTime(n))
		p.Sleep(d.mediaLat(d.params.WriteLatency))
		for b := 0; b < int(cmd.Blocks); b++ {
			blk := make([]byte, BlockSize)
			copy(blk, buf[b*BlockSize:(b+1)*BlockSize])
			ns.data[cmd.LBA+uint64(b)] = blk
		}
		d.Writes++
		d.BytesWritten += int64(n)
	default:
		return StatusInvalidNS
	}
	return StatusOK
}

func (d *SSD) streamTime(n int) sim.Duration {
	return sim.Duration(float64(n) / d.params.Bandwidth * float64(time.Second))
}

// PeekBlock returns a namespace block's contents for tests (nil if never
// written).
func (d *SSD) PeekBlock(nsid uint32, lba uint64) []byte {
	if ns, ok := d.namespaces[nsid]; ok {
		return ns.data[lba]
	}
	return nil
}
