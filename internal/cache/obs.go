package cache

import "oasis/internal/obs"

// RegisterObs registers the cache's counters under prefix/* (conventionally
// <host>/cache).
func (c *Cache) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/hits", func() int64 { return c.stats.Hits })
	r.Counter(prefix+"/misses", func() int64 { return c.stats.Misses })
	r.Counter(prefix+"/fill_waits", func() int64 { return c.stats.FillWaits })
	r.Counter(prefix+"/prefetch_issued", func() int64 { return c.stats.PrefetchIssued })
	r.Counter(prefix+"/prefetch_ignored", func() int64 { return c.stats.PrefetchIgnored })
	r.Counter(prefix+"/writebacks", func() int64 { return c.stats.Writebacks })
	r.Counter(prefix+"/evictions", func() int64 { return c.stats.Evictions })
	r.Counter(prefix+"/snoop_writebacks", func() int64 { return c.stats.SnoopWritebacks })
	r.Counter(prefix+"/snoop_drops", func() int64 { return c.stats.SnoopDrops })
	r.Counter(prefix+"/back_invalidations", func() int64 { return c.stats.BackInvalidations })
	r.Counter(prefix+"/ddio_installs", func() int64 { return c.stats.DDIOInstalls })
}
