// Package cache models one host's CPU cache in front of the CXL pool.
//
// This is the piece of the substrate that makes the pool *non-coherent*: a
// line cached on host A is never invalidated when host B (or a device)
// overwrites the corresponding pool memory, so A keeps reading stale data
// until software explicitly invalidates the line (CLFLUSHOPT + MFENCE) —
// exactly the behaviour §3.2 of the paper builds its message-channel designs
// around. The model implements:
//
//   - demand fills with load-to-use latency and link-bandwidth serialization,
//   - software prefetch (PREFETCHT0) as an asynchronous fill that is IGNORED
//     when the line is already present — even if the cached copy is stale.
//     This "prefetchers ignore present lines" rule is the root cause of the
//     order-of-magnitude throughput gap between the paper's channel designs
//     ② and ③ (Fig. 6),
//   - CLFLUSHOPT (write back if dirty, then drop), CLWB (write back, keep
//     clean), MFENCE (ordering cost),
//   - write-back caching with LRU eviction (evicted dirty lines reach the
//     pool — a coherence hazard Oasis avoids by explicit management),
//   - snooping for device DMA: DMA that hits a host cache must write back /
//     drop the line first, the cost §3.2.1 eliminates by keeping I/O buffers
//     out of backend caches.
//
// All timing methods take the calling process and advance its virtual time.
package cache

import (
	"fmt"
	"time"

	"oasis/internal/cxl"
	"oasis/internal/sim"
)

// Params configures per-operation CPU costs. Defaults are representative of
// a current x86 server core (§2.3 and common microbenchmark values).
type Params struct {
	HitLatency     sim.Duration // L1/L2 hit, per line access
	StoreLatency   sim.Duration // store into a cached line, per line
	FlushIssue     sim.Duration // CLFLUSHOPT issue cost, per line
	WritebackIssue sim.Duration // CLWB issue cost, per line
	FenceLatency   sim.Duration // MFENCE drain cost
	PrefetchIssue  sim.Duration // PREFETCHT0 issue cost, per line
	CapacityLines  int          // LRU capacity; 0 means DefaultCapacityLines
}

// DefaultCapacityLines is 32 Ki lines = 2 MiB, a slice of LLC plausibly
// available to a polling core.
const DefaultCapacityLines = 32768

// DefaultParams returns the calibrated cost model.
func DefaultParams() Params {
	return Params{
		HitLatency:     2 * time.Nanosecond,
		StoreLatency:   6 * time.Nanosecond,
		FlushIssue:     15 * time.Nanosecond,
		WritebackIssue: 15 * time.Nanosecond,
		FenceLatency:   30 * time.Nanosecond,
		PrefetchIssue:  1 * time.Nanosecond,
	}
}

// Stats counts cache events for tests and ablation reports.
type Stats struct {
	Hits              int64 // line accesses served from a ready cached line
	Misses            int64 // demand fills
	FillWaits         int64 // accesses that waited on an in-flight fill
	PrefetchIssued    int64 // prefetches that started a fill
	PrefetchIgnored   int64 // prefetches dropped because the line was present
	Writebacks        int64 // CLWB/CLFLUSHOPT pushes of dirty lines
	Evictions         int64 // capacity evictions
	SnoopWritebacks   int64 // DMA snoops that hit a dirty line
	SnoopDrops        int64 // DMA snoops that hit a clean line
	BackInvalidations int64 // CXL 3.0 BI messages applied (HWCoherent mode)
	DDIOInstalls      int64 // DDIO allocating writes landed in this cache
}

type line struct {
	addr    int64
	data    [cxl.LineSize]byte
	dirty   bool
	pending bool         // fill in flight
	readyAt sim.Duration // when the in-flight fill lands
	gen     uint64       // invalidation cancels stale fill completions
	// Intrusive LRU links (head = most recently used). Embedding the links
	// avoids a list-element allocation per fill on the datapath hot path.
	prev, next *line
}

// Cache is one host's cache over the CXL pool, reached through one port.
type Cache struct {
	eng    *sim.Engine
	port   *cxl.Port
	params Params
	lines  map[int64]*line
	// Intrusive LRU list over the resident lines.
	lruHead, lruTail *line
	// Dropped lines are recycled here. A recycled line keeps its gen counter
	// (monotonically increasing for the struct's whole lifetime), so a stale
	// in-flight fill completion can never mistake a reused struct for the
	// fill it was issued for.
	freeLines []*line
	freeFills []*fillOp // recycled fill-completion ops (engine-local, no lock)
	stats     Stats
}

// fillOp is the pooled completion of an asynchronous line fill; firing it as
// a sim.Timer avoids a closure allocation per fill (see sim.Timer). The gen
// snapshot makes a stale completion for an invalidated-and-reused line a
// no-op, exactly as the closure it replaced did.
type fillOp struct {
	c   *Cache
	ln  *line
	gen uint64
}

func (f *fillOp) Fire() {
	c, ln := f.c, f.ln
	if ln.gen == f.gen && ln.pending {
		c.port.CollectLine(ln.addr, ln.data[:])
		ln.pending = false
	}
	f.c, f.ln = nil, nil
	c.freeFills = append(c.freeFills, f)
}

// New returns an empty cache in front of port. When the pool runs in
// HWCoherent (CXL 3.0 Back Invalidation) mode, the cache subscribes to BI
// messages so remote writes invalidate its lines automatically.
func New(eng *sim.Engine, port *cxl.Port, params Params) *Cache {
	if params.CapacityLines == 0 {
		params.CapacityLines = DefaultCapacityLines
	}
	c := &Cache{
		eng:    eng,
		port:   port,
		params: params,
		lines:  make(map[int64]*line),
	}
	port.Pool().RegisterBI(c)
	return c
}

// BackInvalidate implements cxl.BackInvalidator: a remote write reached the
// line, so this cache's copy is dropped without writeback (the remote owner
// has the newer data). Only invoked in HWCoherent mode.
func (c *Cache) BackInvalidate(lineAddr int64) {
	if ln, ok := c.lines[lineAddr]; ok {
		ln.gen++ // cancel in-flight fills
		c.lruUnlink(ln)
		delete(c.lines, lineAddr)
		if !ln.pending {
			c.recycleLine(ln)
		}
		c.stats.BackInvalidations++
	}
}

// Stats returns a copy of the event counters.
func (c *Cache) Stats() Stats { return c.stats }

// Port returns the CXL port this cache fills from.
func (c *Cache) Port() *cxl.Port { return c.port }

// lruPushFront links a line at the MRU position.
func (c *Cache) lruPushFront(ln *line) {
	ln.prev = nil
	ln.next = c.lruHead
	if c.lruHead != nil {
		c.lruHead.prev = ln
	}
	c.lruHead = ln
	if c.lruTail == nil {
		c.lruTail = ln
	}
}

// lruUnlink detaches a line from the LRU list.
func (c *Cache) lruUnlink(ln *line) {
	if ln.prev != nil {
		ln.prev.next = ln.next
	} else {
		c.lruHead = ln.next
	}
	if ln.next != nil {
		ln.next.prev = ln.prev
	} else {
		c.lruTail = ln.prev
	}
	ln.prev, ln.next = nil, nil
}

// touch moves a line to the MRU position. A line dropped while a waiter
// slept on its fill is orphaned (unlinked); touching it is a no-op, exactly
// as moving a removed container/list element was.
func (c *Cache) touch(ln *line) {
	if c.lruHead == ln {
		return
	}
	if ln.prev == nil {
		return // orphaned: not the head and not linked
	}
	c.lruUnlink(ln)
	c.lruPushFront(ln)
}

// newLine returns a recycled (or fresh) line for addr. Recycled lines keep
// their gen counter; every other field is reset.
func (c *Cache) newLine(addr int64) *line {
	if n := len(c.freeLines); n > 0 {
		ln := c.freeLines[n-1]
		c.freeLines[n-1] = nil
		c.freeLines = c.freeLines[:n-1]
		ln.addr = addr
		ln.dirty, ln.pending = false, false
		ln.readyAt = 0
		return ln
	}
	return &line{addr: addr}
}

// recycleLine puts a dropped line on the free list.
func (c *Cache) recycleLine(ln *line) {
	c.freeLines = append(c.freeLines, ln)
}

// insert adds a line, evicting LRU entries over capacity.
func (c *Cache) insert(ln *line) {
	c.lruPushFront(ln)
	c.lines[ln.addr] = ln
	attempts := len(c.lines)
	for len(c.lines) > c.params.CapacityLines && attempts > 0 {
		attempts--
		victim := c.lruTail
		if victim.pending {
			// Never evict an in-flight fill; promote it instead.
			c.touch(victim)
			continue
		}
		c.dropLine(victim, "evict")
		c.stats.Evictions++
	}
}

// dropLine removes a line, writing it back first when dirty.
func (c *Cache) dropLine(ln *line, category string) {
	if ln.dirty {
		c.port.WriteLine(ln.addr, ln.data[:], category)
		c.stats.Writebacks++
	}
	ln.gen++ // cancels any in-flight fill completion
	c.lruUnlink(ln)
	delete(c.lines, ln.addr)
	// A pending line may still be referenced by a waiter parked on its fill;
	// leave it orphaned rather than letting a reuse corrupt the waiter's view.
	if !ln.pending {
		c.recycleLine(ln)
	}
}

// startFill begins an asynchronous fill for an absent line and returns it.
func (c *Cache) startFill(addr int64, category string) *line {
	ln := c.newLine(addr)
	ln.pending = true
	ln.readyAt = c.port.FetchLine(addr, category)
	var f *fillOp
	if n := len(c.freeFills); n > 0 {
		f = c.freeFills[n-1]
		c.freeFills[n-1] = nil
		c.freeFills = c.freeFills[:n-1]
	} else {
		f = &fillOp{}
	}
	f.c, f.ln, f.gen = c, ln, ln.gen
	c.eng.AtTimer(ln.readyAt, f)
	c.insert(ln)
	return ln
}

// ensureReady makes the line present and ready, advancing p's time by the
// demand-miss or fill-wait cost. It returns the line.
func (c *Cache) ensureReady(p *sim.Proc, addr int64, category string) *line {
	ln, ok := c.lines[addr]
	if !ok {
		c.stats.Misses++
		ln = c.startFill(addr, category)
	} else if ln.pending {
		c.stats.FillWaits++
	} else {
		c.stats.Hits++
		c.touch(ln)
		p.Sleep(c.params.HitLatency)
		return ln
	}
	if wait := ln.readyAt - p.Now(); wait > 0 {
		p.Sleep(wait)
	}
	// The fill-completion event and this wakeup share a timestamp; the fill
	// event was scheduled first, so the data has landed. Guard regardless.
	if ln.pending {
		c.port.CollectLine(addr, ln.data[:])
		ln.pending = false
	}
	c.touch(ln)
	p.Sleep(c.params.HitLatency)
	return ln
}

// Read copies len(buf) bytes at addr through the cache into buf, advancing
// p's time. Fills for all absent lines are issued up front and overlap (the
// core's miss-level parallelism), so bulk copies run at link bandwidth plus
// one load-to-use latency, not one latency per line. Present lines are
// served from the cache — including stale ones; staleness is the caller's
// problem, as on real non-coherent hardware.
func (c *Cache) Read(p *sim.Proc, addr int64, buf []byte, category string) {
	if len(buf) == 0 {
		return
	}
	// Phase 1: issue fills for all absent lines.
	first := cxl.LineAddr(addr)
	last := cxl.LineAddr(addr + int64(len(buf)) - 1)
	var lastReady sim.Duration
	for a := first; a <= last; a += cxl.LineSize {
		ln, ok := c.lines[a]
		if !ok {
			c.stats.Misses++
			ln = c.startFill(a, category)
		} else if ln.pending {
			c.stats.FillWaits++
		} else {
			c.stats.Hits++
			c.touch(ln)
			p.Sleep(c.params.HitLatency)
			continue
		}
		if ln.readyAt > lastReady {
			lastReady = ln.readyAt
		}
	}
	// Phase 2: wait for the slowest fill.
	if wait := lastReady - p.Now(); wait > 0 {
		p.Sleep(wait)
	}
	// Phase 3: collect.
	for a := first; a <= last; a += cxl.LineSize {
		ln := c.lines[a]
		if ln == nil {
			// Evicted by a concurrent capacity squeeze mid-copy; refill
			// synchronously. Rare, but must stay correct.
			ln = c.ensureReady(p, a, category)
		} else if ln.pending {
			c.port.CollectLine(a, ln.data[:])
			ln.pending = false
		}
		lo := a
		if lo < addr {
			lo = addr
		}
		hi := a + cxl.LineSize
		if hi > addr+int64(len(buf)) {
			hi = addr + int64(len(buf))
		}
		copy(buf[lo-addr:hi-addr], ln.data[lo-a:hi-a])
	}
}

// Write stores data at addr through the cache (write-back, so the pool does
// not see it until CLWB/CLFLUSHOPT or eviction), advancing p's time.
//
// Absent lines are allocated by merging the current pool contents at zero
// latency cost: all Oasis datapath writes are streaming full-buffer writes
// for which real cores hide the read-for-ownership behind the store buffer;
// merging keeps the untouched bytes of partially-written lines correct.
func (c *Cache) Write(p *sim.Proc, addr int64, data []byte, category string) {
	if len(data) == 0 {
		return
	}
	first := cxl.LineAddr(addr)
	last := cxl.LineAddr(addr + int64(len(data)) - 1)
	for a := first; a <= last; a += cxl.LineSize {
		ln, ok := c.lines[a]
		if !ok {
			ln = c.newLine(a)
			c.port.Pool().Peek(a, ln.data[:])
			c.insert(ln)
		} else {
			if ln.pending {
				// Store to an in-flight line: wait for the fill, then merge.
				c.stats.FillWaits++
				if wait := ln.readyAt - p.Now(); wait > 0 {
					p.Sleep(wait)
				}
				if ln.pending {
					c.port.CollectLine(a, ln.data[:])
					ln.pending = false
				}
			}
			c.touch(ln)
		}
		lo := a
		if lo < addr {
			lo = addr
		}
		hi := a + cxl.LineSize
		if hi > addr+int64(len(data)) {
			hi = addr + int64(len(data))
		}
		copy(ln.data[lo-a:hi-a], data[lo-addr:hi-addr])
		ln.dirty = true
		p.Sleep(c.params.StoreLatency)
	}
}

// Prefetch issues PREFETCHT0 for the line containing addr. If the line is
// already present — ready, in flight, or STALE — the prefetch is ignored,
// as hardware prefetch queues do. Otherwise an asynchronous fill begins.
// The issue cost is charged to p.
func (c *Cache) Prefetch(p *sim.Proc, addr int64, category string) {
	p.Sleep(c.params.PrefetchIssue)
	a := cxl.LineAddr(addr)
	if _, ok := c.lines[a]; ok {
		c.stats.PrefetchIgnored++
		return
	}
	c.stats.PrefetchIssued++
	c.startFill(a, category)
}

// FlushLine is CLFLUSHOPT: write the line back if dirty, then drop it so the
// next access refetches from the pool. No-op (beyond issue cost) when the
// line is absent.
func (c *Cache) FlushLine(p *sim.Proc, addr int64, category string) {
	p.Sleep(c.params.FlushIssue)
	a := cxl.LineAddr(addr)
	if ln, ok := c.lines[a]; ok {
		c.dropLine(ln, category)
	}
}

// WritebackLine is CLWB: push a dirty line to the pool but keep it cached
// clean. No-op (beyond issue cost) for absent or clean lines.
func (c *Cache) WritebackLine(p *sim.Proc, addr int64, category string) {
	p.Sleep(c.params.WritebackIssue)
	a := cxl.LineAddr(addr)
	if ln, ok := c.lines[a]; ok && ln.dirty && !ln.pending {
		c.port.WriteLine(a, ln.data[:], category)
		ln.dirty = false
		c.stats.Writebacks++
	}
}

// Fence is MFENCE: orders preceding flushes/writebacks. The model applies
// flush effects eagerly, so the fence only charges its drain cost — but
// protocols must still call it where real hardware requires it, and the
// cost shows up in their throughput.
func (c *Cache) Fence(p *sim.Proc) {
	p.Sleep(c.params.FenceLatency)
}

// Contains reports whether the line holding addr is present (ready or in
// flight).
func (c *Cache) Contains(addr int64) bool {
	_, ok := c.lines[cxl.LineAddr(addr)]
	return ok
}

// DirtyLines returns the number of dirty lines (test/debug).
func (c *Cache) DirtyLines() int {
	n := 0
	for _, ln := range c.lines {
		if ln.dirty {
			n++
		}
	}
	return n
}

// Len returns the number of resident lines.
func (c *Cache) Len() int { return len(c.lines) }

// InstallLine models a DDIO/"PCIe allocating write": the device writes the
// line INTO this CPU cache (dirty) instead of memory. Within one coherent
// host that is a latency win; across a non-coherent CXL pod it is the §3.2.1
// hazard — the data never reaches pool memory until eviction, so other
// hosts read stale bytes. Oasis therefore requires DDIO disabled; the nic
// package's DDIO flag plus this method exist to demonstrate why.
func (c *Cache) InstallLine(addr int64, data []byte) {
	if len(data) != cxl.LineSize {
		panic("cache: InstallLine requires a full line")
	}
	a := cxl.LineAddr(addr)
	ln, ok := c.lines[a]
	if !ok {
		ln = c.newLine(a)
		c.insert(ln)
	} else {
		ln.pending = false
		ln.gen++
		c.touch(ln)
	}
	copy(ln.data[:], data)
	ln.dirty = true
	c.stats.DDIOInstalls++
}

// Snoop services a device DMA touching [addr, addr+n): any cached line in
// the range is written back (if dirty) and dropped, and the method returns
// the extra device-side delay this caused. With the paper's discipline —
// backend never inspects I/O buffers (§3.2.1) — snoops always miss and the
// cost is zero.
func (c *Cache) Snoop(addr int64, n int, category string) sim.Duration {
	if n <= 0 {
		return 0
	}
	var delay sim.Duration
	first := cxl.LineAddr(addr)
	last := cxl.LineAddr(addr + int64(n) - 1)
	for a := first; a <= last; a += cxl.LineSize {
		ln, ok := c.lines[a]
		if !ok {
			continue
		}
		if ln.dirty {
			c.stats.SnoopWritebacks++
			delay += snoopWritebackCost
		} else {
			c.stats.SnoopDrops++
			delay += snoopDropCost
		}
		c.dropLine(ln, category)
	}
	return delay
}

// Snoop costs: a cross-die snoop that hits dirty data costs roughly a cache
// miss; dropping a clean line costs a coherence round only.
const (
	snoopWritebackCost = 90 * time.Nanosecond
	snoopDropCost      = 30 * time.Nanosecond
)

// InvalidateAll drops every line (test/reset helper); dirty lines write back.
func (c *Cache) InvalidateAll() {
	for _, ln := range c.lines {
		c.dropLine(ln, "reset")
	}
}

// String summarizes occupancy for debugging.
func (c *Cache) String() string {
	return fmt.Sprintf("cache{lines=%d dirty=%d}", len(c.lines), c.DirtyLines())
}
