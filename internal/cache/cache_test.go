package cache

import (
	"bytes"
	"testing"
	"time"

	"oasis/internal/cxl"
	"oasis/internal/sim"
)

// rig bundles an engine, pool, and two host caches (the classic two-host
// non-coherence setup from §3.2).
type rig struct {
	eng  *sim.Engine
	pool *cxl.Pool
	a, b *Cache
}

func newRig() *rig {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<22, cxl.DefaultParams())
	return &rig{
		eng:  eng,
		pool: pool,
		a:    New(eng, pool.AttachPort("hostA"), DefaultParams()),
		b:    New(eng, pool.AttachPort("hostB"), DefaultParams()),
	}
}

// run executes fn as a process and runs the simulation to completion.
func (r *rig) run(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	r.eng.Go("test", fn)
	r.eng.Run()
}

func TestReadMissThenHit(t *testing.T) {
	r := newRig()
	r.pool.Poke(0, []byte{42})
	r.run(t, func(p *sim.Proc) {
		buf := make([]byte, 1)
		start := p.Now()
		r.a.Read(p, 0, buf, "m")
		missTime := p.Now() - start
		if buf[0] != 42 {
			t.Errorf("read %d, want 42", buf[0])
		}
		if missTime < 200*time.Nanosecond {
			t.Errorf("miss took %v, want >= load-to-use latency", missTime)
		}
		start = p.Now()
		r.a.Read(p, 0, buf, "m")
		hitTime := p.Now() - start
		if hitTime > 10*time.Nanosecond {
			t.Errorf("hit took %v, want ~2ns", hitTime)
		}
	})
	st := r.a.Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStalenessAcrossHosts(t *testing.T) {
	// The defining non-coherence behaviour: A caches a line; B overwrites
	// the pool; A still reads the stale value until it flushes.
	r := newRig()
	r.pool.Poke(0, []byte{1})
	r.run(t, func(p *sim.Proc) {
		buf := make([]byte, 1)
		r.a.Read(p, 0, buf, "m") // A caches the line (value 1)

		r.b.Write(p, 0, []byte{2}, "m") // B writes 2...
		r.b.WritebackLine(p, 0, "m")    // ...and pushes it to the pool

		r.a.Read(p, 0, buf, "m")
		if buf[0] != 1 {
			t.Errorf("A read %d; want STALE 1 (no cross-host coherence)", buf[0])
		}

		r.a.FlushLine(p, 0, "m")
		r.a.Fence(p)
		r.a.Read(p, 0, buf, "m")
		if buf[0] != 2 {
			t.Errorf("after invalidate, A read %d, want 2", buf[0])
		}
	})
}

func TestWriteInvisibleUntilWriteback(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc) {
		r.a.Write(p, 0, []byte{7}, "m")
		got := make([]byte, 1)
		r.pool.Peek(0, got)
		if got[0] != 0 {
			t.Error("write-back cache leaked a store to the pool before CLWB")
		}
		r.a.WritebackLine(p, 0, "m")
		p.Sleep(time.Microsecond) // CLWB is posted; wait for propagation
		r.pool.Peek(0, got)
		if got[0] != 7 {
			t.Error("CLWB did not push the dirty line")
		}
		// CLWB keeps the line cached clean: next read must be a hit.
		h0 := r.a.Stats().Hits
		buf := make([]byte, 1)
		r.a.Read(p, 0, buf, "m")
		if r.a.Stats().Hits != h0+1 {
			t.Error("line not retained clean after CLWB")
		}
	})
}

func TestFlushWritesBackDirtyAndDrops(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc) {
		r.a.Write(p, 0, []byte{9}, "m")
		r.a.FlushLine(p, 0, "m")
		p.Sleep(time.Microsecond) // flush writeback is posted
		got := make([]byte, 1)
		r.pool.Peek(0, got)
		if got[0] != 9 {
			t.Error("CLFLUSHOPT must write back dirty data")
		}
		if r.a.Contains(0) {
			t.Error("CLFLUSHOPT must drop the line")
		}
	})
}

func TestPrefetchIgnoredWhenPresent(t *testing.T) {
	// The root cause of Fig. 6's design-② ceiling: prefetching cannot
	// replace a stale resident line.
	r := newRig()
	r.pool.Poke(0, []byte{1})
	r.run(t, func(p *sim.Proc) {
		buf := make([]byte, 1)
		r.a.Read(p, 0, buf, "m") // line resident

		r.b.Write(p, 0, []byte{2}, "m")
		r.b.WritebackLine(p, 0, "m")

		r.a.Prefetch(p, 0, "m") // must be ignored: line (stale) is present
		p.Sleep(time.Microsecond)
		r.a.Read(p, 0, buf, "m")
		if buf[0] != 1 {
			t.Errorf("prefetch replaced a resident line: got %d", buf[0])
		}
	})
	st := r.a.Stats()
	if st.PrefetchIgnored != 1 || st.PrefetchIssued != 0 {
		t.Fatalf("prefetch stats = %+v", st)
	}
}

func TestPrefetchOverlapsLatency(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc) {
		r.a.Prefetch(p, 0, "m")
		p.Sleep(300 * time.Nanosecond) // longer than load-to-use
		start := p.Now()
		buf := make([]byte, 1)
		r.a.Read(p, 0, buf, "m")
		if d := p.Now() - start; d > 10*time.Nanosecond {
			t.Errorf("read after completed prefetch took %v, want a hit", d)
		}
	})
}

func TestReadWaitsForInflightFill(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc) {
		r.a.Prefetch(p, 0, "m")
		start := p.Now()
		buf := make([]byte, 1)
		r.a.Read(p, 0, buf, "m") // fill still in flight: must wait, not double-fetch
		waited := p.Now() - start
		if waited < 150*time.Nanosecond {
			t.Errorf("read returned in %v; should have waited for the fill", waited)
		}
	})
	st := r.a.Stats()
	if st.FillWaits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestInvalidateCancelsInflightFill(t *testing.T) {
	r := newRig()
	r.pool.Poke(0, []byte{5})
	r.run(t, func(p *sim.Proc) {
		r.a.Prefetch(p, 0, "m")
		r.a.FlushLine(p, 0, "m") // drop while in flight
		if r.a.Contains(0) {
			t.Error("flushed line still resident")
		}
		p.Sleep(time.Microsecond) // fill completion must not resurrect it
		if r.a.Contains(0) {
			t.Error("cancelled fill landed anyway")
		}
	})
}

func TestBulkReadOverlapsFills(t *testing.T) {
	// A 1500 B read spanning 24 lines must take ~latency + serialization,
	// not 24 × latency.
	r := newRig()
	payload := make([]byte, 1500)
	for i := range payload {
		payload[i] = byte(i)
	}
	r.pool.Poke(0, payload)
	r.run(t, func(p *sim.Proc) {
		buf := make([]byte, 1500)
		start := p.Now()
		r.a.Read(p, 0, buf, "payload")
		elapsed := p.Now() - start
		if !bytes.Equal(buf, payload) {
			t.Error("bulk read data mismatch")
		}
		// 24 lines × 64 B at 32 GB/s = 48 ns serialization + 205 ns latency
		// + per-line hit costs. Must be well under 2 × latency.
		if elapsed > 400*time.Nanosecond {
			t.Errorf("bulk read took %v; fills did not overlap", elapsed)
		}
	})
}

func TestBulkWriteReadRoundTrip(t *testing.T) {
	r := newRig()
	payload := make([]byte, 777) // deliberately not line-aligned
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	r.run(t, func(p *sim.Proc) {
		const addr = 100 // unaligned start
		r.a.Write(p, addr, payload, "payload")
		// Write back all touched lines.
		for a := cxl.LineAddr(addr); a <= cxl.LineAddr(addr+776); a += cxl.LineSize {
			r.a.WritebackLine(p, a, "payload")
		}
		buf := make([]byte, len(payload))
		r.b.Read(p, addr, buf, "payload")
		if !bytes.Equal(buf, payload) {
			t.Error("cross-host buffer round trip mismatch")
		}
	})
}

func TestPartialLineWritePreservesNeighbours(t *testing.T) {
	r := newRig()
	r.pool.Poke(0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	r.run(t, func(p *sim.Proc) {
		r.a.Write(p, 2, []byte{99}, "m") // absent line, partial write
		r.a.WritebackLine(p, 0, "m")
		p.Sleep(time.Microsecond)
		got := make([]byte, 8)
		r.pool.Peek(0, got)
		want := []byte{1, 2, 99, 4, 5, 6, 7, 8}
		if !bytes.Equal(got, want) {
			t.Errorf("pool = %v, want %v (merge-fill must preserve bytes)", got, want)
		}
	})
}

func TestLRUEvictionWritesBackDirty(t *testing.T) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<20, cxl.DefaultParams())
	params := DefaultParams()
	params.CapacityLines = 4
	c := New(eng, pool.AttachPort("h"), params)
	eng.Go("t", func(p *sim.Proc) {
		c.Write(p, 0, []byte{11}, "m") // dirty line 0
		for i := int64(1); i <= 4; i++ {
			buf := make([]byte, 1)
			c.Read(p, i*cxl.LineSize, buf, "m")
		}
		if c.Contains(0) {
			t.Error("LRU line not evicted")
		}
		p.Sleep(time.Microsecond) // eviction writeback is posted
		got := make([]byte, 1)
		pool.Peek(0, got)
		if got[0] != 11 {
			t.Error("evicted dirty line not written back")
		}
	})
	eng.Run()
	if c.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", c.Stats().Evictions)
	}
	if c.Len() != 4 {
		t.Fatalf("resident = %d, want 4", c.Len())
	}
}

func TestSnoopCosts(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc) {
		// Clean resident line + dirty resident line in A's cache.
		buf := make([]byte, 1)
		r.a.Read(p, 0, buf, "m")         // clean
		r.a.Write(p, 64, []byte{5}, "m") // dirty
		if d := r.a.Snoop(0, 128, "dma"); d != snoopDropCost+snoopWritebackCost {
			t.Errorf("snoop delay = %v", d)
		}
		if r.a.Contains(0) || r.a.Contains(64) {
			t.Error("snooped lines must be dropped")
		}
		p.Sleep(time.Microsecond) // snoop writeback is posted
		got := make([]byte, 1)
		r.pool.Peek(64, got)
		if got[0] != 5 {
			t.Error("snooped dirty line must reach the pool")
		}
		// Second snoop misses everything: free, as §3.2.1 requires.
		if d := r.a.Snoop(0, 128, "dma"); d != 0 {
			t.Errorf("snoop on absent lines cost %v, want 0", d)
		}
	})
	st := r.a.Stats()
	if st.SnoopWritebacks != 1 || st.SnoopDrops != 1 {
		t.Fatalf("snoop stats = %+v", st)
	}
}

func TestWritebackOfCleanLineIsNoop(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc) {
		buf := make([]byte, 1)
		r.a.Read(p, 0, buf, "m")
		wb0 := r.a.Stats().Writebacks
		r.a.WritebackLine(p, 0, "m")
		if r.a.Stats().Writebacks != wb0 {
			t.Error("CLWB of a clean line must not write")
		}
	})
}

func TestInvalidateAll(t *testing.T) {
	r := newRig()
	r.run(t, func(p *sim.Proc) {
		r.a.Write(p, 0, []byte{1}, "m")
		r.a.Write(p, 64, []byte{2}, "m")
		r.a.InvalidateAll()
		if r.a.Len() != 0 {
			t.Error("InvalidateAll left lines resident")
		}
		p.Sleep(time.Microsecond)
		got := make([]byte, 1)
		r.pool.Peek(64, got)
		if got[0] != 2 {
			t.Error("InvalidateAll must write back dirty lines")
		}
	})
}

func TestBackInvalidationCoherence(t *testing.T) {
	// With a HWCoherent pool (CXL 3.0 BI, §6 ablation), a remote write
	// invalidates every cache's copy — no software flush needed.
	eng := sim.New()
	params := cxl.DefaultParams()
	params.HWCoherent = true
	pool := cxl.NewPool(eng, 1<<20, params)
	a := New(eng, pool.AttachPort("hostA"), DefaultParams())
	bPort := pool.AttachPort("hostB")
	eng.Go("t", func(p *sim.Proc) {
		pool.Poke(0, []byte{1})
		buf := make([]byte, 1)
		a.Read(p, 0, buf, "m") // A caches value 1
		var lineBuf [cxl.LineSize]byte
		lineBuf[0] = 2
		bPort.WriteLine(0, lineBuf[:], "m") // remote write triggers BI
		p.Sleep(time.Microsecond)
		if a.Contains(0) {
			t.Error("BI did not drop A's line")
		}
		a.Read(p, 0, buf, "m")
		if buf[0] != 2 {
			t.Errorf("A read %d after BI, want fresh 2 without any flush", buf[0])
		}
	})
	eng.Run()
	if a.Stats().BackInvalidations != 1 {
		t.Fatalf("BI count = %d", a.Stats().BackInvalidations)
	}
}

func TestNoBackInvalidationWhenCXL2(t *testing.T) {
	r := newRig() // default params: HWCoherent off
	r.pool.Poke(0, []byte{1})
	r.run(t, func(p *sim.Proc) {
		buf := make([]byte, 1)
		r.a.Read(p, 0, buf, "m")
		r.b.Write(p, 0, []byte{2}, "m")
		r.b.WritebackLine(p, 0, "m")
		p.Sleep(time.Microsecond)
		if !r.a.Contains(0) {
			t.Error("CXL 2.0 pool must NOT back-invalidate")
		}
	})
	if r.a.Stats().BackInvalidations != 0 {
		t.Fatal("BI fired on a non-coherent pool")
	}
}
