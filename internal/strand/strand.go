// Package strand reproduces the paper's resource-stranding analysis and
// pooling simulation (§2.2, Figure 2).
//
// Phase 1 fills hosts from a calibrated instance stream under all four
// per-host resource constraints, yielding per-host demand vectors whose
// average stranding matches the paper's production numbers (≈5 % CPU,
// ≈9 % memory, ≈27 % NIC bandwidth, ≈33 % SSD capacity).
//
// Phase 2 answers Figure 2's question: with hosts randomly grouped into
// pods of size N whose NICs and SSDs are pooled, what is the minimum
// device provisioning (whole NICs, whole drives) that still satisfies the
// placed demand — and how much of it is stranded? CPU and memory are not
// pooled, so their stranding is independent of pod size (the flat lines in
// Figure 2).
package strand

import (
	"math"
	"math/rand"
	"sort"

	"oasis/internal/par"
	"oasis/internal/trace"
)

// Config drives the simulation.
type Config struct {
	Hosts    int
	Trials   int // random pod groupings averaged per pod size
	PodSizes []int
	Shape    trace.HostShape
	Alloc    trace.AllocConfig
	Seed     int64 // pod-grouping shuffle seed
	// ProvisionPctl is the pod-demand percentile uniform provisioning is
	// sized for. 100 = absolute worst pod (never migrate); operators
	// typically provision to a high percentile and rebalance the rare
	// overflow pod (§6 "Load balancing policies"). Default 95.
	ProvisionPctl float64
	// Workers bounds how many trials run concurrently. Every trial's
	// permutation is drawn from the shared RNG up front in a fixed order,
	// and per-trial results are reduced in trial order, so the output is
	// identical for any worker count. 0 or 1 = serial.
	Workers int
}

// DefaultConfig mirrors the paper's setup at a rack scale that keeps the
// simulation fast but statistically stable.
func DefaultConfig() Config {
	return Config{
		Hosts:         512,
		Trials:        8,
		PodSizes:      []int{1, 2, 4, 8, 16},
		Shape:         trace.DefaultHostShape(),
		Alloc:         trace.DefaultAllocConfig(),
		Seed:          7,
		ProvisionPctl: 95,
	}
}

// HostDemand is one filled host's allocated resources.
type HostDemand struct {
	CPU, Mem, NIC, SSD float64
	Instances          int
}

// Result is one pod size's outcome.
type Result struct {
	PodSize      int
	StrandedCPU  float64
	StrandedMem  float64
	StrandedNIC  float64
	StrandedSSD  float64
	NICsPerPod   float64 // average provisioned NICs per pod
	DrivesPerPod float64 // average provisioned SSDs per pod
}

// FillHosts runs phase 1: place instances (first-fit on the host being
// filled, all four constraints) until the host cannot accept the next
// request, then move on — the paper's "host accepts new instances until it
// fills up along one dimension".
func FillHosts(cfg Config) []HostDemand {
	gen := trace.NewGen(cfg.Alloc)
	hosts := make([]HostDemand, cfg.Hosts)
	for h := range hosts {
		d := &hosts[h]
		// A host stops filling after a few consecutive rejections
		// (heterogeneous requests mean one oversized ask should not end the
		// host if smaller ones still fit — mirrors a real scheduler's
		// ongoing stream).
		rejects := 0
		for rejects < 8 {
			v := gen.Next()
			if d.CPU+v.CPU > cfg.Shape.CPU || d.Mem+v.Mem > cfg.Shape.Mem ||
				d.NIC+v.NIC > cfg.Shape.NIC || d.SSD+v.SSD > cfg.Shape.SSD {
				rejects++
				continue
			}
			d.CPU += v.CPU
			d.Mem += v.Mem
			d.NIC += v.NIC
			d.SSD += v.SSD
			d.Instances++
		}
	}
	return hosts
}

// Run executes both phases and returns one Result per pod size.
func Run(cfg Config) []Result {
	hosts := FillHosts(cfg)
	shape := cfg.Shape

	var totCPU, totMem float64
	for _, d := range hosts {
		totCPU += d.CPU
		totMem += d.Mem
	}
	strandedCPU := 1 - totCPU/(float64(len(hosts))*shape.CPU)
	strandedMem := 1 - totMem/(float64(len(hosts))*shape.Mem)

	// The shuffle RNG is shared across the whole sweep, so every trial's
	// permutation is drawn up front in the serial order (pod size outer,
	// trial inner); the trial computations themselves are pure and fan out
	// across cfg.Workers.
	rng := rand.New(rand.NewSource(cfg.Seed))
	type job struct {
		podSize int
		perm    []int
	}
	jobs := make([]job, 0, len(cfg.PodSizes)*cfg.Trials)
	for _, podSize := range cfg.PodSizes {
		for trial := 0; trial < cfg.Trials; trial++ {
			jobs = append(jobs, job{podSize: podSize, perm: rng.Perm(len(hosts))})
		}
	}
	type trialOut struct {
		nicStrand, ssdStrand, nics, drives float64
	}
	trials := make([]trialOut, len(jobs))
	par.Do(cfg.Workers, len(jobs), func(j int) {
		podSize, perm := jobs[j].podSize, jobs[j].perm
		// Provisioning is decided fleet-wide before instances arrive:
		// every pod of this size gets the same device count, sized to
		// the ProvisionPctl percentile of pod demand ("minimum number
		// of devices required to place all instances", with the rare
		// overflow pod handled by the allocator's rebalancing).
		var demNIC, demSSD float64
		var podNIC, podSSD []float64
		for i := 0; i+podSize <= len(perm); i += podSize {
			var nic, ssd float64
			for _, hi := range perm[i : i+podSize] {
				nic += hosts[hi].NIC
				ssd += hosts[hi].SSD
			}
			demNIC += nic
			demSSD += ssd
			podNIC = append(podNIC, nic)
			podSSD = append(podSSD, ssd)
		}
		pods := len(podNIC)
		nNIC := math.Ceil(pctl(podNIC, cfg.ProvisionPctl) / shape.NICUnit)
		nSSD := math.Ceil(pctl(podSSD, cfg.ProvisionPctl) / shape.SSDUnit)
		provNIC := float64(pods) * nNIC * shape.NICUnit
		provSSD := float64(pods) * nSSD * shape.SSDUnit
		trials[j] = trialOut{
			nicStrand: 1 - demNIC/provNIC,
			ssdStrand: 1 - demSSD/provSSD,
			nics:      nNIC,
			drives:    nSSD,
		}
	})
	// Reduce in trial order: float accumulation order matches the serial
	// loop exactly, keeping results bit-identical.
	var out []Result
	for pi, podSize := range cfg.PodSizes {
		var nicStrand, ssdStrand, nicsPerPod, drivesPerPod float64
		for trial := 0; trial < cfg.Trials; trial++ {
			t := trials[pi*cfg.Trials+trial]
			nicStrand += t.nicStrand
			ssdStrand += t.ssdStrand
			nicsPerPod += t.nics
			drivesPerPod += t.drives
		}
		out = append(out, Result{
			PodSize:      podSize,
			StrandedCPU:  strandedCPU,
			StrandedMem:  strandedMem,
			StrandedNIC:  nicStrand / float64(cfg.Trials),
			StrandedSSD:  ssdStrand / float64(cfg.Trials),
			NICsPerPod:   nicsPerPod / float64(cfg.Trials),
			DrivesPerPod: drivesPerPod / float64(cfg.Trials),
		})
	}
	return out
}

// pctl is a nearest-rank percentile over a copied slice.
func pctl(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}
