package strand

import (
	"testing"

	"oasis/internal/trace"
)

func TestBaselineStrandingMatchesPaper(t *testing.T) {
	// §2.2's production numbers: ~27 % NIC, ~33 % SSD, ~5 % CPU, ~9 %
	// memory stranded without pooling (pod size 1). The generator is
	// calibrated; hold it to bands.
	res := Run(DefaultConfig())
	base := res[0]
	if base.PodSize != 1 {
		t.Fatal("first result must be pod size 1")
	}
	check := func(name string, got, want, tol float64) {
		if got < want-tol || got > want+tol {
			t.Errorf("%s stranded = %.3f, want %.2f ± %.2f", name, got, want, tol)
		}
	}
	check("NIC", base.StrandedNIC, 0.27, 0.05)
	check("SSD", base.StrandedSSD, 0.33, 0.05)
	check("CPU", base.StrandedCPU, 0.05, 0.05)
	check("Mem", base.StrandedMem, 0.09, 0.04)
}

func TestPoolingReducesStranding(t *testing.T) {
	res := Run(DefaultConfig())
	// NIC and SSD stranding must be non-increasing with pod size, and the
	// pod-8 values clearly below baseline (Fig. 2's headline).
	for i := 1; i < len(res); i++ {
		if res[i].StrandedNIC > res[i-1].StrandedNIC+0.01 {
			t.Errorf("NIC stranding rose from pod %d to %d (%.3f -> %.3f)",
				res[i-1].PodSize, res[i].PodSize, res[i-1].StrandedNIC, res[i].StrandedNIC)
		}
		if res[i].StrandedSSD > res[i-1].StrandedSSD+0.01 {
			t.Errorf("SSD stranding rose from pod %d to %d", res[i-1].PodSize, res[i].PodSize)
		}
		// CPU/memory are host-bound: flat lines.
		if res[i].StrandedCPU != res[0].StrandedCPU || res[i].StrandedMem != res[0].StrandedMem {
			t.Error("CPU/memory stranding must be independent of pod size")
		}
	}
	var pod8 *Result
	for i := range res {
		if res[i].PodSize == 8 {
			pod8 = &res[i]
		}
	}
	if pod8 == nil {
		t.Fatal("no pod-8 result")
	}
	if pod8.StrandedSSD > 0.25 {
		t.Errorf("pod-8 SSD stranding = %.3f, want a large reduction from 0.33", pod8.StrandedSSD)
	}
	if pod8.StrandedNIC > 0.25 {
		t.Errorf("pod-8 NIC stranding = %.3f, want a clear reduction from 0.27", pod8.StrandedNIC)
	}
	// Device savings: the paper provisions ~16 % less NIC bandwidth and
	// ~26 % less SSD capacity at pod size 8; require ≥ 10 % on both.
	if pod8.NICsPerPod > 8*0.9 {
		t.Errorf("pod-8 NICs/pod = %.2f, want ≤ 7.2 (≥10%% saving)", pod8.NICsPerPod)
	}
	if pod8.DrivesPerPod > 48*0.9 {
		t.Errorf("pod-8 drives/pod = %.2f, want ≤ 43.2 (≥10%% saving)", pod8.DrivesPerPod)
	}
}

func TestFillRespectsCapacities(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 64
	hosts := FillHosts(cfg)
	for i, d := range hosts {
		if d.CPU > cfg.Shape.CPU || d.Mem > cfg.Shape.Mem || d.NIC > cfg.Shape.NIC || d.SSD > cfg.Shape.SSD {
			t.Fatalf("host %d over capacity: %+v", i, d)
		}
		if d.Instances == 0 {
			t.Fatalf("host %d empty", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Run(DefaultConfig())
	b := Run(DefaultConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic result at pod size %d", a[i].PodSize)
		}
	}
}

func TestMaxProvisioningIsMoreConservative(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PodSizes = []int{8}
	p95 := Run(cfg)[0]
	cfg.ProvisionPctl = 100
	pmax := Run(cfg)[0]
	if pmax.NICsPerPod < p95.NICsPerPod || pmax.DrivesPerPod < p95.DrivesPerPod {
		t.Fatalf("max provisioning (%v NICs, %v drives) should need at least as many devices as P95 (%v, %v)",
			pmax.NICsPerPod, pmax.DrivesPerPod, p95.NICsPerPod, p95.DrivesPerPod)
	}
}

func TestTinyPodSizesHandleRaggedTail(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Hosts = 50 // not divisible by 16
	cfg.Alloc = trace.DefaultAllocConfig()
	res := Run(cfg)
	for _, r := range res {
		if r.StrandedNIC < 0 || r.StrandedNIC > 1 || r.StrandedSSD < 0 || r.StrandedSSD > 1 {
			t.Fatalf("pod %d: stranding out of range: %+v", r.PodSize, r)
		}
	}
}
