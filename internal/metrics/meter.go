package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Meter accumulates bytes by category. The CXL pool uses one Meter per port
// and direction to produce Table 3's payload-vs-message breakdown; NICs use
// one per direction for utilization accounting.
type Meter struct {
	byCategory map[string]int64
	total      int64
}

// NewMeter returns an empty meter.
func NewMeter() *Meter { return &Meter{byCategory: make(map[string]int64)} }

// Add accumulates n bytes under the category.
func (m *Meter) Add(category string, n int64) {
	if n < 0 {
		panic("metrics: negative byte count")
	}
	m.byCategory[category] += n
	m.total += n
}

// Total returns all bytes ever added.
func (m *Meter) Total() int64 { return m.total }

// Category returns the bytes added under one category.
func (m *Meter) Category(c string) int64 { return m.byCategory[c] }

// Categories returns the category names in sorted order.
func (m *Meter) Categories() []string {
	out := make([]string, 0, len(m.byCategory))
	for c := range m.byCategory {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Rate returns the average throughput in bytes/second over the elapsed
// virtual time (0 if elapsed is not positive).
func (m *Meter) Rate(elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.total) / elapsed.Seconds()
}

// CategoryRate returns a single category's average throughput in bytes/s.
func (m *Meter) CategoryRate(c string, elapsed time.Duration) float64 {
	if elapsed <= 0 {
		return 0
	}
	return float64(m.byCategory[c]) / elapsed.Seconds()
}

// Snapshot returns a copy of the per-category totals.
func (m *Meter) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(m.byCategory))
	for c, v := range m.byCategory {
		out[c] = v
	}
	return out
}

// Diff returns the per-category bytes added since the snapshot was taken.
func (m *Meter) Diff(snap map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m.byCategory))
	for c, v := range m.byCategory {
		if d := v - snap[c]; d != 0 {
			out[c] = d
		}
	}
	return out
}

// Reset clears all counts.
func (m *Meter) Reset() {
	m.byCategory = make(map[string]int64)
	m.total = 0
}

// String renders per-category totals.
func (m *Meter) String() string {
	var b strings.Builder
	b.WriteString("meter{")
	for i, c := range m.Categories() {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %d", c, m.byCategory[c])
	}
	b.WriteString("}")
	return b.String()
}

// GBps converts bytes-per-second to the paper's GB/s (10^9 bytes).
func GBps(bytesPerSecond float64) float64 { return bytesPerSecond / 1e9 }
