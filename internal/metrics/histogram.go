// Package metrics provides the measurement primitives the experiment harness
// uses to report the paper's tables and figures: high-dynamic-range latency
// histograms with exact-rank percentiles, time-binned series (packet loss per
// 10 ms bucket, bandwidth per 10 µs bucket), and categorized byte meters for
// CXL link accounting.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"time"
)

// Histogram records time.Duration samples with bounded relative error, in the
// style of HDR histograms: values are bucketed logarithmically by
// power-of-two magnitude with a fixed number of linear sub-buckets per
// magnitude, giving a worst-case relative error of 1/subBuckets.
//
// The zero value is ready to use and records values from 1 ns to ~146 h with
// <0.8 % relative error.
type Histogram struct {
	counts [nMagnitudes * subBuckets]int64
	total  int64
	sum    int64 // nanoseconds, for Mean
	min    int64
	max    int64
}

const (
	subBucketBits = 7 // 128 sub-buckets per power of two: <=0.79% error
	subBuckets    = 1 << subBucketBits
	nMagnitudes   = 64 - subBucketBits // enough for any int64 value
)

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	// Magnitude: position of the highest bit above the sub-bucket field.
	mag := 0
	if v >= subBuckets {
		mag = 64 - subBucketBits - bits.LeadingZeros64(uint64(v))
	}
	sub := int(v >> uint(mag)) // in [subBuckets/2, subBuckets) for mag>0
	if mag > 0 {
		sub -= subBuckets / 2
		return mag*subBuckets/2 + subBuckets/2 + sub
	}
	return sub
}

// bucketLow returns the lowest value that maps to bucket i; bucket midpoints
// are used when reporting percentiles.
func bucketValue(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	i -= subBuckets
	mag := i/(subBuckets/2) + 1
	sub := i%(subBuckets/2) + subBuckets/2
	lo := int64(sub) << uint(mag)
	hi := lo + (int64(1)<<uint(mag) - 1)
	return (lo + hi) / 2
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	idx := bucketIndex(v)
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
	h.sum += v
	if h.total == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total }

// Min returns the smallest recorded sample (0 if empty).
func (h *Histogram) Min() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.min)
}

// Max returns the largest recorded sample (0 if empty).
func (h *Histogram) Max() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.max)
}

// Mean returns the arithmetic mean of recorded samples (0 if empty).
func (h *Histogram) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / h.total)
}

// Percentile returns the value at quantile p in [0,100], using the
// nearest-rank definition over bucket midpoints. Percentile(50) is the
// median; Percentile(100) returns the exact maximum.
func (h *Histogram) Percentile(p float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	if p >= 100 {
		return time.Duration(h.max)
	}
	if p < 0 {
		p = 0
	}
	rank := int64(math.Ceil(p / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return time.Duration(v)
		}
	}
	return time.Duration(h.max)
}

// Reset clears all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// Merge adds all samples of other into h.
func (h *Histogram) Merge(other *Histogram) {
	if other.total == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.total == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.total += other.total
	h.sum += other.sum
}

// Summary returns a one-line human-readable digest.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v p99.9=%v max=%v",
		h.total, h.Percentile(50), h.Percentile(90), h.Percentile(99),
		h.Percentile(99.9), h.Max())
}

// ExactPercentile computes a nearest-rank percentile over a raw sample slice.
// Used by tests to validate Histogram error bounds and by small experiments
// where exactness matters more than memory.
func ExactPercentile(samples []time.Duration, p float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	s := make([]time.Duration, len(samples))
	copy(s, samples)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if p >= 100 {
		return s[len(s)-1]
	}
	if p < 0 {
		p = 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}
