package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Series accumulates a value per fixed-width time bin — bytes received per
// 10 µs bucket (Fig. 3, Fig. 12 utilization), packets lost per 10 ms bucket
// (Fig. 13), or P99-latency-per-window inputs (Fig. 14).
type Series struct {
	bin  time.Duration
	bins []float64
}

// NewSeries returns a Series with the given bin width.
func NewSeries(bin time.Duration) *Series {
	if bin <= 0 {
		panic("metrics: series bin width must be positive")
	}
	return &Series{bin: bin}
}

// Add accumulates v into the bin containing time t.
func (s *Series) Add(t time.Duration, v float64) {
	if t < 0 {
		t = 0
	}
	idx := int(t / s.bin)
	for len(s.bins) <= idx {
		s.bins = append(s.bins, 0)
	}
	s.bins[idx] += v
}

// Bin returns the width of each bin.
func (s *Series) Bin() time.Duration { return s.bin }

// Len returns the number of bins (up to the last one written).
func (s *Series) Len() int { return len(s.bins) }

// At returns the accumulated value of bin i (0 for bins never written).
func (s *Series) At(i int) float64 {
	if i < 0 || i >= len(s.bins) {
		return 0
	}
	return s.bins[i]
}

// Values returns the backing bin values. The caller must not modify them.
func (s *Series) Values() []float64 { return s.bins }

// Total returns the sum over all bins.
func (s *Series) Total() float64 {
	var t float64
	for _, v := range s.bins {
		t += v
	}
	return t
}

// MaxBin returns the index and value of the largest bin (-1 if empty).
func (s *Series) MaxBin() (int, float64) {
	idx, best := -1, 0.0
	for i, v := range s.bins {
		if idx == -1 || v > best {
			idx, best = i, v
		}
	}
	return idx, best
}

// PercentileOverBins returns the p-th percentile of per-bin values over bins
// [0, n). Bins never written count as zero, which is what utilization-at-
// P99.99 over a fixed observation window requires: idle intervals are real.
func (s *Series) PercentileOverBins(p float64, n int) float64 {
	if n <= 0 {
		n = len(s.bins)
	}
	vals := make([]float64, n)
	for i := 0; i < n && i < len(s.bins); i++ {
		vals[i] = s.bins[i]
	}
	return exactFloatPercentile(vals, p)
}

func exactFloatPercentile(vals []float64, p float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := make([]float64, len(vals))
	copy(s, vals)
	sort.Float64s(s)
	if p >= 100 {
		return s[len(s)-1]
	}
	if p < 0 {
		p = 0
	}
	rank := int(math.Ceil(p / 100 * float64(len(s))))
	if rank < 1 {
		rank = 1
	}
	return s[rank-1]
}

// String renders the series compactly for debugging.
func (s *Series) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "series(bin=%v, n=%d, total=%g)", s.bin, len(s.bins), s.Total())
	return b.String()
}
