package metrics

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 || h.Max() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Record(42 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatalf("count = %d", h.Count())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		got := h.Percentile(p)
		if got < 41*time.Microsecond || got > 43*time.Microsecond {
			t.Fatalf("p%v = %v, want ~42µs", p, got)
		}
	}
	if h.Min() != 42*time.Microsecond || h.Max() != 42*time.Microsecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

func TestHistogramExactSmallValues(t *testing.T) {
	// Values below subBuckets (128 ns) are recorded exactly.
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i))
	}
	if got := h.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v, want 50ns", got)
	}
	if got := h.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v, want 100ns", got)
	}
	if got := h.Mean(); got != time.Duration(50) {
		t.Fatalf("mean = %v, want 50ns (sum 5050/100 = 50.5 truncated)", got)
	}
}

func TestHistogramRelativeErrorBound(t *testing.T) {
	// Against an exact computation on random samples, every percentile must
	// be within the documented 1/128 relative error.
	rng := rand.New(rand.NewSource(1))
	var h Histogram
	samples := make([]time.Duration, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-uniform over [100ns, 100ms].
		exp := rng.Float64() * 6
		v := time.Duration(100 * pow10(exp))
		h.Record(v)
		samples = append(samples, v)
	}
	for _, p := range []float64{1, 25, 50, 90, 99, 99.9, 99.99} {
		exact := ExactPercentile(samples, p)
		got := h.Percentile(p)
		relErr := float64(got-exact) / float64(exact)
		if relErr < 0 {
			relErr = -relErr
		}
		if relErr > 1.0/128+1e-9 {
			t.Errorf("p%v: histogram %v vs exact %v (rel err %.4f)", p, got, exact, relErr)
		}
	}
}

func pow10(x float64) float64 {
	r := 1.0
	for x >= 1 {
		r *= 10
		x--
	}
	// linear blend for the fraction: adequate for sample generation
	return r * (1 + 9*x/10)
}

func TestHistogramMerge(t *testing.T) {
	var a, b, c Histogram
	for i := 1; i <= 50; i++ {
		a.Record(time.Duration(i) * time.Microsecond)
		c.Record(time.Duration(i) * time.Microsecond)
	}
	for i := 51; i <= 100; i++ {
		b.Record(time.Duration(i) * time.Microsecond)
		c.Record(time.Duration(i) * time.Microsecond)
	}
	a.Merge(&b)
	if a.Count() != c.Count() {
		t.Fatalf("merged count = %d, want %d", a.Count(), c.Count())
	}
	for _, p := range []float64{10, 50, 90, 100} {
		if a.Percentile(p) != c.Percentile(p) {
			t.Fatalf("p%v: merged %v vs direct %v", p, a.Percentile(p), c.Percentile(p))
		}
	}
	if a.Min() != c.Min() || a.Max() != c.Max() {
		t.Fatalf("merged min/max mismatch")
	}
}

func TestHistogramMergeIntoEmpty(t *testing.T) {
	var a, b Histogram
	b.Record(5 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 1 || a.Min() != 5*time.Millisecond {
		t.Fatalf("merge into empty: count=%d min=%v", a.Count(), a.Min())
	}
}

func TestHistogramPercentileMonotonic(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Record(time.Duration(v))
		}
		prev := time.Duration(-1)
		for p := 0.0; p <= 100; p += 2.5 {
			v := h.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramPercentileWithinMinMax(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Record(time.Duration(v))
		}
		for _, p := range []float64{0, 1, 50, 99, 100} {
			v := h.Percentile(p)
			if v < h.Min() || v > h.Max() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramNegativeClampedToZero(t *testing.T) {
	var h Histogram
	h.Record(-5 * time.Second)
	if h.Min() != 0 || h.Max() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample: min=%v max=%v n=%d", h.Min(), h.Max(), h.Count())
	}
}

func TestExactPercentile(t *testing.T) {
	s := []time.Duration{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want time.Duration
	}{{0, 1}, {20, 1}, {40, 2}, {50, 3}, {60, 3}, {100, 5}}
	for _, c := range cases {
		if got := ExactPercentile(s, c.p); got != c.want {
			t.Errorf("ExactPercentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if ExactPercentile(nil, 50) != 0 {
		t.Error("empty slice should yield 0")
	}
}

func TestSeriesAccumulation(t *testing.T) {
	s := NewSeries(10 * time.Microsecond)
	s.Add(0, 1)
	s.Add(9*time.Microsecond, 2)  // same bin 0
	s.Add(10*time.Microsecond, 5) // bin 1
	s.Add(35*time.Microsecond, 7) // bin 3
	if s.At(0) != 3 || s.At(1) != 5 || s.At(2) != 0 || s.At(3) != 7 {
		t.Fatalf("bins = %v", s.Values())
	}
	if s.Total() != 15 {
		t.Fatalf("total = %v", s.Total())
	}
	i, v := s.MaxBin()
	if i != 3 || v != 7 {
		t.Fatalf("max bin = %d,%v", i, v)
	}
}

func TestSeriesPercentileCountsEmptyBins(t *testing.T) {
	s := NewSeries(time.Millisecond)
	s.Add(0, 100)
	// Observation window of 100 bins: 99 are zero, so p50 must be 0 and
	// p99.5 must be 100.
	if got := s.PercentileOverBins(50, 100); got != 0 {
		t.Fatalf("p50 = %v, want 0", got)
	}
	if got := s.PercentileOverBins(99.5, 100); got != 100 {
		t.Fatalf("p99.5 = %v, want 100", got)
	}
}

func TestSeriesNegativeTimeClamped(t *testing.T) {
	s := NewSeries(time.Second)
	s.Add(-time.Hour, 5)
	if s.At(0) != 5 {
		t.Fatal("negative time should land in bin 0")
	}
}

func TestMeterCategories(t *testing.T) {
	m := NewMeter()
	m.Add("payload", 1000)
	m.Add("message", 200)
	m.Add("payload", 500)
	if m.Total() != 1700 {
		t.Fatalf("total = %d", m.Total())
	}
	if m.Category("payload") != 1500 || m.Category("message") != 200 {
		t.Fatalf("categories: %v", m.Snapshot())
	}
	cats := m.Categories()
	if len(cats) != 2 || cats[0] != "message" || cats[1] != "payload" {
		t.Fatalf("categories = %v", cats)
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter()
	m.Add("x", 2_000_000_000)
	if r := m.Rate(2 * time.Second); r != 1e9 {
		t.Fatalf("rate = %v, want 1e9", r)
	}
	if GBps(m.Rate(2*time.Second)) != 1.0 {
		t.Fatalf("GBps = %v, want 1", GBps(m.Rate(2*time.Second)))
	}
	if m.Rate(0) != 0 {
		t.Fatal("zero elapsed must yield zero rate")
	}
}

func TestMeterSnapshotDiff(t *testing.T) {
	m := NewMeter()
	m.Add("a", 10)
	snap := m.Snapshot()
	m.Add("a", 5)
	m.Add("b", 7)
	d := m.Diff(snap)
	if d["a"] != 5 || d["b"] != 7 || len(d) != 2 {
		t.Fatalf("diff = %v", d)
	}
}

func TestMeterPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative add")
		}
	}()
	NewMeter().Add("x", -1)
}

func TestHistogramSummaryAndReset(t *testing.T) {
	var h Histogram
	for i := 1; i <= 10; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Summary()
	if s == "" || h.Count() != 10 {
		t.Fatalf("summary %q count %d", s, h.Count())
	}
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestSeriesStringAndBin(t *testing.T) {
	s := NewSeries(time.Millisecond)
	s.Add(0, 5)
	if s.Bin() != time.Millisecond || s.String() == "" {
		t.Fatal("accessors broken")
	}
	if s.Len() != 1 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSeriesPanicsOnBadBin(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSeries(0)
}

func TestMeterCategoryRateAndString(t *testing.T) {
	m := NewMeter()
	m.Add("x", 1e9)
	if m.CategoryRate("x", time.Second) != 1e9 {
		t.Fatal("category rate wrong")
	}
	if m.CategoryRate("x", 0) != 0 {
		t.Fatal("zero-elapsed rate must be 0")
	}
	if m.String() == "" {
		t.Fatal("string empty")
	}
	m.Reset()
	if m.Total() != 0 {
		t.Fatal("reset failed")
	}
}
