package netengine

import (
	"fmt"

	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/netstack"
	"oasis/internal/netsw"
	"oasis/internal/nic"
	"oasis/internal/obs"
	"oasis/internal/sim"
)

// feLink is the backend's engine-specific peer state for one frontend (one
// host), carried in the core link's Meta.
type feLink struct {
	hostID int
	link   *core.Link
}

// registration is one instance served by this backend's NIC.
type registration struct {
	ip   netstack.IP
	tag  uint32
	link *feLink
}

// txMeta tracks an in-flight WQE so its completion can be routed back.
type txMeta struct {
	addr int64
	ip   netstack.IP
	link *feLink
}

// Backend is the per-NIC backend driver (§3.3): it forwards TX packets and
// RX packets/completions between frontends and the NIC's queue pairs via
// the NIC's native driver, monitors link status, and reports telemetry. It
// never inspects I/O buffers except on the flow-tag-miss fallback path
// (§3.3.1 footnote), keeping DMA snoop-free (§3.2.1). It is an engine loop
// on the core runtime; messages that hit a full ring park on the core
// link's bounded pending queue (completions carry buffer ownership).
type Backend struct {
	h     *host.Host
	nicID uint16
	dev   *nic.NIC
	pool  *cxl.Pool
	cfg   Config

	rxArea     *core.BufferArea
	links      *core.LinkSet // by frontend host id; Meta holds *feLink
	regs       map[netstack.IP]*registration
	tags       map[uint32]*registration
	nextTag    uint32
	cookies    map[uint64]txMeta
	nextCook   uint64
	ctrl       *core.LinkEnd
	nicDir     map[uint16]netsw.MAC // pod directory: NIC id -> MAC (for borrowing)
	rxTarget   int                  // RX descriptors to keep posted
	lastUp     bool
	timersInit bool
	nextCheck  sim.Duration
	nextTelem  sim.Duration
	loadSnap   int64
	aerSnap    int64
	errsSnap   int64
	driver     *core.Driver

	suppressBorrow bool

	// events receives link-state transitions when RegisterObs hooked the
	// backend to a pod trace ring (nil-safe otherwise).
	events   *obs.TraceRing
	eventSrc string

	// Stats.
	TxPosted, RxForwarded int64
	RxNoRoute             int64
	Inspected             int64 // flow-tag-miss fallback inspections
	LinkDownEvents        int64
	MACBorrows            int64
}

// NewBackend creates the backend driver for a NIC attached to h. nicDir
// maps every pod NIC id to its MAC (stored in shared CXL memory in the
// paper's design; a static directory here).
func NewBackend(h *host.Host, nicID uint16, dev *nic.NIC, pool *cxl.Pool, nicDir map[uint16]netsw.MAC, cfg Config) (*Backend, error) {
	if !h.InPod() {
		return nil, fmt.Errorf("netengine: backend host must be in the CXL pod")
	}
	region, err := pool.Alloc(cfg.RxAreaBytes)
	if err != nil {
		return nil, fmt.Errorf("netengine: RX area for NIC %d: %w", nicID, err)
	}
	area, err := core.NewBufferArea(region, cfg.BufSize)
	if err != nil {
		return nil, err
	}
	rxTarget := area.Capacity() / 2
	if rxTarget > 1024 {
		rxTarget = 1024
	}
	return &Backend{
		h:        h,
		nicID:    nicID,
		dev:      dev,
		pool:     pool,
		cfg:      cfg,
		rxArea:   area,
		links:    core.NewLinkSet(cfg.PendingLimit),
		regs:     make(map[netstack.IP]*registration),
		tags:     make(map[uint32]*registration),
		nextTag:  1,
		cookies:  make(map[uint64]txMeta),
		nextCook: 1,
		nicDir:   nicDir,
		rxTarget: rxTarget,
		lastUp:   true,
	}, nil
}

// Host returns the backend's host.
func (be *Backend) Host() *host.Host { return be.h }

// NIC returns the device this backend drives.
func (be *Backend) NIC() *nic.NIC { return be.dev }

// NICID returns the pod-wide NIC identifier.
func (be *Backend) NICID() uint16 { return be.nicID }

// ConnectFrontend wires a frontend's link end into this backend.
func (be *Backend) ConnectFrontend(hostID int, end *core.LinkEnd) {
	l := be.links.Add(uint32(hostID), end)
	l.Meta = &feLink{hostID: hostID, link: l}
}

// SetControlLink attaches the backend's channel to the pod-wide allocator.
func (be *Backend) SetControlLink(end *core.LinkEnd) { be.ctrl = end }

// LoopName implements core.EngineLoop.
func (be *Backend) LoopName() string { return fmt.Sprintf("%s/be%d", be.h.Name, be.nicID) }

// Driver returns the core this backend polls on (nil before Start/Join).
func (be *Backend) Driver() *core.Driver { return be.driver }

// Join attaches the backend to an already-created driver core. Must precede
// Start.
func (be *Backend) Join(d *core.Driver) {
	if be.driver != nil {
		panic("netengine: backend already has a driver core")
	}
	be.driver = d
	d.Attach(be)
}

// Start launches the backend's dedicated polling core. No-op if the backend
// joined a shared core.
func (be *Backend) Start() {
	if be.driver != nil {
		be.driver.Start()
		return
	}
	be.driver = core.NewDriver(be.h, be.LoopName(), be.cfg.driverConfig())
	be.driver.Attach(be)
	be.driver.Start()
}

// PollOnce implements core.EngineLoop: one pass over parked completions,
// frontend messages, NIC completion queues, RX replenishment, and the
// control plane's timed duties.
func (be *Backend) PollOnce(p *sim.Proc) int {
	if !be.timersInit {
		// Telemetry and link-check windows open at first poll, not at
		// construction, so an engine started late doesn't replay old windows.
		be.timersInit = true
		be.nextCheck = p.Now() + be.cfg.LinkCheckEvery
		be.nextTelem = p.Now() + be.cfg.TelemetryEvery
	}
	// Parked completions count as progress: the loop must stay hot until
	// they are delivered.
	progress := be.links.PendingCount()
	be.links.DrainPending(p)
	// Frontend messages.
	progress += be.links.PollEach(p, be.cfg.Burst, func(p *sim.Proc, l *core.Link, payload []byte) {
		be.handleFrontendMsg(p, l.Meta.(*feLink), decode(payload))
	})
	// NIC completion queues.
	for i := 0; i < be.cfg.Burst; i++ {
		tc, ok := be.dev.PollTxCompletion()
		if !ok {
			break
		}
		be.handleTxCompletion(p, tc)
		progress++
	}
	for i := 0; i < be.cfg.Burst; i++ {
		rc, ok := be.dev.PollRxCompletion()
		if !ok {
			break
		}
		be.handleRxCompletion(p, rc)
		progress++
	}
	// Replenish RX descriptors.
	for be.dev.RxDescCount() < be.rxTarget {
		addr, ok := be.rxArea.Alloc()
		if !ok {
			break
		}
		if !be.dev.PostRx(p, nic.RxDesc{Addr: addr, Cap: be.cfg.BufSize}) {
			be.rxArea.Free(addr)
			break
		}
	}
	// Control plane.
	if be.ctrl != nil {
		for i := 0; i < be.cfg.Burst; i++ {
			payload, ok := be.ctrl.Poll(p)
			if !ok {
				break
			}
			be.handleControlMsg(p, core.DecodeControl(payload))
		}
		be.maybeCheckLink(p)
		be.maybeSendTelemetry(p)
	}
	be.links.FlushAll(p)
	if be.ctrl != nil {
		be.ctrl.Flush(p)
	}
	return progress
}

func (be *Backend) handleFrontendMsg(p *sim.Proc, l *feLink, m msg) {
	p.Sleep(be.cfg.MsgCost)
	switch m.op {
	case opTxPacket:
		cookie := be.nextCook
		be.nextCook++
		be.cookies[cookie] = txMeta{addr: m.addr, ip: m.ip, link: l}
		// The backend never touches the packet buffer: it posts the WQE
		// with the shared-memory pointer and lets the NIC DMA it (§3.3.1).
		if !be.dev.PostTx(p, nic.WQE{Addr: m.addr, Len: int(m.size), Cookie: cookie}) {
			// NIC ring full: bounce the completion immediately so the
			// frontend frees the buffer (the packet is dropped, as a real
			// full ring would).
			delete(be.cookies, cookie)
			be.sendToFE(p, l, msg{op: opTxComplete, addr: m.addr, ip: m.ip})
			return
		}
		be.TxPosted++
	case opRxComplete:
		if be.rxArea.Owns(m.addr) {
			be.rxArea.Free(m.addr)
		}
	case opRegister:
		reg, ok := be.regs[m.ip]
		if !ok {
			reg = &registration{ip: m.ip, tag: be.nextTag, link: l}
			be.nextTag++
			be.regs[m.ip] = reg
			be.tags[reg.tag] = reg
			be.dev.AddFlowRule(uint32(m.ip), reg.tag)
		} else {
			reg.link = l
		}
		be.sendToFE(p, l, msg{op: opRegisterAck, ip: m.ip, nic: be.nicID})
	case opUnregister:
		if reg, ok := be.regs[m.ip]; ok {
			be.dev.RemoveFlowRule(uint32(m.ip))
			delete(be.regs, m.ip)
			delete(be.tags, reg.tag)
		}
	}
}

func (be *Backend) handleTxCompletion(p *sim.Proc, tc nic.TxCompletion) {
	meta, ok := be.cookies[tc.Cookie]
	if !ok {
		return
	}
	delete(be.cookies, tc.Cookie)
	be.sendToFE(p, meta.link, msg{op: opTxComplete, addr: meta.addr, ip: meta.ip})
}

func (be *Backend) handleRxCompletion(p *sim.Proc, rc nic.RxCompletion) {
	p.Sleep(be.cfg.MsgCost)
	var reg *registration
	if rc.Matched {
		reg = be.tags[rc.Tag]
	}
	if reg == nil {
		// Flow-tag miss (§3.3.1 footnote): inspect the payload to find the
		// target instance, then invalidate the buffer from our caches so
		// future DMA stays snoop-free.
		reg = be.inspectAndRoute(p, rc)
	}
	if reg == nil {
		be.RxNoRoute++
		be.rxArea.Free(rc.Addr) // recycle immediately
		return
	}
	be.sendToFE(p, reg.link, msg{op: opRxPacket, addr: rc.Addr, size: uint16(rc.Len), ip: reg.ip})
	be.RxForwarded++
}

// inspectAndRoute reads the packet headers through the backend's cache to
// extract the destination IP — the exceptional path that does bring buffer
// lines into the backend's cache, paid for by the invalidations afterward.
func (be *Backend) inspectAndRoute(p *sim.Proc, rc nic.RxCompletion) *registration {
	be.Inspected++
	n := rc.Len
	if n > be.cfg.BufSize {
		n = be.cfg.BufSize
	}
	buf := make([]byte, n)
	be.h.Cache.Read(p, rc.Addr, buf, "payload")
	core.InvalidateRange(p, be.h.Cache, rc.Addr, n, "payload")
	pk, err := netstack.Unmarshal(buf)
	if err != nil {
		return nil
	}
	dst, ok := netstack.DstIPOf(pk)
	if !ok {
		return nil
	}
	return be.regs[dst]
}

// SuppressMACBorrow disables the MAC-borrowing response (failover ablation:
// GARP-only recovery).
func (be *Backend) SuppressMACBorrow() { be.suppressBorrow = true }

func (be *Backend) handleControlMsg(p *sim.Proc, m core.ControlMsg) {
	switch m.Op {
	case core.CtlBorrowMAC:
		if be.suppressBorrow {
			return
		}
		mac, ok := be.nicDir[m.Dev]
		if !ok {
			return
		}
		be.borrowMAC(mac)
	}
}

// borrowMAC announces the failed NIC's MAC from this NIC's switch port so
// the ToR remaps the address (§3.3.3). The frame is a harmless broadcast
// ARP reply for 0.0.0.0 — only its source MAC matters.
func (be *Backend) borrowMAC(mac netsw.MAC) {
	pk := &netstack.Packet{
		SrcMAC:       mac,
		DstMAC:       netsw.Broadcast,
		EtherType:    netstack.EtherTypeARP,
		ARPOp:        netstack.ARPReply,
		ARPSenderMAC: mac,
	}
	frame := pk.Marshal()
	be.dev.SendRaw(&netsw.Frame{Src: mac, Dst: netsw.Broadcast, Bytes: frame})
	be.MACBorrows++
}

// maybeCheckLink polls the NIC's link-status register (§3.3.3) and reports
// transitions to the allocator.
func (be *Backend) maybeCheckLink(p *sim.Proc) {
	if p.Now() < be.nextCheck {
		return
	}
	be.nextCheck = p.Now() + be.cfg.LinkCheckEvery
	up := be.dev.LinkUp()
	if up == be.lastUp {
		return
	}
	be.lastUp = up
	var buf [15]byte
	op := byte(core.CtlLinkUp)
	if !up {
		op = core.CtlLinkDown
		be.LinkDownEvents++
	}
	state := "up"
	if !up {
		state = "down"
	}
	be.events.Emit(p.Now(), be.eventSrc, fmt.Sprintf("nic%d link %s", be.nicID, state))
	be.ctrl.Send(p, core.EncodeControl(buf[:], core.ControlMsg{
		Op: op, Kind: core.DeviceNIC, Dev: be.nicID,
	}))
	be.ctrl.Flush(p)
}

// maybeSendTelemetry emits the periodic load record (§3.5: every 100 ms).
func (be *Backend) maybeSendTelemetry(p *sim.Proc) {
	if p.Now() < be.nextTelem {
		return
	}
	be.nextTelem = p.Now() + be.cfg.TelemetryEvery
	load := be.dev.TxBytes + be.dev.RxBytes
	delta := load - be.loadSnap
	be.loadSnap = load
	aerDelta := be.dev.AERUncorrectable - be.aerSnap
	be.aerSnap = be.dev.AERUncorrectable
	if aerDelta > 65535 {
		aerDelta = 65535
	}
	// Soft errors — RX drops and TX carrier errors — are the gray-failure
	// signal: a lossy or flaky link racks these up while the link-status
	// register still reads "up". The health scorer judges them peer-relative.
	errs := be.dev.RxLossDropped + be.dev.TxCarrierErrs
	errsDelta := errs - be.errsSnap
	be.errsSnap = errs
	if errsDelta > 255 {
		errsDelta = 255
	}
	qdepth := len(be.cookies)
	if qdepth > 65535 {
		qdepth = 65535
	}
	var buf [15]byte
	be.ctrl.Send(p, core.EncodeControl(buf[:], core.ControlMsg{
		Op:         core.CtlTelemetry,
		Kind:       core.DeviceNIC,
		Dev:        be.nicID,
		Load:       uint64(delta),
		LinkUp:     be.dev.LinkUp(),
		AER:        uint16(aerDelta),
		Errs:       uint8(errsDelta),
		QueueDepth: uint16(qdepth),
	}))
	be.ctrl.Flush(p)
}

// sendToFE sends a message to a frontend, parking it on the link's bounded
// pending queue if the ring is full (completions must not be lost: they
// carry buffer ownership).
func (be *Backend) sendToFE(p *sim.Proc, l *feLink, m msg) {
	var buf [15]byte
	l.link.SendOrQueue(p, m.encode(buf[:]))
}

// Stats exports the uniform engine counter block.
func (be *Backend) Stats() core.EngineStats {
	s := core.EngineStats{Name: be.LoopName(), Links: be.links.Stats()}
	s.AccumulateArea(be.rxArea)
	return s
}
