package netengine

import (
	"fmt"

	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/netstack"
	"oasis/internal/netsw"
	"oasis/internal/nic"
	"oasis/internal/sim"
)

// feLink is the backend's view of one frontend (one host).
type feLink struct {
	hostID int
	end    *core.LinkEnd
}

// registration is one instance served by this backend's NIC.
type registration struct {
	ip   netstack.IP
	tag  uint32
	link *feLink
}

// txMeta tracks an in-flight WQE so its completion can be routed back.
type txMeta struct {
	addr int64
	ip   netstack.IP
	link *feLink
}

// pendingMsg is a frontend-bound message that hit a full ring.
type pendingMsg struct {
	l *feLink
	m msg
}

// Backend is the per-NIC backend driver (§3.3): it forwards TX packets and
// RX packets/completions between frontends and the NIC's queue pairs via
// the NIC's native driver, monitors link status, and reports telemetry. It
// never inspects I/O buffers except on the flow-tag-miss fallback path
// (§3.3.1 footnote), keeping DMA snoop-free (§3.2.1).
type Backend struct {
	h     *host.Host
	nicID uint16
	dev   *nic.NIC
	pool  *cxl.Pool
	cfg   Config

	rxArea    *core.BufferArea
	links     []*feLink
	regs      map[netstack.IP]*registration
	tags      map[uint32]*registration
	nextTag   uint32
	cookies   map[uint64]txMeta
	nextCook  uint64
	ctrl      *core.LinkEnd
	nicDir    map[uint16]netsw.MAC // pod directory: NIC id -> MAC (for borrowing)
	rxTarget  int                  // RX descriptors to keep posted
	lastUp    bool
	nextCheck sim.Duration
	nextTelem sim.Duration
	loadSnap  int64
	aerSnap   int64
	started   bool
	pending   []pendingMsg

	suppressBorrow bool

	// Stats.
	TxPosted, RxForwarded int64
	RxNoRoute             int64
	Inspected             int64 // flow-tag-miss fallback inspections
	LinkDownEvents        int64
	MACBorrows            int64
}

// NewBackend creates the backend driver for a NIC attached to h. nicDir
// maps every pod NIC id to its MAC (stored in shared CXL memory in the
// paper's design; a static directory here).
func NewBackend(h *host.Host, nicID uint16, dev *nic.NIC, pool *cxl.Pool, nicDir map[uint16]netsw.MAC, cfg Config) (*Backend, error) {
	if !h.InPod() {
		return nil, fmt.Errorf("netengine: backend host must be in the CXL pod")
	}
	region, err := pool.Alloc(cfg.RxAreaBytes)
	if err != nil {
		return nil, fmt.Errorf("netengine: RX area for NIC %d: %w", nicID, err)
	}
	area, err := core.NewBufferArea(region, cfg.BufSize)
	if err != nil {
		return nil, err
	}
	rxTarget := area.Capacity() / 2
	if rxTarget > 1024 {
		rxTarget = 1024
	}
	return &Backend{
		h:        h,
		nicID:    nicID,
		dev:      dev,
		pool:     pool,
		cfg:      cfg,
		rxArea:   area,
		regs:     make(map[netstack.IP]*registration),
		tags:     make(map[uint32]*registration),
		nextTag:  1,
		cookies:  make(map[uint64]txMeta),
		nextCook: 1,
		nicDir:   nicDir,
		rxTarget: rxTarget,
		lastUp:   true,
	}, nil
}

// Host returns the backend's host.
func (be *Backend) Host() *host.Host { return be.h }

// NIC returns the device this backend drives.
func (be *Backend) NIC() *nic.NIC { return be.dev }

// NICID returns the pod-wide NIC identifier.
func (be *Backend) NICID() uint16 { return be.nicID }

// ConnectFrontend wires a frontend's link end into this backend.
func (be *Backend) ConnectFrontend(hostID int, end *core.LinkEnd) {
	be.links = append(be.links, &feLink{hostID: hostID, end: end})
}

// SetControlLink attaches the backend's channel to the pod-wide allocator.
func (be *Backend) SetControlLink(end *core.LinkEnd) { be.ctrl = end }

// Start launches the backend's dedicated polling core.
func (be *Backend) Start() {
	if be.started {
		return
	}
	be.started = true
	be.h.Eng.Go(fmt.Sprintf("%s/be%d", be.h.Name, be.nicID), be.loop)
}

func (be *Backend) loop(p *sim.Proc) {
	be.nextCheck = p.Now() + be.cfg.LinkCheckEvery
	be.nextTelem = p.Now() + be.cfg.TelemetryEvery
	idle := sim.Duration(0)
	for {
		progress := len(be.pending)
		be.drainPending(p)
		// Frontend messages.
		for _, l := range be.links {
			for i := 0; i < be.cfg.Burst; i++ {
				payload, ok := l.end.Poll(p)
				if !ok {
					break
				}
				be.handleFrontendMsg(p, l, decode(payload))
				progress++
			}
		}
		// NIC completion queues.
		for i := 0; i < be.cfg.Burst; i++ {
			tc, ok := be.dev.PollTxCompletion()
			if !ok {
				break
			}
			be.handleTxCompletion(p, tc)
			progress++
		}
		for i := 0; i < be.cfg.Burst; i++ {
			rc, ok := be.dev.PollRxCompletion()
			if !ok {
				break
			}
			be.handleRxCompletion(p, rc)
			progress++
		}
		// Replenish RX descriptors.
		for be.dev.RxDescCount() < be.rxTarget {
			addr, ok := be.rxArea.Alloc()
			if !ok {
				break
			}
			if !be.dev.PostRx(p, nic.RxDesc{Addr: addr, Cap: be.cfg.BufSize}) {
				be.rxArea.Free(addr)
				break
			}
		}
		// Control plane.
		if be.ctrl != nil {
			for i := 0; i < be.cfg.Burst; i++ {
				payload, ok := be.ctrl.Poll(p)
				if !ok {
					break
				}
				be.handleControlMsg(p, decode(payload))
			}
			be.maybeCheckLink(p)
			be.maybeSendTelemetry(p)
		}
		for _, l := range be.links {
			l.end.Flush(p)
		}
		if be.ctrl != nil {
			be.ctrl.Flush(p)
		}
		if progress > 0 {
			idle = 0
			p.Sleep(be.cfg.LoopCost)
			continue
		}
		idle = nextIdle(idle, be.cfg.LoopCost, be.cfg.IdleBackoff)
		p.Sleep(be.cfg.LoopCost + idle)
	}
}

func (be *Backend) handleFrontendMsg(p *sim.Proc, l *feLink, m msg) {
	p.Sleep(be.cfg.MsgCost)
	switch m.op {
	case opTxPacket:
		cookie := be.nextCook
		be.nextCook++
		be.cookies[cookie] = txMeta{addr: m.addr, ip: m.ip, link: l}
		// The backend never touches the packet buffer: it posts the WQE
		// with the shared-memory pointer and lets the NIC DMA it (§3.3.1).
		if !be.dev.PostTx(p, nic.WQE{Addr: m.addr, Len: int(m.size), Cookie: cookie}) {
			// NIC ring full: bounce the completion immediately so the
			// frontend frees the buffer (the packet is dropped, as a real
			// full ring would).
			delete(be.cookies, cookie)
			be.sendToFE(p, l, msg{op: opTxComplete, addr: m.addr, ip: m.ip})
			return
		}
		be.TxPosted++
	case opRxComplete:
		if be.rxArea.Owns(m.addr) {
			be.rxArea.Free(m.addr)
		}
	case opRegister:
		reg, ok := be.regs[m.ip]
		if !ok {
			reg = &registration{ip: m.ip, tag: be.nextTag, link: l}
			be.nextTag++
			be.regs[m.ip] = reg
			be.tags[reg.tag] = reg
			be.dev.AddFlowRule(uint32(m.ip), reg.tag)
		} else {
			reg.link = l
		}
		be.sendToFE(p, l, msg{op: opRegisterAck, ip: m.ip, nic: be.nicID})
	case opUnregister:
		if reg, ok := be.regs[m.ip]; ok {
			be.dev.RemoveFlowRule(uint32(m.ip))
			delete(be.regs, m.ip)
			delete(be.tags, reg.tag)
		}
	}
}

func (be *Backend) handleTxCompletion(p *sim.Proc, tc nic.TxCompletion) {
	meta, ok := be.cookies[tc.Cookie]
	if !ok {
		return
	}
	delete(be.cookies, tc.Cookie)
	be.sendToFE(p, meta.link, msg{op: opTxComplete, addr: meta.addr, ip: meta.ip})
}

func (be *Backend) handleRxCompletion(p *sim.Proc, rc nic.RxCompletion) {
	p.Sleep(be.cfg.MsgCost)
	var reg *registration
	if rc.Matched {
		reg = be.tags[rc.Tag]
	}
	if reg == nil {
		// Flow-tag miss (§3.3.1 footnote): inspect the payload to find the
		// target instance, then invalidate the buffer from our caches so
		// future DMA stays snoop-free.
		reg = be.inspectAndRoute(p, rc)
	}
	if reg == nil {
		be.RxNoRoute++
		be.rxArea.Free(rc.Addr) // recycle immediately
		return
	}
	be.sendToFE(p, reg.link, msg{op: opRxPacket, addr: rc.Addr, size: uint16(rc.Len), ip: reg.ip})
	be.RxForwarded++
}

// inspectAndRoute reads the packet headers through the backend's cache to
// extract the destination IP — the exceptional path that does bring buffer
// lines into the backend's cache, paid for by the invalidations afterward.
func (be *Backend) inspectAndRoute(p *sim.Proc, rc nic.RxCompletion) *registration {
	be.Inspected++
	n := rc.Len
	if n > be.cfg.BufSize {
		n = be.cfg.BufSize
	}
	buf := make([]byte, n)
	be.h.Cache.Read(p, rc.Addr, buf, "payload")
	core.InvalidateRange(p, be.h.Cache, rc.Addr, n, "payload")
	pk, err := netstack.Unmarshal(buf)
	if err != nil {
		return nil
	}
	dst, ok := netstack.DstIPOf(pk)
	if !ok {
		return nil
	}
	return be.regs[dst]
}

// SuppressMACBorrow disables the MAC-borrowing response (failover ablation:
// GARP-only recovery).
func (be *Backend) SuppressMACBorrow() { be.suppressBorrow = true }

func (be *Backend) handleControlMsg(p *sim.Proc, m msg) {
	switch m.op {
	case opBorrowMAC:
		if be.suppressBorrow {
			return
		}
		mac, ok := be.nicDir[m.nic]
		if !ok {
			return
		}
		be.borrowMAC(mac)
	}
}

// borrowMAC announces the failed NIC's MAC from this NIC's switch port so
// the ToR remaps the address (§3.3.3). The frame is a harmless broadcast
// ARP reply for 0.0.0.0 — only its source MAC matters.
func (be *Backend) borrowMAC(mac netsw.MAC) {
	pk := &netstack.Packet{
		SrcMAC:       mac,
		DstMAC:       netsw.Broadcast,
		EtherType:    netstack.EtherTypeARP,
		ARPOp:        netstack.ARPReply,
		ARPSenderMAC: mac,
	}
	frame := pk.Marshal()
	be.dev.SendRaw(&netsw.Frame{Src: mac, Dst: netsw.Broadcast, Bytes: frame})
	be.MACBorrows++
}

// maybeCheckLink polls the NIC's link-status register (§3.3.3) and reports
// transitions to the allocator.
func (be *Backend) maybeCheckLink(p *sim.Proc) {
	if p.Now() < be.nextCheck {
		return
	}
	be.nextCheck = p.Now() + be.cfg.LinkCheckEvery
	up := be.dev.LinkUp()
	if up == be.lastUp {
		return
	}
	be.lastUp = up
	var buf [15]byte
	op := byte(opLinkUp)
	if !up {
		op = opLinkDown
		be.LinkDownEvents++
	}
	be.ctrl.Send(p, msg{op: op, nic: be.nicID}.encode(buf[:]))
	be.ctrl.Flush(p)
}

// maybeSendTelemetry emits the periodic load record (§3.5: every 100 ms).
func (be *Backend) maybeSendTelemetry(p *sim.Proc) {
	if p.Now() < be.nextTelem {
		return
	}
	be.nextTelem = p.Now() + be.cfg.TelemetryEvery
	load := be.dev.TxBytes + be.dev.RxBytes
	delta := load - be.loadSnap
	be.loadSnap = load
	aerDelta := be.dev.AERUncorrectable - be.aerSnap
	be.aerSnap = be.dev.AERUncorrectable
	if aerDelta > 65535 {
		aerDelta = 65535
	}
	up := uint16(0)
	if be.dev.LinkUp() {
		up = 1
	}
	var buf [15]byte
	be.ctrl.Send(p, msg{op: opTelemetry, nic: be.nicID, load: uint64(delta), size: up, aer: uint16(aerDelta)}.encode(buf[:]))
	be.ctrl.Flush(p)
}

// sendToFE sends a message to a frontend. On a full ring it parks the
// message on the pending list; the loop retries before new work
// (completions must not be lost: they carry buffer ownership).
func (be *Backend) sendToFE(p *sim.Proc, l *feLink, m msg) {
	var buf [15]byte
	if !l.end.Send(p, m.encode(buf[:])) {
		be.pending = append(be.pending, pendingMsg{l, m})
	}
}

// drainPending retries messages that hit full rings.
func (be *Backend) drainPending(p *sim.Proc) {
	if len(be.pending) == 0 {
		return
	}
	var buf [15]byte
	kept := be.pending[:0]
	for _, pm := range be.pending {
		if !pm.l.end.Send(p, pm.m.encode(buf[:])) {
			kept = append(kept, pm)
		}
	}
	be.pending = kept
}
