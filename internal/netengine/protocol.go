// Package netengine implements the Oasis network engine (§3.3): a frontend
// driver per host giving instances packet I/O, and a backend driver per
// NIC-owning host operating the NIC's queues — connected across hosts by
// the datapath's 16-byte message channels.
package netengine

import (
	"encoding/binary"

	"oasis/internal/netstack"
)

// Opcodes for the engine's 16 B messages (15 B payload after the epoch
// byte). The data-plane layout matches §3.3.1: an 8 B buffer pointer, a 2 B
// packet size, a 1 B opcode, and a 4 B instance IP.
const (
	opTxPacket    = 1 // fe -> be: transmit buffer
	opTxComplete  = 2 // be -> fe: buffer transmitted, free it
	opRxPacket    = 3 // be -> fe: packet arrived for instance
	opRxComplete  = 4 // fe -> be: RX buffer consumed, recycle it
	opRegister    = 5 // fe -> be: register instance IP
	opRegisterAck = 6 // be -> fe: registration complete
	opUnregister  = 7 // fe -> be: remove instance

	// Control-plane opcodes (driver <-> pod-wide allocator, §3.5).
	opLinkDown  = 16 // be -> allocator: local NIC lost link
	opTelemetry = 17 // be -> allocator: periodic load record
	opFailover  = 18 // allocator -> fe: reroute from failed NIC to backup
	opBorrowMAC = 19 // allocator -> be: impersonate failed NIC's MAC
	opMigrate   = 20 // allocator -> fe: gracefully move instance to NIC
	opLinkUp    = 21 // be -> allocator: local NIC link restored

	opAllocRequest = 22 // fe -> allocator: pick NICs for a new instance
	opAssign       = 23 // allocator -> fe: primary (nic) + backup (aux)
)

// msg is the decoded form of a 15 B payload.
type msg struct {
	op   byte
	addr int64
	size uint16
	ip   netstack.IP
	nic  uint16 // control plane: NIC id (reuses the size field's bytes)
	aux  uint16 // control plane: second NIC id
	load uint64 // telemetry: bytes served in the last window
	aer  uint16 // telemetry: uncorrectable AER errors in the last window
}

// encode packs m into a 15-byte payload.
func (m msg) encode(buf []byte) []byte {
	buf = buf[:0]
	buf = append(buf, m.op)
	var b [14]byte
	switch m.op {
	case opTxPacket, opTxComplete, opRxPacket, opRxComplete:
		binary.LittleEndian.PutUint64(b[0:8], uint64(m.addr))
		binary.LittleEndian.PutUint16(b[8:10], m.size)
		binary.LittleEndian.PutUint32(b[10:14], uint32(m.ip))
	case opRegister, opRegisterAck, opUnregister, opMigrate, opAllocRequest, opAssign:
		binary.LittleEndian.PutUint32(b[10:14], uint32(m.ip))
		binary.LittleEndian.PutUint16(b[0:2], m.nic)
		binary.LittleEndian.PutUint16(b[2:4], m.aux)
	case opLinkDown, opLinkUp, opBorrowMAC:
		binary.LittleEndian.PutUint16(b[0:2], m.nic)
	case opFailover:
		binary.LittleEndian.PutUint16(b[0:2], m.nic)
		binary.LittleEndian.PutUint16(b[2:4], m.aux)
	case opTelemetry:
		binary.LittleEndian.PutUint16(b[0:2], m.nic)
		binary.LittleEndian.PutUint64(b[2:10], m.load)
		// byte 10: link status
		if m.size != 0 {
			b[10] = 1
		}
		binary.LittleEndian.PutUint16(b[11:13], m.aer)
	}
	return append(buf, b[:]...)
}

// decode unpacks a 15-byte payload.
func decode(payload []byte) msg {
	var m msg
	m.op = payload[0]
	b := payload[1:]
	switch m.op {
	case opTxPacket, opTxComplete, opRxPacket, opRxComplete:
		m.addr = int64(binary.LittleEndian.Uint64(b[0:8]))
		m.size = binary.LittleEndian.Uint16(b[8:10])
		m.ip = netstack.IP(binary.LittleEndian.Uint32(b[10:14]))
	case opRegister, opRegisterAck, opUnregister, opMigrate, opAllocRequest, opAssign:
		m.ip = netstack.IP(binary.LittleEndian.Uint32(b[10:14]))
		m.nic = binary.LittleEndian.Uint16(b[0:2])
		m.aux = binary.LittleEndian.Uint16(b[2:4])
	case opLinkDown, opLinkUp, opBorrowMAC:
		m.nic = binary.LittleEndian.Uint16(b[0:2])
	case opFailover:
		m.nic = binary.LittleEndian.Uint16(b[0:2])
		m.aux = binary.LittleEndian.Uint16(b[2:4])
	case opTelemetry:
		m.nic = binary.LittleEndian.Uint16(b[0:2])
		m.load = binary.LittleEndian.Uint64(b[2:10])
		m.size = uint16(b[10])
		m.aer = binary.LittleEndian.Uint16(b[11:13])
	}
	return m
}

// ControlMsg is the exported form of a control-plane message, used by the
// allocator package (the drivers use the internal codec directly).
type ControlMsg struct {
	Op     byte
	IP     netstack.IP
	NIC    uint16
	Aux    uint16
	Load   uint64
	LinkUp bool
	AER    uint16 // uncorrectable AER errors in the telemetry window
}

// Exported control opcodes for the allocator.
const (
	CtlLinkDown     = opLinkDown
	CtlTelemetry    = opTelemetry
	CtlFailover     = opFailover
	CtlBorrowMAC    = opBorrowMAC
	CtlMigrate      = opMigrate
	CtlLinkUp       = opLinkUp
	CtlAllocRequest = opAllocRequest
	CtlAssign       = opAssign
)

// EncodeControl packs a control message into a 15-byte channel payload.
func EncodeControl(buf []byte, m ControlMsg) []byte {
	im := msg{op: m.Op, ip: m.IP, nic: m.NIC, aux: m.Aux, load: m.Load, aer: m.AER}
	if m.LinkUp {
		im.size = 1
	}
	return im.encode(buf)
}

// DecodeControl unpacks a control message from a channel payload.
func DecodeControl(payload []byte) ControlMsg {
	im := decode(payload)
	return ControlMsg{
		Op: im.op, IP: im.ip, NIC: im.nic, Aux: im.aux,
		Load: im.load, LinkUp: im.size != 0, AER: im.aer,
	}
}
