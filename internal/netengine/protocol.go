// Package netengine implements the Oasis network engine (§3.3): a frontend
// driver per host giving instances packet I/O, and a backend driver per
// NIC-owning host operating the NIC's queues — connected across hosts by
// the datapath's 16-byte message channels. Both drivers are instantiations
// of the core engine runtime (core.Driver + core.LinkSet); this file
// defines only the engine's typed data-plane payload. Control-plane traffic
// (telemetry, link events, failover/migration commands) uses the shared
// core control codec.
package netengine

import (
	"encoding/binary"

	"oasis/internal/netstack"
)

// Opcodes for the engine's 16 B messages (15 B payload after the epoch
// byte). The data-plane layout matches §3.3.1: an 8 B buffer pointer, a 2 B
// packet size, a 1 B opcode, and a 4 B instance IP. Control opcodes live in
// the core runtime (core.Ctl*) and share the opcode byte's upper range.
const (
	opTxPacket    = 1 // fe -> be: transmit buffer
	opTxComplete  = 2 // be -> fe: buffer transmitted, free it
	opRxPacket    = 3 // be -> fe: packet arrived for instance
	opRxComplete  = 4 // fe -> be: RX buffer consumed, recycle it
	opRegister    = 5 // fe -> be: register instance IP
	opRegisterAck = 6 // be -> fe: registration complete
	opUnregister  = 7 // fe -> be: remove instance
)

// msg is the decoded form of a 15 B data-plane payload.
type msg struct {
	op   byte
	addr int64
	size uint16
	ip   netstack.IP
	nic  uint16 // register ack: the acking NIC's id
}

// encode packs m into a 15-byte payload.
func (m msg) encode(buf []byte) []byte {
	buf = buf[:0]
	buf = append(buf, m.op)
	var b [14]byte
	switch m.op {
	case opTxPacket, opTxComplete, opRxPacket, opRxComplete:
		binary.LittleEndian.PutUint64(b[0:8], uint64(m.addr))
		binary.LittleEndian.PutUint16(b[8:10], m.size)
		binary.LittleEndian.PutUint32(b[10:14], uint32(m.ip))
	case opRegister, opRegisterAck, opUnregister:
		binary.LittleEndian.PutUint32(b[10:14], uint32(m.ip))
		binary.LittleEndian.PutUint16(b[0:2], m.nic)
	}
	return append(buf, b[:]...)
}

// decode unpacks a 15-byte payload.
func decode(payload []byte) msg {
	var m msg
	m.op = payload[0]
	b := payload[1:]
	switch m.op {
	case opTxPacket, opTxComplete, opRxPacket, opRxComplete:
		m.addr = int64(binary.LittleEndian.Uint64(b[0:8]))
		m.size = binary.LittleEndian.Uint16(b[8:10])
		m.ip = netstack.IP(binary.LittleEndian.Uint32(b[10:14]))
	case opRegister, opRegisterAck, opUnregister:
		m.ip = netstack.IP(binary.LittleEndian.Uint32(b[10:14]))
		m.nic = binary.LittleEndian.Uint16(b[0:2])
	}
	return m
}
