package netengine

import (
	"fmt"

	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/netstack"
	"oasis/internal/netsw"
	"oasis/internal/nic"
	"oasis/internal/sim"
)

// LocalDriver is the evaluation baseline (§5.1): a Junction-style IOKernel
// serving local instances with a local NIC on ONE polling core — no
// frontend/backend split and no message-channel crossings. Packet buffers
// live in a buffer area whose latency class models either host DDR
// (baseline) or CXL memory (Fig. 11's middle configuration).
//
// The datapath per direction is: instance IPC ring -> driver core -> NIC
// queue pair, exactly one intermediary.
type LocalDriver struct {
	h    *host.Host
	dev  *nic.NIC
	pool *cxl.Pool
	cfg  Config

	insts     map[netstack.IP]*LocalPort
	instOrder []netstack.IP
	rxArea    *core.BufferArea
	cookies   map[uint64]localTxMeta
	nextCook  uint64
	rxTarget  int
	scratch   []byte
	driver    *core.Driver

	// Stats.
	TxForwarded, RxDelivered int64
}

type localTxMeta struct {
	addr int64
	inst *LocalPort
}

// NewLocalDriver creates the baseline driver for a host with a local NIC.
func NewLocalDriver(h *host.Host, dev *nic.NIC, pool *cxl.Pool, cfg Config) (*LocalDriver, error) {
	region, err := pool.Alloc(cfg.RxAreaBytes)
	if err != nil {
		return nil, fmt.Errorf("netengine: local RX area: %w", err)
	}
	area, err := core.NewBufferArea(region, cfg.BufSize)
	if err != nil {
		return nil, err
	}
	rxTarget := area.Capacity() / 2
	if rxTarget > 1024 {
		rxTarget = 1024
	}
	return &LocalDriver{
		h:        h,
		dev:      dev,
		pool:     pool,
		cfg:      cfg,
		insts:    make(map[netstack.IP]*LocalPort),
		rxArea:   area,
		cookies:  make(map[uint64]localTxMeta),
		nextCook: 1,
		rxTarget: rxTarget,
		scratch:  make([]byte, cfg.BufSize),
	}, nil
}

// LocalPort is an instance's attachment to the baseline driver. It
// implements netstack.Endpoint like InstancePort, but the driver serves it
// directly.
type LocalPort struct {
	drv   *LocalDriver
	ip    netstack.IP
	area  *core.BufferArea
	txQ   *sim.Queue[txReq]
	stack *netstack.Stack
	tag   uint32

	TxDropsNoBuffer int64
}

// AddInstance attaches an instance (buffer area + flow rule) to the driver.
func (d *LocalDriver) AddInstance(ip netstack.IP) (*LocalPort, error) {
	if _, dup := d.insts[ip]; dup {
		return nil, fmt.Errorf("netengine: instance %v already attached", ip)
	}
	region, err := d.pool.Alloc(d.cfg.TxAreaBytes)
	if err != nil {
		return nil, err
	}
	area, err := core.NewBufferArea(region, d.cfg.BufSize)
	if err != nil {
		return nil, err
	}
	lp := &LocalPort{
		drv:  d,
		ip:   ip,
		area: area,
		txQ:  sim.NewQueue[txReq](d.h.Eng),
		tag:  uint32(len(d.insts) + 1),
	}
	d.insts[ip] = lp
	d.instOrder = append(d.instOrder, ip)
	d.dev.AddFlowRule(uint32(ip), lp.tag)
	return lp, nil
}

// AttachStack binds the instance's network stack.
func (lp *LocalPort) AttachStack(s *netstack.Stack) { lp.stack = s }

// CurrentMAC returns the local NIC's MAC.
func (lp *LocalPort) CurrentMAC() netsw.MAC { return lp.drv.dev.MAC() }

// Transmit implements netstack.Endpoint: write the frame into the buffer
// area and signal the driver over the IPC ring.
func (lp *LocalPort) Transmit(p *sim.Proc, frame []byte) {
	addr, ok := lp.area.Alloc()
	if !ok {
		lp.TxDropsNoBuffer++
		lp.drv.h.Eng.Bufs().Put(frame)
		return
	}
	size := len(frame)
	lp.drv.h.Cache.Write(p, addr, frame, "payload")
	lp.drv.h.Eng.Bufs().Put(frame) // bytes now live in the buffer area
	p.Sleep(lp.drv.h.IPCCost)
	lp.txQ.Push(txReq{addr: addr, size: size})
}

// LoopName implements core.EngineLoop.
func (d *LocalDriver) LoopName() string { return d.h.Name + "/iokernel" }

// Driver returns the core this driver polls on (nil before Start/Join).
func (d *LocalDriver) Driver() *core.Driver { return d.driver }

// Join attaches the baseline driver to an already-created core. Must
// precede Start.
func (d *LocalDriver) Join(drv *core.Driver) {
	if d.driver != nil {
		panic("netengine: local driver already has a driver core")
	}
	d.driver = drv
	drv.Attach(d)
}

// Start launches the driver's polling core. No-op if it joined a shared
// core.
func (d *LocalDriver) Start() {
	if d.driver != nil {
		d.driver.Start()
		return
	}
	d.driver = core.NewDriver(d.h, d.LoopName(), d.cfg.driverConfig())
	d.driver.Attach(d)
	d.driver.Start()
}

// PollOnce implements core.EngineLoop: instance TX rings, NIC completions,
// and RX replenishment — the single-intermediary baseline pass.
func (d *LocalDriver) PollOnce(p *sim.Proc) int {
	progress := 0
	for _, ip := range d.instOrder {
		inst := d.insts[ip]
		for i := 0; i < d.cfg.Burst; i++ {
			req, ok := inst.txQ.TryPop()
			if !ok {
				break
			}
			// Publish the buffer for DMA, then post straight to the NIC
			// — the single-intermediary baseline path.
			core.WritebackRange(p, d.h.Cache, req.addr, req.size, "payload")
			cookie := d.nextCook
			d.nextCook++
			d.cookies[cookie] = localTxMeta{addr: req.addr, inst: inst}
			if !d.dev.PostTx(p, nic.WQE{Addr: req.addr, Len: req.size, Cookie: cookie}) {
				delete(d.cookies, cookie)
				inst.area.Free(req.addr)
				continue
			}
			d.TxForwarded++
			progress++
		}
	}
	for i := 0; i < d.cfg.Burst; i++ {
		tc, ok := d.dev.PollTxCompletion()
		if !ok {
			break
		}
		if meta, hit := d.cookies[tc.Cookie]; hit {
			delete(d.cookies, tc.Cookie)
			meta.inst.area.Free(meta.addr)
		}
		progress++
	}
	for i := 0; i < d.cfg.Burst; i++ {
		rc, ok := d.dev.PollRxCompletion()
		if !ok {
			break
		}
		d.deliverRx(p, rc)
		progress++
	}
	for d.dev.RxDescCount() < d.rxTarget {
		addr, ok := d.rxArea.Alloc()
		if !ok {
			break
		}
		if !d.dev.PostRx(p, nic.RxDesc{Addr: addr, Cap: d.cfg.BufSize}) {
			d.rxArea.Free(addr)
			break
		}
	}
	return progress
}

// Stats exports the uniform engine counter block (no message links; the
// baseline driver talks to instances over local IPC only).
func (d *LocalDriver) Stats() core.EngineStats {
	s := core.EngineStats{Name: d.LoopName()}
	s.AccumulateArea(d.rxArea)
	for _, ip := range d.instOrder {
		s.AccumulateArea(d.insts[ip].area)
	}
	return s
}

func (d *LocalDriver) deliverRx(p *sim.Proc, rc nic.RxCompletion) {
	var inst *LocalPort
	if rc.Matched {
		for _, ip := range d.instOrder {
			if d.insts[ip].tag == rc.Tag {
				inst = d.insts[ip]
				break
			}
		}
	}
	n := rc.Len
	if inst == nil {
		// Inspect (broadcasts/ARP) to find the destination instance.
		d.h.Cache.Read(p, rc.Addr, d.scratch[:n], "payload")
		if pk, err := netstack.Unmarshal(d.scratch[:n]); err == nil {
			if dst, ok := netstack.DstIPOf(pk); ok {
				inst = d.insts[dst]
			}
		}
	}
	if inst == nil {
		core.InvalidateRange(p, d.h.Cache, rc.Addr, n, "payload")
		d.rxArea.Free(rc.Addr)
		return
	}
	d.h.Cache.Read(p, rc.Addr, d.scratch[:n], "payload")
	local := d.h.Eng.Bufs().Get(n)
	copy(local, d.scratch[:n])
	p.Sleep(d.h.Local.TouchCost(n))
	core.InvalidateRange(p, d.h.Cache, rc.Addr, n, "payload")
	d.rxArea.Free(rc.Addr)
	d.RxDelivered++
	if inst.stack != nil {
		inst.stack.DeliverOwnedFrame(local)
	} else {
		d.h.Eng.Bufs().Put(local)
	}
}
