package netengine

import (
	"testing"
	"testing/quick"

	"oasis/internal/netstack"
)

func TestDataplaneCodecRoundTrip(t *testing.T) {
	msgs := []msg{
		{op: opTxPacket, addr: 0x1234_5678_9abc, size: 1500, ip: netstack.IPv4(10, 0, 0, 1)},
		{op: opTxComplete, addr: 4096, ip: netstack.IPv4(10, 0, 0, 2)},
		{op: opRxPacket, addr: 1 << 40, size: 64, ip: netstack.IPv4(192, 168, 1, 1)},
		{op: opRxComplete, addr: 0},
		{op: opRegister, ip: netstack.IPv4(10, 0, 0, 9), nic: 7},
		{op: opRegisterAck, ip: 1, nic: 65535},
		{op: opUnregister, ip: netstack.IPv4(255, 255, 255, 255)},
	}
	var buf [15]byte
	for i, m := range msgs {
		got := decode(m.encode(buf[:]))
		if got != m {
			t.Fatalf("msg %d round trip:\n got %+v\nwant %+v", i, got, m)
		}
	}
}

func TestDataplaneCodecProperty(t *testing.T) {
	f := func(addr int64, size uint16, ip uint32) bool {
		if addr < 0 {
			addr = -addr
		}
		var buf [15]byte
		m := msg{op: opTxPacket, addr: addr, size: size, ip: netstack.IP(ip)}
		got := decode(m.encode(buf[:]))
		return got.addr == addr && got.size == size && got.ip == netstack.IP(ip)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodedPayloadFitsChannelSlot(t *testing.T) {
	// Every data opcode's encoding must fit the 15-byte payload of a 16 B
	// slot (control opcodes are covered in the core package's codec tests).
	var buf [15]byte
	for op := byte(opTxPacket); op <= opUnregister; op++ {
		m := msg{op: op, addr: 1 << 45, size: 65535, ip: 0xffffffff, nic: 65535}
		payload := m.encode(buf[:])
		if len(payload) != 15 {
			t.Fatalf("opcode %d encodes to %d bytes, want exactly 15", op, len(payload))
		}
	}
}
