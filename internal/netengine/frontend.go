package netengine

import (
	"errors"
	"fmt"
	"time"

	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/msgchan"
	"oasis/internal/netstack"
	"oasis/internal/netsw"
	"oasis/internal/sim"
)

// ErrAllocRetryExhausted marks an instance whose allocation-request circuit
// breaker tripped: AllocRetryBudget consecutive resends went unanswered, so
// the frontend fails the placement fast instead of retrying forever. A new
// RequestAllocation re-arms the breaker.
var ErrAllocRetryExhausted = errors.New("netengine: allocation retry budget exhausted")

// Config sizes the network engine. The paper's values (64 MB TX areas, 4 GB
// RX areas, 8192-slot channels) are configurable; defaults are scaled so a
// simulation's free lists stay small while preserving the >packets-in-flight
// property that matters.
type Config struct {
	TxAreaBytes int64 // per-instance TX buffer area (§3.3.1; paper: 64 MB)
	RxAreaBytes int64 // per-NIC RX buffer area (§3.3.1; paper: 4 GB)
	BufSize     int   // I/O buffer size; holds one MTU frame
	Chan        msgchan.Config
	LoopCost    sim.Duration // per poll-loop iteration CPU cost
	Burst       int          // max items drained per queue per iteration
	// MsgCost is the per-message driver handling cost (decode, per-instance
	// state lookups, WQE/buffer bookkeeping) charged on each send and
	// receive of a datapath message. It models the §5.1 observation that
	// "the frontend and backend driver cores also handle other tasks, which
	// delays message passing" — most of the 4-7 µs end-to-end overhead.
	MsgCost sim.Duration
	// IdleBackoff caps the exponential sleep a driver core applies after
	// consecutive empty poll loops. Real cores busy-poll continuously; the
	// backoff is a simulation-speed device that bounds added latency to one
	// backoff period. Set 0 to busy-poll faithfully (Table 3's idle row).
	IdleBackoff sim.Duration

	LinkCheckEvery sim.Duration // backend link-status poll period
	TelemetryEvery sim.Duration // backend telemetry period (§3.5: 100 ms)
	MigrationGrace sim.Duration // §3.3.4: dual-NIC RX window (5 s)

	// AllocRetryBase is the initial interval after which an unanswered
	// allocation request (RequestAllocation with no CtlAssign yet) is resent
	// to the allocator; subsequent retries back off exponentially up to
	// allocRetryCap. This is what lets instances launched during an
	// allocator outage (leader crash, host failure) eventually place. 0
	// disables retries (a request is sent exactly once).
	AllocRetryBase sim.Duration

	// AllocRetryBudget is the circuit breaker on that retry loop: after
	// this many consecutive unanswered resends the frontend stops
	// retrying and the instance fails fast with ErrAllocRetryExhausted
	// (AllocError) instead of hammering a dead allocator forever. The
	// breaker resets when an assignment finally lands or the instance
	// re-requests. 0 means unlimited retries. The default is generous —
	// with the backoff cap it tolerates allocator outages of ~15 s —
	// because tripping it turns a transient outage into a hard error.
	AllocRetryBudget int

	// PendingLimit bounds each peer link's queue of messages parked on a
	// full ring before the link reports backpressure (core.LinkSet).
	PendingLimit int
}

// DefaultConfig returns the engine defaults.
func DefaultConfig() Config {
	return Config{
		TxAreaBytes:      4 << 20,
		RxAreaBytes:      16 << 20,
		BufSize:          2048,
		Chan:             msgchan.DefaultConfig(),
		LoopCost:         60 * time.Nanosecond,
		Burst:            32,
		MsgCost:          150 * time.Nanosecond,
		IdleBackoff:      time.Microsecond,
		LinkCheckEvery:   time.Millisecond,
		TelemetryEvery:   100 * time.Millisecond,
		MigrationGrace:   5 * time.Second,
		PendingLimit:     core.DefaultPendingLimit,
		AllocRetryBase:   10 * time.Millisecond,
		AllocRetryBudget: 32,
	}
}

// allocRetryCap bounds the allocation-request retry backoff.
const allocRetryCap = 500 * time.Millisecond

// driverConfig derives the core runtime pacing from the engine config.
func (c Config) driverConfig() core.DriverConfig {
	return core.DriverConfig{LoopCost: c.LoopCost, IdleBackoff: c.IdleBackoff}
}

// txReq is one packet an instance queued for transmission.
type txReq struct {
	addr int64
	size int
}

// beLink is the frontend's engine-specific peer state for one backend (one
// NIC), carried in the core link's Meta.
type beLink struct {
	nicID uint16
	mac   netsw.MAC
	link  *core.Link
}

// feCmd is deferred work executed on the frontend's core.
type feCmd func(p *sim.Proc)

// Frontend is the per-host frontend driver (§3.3): it owns the host's
// instances' TX buffer areas, forwards packets and completions between
// instances and backends, and applies the allocator's failover/migration
// commands. It is an engine loop on the core runtime — Start gives it a
// dedicated driver core, Join multiplexes it onto a shared one.
type Frontend struct {
	h    *host.Host
	pool *cxl.Pool
	cfg  Config

	links     *core.LinkSet // by NIC id; Meta holds *beLink
	insts     map[netstack.IP]*InstancePort
	instOrder []netstack.IP
	ctrl      *core.LinkEnd
	cmds      *sim.Queue[feCmd]
	scratch   []byte
	driver    *core.Driver

	// Stats.
	TxForwarded, RxDelivered int64
	TxChannelFull            int64
	UnknownCompletions       int64
	FailoversApplied         int64
	AllocRetries             int64
	AllocRetryExhausted      int64 // circuit-breaker trips (per instance-request)
}

// NewFrontend creates the frontend driver for a pod host.
func NewFrontend(h *host.Host, pool *cxl.Pool, cfg Config) *Frontend {
	if !h.InPod() {
		panic("netengine: frontend host must be in the CXL pod")
	}
	return &Frontend{
		h:       h,
		pool:    pool,
		cfg:     cfg,
		links:   core.NewLinkSet(cfg.PendingLimit),
		insts:   make(map[netstack.IP]*InstancePort),
		cmds:    sim.NewQueue[feCmd](h.Eng),
		scratch: make([]byte, cfg.BufSize),
	}
}

// Host returns the frontend's host.
func (fe *Frontend) Host() *host.Host { return fe.h }

// ConnectBackend wires this frontend to a backend over its end of a duplex
// link. mac is the backend NIC's address (from the pod directory), which
// instances served by that NIC use as their source MAC.
func (fe *Frontend) ConnectBackend(nicID uint16, mac netsw.MAC, end *core.LinkEnd) {
	l := fe.links.Add(uint32(nicID), end)
	l.Meta = &beLink{nicID: nicID, mac: mac, link: l}
}

// beLink returns the engine state for a NIC's link, or nil.
func (fe *Frontend) beLink(nicID uint16) *beLink {
	l := fe.links.Get(uint32(nicID))
	if l == nil {
		return nil
	}
	return l.Meta.(*beLink)
}

// SetControlLink attaches the frontend's channel to the pod-wide allocator.
func (fe *Frontend) SetControlLink(end *core.LinkEnd) { fe.ctrl = end }

// InstancePort is one instance's attachment to the frontend: its TX buffer
// area, its queues, and its current NIC assignment. It implements
// netstack.Endpoint.
type InstancePort struct {
	fe   *Frontend
	ip   netstack.IP
	area *core.BufferArea
	txQ  *sim.Queue[txReq]

	stack *netstack.Stack

	primary, backup *beLink
	pendingPrimary  uint16 // NIC id awaiting migration ack (0 = none)
	ready           map[uint16]bool
	readySig        *sim.Signal
	curMAC          netsw.MAC

	// Allocation-request retry state (timeout + exponential backoff): set by
	// RequestAllocation, cleared when the allocator's CtlAssign lands.
	// allocTries counts consecutive unanswered resends toward
	// AllocRetryBudget; allocErr holds ErrAllocRetryExhausted once the
	// circuit breaker trips.
	allocWant    bool
	allocNext    sim.Duration
	allocBackoff sim.Duration
	allocTries   int
	allocErr     error

	// Stats.
	TxDropsNoBuffer int64
	TxPackets       int64
	RxPackets       int64
}

// AddInstance creates an instance attachment with its own TX buffer area
// carved from the shared pool.
func (fe *Frontend) AddInstance(ip netstack.IP) (*InstancePort, error) {
	if _, dup := fe.insts[ip]; dup {
		return nil, fmt.Errorf("netengine: instance %v already attached", ip)
	}
	region, err := fe.pool.Alloc(fe.cfg.TxAreaBytes)
	if err != nil {
		return nil, fmt.Errorf("netengine: TX area for %v: %w", ip, err)
	}
	area, err := core.NewBufferArea(region, fe.cfg.BufSize)
	if err != nil {
		return nil, err
	}
	inst := &InstancePort{
		fe:       fe,
		ip:       ip,
		area:     area,
		txQ:      sim.NewQueue[txReq](fe.h.Eng),
		ready:    make(map[uint16]bool),
		readySig: sim.NewSignal(fe.h.Eng),
	}
	fe.insts[ip] = inst
	fe.instOrder = append(fe.instOrder, ip)
	return inst, nil
}

// IP returns the instance's address.
func (ip *InstancePort) IP() netstack.IP { return ip.ip }

// Frontend returns the driver this port is attached to.
func (ip *InstancePort) Frontend() *Frontend { return ip.fe }

// AttachStack binds the instance's network stack (created with
// CurrentMAC as its MAC source and this port as its endpoint).
func (ip *InstancePort) AttachStack(s *netstack.Stack) { ip.stack = s }

// CurrentMAC returns the MAC the instance currently transmits with — the
// primary NIC's address, which survives failover because the backup NIC
// borrows it (§3.3.3) and changes only on graceful migration (§3.3.4).
func (ip *InstancePort) CurrentMAC() netsw.MAC { return ip.curMAC }

// Ready reports whether the primary NIC registration completed.
func (ip *InstancePort) Ready() bool {
	return ip.primary != nil && ip.ready[ip.primary.nicID]
}

// WaitReady blocks the calling process until the instance can transmit.
func (ip *InstancePort) WaitReady(p *sim.Proc, timeout sim.Duration) bool {
	deadline := p.Now() + timeout
	for !ip.Ready() {
		remaining := deadline - p.Now()
		if remaining <= 0 {
			return false
		}
		ip.readySig.WaitTimeout(p, remaining)
	}
	return true
}

// Transmit implements netstack.Endpoint: the instance's stack writes the
// packet into its TX buffer area in shared CXL memory (through the host
// cache — the frontend writes it back later) and signals the frontend over
// local IPC (§3.3.1).
func (ip *InstancePort) Transmit(p *sim.Proc, frame []byte) {
	if len(frame) > ip.area.BufSize() {
		panic(fmt.Sprintf("netengine: frame of %d bytes exceeds buffer size %d", len(frame), ip.area.BufSize()))
	}
	addr, ok := ip.area.Alloc()
	if !ok {
		ip.TxDropsNoBuffer++
		ip.fe.h.Eng.Bufs().Put(frame)
		return
	}
	size := len(frame)
	ip.fe.h.Cache.Write(p, addr, frame, "payload")
	ip.fe.h.Eng.Bufs().Put(frame) // bytes now live in the buffer area
	p.Sleep(ip.fe.h.IPCCost)
	ip.txQ.Push(txReq{addr: addr, size: size})
}

// Assign sets the instance's primary and backup NICs, registering it with
// both backends (§3.3.3: backup registration happens at launch so failover
// is immediate). Pass backup = 0 for no backup.
func (ip *InstancePort) Assign(primary, backup uint16) {
	fe := ip.fe
	fe.cmds.Push(func(p *sim.Proc) {
		pl := fe.beLink(primary)
		if pl == nil {
			panic(fmt.Sprintf("netengine: assign to unknown NIC %d", primary))
		}
		ip.primary = pl
		ip.curMAC = pl.mac
		fe.sendRegister(p, pl, ip.ip)
		if backup != 0 {
			bl := fe.beLink(backup)
			if bl == nil {
				panic(fmt.Sprintf("netengine: backup NIC %d unknown", backup))
			}
			ip.backup = bl
			fe.sendRegister(p, bl, ip.ip)
		}
	})
}

// RequestAllocation asks the pod-wide allocator to pick NICs for this
// instance (§3.5); the allocator answers with an assign command. If no
// answer arrives (the request or reply was lost in an allocator outage),
// the frontend resends under exponential backoff until assigned.
func (ip *InstancePort) RequestAllocation() {
	fe := ip.fe
	fe.cmds.Push(func(p *sim.Proc) {
		if fe.ctrl == nil {
			panic("netengine: RequestAllocation without a control link")
		}
		ip.allocWant = true
		ip.allocBackoff = fe.cfg.AllocRetryBase
		ip.allocNext = p.Now() + ip.allocBackoff
		ip.allocTries = 0
		ip.allocErr = nil
		fe.sendAllocRequest(p, ip)
	})
}

// AllocError returns ErrAllocRetryExhausted once the instance's allocation
// circuit breaker has tripped, nil otherwise (including while retries are
// still in flight).
func (ip *InstancePort) AllocError() error { return ip.allocErr }

// sendAllocRequest emits one allocation request (best effort: a full ring
// is recovered by the retry timer, not a park).
func (fe *Frontend) sendAllocRequest(p *sim.Proc, inst *InstancePort) {
	var buf [15]byte
	fe.ctrl.Send(p, core.EncodeControl(buf[:], core.ControlMsg{
		Op: core.CtlAllocRequest, Kind: core.DeviceNIC, IP: inst.ip,
	}))
	fe.ctrl.Flush(p)
}

// sendRegister emits a registration message (best effort; the channel is
// effectively never full for control traffic).
func (fe *Frontend) sendRegister(p *sim.Proc, l *beLink, ip netstack.IP) {
	var buf [15]byte
	if !l.link.Send(p, msg{op: opRegister, ip: ip}.encode(buf[:])) {
		// Ring full: retry via the command queue.
		fe.cmds.Push(func(p *sim.Proc) { fe.sendRegister(p, l, ip) })
		return
	}
	l.link.Flush(p)
}

// LoopName implements core.EngineLoop.
func (fe *Frontend) LoopName() string { return fe.h.Name + "/fe" }

// Driver returns the core this frontend polls on (nil before Start/Join).
func (fe *Frontend) Driver() *core.Driver { return fe.driver }

// Join attaches the frontend to an already-created driver core, letting one
// core multiplex several engine loops (§5.1). Must precede Start.
func (fe *Frontend) Join(d *core.Driver) {
	if fe.driver != nil {
		panic("netengine: frontend already has a driver core")
	}
	fe.driver = d
	d.Attach(fe)
}

// Start launches the frontend's dedicated polling core (§3.3). No-op if the
// frontend joined a shared core.
func (fe *Frontend) Start() {
	if fe.driver != nil {
		fe.driver.Start()
		return
	}
	fe.driver = core.NewDriver(fe.h, fe.LoopName(), fe.cfg.driverConfig())
	fe.driver.Attach(fe)
	fe.driver.Start()
}

// PollOnce implements core.EngineLoop: one pass over deferred commands,
// instance TX queues, backend messages, and allocator commands.
func (fe *Frontend) PollOnce(p *sim.Proc) int {
	// Parked completion messages keep the loop hot until delivered.
	progress := fe.links.PendingCount()
	fe.links.DrainPending(p)
	// Deferred commands (assignments, migration steps).
	for i := 0; i < fe.cfg.Burst; i++ {
		cmd, ok := fe.cmds.TryPop()
		if !ok {
			break
		}
		cmd(p)
		progress++
	}
	// Unanswered allocation requests: resend under exponential backoff,
	// until the per-instance retry budget trips the circuit breaker.
	if fe.ctrl != nil && fe.cfg.AllocRetryBase > 0 {
		for _, ipAddr := range fe.instOrder {
			inst := fe.insts[ipAddr]
			if !inst.allocWant || p.Now() < inst.allocNext {
				continue
			}
			if fe.cfg.AllocRetryBudget > 0 && inst.allocTries >= fe.cfg.AllocRetryBudget {
				inst.allocWant = false
				inst.allocErr = ErrAllocRetryExhausted
				fe.AllocRetryExhausted++
				progress++
				continue
			}
			inst.allocBackoff *= 2
			if inst.allocBackoff > allocRetryCap {
				inst.allocBackoff = allocRetryCap
			}
			inst.allocNext = p.Now() + inst.allocBackoff
			inst.allocTries++
			fe.AllocRetries++
			fe.sendAllocRequest(p, inst)
			progress++
		}
	}
	// Instance TX queues -> backends.
	for _, ipAddr := range fe.instOrder {
		inst := fe.insts[ipAddr]
		if !inst.Ready() {
			continue
		}
		for i := 0; i < fe.cfg.Burst; i++ {
			req, ok := inst.txQ.TryPop()
			if !ok {
				break
			}
			fe.forwardTx(p, inst, req)
			progress++
		}
	}
	// Backend messages.
	progress += fe.links.PollEach(p, fe.cfg.Burst, func(p *sim.Proc, l *core.Link, payload []byte) {
		fe.handleBackendMsg(p, l.Meta.(*beLink), decode(payload))
	})
	// Allocator commands.
	if fe.ctrl != nil {
		for i := 0; i < fe.cfg.Burst; i++ {
			payload, ok := fe.ctrl.Poll(p)
			if !ok {
				break
			}
			fe.handleControlMsg(p, core.DecodeControl(payload))
			progress++
		}
	}
	// Push partial message lines promptly at low rates (§3.2.2).
	fe.links.FlushAll(p)
	if fe.ctrl != nil {
		fe.ctrl.Flush(p)
	}
	return progress
}

// forwardTx publishes the packet buffer and signals the backend (§3.3.1 TX).
func (fe *Frontend) forwardTx(p *sim.Proc, inst *InstancePort, req txReq) {
	p.Sleep(fe.cfg.MsgCost)
	core.WritebackRange(p, fe.h.Cache, req.addr, req.size, "payload")
	var buf [15]byte
	m := msg{op: opTxPacket, addr: req.addr, size: uint16(req.size), ip: inst.ip}
	if !inst.primary.link.Send(p, m.encode(buf[:])) {
		fe.TxChannelFull++
		inst.txQ.PushFront(req)
		return
	}
	inst.TxPackets++
	fe.TxForwarded++
}

func (fe *Frontend) handleBackendMsg(p *sim.Proc, l *beLink, m msg) {
	p.Sleep(fe.cfg.MsgCost)
	switch m.op {
	case opTxComplete:
		inst, ok := fe.insts[m.ip]
		if !ok || !inst.area.Owns(m.addr) {
			fe.UnknownCompletions++
			return
		}
		inst.area.Free(m.addr)
	case opRxPacket:
		inst, ok := fe.insts[m.ip]
		if !ok {
			fe.UnknownCompletions++
			// Recycle the buffer anyway so the backend does not leak it.
			fe.sendRxComplete(p, l, m.addr)
			return
		}
		fe.deliverRx(p, l, inst, m)
	case opRegisterAck:
		inst, ok := fe.insts[m.ip]
		if !ok {
			return
		}
		inst.ready[m.nic] = true
		inst.readySig.Broadcast()
		if inst.pendingPrimary == m.nic {
			fe.completeMigration(p, inst, m.nic)
		}
	}
}

// deliverRx implements §3.3.1 RX: read the packet from the shared RX
// buffer, copy it into the instance's local memory (isolation, §3.3.2),
// invalidate the buffer lines, notify the instance, and recycle the buffer.
func (fe *Frontend) deliverRx(p *sim.Proc, l *beLink, inst *InstancePort, m msg) {
	n := int(m.size)
	fe.h.Cache.Read(p, m.addr, fe.scratch[:n], "payload")
	local := fe.h.Eng.Bufs().Get(n)
	copy(local, fe.scratch[:n])
	p.Sleep(fe.h.Local.TouchCost(n)) // the isolation copy into instance memory
	core.InvalidateRange(p, fe.h.Cache, m.addr, n, "payload")
	fe.sendRxComplete(p, l, m.addr)
	inst.RxPackets++
	fe.RxDelivered++
	if inst.stack != nil {
		inst.stack.DeliverOwnedFrame(local)
	} else {
		fe.h.Eng.Bufs().Put(local)
	}
}

// sendRxComplete recycles an RX buffer to its backend. The message carries
// buffer ownership, so a full ring parks it on the link's bounded pending
// queue rather than dropping it.
func (fe *Frontend) sendRxComplete(p *sim.Proc, l *beLink, addr int64) {
	var buf [15]byte
	l.link.SendOrQueue(p, msg{op: opRxComplete, addr: addr}.encode(buf[:]))
}

func (fe *Frontend) handleControlMsg(p *sim.Proc, m core.ControlMsg) {
	switch m.Op {
	case core.CtlFailover:
		failed, backup := m.Dev, m.Aux
		bl := fe.beLink(backup)
		if bl == nil {
			return
		}
		for _, ipAddr := range fe.instOrder {
			inst := fe.insts[ipAddr]
			if inst.primary != nil && inst.primary.nicID == failed {
				// TX reroutes immediately: buffers are already in shared CXL
				// memory, so no copy is needed (§3.3.3). The MAC is borrowed,
				// so curMAC stays.
				inst.primary = bl
				if !inst.ready[backup] {
					fe.sendRegister(p, bl, inst.ip)
				}
				fe.FailoversApplied++
			}
		}
	case core.CtlAssign:
		inst, ok := fe.insts[m.IP]
		if !ok {
			return
		}
		inst.allocWant = false
		inst.allocTries = 0
		inst.allocErr = nil // a late assign heals a tripped breaker
		backup := uint16(0)
		if m.Aux != 0 {
			backup = m.Aux
		}
		inst.Assign(m.Dev, backup)
	case core.CtlMigrate:
		inst, ok := fe.insts[m.IP]
		if !ok {
			return
		}
		fe.startMigration(p, inst, m.Dev)
	}
}

// startMigration begins a graceful migration (§3.3.4): register with the
// new NIC; the flip happens when the ack arrives.
func (fe *Frontend) startMigration(p *sim.Proc, inst *InstancePort, newNIC uint16) {
	nl := fe.beLink(newNIC)
	if nl == nil {
		return
	}
	inst.pendingPrimary = newNIC
	if inst.ready[newNIC] {
		fe.completeMigration(p, inst, newNIC)
		return
	}
	fe.sendRegister(p, nl, inst.ip)
}

// completeMigration flips the primary, announces the new MAC via
// gratuitous ARP, and unregisters from the old NIC after the grace period.
func (fe *Frontend) completeMigration(p *sim.Proc, inst *InstancePort, newNIC uint16) {
	old := inst.primary
	inst.primary = fe.beLink(newNIC)
	inst.pendingPrimary = 0
	inst.curMAC = inst.primary.mac
	if inst.stack != nil {
		inst.stack.GratuitousARP()
	}
	if old != nil && old.nicID != newNIC {
		fe.h.Eng.After(fe.cfg.MigrationGrace, func() {
			fe.cmds.Push(func(p *sim.Proc) {
				var buf [15]byte
				if old.link.Send(p, msg{op: opUnregister, ip: inst.ip}.encode(buf[:])) {
					old.link.Flush(p)
					delete(inst.ready, old.nicID)
				}
			})
		})
	}
}

// UsesNIC reports whether the instance is attached to the NIC as primary,
// backup, or pending migration target — the "in use" check a topology-level
// NIC removal must clear first.
func (ip *InstancePort) UsesNIC(id uint16) bool {
	if ip.primary != nil && ip.primary.nicID == id {
		return true
	}
	if ip.backup != nil && ip.backup.nicID == id {
		return true
	}
	return ip.pendingPrimary == id
}

// RemoveInstance detaches an instance from the frontend (topology removal
// or cross-pod migration). The caller is responsible for quiescing the
// instance's traffic first; the TX buffer area is intentionally not
// returned to the pool, so a straggler TX completion frees into a dead
// area instead of corrupting a reused region (it shows up as an
// UnknownCompletion, which is the honest outcome).
func (fe *Frontend) RemoveInstance(ip netstack.IP) error {
	if _, ok := fe.insts[ip]; !ok {
		return fmt.Errorf("netengine: instance %v not attached", ip)
	}
	delete(fe.insts, ip)
	for i, o := range fe.instOrder {
		if o == ip {
			fe.instOrder = append(fe.instOrder[:i], fe.instOrder[i+1:]...)
			break
		}
	}
	return nil
}

// Stats exports the uniform engine counter block (link traffic,
// backpressure, buffer-area pressure across all instances' TX areas).
func (fe *Frontend) Stats() core.EngineStats {
	s := core.EngineStats{Name: fe.LoopName(), Links: fe.links.Stats()}
	for _, ip := range fe.instOrder {
		s.AccumulateArea(fe.insts[ip].area)
	}
	return s
}
