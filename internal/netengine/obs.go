package netengine

import (
	"fmt"

	"oasis/internal/obs"
)

// RegisterObs registers the frontend's counters, its instances' port
// counters, and its per-backend channel series (including rx_lat delivery
// histograms) under prefix/* (conventionally <host>/fe).
func (fe *Frontend) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/tx_forwarded", func() int64 { return fe.TxForwarded })
	r.Counter(prefix+"/rx_delivered", func() int64 { return fe.RxDelivered })
	r.Counter(prefix+"/tx_channel_full", func() int64 { return fe.TxChannelFull })
	r.Counter(prefix+"/unknown_completions", func() int64 { return fe.UnknownCompletions })
	r.Counter(prefix+"/failovers_applied", func() int64 { return fe.FailoversApplied })
	r.Counter(prefix+"/alloc_retries", func() int64 { return fe.AllocRetries })
	r.Counter(prefix+"/retry_exhausted", func() int64 { return fe.AllocRetryExhausted })
	fe.links.RegisterObs(r, prefix, func(peer uint32) string { return fmt.Sprintf("nic%d", peer) })
	for _, ip := range fe.instOrder {
		inst := fe.insts[ip]
		ipfx := fmt.Sprintf("%s/inst/%v", prefix, ip)
		r.Counter(ipfx+"/tx_packets", func() int64 { return inst.TxPackets })
		r.Counter(ipfx+"/rx_packets", func() int64 { return inst.RxPackets })
		r.Counter(ipfx+"/tx_drops_no_buffer", func() int64 { return inst.TxDropsNoBuffer })
		inst.area.RegisterObs(r, ipfx)
	}
}

// RegisterObs registers the backend's counters, RX buffer-area pressure, and
// its per-frontend channel series under prefix/* (conventionally
// <host>/be<nic>). It also hooks the backend to the registry's trace ring so
// link-state transitions leave events.
func (be *Backend) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/tx_posted", func() int64 { return be.TxPosted })
	r.Counter(prefix+"/rx_forwarded", func() int64 { return be.RxForwarded })
	r.Counter(prefix+"/rx_no_route", func() int64 { return be.RxNoRoute })
	r.Counter(prefix+"/inspected", func() int64 { return be.Inspected })
	r.Counter(prefix+"/link_down_events", func() int64 { return be.LinkDownEvents })
	r.Counter(prefix+"/mac_borrows", func() int64 { return be.MACBorrows })
	be.rxArea.RegisterObs(r, prefix)
	be.links.RegisterObs(r, prefix, func(peer uint32) string { return fmt.Sprintf("host%d", peer) })
	be.events = r.Events
	be.eventSrc = prefix
}

// RegisterObs registers the baseline local driver's counters and its
// instances' port counters under prefix/* (conventionally <host>/local).
func (d *LocalDriver) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/tx_forwarded", func() int64 { return d.TxForwarded })
	r.Counter(prefix+"/rx_delivered", func() int64 { return d.RxDelivered })
	d.rxArea.RegisterObs(r, prefix)
	for _, ip := range d.instOrder {
		lp := d.insts[ip]
		ipfx := fmt.Sprintf("%s/inst/%v", prefix, ip)
		r.Counter(ipfx+"/tx_drops_no_buffer", func() int64 { return lp.TxDropsNoBuffer })
		lp.area.RegisterObs(r, ipfx)
	}
}
