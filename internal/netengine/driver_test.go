package netengine

import (
	"bytes"
	"testing"
	"time"

	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/netstack"
	"oasis/internal/netsw"
	"oasis/internal/nic"
	"oasis/internal/sim"
)

// engineRig wires a minimal pod by hand: hostA (frontend + instance),
// hostB (backend + nic1), hostC (backend + nic2), a raw client on the
// switch, and a fake allocator endpoint (raw control link ends).
type engineRig struct {
	eng        *sim.Engine
	pool       *cxl.Pool
	sw         *netsw.Switch
	hA, hB, hC *host.Host
	fe         *Frontend
	be1, be2   *Backend
	nic1, nic2 *nic.NIC
	inst       *InstancePort
	stack      *netstack.Stack
	client     *rawClient
	// Fake allocator ends.
	ctlFE  *core.LinkEnd // talks to fe
	ctlBE1 *core.LinkEnd
	ctlBE2 *core.LinkEnd
}

type rawClient struct {
	stack *netstack.Stack
	port  *netsw.Port
}

func (c *rawClient) Transmit(p *sim.Proc, frame []byte) {
	var f netsw.Frame
	copy(f.Dst[:], frame[0:6])
	copy(f.Src[:], frame[6:12])
	f.Bytes = frame
	c.port.Send(&f)
}

func (c *rawClient) DeliverFrame(f *netsw.Frame) { c.stack.DeliverFrame(f.Bytes) }

var (
	instIP = netstack.IPv4(10, 0, 0, 10)
	cliIP  = netstack.IPv4(10, 0, 99, 1)
	mac1   = netsw.MAC{0x02, 0, 0, 0, 0, 1}
	mac2   = netsw.MAC{0x02, 0, 0, 0, 0, 2}
	macCli = netsw.MAC{0x02, 0, 0, 0, 0, 9}
)

func newEngineRig(t *testing.T) *engineRig {
	t.Helper()
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<30, cxl.DefaultParams())
	sw := netsw.New(eng, netsw.DefaultParams())
	cfg := DefaultConfig()

	r := &engineRig{eng: eng, pool: pool, sw: sw}
	r.hA = host.New(eng, 0, "hostA", pool, host.DefaultConfig())
	r.hB = host.New(eng, 1, "hostB", pool, host.DefaultConfig())
	r.hC = host.New(eng, 2, "hostC", pool, host.DefaultConfig())

	nicDir := map[uint16]netsw.MAC{1: mac1, 2: mac2}
	mkNIC := func(name string, mac netsw.MAC, on *host.Host) *nic.NIC {
		dev := nic.New(eng, name, mac, pool.AttachPort(name+"-dma"), netstack.FlowKey, nic.DefaultParams())
		dev.Connect(sw.AttachPort(name, dev))
		dev.SetSnooper(on.Cache)
		dev.Start()
		return dev
	}
	r.nic1 = mkNIC("nic1", mac1, r.hB)
	r.nic2 = mkNIC("nic2", mac2, r.hC)

	var err error
	r.be1, err = NewBackend(r.hB, 1, r.nic1, pool, nicDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.be2, err = NewBackend(r.hC, 2, r.nic2, pool, nicDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.fe = NewFrontend(r.hA, pool, cfg)
	for _, be := range []*Backend{r.be1, r.be2} {
		feEnd, beEnd, err := core.NewDuplexLink(pool, r.hA, be.Host(), cfg.Chan)
		if err != nil {
			t.Fatal(err)
		}
		r.fe.ConnectBackend(be.NICID(), be.NIC().MAC(), feEnd)
		be.ConnectFrontend(r.hA.ID, beEnd)
	}
	// Fake allocator links (the test drives the control plane directly).
	var feEnd *core.LinkEnd
	r.ctlFE, feEnd, err = core.NewDuplexLink(pool, r.hA, r.hA, cfg.Chan)
	if err != nil {
		t.Fatal(err)
	}
	r.fe.SetControlLink(feEnd)
	var be1End, be2End *core.LinkEnd
	r.ctlBE1, be1End, err = core.NewDuplexLink(pool, r.hB, r.hB, cfg.Chan)
	if err != nil {
		t.Fatal(err)
	}
	r.be1.SetControlLink(be1End)
	r.ctlBE2, be2End, err = core.NewDuplexLink(pool, r.hC, r.hC, cfg.Chan)
	if err != nil {
		t.Fatal(err)
	}
	r.be2.SetControlLink(be2End)

	r.inst, err = r.fe.AddInstance(instIP)
	if err != nil {
		t.Fatal(err)
	}
	r.stack = netstack.NewStack(eng, "inst", instIP, r.inst.CurrentMAC, r.inst, netstack.DefaultConfig())
	r.inst.AttachStack(r.stack)

	cli := &rawClient{}
	cli.port = sw.AttachPort("client", cli)
	cli.stack = netstack.NewStack(eng, "client", cliIP, func() netsw.MAC { return macCli }, cli, netstack.DefaultConfig())
	r.client = cli

	r.fe.Start()
	r.be1.Start()
	r.be2.Start()
	r.stack.Start()
	cli.stack.Start()
	return r
}

// startEcho runs the echo app on the rig's instance.
func (r *engineRig) startEcho(t *testing.T) {
	r.eng.Go("echo", func(p *sim.Proc) {
		conn, err := r.stack.ListenUDP(7)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			dg := conn.Recv(p)
			if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
				return
			}
		}
	})
}

func TestEngineEchoAndCounters(t *testing.T) {
	r := newEngineRig(t)
	r.inst.Assign(1, 0)
	r.startEcho(t)
	echoed := 0
	r.eng.Go("client", func(p *sim.Proc) {
		conn, _ := r.client.stack.ListenUDP(0)
		if !r.inst.WaitReady(p, 100*time.Millisecond) {
			t.Error("not ready")
			r.eng.Shutdown()
			return
		}
		p.Sleep(time.Millisecond)
		for i := 0; i < 30; i++ {
			conn.SendTo(p, instIP, 7, []byte("probe"))
			if dg, ok := conn.RecvTimeout(p, 10*time.Millisecond); ok && bytes.Equal(dg.Data, []byte("probe")) {
				echoed++
			}
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if echoed != 30 {
		t.Fatalf("echoed %d/30", echoed)
	}
	if r.fe.TxForwarded < 30 || r.fe.RxDelivered < 30 {
		t.Fatalf("fe counters: tx=%d rx=%d", r.fe.TxForwarded, r.fe.RxDelivered)
	}
	if r.be1.TxPosted < 30 || r.be1.RxForwarded < 30 {
		t.Fatalf("be counters: tx=%d rx=%d", r.be1.TxPosted, r.be1.RxForwarded)
	}
	if r.be2.TxPosted != 0 {
		t.Fatalf("idle backend posted %d", r.be2.TxPosted)
	}
}

func TestEngineMigrationCommand(t *testing.T) {
	r := newEngineRig(t)
	r.inst.Assign(1, 0)
	r.startEcho(t)
	var buf [15]byte
	migrated := false
	r.eng.Go("allocator", func(p *sim.Proc) {
		if !r.inst.WaitReady(p, 100*time.Millisecond) {
			t.Error("not ready")
			r.eng.Shutdown()
			return
		}
		r.ctlFE.Send(p, core.EncodeControl(buf[:], core.ControlMsg{
			Op: core.CtlMigrate, Kind: core.DeviceNIC, IP: instIP, Dev: 2,
		}))
		r.ctlFE.Flush(p)
		// Wait for the migration to complete (ack + flip).
		for i := 0; i < 1000 && r.inst.CurrentMAC() != mac2; i++ {
			p.Sleep(100 * time.Microsecond)
		}
		if r.inst.CurrentMAC() != mac2 {
			t.Error("instance MAC never flipped to the new NIC")
		}
		// The switch must have learned the new MAC from the GARP.
		p.Sleep(5 * time.Millisecond)
		if r.sw.LookupMAC(mac2) == nil {
			t.Error("GARP never reached the switch")
		}
		migrated = true
		r.eng.Shutdown()
	})
	r.eng.Run()
	if !migrated {
		t.Fatal("migration did not run")
	}
	if r.inst.primary.nicID != 2 {
		t.Fatalf("primary NIC = %d, want 2", r.inst.primary.nicID)
	}
}

func TestEngineFailoverCommand(t *testing.T) {
	r := newEngineRig(t)
	r.inst.Assign(1, 2) // nic2 pre-registered as backup (§3.3.3)
	r.startEcho(t)
	var buf [15]byte
	ok := false
	r.eng.Go("allocator", func(p *sim.Proc) {
		if !r.inst.WaitReady(p, 100*time.Millisecond) {
			t.Error("not ready")
			r.eng.Shutdown()
			return
		}
		// Kill nic1's port, command failover + MAC borrow.
		r.sw.Ports()[0].SetEnabled(false)
		r.ctlFE.Send(p, core.EncodeControl(buf[:], core.ControlMsg{
			Op: core.CtlFailover, Kind: core.DeviceNIC, Dev: 1, Aux: 2,
		}))
		r.ctlFE.Flush(p)
		r.ctlBE2.Send(p, core.EncodeControl(buf[:], core.ControlMsg{
			Op: core.CtlBorrowMAC, Kind: core.DeviceNIC, Dev: 1,
		}))
		r.ctlBE2.Flush(p)
		p.Sleep(5 * time.Millisecond)
		if r.inst.primary.nicID != 2 {
			t.Errorf("primary = %d after failover", r.inst.primary.nicID)
		}
		if r.inst.CurrentMAC() != mac1 {
			t.Error("instance MAC must stay the failed NIC's (borrowed)")
		}
		if r.be2.MACBorrows != 1 {
			t.Errorf("MAC borrows = %d", r.be2.MACBorrows)
		}
		// Traffic must flow via nic2 now.
		conn, _ := r.client.stack.ListenUDP(0)
		got := 0
		for i := 0; i < 10; i++ {
			conn.SendTo(p, instIP, 7, []byte("x"))
			if _, k := conn.RecvTimeout(p, 10*time.Millisecond); k {
				got++
			}
		}
		if got < 8 {
			t.Errorf("post-failover echoes %d/10", got)
		}
		ok = true
		r.eng.Shutdown()
	})
	r.eng.Run()
	if !ok {
		t.Fatal("failover scenario did not complete")
	}
	if r.fe.FailoversApplied != 1 {
		t.Fatalf("failovers applied = %d", r.fe.FailoversApplied)
	}
}

func TestEngineTelemetryAndLinkEvents(t *testing.T) {
	r := newEngineRig(t)
	r.inst.Assign(1, 0)
	gotTelemetry, gotLinkDown := false, false
	r.eng.Go("allocator", func(p *sim.Proc) {
		deadline := p.Now() + 400*time.Millisecond
		r.eng.At(150*time.Millisecond, func() { r.sw.Ports()[0].SetEnabled(false) })
		for p.Now() < deadline && !(gotTelemetry && gotLinkDown) {
			payload, ok := r.ctlBE1.Poll(p)
			if !ok {
				p.Sleep(time.Millisecond)
				continue
			}
			switch core.DecodeControl(payload).Op {
			case core.CtlTelemetry:
				gotTelemetry = true
			case core.CtlLinkDown:
				gotLinkDown = true
			}
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
	if !gotTelemetry {
		t.Error("no telemetry within 4 windows")
	}
	if !gotLinkDown {
		t.Error("no link-down report after port failure")
	}
}

func TestEngineUnregisterStopsDelivery(t *testing.T) {
	r := newEngineRig(t)
	r.inst.Assign(1, 0)
	r.startEcho(t)
	var buf [15]byte
	r.eng.Go("driver", func(p *sim.Proc) {
		r.inst.WaitReady(p, 100*time.Millisecond)
		conn, _ := r.client.stack.ListenUDP(0)
		conn.SendTo(p, instIP, 7, []byte("a"))
		if _, ok := conn.RecvTimeout(p, 10*time.Millisecond); !ok {
			t.Error("pre-unregister echo lost")
		}
		// Unregister the instance from nic1 directly (fe -> be message).
		r.fe.links.Get(1).End.Send(p, msg{op: opUnregister, ip: instIP}.encode(buf[:]))
		r.fe.links.Get(1).End.Flush(p)
		p.Sleep(2 * time.Millisecond)
		before := r.be1.RxNoRoute
		conn.SendTo(p, instIP, 7, []byte("b"))
		if _, ok := conn.RecvTimeout(p, 5*time.Millisecond); ok {
			t.Error("echo after unregister")
		}
		if r.be1.RxNoRoute <= before {
			t.Error("unroutable packet not counted")
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}

func TestLocalDriverEcho(t *testing.T) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<28, cxl.DefaultParams())
	sw := netsw.New(eng, netsw.DefaultParams())
	h := host.New(eng, 0, "h", pool, host.DefaultConfig())
	dev := nic.New(eng, "nic", mac1, pool.AttachPort("nic-dma"), netstack.FlowKey, nic.DefaultParams())
	dev.Connect(sw.AttachPort("nic", dev))
	dev.SetSnooper(h.Cache)
	dev.Start()
	ld, err := NewLocalDriver(h, dev, pool, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lp, err := ld.AddInstance(instIP)
	if err != nil {
		t.Fatal(err)
	}
	stack := netstack.NewStack(eng, "inst", instIP, lp.CurrentMAC, lp, netstack.DefaultConfig())
	lp.AttachStack(stack)
	stack.Start()
	ld.Start()
	cli := &rawClient{}
	cli.port = sw.AttachPort("client", cli)
	cli.stack = netstack.NewStack(eng, "client", cliIP, func() netsw.MAC { return macCli }, cli, netstack.DefaultConfig())
	cli.stack.Start()
	eng.Go("echo", func(p *sim.Proc) {
		conn, _ := stack.ListenUDP(7)
		for {
			dg := conn.Recv(p)
			conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data)
		}
	})
	echoed := 0
	eng.Go("client", func(p *sim.Proc) {
		conn, _ := cli.stack.ListenUDP(0)
		p.Sleep(time.Millisecond)
		for i := 0; i < 20; i++ {
			conn.SendTo(p, instIP, 7, []byte("local"))
			if _, ok := conn.RecvTimeout(p, 10*time.Millisecond); ok {
				echoed++
			}
		}
		eng.Shutdown()
	})
	eng.Run()
	if echoed != 20 {
		t.Fatalf("local driver echoed %d/20", echoed)
	}
	if ld.TxForwarded < 20 || ld.RxDelivered < 20 {
		t.Fatalf("local driver counters: %d/%d", ld.TxForwarded, ld.RxDelivered)
	}
}

func TestDuplicateInstanceRejected(t *testing.T) {
	r := newEngineRig(t)
	if _, err := r.fe.AddInstance(instIP); err == nil {
		t.Fatal("duplicate instance accepted")
	}
	r.eng.Shutdown()
	r.eng.Run()
}

func TestAllocRetryCircuitBreaker(t *testing.T) {
	// With no allocator answering, the frontend retries under backoff only
	// until the per-instance budget is spent, then fails fast with a typed
	// error. A late assignment heals the breaker.
	r := newEngineRig(t)
	r.fe.cfg.AllocRetryBudget = 3
	r.inst.RequestAllocation()
	var buf [15]byte
	r.eng.Go("allocator", func(p *sim.Proc) {
		// Budget 3 at 10/20/40 ms backoff: the breaker trips well within
		// half a second of allocator silence.
		p.Sleep(500 * time.Millisecond)
		if r.fe.AllocRetryExhausted != 1 {
			t.Errorf("breaker trips = %d, want 1", r.fe.AllocRetryExhausted)
		}
		if r.fe.AllocRetries != 3 {
			t.Errorf("retries = %d, want exactly the budget 3", r.fe.AllocRetries)
		}
		if err := r.inst.AllocError(); err != ErrAllocRetryExhausted {
			t.Errorf("AllocError = %v, want ErrAllocRetryExhausted", err)
		}
		// The allocator comes back and answers the original request after
		// all: the assignment still lands and clears the breaker.
		r.ctlFE.Send(p, core.EncodeControl(buf[:], core.ControlMsg{
			Op: core.CtlAssign, Kind: core.DeviceNIC, IP: instIP, Dev: 1,
		}))
		r.ctlFE.Flush(p)
		p.Sleep(50 * time.Millisecond)
		if err := r.inst.AllocError(); err != nil {
			t.Errorf("AllocError after late assign = %v, want nil", err)
		}
		if !r.inst.Ready() {
			t.Error("instance not ready after late assign")
		}
		r.eng.Shutdown()
	})
	r.eng.Run()
}
