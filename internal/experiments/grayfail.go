package experiments

import (
	"encoding/binary"
	"time"

	"oasis"
	"oasis/internal/faults"
	"oasis/internal/sim"
	"oasis/internal/ssd"
)

// Grayfail runs the gray-failure chaos campaign: a 2.2-second run in which
// no device ever goes down, yet all four degraded-mode fault kinds fire —
// a drive whose media slows 40x (ssd-slow), a NIC that silently drops half
// its frames (nic-lossy), a CXL port with added latency jitter
// (cxl-jitter), and a switch port that stalls in sub-debounce pulses
// (link-flaky). Hard-failure detectors are blind to all of them: the links
// stay up, leases keep renewing, no AER burst fires. The campaign is the
// acceptance gate for the health scorer — the peer-relative outlier
// detector over per-device telemetry (soft error counts for NICs, mean
// service latency for drives) — and checks:
//
//   - the scorer catches both gray devices and evacuates them proactively:
//     the slow drive's volumes re-bind onto the backup under a bumped
//     fencing epoch, the lossy NIC's instances migrate to a healthy peer
//     (at least one health evacuation of each kind);
//   - the hard-failure machinery stays silent: zero NIC failovers, zero
//     SSD failovers, zero AER failovers — gray devices are evacuated, not
//     failed, because they are still serving;
//   - no acked write is ever lost, and packet loss is confined to bounded
//     windows adjacent to fault injections;
//   - both gray devices end the run quarantined (no new placements), with
//     the evacuated instance answering on its new primary NIC.
//
// The fault timeline is absolute, so the run is byte-for-byte replayable:
// the report embeds the encoded faults.Plan and rerunning the experiment
// must reproduce the identical report. Like chaos, the pod runs with a
// compressed control plane (120 ms leases, 40 ms telemetry) so three
// detection windows fit inside each fault's dwell time.
func Grayfail(scale float64) *Report {
	_ = clampScale(scale) // validated for interface symmetry; timeline is fixed
	r := newReport("grayfail", "gray-failure campaign: four degraded-mode faults + health-scorer evacuations (2.2 s run)")
	return grayfailRun(r, chaosSerial)
}

// GrayfailPartitioned runs the identical campaign with the pod mounted on
// a one-partition sim.Group — the degenerate partitioned-execution
// configuration, which must reduce to the serial loop byte for byte. Its
// report body (Lines and Values) must equal Grayfail's exactly.
func GrayfailPartitioned(scale float64) *Report {
	_ = clampScale(scale)
	r := newReport("grayfail-par", "gray-failure campaign on a one-partition group (must match grayfail byte-for-byte)")
	return grayfailRun(r, chaosOnePartition)
}

// GrayfailPerHost runs the campaign on a per-host partitioned pod with the
// probe client on its own partition behind a switch RemotePort. The remote
// attachment adds real cable latency, so this report is NOT byte-comparable
// to grayfail — the acceptance is that every health-scorer invariant still
// holds, and that the per-host timeline is itself byte-identical across
// reruns and GOMAXPROCS settings (verify.sh sweeps it at 1/2/8).
func GrayfailPerHost(scale float64) *Report {
	_ = clampScale(scale)
	r := newReport("grayfail-perhost", "gray-failure campaign on a per-host partitioned pod (probe client on its own partition)")
	return grayfailRun(r, chaosPerHost)
}

func grayfailRun(r *Report, mode chaosMode) *Report {
	const (
		span        = 2200 * time.Millisecond
		writerStop  = span - 200*time.Millisecond
		proberStop  = span - 100*time.Millisecond
		lbaCount    = 16
		writeEvery  = 500 * time.Microsecond
		probeEvery  = time.Millisecond
		windowGap   = 100 * time.Millisecond // losses closer than this are one outage
		windowBound = 350 * time.Millisecond // max tolerated outage window
		faultSlack  = 500 * time.Millisecond // losses must sit this close after a fault
		stallBound  = 400 * time.Millisecond
	)

	ipA := oasis.IP(10, 0, 0, 30)
	ipC := oasis.IP(10, 0, 99, 3)

	cfg := oasis.DefaultConfig()
	cfg.Engine.IdleBackoff = 200 * time.Microsecond
	cfg.Allocator.LeaseTimeout = 120 * time.Millisecond
	cfg.Storage.TelemetryEvery = 40 * time.Millisecond
	cfg.Engine.TelemetryEvery = 40 * time.Millisecond
	cfg.Allocator.Health = true // the campaign exists to exercise the scorer
	cfg.RaftReplicas = 3
	var group *sim.Group
	var pod *oasis.Pod
	switch mode {
	case chaosOnePartition:
		group = sim.NewGroup()
		pod = oasis.NewPodOnEngine(group.AddPartition(), cfg)
	case chaosPerHost:
		pod = oasis.NewPerHostPod(cfg)
	default:
		pod = oasis.NewPod(cfg)
	}
	host0 := pod.AddHost() // allocator + raft replica 0
	host1 := pod.AddHost() // nic1: instA's primary, the lossy suspect
	host2 := pod.AddHost() // nic2 (healthy peer, evacuation target) + ssd1 backend
	host3 := pod.AddHost() // backup NIC + backup SSD (the drive evacuation target)
	host4 := pod.AddHost() // instance + volume owner, the jitter target
	_ = host0
	pod.AddNIC(host1, false)       // nic1
	pod.AddNIC(host2, false)       // nic2
	pod.AddNIC(host3, true)        // nic3: pod-wide backup
	pod.AddSSD(host2, 1<<12)       // ssd1: volume primary, the slow suspect
	pod.AddBackupSSD(host3, 1<<12) // ssd2: mirror / evacuation target
	instA := pod.AddInstance(host4, ipA)
	client := pod.AddClient(ipC)
	vol := pod.AddVolume(instA, 1, 64)
	pod.Start()
	instA.RequestAllocation()

	plan := faults.Plan{
		Name: "grayfail-campaign",
		Seed: 13,
		Events: []faults.Event{
			{At: 300 * time.Millisecond, Kind: faults.SSDSlow, Target: "ssd1", Heal: 500 * time.Millisecond, LatMult: 40},
			{At: 900 * time.Millisecond, Kind: faults.NICLossy, Target: "nic1", Heal: 500 * time.Millisecond, Drop: 0.5},
			{At: 1550 * time.Millisecond, Kind: faults.CXLJitter, Target: "host4", Heal: 250 * time.Millisecond, Jitter: 2 * time.Microsecond},
			{At: 1800 * time.Millisecond, Kind: faults.LinkFlaky, Target: "nic2", Heal: 250 * time.Millisecond, Period: 40 * time.Millisecond, Stall: 3 * time.Millisecond},
		},
	}
	if err := pod.RunFaultPlan(plan); err != nil {
		r.addf("SCHEDULE ERROR: %v", err)
		return r
	}

	// --- Writer: round-robin over lbaCount LBAs with sequence-stamped
	// payloads, exactly the chaos campaign's acked-write ledger. The drive
	// evacuation re-binds the volume mid-stream; the ledger proves the
	// re-bind lost nothing.
	fill := func(blk []byte, seq uint64, lba uint64) {
		binary.BigEndian.PutUint64(blk, seq)
		pat := byte(seq) ^ byte(lba)
		for i := 8; i < len(blk); i++ {
			blk[i] = pat
		}
	}
	var (
		acked       [lbaCount]uint64
		failedAfter [lbaCount][]uint64
		ackedWrites int
		writeErrs   int
		maxStall    oasis.Duration
		writerDone  bool
		mismatches  int
	)
	pod.Go("gray-writer", func(p *oasis.Proc) {
		if !vol.WaitReady(p, 500*time.Millisecond) {
			return
		}
		blk := make([]byte, ssd.BlockSize)
		seq := uint64(0)
		last := p.Now()
		for p.Now() < writerStop {
			seq++
			lba := seq % lbaCount
			fill(blk, seq, lba)
			if err := vol.Write(p, lba, blk); err == nil {
				acked[lba] = seq
				failedAfter[lba] = failedAfter[lba][:0]
				ackedWrites++
			} else {
				writeErrs++
				failedAfter[lba] = append(failedAfter[lba], seq)
			}
			if gap := p.Now() - last; gap > maxStall {
				maxStall = gap
			}
			last = p.Now()
			p.Sleep(writeEvery)
		}
		for lba := uint64(0); lba < lbaCount; lba++ {
			want := acked[lba]
			if want == 0 {
				mismatches++
				continue
			}
			got, err := vol.Read(p, lba, 1)
			if err != nil {
				mismatches++
				continue
			}
			seq := binary.BigEndian.Uint64(got)
			ok := seq == want
			for _, f := range failedAfter[lba] {
				ok = ok || seq == f
			}
			pat := byte(seq) ^ byte(lba)
			for i := 8; ok && i < len(got); i++ {
				ok = got[i] == pat
			}
			if !ok {
				mismatches++
			}
		}
		writerDone = true
	})

	// --- Probe stream through instA: the traffic that makes nic1's frame
	// drops visible in its error telemetry, and the witness that service
	// continues across the NIC evacuation.
	pod.Go("gray-echo", func(p *oasis.Proc) {
		conn, err := instA.Stack.ListenUDP(7)
		if err != nil {
			return
		}
		for {
			dg := conn.Recv(p)
			if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
				return
			}
		}
	})
	var (
		sent, lost int
		lossTimes  []oasis.Duration
	)
	client.Go("gray-prober", func(p *oasis.Proc) {
		conn, err := client.Stack.ListenUDP(0)
		if err != nil {
			return
		}
		p.Sleep(5 * time.Millisecond) // registration warmup
		for p.Now() < proberStop {
			sendAt := p.Now()
			if conn.SendTo(p, ipA, 7, []byte("gray-probe-chaos!")) != nil {
				continue
			}
			sent++
			if _, ok := conn.RecvTimeout(p, probeEvery); !ok {
				lost++
				lossTimes = append(lossTimes, sendAt)
			} else if wait := sendAt + probeEvery - p.Now(); wait > 0 {
				p.Sleep(wait)
			}
		}
	})

	if group != nil {
		group.RunUntil(span + time.Second)
		group.Shutdown()
	} else {
		pod.Run(span + time.Second)
		pod.Shutdown()
	}

	// Cluster probe losses into outage windows.
	type window struct{ start, end oasis.Duration }
	var windows []window
	for _, t := range lossTimes {
		if n := len(windows); n > 0 && t-windows[n-1].end < windowGap {
			windows[n-1].end = t
		} else {
			windows = append(windows, window{start: t, end: t})
		}
	}
	var maxWindow oasis.Duration
	for _, w := range windows {
		if d := w.end - w.start + probeEvery; d > maxWindow {
			maxWindow = d
		}
	}

	in := pod.Injector()
	if maxWindow > 0 {
		in.RecordRecovery(faults.NICLossy, maxWindow)
	}
	if maxStall > 0 {
		in.RecordRecovery(faults.SSDSlow, maxStall)
	}

	alloc := pod.Alloc
	sfe := host4.SFE
	primary, _ := alloc.PrimaryOf(ipA)

	// --- Invariants.
	var violations []string
	check := func(ok bool, what string) {
		if !ok {
			violations = append(violations, what)
		}
	}
	check(writerDone, "writer did not finish its read-back pass")
	check(mismatches == 0, "read-back found blocks not matching any acked/failed write")
	check(!vol.Lost(), "volume was declared lost by a gray (non-fatal) fault")
	check(in.Errors() == 0, "fault handlers reported errors")
	check(in.Active() == 0, "faults left unhealed at end of campaign")
	check(alloc.HealthSSDEvacs >= 1, "health scorer never evacuated the slow drive")
	check(alloc.HealthNICEvacs >= 1, "health scorer never evacuated the lossy NIC")
	check(alloc.SSDQuarantined(1), "slow drive not quarantined at end of campaign")
	check(alloc.NICQuarantined(1), "lossy NIC not quarantined at end of campaign")
	check(alloc.Failovers == 0, "a gray fault tripped a hard NIC failover")
	check(alloc.SSDFailovers == 0, "a gray fault tripped a hard SSD failover")
	check(alloc.AERFailovers == 0, "a gray fault tripped an AER failover")
	check(primary == 2, "evacuated instance does not answer on the healthy peer NIC")
	check(sfe.Rebinds >= 1, "drive evacuation never re-bound the volume")
	check(maxWindow <= windowBound, "a packet-loss window exceeded the bound")
	for _, w := range windows {
		near := false
		for _, ev := range plan.Events {
			if w.start >= ev.At && w.start <= ev.At+faultSlack {
				near = true
			}
		}
		check(near, "a packet-loss window started away from any fault injection")
	}
	check(maxStall <= stallBound, "a guest write stalled past the bound")

	// --- Report.
	r.addf("fault plan (replayable — feed back through faults.ParsePlan):")
	for _, line := range splitLines(plan.Encode()) {
		r.addf("  %s", line)
	}
	r.addf("injection log:")
	for _, line := range in.Log() {
		r.addf("  %s", line)
	}
	r.addf("writer: %d acked, %d errored, max inter-write stall %v", ackedWrites, writeErrs, maxStall)
	r.addf("probes: %d sent, %d lost, %d outage window(s), max %v", sent, lost, len(windows), maxWindow)
	for _, w := range windows {
		r.addf("  outage [%v, %v]", w.start, w.end)
	}
	r.addf("health: nic_evacs=%d ssd_evacs=%d nic1_quarantined=%v ssd1_quarantined=%v primary(instA)=nic%d",
		alloc.HealthNICEvacs, alloc.HealthSSDEvacs, alloc.NICQuarantined(1), alloc.SSDQuarantined(1), primary)
	r.addf("hard failovers (must all be zero): nic=%d ssd=%d aer=%d",
		alloc.Failovers, alloc.SSDFailovers, alloc.AERFailovers)
	r.addf("storage: rebinds=%d stale_rejected=%d mirror_writes=%d volumes_lost=%d",
		sfe.Rebinds, sfe.StaleRejected, sfe.MirrorWrites, sfe.VolumesLost)
	for _, k := range faults.Kinds() {
		if h := in.Recovery(k); h.Count() > 0 {
			r.addf("recovery[%v]: %s", k, h.Summary())
		}
	}
	if len(violations) == 0 {
		r.addf("invariants: OK (gray devices evacuated, hard failovers silent, no acked write lost)")
	} else {
		r.addf("invariants: VIOLATED (%d)", len(violations))
		for _, v := range violations {
			r.addf("  - %s", v)
		}
	}
	r.Values["violations"] = float64(len(violations))
	r.Values["sent"] = float64(sent)
	r.Values["lost"] = float64(lost)
	r.Values["windows"] = float64(len(windows))
	r.Values["outage_max_ms"] = float64(maxWindow) / 1e6
	r.Values["max_stall_ms"] = float64(maxStall) / 1e6
	r.Values["acked_writes"] = float64(ackedWrites)
	r.Values["write_errors"] = float64(writeErrs)
	r.Values["health_nic_evacs"] = float64(alloc.HealthNICEvacs)
	r.Values["health_ssd_evacs"] = float64(alloc.HealthSSDEvacs)
	r.Values["nic_failovers"] = float64(alloc.Failovers)
	r.Values["ssd_failovers"] = float64(alloc.SSDFailovers)
	r.Values["rebinds"] = float64(sfe.Rebinds)
	r.Values["primary_final"] = float64(primary)
	return r
}
