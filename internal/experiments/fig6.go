package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"oasis/internal/cache"
	"oasis/internal/cxl"
	"oasis/internal/metrics"
	"oasis/internal/msgchan"
	"oasis/internal/sim"
)

// fig6Point is one (design, offered load) measurement.
type fig6Point struct {
	design    msgchan.Design
	offered   float64 // MOp/s; 0 = saturate
	achieved  float64 // MOp/s
	medianLat time.Duration
}

// runMsgChannel drives one channel configuration for the window. offered=0
// saturates the sender (the throughput-ceiling measurement); otherwise the
// sender paces open-loop at the offered rate and flushes partial lines
// whenever it goes idle (§3.2.2).
func runMsgChannel(design msgchan.Design, offeredMops float64, window sim.Duration) fig6Point {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<24, cxl.DefaultParams())
	cfg := msgchan.DefaultConfig()
	cfg.Design = design
	region, err := pool.Alloc(msgchan.RegionBytes(cfg))
	if err != nil {
		panic(err)
	}
	ch, err := msgchan.New(region, cfg)
	if err != nil {
		panic(err)
	}
	tx := msgchan.NewSender(ch, pool.AttachPort("sender"), cache.DefaultParams())
	rx := msgchan.NewReceiver(ch, cache.New(eng, pool.AttachPort("receiver"), cache.DefaultParams()))

	procCost := 10 * time.Nanosecond
	var hist metrics.Histogram
	eng.Go("tx", func(p *sim.Proc) {
		payload := make([]byte, 8)
		if offeredMops <= 0 {
			for p.Now() < window {
				binary.LittleEndian.PutUint64(payload, uint64(p.Now()))
				if !tx.TrySend(p, payload) {
					p.Sleep(500 * time.Nanosecond)
				}
			}
			tx.Flush(p)
			return
		}
		interval := sim.Duration(float64(time.Second) / (offeredMops * 1e6))
		next := sim.Duration(0)
		for p.Now() < window {
			if wait := next - p.Now(); wait > 0 {
				tx.Flush(p)
				p.Sleep(wait)
			}
			binary.LittleEndian.PutUint64(payload, uint64(p.Now()))
			if !tx.TrySend(p, payload) {
				p.Sleep(interval)
				continue
			}
			next += interval
			if next < p.Now() {
				next = p.Now()
			}
		}
		tx.Flush(p)
	})
	eng.Go("rx", func(p *sim.Proc) {
		for p.Now() < window {
			msg, ok := rx.Poll(p)
			if !ok {
				continue
			}
			sent := sim.Duration(binary.LittleEndian.Uint64(msg[:8]))
			hist.Record(p.Now() - sent)
			p.Sleep(procCost)
		}
	})
	eng.RunUntil(window)
	eng.Shutdown()
	return fig6Point{
		design:    design,
		offered:   offeredMops,
		achieved:  float64(rx.Received) / window.Seconds() / 1e6,
		medianLat: hist.Percentile(50),
	}
}

// Fig6 reproduces Figure 6: one-way message throughput and median latency
// for the four channel designs.
func Fig6(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("fig6", "Message channel designs: throughput & median latency (one-way, 16 B)")
	window := time.Duration(float64(2*time.Millisecond) * scale)
	if window < 500*time.Microsecond {
		window = 500 * time.Microsecond
	}
	designs := []msgchan.Design{
		msgchan.DesignBypassCache,
		msgchan.DesignNaivePrefetch,
		msgchan.DesignInvalidateConsumed,
		msgchan.DesignInvalidatePrefetched,
	}
	loads := []float64{1, 2, 4, 8, 14, 20, 30, 50}
	r.addf("%-24s %10s %10s %12s", "design", "offered", "achieved", "median lat")
	// Stage 1: saturation runs decide each design's load grid; stage 2 fans
	// the surviving (design, load) points out. Assembly stays in grid order.
	sats := parRun(len(designs), func(i int) fig6Point {
		return runMsgChannel(designs[i], 0, window)
	})
	type loadJob struct {
		design msgchan.Design
		load   float64
	}
	var jobs []loadJob
	for i, d := range designs {
		for _, load := range loads {
			if load > sats[i].achieved*1.05 {
				continue // beyond this design's ceiling
			}
			jobs = append(jobs, loadJob{d, load})
		}
	}
	points := parRun(len(jobs), func(i int) fig6Point {
		return runMsgChannel(jobs[i].design, jobs[i].load, window)
	})
	next := 0
	for i, d := range designs {
		sat := sats[i]
		r.Values[fmt.Sprintf("sat_%d", int(d))] = sat.achieved
		for ; next < len(jobs) && jobs[next].design == d; next++ {
			load, pt := jobs[next].load, points[next]
			r.addf("%-24s %7.1f M/s %7.1f M/s %12v", d, pt.offered, pt.achieved, pt.medianLat)
			if d == msgchan.DesignInvalidateConsumed && load == 14 {
				r.Values["lat14_invConsumed_us"] = float64(pt.medianLat) / 1e3
			}
			if d == msgchan.DesignInvalidatePrefetched && load == 14 {
				r.Values["lat14_invPrefetched_us"] = float64(pt.medianLat) / 1e3
			}
		}
		r.addf("%-24s %10s %7.1f M/s %12s", d, "saturated", sat.achieved, "-")
	}
	r.addf("paper: bypass 3.0 MOp/s; naive 8.6; +invalidate-consumed 87; target 14 MOp/s")
	r.addf("paper: at 14 MOp/s, ③ suffers a ~1.2 µs stale-prefetch hump; ④ holds ~0.6 µs")
	return r
}
