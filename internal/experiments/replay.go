package experiments

import (
	"time"

	"oasis"
	"oasis/internal/metrics"
	"oasis/internal/netstack"
	"oasis/internal/trace"
)

// Fig12 reproduces Figure 12: replay the rack-A host-1/host-2 inbound
// traces against two hosts, comparing each-host-has-its-own-NIC against
// both sharing host 1's NIC. Both setups run the full Oasis datapath so the
// comparison isolates multiplexing interference (§5.2).
func Fig12(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("fig12", "Trace replay: two hosts with own NICs vs. sharing one NIC")
	span := time.Duration(float64(400*time.Millisecond) * scale)
	if span < 50*time.Millisecond {
		span = 50 * time.Millisecond
	}
	traces := trace.RackA(span)[:2]

	baseH1, baseH2 := replayRun(traces, false)
	muxH1, muxH2 := replayRun(traces, true)

	r.addf("%-26s %10s %10s %10s", "setup", "p50", "p99", "count")
	rows := []struct {
		name string
		h    *metrics.Histogram
	}{
		{"own NIC, host 1", baseH1},
		{"own NIC, host 2", baseH2},
		{"multiplexed, host 1", muxH1},
		{"multiplexed, host 2", muxH2},
	}
	for _, row := range rows {
		r.addf("%-26s %10v %10v %10d", row.name, row.h.Percentile(50), row.h.Percentile(99), row.h.Count())
	}
	r.Values["base_h1_p99_us"] = float64(baseH1.Percentile(99)) / 1e3
	r.Values["mux_h1_p99_us"] = float64(muxH1.Percentile(99)) / 1e3
	r.Values["base_h2_p99_us"] = float64(baseH2.Percentile(99)) / 1e3
	r.Values["mux_h2_p99_us"] = float64(muxH2.Percentile(99)) / 1e3

	// Utilization accounting: the replayed traffic is identical, so the
	// aggregate P99.99 utilization doubles when one NIC serves what two
	// hosts' NICs served (the paper's 18 % -> 37 %).
	bucket := 10 * time.Microsecond
	agg := trace.Merge(100e9, traces...)
	aggOne := agg.UtilizationAt(99.99, bucket) // one shared 100 Gbit NIC
	aggTwo := aggOne / 2                       // same traffic over two NICs
	r.Values["util_own_nics"] = aggTwo
	r.Values["util_multiplexed"] = aggOne
	r.addf("aggregated P99.99 NIC utilization: own NICs %.0f%%  ->  multiplexed %.0f%%",
		aggTwo*100, aggOne*100)
	r.addf("paper: P99 unchanged for host 1, +1 µs for host 2; utilization 18%% -> 37%%")
	return r
}

// replayRun replays the traces as UDP echo traffic to two instances. With
// multiplex, both instances are served by the NIC on host 1's serving
// host; otherwise each gets its own NIC.
func replayRun(traces []*trace.PacketTrace, multiplex bool) (*metrics.Histogram, *metrics.Histogram) {
	cfg := oasis.DefaultConfig()
	cfg.NoAllocator = true
	pod := oasis.NewPod(cfg)
	hostA := pod.AddHost() // runs instance 1
	hostB := pod.AddHost() // runs instance 2
	nic1 := pod.AddNIC(hostA, false)
	nic2 := pod.AddNIC(hostB, false)
	inst1 := pod.AddInstance(hostA, oasis.IP(10, 0, 0, 1))
	inst2 := pod.AddInstance(hostB, oasis.IP(10, 0, 0, 2))
	client1 := pod.AddClient(oasis.IP(10, 0, 99, 1))
	client2 := pod.AddClient(oasis.IP(10, 0, 99, 2))
	pod.Start()
	if multiplex {
		inst1.Assign(nic1.ID, 0)
		inst2.Assign(nic1.ID, 0)
		_ = nic2
	} else {
		inst1.Assign(nic1.ID, 0)
		inst2.Assign(nic2.ID, 0)
	}
	for _, inst := range []*oasis.Instance{inst1, inst2} {
		inst := inst
		pod.Go("echo", func(p *oasis.Proc) {
			conn, err := inst.Stack.ListenUDP(7)
			if err != nil {
				return
			}
			for {
				dg := conn.Recv(p)
				if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
					return
				}
			}
		})
	}
	h1 := &metrics.Histogram{}
	h2 := &metrics.Histogram{}
	running := 2
	replay := func(cl *oasis.Client, tr *trace.PacketTrace, dst netstack.IP, hist *metrics.Histogram) {
		pod.Go("replay", func(p *oasis.Proc) {
			defer func() {
				running--
				if running == 0 {
					pod.Shutdown()
				}
			}()
			conn, err := cl.Stack.ListenUDP(0)
			if err != nil {
				return
			}
			// Track in-flight sends: a drain process records RTTs from
			// payload-embedded ids (open loop, as a trace replay must be).
			sendTimes := make(map[uint32]oasis.Duration)
			pod.Go("replay-drain", func(p *oasis.Proc) {
				for {
					dg := conn.Recv(p)
					if len(dg.Data) < 4 {
						continue
					}
					id := uint32(dg.Data[0]) | uint32(dg.Data[1])<<8 | uint32(dg.Data[2])<<16 | uint32(dg.Data[3])<<24
					if t0, ok := sendTimes[id]; ok {
						hist.Record(p.Now() - t0)
						delete(sendTimes, id)
					}
				}
			})
			p.Sleep(2 * time.Millisecond)
			start := p.Now()
			var id uint32
			for _, ev := range tr.Events {
				at := start + ev.At
				if wait := at - p.Now(); wait > 0 {
					p.Sleep(wait)
				}
				size := ev.Size - netstack.EthHeaderLen - netstack.IPv4HeaderLen - netstack.UDPHeaderLen
				if size < 4 {
					size = 4
				}
				buf := make([]byte, size)
				id++
				buf[0], buf[1], buf[2], buf[3] = byte(id), byte(id>>8), byte(id>>16), byte(id>>24)
				sendTimes[id] = p.Now()
				if conn.SendTo(p, dst, 7, buf) != nil {
					return
				}
			}
			// Let stragglers drain.
			p.Sleep(5 * time.Millisecond)
		})
	}
	replay(client1, traces[0], inst1.IPAddr(), h1)
	replay(client2, traces[1], inst2.IPAddr(), h2)
	pod.Run(10 * time.Minute)
	return h1, h2
}
