package experiments

import (
	"fmt"
	"time"

	"oasis"
	"oasis/internal/metrics"
)

// rrPoint measures one app × mode × concurrency cell.
func rrPoint(mode Mode, app appModel, conc int, window time.Duration) (*metrics.Histogram, int) {
	e := buildNetPod(mode)
	e.startRRServer(80, app)
	var hist metrics.Histogram
	n := e.runRRClients(80, app, conc, window/4, window, &hist)
	return &hist, n
}

// runRRComparison produces the baseline-vs-Oasis latency table for one set
// of applications (Fig. 8 and Fig. 9 share this harness).
func runRRComparison(r *Report, apps []appModel, scale float64) {
	window := time.Duration(float64(12*time.Millisecond) * scale)
	if window < 3*time.Millisecond {
		window = 3 * time.Millisecond
	}
	concs := []int{1, 6, 16}
	r.addf("%-12s %5s %10s | %9s %9s %9s | %9s %9s %9s | %8s",
		"app", "conc", "req/s", "base p50", "base p90", "base p99",
		"oasis p50", "oasis p90", "oasis p99", "Δp50")
	// Every (app, conc, mode) cell is an independent pod run; fan them all
	// out and assemble the table serially in grid order.
	type rrCell struct {
		hist *metrics.Histogram
		n    int
	}
	cells := parRun(len(apps)*len(concs)*2, func(i int) rrCell {
		app := apps[i/(len(concs)*2)]
		conc := concs[(i/2)%len(concs)]
		mode := ModeBaseline
		if i%2 == 1 {
			mode = ModeOasis
		}
		h, n := rrPoint(mode, app, conc, window)
		return rrCell{h, n}
	})
	for ai, app := range apps {
		for ci, conc := range concs {
			cell := (ai*len(concs) + ci) * 2
			base, nb := cells[cell].hist, cells[cell].n
			oas, no := cells[cell+1].hist, cells[cell+1].n
			if nb == 0 || no == 0 {
				r.addf("%-12s %5d  (no completed requests)", app.Name, conc)
				continue
			}
			rps := float64(no) / window.Seconds()
			d50 := oas.Percentile(50) - base.Percentile(50)
			r.addf("%-12s %5d %10.0f | %9v %9v %9v | %9v %9v %9v | %8v",
				app.Name, conc, rps,
				base.Percentile(50), base.Percentile(90), base.Percentile(99),
				oas.Percentile(50), oas.Percentile(90), oas.Percentile(99), d50)
			key := fmt.Sprintf("%s_c%d", app.Name, conc)
			r.Values[key+"_base_p50_us"] = float64(base.Percentile(50)) / 1e3
			r.Values[key+"_oasis_p50_us"] = float64(oas.Percentile(50)) / 1e3
			r.Values[key+"_delta_p50_us"] = float64(d50) / 1e3
			r.Values[key+"_delta_p99_us"] = float64(oas.Percentile(99)-base.Percentile(99)) / 1e3
		}
	}
}

// Fig8 reproduces Figure 8: Oasis's overhead on four web applications.
func Fig8(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("fig8", "Oasis network engine overhead on four web applications (TCP, closed-loop)")
	runRRComparison(r, webApps(), scale)
	r.addf("paper: Oasis adds a consistent 4-7 µs at P50/P90/P99 under low and moderate load")
	return r
}

// Fig9 reproduces Figure 9: Oasis's overhead on memcached.
func Fig9(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("fig9", "Oasis network engine overhead on memcached")
	runRRComparison(r, []appModel{memcachedApp()}, scale)
	r.addf("paper: latency overhead consistently ~4-7 µs at all percentiles")
	return r
}

// udpEchoPoint measures one UDP echo cell.
func udpEchoPoint(mode Mode, payload int, rate float64, window time.Duration) *metrics.Histogram {
	e := buildNetPod(mode)
	e.startUDPEcho(7)
	var hist metrics.Histogram
	e.udpEchoLoad(payload, rate, window/4, window, &hist)
	return &hist
}

// Fig10 reproduces Figure 10: UDP echo RTT for 75 B and 1500 B payloads at
// increasing load, baseline vs Oasis.
func Fig10(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("fig10", "UDP echo overhead vs. packet size and load")
	window := time.Duration(float64(15*time.Millisecond) * scale)
	if window < 4*time.Millisecond {
		window = 4 * time.Millisecond
	}
	sizes := []int{75, 1500}
	rates := []float64{5e3, 20e3, 50e3}
	r.addf("%-6s %9s | %9s %9s %9s | %9s %9s %9s | %8s",
		"size", "rate", "base p50", "base p90", "base p99",
		"oasis p50", "oasis p90", "oasis p99", "Δp50")
	echoes := parRun(len(sizes)*len(rates)*2, func(i int) *metrics.Histogram {
		size := sizes[i/(len(rates)*2)]
		rate := rates[(i/2)%len(rates)]
		mode := ModeBaseline
		if i%2 == 1 {
			mode = ModeOasis
		}
		return udpEchoPoint(mode, udpPayload(size), rate, window)
	})
	for si, size := range sizes {
		for ri, rate := range rates {
			cell := (si*len(rates) + ri) * 2
			base, oas := echoes[cell], echoes[cell+1]
			if base.Count() == 0 || oas.Count() == 0 {
				continue
			}
			d50 := oas.Percentile(50) - base.Percentile(50)
			r.addf("%-6d %7.0f/s | %9v %9v %9v | %9v %9v %9v | %8v",
				size, rate,
				base.Percentile(50), base.Percentile(90), base.Percentile(99),
				oas.Percentile(50), oas.Percentile(90), oas.Percentile(99), d50)
			key := fmt.Sprintf("s%d_r%.0f", size, rate)
			r.Values[key+"_delta_p50_us"] = float64(d50) / 1e3
		}
	}
	r.addf("paper: 4-7 µs added RTT, largely independent of packet size")
	return r
}

// Fig11 reproduces Figure 11: the overhead breakdown across baseline,
// baseline with I/O buffers in CXL, and full Oasis.
func Fig11(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("fig11", "Overhead breakdown: baseline / +CXL buffers / Oasis (UDP echo)")
	window := time.Duration(float64(15*time.Millisecond) * scale)
	if window < 4*time.Millisecond {
		window = 4 * time.Millisecond
	}
	modes := []Mode{ModeBaseline, ModeBaselineCXLBufs, ModeOasis}
	sizes := []int{75, 1500}
	rate := 20e3
	r.addf("%-22s %6s | %9s %9s %9s", "config", "size", "p50", "p90", "p99")
	var p50s [3]time.Duration
	hists := parRun(len(sizes)*len(modes), func(i int) *metrics.Histogram {
		return udpEchoPoint(modes[i%len(modes)], udpPayload(sizes[i/len(modes)]), rate, window)
	})
	for si, size := range sizes {
		for i, mode := range modes {
			h := hists[si*len(modes)+i]
			if h.Count() == 0 {
				continue
			}
			r.addf("%-22s %6d | %9v %9v %9v", mode, size,
				h.Percentile(50), h.Percentile(90), h.Percentile(99))
			if size == 1500 {
				p50s[i] = h.Percentile(50)
			}
			key := fmt.Sprintf("%s_s%d", mode, size)
			r.Values[key+"_p50_us"] = float64(h.Percentile(50)) / 1e3
		}
	}
	r.Values["cxlbuf_minus_base_us"] = float64(p50s[1]-p50s[0]) / 1e3
	r.Values["oasis_minus_cxlbuf_us"] = float64(p50s[2]-p50s[1]) / 1e3
	r.addf("paper: I/O buffers in CXL add almost nothing; cross-host message passing")
	r.addf("       accounts for most of Oasis's added latency")
	return r
}

// Table3 reproduces Table 3: CXL link bandwidth under idle and busy loads,
// broken down into payload vs message-channel traffic.
func Table3(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("tab3", "CXL link bandwidth usage (payload vs message traffic)")
	window := time.Duration(float64(20*time.Millisecond) * scale)
	if window < 5*time.Millisecond {
		window = 5 * time.Millisecond
	}
	type row struct {
		name    string
		payload int
		rate    float64
	}
	rows := []row{
		{"Idle", 0, 0},
		{"Busy (75 B)", 75, 1.2e6},
		{"Busy (1500 B)", 1500, 1.2e6},
	}
	r.addf("%-14s %14s %14s %14s", "load", "payload GB/s", "message GB/s", "total GB/s")
	for _, row := range rows {
		var e *netPod
		if row.rate > 0 {
			e = buildNetPod(ModeOasis)
		} else {
			// Idle row: disable the idle-poll backoff so the busy-polling
			// CXL traffic is measured faithfully (§3.2.2, Table 3).
			e = buildNetPodCfg(ModeOasis, func(cfg *oasis.Config) {
				cfg.Engine.IdleBackoff = 0
			})
		}
		e.startUDPEcho(7)
		// Snapshot the port meters when the measurement window opens so
		// warmup traffic is excluded.
		snaps := make(map[*metrics.Meter]map[string]int64)
		snapshotAll := func() {
			for _, port := range e.pod.Pool.Ports() {
				for _, meter := range []*metrics.Meter{port.ReadMeter(), port.WriteMeter()} {
					snaps[meter] = meter.Snapshot()
				}
			}
		}
		achieved := 0
		if row.rate > 0 {
			e.pod.Eng.At(2*time.Millisecond, snapshotAll) // udpStreamLoad warms 2 ms
			_, achieved = e.udpStreamLoad(udpPayload(row.payload), row.rate, window)
		} else {
			snapshotAll()
			e.pod.Eng.At(window, func() { e.pod.Shutdown() })
			e.pod.Run(window + time.Millisecond)
		}
		var payload, message float64
		for _, port := range e.pod.Pool.Ports() {
			for _, meter := range []*metrics.Meter{port.ReadMeter(), port.WriteMeter()} {
				d := meter.Diff(snaps[meter])
				payload += float64(d["payload"])
				message += float64(d["message"])
			}
		}
		elapsed := window.Seconds()
		pGBs := payload / elapsed / 1e9
		mGBs := message / elapsed / 1e9
		if row.rate > 0 {
			r.addf("%-14s %14.2f %14.2f %14.2f   (%.2f M echoes/s)",
				row.name, pGBs, mGBs, pGBs+mGBs, float64(achieved)/elapsed/1e6)
		} else {
			r.addf("%-14s %14.2f %14.2f %14.2f", row.name, pGBs, mGBs, pGBs+mGBs)
		}
		key := row.name
		r.Values[key+"_payload"] = pGBs
		r.Values[key+"_message"] = mGBs
	}
	r.addf("paper: idle 0.0 + 0.2; busy 75 B: 0.7 + 1.6; busy 1500 B: 12.0 + 1.5 GB/s")
	r.addf("note: totals sum both directions over every pool port (hosts and NIC DMA)")
	return r
}
