package experiments

import (
	"fmt"
	"time"

	"oasis"
	"oasis/internal/strand"
)

// rackSimResult is the outcome of the simulated rack sweep (Part 1),
// shared verbatim by the serial and partitioned runners so the two modes'
// reports can be compared byte for byte.
type rackSimResult struct {
	lines  []string
	values map[string]float64
	// partitions is the execution shape (1 serial; control + one per pod
	// when partitioned). Kept out of values so the report bodies of the two
	// modes stay byte-identical.
	partitions int
}

// racksweepPhaseHook, when non-nil, is called at racksweepSim phase
// boundaries ("build", "start", "place+spawn", "run", "shutdown"). The
// speedup benchmark uses it to time the Run phase alone — construction is
// serial in both modes and would dilute the comparison.
var racksweepPhaseHook func(string)

// racksweepSim runs the simulated rack: 8 pods x 64 hosts (512 hosts) on
// one virtual clock. Instances are routed by the cluster's least-loaded
// placement, a deliberate hot-spot is piled onto pod 0, and the rebalancer
// migrates instances off it (epoch-fenced, §3.5 lifted to rack scope)
// while three echo flows per pod run throughout. The run is fixed-length:
// every process either finishes before the deadline or is unwound by the
// post-run Shutdown, so the virtual timeline — and with it every counter —
// is identical whether the pods execute serially on a shared engine or in
// parallel as partitions of a sim.Group.
// Execution shapes for the sweep. Serial and per-pod modes are
// byte-comparable (same modeled topology, different execution); per-host
// mode additionally splits every client onto a partition of its own behind
// a RemotePort, which is a different modeled topology — its timeline is
// compared only against itself (reruns, GOMAXPROCS settings).
const (
	rackSerial  = "serial"
	rackPerPod  = "perpod"
	rackPerHost = "perhost"
)

func racksweepSim(scale float64, mode string) rackSimResult {
	mark := func(s string) {
		if racksweepPhaseHook != nil {
			racksweepPhaseHook(s)
		}
	}
	const (
		pods        = 8
		hostsPerPod = 64 // 512 hosts total
		nicsPerPod  = 3
		instPerPod  = 6
		flowsPerPod = 3
		hotspot     = 6 // extra instances piled onto pod 0
	)
	window := oasis.Duration(float64(20*time.Millisecond) * scale)
	if window < 2*time.Millisecond {
		window = 2 * time.Millisecond
	}
	// Client warmup (2 ms) + measurement window + the last RecvTimeout tail
	// (5 ms) + margin. Nobody shuts the cluster down mid-run: a variable-
	// time Shutdown from inside one partition would not be a single global
	// instant in partitioned mode.
	deadline := window + 8*time.Millisecond

	var c *oasis.Cluster
	switch mode {
	case rackPerPod:
		c = oasis.NewPartitionedCluster()
	case rackPerHost:
		c = oasis.NewPerHostCluster()
	default:
		c = oasis.NewCluster()
	}
	clients := make([]*oasis.Client, pods*flowsPerPod)
	for i := 0; i < pods; i++ {
		cfg := oasis.DefaultConfig()
		// No volumes are placed in this sweep, so the default 1 GiB pool per
		// pod is pure allocation churn at 8 pods; 256 MiB covers the NIC
		// queues and instance state with room to spare.
		cfg.PoolBytes = 256 << 20
		p := c.AddPod(cfg)
		for h := 0; h < hostsPerPod; h++ {
			p.AddHost()
		}
		for n := 0; n < nicsPerPod; n++ {
			// Spread device backends across the pod's tail hosts.
			p.AddNIC(p.Hosts[hostsPerPod-1-n], false)
		}
		p.AddSSD(p.Hosts[hostsPerPod-1], 1<<16)
		for f := 0; f < flowsPerPod; f++ {
			clients[i*flowsPerPod+f] = p.AddClient(oasis.IP(10, byte(i), 99, byte(1+f)))
		}
	}
	mark("build")
	c.Start()
	mark("start")

	// Balanced placement through the cluster router (post-Start: exercises
	// the incremental wiring path at rack scale).
	for i := 0; i < pods*instPerPod; i++ {
		c.PlaceInstance(oasis.IP(10, 200, byte(i/200), byte(10+i%200)))
	}
	perPod := func() []int {
		out := make([]int, pods)
		for i := 0; i < pods; i++ {
			out[i] = c.Pod(i).Instances()
		}
		return out
	}
	balanced := perPod()

	// Hot-spot: bypass the router and pile extra instances onto pod 0.
	p0 := c.Pod(0)
	for i := 0; i < hotspot; i++ {
		p0.AddInstance(p0.Hosts[i%4], oasis.IP(10, 201, 0, byte(10+i)))
	}
	skewed := perPod()

	// Echo flows per pod, running across the rebalance. These are pod-local
	// (client i talks to an instance in its own pod), so they spawn with
	// GoPod — the workload partitioned execution runs in parallel. The
	// rebalancer only ever migrates a pod's newest placement, so the flow
	// instances (the oldest) never move mid-flow.
	echoes := make([]int, pods*flowsPerPod)
	for i := 0; i < pods; i++ {
		pod := c.Pod(i)
		for f := 0; f < flowsPerPod; f++ {
			i, f := i, f
			inst := pod.InstanceAt(f)
			inst.RequestAllocation()
			client := clients[i*flowsPerPod+f]
			c.GoPod(i, fmt.Sprintf("rack-echo%d-%d", i, f), func(p *oasis.Proc) {
				if !inst.WaitReady(p, 50*time.Millisecond) {
					return
				}
				conn, err := inst.Stack.ListenUDP(7)
				if err != nil {
					return
				}
				for {
					dg := conn.Recv(p)
					if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
						return
					}
				}
			})
			// Spawned in the client's execution domain: the pod's engine in
			// serial/per-pod mode (identical to GoPod there), the client's
			// own partition in per-host mode.
			client.Go(fmt.Sprintf("rack-client%d-%d", i, f), func(p *oasis.Proc) {
				conn, err := client.Stack.ListenUDP(0)
				if err != nil {
					return
				}
				buf := make([]byte, 64)
				p.Sleep(2 * time.Millisecond)
				start := p.Now()
				for p.Now()-start < window {
					if conn.SendTo(p, inst.IPAddr(), 7, buf) != nil {
						continue
					}
					if _, ok := conn.RecvTimeout(p, 5*time.Millisecond); ok {
						echoes[i*flowsPerPod+f]++
					}
					p.Sleep(20 * time.Microsecond)
				}
			})
		}
	}

	// The rebalancer is the only cross-pod actor: spawned with Cluster.Go,
	// it becomes a mobile process in partitioned mode, hopping between pods
	// for each migration step. It returns when the rack is even; from then
	// on no cross-pod coupling remains and the conservative windows open to
	// the full deadline.
	migrations := 0
	var final []int
	c.Go("rack-balancer", func(p *oasis.Proc) {
		p.Sleep(time.Millisecond)
		for i := 0; i < 2*hotspot; i++ {
			inst, err := c.RebalanceOnce(p, 1.2)
			if err != nil || inst == nil {
				break
			}
			migrations++
		}
		final = perPod()
	})
	mark("place+spawn")
	c.Run(deadline)
	mark("run")
	c.Shutdown()
	mark("shutdown")

	spread := func(v []int) int {
		min, max := v[0], v[0]
		for _, n := range v {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		return max - min
	}
	totalEchoes := 0
	for _, n := range echoes {
		totalEchoes += n
	}
	res := rackSimResult{values: map[string]float64{}, partitions: c.Partitions()}
	addf := func(format string, args ...any) {
		res.lines = append(res.lines, fmt.Sprintf(format, args...))
	}
	addf("rack: %d pods x %d hosts = %d hosts, %d NICs + 1 SSD per pod, one virtual clock",
		pods, hostsPerPod, pods*hostsPerPod, nicsPerPod)
	addf("placement: %d instances routed least-loaded -> per-pod %v (spread %d)",
		pods*instPerPod, balanced, spread(balanced))
	addf("hot-spot:  +%d on pod0 -> %v (spread %d)", hotspot, skewed, spread(skewed))
	addf("rebalance: %d cross-pod migrations -> %v (spread %d)", migrations, final, spread(final))
	addf("traffic:   %d echo flows alive throughout, %d echoes total", pods*flowsPerPod, totalEchoes)
	res.values["hosts"] = float64(pods * hostsPerPod)
	res.values["pods"] = float64(pods)
	res.values["spread_balanced"] = float64(spread(balanced))
	res.values["spread_skewed"] = float64(spread(skewed))
	res.values["spread_final"] = float64(spread(final))
	res.values["migrations"] = float64(migrations)
	res.values["echoes"] = float64(totalEchoes)
	return res
}

// renderRacksweep assembles the full report from a Part-1 sim result plus
// the Part-2 analytic model.
func renderRacksweep(r *Report, sim rackSimResult, scale float64) *Report {
	for _, l := range sim.lines {
		r.addf("%s", l)
	}
	for k, v := range sim.values {
		r.Values[k] = v
	}

	// --- Part 2: the pooling model at 1000s of hosts. ---
	sc := strand.DefaultConfig()
	sc.Hosts = int(2048 * scale)
	if sc.Hosts < 512 {
		sc.Hosts = 512
	}
	sc.Trials = 4
	sc.PodSizes = []int{8, 16, 32, 64}
	sc.Workers = Parallelism()
	results := strand.Run(sc)
	r.addf("pooling model: %d hosts, %d trials/size (workers between engines only)", sc.Hosts, sc.Trials)
	r.addf("%-8s %8s %8s %10s %11s", "pod", "NIC%", "SSD%", "NICs/pod", "drives/pod")
	for _, res := range results {
		r.addf("%-8d %8.1f %8.1f %10.2f %11.1f",
			res.PodSize, res.StrandedNIC*100, res.StrandedSSD*100, res.NICsPerPod, res.DrivesPerPod)
		r.Values[fmt.Sprintf("pod%d_nic", res.PodSize)] = res.StrandedNIC
		r.Values[fmt.Sprintf("pod%d_ssd", res.PodSize)] = res.StrandedSSD
	}
	r.addf("paper: stranding keeps falling as the pooling domain grows; composing pods")
	r.addf("       extends §2.2's single-pod gains to the whole rack")
	return r
}

// Racksweep extends Table 2 / Figure 2 from a single pod to a rack: a
// real multi-pod Cluster simulation of 512 hosts (placement, hot-spot
// migration, live traffic — every pod on one virtual clock, executed
// serially), paired with the analytic stranding model pushed to thousands
// of hosts.
//
// Part 2 (analytic): the §2.2 pooling model at 1000s of hosts, pod sizes
// 8-64, trials fanned out over internal/par. Per-worker results reduce in
// trial order, so the report is byte-identical at any -parallel setting.
func Racksweep(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("racksweep", "Rack-scale utilization sweep (multi-pod cluster + pooling model)")
	return renderRacksweep(r, racksweepSim(scale, rackSerial), scale)
}

// RacksweepSimTimed runs just the simulated rack (no analytic Part 2) and
// returns the wall-clock seconds spent inside the Run phase — the part
// partitioned execution parallelizes; construction and wiring are serial
// in either mode — plus the partition count and the report values. This is
// the surface behind the make-bench partitions=1 vs partitions=N
// comparison row. Wall-clock gain from the partitioned mode scales with
// available cores; even on one core the per-pod heap split wins ~1.5×
// (see DESIGN.md §8, partitioned execution).
func RacksweepSimTimed(scale float64, partitioned bool) (runSeconds float64, partitions int, values map[string]float64) {
	mode := rackSerial
	if partitioned {
		mode = rackPerPod
	}
	return RacksweepSimTimedMode(scale, mode)
}

// RacksweepSimTimedMode is RacksweepSimTimed with the execution shape
// named explicitly: "serial", "perpod" (one partition per pod), or
// "perhost" (per-pod plus one partition per client).
func RacksweepSimTimedMode(scale float64, mode string) (runSeconds float64, partitions int, values map[string]float64) {
	var t0 time.Time
	racksweepPhaseHook = func(s string) {
		switch s {
		case "place+spawn":
			t0 = time.Now()
		case "run":
			runSeconds = time.Since(t0).Seconds()
		}
	}
	defer func() { racksweepPhaseHook = nil }()
	res := racksweepSim(clampScale(scale), mode)
	return runSeconds, res.partitions, res.values
}

// RacksweepPartitioned is Racksweep with the rack in partitioned execution
// mode: each pod on its own sim partition, advancing in parallel under
// conservative windows. The simulated results are byte-identical to the
// serial runner at any GOMAXPROCS — only wall-clock time changes.
func RacksweepPartitioned(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("racksweep-par", "Rack-scale utilization sweep (partitioned: one sim partition per pod)")
	return renderRacksweep(r, racksweepSim(scale, rackPerPod), scale)
}

// RacksweepPerHost is the sweep in per-host partitioned mode: one
// partition per pod AND one per client (33 partitions at the default
// shape), so load generation advances in parallel with the pods it
// drives. The remote client attachment adds real cable latency, so this
// report is not byte-comparable to the serial runner; the per-host
// timeline itself is byte-identical across reruns and GOMAXPROCS.
func RacksweepPerHost(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("racksweep-perhost", "Rack-scale utilization sweep (per-host: pods and clients on own partitions)")
	return renderRacksweep(r, racksweepSim(scale, rackPerHost), scale)
}
