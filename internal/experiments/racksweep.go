package experiments

import (
	"fmt"
	"time"

	"oasis"
	"oasis/internal/strand"
)

// Racksweep extends Table 2 / Figure 2 from a single pod to a rack: a
// real multi-pod Cluster simulation of 200+ hosts (placement, hot-spot
// migration, live traffic — every pod on one virtual clock), paired with
// the analytic stranding model pushed to thousands of hosts.
//
// Part 1 (simulated): 8 pods x 26 hosts share one engine. Instances are
// routed by the cluster's least-loaded placement, a deliberate hot-spot
// is then piled onto pod 0, and the rebalancer migrates instances off it
// (epoch-fenced, §3.5 lifted to rack scope) until the rack is even. One
// echo flow per pod runs throughout, pinning down that a 208-host cluster
// stays deterministic under concurrent traffic and migration.
//
// Part 2 (analytic): the §2.2 pooling model at 1000s of hosts, pod sizes
// 8-64, trials fanned out over internal/par. Per-worker results reduce in
// trial order, so the report is byte-identical at any -parallel setting.
func Racksweep(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("racksweep", "Rack-scale utilization sweep (multi-pod cluster + pooling model)")

	const (
		pods        = 8
		hostsPerPod = 26 // 208 hosts total
		nicsPerPod  = 3
		instPerPod  = 6
		hotspot     = 6 // extra instances piled onto pod 0
	)
	window := oasis.Duration(float64(20*time.Millisecond) * scale)
	if window < 2*time.Millisecond {
		window = 2 * time.Millisecond
	}

	c := oasis.NewCluster()
	clients := make([]*oasis.Client, pods)
	for i := 0; i < pods; i++ {
		cfg := oasis.DefaultConfig()
		p := c.AddPod(cfg)
		for h := 0; h < hostsPerPod; h++ {
			p.AddHost()
		}
		for n := 0; n < nicsPerPod; n++ {
			// Spread device backends across the pod's tail hosts.
			p.AddNIC(p.Hosts[hostsPerPod-1-n], false)
		}
		p.AddSSD(p.Hosts[hostsPerPod-1], 1<<16)
		clients[i] = p.AddClient(oasis.IP(10, byte(i), 99, 1))
	}
	c.Start()

	// Balanced placement through the cluster router (post-Start: exercises
	// the incremental wiring path at rack scale).
	for i := 0; i < pods*instPerPod; i++ {
		c.PlaceInstance(oasis.IP(10, 200, byte(i/200), byte(10+i%200)))
	}
	perPod := func() []int {
		out := make([]int, pods)
		for i := 0; i < pods; i++ {
			out[i] = c.Pod(i).Instances()
		}
		return out
	}
	balanced := perPod()

	// Hot-spot: bypass the router and pile extra instances onto pod 0.
	p0 := c.Pod(0)
	for i := 0; i < hotspot; i++ {
		p0.AddInstance(p0.Hosts[i%4], oasis.IP(10, 201, 0, byte(10+i)))
	}
	skewed := perPod()

	// One echo flow per pod, running across the rebalance.
	echoes := make([]int, pods)
	for i := 0; i < pods; i++ {
		i := i
		pod := c.Pod(i)
		inst := pod.InstanceAt(0)
		inst.RequestAllocation()
		c.Go(fmt.Sprintf("rack-echo%d", i), func(p *oasis.Proc) {
			if !inst.WaitReady(p, 50*time.Millisecond) {
				return
			}
			conn, err := inst.Stack.ListenUDP(7)
			if err != nil {
				return
			}
			for {
				dg := conn.Recv(p)
				if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
					return
				}
			}
		})
		c.Go(fmt.Sprintf("rack-client%d", i), func(p *oasis.Proc) {
			conn, err := clients[i].Stack.ListenUDP(0)
			if err != nil {
				return
			}
			buf := make([]byte, 64)
			p.Sleep(2 * time.Millisecond)
			start := p.Now()
			for p.Now()-start < window {
				if conn.SendTo(p, inst.IPAddr(), 7, buf) != nil {
					continue
				}
				if _, ok := conn.RecvTimeout(p, 5*time.Millisecond); ok {
					echoes[i]++
				}
				p.Sleep(20 * time.Microsecond)
			}
		})
	}

	migrations := 0
	var final []int
	c.Go("rack-balancer", func(p *oasis.Proc) {
		p.Sleep(time.Millisecond)
		for i := 0; i < 2*hotspot; i++ {
			inst, err := c.RebalanceOnce(p, 1.2)
			if err != nil || inst == nil {
				break
			}
			migrations++
		}
		final = perPod()
		p.Sleep(window + 3*time.Millisecond)
		c.Shutdown()
	})
	c.Run(time.Minute)

	spread := func(v []int) int {
		min, max := v[0], v[0]
		for _, n := range v {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		return max - min
	}
	totalEchoes := 0
	for _, n := range echoes {
		totalEchoes += n
	}
	r.addf("rack: %d pods x %d hosts = %d hosts, %d NICs + 1 SSD per pod, one engine",
		pods, hostsPerPod, pods*hostsPerPod, nicsPerPod)
	r.addf("placement: %d instances routed least-loaded -> per-pod %v (spread %d)",
		pods*instPerPod, balanced, spread(balanced))
	r.addf("hot-spot:  +%d on pod0 -> %v (spread %d)", hotspot, skewed, spread(skewed))
	r.addf("rebalance: %d cross-pod migrations -> %v (spread %d)", migrations, final, spread(final))
	r.addf("traffic:   %d echo flows alive throughout, %d echoes total", pods, totalEchoes)
	r.Values["hosts"] = float64(pods * hostsPerPod)
	r.Values["pods"] = float64(pods)
	r.Values["spread_balanced"] = float64(spread(balanced))
	r.Values["spread_skewed"] = float64(spread(skewed))
	r.Values["spread_final"] = float64(spread(final))
	r.Values["migrations"] = float64(migrations)
	r.Values["echoes"] = float64(totalEchoes)

	// --- Part 2: the pooling model at 1000s of hosts. ---
	sc := strand.DefaultConfig()
	sc.Hosts = int(2048 * scale)
	if sc.Hosts < 512 {
		sc.Hosts = 512
	}
	sc.Trials = 4
	sc.PodSizes = []int{8, 16, 32, 64}
	sc.Workers = Parallelism()
	results := strand.Run(sc)
	r.addf("pooling model: %d hosts, %d trials/size (workers between engines only)", sc.Hosts, sc.Trials)
	r.addf("%-8s %8s %8s %10s %11s", "pod", "NIC%", "SSD%", "NICs/pod", "drives/pod")
	for _, res := range results {
		r.addf("%-8d %8.1f %8.1f %10.2f %11.1f",
			res.PodSize, res.StrandedNIC*100, res.StrandedSSD*100, res.NICsPerPod, res.DrivesPerPod)
		r.Values[fmt.Sprintf("pod%d_nic", res.PodSize)] = res.StrandedNIC
		r.Values[fmt.Sprintf("pod%d_ssd", res.PodSize)] = res.StrandedSSD
	}
	r.addf("paper: stranding keeps falling as the pooling domain grows; composing pods")
	r.addf("       extends §2.2's single-pod gains to the whole rack")
	return r
}
