package experiments

import (
	"reflect"
	"testing"
)

// TestChaosDeterministic is the acceptance gate for the chaos campaign:
// the full seven-fault run must (a) satisfy every recovery invariant and
// (b) produce a byte-identical report when rerun — here the rerun happens
// under SetParallelism(8), so one comparison covers both the replay
// contract and the parallel runner. The race gate re-runs this test with
// the detector on but passes -short (see scripts/verify.sh): one run is
// enough for race coverage, and the ~10x detector overhead makes the
// rerun comparison too expensive to double up there.
func TestChaosDeterministic(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(1)
	serial := Chaos(1.0)
	if v := serial.Values["violations"]; v != 0 {
		t.Fatalf("chaos campaign violated %v invariant(s):\n%s", v, serial.String())
	}
	if testing.Short() {
		return // invariants checked; skip the rerun under -short (race gate)
	}
	SetParallelism(8)
	parallel := Chaos(1.0)
	if serial.String() != parallel.String() {
		t.Errorf("chaos report not byte-identical across reruns:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if !reflect.DeepEqual(serial.Values, parallel.Values) {
		t.Errorf("chaos values differ across reruns: %v vs %v", serial.Values, parallel.Values)
	}
}

// TestFig13FailoverBound is a regression bound on NIC failover time: the
// paper reports ~38 ms of interruption (Fig. 13); the reproduction must
// keep the loss window in the same regime and actually fail over.
func TestFig13FailoverBound(t *testing.T) {
	r := Fig13(0.1)
	if r.Values["failovers"] < 1 {
		t.Fatalf("no failover recorded:\n%s", r.String())
	}
	outage := r.Values["outage_ms"]
	if outage <= 0 || outage > 100 {
		t.Fatalf("failover outage %v ms out of bounds (0, 100]:\n%s", outage, r.String())
	}
	if r.Values["lost"] < 1 {
		t.Fatalf("probe stream saw no loss at all — failure not injected?\n%s", r.String())
	}
}
