package experiments

import (
	"oasis/internal/par"
)

// Parallelism within one experiment. Independent simulation runs (each
// owning a private engine) fan out across this many OS threads; report
// assembly always happens serially in a fixed order afterwards, so the
// output is byte-identical for any setting. Default 1 (serial).
//
// Parallelism is only ever BETWEEN engines, never inside one: a single
// engine's event loop is cooperative and single-threaded by design (see
// DESIGN.md), which is exactly what makes fanning whole runs out safe.
var parallelism = 1

// SetParallelism sets how many runs may execute concurrently inside one
// experiment. n < 1 resets to serial. Not safe to call while experiments
// are running.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	parallelism = n
}

// Parallelism returns the current intra-experiment worker count.
func Parallelism() int { return parallelism }

// parRun evaluates fn(0..n-1) — each call building and running a private
// simulation — on up to Parallelism() workers and returns the results in
// index order.
func parRun[T any](n int, fn func(i int) T) []T {
	out := make([]T, n)
	par.Do(parallelism, n, func(i int) { out[i] = fn(i) })
	return out
}
