package experiments

import (
	"encoding/binary"
	"time"

	"oasis"
	"oasis/internal/ssd"
)

// Blackout measures the migration write-blackout — the window in which the
// source volume is frozen and guest writes fail fast — as a function of
// the guest's write rate, side by side for the two migration protocols:
//
//   - pre-copy (the default): the bulk image and the iterative dirty
//     rounds run while writes continue; only the final dirty flush sits
//     inside the freeze, so the blackout tracks the write rate (how many
//     blocks dirtied per round) rather than the volume size;
//   - stop-the-world (Cluster.StopTheWorldMigration): freeze first, then
//     copy the whole volume inside the blackout — the old protocol, kept
//     as the comparison baseline.
//
// Each cell runs the identical scenario on a fresh two-pod cluster: a
// writer streams sequence-stamped blocks round-robin over the volume while
// the instance migrates cross-pod mid-stream, and the read-back on the
// destination replays the chaos campaign's acked-write ledger. The
// acceptance invariants are (a) the pre-copy blackout is strictly smaller
// than the stop-the-world blackout at every write rate, and (b) no acked
// write is lost under either protocol. The run is deterministic, so the
// report is byte-identical across reruns.
//
// Scale trims the write-rate grid (CI uses small scales); the blackout for
// each cell is Cluster.LastBlackout, the engine's own freeze->cutover
// measurement.
func Blackout(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("blackout", "migration blackout vs write rate: pre-copy vs stop-the-world")

	cadences := []time.Duration{400 * time.Microsecond, 200 * time.Microsecond, 100 * time.Microsecond, 50 * time.Microsecond}
	n := int(float64(len(cadences))*scale + 0.5)
	if n < 2 {
		n = 2
	}
	if n > len(cadences) {
		n = len(cadences)
	}
	cadences = cadences[:n]

	var violations []string
	check := func(ok bool, what string) {
		if !ok {
			violations = append(violations, what)
		}
	}
	r.addf("volume: %d blocks; migration at +5 ms; writer round-robin, full-block writes", blackoutBlocks)
	r.addf("%-12s %-14s %-14s", "write rate", "pre-copy", "stop-the-world")
	for _, every := range cadences {
		rate := int(time.Second / every)
		pre := blackoutOneRun(every, false)
		stw := blackoutOneRun(every, true)
		r.addf("%7d/s   %-14v %-14v", rate, pre.blackout, stw.blackout)
		check(pre.err == nil, "pre-copy migration failed at "+every.String())
		check(stw.err == nil, "stop-the-world migration failed at "+every.String())
		check(pre.mismatch == 0, "pre-copy lost an acked write at "+every.String())
		check(stw.mismatch == 0, "stop-the-world lost an acked write at "+every.String())
		check(pre.acked > 0 && stw.acked > 0, "writer never got an ack at "+every.String())
		check(pre.blackout > 0 && stw.blackout > 0, "a run recorded no blackout at "+every.String())
		check(pre.blackout < stw.blackout, "pre-copy blackout not strictly smaller at "+every.String())
		key := "us_" + every.String()
		r.Values["precopy_"+key] = float64(pre.blackout) / 1e3
		r.Values["stw_"+key] = float64(stw.blackout) / 1e3
	}
	if len(violations) == 0 {
		r.addf("invariants: OK (pre-copy blackout strictly smaller than stop-the-world at every rate, no acked write lost)")
	} else {
		r.addf("invariants: VIOLATED (%d)", len(violations))
		for _, v := range violations {
			r.addf("  - %s", v)
		}
	}
	r.Values["violations"] = float64(len(violations))
	r.Values["rates"] = float64(len(cadences))
	return r
}

const blackoutBlocks = 256

type blackoutResult struct {
	blackout oasis.Duration
	acked    int
	mismatch int
	err      error
}

// blackoutOneRun migrates a written-to volume across pods once and reports
// the freeze window and the acked-write ledger verdict.
func blackoutOneRun(writeEvery time.Duration, stopTheWorld bool) blackoutResult {
	const (
		migrateAt  = 5 * time.Millisecond
		writerStop = 12 * time.Millisecond
		verifyAt   = 13 * time.Millisecond
	)
	c := oasis.NewCluster()
	for i := 0; i < 2; i++ {
		cfg := oasis.DefaultConfig()
		p := c.AddPod(cfg)
		hA := p.AddHost()
		hB := p.AddHost()
		p.AddNIC(hB, false)
		p.AddSSD(hB, 1<<16)
		if i == 0 {
			p.AddBackupSSD(hA, 1<<16)
		}
	}
	c.StopTheWorldMigration = stopTheWorld
	p0 := c.Pod(0)
	ip := oasis.IP(10, 0, 0, 40)
	inst := p0.AddInstance(p0.Hosts[0], ip)
	vol := p0.AddVolume(inst, 1, blackoutBlocks)
	c.Start()

	fill := func(blk []byte, seq, lba uint64) {
		binary.BigEndian.PutUint64(blk, seq)
		pat := byte(seq) ^ byte(lba)
		for i := 8; i < len(blk); i++ {
			blk[i] = pat
		}
	}
	var (
		res         blackoutResult
		acked       [blackoutBlocks]uint64
		failedAfter [blackoutBlocks][]uint64
	)
	c.Go("blackout-writer", func(p *oasis.Proc) {
		if !vol.WaitReady(p, 100*time.Millisecond) {
			return
		}
		blk := make([]byte, ssd.BlockSize)
		// The tail of the stream fails against the cut-over source volume;
		// those writes were never acked and promise nothing.
		for seq := uint64(1); p.Now() < writerStop; seq++ {
			lba := seq % blackoutBlocks
			fill(blk, seq, lba)
			if err := vol.Write(p, lba, blk); err == nil {
				acked[lba] = seq
				failedAfter[lba] = failedAfter[lba][:0]
				res.acked++
			} else {
				failedAfter[lba] = append(failedAfter[lba], seq)
			}
			p.Sleep(writeEvery)
		}
	})
	c.Go("blackout-migrator", func(p *oasis.Proc) {
		defer c.Shutdown()
		p.Sleep(migrateAt)
		newInst, err := c.MigrateInstance(p, ip, 1)
		if err != nil {
			res.err = err
			return
		}
		res.blackout = c.LastBlackout
		for p.Now() < verifyAt {
			p.Sleep(time.Millisecond)
		}
		nv := newInst.Host().SFE.Volume(newInst.IPAddr())
		if nv == nil {
			res.mismatch = blackoutBlocks
			return
		}
		for lba := uint64(0); lba < blackoutBlocks; lba++ {
			want := acked[lba]
			if want == 0 {
				continue // never acked: nothing promised
			}
			got, err := nv.Read(p, lba, 1)
			if err != nil {
				res.mismatch++
				continue
			}
			seq := binary.BigEndian.Uint64(got)
			ok := seq == want
			for _, f := range failedAfter[lba] {
				ok = ok || seq == f
			}
			pat := byte(seq) ^ byte(lba)
			for i := 8; ok && i < len(got); i++ {
				ok = got[i] == pat
			}
			if !ok {
				res.mismatch++
			}
		}
	})
	c.Run(time.Second)
	return res
}
