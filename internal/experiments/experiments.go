// Package experiments contains one runner per table and figure in the
// paper's evaluation (§2.2, §5). Each runner builds the scenario from the
// public oasis API, drives the workload in virtual time, and returns a
// Report with the same rows/series the paper presents plus
// machine-readable values that the test suite and EXPERIMENTS.md assert
// against.
//
// Runners accept a Scale in (0, 1] that shrinks measurement windows and
// load grids proportionally — CI uses small scales; the benchmark harness
// runs Scale=1.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Report is one experiment's outcome.
type Report struct {
	ID    string
	Title string
	Lines []string
	// Values carries machine-readable results keyed by metric name.
	Values map[string]float64
}

func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Values: make(map[string]float64)}
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report for the CLI.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteString("\n")
	}
	return b.String()
}

// Runner produces a report at a given scale.
type Runner func(scale float64) *Report

// Registry maps experiment ids to runners, in the paper's order.
func Registry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"tab1", Table1},
		{"tab2", Table2},
		{"fig6", Fig6},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"tab3", Table3},
		{"fig12", Fig12},
		{"fig13", Fig13},
		{"fig14", Fig14},
		{"abl-counter", AblCounterBatch},
		{"abl-inspect", AblBackendInspect},
		{"abl-failover", AblFailoverMechanism},
		{"abl-coherent", AblHWCoherent},
		{"abl-sharding", AblSharding},
		{"abl-qos", AblQoS},
		{"abl-storage", AblStorage},
		{"chaos", Chaos},
		{"chaos-par", ChaosPartitioned},
		{"chaos-perhost", ChaosPerHost},
		{"grayfail", Grayfail},
		{"grayfail-par", GrayfailPartitioned},
		{"grayfail-perhost", GrayfailPerHost},
		{"blackout", Blackout},
		{"racksweep", Racksweep},
		{"racksweep-par", RacksweepPartitioned},
		{"racksweep-perhost", RacksweepPerHost},
	}
}

// Lookup finds a runner by id.
func Lookup(id string) (Runner, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e.Run, true
		}
	}
	return nil, false
}

// IDs returns all experiment ids in order.
func IDs() []string {
	var out []string
	for _, e := range Registry() {
		out = append(out, e.ID)
	}
	return out
}

// sortedKeys is a small report helper.
func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func clampScale(s float64) float64 {
	if s <= 0 || s > 1 {
		return 1
	}
	return s
}
