package experiments

import (
	"time"

	"oasis"
	"oasis/internal/metrics"
	"oasis/internal/sim"
)

// timeQueue is a FIFO of send timestamps shared between a pipelined sender
// and its reader process. The pop timeout is derived from the run length at
// construction: a hardcoded timeout shorter than the span would make
// readers give up mid-run at full scale, and one longer would leave scaled
// CI runs idling after shutdown.
type timeQueue struct {
	q       *sim.Queue[oasis.Duration]
	timeout oasis.Duration
}

func newTimeQueue(pod *oasis.Pod, timeout oasis.Duration) *timeQueue {
	return &timeQueue{q: sim.NewQueue[oasis.Duration](pod.Eng), timeout: timeout}
}

func (t *timeQueue) push(v oasis.Duration) { t.q.Push(v) }

func (t *timeQueue) pop(p *oasis.Proc) (oasis.Duration, bool) {
	return t.q.PopTimeout(p, t.timeout)
}

// failoverPod builds the §5.3 topology: instance on host A, its NIC on
// host B, a reserved backup NIC on host C, with the pod-wide allocator
// orchestrating.
type failoverPod struct {
	pod    *oasis.Pod
	inst   *oasis.Instance
	nic    *oasis.NIC
	backup *oasis.NIC
	client *oasis.Client
}

func buildFailoverPod() *failoverPod {
	cfg := oasis.DefaultConfig()
	// Failover timing is millisecond-scale; generous idle backoff keeps the
	// 10-second virtual runs fast without touching the result.
	cfg.Engine.IdleBackoff = 20 * time.Microsecond
	pod := oasis.NewPod(cfg)
	hostA := pod.AddHost()
	hostB := pod.AddHost()
	hostC := pod.AddHost()
	f := &failoverPod{pod: pod}
	f.nic = pod.AddNIC(hostB, false)
	f.backup = pod.AddNIC(hostC, true)
	f.inst = pod.AddInstance(hostA, serverIP)
	f.client = pod.AddClient(clientIP)
	pod.Start()
	f.inst.RequestAllocation()
	return f
}

// Fig13 reproduces Figure 13: packet loss during a NIC failure with a 10 s
// UDP echo stream; the switch port is disabled at t = 5 s.
func Fig13(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("fig13", "UDP packet loss during NIC failover (10 s run, failure at 5 s)")
	span := time.Duration(float64(10*time.Second) * scale)
	if span < time.Second {
		span = time.Second
	}
	failAt := span / 2
	f := buildFailoverPod()
	f.pod.Go("echo-server", func(p *oasis.Proc) {
		conn, err := f.inst.Stack.ListenUDP(7)
		if err != nil {
			return
		}
		for {
			dg := conn.Recv(p)
			if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
				return
			}
		}
	})
	f.pod.Eng.At(failAt, func() { f.pod.FailNICPort(f.nic.ID) })

	losses := metrics.NewSeries(10 * time.Millisecond) // Fig. 13a bins
	var firstLoss, lastLoss oasis.Duration
	sent, lost := 0, 0
	f.pod.Go("client", func(p *oasis.Proc) {
		conn, err := f.client.Stack.ListenUDP(0)
		if err != nil {
			return
		}
		p.Sleep(5 * time.Millisecond) // registration warmup
		interval := time.Millisecond  // 1 kHz probe stream
		for p.Now() < span {
			sendAt := p.Now()
			if conn.SendTo(p, serverIP, 7, []byte("probe-probe-probe")) != nil {
				continue
			}
			sent++
			if _, ok := conn.RecvTimeout(p, interval); !ok {
				lost++
				losses.Add(sendAt, 1)
				if firstLoss == 0 {
					firstLoss = sendAt
				}
				lastLoss = sendAt
			} else if wait := sendAt + interval - p.Now(); wait > 0 {
				p.Sleep(wait)
			}
		}
		f.pod.Shutdown()
	})
	f.pod.Run(span + time.Second)

	outage := time.Duration(0)
	if lastLoss > firstLoss {
		outage = lastLoss - firstLoss + time.Millisecond
	}
	r.addf("probes sent: %d, lost: %d (%.2f%%)", sent, lost, 100*float64(lost)/float64(sent))
	r.addf("failure injected at %v; loss window [%v, %v] -> interruption ≈ %v",
		failAt, firstLoss, lastLoss, outage)
	r.addf("loss per 10 ms bucket around the failure:")
	lo := int(failAt/(10*time.Millisecond)) - 2
	for i := lo; i < lo+12 && i < losses.Len()+2; i++ {
		if i < 0 {
			continue
		}
		r.addf("  t=%6v: %3.0f lost", time.Duration(i)*10*time.Millisecond, losses.At(i))
	}
	r.Values["outage_ms"] = float64(outage) / 1e6
	r.Values["lost"] = float64(lost)
	r.Values["failovers"] = float64(f.pod.Alloc.Failovers)
	r.addf("paper: total failure time ≈ 38 ms, then service resumes on the backup NIC")
	return r
}

// Fig14 reproduces Figure 14: memcached (TCP) P99 latency through the same
// failure; lost segments retransmit after failover, briefly inflating P99.
func Fig14(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("fig14", "memcached P99 latency through NIC failover (TCP)")
	span := time.Duration(float64(10*time.Second) * scale)
	if span < 2*time.Second {
		span = 2 * time.Second
	}
	failAt := span / 2
	f := buildFailoverPod()
	app := memcachedApp()
	// Reuse the RR server as the memcached model.
	f.pod.Go("memcached", func(p *oasis.Proc) {
		l, err := f.inst.Stack.ListenTCP(11211)
		if err != nil {
			return
		}
		for {
			conn := l.Accept(p)
			f.pod.Go("memcached-conn", func(p *oasis.Proc) {
				resp := make([]byte, 4+app.RespSize)
				putLen(resp, app.RespSize)
				for {
					hdr, err := conn.Read(p, 4)
					if err != nil {
						return
					}
					if _, err := conn.Read(p, getLen(hdr)); err != nil {
						return
					}
					p.Sleep(app.Service)
					if conn.Send(p, resp) != nil {
						return
					}
				}
			})
		}
	})
	f.pod.Eng.At(failAt, func() { f.pod.FailNICPort(f.nic.ID) })

	// Per-100ms-window latency collection (Fig. 14's x-axis).
	winSize := 100 * time.Millisecond
	nWins := int(span/winSize) + 1
	wins := make([]*metrics.Histogram, nWins)
	for i := range wins {
		wins[i] = &metrics.Histogram{}
	}
	// Open-loop pipelined clients: requests are issued at a fixed rate
	// regardless of responses, so requests sent during the interruption
	// accumulate in the TCP stream and surface as the post-failover P99
	// spike the paper shows. A paired reader records per-request latency
	// (responses are FIFO on each connection).
	conc := 4
	perConnRate := 2500.0 // 10 kreq/s total
	running := conc
	for c := 0; c < conc; c++ {
		f.pod.Go("mc-client", func(p *oasis.Proc) {
			defer func() {
				running--
				if running == 0 {
					f.pod.Shutdown()
				}
			}()
			p.Sleep(5 * time.Millisecond)
			conn, err := f.client.Stack.DialTCP(p, serverIP, 11211)
			if err != nil {
				return
			}
			sendTimes := newTimeQueue(f.pod, span+2*time.Second)
			f.pod.Go("mc-reader", func(p *oasis.Proc) {
				for {
					if _, err := conn.Read(p, 4+app.RespSize); err != nil {
						return
					}
					t0, ok := sendTimes.pop(p)
					if !ok {
						return
					}
					w := int(t0 / winSize)
					if w < nWins {
						wins[w].Record(p.Now() - t0)
					}
				}
			})
			req := make([]byte, 4+app.ReqSize)
			putLen(req, app.ReqSize)
			interval := oasis.Duration(float64(time.Second) / perConnRate)
			next := p.Now()
			for p.Now() < span {
				if wait := next - p.Now(); wait > 0 {
					p.Sleep(wait)
				}
				next += interval
				sendTimes.push(p.Now())
				if conn.Send(p, req) != nil {
					return
				}
			}
			p.Sleep(500 * time.Millisecond) // drain stragglers
		})
	}
	f.pod.Run(span + 2*time.Second)

	// Baseline P99 from the windows before the failure.
	var pre metrics.Histogram
	failWin := int(failAt / winSize)
	for i := 2; i < failWin-1; i++ {
		pre.Merge(wins[i])
	}
	baseP99 := pre.Percentile(99)
	r.addf("pre-failure P99 = %v", baseP99)
	recoveredAt := oasis.Duration(0)
	r.addf("P99 per 100 ms window around the failure:")
	for i := failWin - 2; i < nWins && i < failWin+25; i++ {
		if i < 0 || wins[i].Count() == 0 {
			continue
		}
		p99 := wins[i].Percentile(99)
		r.addf("  t=%6v: p99=%9v  (n=%d)", time.Duration(i)*winSize, p99, wins[i].Count())
		if i > failWin && recoveredAt == 0 && p99 < 3*baseP99 {
			recoveredAt = time.Duration(i) * winSize
		}
	}
	if recoveredAt > 0 {
		r.Values["recovery_ms"] = float64(recoveredAt-failAt) / 1e6
		r.addf("P99 recovered to <3x baseline ≈ %v after the failure", recoveredAt-failAt)
	} else {
		r.Values["recovery_ms"] = -1
		r.addf("P99 did not recover within the observed windows")
	}
	r.Values["base_p99_us"] = float64(baseP99) / 1e3
	r.addf("paper: P99 recovers within ~133 ms — longer than UDP because retransmitted")
	r.addf("       segments accumulate during the interruption and drain afterwards")
	return r
}
