package experiments

import (
	"encoding/binary"
	"time"

	"oasis"
	"oasis/internal/faults"
	"oasis/internal/sim"
	"oasis/internal/ssd"
)

// Chaos runs the pod-wide chaos campaign: a single 2.6-second run that
// injects every fault kind the injector knows — a storage-backend engine
// stall, two host crashes (one takes the allocator and its raft replica
// down, one takes a NIC + SSD host down), a switch port flap, a drive
// failure, a CXL port degradation, and a NIC link drop — and then checks
// the recovery invariants the design promises:
//
//   - no acked write is ever lost: a round-robin writer tracks the last
//     acknowledged sequence number per LBA and the read-back after the
//     campaign must match it (or a later write that errored back to the
//     guest, which makes no promise either way);
//   - packet loss is confined to bounded windows adjacent to fault
//     injections (the Fig. 13 probe stream, generalised);
//   - control-plane recovery is bounded: an allocation requested while
//     the allocator host is down completes shortly after it resumes;
//   - the recovery machinery actually fired: SSD failovers, host-death
//     inference, lease reconstruction and epoch fencing all have
//     non-zero counts.
//
// The fault timeline is absolute, so the run is byte-for-byte replayable:
// the report embeds the encoded faults.Plan and rerunning the experiment
// (at any scale — chaos ignores scale, fault mechanics need real
// timeouts) must reproduce the identical report. To keep the campaign
// cheap enough for CI and the race gate, the pod runs with a compressed
// control plane — 120 ms device leases and 40 ms telemetry instead of the
// paper's 300/100 ms — which shrinks every detection window and lets the
// whole seven-fault schedule fit in 2.6 virtual seconds.
func Chaos(scale float64) *Report {
	_ = clampScale(scale) // validated for interface symmetry; timeline is fixed
	r := newReport("chaos", "chaos campaign: all fault kinds + recovery invariants (2.6 s run)")
	return chaosRun(r, chaosSerial)
}

// ChaosPartitioned runs the identical campaign with the pod mounted on a
// one-partition sim.Group — the degenerate partitioned-execution
// configuration, which must reduce to the serial loop byte for byte. Its
// report body (Lines and Values) must equal Chaos's exactly.
func ChaosPartitioned(scale float64) *Report {
	_ = clampScale(scale)
	r := newReport("chaos-par", "chaos campaign on a one-partition group (must match chaos byte-for-byte)")
	return chaosRun(r, chaosOnePartition)
}

// ChaosPerHost runs the campaign on a per-host partitioned pod: the pod
// core on one partition, the probe client on a partition of its own behind
// a switch RemotePort. The remote attachment adds real cable latency, so
// this report is NOT byte-comparable to chaos — the acceptance is that
// every recovery invariant still holds with the client advancing in
// parallel, and that the per-host timeline is itself byte-identical across
// reruns and GOMAXPROCS settings (verify.sh sweeps it at 1/2/8).
func ChaosPerHost(scale float64) *Report {
	_ = clampScale(scale)
	r := newReport("chaos-perhost", "chaos campaign on a per-host partitioned pod (probe client on its own partition)")
	return chaosRun(r, chaosPerHost)
}

// chaosMode selects the execution shape of the chaos pod.
type chaosMode int

const (
	chaosSerial       chaosMode = iota // one private engine
	chaosOnePartition                  // degenerate one-partition group
	chaosPerHost                       // per-host pod: client partitioned out
)

func chaosRun(r *Report, mode chaosMode) *Report {
	const (
		span        = 2600 * time.Millisecond
		writerStop  = span - 200*time.Millisecond
		proberStop  = span - 100*time.Millisecond
		lbaCount    = 16
		writeEvery  = 500 * time.Microsecond
		probeEvery  = time.Millisecond
		instBAsk    = 820 * time.Millisecond
		windowGap   = 100 * time.Millisecond // losses closer than this are one outage
		windowBound = 300 * time.Millisecond // max tolerated outage window
		faultSlack  = 500 * time.Millisecond // losses must sit this close after a fault
		allocBound  = 600 * time.Millisecond
		stallBound  = 400 * time.Millisecond
	)

	ipA := oasis.IP(10, 0, 0, 20)
	ipB := oasis.IP(10, 0, 0, 21)
	ipC := oasis.IP(10, 0, 99, 2)

	cfg := oasis.DefaultConfig()
	cfg.Engine.IdleBackoff = 200 * time.Microsecond
	cfg.Allocator.LeaseTimeout = 120 * time.Millisecond
	cfg.Storage.TelemetryEvery = 40 * time.Millisecond
	cfg.Engine.TelemetryEvery = 40 * time.Millisecond
	cfg.RaftReplicas = 3
	var group *sim.Group
	var pod *oasis.Pod
	switch mode {
	case chaosOnePartition:
		group = sim.NewGroup()
		pod = oasis.NewPodOnEngine(group.AddPartition(), cfg)
	case chaosPerHost:
		pod = oasis.NewPerHostPod(cfg)
	default:
		pod = oasis.NewPod(cfg)
	}
	host0 := pod.AddHost() // allocator + raft replica 0
	host1 := pod.AddHost() // nic1 + raft replica 1
	host2 := pod.AddHost() // nic2 + ssd1 backend + raft replica 2
	host3 := pod.AddHost() // backup NIC + backup SSD
	host4 := pod.AddHost() // both instances
	_ = host0
	pod.AddNIC(host1, false)       // nic1: instA's primary
	pod.AddNIC(host2, false)       // nic2: instB's primary
	pod.AddNIC(host3, true)        // nic3: pod-wide backup
	pod.AddSSD(host2, 1<<12)       // ssd1: volume primary
	pod.AddBackupSSD(host3, 1<<12) // ssd2: mirror / failover target
	instA := pod.AddInstance(host4, ipA)
	instB := pod.AddInstance(host4, ipB)
	client := pod.AddClient(ipC)
	vol := pod.AddVolume(instA, 1, 64)
	pod.Start()
	instA.RequestAllocation()

	plan := faults.Plan{
		Name: "chaos-campaign",
		Seed: 7,
		Events: []faults.Event{
			{At: 360 * time.Millisecond, Kind: faults.EngineStall, Target: "host2/storage-be1", Heal: 280 * time.Millisecond},
			{At: 800 * time.Millisecond, Kind: faults.HostCrash, Target: "host0", Heal: 200 * time.Millisecond},
			{At: 1280 * time.Millisecond, Kind: faults.PortFlap, Target: "nic1", Heal: 60 * time.Millisecond},
			{At: 1720 * time.Millisecond, Kind: faults.HostCrash, Target: "host2", Heal: 240 * time.Millisecond},
			{At: 2060 * time.Millisecond, Kind: faults.SSDFail, Target: "ssd1", Heal: 120 * time.Millisecond},
			{At: 2140 * time.Millisecond, Kind: faults.CXLDegrade, Target: "host4", Heal: 160 * time.Millisecond, LatMult: 4, BWFrac: 0.25},
			{At: 2240 * time.Millisecond, Kind: faults.NICLinkDown, Target: "nic1", Heal: 40 * time.Millisecond},
		},
	}
	if err := pod.RunFaultPlan(plan); err != nil {
		r.addf("SCHEDULE ERROR: %v", err)
		return r
	}

	// --- Writer: round-robin over lbaCount LBAs, full-block payloads that
	// embed the sequence number, so read-back verification can tell exactly
	// which write's data each block holds.
	fill := func(blk []byte, seq uint64, lba uint64) {
		binary.BigEndian.PutUint64(blk, seq)
		pat := byte(seq) ^ byte(lba)
		for i := 8; i < len(blk); i++ {
			blk[i] = pat
		}
	}
	var (
		acked       [lbaCount]uint64   // last sequence whose Write returned nil
		failedAfter [lbaCount][]uint64 // failed sequences since the last ack
		ackedWrites int
		writeErrs   int
		maxStall    oasis.Duration
		writerDone  bool
		mismatches  int
	)
	pod.Go("chaos-writer", func(p *oasis.Proc) {
		if !vol.WaitReady(p, 500*time.Millisecond) {
			return
		}
		blk := make([]byte, ssd.BlockSize)
		seq := uint64(0)
		last := p.Now()
		for p.Now() < writerStop {
			seq++
			lba := seq % lbaCount
			fill(blk, seq, lba)
			if err := vol.Write(p, lba, blk); err == nil {
				acked[lba] = seq
				failedAfter[lba] = failedAfter[lba][:0]
				ackedWrites++
			} else {
				writeErrs++
				failedAfter[lba] = append(failedAfter[lba], seq)
			}
			if gap := p.Now() - last; gap > maxStall {
				maxStall = gap
			}
			last = p.Now()
			p.Sleep(writeEvery)
		}
		// Read-back: each block must hold the data of the last acked write,
		// or of a later write that reported an error to the guest (a failed
		// write may still have landed — it promised nothing).
		for lba := uint64(0); lba < lbaCount; lba++ {
			want := acked[lba]
			if want == 0 {
				mismatches++
				continue
			}
			got, err := vol.Read(p, lba, 1)
			if err != nil {
				mismatches++
				continue
			}
			seq := binary.BigEndian.Uint64(got)
			ok := seq == want
			for _, f := range failedAfter[lba] {
				ok = ok || seq == f
			}
			pat := byte(seq) ^ byte(lba)
			for i := 8; ok && i < len(got); i++ {
				ok = got[i] == pat
			}
			if !ok {
				mismatches++
			}
		}
		writerDone = true
	})

	// --- Probe stream: the Fig. 13 UDP echo loop, run across the whole
	// campaign; losses are clustered into outage windows afterwards.
	pod.Go("chaos-echo", func(p *oasis.Proc) {
		conn, err := instA.Stack.ListenUDP(7)
		if err != nil {
			return
		}
		for {
			dg := conn.Recv(p)
			if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
				return
			}
		}
	})
	var (
		sent, lost int
		lossTimes  []oasis.Duration
	)
	// Spawned in the client's execution domain: the pod engine in serial
	// and one-partition modes (identical to pod.Go there), the client's own
	// partition in per-host mode.
	client.Go("chaos-prober", func(p *oasis.Proc) {
		conn, err := client.Stack.ListenUDP(0)
		if err != nil {
			return
		}
		p.Sleep(5 * time.Millisecond) // registration warmup
		for p.Now() < proberStop {
			sendAt := p.Now()
			if conn.SendTo(p, ipA, 7, []byte("chaos-probe-chaos")) != nil {
				continue
			}
			sent++
			if _, ok := conn.RecvTimeout(p, probeEvery); !ok {
				lost++
				lossTimes = append(lossTimes, sendAt)
			} else if wait := sendAt + probeEvery - p.Now(); wait > 0 {
				p.Sleep(wait)
			}
		}
	})

	// --- Allocation under allocator loss: instB asks for a NIC while
	// host0 (allocator + raft leader) is crashed; the request must be
	// retried by the frontend and satisfied soon after the host heals.
	var allocRecovery oasis.Duration
	pod.Go("chaos-instB", func(p *oasis.Proc) {
		p.Sleep(instBAsk)
		instB.RequestAllocation()
		if instB.WaitReady(p, 1500*time.Millisecond) {
			allocRecovery = p.Now() - instBAsk
		}
	})

	if group != nil {
		group.RunUntil(span + time.Second)
		group.Shutdown()
	} else {
		// Serial engine, or the per-host pod's own group (Pod.Run drives
		// it); either way the run is fixed-length with an external
		// Shutdown — in group mode a mid-window Shutdown from inside a
		// partition would not be a single global instant.
		pod.Run(span + time.Second)
		pod.Shutdown()
	}

	// Cluster probe losses into outage windows.
	type window struct{ start, end oasis.Duration }
	var windows []window
	for _, t := range lossTimes {
		if n := len(windows); n > 0 && t-windows[n-1].end < windowGap {
			windows[n-1].end = t
		} else {
			windows = append(windows, window{start: t, end: t})
		}
	}
	var maxWindow oasis.Duration
	for _, w := range windows {
		if d := w.end - w.start + probeEvery; d > maxWindow {
			maxWindow = d
		}
	}

	in := pod.Injector()
	if maxWindow > 0 {
		in.RecordRecovery(faults.PortFlap, maxWindow)
	}
	if allocRecovery > 0 {
		in.RecordRecovery(faults.HostCrash, allocRecovery)
	}
	if maxStall > 0 {
		in.RecordRecovery(faults.EngineStall, maxStall)
	}

	alloc := pod.Alloc
	sfe := host4.SFE
	fe := host4.FE

	// --- Invariants.
	var violations []string
	check := func(ok bool, what string) {
		if !ok {
			violations = append(violations, what)
		}
	}
	check(writerDone, "writer did not finish its read-back pass")
	check(mismatches == 0, "read-back found blocks not matching any acked/failed write")
	check(!vol.Lost(), "volume was declared lost despite a live backup drive")
	check(in.Errors() == 0, "fault handlers reported errors")
	check(in.Active() == 0, "faults left unhealed at end of campaign")
	check(maxWindow <= windowBound, "a packet-loss window exceeded the bound")
	for _, w := range windows {
		near := false
		for _, ev := range plan.Events {
			if w.start >= ev.At && w.start <= ev.At+faultSlack {
				near = true
			}
		}
		check(near, "a packet-loss window started away from any fault injection")
	}
	check(allocRecovery > 0 && allocRecovery <= allocBound, "allocation during allocator crash did not recover in bound")
	check(maxStall <= stallBound, "a guest write stalled past the bound")
	check(alloc.SSDFailovers >= 2, "expected at least two SSD failovers")
	check(alloc.Failovers >= 2, "expected at least two NIC failovers")
	check(alloc.HostDeaths >= 1, "host-death inference never fired")
	check(alloc.LeaseReconstructions >= 1, "lease reconstruction never fired")
	check(sfe.StaleRejected >= 1, "epoch fence never rejected a zombie completion")
	check(fe.AllocRetries >= 1, "frontend never retried the allocation RPC")

	// --- Report.
	r.addf("fault plan (replayable — feed back through faults.ParsePlan):")
	for _, line := range splitLines(plan.Encode()) {
		r.addf("  %s", line)
	}
	r.addf("injection log:")
	for _, line := range in.Log() {
		r.addf("  %s", line)
	}
	r.addf("writer: %d acked, %d errored, max inter-write stall %v", ackedWrites, writeErrs, maxStall)
	r.addf("probes: %d sent, %d lost, %d outage window(s), max %v", sent, lost, len(windows), maxWindow)
	for _, w := range windows {
		r.addf("  outage [%v, %v]", w.start, w.end)
	}
	r.addf("allocation requested at %v during allocator crash; recovered in %v", instBAsk, allocRecovery)
	r.addf("alloc: ssd_failovers=%d nic_failovers=%d host_deaths=%d lease_rebuilds=%d propose_retries=%d",
		alloc.SSDFailovers, alloc.Failovers, alloc.HostDeaths, alloc.LeaseReconstructions, alloc.ProposeRetries)
	r.addf("storage: rebinds=%d stale_rejected=%d mirror_writes=%d quarantined=%d volumes_lost=%d",
		sfe.Rebinds, sfe.StaleRejected, sfe.MirrorWrites, sfe.QuarantinedBufs, sfe.VolumesLost)
	r.addf("net fe: alloc_retries=%d", fe.AllocRetries)
	for _, k := range faults.Kinds() {
		if h := in.Recovery(k); h.Count() > 0 {
			r.addf("recovery[%v]: %s", k, h.Summary())
		}
	}
	if len(violations) == 0 {
		r.addf("invariants: OK (no acked write lost, loss windows bounded, recovery within bounds)")
	} else {
		r.addf("invariants: VIOLATED (%d)", len(violations))
		for _, v := range violations {
			r.addf("  - %s", v)
		}
	}
	r.Values["violations"] = float64(len(violations))
	r.Values["sent"] = float64(sent)
	r.Values["lost"] = float64(lost)
	r.Values["windows"] = float64(len(windows))
	r.Values["outage_max_ms"] = float64(maxWindow) / 1e6
	r.Values["alloc_recovery_ms"] = float64(allocRecovery) / 1e6
	r.Values["max_stall_ms"] = float64(maxStall) / 1e6
	r.Values["acked_writes"] = float64(ackedWrites)
	r.Values["write_errors"] = float64(writeErrs)
	r.Values["ssd_failovers"] = float64(alloc.SSDFailovers)
	r.Values["host_deaths"] = float64(alloc.HostDeaths)
	r.Values["stale_rejected"] = float64(sfe.StaleRejected)
	r.Values["rebinds"] = float64(sfe.Rebinds)
	return r
}

// splitLines splits on newlines, dropping a trailing empty line.
func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
