package experiments

import (
	"reflect"
	"testing"
)

// TestParallelMatchesSerial asserts the determinism contract of the parallel
// runner: any Parallelism() setting yields byte-identical reports. Each run
// owns a private engine and results merge in index order, so worker count
// must be invisible in the output. Run with -race, this also exercises the
// fan-out under the detector (see the race gate in scripts/verify.sh).
func TestParallelMatchesSerial(t *testing.T) {
	defer SetParallelism(1)
	for _, id := range []string{"fig2", "abl-counter"} {
		run, ok := Lookup(id)
		if !ok {
			t.Fatalf("experiment %q not in registry", id)
		}
		SetParallelism(1)
		serial := run(0.05)
		SetParallelism(8)
		parallel := run(0.05)
		if serial.String() != parallel.String() {
			t.Errorf("%s: parallel report differs from serial:\n--- serial ---\n%s--- parallel ---\n%s",
				id, serial.String(), parallel.String())
		}
		if !reflect.DeepEqual(serial.Values, parallel.Values) {
			t.Errorf("%s: parallel values differ from serial: %v vs %v",
				id, serial.Values, parallel.Values)
		}
	}
}
