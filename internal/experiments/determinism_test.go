package experiments

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"oasis/internal/metrics"
)

// The simulator promises byte-identical reruns: a single cooperative engine,
// a virtual clock, and no map iteration in any simulation-visible path. The
// unified core runtime threads every engine loop through one driver
// framework, so this guard re-runs a datapath-heavy experiment (Fig. 6) and
// a control-plane-heavy one (Fig. 13) twice each and insists the rendered
// reports match byte for byte.
func TestExperimentsDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  Runner
	}{
		{"fig6", Fig6},
		{"fig13", Fig13},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.run(0.1).String()
			b := tc.run(0.1).String()
			if a != b {
				t.Fatalf("%s not deterministic across reruns:\n--- first ---\n%s\n--- second ---\n%s", tc.name, a, b)
			}
		})
	}
}

// The observability layer extends the same promise to the structured Stats
// API: the snapshot of an identical run — every counter, every histogram
// quantile, every trace event timestamp — must serialize to byte-identical
// JSON. Instruments are sampled, never mutated, so registering them cannot
// perturb the run either.
func TestPodSnapshotDeterministic(t *testing.T) {
	run := func() []byte {
		e := buildNetPod(ModeOasis)
		e.startUDPEcho(7)
		e.udpEchoLoad(64, 50e3, 2*time.Millisecond, 20*time.Millisecond, &metrics.Histogram{})
		snap := e.pod.Stats()
		e.pod.Shutdown()
		return snap.JSON()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("pod snapshot JSON not deterministic across reruns:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}

// Racksweep stretches the same promise to rack scale: a 200+ host
// multi-pod cluster (one engine, eight pods, live migration + traffic)
// plus a par-fanned analytic sweep. The report must be byte-identical
// across reruns AND across -parallel settings — workers only ever sit
// between engines, never inside one.
func TestRacksweepDeterministicAcrossParallelism(t *testing.T) {
	if testing.Short() {
		// The race gate runs this package with -short: par.Do's race
		// coverage already comes from the parallel-runner tests, and
		// re-running a 208-host sim twice under the detector's ~10x
		// overhead buys nothing extra.
		t.Skip("skipping rack-scale byte-identity sweep in -short mode")
	}
	SetParallelism(1)
	a := Racksweep(0.05)
	SetParallelism(4)
	b := Racksweep(0.05).String()
	SetParallelism(1)
	if a.String() != b {
		t.Fatalf("racksweep not deterministic across -parallel:\n--- serial ---\n%s\n--- parallel ---\n%s", a.String(), b)
	}
	if a.Values["hosts"] < 200 {
		t.Fatalf("simulated cluster has %.0f hosts, want >= 200", a.Values["hosts"])
	}
	if a.Values["pods"] < 2 {
		t.Fatalf("racksweep must span multiple pods, got %.0f", a.Values["pods"])
	}
	if a.Values["migrations"] == 0 {
		t.Fatal("hot-spot rebalance performed no cross-pod migrations")
	}
	if a.Values["spread_final"] > a.Values["spread_skewed"]-2 {
		t.Fatalf("rebalance barely helped: spread %v -> %v", a.Values["spread_skewed"], a.Values["spread_final"])
	}
	if a.Values["echoes"] == 0 {
		t.Fatal("no traffic completed during the sweep")
	}
	if a.Values["pod64_nic"] >= a.Values["pod8_nic"] {
		t.Fatal("analytic sweep: stranding should fall as the pooling domain grows")
	}
}

// reportBody renders the mode-independent part of a report — the lines and
// the sorted values, but not the ID/Title header, which legitimately
// differs between the serial and partitioned registry entries.
func reportBody(r *Report) string {
	var b bytes.Buffer
	for _, l := range r.Lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	for _, k := range sortedKeys(r.Values) {
		fmt.Fprintf(&b, "%s=%v\n", k, r.Values[k])
	}
	return b.String()
}

// TestIntraRunPartitionedMatchesSerial is the acceptance gate for
// partitioned execution: the same experiment run serially (all pods on one
// engine, one goroutine) and partitioned (one sim partition per pod,
// advancing in parallel under conservative windows) must produce
// byte-identical report bodies. verify.sh re-runs this test at
// GOMAXPROCS=1, 2, and 8 — the schedule of OS threads must not leak into
// the virtual timeline.
func TestIntraRunPartitionedMatchesSerial(t *testing.T) {
	if testing.Short() {
		// The race gate covers the partitioned goroutines via
		// internal/sim's and the cluster's own race-mode tests; the full
		// double runs here are too slow under the detector.
		t.Skip("skipping intra-run byte-identity sweep in -short mode")
	}
	t.Run("racksweep", func(t *testing.T) {
		serial := reportBody(Racksweep(0.05))
		part := reportBody(RacksweepPartitioned(0.05))
		if serial != part {
			t.Fatalf("racksweep diverges between serial and partitioned execution:\n--- serial ---\n%s--- partitioned ---\n%s", serial, part)
		}
	})
	t.Run("chaos", func(t *testing.T) {
		serial := reportBody(Chaos(1.0))
		part := reportBody(ChaosPartitioned(1.0))
		if serial != part {
			t.Fatalf("chaos diverges between serial and one-partition group execution:\n--- serial ---\n%s--- partitioned ---\n%s", serial, part)
		}
	})
	t.Run("grayfail", func(t *testing.T) {
		serial := reportBody(Grayfail(1.0))
		part := reportBody(GrayfailPartitioned(1.0))
		if serial != part {
			t.Fatalf("grayfail diverges between serial and one-partition group execution:\n--- serial ---\n%s--- partitioned ---\n%s", serial, part)
		}
	})
}

// TestPerHostPartitionedDeterministic is the acceptance gate for per-host
// partitioned execution. Per-host mode splits every client onto a
// partition of its own behind a switch RemotePort, which adds real modeled
// cable latency — a different physical topology, so its reports are NOT
// compared against the serial runners. The promise is the per-host
// timeline itself: byte-identical report bodies across reruns, with every
// chaos recovery invariant intact. verify.sh re-runs this test at
// GOMAXPROCS=1, 2, and 8 — with a partition per client, the thread count
// must still be invisible in the virtual timeline.
func TestPerHostPartitionedDeterministic(t *testing.T) {
	if testing.Short() {
		// Same rationale as the serial-vs-partitioned sweep above: race-mode
		// coverage of the partition goroutines comes from internal/sim and
		// the root-package per-host tests.
		t.Skip("skipping per-host byte-identity sweep in -short mode")
	}
	t.Run("racksweep", func(t *testing.T) {
		a := RacksweepPerHost(0.05)
		b := reportBody(RacksweepPerHost(0.05))
		if reportBody(a) != b {
			t.Fatalf("racksweep-perhost diverges across reruns:\n--- first ---\n%s--- second ---\n%s", reportBody(a), b)
		}
		if a.Values["echoes"] == 0 {
			t.Fatal("no traffic completed with clients on their own partitions")
		}
		if a.Values["migrations"] == 0 {
			t.Fatal("hot-spot rebalance performed no cross-pod migrations in per-host mode")
		}
	})
	t.Run("chaos", func(t *testing.T) {
		a := ChaosPerHost(1.0)
		b := reportBody(ChaosPerHost(1.0))
		if reportBody(a) != b {
			t.Fatalf("chaos-perhost diverges across reruns:\n--- first ---\n%s--- second ---\n%s", reportBody(a), b)
		}
		if a.Values["violations"] != 0 {
			t.Fatalf("chaos-perhost violated %v recovery invariants", a.Values["violations"])
		}
	})
	t.Run("grayfail", func(t *testing.T) {
		a := GrayfailPerHost(1.0)
		b := reportBody(GrayfailPerHost(1.0))
		if reportBody(a) != b {
			t.Fatalf("grayfail-perhost diverges across reruns:\n--- first ---\n%s--- second ---\n%s", reportBody(a), b)
		}
		if a.Values["violations"] != 0 {
			t.Fatalf("grayfail-perhost violated %v health-scorer invariants", a.Values["violations"])
		}
	})
}
