package experiments

import "testing"

// The simulator promises byte-identical reruns: a single cooperative engine,
// a virtual clock, and no map iteration in any simulation-visible path. The
// unified core runtime threads every engine loop through one driver
// framework, so this guard re-runs a datapath-heavy experiment (Fig. 6) and
// a control-plane-heavy one (Fig. 13) twice each and insists the rendered
// reports match byte for byte.
func TestExperimentsDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  Runner
	}{
		{"fig6", Fig6},
		{"fig13", Fig13},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.run(0.1).String()
			b := tc.run(0.1).String()
			if a != b {
				t.Fatalf("%s not deterministic across reruns:\n--- first ---\n%s\n--- second ---\n%s", tc.name, a, b)
			}
		})
	}
}
