package experiments

import (
	"bytes"
	"testing"
	"time"

	"oasis/internal/metrics"
)

// The simulator promises byte-identical reruns: a single cooperative engine,
// a virtual clock, and no map iteration in any simulation-visible path. The
// unified core runtime threads every engine loop through one driver
// framework, so this guard re-runs a datapath-heavy experiment (Fig. 6) and
// a control-plane-heavy one (Fig. 13) twice each and insists the rendered
// reports match byte for byte.
func TestExperimentsDeterministic(t *testing.T) {
	for _, tc := range []struct {
		name string
		run  Runner
	}{
		{"fig6", Fig6},
		{"fig13", Fig13},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.run(0.1).String()
			b := tc.run(0.1).String()
			if a != b {
				t.Fatalf("%s not deterministic across reruns:\n--- first ---\n%s\n--- second ---\n%s", tc.name, a, b)
			}
		})
	}
}

// The observability layer extends the same promise to the structured Stats
// API: the snapshot of an identical run — every counter, every histogram
// quantile, every trace event timestamp — must serialize to byte-identical
// JSON. Instruments are sampled, never mutated, so registering them cannot
// perturb the run either.
func TestPodSnapshotDeterministic(t *testing.T) {
	run := func() []byte {
		e := buildNetPod(ModeOasis)
		e.startUDPEcho(7)
		e.udpEchoLoad(64, 50e3, 2*time.Millisecond, 20*time.Millisecond, &metrics.Histogram{})
		snap := e.pod.Stats()
		e.pod.Shutdown()
		return snap.JSON()
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("pod snapshot JSON not deterministic across reruns:\n--- first ---\n%s\n--- second ---\n%s", a, b)
	}
}
