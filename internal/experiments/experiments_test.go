package experiments

import (
	"testing"
)

// Tests run each experiment at a reduced scale and assert the paper's
// qualitative shapes (who wins, by roughly what factor). EXPERIMENTS.md
// records the full-scale paper-vs-measured numbers.

func TestFig2Shapes(t *testing.T) {
	r := Fig2(0.5)
	if r.Values["base_nic"] < 0.20 || r.Values["base_nic"] > 0.35 {
		t.Errorf("baseline NIC stranding = %.3f, want ≈ 0.27", r.Values["base_nic"])
	}
	if r.Values["base_ssd"] < 0.26 || r.Values["base_ssd"] > 0.40 {
		t.Errorf("baseline SSD stranding = %.3f, want ≈ 0.33", r.Values["base_ssd"])
	}
	if r.Values["pod8_nic"] >= r.Values["base_nic"] {
		t.Error("pod-8 NIC stranding should drop below baseline")
	}
	if r.Values["pod8_ssd"] >= r.Values["base_ssd"] {
		t.Error("pod-8 SSD stranding should drop below baseline")
	}
	if r.Values["pod8_nics_per_pod"] > 7.6 {
		t.Errorf("pod-8 NICs/pod = %.2f; pooling should save NICs", r.Values["pod8_nics_per_pod"])
	}
}

func TestFig3Burstiness(t *testing.T) {
	r := Fig3(0.5)
	if r.Values["host1_p9999"] < 0.39*0.6 || r.Values["host1_p9999"] > 0.39*1.4 {
		t.Errorf("host1 P99.99 = %.3f, want ≈ 0.39", r.Values["host1_p9999"])
	}
	if r.Values["host1_p99"] > 0.05 {
		t.Errorf("host1 P99 = %.3f, want near zero", r.Values["host1_p99"])
	}
	if r.Values["host1_peak_gbps"] < 20 {
		t.Errorf("host1 peak = %.1f Gbps, want ~40", r.Values["host1_peak_gbps"])
	}
}

func TestTable1DeviceModels(t *testing.T) {
	r := Table1(1)
	if r.Values["nic_mops"] < 2 || r.Values["nic_mops"] > 8 {
		t.Errorf("NIC packet rate = %.1f MOp/s, want a few MOp/s", r.Values["nic_mops"])
	}
	if r.Values["ssd_gbps"] != 5.0 {
		t.Errorf("SSD bandwidth = %.1f GB/s, want 5", r.Values["ssd_gbps"])
	}
	if r.Values["ssd_mops"] < 0.3 || r.Values["ssd_mops"] > 0.7 {
		t.Errorf("SSD op rate = %.2f MOp/s, want ≈ 0.5", r.Values["ssd_mops"])
	}
}

func TestTable2Aggregation(t *testing.T) {
	r := Table2(0.5)
	if r.Values["rackA_agg"] < 0.05 || r.Values["rackA_agg"] > 0.20 {
		t.Errorf("rack A aggregated P99.99 = %.3f, want ≈ 0.10", r.Values["rackA_agg"])
	}
	if r.Values["rackB_agg"] < 0.10 || r.Values["rackB_agg"] > 0.35 {
		t.Errorf("rack B aggregated P99.99 = %.3f, want ≈ 0.20", r.Values["rackB_agg"])
	}
}

func TestFig6DesignLadder(t *testing.T) {
	r := Fig6(0.5)
	bypass := r.Values["sat_0"]
	naive := r.Values["sat_1"]
	invC := r.Values["sat_2"]
	invP := r.Values["sat_3"]
	if !(bypass < naive && naive < invC) {
		t.Errorf("design ladder broken: %.1f / %.1f / %.1f", bypass, naive, invC)
	}
	if invC < 10*bypass {
		t.Errorf("+invalidate-consumed (%.1f) should be ~order of magnitude over bypass (%.1f)", invC, bypass)
	}
	if invP < 14 {
		t.Errorf("final design = %.1f MOp/s, must beat the 14 MOp/s target", invP)
	}
	if r.Values["lat14_invPrefetched_us"] >= r.Values["lat14_invConsumed_us"] {
		t.Errorf("④ latency at 14 MOp/s (%.2fµs) should beat ③ (%.2fµs)",
			r.Values["lat14_invPrefetched_us"], r.Values["lat14_invConsumed_us"])
	}
	if r.Values["lat14_invPrefetched_us"] > 1.0 {
		t.Errorf("④ at target load = %.2fµs, want ≲ 0.7µs", r.Values["lat14_invPrefetched_us"])
	}
}

func TestFig9MemcachedOverheadBand(t *testing.T) {
	r := Fig9(0.3)
	d := r.Values["memcached_c1_delta_p50_us"]
	if d < 1 || d > 10 {
		t.Errorf("memcached Oasis overhead = %.1f µs, want single-digit µs (paper 4-7)", d)
	}
}

func TestFig10OverheadSizeIndependent(t *testing.T) {
	r := Fig10(0.3)
	small := r.Values["s75_r5000_delta_p50_us"]
	large := r.Values["s1500_r5000_delta_p50_us"]
	if small < 1 || small > 12 {
		t.Errorf("75 B overhead = %.1f µs, want single-digit µs", small)
	}
	if large < 1 || large > 12 {
		t.Errorf("1500 B overhead = %.1f µs, want single-digit µs", large)
	}
	// Largely size-independent: within a few µs of each other.
	if diff := large - small; diff < -4 || diff > 4 {
		t.Errorf("overhead varies %.1f µs between sizes, want ≈ constant", diff)
	}
}

func TestFig11BreakdownAttribution(t *testing.T) {
	r := Fig11(0.3)
	bufCost := r.Values["cxlbuf_minus_base_us"]
	msgCost := r.Values["oasis_minus_cxlbuf_us"]
	if bufCost > 2.5 {
		t.Errorf("CXL buffers alone added %.1f µs, paper says almost nothing", bufCost)
	}
	if msgCost < bufCost {
		t.Errorf("message passing (%.1f µs) must dominate buffer placement (%.1f µs)", msgCost, bufCost)
	}
}

func TestTable3BandwidthBreakdown(t *testing.T) {
	r := Table3(0.4)
	idleMsg := r.Values["Idle_message"]
	idlePay := r.Values["Idle_payload"]
	if idlePay > 0.01 {
		t.Errorf("idle payload bandwidth = %.2f GB/s, want ~0", idlePay)
	}
	if idleMsg < 0.05 || idleMsg > 1.5 {
		t.Errorf("idle message bandwidth = %.2f GB/s, want order 0.2-1", idleMsg)
	}
	smallPay := r.Values["Busy (75 B)_payload"]
	largePay := r.Values["Busy (1500 B)_payload"]
	if largePay < 4*smallPay {
		t.Errorf("1500 B payload bandwidth (%.2f) should dwarf 75 B's (%.2f)", largePay, smallPay)
	}
	largeMsg := r.Values["Busy (1500 B)_message"]
	if largePay < 2*largeMsg {
		t.Errorf("at 1500 B, payload (%.2f) must dominate messages (%.2f)", largePay, largeMsg)
	}
}

func TestFig12MultiplexingInterference(t *testing.T) {
	r := Fig12(0.25)
	// Multiplexing must not blow up tail latency (paper: +1 µs at most).
	for _, h := range []string{"h1", "h2"} {
		base := r.Values["base_"+h+"_p99_us"]
		mux := r.Values["mux_"+h+"_p99_us"]
		if mux > base+6 {
			t.Errorf("%s: multiplexed P99 %.1fµs vs own-NIC %.1fµs — too much interference", h, mux, base)
		}
	}
	if r.Values["util_multiplexed"] < 1.8*r.Values["util_own_nics"] {
		t.Error("multiplexing should ~double aggregate utilization")
	}
}

func TestFig13FailoverWindow(t *testing.T) {
	r := Fig13(0.2) // 2 s run, failure at 1 s
	if r.Values["failovers"] != 1 {
		t.Fatalf("allocator failovers = %v, want 1", r.Values["failovers"])
	}
	outage := r.Values["outage_ms"]
	if outage < 5 || outage > 120 {
		t.Errorf("failover interruption = %.0f ms, want tens of ms (paper 38 ms)", outage)
	}
	if r.Values["lost"] < 3 {
		t.Error("expected measurable probe loss during the outage")
	}
}

func TestFig14TCPRecovery(t *testing.T) {
	r := Fig14(0.2) // 2 s run
	rec := r.Values["recovery_ms"]
	if rec <= 0 {
		t.Fatal("memcached never recovered after failover")
	}
	if rec > 400 {
		t.Errorf("recovery = %.0f ms, want low hundreds of ms (paper 133 ms)", rec)
	}
	if rec < 10 {
		t.Errorf("recovery = %.0f ms; TCP retransmission should make this slower than the UDP outage", rec)
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig2", "fig3", "tab1", "tab2", "fig6", "fig8", "fig9", "fig10", "fig11", "tab3", "fig12", "fig13", "fig14",
		"abl-counter", "abl-inspect", "abl-failover", "abl-coherent", "abl-sharding", "abl-qos", "abl-storage",
		"chaos", "chaos-par", "chaos-perhost", "grayfail", "grayfail-par", "grayfail-perhost", "blackout",
		"racksweep", "racksweep-par", "racksweep-perhost"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry[%d] = %s, want %s", i, got[i], want[i])
		}
	}
	if _, ok := Lookup("fig6"); !ok {
		t.Fatal("Lookup failed")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup found a nonexistent experiment")
	}
}

func TestAblCounterBatchAmortizes(t *testing.T) {
	r := AblCounterBatch(0.5)
	if r.Values["batch4096"] < 2*r.Values["batch1"] {
		t.Errorf("batched counter (%.1f MOp/s) should clearly beat per-message updates (%.1f)",
			r.Values["batch4096"], r.Values["batch1"])
	}
}

func TestAblBackendInspectCosts(t *testing.T) {
	r := AblBackendInspect(0.4)
	if r.Values["inspected"] < 10 {
		t.Fatalf("inspection path never exercised: %v", r.Values["inspected"])
	}
	if r.Values["inspect_p50_us"] <= r.Values["tagged_p50_us"] {
		t.Errorf("inspection (%.2fµs) should cost more than flow tagging (%.2fµs)",
			r.Values["inspect_p50_us"], r.Values["tagged_p50_us"])
	}
}

func TestAblFailoverMechanisms(t *testing.T) {
	r := AblFailoverMechanism(0.5)
	borrow, garp := r.Values["borrow_ms"], r.Values["garp_ms"]
	if borrow < 5 || borrow > 120 {
		t.Errorf("MAC-borrow interruption = %.0f ms, want tens of ms", borrow)
	}
	if garp < borrow {
		t.Errorf("GARP-only (%.0f ms) should not recover faster than MAC borrowing (%.0f ms)", garp, borrow)
	}
}

func TestAblHWCoherentChannel(t *testing.T) {
	r := AblHWCoherent(0.5)
	if r.Values["hw_mops"] < r.Values["sw_mops"]*0.9 {
		t.Errorf("HW-coherent channel (%.1f MOp/s) should at least match software coherence (%.1f)",
			r.Values["hw_mops"], r.Values["sw_mops"])
	}
}

func TestAblShardingScalesThroughput(t *testing.T) {
	r := AblSharding(0.5)
	s1, s4 := r.Values["shards1"], r.Values["shards4"]
	if s4 < 2.5*s1 {
		t.Errorf("4 shards (%.1f MOp/s) should scale well beyond 1 shard (%.1f)", s4, s1)
	}
}

func TestAblQoSProtectsSignaling(t *testing.T) {
	r := AblQoS(0.5)
	if r.Values["qos_p99_us"] >= r.Values["noqos_p99_us"] {
		t.Errorf("QoS (%.2fµs) should beat no-QoS (%.2fµs) under an OLAP flood",
			r.Values["qos_p99_us"], r.Values["noqos_p99_us"])
	}
	if r.Values["noqos_p99_us"] < 1.5 {
		t.Errorf("no-QoS p99 = %.2fµs; the flood should visibly inflate latency", r.Values["noqos_p99_us"])
	}
}

func TestAblStorageShapes(t *testing.T) {
	r := AblStorage(0.5)
	// Depth-1 latency ≈ device read + engine signaling (≈ 90 µs).
	if d1 := r.Values["d1_p50_us"]; d1 < 80 || d1 > 130 {
		t.Errorf("depth-1 p50 = %.1f µs, want ≈ 90", d1)
	}
	// Depth lifts IOPS toward the device's 500 kIOPS ceiling, never past.
	d64 := r.Values["d64_kiops"]
	if d64 < 4*r.Values["d1_kiops"] {
		t.Errorf("depth-64 (%.0f kIOPS) should be several × depth-1 (%.0f)", d64, r.Values["d1_kiops"])
	}
	if d64 > 520 {
		t.Errorf("depth-64 = %.0f kIOPS exceeds the device's 500 kIOPS model", d64)
	}
}
