package experiments

import (
	"time"

	"oasis/internal/nic"
	"oasis/internal/ssd"
	"oasis/internal/strand"
	"oasis/internal/trace"
)

// Fig2 reproduces Figure 2: average stranded resources vs pod size.
func Fig2(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("fig2", "Stranded resources vs. pod size (pooling simulation)")
	cfg := strand.DefaultConfig()
	cfg.Hosts = int(float64(cfg.Hosts) * scale)
	if cfg.Hosts < 64 {
		cfg.Hosts = 64
	}
	cfg.Workers = Parallelism()
	results := strand.Run(cfg)
	r.addf("%-8s %8s %8s %8s %8s %10s %11s", "pod", "CPU%", "Mem%", "NIC%", "SSD%", "NICs/pod", "drives/pod")
	for _, res := range results {
		r.addf("%-8d %8.1f %8.1f %8.1f %8.1f %10.2f %11.1f",
			res.PodSize, res.StrandedCPU*100, res.StrandedMem*100,
			res.StrandedNIC*100, res.StrandedSSD*100, res.NICsPerPod, res.DrivesPerPod)
		k := func(name string) string { return name }
		_ = k
		if res.PodSize == 1 {
			r.Values["base_nic"] = res.StrandedNIC
			r.Values["base_ssd"] = res.StrandedSSD
			r.Values["base_cpu"] = res.StrandedCPU
			r.Values["base_mem"] = res.StrandedMem
		}
		if res.PodSize == 8 {
			r.Values["pod8_nic"] = res.StrandedNIC
			r.Values["pod8_ssd"] = res.StrandedSSD
			r.Values["pod8_nics_per_pod"] = res.NICsPerPod
			r.Values["pod8_drives_per_pod"] = res.DrivesPerPod
		}
	}
	r.addf("paper: pod 1 = 27%% NIC / 33%% SSD / 5%% CPU / 9%% mem stranded;")
	r.addf("       pod 8 provisions ~16%% less NIC bandwidth, ~26%% less SSD capacity")
	return r
}

// Fig3 reproduces Figure 3: inbound traffic of four busy hosts over one
// second, at 10 µs resolution.
func Fig3(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("fig3", "Inbound NIC traffic of 4 hosts (bursty trace, 10 µs buckets)")
	span := time.Duration(float64(time.Second) * scale)
	traces := trace.RackA(span)
	bucket := 10 * time.Microsecond
	for i, tr := range traces {
		s := tr.BandwidthSeries(bucket)
		_, peakBytes := s.MaxBin()
		peakGbps := peakBytes * 8 / bucket.Seconds() / 1e9
		meanGbps := tr.MeanUtil() * tr.LinkBps / 1e9
		r.addf("host %d: peak %6.1f Gbps  mean %6.3f Gbps  P99 util %5.1f%%  P99.99 util %5.1f%%  (%d packets)",
			i+1, peakGbps, meanGbps,
			tr.UtilizationAt(99, bucket)*100, tr.UtilizationAt(99.99, bucket)*100,
			len(tr.Events))
		if i == 0 {
			r.Values["host1_p9999"] = tr.UtilizationAt(99.99, bucket)
			r.Values["host1_p99"] = tr.UtilizationAt(99, bucket)
			r.Values["host1_peak_gbps"] = peakGbps
		}
	}
	r.addf("paper: host 1 bursts reach ~40 Gbps; P99 < 3%%, P99.99 = 39%% — bursty, mostly idle")
	return r
}

// Table1 prints (and checks) the device performance requirements the
// substrate models are parameterized to.
func Table1(scale float64) *Report {
	r := newReport("tab1", "NIC/SSD performance requirements (device model parameters)")
	n := nic.DefaultParams()
	nicOps := 1.0 / n.PacketCost.Seconds() / 1e6
	r.addf("%-5s %12s %14s %12s", "type", "bandwidth", "IOPS", "latency")
	r.addf("%-5s %12s %11.1f MOp/s %12s", "NIC", "12.5 GB/s", nicOps, "50-110 µs (cloud e2e)")
	s := ssd.DefaultParams()
	ssdOps := 1.0 / s.OpCost.Seconds() / 1e6 * float64(1)
	r.addf("%-5s %9.1f GB/s %11.1f MOp/s %12v", "SSD", s.Bandwidth/1e9, ssdOps, s.ReadLatency+s.OpCost)
	r.Values["nic_mops"] = nicOps
	r.Values["ssd_gbps"] = s.Bandwidth / 1e9
	r.Values["ssd_mops"] = ssdOps
	r.addf("paper Table 1: NIC 26 GB/s¹ & 4 MOp/s/core & 50-110 µs; SSD 5 GB/s & 0.5 MOp/s & 100 µs")
	r.addf("¹ the paper's 26 GB/s counts a 200 Gbit NIC; the evaluation testbed (and this model) uses 100 Gbit")
	return r
}

// Table2 reproduces Table 2: per-host and aggregated P99.99 NIC
// utilization for racks A and B.
func Table2(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("tab2", "NIC bandwidth utilization at P99.99 (10 µs buckets)")
	span := time.Duration(float64(time.Second) * scale)
	bucket := 10 * time.Microsecond
	rows := []struct {
		name    string
		traces  []*trace.PacketTrace
		linkBps float64
		paper   []float64
		paperAg float64
	}{
		{"Rack A (In)", trace.RackA(span), 100e9, []float64{0.39, 0.30, 0.0, 0.23}, 0.10},
		{"Rack B (In)", trace.RackB(span), 50e9, []float64{0.39, 0.75, 0.52, 0.79}, 0.20},
	}
	r.addf("%-12s %8s %8s %8s %8s %12s", "", "host1", "host2", "host3", "host4", "aggregated")
	for _, row := range rows {
		var utils []float64
		for _, tr := range row.traces {
			utils = append(utils, tr.UtilizationAt(99.99, bucket))
		}
		agg := trace.Merge(4*row.linkBps, row.traces...).UtilizationAt(99.99, bucket)
		r.addf("%-12s %7.0f%% %7.0f%% %7.0f%% %7.0f%% %11.0f%%",
			row.name, utils[0]*100, utils[1]*100, utils[2]*100, utils[3]*100, agg*100)
		r.addf("%-12s %7.0f%% %7.0f%% %7.0f%% %7.0f%% %11.0f%%  (paper)",
			"", row.paper[0]*100, row.paper[1]*100, row.paper[2]*100, row.paper[3]*100, row.paperAg*100)
		if row.name == "Rack A (In)" {
			r.Values["rackA_agg"] = agg
			for i, u := range utils {
				r.Values[ks("rackA_host", i+1)] = u
			}
		} else {
			r.Values["rackB_agg"] = agg
		}
	}
	return r
}

func ks(prefix string, i int) string {
	return prefix + string(rune('0'+i))
}
