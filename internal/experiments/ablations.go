package experiments

import (
	"encoding/binary"
	"fmt"
	"time"

	"oasis"
	"oasis/internal/cache"
	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/metrics"
	"oasis/internal/msgchan"
	"oasis/internal/sim"
	"oasis/internal/ssd"
	"oasis/internal/storengine"
)

// Ablations quantify the design choices DESIGN.md §5 calls out beyond the
// four channel designs Figure 6 already sweeps.

// AblRegistry lists the ablation experiments (run via oasis-bench too).
func AblRegistry() []struct {
	ID  string
	Run Runner
} {
	return []struct {
		ID  string
		Run Runner
	}{
		{"abl-counter", AblCounterBatch},
		{"abl-inspect", AblBackendInspect},
		{"abl-failover", AblFailoverMechanism},
		{"abl-coherent", AblHWCoherent},
	}
}

// AblCounterBatch sweeps the consumed-counter update batch (§4): updating
// every message forces a CXL round per message on both sides; batching to
// half the ring amortizes it to noise.
func AblCounterBatch(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("abl-counter", "Ablation: consumed-counter update batch size (§4)")
	window := time.Duration(float64(2*time.Millisecond) * scale)
	if window < 500*time.Microsecond {
		window = 500 * time.Microsecond
	}
	batches := []int{1, 16, 256, 4096}
	r.addf("%-12s %12s %14s %14s", "batch", "MOp/s", "counter wr/s", "sender rereads/s")
	type cbOut struct{ tput, updates, rereads float64 }
	results := parRun(len(batches), func(i int) cbOut {
		tput, updates, rereads := runCounterBatch(batches[i], window)
		return cbOut{tput, updates, rereads}
	})
	for i, batch := range batches {
		res := results[i]
		r.addf("%-12d %12.1f %14.0f %14.0f", batch, res.tput, res.updates, res.rereads)
		if batch == 1 {
			r.Values["batch1"] = res.tput
		}
		if batch == 4096 {
			r.Values["batch4096"] = res.tput
		}
	}
	r.addf("paper (§4): the receiver updates the counter only after a large batch")
	r.addf("(half the ring) and the sender caches it, re-reading only on exhaustion")
	return r
}

func runCounterBatch(batch int, window sim.Duration) (mops, updates, rereads float64) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<24, cxl.DefaultParams())
	cfg := msgchan.DefaultConfig()
	cfg.CounterBatch = batch
	region, err := pool.Alloc(msgchan.RegionBytes(cfg))
	if err != nil {
		panic(err)
	}
	ch, err := msgchan.New(region, cfg)
	if err != nil {
		panic(err)
	}
	tx := msgchan.NewSender(ch, pool.AttachPort("tx"), cache.DefaultParams())
	rx := msgchan.NewReceiver(ch, cache.New(eng, pool.AttachPort("rx"), cache.DefaultParams()))
	eng.Go("tx", func(p *sim.Proc) {
		payload := make([]byte, 8)
		for p.Now() < window {
			if !tx.TrySend(p, payload) {
				p.Sleep(300 * time.Nanosecond)
			}
		}
	})
	eng.Go("rx", func(p *sim.Proc) {
		for p.Now() < window {
			if _, ok := rx.Poll(p); ok {
				p.Sleep(10 * time.Nanosecond)
			}
		}
	})
	eng.RunUntil(window)
	eng.Shutdown()
	sec := window.Seconds()
	return float64(rx.Received) / sec / 1e6, float64(rx.CounterUpdates) / sec, float64(tx.CounterReads) / sec
}

// AblBackendInspect quantifies §3.2.1/§3.3.1: what flow tagging buys. With
// tagging disabled, the backend inspects every RX payload, bringing buffer
// lines into its cache (extra CXL reads + invalidations on the critical
// path) and making subsequent DMA snoop its cache.
func AblBackendInspect(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("abl-inspect", "Ablation: flow tagging vs backend payload inspection (§3.3.1)")
	window := time.Duration(float64(10*time.Millisecond) * scale)
	if window < 3*time.Millisecond {
		window = 3 * time.Millisecond
	}
	run := func(disableTagging bool) (*metrics.Histogram, int64, int64) {
		e := buildNetPod(ModeOasis)
		e.startUDPEcho(7)
		if disableTagging {
			// Strip flow rules as the backend installs them: a registration
			// ack means the rule exists; remove it just after warmup.
			e.pod.Eng.At(time.Millisecond, func() {
				e.nic.Dev.RemoveFlowRule(uint32(serverIP))
			})
		}
		var hist metrics.Histogram
		e.udpEchoLoad(udpPayload(1500), 20e3, window/4, window, &hist)
		st := e.nic.BE.Host().Cache.Stats()
		return &hist, e.nic.BE.Inspected, st.SnoopWritebacks + st.SnoopDrops
	}
	type inspOut struct {
		hist      *metrics.Histogram
		inspected int64
		snoops    int64
	}
	results := parRun(2, func(i int) inspOut {
		h, n, s := run(i == 1)
		return inspOut{h, n, s}
	})
	tagged := results[0].hist
	inspected, nInspected, snoops := results[1].hist, results[1].inspected, results[1].snoops
	r.addf("%-22s %10s %10s %12s %8s", "config", "p50", "p99", "inspected", "snoops")
	r.addf("%-22s %10v %10v %12d %8s", "flow tagging", tagged.Percentile(50), tagged.Percentile(99), 0, "-")
	r.addf("%-22s %10v %10v %12d %8d", "backend inspects", inspected.Percentile(50), inspected.Percentile(99), nInspected, snoops)
	r.Values["tagged_p50_us"] = float64(tagged.Percentile(50)) / 1e3
	r.Values["inspect_p50_us"] = float64(inspected.Percentile(50)) / 1e3
	r.Values["inspected"] = float64(nInspected)
	r.Values["snoops"] = float64(snoops)
	r.addf("paper: the backend relies on NIC flow tags so it never inspects RX buffers,")
	r.addf("keeping its caches free of I/O buffer lines and DMA snoop-free (§3.2.1)")
	return r
}

// AblFailoverMechanism compares the paper's backup-NIC + MAC borrowing
// (§3.3.3) against a GARP-only strategy where the instance merely
// re-announces its new MAC after the frontends switch NICs — the path a
// design without MAC borrowing would take.
func AblFailoverMechanism(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("abl-failover", "Ablation: MAC borrowing vs GARP-only failover (§3.3.3)")
	span := time.Duration(float64(3*time.Second) * scale)
	if span < time.Second {
		span = time.Second
	}
	trials := parRun(2, func(i int) time.Duration {
		return measureFailover(span, i == 0)
	})
	borrow, garpOnly := trials[0], trials[1]
	r.addf("%-22s %14s", "mechanism", "interruption")
	r.addf("%-22s %14v", "MAC borrowing", borrow)
	r.addf("%-22s %14v", "GARP-only", garpOnly)
	r.Values["borrow_ms"] = float64(borrow) / 1e6
	r.Values["garp_ms"] = float64(garpOnly) / 1e6
	r.addf("MAC borrowing reroutes inbound traffic with a single switch-table update;")
	r.addf("GARP-only additionally waits for the instance's announcement to propagate")
	return r
}

// measureFailover runs the Fig. 13 scenario, optionally suppressing the
// backup backend's MAC borrow so recovery relies on the instance's GARP.
func measureFailover(span time.Duration, macBorrow bool) time.Duration {
	f := buildFailoverPod()
	f.pod.Go("echo-server", func(p *oasis.Proc) {
		conn, err := f.inst.Stack.ListenUDP(7)
		if err != nil {
			return
		}
		for {
			dg := conn.Recv(p)
			if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
				return
			}
		}
	})
	failAt := span / 2
	f.pod.Eng.At(failAt, func() {
		f.pod.FailNICPort(f.nic.ID)
		if !macBorrow {
			// Suppress the borrow by yanking the backup's knowledge of the
			// failed NIC's MAC; the GARP path remains: after the frontends
			// repoint, the instance's stack announces via gratuitous ARP.
			f.backup.BE.SuppressMACBorrow()
			// GARP-only designs trigger the announcement on failover; the
			// frontends' switch to the backup changes the instance's MAC.
			f.pod.Eng.After(time.Millisecond, func() {}) // keep ordering explicit
		}
	})
	if !macBorrow {
		// In the GARP-only design the instance re-announces with the BACKUP
		// NIC's MAC after failover (like a migration); poll until the
		// frontends have switched, then announce.
		f.pod.Go("garp-kicker", func(p *oasis.Proc) {
			for p.Now() < failAt {
				p.Sleep(time.Millisecond)
			}
			for f.pod.Hosts[0].FE.FailoversApplied == 0 {
				p.Sleep(time.Millisecond)
			}
			f.inst.Stack.GratuitousARP()
		})
	}
	var firstLoss, lastLoss oasis.Duration
	f.pod.Go("client", func(p *oasis.Proc) {
		conn, err := f.client.Stack.ListenUDP(0)
		if err != nil {
			return
		}
		p.Sleep(5 * time.Millisecond)
		for p.Now() < span {
			at := p.Now()
			if conn.SendTo(p, serverIP, 7, []byte("probe")) != nil {
				continue
			}
			if _, ok := conn.RecvTimeout(p, time.Millisecond); !ok {
				if firstLoss == 0 {
					firstLoss = at
				}
				lastLoss = at
			} else if wait := at + time.Millisecond - p.Now(); wait > 0 {
				p.Sleep(wait)
			}
		}
		f.pod.Shutdown()
	})
	f.pod.Run(span + time.Second)
	if lastLoss == 0 {
		return 0
	}
	return lastLoss - firstLoss + time.Millisecond
}

// AblHWCoherent evaluates the paper's §6 "CXL 3.0 memory devices"
// discussion: with hardware Back Invalidation, channel receivers need no
// software invalidation at all. The pool's optional coherence mode models
// BI; the HW-coherent receiver then polls plainly.
func AblHWCoherent(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("abl-coherent", "Ablation: CXL 3.0 hardware coherence (Back Invalidation, §6)")
	window := time.Duration(float64(2*time.Millisecond) * scale)
	if window < 500*time.Microsecond {
		window = 500 * time.Microsecond
	}
	run := func(hw bool) (float64, time.Duration) {
		eng := sim.New()
		params := cxl.DefaultParams()
		params.HWCoherent = hw
		pool := cxl.NewPool(eng, 1<<24, params)
		cfg := msgchan.DefaultConfig()
		if hw {
			cfg.Design = msgchan.DesignHWCoherent
		}
		region, err := pool.Alloc(msgchan.RegionBytes(cfg))
		if err != nil {
			panic(err)
		}
		ch, err := msgchan.New(region, cfg)
		if err != nil {
			panic(err)
		}
		tx := msgchan.NewSender(ch, pool.AttachPort("tx"), cache.DefaultParams())
		rx := msgchan.NewReceiver(ch, cache.New(eng, pool.AttachPort("rx"), cache.DefaultParams()))
		var hist metrics.Histogram
		eng.Go("tx", func(p *sim.Proc) {
			payload := make([]byte, 8)
			for p.Now() < window {
				binary.LittleEndian.PutUint64(payload, uint64(p.Now()))
				if !tx.TrySend(p, payload) {
					p.Sleep(300 * time.Nanosecond)
				}
			}
		})
		eng.Go("rx", func(p *sim.Proc) {
			for p.Now() < window {
				if msg, ok := rx.Poll(p); ok {
					hist.Record(p.Now() - sim.Duration(binary.LittleEndian.Uint64(msg[:8])))
					p.Sleep(10 * time.Nanosecond)
				}
			}
		})
		eng.RunUntil(window)
		eng.Shutdown()
		return float64(rx.Received) / window.Seconds() / 1e6, hist.Percentile(50)
	}
	type cohOut struct {
		tput float64
		lat  time.Duration
	}
	results := parRun(2, func(i int) cohOut {
		tput, lat := run(i == 1)
		return cohOut{tput, lat}
	})
	swTput, swLat := results[0].tput, results[0].lat
	hwTput, hwLat := results[1].tput, results[1].lat
	r.addf("%-34s %12s %12s", "mode", "MOp/s", "median lat")
	r.addf("%-34s %12.1f %12v", "software coherence (design ④)", swTput, swLat)
	r.addf("%-34s %12.1f %12v", "hardware Back Invalidation", hwTput, hwLat)
	r.Values["sw_mops"] = swTput
	r.Values["hw_mops"] = hwTput
	r.addf("paper (§6): Oasis is compatible with CXL 3.0 BI and \"could benefit from")
	r.addf("better message channel performance\", but must not depend on it")
	return r
}

// AblSharding evaluates §6's "Single-threaded datapath" discussion: message
// channel throughput scales linearly with additional channels, so a sharded
// multi-channel design lifts the single-core ceiling. K sender/receiver
// core pairs each drive their own channel over the same two CXL ports.
func AblSharding(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("abl-sharding", "Ablation: sharded multi-channel scaling (§6)")
	window := time.Duration(float64(2*time.Millisecond) * scale)
	if window < 500*time.Microsecond {
		window = 500 * time.Microsecond
	}
	r.addf("%-10s %14s %16s", "shards", "total MOp/s", "per-shard MOp/s")
	shardCounts := []int{1, 2, 4, 8}
	totals := parRun(len(shardCounts), func(i int) float64 {
		return runSharded(shardCounts[i], window)
	})
	var base float64
	for i, shards := range shardCounts {
		total := totals[i]
		if shards == 1 {
			base = total
		}
		r.addf("%-10d %14.1f %16.1f", shards, total, total/float64(shards))
		r.Values[fmt.Sprintf("shards%d", shards)] = total
	}
	r.addf("paper (§6): message channel throughput scales linearly with additional")
	r.addf("channels; a sharded multi-channel design lifts the single-core ceiling")
	_ = base
	return r
}

func runSharded(shards int, window sim.Duration) float64 {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<26, cxl.DefaultParams())
	txPort := pool.AttachPort("sender-host")
	rxPort := pool.AttachPort("receiver-host")
	var receivers []*msgchan.Receiver
	for i := 0; i < shards; i++ {
		cfg := msgchan.DefaultConfig()
		region, err := pool.Alloc(msgchan.RegionBytes(cfg))
		if err != nil {
			panic(err)
		}
		ch, err := msgchan.New(region, cfg)
		if err != nil {
			panic(err)
		}
		tx := msgchan.NewSender(ch, txPort, cache.DefaultParams())
		rx := msgchan.NewReceiver(ch, cache.New(eng, rxPort, cache.DefaultParams()))
		receivers = append(receivers, rx)
		eng.Go("tx", func(p *sim.Proc) {
			payload := make([]byte, 8)
			for p.Now() < window {
				if !tx.TrySend(p, payload) {
					p.Sleep(300 * time.Nanosecond)
				}
			}
		})
		eng.Go("rx", func(p *sim.Proc) {
			for p.Now() < window {
				if _, ok := rx.Poll(p); ok {
					p.Sleep(10 * time.Nanosecond)
				}
			}
		})
	}
	eng.RunUntil(window)
	eng.Shutdown()
	var total int64
	for _, rx := range receivers {
		total += rx.Received
	}
	return float64(total) / window.Seconds() / 1e6
}

// AblQoS evaluates §6's "QoS control for CXL bandwidth": a co-located
// bandwidth-hungry use case (an OLAP scan streaming from the pool) floods
// the host's CXL port; without QoS the message channel's line fetches queue
// behind the bulk transfers, inflating Oasis's signaling latency. Throttling
// the OLAP class (Intel RDT-style) restores it.
func AblQoS(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("abl-qos", "Ablation: CXL bandwidth QoS vs co-tenant interference (§6)")
	window := time.Duration(float64(2*time.Millisecond) * scale)
	if window < 500*time.Microsecond {
		window = 500 * time.Microsecond
	}
	run := func(qos bool) time.Duration {
		eng := sim.New()
		pool := cxl.NewPool(eng, 1<<26, cxl.DefaultParams())
		cfg := msgchan.DefaultConfig()
		region, err := pool.Alloc(msgchan.RegionBytes(cfg))
		if err != nil {
			panic(err)
		}
		ch, err := msgchan.New(region, cfg)
		if err != nil {
			panic(err)
		}
		txPort := pool.AttachPort("sender")
		rxPort := pool.AttachPort("receiver")
		if qos {
			// Throttle the scan to 70% of the receiver's port.
			rxPort.SetQoS("olap", 0.7)
		}
		tx := msgchan.NewSender(ch, txPort, cache.DefaultParams())
		rx := msgchan.NewReceiver(ch, cache.New(eng, rxPort, cache.DefaultParams()))
		// OLAP co-tenant: stream 64 KiB reads back-to-back on the
		// receiver's port (same host, different workload).
		scanRegion, err := pool.Alloc(1 << 20)
		if err != nil {
			panic(err)
		}
		eng.Go("olap", func(p *sim.Proc) {
			buf := make([]byte, 65536)
			for p.Now() < window {
				done := rxPort.DMARead(scanRegion.Base, buf, "olap")
				if wait := done - p.Now(); wait > 0 {
					p.Sleep(wait)
				}
			}
		})
		var hist metrics.Histogram
		eng.Go("tx", func(p *sim.Proc) {
			payload := make([]byte, 8)
			next := sim.Duration(0)
			interval := 2 * time.Microsecond // 0.5 MOp/s of signaling
			for p.Now() < window {
				if wait := next - p.Now(); wait > 0 {
					tx.Flush(p)
					p.Sleep(wait)
				}
				binary.LittleEndian.PutUint64(payload, uint64(p.Now()))
				if tx.TrySend(p, payload) {
					next += interval
				}
				if next < p.Now() {
					next = p.Now()
				}
			}
			tx.Flush(p)
		})
		eng.Go("rx", func(p *sim.Proc) {
			for p.Now() < window {
				if msg, ok := rx.Poll(p); ok {
					hist.Record(p.Now() - sim.Duration(binary.LittleEndian.Uint64(msg[:8])))
				}
			}
		})
		eng.RunUntil(window)
		eng.Shutdown()
		return hist.Percentile(99)
	}
	results := parRun(2, func(i int) time.Duration { return run(i == 1) })
	noQoS, withQoS := results[0], results[1]
	r.addf("%-28s %14s", "config", "message p99")
	r.addf("%-28s %14v", "OLAP flood, no QoS", noQoS)
	r.addf("%-28s %14v", "OLAP throttled to 70%", withQoS)
	r.Values["noqos_p99_us"] = float64(noQoS) / 1e3
	r.Values["qos_p99_us"] = float64(withQoS) / 1e3
	r.addf("paper (§6): bandwidth-intensive co-tenants may saturate CXL links;")
	r.addf("RDT-style bandwidth partitioning keeps Oasis's signaling isolated")
	return r
}

// AblStorage characterizes the storage engine (§3.4): remote 4 KiB read
// IOPS and latency vs queue depth, against the device model's Table 1
// limits (0.5 MOp/s, ~100 µs). The paper designs but does not measure this
// engine; these are this implementation's reference numbers.
func AblStorage(scale float64) *Report {
	scale = clampScale(scale)
	r := newReport("abl-storage", "Storage engine: remote 4 KiB reads vs queue depth (§3.4)")
	window := time.Duration(float64(20*time.Millisecond) * scale)
	if window < 5*time.Millisecond {
		window = 5 * time.Millisecond
	}
	r.addf("%-8s %12s %12s %12s", "depth", "kIOPS", "p50", "p99")
	depths := []int{1, 4, 16, 64}
	type sdOut struct {
		iops     float64
		p50, p99 time.Duration
	}
	results := parRun(len(depths), func(i int) sdOut {
		iops, p50, p99 := runStorageDepth(depths[i], window)
		return sdOut{iops, p50, p99}
	})
	for i, depth := range depths {
		iops, p50, p99 := results[i].iops, results[i].p50, results[i].p99
		r.addf("%-8d %12.1f %12v %12v", depth, iops/1e3, p50, p99)
		r.Values[fmt.Sprintf("d%d_kiops", depth)] = iops / 1e3
		if depth == 1 {
			r.Values["d1_p50_us"] = float64(p50) / 1e3
		}
		if depth == 64 {
			r.Values["d64_kiops"] = iops / 1e3
		}
	}
	r.addf("device model (Table 1): 0.5 MOp/s, ~82 µs media reads; the engine adds")
	r.addf("single-digit-µs signaling per I/O, hidden at depth by the SSD's parallelism")
	return r
}

func runStorageDepth(depth int, window time.Duration) (iops float64, p50, p99 time.Duration) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<30, cxl.DefaultParams())
	hA := hostNew(eng, 0, "hostA", pool)
	hB := hostNew(eng, 1, "hostB", pool)
	scfg := storengine.DefaultConfig()
	dev := ssd.New(eng, "ssd0", pool.AttachPort("ssd0-dma"), ssd.DefaultParams())
	fe := storengine.NewFrontend(hA, pool, scfg)
	be := storengine.NewBackend(hB, 1, dev, 1<<20, scfg)
	feEnd, beEnd, err := core.NewDuplexLink(pool, hA, hB, scfg.Chan)
	if err != nil {
		panic(err)
	}
	fe.ConnectBackend(1, feEnd)
	be.ConnectFrontend(hA.ID, beEnd)
	dev.Start()
	fe.Start()
	be.Start()
	vol, err := fe.AddVolume(serverIP, 1, 1<<18)
	if err != nil {
		panic(err)
	}
	var hist metrics.Histogram
	completed := 0
	var measureStart sim.Duration
	for w := 0; w < depth; w++ {
		w := w
		eng.Go("worker", func(p *sim.Proc) {
			if !vol.WaitReady(p, 100*time.Millisecond) {
				return
			}
			if measureStart == 0 {
				measureStart = p.Now()
			}
			lba := uint64(w * 1024)
			for p.Now()-measureStart < window {
				t0 := p.Now()
				if _, err := vol.Read(p, lba, 1); err != nil {
					return
				}
				hist.Record(p.Now() - t0)
				completed++
			}
			eng.Shutdown()
		})
	}
	eng.RunUntil(window + time.Second)
	eng.Shutdown()
	return float64(completed) / window.Seconds(), hist.Percentile(50), hist.Percentile(99)
}

// hostNew is a local helper avoiding an import cycle on the host package's
// default config.
func hostNew(eng *sim.Engine, id int, name string, pool *cxl.Pool) *host.Host {
	return host.New(eng, id, name, pool, host.DefaultConfig())
}
