package experiments

import (
	"time"

	"oasis"
	"oasis/internal/cxl"
	"oasis/internal/metrics"
)

// Mode selects the datapath configuration under test (§5.1, Fig. 11).
type Mode int

const (
	// ModeOasis: instance on host A, NIC on host B, everything over the
	// CXL pool — the full Oasis datapath.
	ModeOasis Mode = iota
	// ModeBaseline: Junction-style local datapath — instance and NIC on the
	// same host, IPC rings and I/O buffers in DDR-latency memory.
	ModeBaseline
	// ModeBaselineCXLBufs: Fig. 11's middle configuration — local NIC and
	// DDR-latency rings, but I/O buffer areas at CXL latency.
	ModeBaselineCXLBufs
)

func (m Mode) String() string {
	switch m {
	case ModeOasis:
		return "Oasis"
	case ModeBaseline:
		return "Baseline"
	case ModeBaselineCXLBufs:
		return "Baseline+CXL-buffers"
	default:
		return "?"
	}
}

// netPod is the standard single-instance evaluation topology.
type netPod struct {
	pod    *oasis.Pod
	inst   *oasis.Instance
	nic    *oasis.NIC
	client *oasis.Client
}

var (
	serverIP = oasis.IP(10, 0, 0, 10)
	clientIP = oasis.IP(10, 0, 99, 1)
)

// buildNetPod assembles the §5.1 topology for a mode.
func buildNetPod(mode Mode) *netPod { return buildNetPodCfg(mode, nil) }

// buildNetPodCfg is buildNetPod with a config hook (e.g. Table 3 disables
// the idle-poll backoff for a faithful idle-bandwidth measurement).
func buildNetPodCfg(mode Mode, mutate func(*oasis.Config)) *netPod {
	cfg := oasis.DefaultConfig()
	cfg.NoAllocator = true
	switch mode {
	case ModeBaseline:
		// The whole "pool" is host shared memory at DDR latency: Junction's
		// IPC rings and packet buffers.
		cfg.CXL.LoadLatency = 90 * time.Nanosecond
		cfg.CXL.WriteLatency = 40 * time.Nanosecond
		cfg.CXL.PortBandwidth = 64e9
	case ModeBaselineCXLBufs:
		// Rings at DDR latency, buffers at CXL latency (pool default).
		cfg.Engine.Chan.MemClass = cxl.LocalClass()
	}
	if mutate != nil {
		mutate(&cfg)
	}
	pod := oasis.NewPod(cfg)
	e := &netPod{pod: pod}
	hostA := pod.AddHost()
	if mode == ModeOasis {
		nicHost := pod.AddHost()
		e.nic = pod.AddNIC(nicHost, false)
		e.inst = pod.AddInstance(hostA, serverIP)
	} else {
		// Baseline: Junction-style local driver, one intermediary core.
		e.nic = pod.AddLocalNIC(hostA)
		e.inst = pod.AddLocalInstance(hostA, serverIP)
	}
	e.client = pod.AddClient(clientIP)
	pod.Start()
	if mode == ModeOasis {
		e.inst.Assign(e.nic.ID, 0)
	}
	return e
}

// startUDPEcho runs the echo server app on the instance.
func (e *netPod) startUDPEcho(port uint16) {
	e.pod.Go("echo-server", func(p *oasis.Proc) {
		conn, err := e.inst.Stack.ListenUDP(port)
		if err != nil {
			return
		}
		for {
			dg := conn.Recv(p)
			if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
				return
			}
		}
	})
}

// udpEchoLoad drives fixed-size echoes at a fixed offered rate from the
// client for the window and records RTTs. Returns sent/received counts.
func (e *netPod) udpEchoLoad(payload int, rate float64, warmup, window oasis.Duration, hist *metrics.Histogram) (sent, recv int) {
	e.pod.Go("client", func(p *oasis.Proc) {
		conn, err := e.client.Stack.ListenUDP(0)
		if err != nil {
			return
		}
		buf := make([]byte, payload)
		interval := oasis.Duration(float64(time.Second) / rate)
		p.Sleep(2 * time.Millisecond) // registration / ARP warmup
		start := p.Now()
		next := start
		for p.Now()-start < warmup+window {
			if wait := next - p.Now(); wait > 0 {
				p.Sleep(wait)
			}
			next += interval
			t0 := p.Now()
			if conn.SendTo(p, serverIP, 7, buf) != nil {
				continue
			}
			inWindow := t0-start >= warmup
			if inWindow {
				sent++
			}
			if _, ok := conn.RecvTimeout(p, 10*time.Millisecond); !ok {
				continue
			}
			if inWindow {
				recv++
				hist.Record(p.Now() - t0)
			}
		}
		e.pod.Shutdown()
	})
	e.pod.Run(time.Minute)
	return sent, recv
}

// udpPayload converts the paper's nominal packet size to a UDP payload
// that fits one MTU frame (the paper's "1500 B packets" are full frames).
func udpPayload(nominal int) int {
	if max := 1500 - 42; nominal > max { // Eth+IPv4+UDP headers
		return max
	}
	return nominal
}

// udpStreamLoad drives an open-loop UDP stream (no per-packet wait): a
// sender paces requests at the offered rate while a drain process counts
// echoes. Used for the saturating Table 3 rows. Returns sent and echoed
// counts within the window.
func (e *netPod) udpStreamLoad(payload int, rate float64, window oasis.Duration) (sent, recv int) {
	warm := 2 * time.Millisecond
	e.pod.Go("stream-client", func(p *oasis.Proc) {
		conn, err := e.client.Stack.ListenUDP(0)
		if err != nil {
			return
		}
		// Drain echoes on a separate process so sending never blocks.
		e.pod.Go("stream-drain", func(p *oasis.Proc) {
			for {
				conn.Recv(p)
				recv++
			}
		})
		buf := make([]byte, payload)
		interval := oasis.Duration(float64(time.Second) / rate)
		p.Sleep(warm)
		start := p.Now()
		next := start
		for p.Now()-start < window {
			if wait := next - p.Now(); wait > 0 {
				p.Sleep(wait)
			}
			next += interval
			if conn.SendTo(p, serverIP, 7, buf) == nil {
				sent++
			}
			if next < p.Now() {
				next = p.Now()
			}
		}
		e.pod.Shutdown()
	})
	e.pod.Run(time.Minute)
	return sent, recv
}

// --- request/response application models (Fig. 8, Fig. 9) ---

// appModel captures one of the paper's server applications by its service
// time and message sizes; the latency *overhead* Oasis adds is what the
// experiment isolates, the model supplies the app-specific floor.
type appModel struct {
	Name     string
	Service  oasis.Duration
	ReqSize  int
	RespSize int
}

// webApps are the four §5.1 applications with representative service times
// for a single-threaded request loop.
func webApps() []appModel {
	return []appModel{
		{"python-http", 150 * time.Microsecond, 200, 2048},
		{"rocket", 25 * time.Microsecond, 200, 512},
		{"nginx", 15 * time.Microsecond, 200, 1024},
		{"tomcat", 60 * time.Microsecond, 200, 4096},
	}
}

// memcachedApp models the §5.1 memcached run: tiny service time, small
// GET responses, TCP transport.
func memcachedApp() appModel {
	return appModel{"memcached", 3 * time.Microsecond, 40, 120}
}

// startRRServer runs a length-prefixed TCP request/response server on the
// instance: read 4-byte length + body, sleep the service time, respond.
func (e *netPod) startRRServer(port uint16, app appModel) {
	e.pod.Go(app.Name+"-server", func(p *oasis.Proc) {
		l, err := e.inst.Stack.ListenTCP(port)
		if err != nil {
			return
		}
		for {
			conn := l.Accept(p)
			e.pod.Go(app.Name+"-conn", func(p *oasis.Proc) {
				resp := make([]byte, 4+app.RespSize)
				putLen(resp, app.RespSize)
				for {
					hdr, err := conn.Read(p, 4)
					if err != nil {
						return
					}
					n := getLen(hdr)
					if _, err := conn.Read(p, n); err != nil {
						return
					}
					p.Sleep(app.Service)
					if conn.Send(p, resp) != nil {
						return
					}
				}
			})
		}
	})
}

// runRRClients drives conc closed-loop persistent TCP connections for the
// window, recording per-request latency. Returns completed request count.
func (e *netPod) runRRClients(port uint16, app appModel, conc int, warmup, window oasis.Duration, hist *metrics.Histogram) int {
	done := 0
	finished := 0
	for c := 0; c < conc; c++ {
		e.pod.Go("rr-client", func(p *oasis.Proc) {
			defer func() {
				finished++
				if finished == conc {
					e.pod.Shutdown()
				}
			}()
			p.Sleep(2 * time.Millisecond)
			conn, err := e.client.Stack.DialTCP(p, serverIP, port)
			if err != nil {
				return
			}
			req := make([]byte, 4+app.ReqSize)
			putLen(req, app.ReqSize)
			start := p.Now()
			for p.Now()-start < warmup+window {
				t0 := p.Now()
				if conn.Send(p, req) != nil {
					return
				}
				if _, err := conn.Read(p, 4+app.RespSize); err != nil {
					return
				}
				if t0-start >= warmup {
					hist.Record(p.Now() - t0)
					done++
				}
			}
		})
	}
	e.pod.Run(time.Minute)
	return done
}

func putLen(b []byte, n int) {
	b[0] = byte(n)
	b[1] = byte(n >> 8)
	b[2] = byte(n >> 16)
	b[3] = byte(n >> 24)
}

func getLen(b []byte) int {
	return int(b[0]) | int(b[1])<<8 | int(b[2])<<16 | int(b[3])<<24
}
