package experiments

import (
	"reflect"
	"testing"
)

// TestGrayfailDeterministic is the acceptance gate for the gray-failure
// campaign: all four degraded-mode faults fire, the health scorer must
// evacuate both gray devices with the hard-failover machinery silent, and
// the report must be byte-identical when rerun — the rerun happens under
// SetParallelism(8), so one comparison covers both the replay contract and
// the parallel runner (the same shape as TestChaosDeterministic).
func TestGrayfailDeterministic(t *testing.T) {
	defer SetParallelism(1)
	SetParallelism(1)
	serial := Grayfail(1.0)
	if v := serial.Values["violations"]; v != 0 {
		t.Fatalf("grayfail campaign violated %v invariant(s):\n%s", v, serial.String())
	}
	if serial.Values["health_nic_evacs"] < 1 || serial.Values["health_ssd_evacs"] < 1 {
		t.Fatalf("health scorer did not evacuate both gray devices:\n%s", serial.String())
	}
	if serial.Values["nic_failovers"] != 0 || serial.Values["ssd_failovers"] != 0 {
		t.Fatalf("gray faults tripped hard failovers:\n%s", serial.String())
	}
	if testing.Short() {
		return // invariants checked; skip the rerun under -short (race gate)
	}
	SetParallelism(8)
	parallel := Grayfail(1.0)
	if serial.String() != parallel.String() {
		t.Errorf("grayfail report not byte-identical across reruns:\n--- serial ---\n%s--- parallel ---\n%s",
			serial.String(), parallel.String())
	}
	if !reflect.DeepEqual(serial.Values, parallel.Values) {
		t.Errorf("grayfail values differ across reruns: %v vs %v", serial.Values, parallel.Values)
	}
}

// TestBlackoutPrecopyBeatsStopTheWorld is the acceptance gate for pre-copy
// migration: at every write rate in the grid the pre-copy blackout must be
// strictly smaller than the stop-the-world blackout on the identical
// scenario, with no acked write lost under either protocol. Runs at half
// scale (two rates) to stay cheap; the full grid runs in verify.sh.
func TestBlackoutPrecopyBeatsStopTheWorld(t *testing.T) {
	r := Blackout(0.5)
	if v := r.Values["violations"]; v != 0 {
		t.Fatalf("blackout experiment violated %v invariant(s):\n%s", v, r.String())
	}
	if r.Values["rates"] < 2 {
		t.Fatalf("blackout grid too small:\n%s", r.String())
	}
	for k, pre := range r.Values {
		if len(k) > 8 && k[:8] == "precopy_" {
			stw, ok := r.Values["stw_"+k[8:]]
			if !ok {
				t.Fatalf("missing stop-the-world cell for %s:\n%s", k, r.String())
			}
			if pre <= 0 || stw <= 0 || pre >= stw {
				t.Fatalf("%s=%v not strictly under stw=%v:\n%s", k, pre, stw, r.String())
			}
		}
	}
}
