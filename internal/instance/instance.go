// Package instance provides the application layer that runs inside
// container instances: a UDP echo server, a generic request/response (RPC)
// server with a configurable service time, and a memcached-style key-value
// store that can persist its contents to a pooled SSD volume through the
// storage engine — exercising both Oasis engines from one workload.
//
// Applications are written against the instance's user-level network stack
// (netstack) and, for persistence, any block device with the storage
// engine's Volume signature; they do not know whether their NIC or SSD is
// local or pooled — which is the paper's point.
package instance

import (
	"encoding/binary"
	"fmt"
	"sort"

	"oasis/internal/netstack"
	"oasis/internal/sim"
)

// ServeEcho runs a UDP echo server on the stack until the connection
// breaks. It returns the listening connection so tests can introspect.
func ServeEcho(eng *sim.Engine, stack *netstack.Stack, port uint16) (*netstack.UDPConn, error) {
	conn, err := stack.ListenUDP(port)
	if err != nil {
		return nil, err
	}
	eng.Go(stack.Name()+"/echo", func(p *sim.Proc) {
		for {
			dg := conn.Recv(p)
			if conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data) != nil {
				return
			}
		}
	})
	return conn, nil
}

// RRConfig describes a request/response service (a web application model).
type RRConfig struct {
	Service  sim.Duration // per-request compute time
	RespSize int          // response payload bytes
}

// ServeRR runs a length-prefixed TCP request/response server: each request
// is a 4-byte little-endian length plus body; the response likewise.
func ServeRR(eng *sim.Engine, stack *netstack.Stack, port uint16, cfg RRConfig) error {
	l, err := stack.ListenTCP(port)
	if err != nil {
		return err
	}
	eng.Go(stack.Name()+"/rr", func(p *sim.Proc) {
		for {
			conn := l.Accept(p)
			eng.Go(stack.Name()+"/rr-conn", func(p *sim.Proc) {
				resp := eng.Bufs().Get(4 + cfg.RespSize)
				defer eng.Bufs().Put(resp)
				binary.LittleEndian.PutUint32(resp, uint32(cfg.RespSize))
				clear(resp[4:]) // recycled buffers must carry a zeroed body
				for {
					hdr, err := conn.Read(p, 4)
					if err != nil {
						return
					}
					n := int(binary.LittleEndian.Uint32(hdr))
					if _, err := conn.Read(p, n); err != nil {
						return
					}
					p.Sleep(cfg.Service)
					if conn.Send(p, resp) != nil {
						return
					}
				}
			})
		}
	})
	return nil
}

// RRCall performs one request/response exchange on an established
// connection, returning the response body.
func RRCall(p *sim.Proc, conn *netstack.TCPConn, reqSize int) ([]byte, error) {
	req := p.Engine().Bufs().Get(4 + reqSize)
	binary.LittleEndian.PutUint32(req, uint32(reqSize))
	clear(req[4:]) // recycled buffers must carry a zeroed body
	err := conn.Send(p, req)
	p.Engine().Bufs().Put(req) // Send copied what it needed
	if err != nil {
		return nil, err
	}
	hdr, err := conn.Read(p, 4)
	if err != nil {
		return nil, err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	return conn.Read(p, n)
}

// --- memcached-style key-value store ---

// KV command opcodes and status codes.
const (
	kvGet = 'G'
	kvSet = 'S'
	kvDel = 'D'

	KVOk       = 0
	KVNotFound = 1
	KVError    = 2
)

// kvLimits bound the wire format.
const (
	MaxKeyLen = 250 // memcached's limit
	// MaxValueLen fills one value slot exactly: valueBlocks blocks minus
	// the 4-byte length header.
	MaxValueLen = valueBlocks*blockSize - 4
)

// Store is the in-memory table with optional write-through persistence.
type Store struct {
	data map[string][]byte
	dev  BlockDev // nil = memory-only
	svc  sim.Duration

	// persistence layout bookkeeping
	slots   map[string]uint64 // key -> value LBA
	nextLBA uint64

	// Stats.
	Gets, Sets, Dels, Hits, Misses int64
}

// BlockDev is the slice of the storage engine's Volume API the store needs;
// *storengine.Volume satisfies it.
type BlockDev interface {
	Read(p *sim.Proc, lba uint64, nblocks int) ([]byte, error)
	Write(p *sim.Proc, lba uint64, data []byte) error
	Blocks() uint64
}

const blockSize = 4096

// Layout on the volume: block 0..indexBlocks-1 hold the serialized index;
// values start after them, one slot of valueBlocks each.
const (
	indexBlocks = 64
	valueBlocks = 16 // 64 KiB slots (MaxValueLen)
)

// NewStore creates a store. dev may be nil for a memory-only cache; svc is
// the per-operation service time (memcached-class: a few µs).
func NewStore(dev BlockDev, svc sim.Duration) *Store {
	return &Store{
		data:    make(map[string][]byte),
		dev:     dev,
		svc:     svc,
		slots:   make(map[string]uint64),
		nextLBA: indexBlocks,
	}
}

// Get returns the value (nil, false if absent).
func (s *Store) Get(p *sim.Proc, key string) ([]byte, bool) {
	p.Sleep(s.svc)
	s.Gets++
	v, ok := s.data[key]
	if ok {
		s.Hits++
	} else {
		s.Misses++
	}
	return v, ok
}

// Set stores the value, writing through to the volume when configured.
func (s *Store) Set(p *sim.Proc, key string, value []byte) error {
	if len(key) > MaxKeyLen || len(value) > MaxValueLen {
		return fmt.Errorf("instance: key/value too large")
	}
	p.Sleep(s.svc)
	s.Sets++
	cp := make([]byte, len(value))
	copy(cp, value)
	s.data[key] = cp
	if s.dev == nil {
		return nil
	}
	lba, ok := s.slots[key]
	if !ok {
		lba = s.nextLBA
		if lba+valueBlocks > s.dev.Blocks() {
			return fmt.Errorf("instance: volume full")
		}
		s.nextLBA += valueBlocks
		s.slots[key] = lba
	}
	// Value slot: 4-byte length + bytes, padded to whole blocks.
	buf := make([]byte, pad(4+len(value)))
	binary.LittleEndian.PutUint32(buf, uint32(len(value)))
	copy(buf[4:], value)
	if err := s.dev.Write(p, lba, buf); err != nil {
		return err
	}
	return s.writeIndex(p)
}

// Del removes the key (persisted via the index).
func (s *Store) Del(p *sim.Proc, key string) error {
	p.Sleep(s.svc)
	s.Dels++
	if _, ok := s.data[key]; !ok {
		return nil
	}
	delete(s.data, key)
	delete(s.slots, key)
	if s.dev == nil {
		return nil
	}
	return s.writeIndex(p)
}

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.data) }

// writeIndex serializes (count, then per key: keyLen u16, key, lba u64)
// into the index region.
func (s *Store) writeIndex(p *sim.Proc) error {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, uint32(len(s.slots)))
	keys := make([]string, 0, len(s.slots))
	for key := range s.slots {
		keys = append(keys, key)
	}
	sort.Strings(keys) // deterministic serialization
	for _, key := range keys {
		lba := s.slots[key]
		var kh [2]byte
		binary.LittleEndian.PutUint16(kh[:], uint16(len(key)))
		buf = append(buf, kh[:]...)
		buf = append(buf, key...)
		var lh [8]byte
		binary.LittleEndian.PutUint64(lh[:], lba)
		buf = append(buf, lh[:]...)
	}
	if len(buf) > indexBlocks*blockSize {
		return fmt.Errorf("instance: index overflow (%d keys)", len(s.slots))
	}
	padded := make([]byte, pad(len(buf)))
	copy(padded, buf)
	// The storage engine caps a single request's span; split the index
	// write into slot-sized chunks.
	for off := 0; off < len(padded); off += valueBlocks * blockSize {
		end := off + valueBlocks*blockSize
		if end > len(padded) {
			end = len(padded)
		}
		if err := s.dev.Write(p, uint64(off/blockSize), padded[off:end]); err != nil {
			return err
		}
	}
	return nil
}

// Recover rebuilds the in-memory table from the volume after a restart —
// the ephemeral-local-SSD durability model (§3.4: data survives soft
// reboots).
func (s *Store) Recover(p *sim.Proc) error {
	if s.dev == nil {
		return fmt.Errorf("instance: no volume to recover from")
	}
	// Read the index region in request-sized chunks.
	idx := make([]byte, 0, indexBlocks*blockSize)
	for blk := uint64(0); blk < indexBlocks; blk += valueBlocks {
		chunk, err := s.dev.Read(p, blk, valueBlocks)
		if err != nil {
			return err
		}
		idx = append(idx, chunk...)
	}
	count := binary.LittleEndian.Uint32(idx)
	off := 4
	s.data = make(map[string][]byte)
	s.slots = make(map[string]uint64)
	maxLBA := uint64(indexBlocks)
	for i := uint32(0); i < count; i++ {
		if off+2 > len(idx) {
			return fmt.Errorf("instance: truncated index")
		}
		kl := int(binary.LittleEndian.Uint16(idx[off:]))
		off += 2
		if off+kl+8 > len(idx) {
			return fmt.Errorf("instance: truncated index entry")
		}
		key := string(idx[off : off+kl])
		off += kl
		lba := binary.LittleEndian.Uint64(idx[off:])
		off += 8
		slot, err := s.dev.Read(p, lba, valueBlocks)
		if err != nil {
			return err
		}
		vl := int(binary.LittleEndian.Uint32(slot))
		if vl > MaxValueLen || 4+vl > len(slot) {
			return fmt.Errorf("instance: corrupt value slot for %q", key)
		}
		v := make([]byte, vl)
		copy(v, slot[4:4+vl])
		s.data[key] = v
		s.slots[key] = lba
		if lba+valueBlocks > maxLBA {
			maxLBA = lba + valueBlocks
		}
	}
	s.nextLBA = maxLBA
	return nil
}

func pad(n int) int {
	return (n + blockSize - 1) / blockSize * blockSize
}

// --- KV wire protocol (TCP, length-prefixed) ---
//
// request : op(1) keyLen(2) key [valLen(4) value]      (valLen for Set)
// response: status(1) [valLen(4) value]                (value for Get hit)

// ServeKV runs the KV server on the stack.
func ServeKV(eng *sim.Engine, stack *netstack.Stack, port uint16, store *Store) error {
	l, err := stack.ListenTCP(port)
	if err != nil {
		return err
	}
	eng.Go(stack.Name()+"/kv", func(p *sim.Proc) {
		for {
			conn := l.Accept(p)
			eng.Go(stack.Name()+"/kv-conn", func(p *sim.Proc) {
				kvServeConn(p, conn, store)
			})
		}
	})
	return nil
}

func kvServeConn(p *sim.Proc, conn *netstack.TCPConn, store *Store) {
	for {
		hdr, err := conn.Read(p, 3)
		if err != nil {
			return
		}
		op := hdr[0]
		keyLen := int(binary.LittleEndian.Uint16(hdr[1:3]))
		if keyLen == 0 || keyLen > MaxKeyLen {
			return // protocol violation: drop the connection
		}
		keyB, err := conn.Read(p, keyLen)
		if err != nil {
			return
		}
		key := string(keyB)
		switch op {
		case kvGet:
			if v, ok := store.Get(p, key); ok {
				resp := p.Engine().Bufs().Get(5 + len(v))
				resp[0] = KVOk
				binary.LittleEndian.PutUint32(resp[1:5], uint32(len(v)))
				copy(resp[5:], v)
				err := conn.Send(p, resp)
				p.Engine().Bufs().Put(resp) // Send copied what it needed
				if err != nil {
					return
				}
			} else if conn.Send(p, []byte{KVNotFound}) != nil {
				return
			}
		case kvSet:
			vh, err := conn.Read(p, 4)
			if err != nil {
				return
			}
			vl := int(binary.LittleEndian.Uint32(vh))
			if vl > MaxValueLen {
				return
			}
			value, err := conn.Read(p, vl)
			if err != nil {
				return
			}
			status := byte(KVOk)
			if store.Set(p, key, value) != nil {
				status = KVError
			}
			if conn.Send(p, []byte{status}) != nil {
				return
			}
		case kvDel:
			status := byte(KVOk)
			if store.Del(p, key) != nil {
				status = KVError
			}
			if conn.Send(p, []byte{status}) != nil {
				return
			}
		default:
			return
		}
	}
}

// KVClient issues KV operations over one TCP connection.
type KVClient struct {
	conn *netstack.TCPConn
}

// DialKV connects a client to a KV server.
func DialKV(p *sim.Proc, stack *netstack.Stack, server netstack.IP, port uint16) (*KVClient, error) {
	conn, err := stack.DialTCP(p, server, port)
	if err != nil {
		return nil, err
	}
	return &KVClient{conn: conn}, nil
}

// Get fetches a key; ok=false means not found.
func (c *KVClient) Get(p *sim.Proc, key string) ([]byte, bool, error) {
	if err := c.send(p, kvGet, key, nil); err != nil {
		return nil, false, err
	}
	st, err := c.conn.Read(p, 1)
	if err != nil {
		return nil, false, err
	}
	switch st[0] {
	case KVOk:
		vh, err := c.conn.Read(p, 4)
		if err != nil {
			return nil, false, err
		}
		v, err := c.conn.Read(p, int(binary.LittleEndian.Uint32(vh)))
		return v, true, err
	case KVNotFound:
		return nil, false, nil
	default:
		return nil, false, fmt.Errorf("instance: server error")
	}
}

// Set stores a key.
func (c *KVClient) Set(p *sim.Proc, key string, value []byte) error {
	if err := c.send(p, kvSet, key, value); err != nil {
		return err
	}
	st, err := c.conn.Read(p, 1)
	if err != nil {
		return err
	}
	if st[0] != KVOk {
		return fmt.Errorf("instance: set failed")
	}
	return nil
}

// Del removes a key.
func (c *KVClient) Del(p *sim.Proc, key string) error {
	if err := c.send(p, kvDel, key, nil); err != nil {
		return err
	}
	st, err := c.conn.Read(p, 1)
	if err != nil {
		return err
	}
	if st[0] != KVOk {
		return fmt.Errorf("instance: del failed")
	}
	return nil
}

// Close tears the connection down.
func (c *KVClient) Close(p *sim.Proc) { c.conn.Close(p) }

func (c *KVClient) send(p *sim.Proc, op byte, key string, value []byte) error {
	n := 3 + len(key)
	if op == kvSet {
		n += 4 + len(value)
	}
	msg := p.Engine().Bufs().Get(n)
	msg[0] = op
	binary.LittleEndian.PutUint16(msg[1:3], uint16(len(key)))
	copy(msg[3:], key)
	if op == kvSet {
		binary.LittleEndian.PutUint32(msg[3+len(key):], uint32(len(value)))
		copy(msg[7+len(key):], value)
	}
	err := c.conn.Send(p, msg)
	p.Engine().Bufs().Put(msg) // Send copied what it needed
	return err
}
