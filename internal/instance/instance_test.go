package instance

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"oasis/internal/core"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/netstack"
	"oasis/internal/netsw"
	"oasis/internal/sim"
	"oasis/internal/ssd"
	"oasis/internal/storengine"
)

// node attaches a stack straight to a switch port (raw endpoint).
type node struct {
	stack *netstack.Stack
	port  *netsw.Port
}

func (n *node) Transmit(p *sim.Proc, frame []byte) {
	var f netsw.Frame
	copy(f.Dst[:], frame[0:6])
	copy(f.Src[:], frame[6:12])
	f.Bytes = frame
	n.port.Send(&f)
}

func (n *node) DeliverFrame(f *netsw.Frame) { n.stack.DeliverFrame(f.Bytes) }

func twoNodes(eng *sim.Engine) (*node, *node) {
	sw := netsw.New(eng, netsw.DefaultParams())
	mk := func(name string, ip netstack.IP, macLow byte) *node {
		n := &node{}
		mac := netsw.MAC{0x02, 0, 0, 0, 0, macLow}
		n.port = sw.AttachPort(name, n)
		n.stack = netstack.NewStack(eng, name, ip, func() netsw.MAC { return mac }, n, netstack.DefaultConfig())
		n.stack.Start()
		return n
	}
	return mk("server", netstack.IPv4(10, 0, 0, 1), 1), mk("client", netstack.IPv4(10, 0, 0, 2), 2)
}

func TestEchoServer(t *testing.T) {
	eng := sim.New()
	server, client := twoNodes(eng)
	if _, err := ServeEcho(eng, server.stack, 7); err != nil {
		t.Fatal(err)
	}
	eng.Go("client", func(p *sim.Proc) {
		conn, _ := client.stack.ListenUDP(0)
		conn.SendTo(p, server.stack.IP(), 7, []byte("ping"))
		dg, ok := conn.RecvTimeout(p, 10*time.Millisecond)
		if !ok || !bytes.Equal(dg.Data, []byte("ping")) {
			t.Error("echo failed")
		}
		eng.Shutdown()
	})
	eng.Run()
}

func TestRRServerServiceTime(t *testing.T) {
	eng := sim.New()
	server, client := twoNodes(eng)
	svc := 100 * time.Microsecond
	if err := ServeRR(eng, server.stack, 80, RRConfig{Service: svc, RespSize: 1024}); err != nil {
		t.Fatal(err)
	}
	eng.Go("client", func(p *sim.Proc) {
		conn, err := client.stack.DialTCP(p, server.stack.IP(), 80)
		if err != nil {
			t.Error(err)
			eng.Shutdown()
			return
		}
		start := p.Now()
		resp, err := RRCall(p, conn, 128)
		if err != nil || len(resp) != 1024 {
			t.Errorf("RRCall: %v, %d bytes", err, len(resp))
		}
		if el := p.Now() - start; el < svc {
			t.Errorf("request completed in %v, faster than the %v service time", el, svc)
		}
		eng.Shutdown()
	})
	eng.Run()
}

func TestKVMemoryOnly(t *testing.T) {
	eng := sim.New()
	server, client := twoNodes(eng)
	store := NewStore(nil, 2*time.Microsecond)
	if err := ServeKV(eng, server.stack, 11211, store); err != nil {
		t.Fatal(err)
	}
	eng.Go("client", func(p *sim.Proc) {
		defer eng.Shutdown()
		kv, err := DialKV(p, client.stack, server.stack.IP(), 11211)
		if err != nil {
			t.Error(err)
			return
		}
		if _, found, _ := kv.Get(p, "missing"); found {
			t.Error("phantom key")
		}
		if err := kv.Set(p, "alpha", []byte("one")); err != nil {
			t.Error(err)
		}
		if err := kv.Set(p, "beta", bytes.Repeat([]byte{7}, 10000)); err != nil {
			t.Error(err)
		}
		v, found, err := kv.Get(p, "alpha")
		if err != nil || !found || string(v) != "one" {
			t.Errorf("get alpha = %q/%v/%v", v, found, err)
		}
		v, found, _ = kv.Get(p, "beta")
		if !found || len(v) != 10000 || v[500] != 7 {
			t.Error("large value corrupted")
		}
		if err := kv.Del(p, "alpha"); err != nil {
			t.Error(err)
		}
		if _, found, _ := kv.Get(p, "alpha"); found {
			t.Error("deleted key still present")
		}
	})
	eng.Run()
	if store.Sets != 2 || store.Dels != 1 || store.Hits != 2 || store.Misses != 2 {
		t.Fatalf("stats: %+v", *store)
	}
}

// volRig builds a cross-host storage-engine volume for persistence tests.
func volRig(t *testing.T) (*sim.Engine, *storengine.Volume) {
	t.Helper()
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<28, cxl.DefaultParams())
	hA := host.New(eng, 0, "hostA", pool, host.DefaultConfig())
	hB := host.New(eng, 1, "hostB", pool, host.DefaultConfig())
	cfg := storengine.DefaultConfig()
	dev := ssd.New(eng, "ssd0", pool.AttachPort("ssd0-dma"), ssd.DefaultParams())
	fe := storengine.NewFrontend(hA, pool, cfg)
	be := storengine.NewBackend(hB, 1, dev, 1<<18, cfg)
	feEnd, beEnd, err := core.NewDuplexLink(pool, hA, hB, cfg.Chan)
	if err != nil {
		t.Fatal(err)
	}
	fe.ConnectBackend(1, feEnd)
	be.ConnectFrontend(hA.ID, beEnd)
	dev.Start()
	fe.Start()
	be.Start()
	vol, err := fe.AddVolume(netstack.IPv4(10, 0, 0, 1), 1, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	return eng, vol
}

// smallVolRig returns a tiny volume so exhaustion paths run fast.
func smallVolRig(t *testing.T) (*sim.Engine, *storengine.Volume) {
	t.Helper()
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<28, cxl.DefaultParams())
	hA := host.New(eng, 0, "hostA", pool, host.DefaultConfig())
	hB := host.New(eng, 1, "hostB", pool, host.DefaultConfig())
	cfg := storengine.DefaultConfig()
	dev := ssd.New(eng, "ssd0", pool.AttachPort("ssd0-dma"), ssd.DefaultParams())
	fe := storengine.NewFrontend(hA, pool, cfg)
	be := storengine.NewBackend(hB, 1, dev, 1<<12, cfg)
	feEnd, beEnd, err := core.NewDuplexLink(pool, hA, hB, cfg.Chan)
	if err != nil {
		t.Fatal(err)
	}
	fe.ConnectBackend(1, feEnd)
	be.ConnectFrontend(hA.ID, beEnd)
	dev.Start()
	fe.Start()
	be.Start()
	vol, err := fe.AddVolume(netstack.IPv4(10, 0, 0, 1), 1, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	return eng, vol
}

func TestKVPersistenceAndRecovery(t *testing.T) {
	eng, vol := volRig(t)
	eng.Go("app", func(p *sim.Proc) {
		defer eng.Shutdown()
		if !vol.WaitReady(p, 100*time.Millisecond) {
			t.Error("volume not ready")
			return
		}
		store := NewStore(vol, 2*time.Microsecond)
		want := map[string][]byte{}
		for i := 0; i < 20; i++ {
			key := fmt.Sprintf("key-%02d", i)
			val := bytes.Repeat([]byte{byte(i + 1)}, 100*(i+1))
			if err := store.Set(p, key, val); err != nil {
				t.Errorf("set %s: %v", key, err)
				return
			}
			want[key] = val
		}
		// Overwrite one and delete one: recovery must reflect both.
		store.Set(p, "key-03", []byte("rewritten"))
		want["key-03"] = []byte("rewritten")
		store.Del(p, "key-07")
		delete(want, "key-07")

		// "Soft reboot": a fresh store recovers from the same volume (§3.4
		// ephemeral-storage semantics).
		fresh := NewStore(vol, 2*time.Microsecond)
		if err := fresh.Recover(p); err != nil {
			t.Errorf("recover: %v", err)
			return
		}
		if fresh.Len() != len(want) {
			t.Errorf("recovered %d keys, want %d", fresh.Len(), len(want))
		}
		for key, val := range want {
			got, ok := fresh.Get(p, key)
			if !ok || !bytes.Equal(got, val) {
				t.Errorf("recovered %s mismatch (found=%v, %d bytes)", key, ok, len(got))
			}
		}
		if _, ok := fresh.Get(p, "key-07"); ok {
			t.Error("deleted key resurrected by recovery")
		}
		// New writes after recovery must not clobber existing slots.
		if err := fresh.Set(p, "post-recovery", []byte("x")); err != nil {
			t.Errorf("post-recovery set: %v", err)
		}
		got, _ := fresh.Get(p, "key-19")
		if !bytes.Equal(got, want["key-19"]) {
			t.Error("post-recovery write clobbered an existing slot")
		}
	})
	eng.Run()
}

func TestKVValueSizeLimits(t *testing.T) {
	eng, vol := volRig(t)
	eng.Go("app", func(p *sim.Proc) {
		defer eng.Shutdown()
		vol.WaitReady(p, 100*time.Millisecond)
		store := NewStore(vol, 0)
		if err := store.Set(p, "max", make([]byte, MaxValueLen)); err != nil {
			t.Errorf("max-size value rejected: %v", err)
		}
		if err := store.Set(p, "over", make([]byte, MaxValueLen+1)); err == nil {
			t.Error("oversized value accepted")
		}
		if err := store.Set(p, string(make([]byte, MaxKeyLen+1)), []byte("v")); err == nil {
			t.Error("oversized key accepted")
		}
	})
	eng.Run()
}

func TestKVVolumeFull(t *testing.T) {
	eng, vol := smallVolRig(t)
	eng.Go("app", func(p *sim.Proc) {
		defer eng.Shutdown()
		vol.WaitReady(p, 100*time.Millisecond)
		store := NewStore(vol, 0)
		// Volume: 1<<10 blocks; slots of 16 blocks after 64 index blocks →
		// (1024-64)/16 = 60 slots. Filling must eventually error cleanly.
		var err error
		for i := 0; i < 70; i++ {
			if err = store.Set(p, fmt.Sprintf("k%05d", i), []byte("v")); err != nil {
				break
			}
		}
		if err == nil {
			t.Error("volume never reported full")
		}
		// Earlier keys stay intact after the failure.
		if v, ok := store.Get(p, "k00000"); !ok || string(v) != "v" {
			t.Error("existing key damaged by exhaustion")
		}
	})
	eng.RunUntil(30 * time.Second)
	eng.Shutdown()
}
