// Package par provides a tiny deterministic fan-out helper for running
// independent simulation jobs concurrently.
//
// Determinism contract: each job must be self-contained (its own engine,
// its own RNG state, no shared mutable data) and write only to its own
// index of a caller-owned result slice. Under that contract the results
// are identical for any worker count, and the caller merges them in index
// order — parallelism changes wall-clock time, never output bytes.
package par

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// jobPanic carries a worker panic back to the Do caller with the job index
// attached, so the re-panic names the failing job instead of a goroutine.
type jobPanic struct {
	i int
	v any
}

// Do runs fn(0..n-1) on up to workers goroutines and returns when all
// jobs have finished. workers <= 1 (or n <= 1) runs serially on the
// calling goroutine. Jobs are handed out in index order, but may complete
// in any order; fn must not assume otherwise.
//
// A panicking job does not crash its worker goroutine (which would take
// the process down with an unrecoverable trace): remaining jobs still run,
// and after they finish Do re-panics on the calling goroutine with the
// lowest panicking job index — the same panic a serial run would surface
// first, so failure reporting is worker-count independent too.
func Do(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first *jobPanic
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if first == nil || i < first.i {
								first = &jobPanic{i: i, v: r}
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if first != nil {
		panic(fmt.Sprintf("par: job %d panicked: %v", first.i, first.v))
	}
}

// DoErr is Do for fallible jobs: it runs fn(0..n-1) and returns the error
// from the lowest-indexed failing job (the one a serial loop would have
// hit first), or nil if every job succeeded. All jobs run regardless of
// failures — results land at caller-owned indices either way — so the
// chosen error does not depend on worker scheduling.
func DoErr(workers, n int, fn func(i int) error) error {
	errs := make([]error, n)
	Do(workers, n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
