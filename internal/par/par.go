// Package par provides a tiny deterministic fan-out helper for running
// independent simulation jobs concurrently.
//
// Determinism contract: each job must be self-contained (its own engine,
// its own RNG state, no shared mutable data) and write only to its own
// index of a caller-owned result slice. Under that contract the results
// are identical for any worker count, and the caller merges them in index
// order — parallelism changes wall-clock time, never output bytes.
package par

import (
	"sync"
	"sync/atomic"
)

// Do runs fn(0..n-1) on up to workers goroutines and returns when all
// jobs have finished. workers <= 1 (or n <= 1) runs serially on the
// calling goroutine. Jobs are handed out in index order, but may complete
// in any order; fn must not assume otherwise.
func Do(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
