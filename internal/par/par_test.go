package par

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

func TestDoCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		Do(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	Do(4, 0, func(i int) { t.Fatal("fn called for n=0") })
}

func TestDoResultsIndependentOfWorkers(t *testing.T) {
	run := func(workers int) [32]int {
		var out [32]int
		Do(workers, len(out), func(i int) { out[i] = i * i })
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 4, 16} {
		if run(w) != serial {
			t.Fatalf("results differ at workers=%d", w)
		}
	}
}

// A panicking job must reach the caller as a panic on the calling
// goroutine — not crash a worker goroutine and take the process down —
// and the reported job must be the lowest panicking index, matching what
// a serial run would hit first, regardless of worker count.
func TestDoPanicPropagation(t *testing.T) {
	for _, workers := range []int{2, 4, 16} {
		const n = 64
		var ran atomic.Int32
		got := func() (r any) {
			defer func() { r = recover() }()
			Do(workers, n, func(i int) {
				ran.Add(1)
				if i == 7 || i == 31 {
					panic(fmt.Sprintf("boom-%d", i))
				}
			})
			return nil
		}()
		if got == nil {
			t.Fatalf("workers=%d: panic swallowed", workers)
		}
		msg := fmt.Sprint(got)
		if !strings.Contains(msg, "job 7") || !strings.Contains(msg, "boom-7") {
			t.Fatalf("workers=%d: want lowest panicking job 7 reported, got %q", workers, msg)
		}
		if ran.Load() != n {
			t.Fatalf("workers=%d: only %d/%d jobs ran after a panic", workers, ran.Load(), n)
		}
	}
}

// Serial fallback (workers <= 1) intentionally keeps the raw panic: there
// is no goroutine boundary to survive, so the original value propagates
// unchanged.
func TestDoSerialPanicUnwrapped(t *testing.T) {
	sentinel := errors.New("raw")
	got := func() (r any) {
		defer func() { r = recover() }()
		Do(1, 3, func(i int) {
			if i == 1 {
				panic(sentinel)
			}
		})
		return nil
	}()
	if got != sentinel {
		t.Fatalf("serial panic rewrapped: got %v", got)
	}
}

// DoErr returns the lowest-indexed job error — the one a serial loop
// would hit first — independent of worker count, and nil when all pass.
func TestDoErr(t *testing.T) {
	errA := errors.New("a")
	errB := errors.New("b")
	for _, workers := range []int{1, 2, 8} {
		err := DoErr(workers, 40, func(i int) error {
			switch i {
			case 11:
				return errA
			case 29:
				return errB
			}
			return nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: want lowest-index error %v, got %v", workers, errA, err)
		}
		if err := DoErr(workers, 40, func(i int) error { return nil }); err != nil {
			t.Fatalf("workers=%d: spurious error %v", workers, err)
		}
	}
}
