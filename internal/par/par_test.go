package par

import (
	"sync/atomic"
	"testing"
)

func TestDoCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var hits [n]atomic.Int32
		Do(workers, n, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestDoZeroJobs(t *testing.T) {
	Do(4, 0, func(i int) { t.Fatal("fn called for n=0") })
}

func TestDoResultsIndependentOfWorkers(t *testing.T) {
	run := func(workers int) [32]int {
		var out [32]int
		Do(workers, len(out), func(i int) { out[i] = i * i })
		return out
	}
	serial := run(1)
	for _, w := range []int{2, 4, 16} {
		if run(w) != serial {
			t.Fatalf("results differ at workers=%d", w)
		}
	}
}
