// Package netsw models the rack's Ethernet fabric: a store-and-forward
// switch with MAC learning and per-port failure injection.
//
// Two behaviours matter to Oasis and are modelled faithfully:
//
//   - MAC learning: the switch maps each source MAC it observes to the
//     ingress port. Oasis's NIC failover (§3.3.3) exploits this by having
//     the backup NIC send a frame with the failed NIC's source MAC, which
//     immediately repoints the switch's MAC table at the backup's port.
//   - Port administrative state: the failover experiments (§5.3) inject a
//     NIC failure by disabling the switch port; the attached NIC observes
//     link-down after a PHY debounce delay.
package netsw

import (
	"fmt"
	"math/rand"
	"time"

	"oasis/internal/sim"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// Broadcast is the all-ones MAC.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the MAC in canonical colon form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the MAC is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == Broadcast }

// Frame is an Ethernet frame in flight. Bytes is the full wire image
// (header + payload) used for sizing and DMA; Src/Dst are parsed out for the
// switch's forwarding decision.
type Frame struct {
	Src, Dst MAC
	Bytes    []byte
}

// WireLen returns the frame's length on the wire, clamped to the Ethernet
// minimum of 64 bytes (with FCS).
func (f *Frame) WireLen() int {
	if len(f.Bytes) < 64 {
		return 64
	}
	return len(f.Bytes)
}

// Sink receives frames delivered by the fabric (a NIC ingress or a raw
// client node).
type Sink interface {
	DeliverFrame(f *Frame)
}

// Params configures switch timing.
type Params struct {
	// ProcessingDelay is the store-and-forward pipeline latency.
	ProcessingDelay sim.Duration
	// PortBandwidth is per-port line rate in bytes/s.
	PortBandwidth float64
	// PropagationDelay is per-hop cable delay.
	PropagationDelay sim.Duration
}

// DefaultParams models a 100 Gbit ToR switch (Arista 7060X class).
func DefaultParams() Params {
	return Params{
		ProcessingDelay:  600 * time.Nanosecond,
		PortBandwidth:    12.5e9, // 100 Gbit/s
		PropagationDelay: 50 * time.Nanosecond,
	}
}

// Switch is a MAC-learning store-and-forward Ethernet switch.
type Switch struct {
	eng    *sim.Engine
	params Params
	ports  []*Port
	table  map[MAC]*Port

	lossRate float64 // failure injection: fraction of frames dropped
	lossRNG  *rand.Rand

	freeOps []*frameOp // recycled frame-hop ops (engine-local, no lock)

	// Stats.
	Forwarded   int64
	Flooded     int64
	Dropped     int64 // frames to/from disabled ports
	LossDropped int64 // frames dropped by injected random loss
}

// SetLossRate injects random frame loss (0 ≤ rate < 1) with a deterministic
// seed — the failure-injection knob the TCP robustness tests use.
func (s *Switch) SetLossRate(rate float64, seed int64) {
	s.lossRate = rate
	s.lossRNG = rand.New(rand.NewSource(seed))
}

// New returns an empty switch.
func New(eng *sim.Engine, params Params) *Switch {
	return &Switch{eng: eng, params: params, table: make(map[MAC]*Port)}
}

// Engine returns the simulation engine.
func (s *Switch) Engine() *sim.Engine { return s.eng }

// AttachPort adds a port wired to the given sink and returns it.
func (s *Switch) AttachPort(name string, sink Sink) *Port {
	p := &Port{
		sw:       s,
		name:     name,
		id:       len(s.ports),
		sink:     sink,
		toSwitch: sim.NewResource(s.eng),
		toDevice: sim.NewResource(s.eng),
		enabled:  true,
	}
	s.ports = append(s.ports, p)
	return p
}

// Ports returns all ports.
func (s *Switch) Ports() []*Port { return s.ports }

// LookupMAC returns the port a MAC was learned on (nil if unknown); for
// tests and diagnostics.
func (s *Switch) LookupMAC(m MAC) *Port { return s.table[m] }

// inject is called by a port when a frame finishes arriving from its device.
func (s *Switch) inject(from *Port, f *Frame) {
	if !from.enabled {
		s.Dropped++
		return
	}
	// Learn the source MAC. This is the hook Oasis failover relies on: a
	// frame sent by the backup NIC with the failed NIC's source MAC remaps
	// that MAC to the backup's port in one observation.
	s.table[f.Src] = from
	if s.lossRate > 0 && s.lossRNG.Float64() < s.lossRate {
		s.LossDropped++
		return
	}

	s.eng.AfterTimer(s.params.ProcessingDelay, s.newFrameOp(opForward, from, f))
}

// forward routes a processed frame to its egress port (or floods it).
func (s *Switch) forward(from *Port, f *Frame) {
	if f.Dst.IsBroadcast() {
		s.flood(from, f)
		return
	}
	out, ok := s.table[f.Dst]
	if !ok {
		s.flood(from, f)
		return
	}
	if !out.enabled {
		s.Dropped++
		return
	}
	s.Forwarded++
	out.transmit(f)
}

// frameOp is one pooled in-flight hop of a frame's journey through the
// switch: cable arrival (inject), pipeline processing (forward), or delivery
// to the egress device. Firing these as sim.Timers rather than closures
// keeps per-frame switching allocation-free.
type frameOp struct {
	kind uint8
	port *Port // ingress for inject/forward, egress for deliver
	f    *Frame
}

const (
	opInject uint8 = iota
	opForward
	opDeliver
)

func (op *frameOp) Fire() {
	port, f := op.port, op.f
	s := port.sw
	op.port, op.f = nil, nil
	kind := op.kind
	s.freeOps = append(s.freeOps, op)
	switch kind {
	case opInject:
		s.inject(port, f)
	case opForward:
		s.forward(port, f)
	case opDeliver:
		if !port.enabled {
			s.Dropped++
			return
		}
		if port.sink != nil {
			port.sink.DeliverFrame(f)
		}
	}
}

func (s *Switch) newFrameOp(kind uint8, port *Port, f *Frame) *frameOp {
	var op *frameOp
	if n := len(s.freeOps); n > 0 {
		op = s.freeOps[n-1]
		s.freeOps[n-1] = nil
		s.freeOps = s.freeOps[:n-1]
	} else {
		op = &frameOp{}
	}
	op.kind, op.port, op.f = kind, port, f
	return op
}

// flood sends the frame out of every enabled port except the ingress.
func (s *Switch) flood(from *Port, f *Frame) {
	s.Flooded++
	for _, p := range s.ports {
		if p != from && p.enabled {
			p.transmit(f)
		}
	}
}

// Port is one switch port and the cable to its device.
type Port struct {
	sw       *Switch
	name     string
	id       int
	sink     Sink
	toSwitch *sim.Resource // device -> switch direction of the cable
	toDevice *sim.Resource // switch -> device direction
	enabled  bool

	// onLinkChange, if set, is invoked (in event context) when the port's
	// administrative state flips; NICs use it to start their PHY debounce.
	onLinkChange func(up bool)
}

// Name returns the port's diagnostic name.
func (p *Port) Name() string { return p.name }

// Enabled reports the administrative state.
func (p *Port) Enabled() bool { return p.enabled }

// SetEnabled flips the port (failure injection / repair) and notifies the
// attached device.
func (p *Port) SetEnabled(up bool) {
	if p.enabled == up {
		return
	}
	p.enabled = up
	if p.onLinkChange != nil {
		p.onLinkChange(up)
	}
}

// OnLinkChange registers the device-side link state callback.
func (p *Port) OnLinkChange(fn func(up bool)) { p.onLinkChange = fn }

// Send carries a frame from the attached device into the switch,
// serializing it on the device→switch direction of the cable. Safe to call
// from procs or event callbacks.
func (p *Port) Send(f *Frame) {
	if !p.enabled {
		p.sw.Dropped++
		return
	}
	ser := p.serialization(f.WireLen())
	arrive := p.toSwitch.Reserve(ser)
	p.sw.eng.AtTimer(arrive+p.sw.params.PropagationDelay, p.sw.newFrameOp(opInject, p, f))
}

// transmit carries a frame from the switch out to the attached device.
func (p *Port) transmit(f *Frame) {
	ser := p.serialization(f.WireLen())
	done := p.toDevice.Reserve(ser)
	p.sw.eng.AtTimer(done+p.sw.params.PropagationDelay, p.sw.newFrameOp(opDeliver, p, f))
}

func (p *Port) serialization(n int) sim.Duration {
	return sim.Duration(float64(n) / p.sw.params.PortBandwidth * float64(time.Second))
}
