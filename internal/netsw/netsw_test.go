package netsw

import (
	"testing"
	"time"

	"oasis/internal/sim"
)

// collector records delivered frames with timestamps.
type collector struct {
	eng    *sim.Engine
	frames []*Frame
	times  []sim.Duration
}

func (c *collector) DeliverFrame(f *Frame) {
	c.frames = append(c.frames, f)
	c.times = append(c.times, c.eng.Now())
}

func frame(src, dst MAC, n int) *Frame {
	b := make([]byte, n)
	copy(b[0:6], dst[:])
	copy(b[6:12], src[:])
	return &Frame{Src: src, Dst: dst, Bytes: b}
}

var (
	macA = MAC{0xaa, 0, 0, 0, 0, 1}
	macB = MAC{0xbb, 0, 0, 0, 0, 2}
	macC = MAC{0xcc, 0, 0, 0, 0, 3}
)

func rig() (*sim.Engine, *Switch, []*collector, []*Port) {
	eng := sim.New()
	sw := New(eng, DefaultParams())
	var cols []*collector
	var ports []*Port
	for _, name := range []string{"a", "b", "c"} {
		c := &collector{eng: eng}
		cols = append(cols, c)
		ports = append(ports, sw.AttachPort(name, c))
	}
	return eng, sw, cols, ports
}

func TestUnknownDestinationFloods(t *testing.T) {
	eng, sw, cols, ports := rig()
	eng.At(0, func() { ports[0].Send(frame(macA, macB, 100)) })
	eng.Run()
	// macB unknown: flooded to b and c, not back to a.
	if len(cols[0].frames) != 0 || len(cols[1].frames) != 1 || len(cols[2].frames) != 1 {
		t.Fatalf("deliveries = %d/%d/%d, want 0/1/1",
			len(cols[0].frames), len(cols[1].frames), len(cols[2].frames))
	}
	if sw.Flooded != 1 {
		t.Fatalf("flooded = %d", sw.Flooded)
	}
}

func TestMACLearningDirectsTraffic(t *testing.T) {
	eng, sw, cols, ports := rig()
	eng.At(0, func() { ports[1].Send(frame(macB, Broadcast, 100)) }) // teach the switch macB -> port b
	eng.At(time.Millisecond, func() { ports[0].Send(frame(macA, macB, 100)) })
	eng.Run()
	if sw.LookupMAC(macB) != ports[1] {
		t.Fatal("switch did not learn macB")
	}
	// Second frame must be unicast to b only (c got only the broadcast).
	if len(cols[1].frames) != 1 || len(cols[2].frames) != 1 {
		t.Fatalf("deliveries b=%d c=%d, want 1/1", len(cols[1].frames), len(cols[2].frames))
	}
	if sw.Forwarded != 1 {
		t.Fatalf("forwarded = %d", sw.Forwarded)
	}
}

func TestMACRelearningOnNewPort(t *testing.T) {
	// The failover mechanism (§3.3.3): a frame with macB as source arriving
	// on port c immediately remaps macB.
	eng, sw, cols, ports := rig()
	eng.At(0, func() { ports[1].Send(frame(macB, Broadcast, 100)) })
	eng.At(time.Millisecond, func() { ports[2].Send(frame(macB, Broadcast, 100)) }) // borrow
	eng.At(2*time.Millisecond, func() { ports[0].Send(frame(macA, macB, 100)) })
	eng.Run()
	if sw.LookupMAC(macB) != ports[2] {
		t.Fatal("MAC borrowing did not remap the table")
	}
	// The directed frame goes to port c (2 broadcasts + 1 unicast there).
	if got := len(cols[2].frames); got != 2 {
		t.Fatalf("port c deliveries = %d, want 2 (one broadcast + one redirected unicast)", got)
	}
}

func TestDisabledPortDropsBothDirections(t *testing.T) {
	eng, sw, cols, ports := rig()
	eng.At(0, func() { ports[1].Send(frame(macB, Broadcast, 100)) })
	eng.At(time.Millisecond, func() { ports[1].SetEnabled(false) })
	eng.At(2*time.Millisecond, func() { ports[0].Send(frame(macA, macB, 100)) })     // to disabled
	eng.At(3*time.Millisecond, func() { ports[1].Send(frame(macB, Broadcast, 64)) }) // from disabled
	eng.Run()
	if len(cols[1].frames) != 0 {
		t.Fatal("disabled port received a frame")
	}
	if sw.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2", sw.Dropped)
	}
}

func TestLinkChangeCallback(t *testing.T) {
	eng, _, _, ports := rig()
	var events []bool
	ports[0].OnLinkChange(func(up bool) { events = append(events, up) })
	eng.At(0, func() {
		ports[0].SetEnabled(false)
		ports[0].SetEnabled(false) // no duplicate event
		ports[0].SetEnabled(true)
	})
	eng.Run()
	if len(events) != 2 || events[0] != false || events[1] != true {
		t.Fatalf("link events = %v, want [false true]", events)
	}
}

func TestStoreAndForwardLatency(t *testing.T) {
	eng, _, cols, ports := rig()
	eng.At(0, func() { ports[1].Send(frame(macB, Broadcast, 64)) })
	eng.At(time.Millisecond, func() { ports[0].Send(frame(macA, macB, 1500)) })
	eng.Run()
	if len(cols[1].times) != 1 {
		t.Fatal("frame not delivered")
	}
	elapsed := cols[1].times[0] - time.Millisecond
	// 1500 B at 12.5 GB/s = 120 ns per hop, two hops, + 600 ns processing
	// + 2×50 ns propagation = ~940 ns.
	if elapsed < 800*time.Nanosecond || elapsed > 1200*time.Nanosecond {
		t.Fatalf("switch transit = %v, want ~940ns", elapsed)
	}
}

func TestMinimumFrameSizePadding(t *testing.T) {
	f := frame(macA, macB, 20)
	if f.WireLen() != 64 {
		t.Fatalf("WireLen = %d, want 64 (Ethernet minimum)", f.WireLen())
	}
	f = frame(macA, macB, 1500)
	if f.WireLen() != 1500 {
		t.Fatalf("WireLen = %d", f.WireLen())
	}
}

func TestSerializationQueuesBackToBack(t *testing.T) {
	// Two 1500 B frames sent simultaneously must serialize on the sender's
	// cable: deliveries ~120 ns apart.
	eng, _, cols, ports := rig()
	eng.At(0, func() { ports[1].Send(frame(macB, Broadcast, 64)) })
	eng.At(time.Millisecond, func() {
		ports[0].Send(frame(macA, macB, 1500))
		ports[0].Send(frame(macA, macB, 1500))
	})
	eng.Run()
	if len(cols[1].times) != 2 {
		t.Fatalf("deliveries = %d, want 2", len(cols[1].times))
	}
	gap := cols[1].times[1] - cols[1].times[0]
	if gap < 100*time.Nanosecond || gap > 150*time.Nanosecond {
		t.Fatalf("inter-frame gap = %v, want ~120ns line-rate spacing", gap)
	}
}
