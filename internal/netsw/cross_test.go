package netsw

import (
	"testing"
	"time"

	"oasis/internal/sim"
)

// The switch must declare store-and-forward processing plus one cable hop
// as lookahead — the floor under every frame it could push to a peer
// partition.
func TestDeclareCrossUplinkLatency(t *testing.T) {
	g := sim.NewGroup()
	a, b := g.AddPartition(), g.AddPartition()
	sw := New(a, DefaultParams())
	link := sw.DeclareCrossUplink(g, b)
	want := DefaultParams().ProcessingDelay + DefaultParams().PropagationDelay
	if link.MinLatency() != want {
		t.Fatalf("declared lookahead %v, want processing+propagation = %v", link.MinLatency(), want)
	}
	var at sim.Duration
	a.Go("framer", func(p *sim.Proc) {
		p.Sleep(time.Microsecond)
		link.Send(p.Now()+link.MinLatency(), func() { at = b.Now() })
	})
	g.RunUntil(10 * time.Microsecond)
	g.Shutdown()
	if at != time.Microsecond+want {
		t.Fatalf("cross frame event fired at %v, want %v", at, time.Microsecond+want)
	}
}
