package netsw

import "oasis/internal/sim"

// DeclareCrossUplink registers a cross-partition event channel from the
// switch's partition toward peer, declaring the switch's intrinsic minimum
// frame latency as lookahead: every forwarded frame pays at least the
// store-and-forward processing delay plus one hop of cable propagation
// before it can reach a port on another partition, so that sum is a sound
// conservative window for partitioned execution. Wiring code calls this
// when an uplink it builds spans partitions; the returned link carries the
// frames.
func (s *Switch) DeclareCrossUplink(g *sim.Group, peer *sim.Engine) *sim.CrossLink {
	return g.Link(s.eng, peer, s.params.ProcessingDelay+s.params.PropagationDelay)
}
