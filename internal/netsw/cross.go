package netsw

import "oasis/internal/sim"

// DeclareCrossUplink registers a cross-partition event channel from the
// switch's partition toward peer, declaring the switch's intrinsic minimum
// frame latency as lookahead: every forwarded frame pays at least the
// store-and-forward processing delay plus one hop of cable propagation
// before it can reach a port on another partition, so that sum is a sound
// conservative window for partitioned execution. Wiring code calls this
// when an uplink it builds spans partitions; the returned link carries the
// frames.
func (s *Switch) DeclareCrossUplink(g *sim.Group, peer *sim.Engine) *sim.CrossLink {
	return g.Link(s.eng, peer, s.params.ProcessingDelay+s.params.PropagationDelay)
}

// RemotePort is a switch port whose device lives on another simulation
// partition: the cable is modeled as the ordinary port cable plus an
// extension of `extra` each way (one more switch hop of distance, by
// default), and that extension is the declared cross-partition lookahead.
// The raw cable alone would not do — 64 B serialization plus one
// propagation hop is ~55 ns, under the group's 100 ns lookahead floor —
// so a remote device is, by construction, a machine at least one extra
// hop away from the rack switch. Per-host partitioned pods attach their
// load-generating clients this way.
//
// Direction mechanics:
//
//   - device→switch: Send runs on the device partition; serialization is
//     paid on a device-side resource (the cable's near segment), then the
//     frame crosses and is injected into the switch pipeline on arrival.
//     The frame bytes are handed off, never recycled, so the switch side
//     may retain them.
//   - switch→device: the switch delivers to the port's sink in switch
//     event context (after the usual egress serialization + propagation);
//     the relay copies the wire image — producers on the switch partition
//     recycle their TX buffers — and crosses to the device sink.
type RemotePort struct {
	sw       *Switch
	port     *Port       // switch-side port; its sink is the relay
	dev      *sim.Engine // device partition
	sink     Sink        // device-side sink
	extra    sim.Duration
	toSwitch *sim.Resource // device-side cable segment (device→switch)
	devLink  *sim.CrossLink
	swLink   *sim.CrossLink
}

// AttachRemotePort attaches a port whose device (sink) executes on
// partition dev of group g. extra is the cable-extension latency added in
// each direction and declared as lookahead; extra <= 0 selects the default
// of one additional switch hop (processing + propagation delay). The
// device side must send through the returned RemotePort, not the
// underlying Port.
func (s *Switch) AttachRemotePort(g *sim.Group, name string, dev *sim.Engine, sink Sink, extra sim.Duration) *RemotePort {
	if extra <= 0 {
		extra = s.params.ProcessingDelay + s.params.PropagationDelay
	}
	r := &RemotePort{
		sw:       s,
		dev:      dev,
		sink:     sink,
		extra:    extra,
		toSwitch: sim.NewResource(dev),
	}
	r.port = s.AttachPort(name, r)
	r.devLink = g.Link(dev, s.eng, s.params.PropagationDelay+extra)
	r.swLink = g.Link(s.eng, dev, extra)
	return r
}

// Port returns the switch-side port (for fault injection, MAC-table
// inspection, and diagnostics). Only the switch partition may operate it.
func (r *RemotePort) Port() *Port { return r.port }

// Extra returns the cable-extension latency.
func (r *RemotePort) Extra() sim.Duration { return r.extra }

// Send carries a frame from the remote device into the switch. Must be
// called from the device partition's execution context. The frame bytes
// pass to the fabric and must not be reused by the caller.
func (r *RemotePort) Send(f *Frame) {
	ser := r.port.serialization(f.WireLen())
	done := r.toSwitch.Reserve(ser)
	fr := *f
	arrive := done + r.sw.params.PropagationDelay + r.extra
	r.devLink.Send(arrive, func() {
		r.sw.inject(r.port, &fr)
	})
}

// DeliverFrame is the switch-side half of the relay (the Port's sink):
// copy the wire image out of the producer's buffer and cross to the
// device partition. Implements Sink; runs in switch event context.
func (r *RemotePort) DeliverFrame(f *Frame) {
	b := make([]byte, len(f.Bytes))
	copy(b, f.Bytes)
	fr := Frame{Src: f.Src, Dst: f.Dst, Bytes: b}
	r.swLink.Send(r.sw.eng.Now()+r.extra, func() {
		r.sink.DeliverFrame(&fr)
	})
}
