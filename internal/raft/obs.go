package raft

import "oasis/internal/obs"

// RegisterObs registers the replica's counters under prefix/*
// (conventionally raft/<id>).
func (n *Node) RegisterObs(r *obs.Registry, prefix string) {
	r.Counter(prefix+"/elections", func() int64 { return n.Elections })
	r.Counter(prefix+"/terms_seen", func() int64 { return int64(n.TermsSeen) })
	r.Counter(prefix+"/applied", func() int64 { return n.AppliedCnt })
	r.Gauge(prefix+"/commit_index", func() float64 { return float64(n.commitIndex) })
	r.Gauge(prefix+"/is_leader", func() float64 {
		if n.role == leader {
			return 1
		}
		return 0
	})
}
