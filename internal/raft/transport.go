package raft

import (
	"encoding/binary"
	"fmt"

	"oasis/internal/cache"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/msgchan"
	"oasis/internal/sim"
)

// LocalTransport delivers messages directly between colocated nodes with a
// configurable one-way delay and optional per-link disconnection. Used by
// unit tests and by single-host deployments.
type LocalTransport struct {
	eng   *sim.Engine
	delay sim.Duration
	nodes map[int]*Node
	down  map[[2]int]bool // directed (from,to) cut

	Sent, Dropped int64
}

// NewLocalTransport creates a hub with the given one-way delivery delay.
func NewLocalTransport(eng *sim.Engine, delay sim.Duration) *LocalTransport {
	return &LocalTransport{
		eng:   eng,
		delay: delay,
		nodes: make(map[int]*Node),
		down:  make(map[[2]int]bool),
	}
}

// Register attaches a node to the hub.
func (t *LocalTransport) Register(n *Node) { t.nodes[n.ID()] = n }

// SetLink cuts or restores the directed link from -> to.
func (t *LocalTransport) SetLink(from, to int, up bool) {
	t.down[[2]int{from, to}] = !up
}

// Isolate cuts all links to and from a node (models a partition).
func (t *LocalTransport) Isolate(id int, isolated bool) {
	for other := range t.nodes {
		if other == id {
			continue
		}
		t.SetLink(id, other, !isolated)
		t.SetLink(other, id, !isolated)
	}
}

// Send implements Transport.
func (t *LocalTransport) Send(p *sim.Proc, m Message) {
	if t.down[[2]int{m.From, m.To}] {
		t.Dropped++
		return
	}
	dst, ok := t.nodes[m.To]
	if !ok {
		t.Dropped++
		return
	}
	t.Sent++
	t.eng.After(t.delay, func() { dst.Deliver(m) })
}

// ChannelTransport carries Raft RPCs over the Oasis datapath's 64-byte
// message channels (§3.5: "RPCs transmitted over the message channels").
// One RPC fits one channel message: commands are capped at MaxCmdBytes
// (allocator decisions are 7 bytes). The receive side runs a small pump
// process per inbound channel that decodes and delivers.
type ChannelTransport struct {
	eng  *sim.Engine
	id   int
	out  map[int]*msgchan.Sender // by peer id
	node *Node

	Sent, Oversize int64
}

// MaxCmdBytes bounds a log entry's command so an RPC fits a 64-byte slot.
const MaxCmdBytes = 16

// NewChannelTransport creates the transport for node id on the given host.
// Wire it to each peer with ConnectPeer before starting the node.
func NewChannelTransport(eng *sim.Engine, id int) *ChannelTransport {
	return &ChannelTransport{eng: eng, id: id, out: make(map[int]*msgchan.Sender)}
}

// Bind attaches the local node (must be called before any receive pump
// delivers).
func (t *ChannelTransport) Bind(n *Node) { t.node = n }

// ConnectPeer allocates a pair of 64 B channels between this node's host
// and the peer's transport/host, and starts receive pumps on both sides.
func (t *ChannelTransport) ConnectPeer(pool *cxl.Pool, self *host.Host, peer *ChannelTransport, peerHost *host.Host) error {
	cfg := msgchan.Config{Slots: 1024, MsgSize: 64, Design: msgchan.DesignInvalidatePrefetched, Category: "raft"}
	mk := func(txHost, rxHost *host.Host) (*msgchan.Sender, *msgchan.Receiver, error) {
		region, err := pool.Alloc(msgchan.RegionBytes(cfg))
		if err != nil {
			return nil, nil, err
		}
		ch, err := msgchan.New(region, cfg)
		if err != nil {
			return nil, nil, err
		}
		return msgchan.NewSender(ch, txHost.CXLPort, cache.DefaultParams()), msgchan.NewReceiver(ch, rxHost.Cache), nil
	}
	sendAB, recvAB, err := mk(self, peerHost)
	if err != nil {
		return err
	}
	sendBA, recvBA, err := mk(peerHost, self)
	if err != nil {
		return err
	}
	t.out[peer.id] = sendAB
	peer.out[t.id] = sendBA
	t.startPump(recvBA)
	peer.startPump(recvAB)
	return nil
}

// startPump launches the receive process for one inbound channel.
func (t *ChannelTransport) startPump(rx *msgchan.Receiver) {
	t.eng.Go(fmt.Sprintf("raft-pump-%d", t.id), func(p *sim.Proc) {
		idle := sim.Duration(0)
		for {
			payload, ok := rx.Poll(p)
			if !ok {
				idle = nextIdle(idle)
				p.Sleep(idle)
				continue
			}
			idle = 0
			m, err := decodeMessage(payload)
			if err != nil {
				continue
			}
			if t.node != nil {
				t.node.Deliver(m)
			}
		}
	})
}

func nextIdle(cur sim.Duration) sim.Duration {
	if cur == 0 {
		return 200
	}
	cur *= 2
	if cur > 50_000 { // 50 µs cap: far below election timescales
		cur = 50_000
	}
	return cur
}

// Send implements Transport.
func (t *ChannelTransport) Send(p *sim.Proc, m Message) {
	s, ok := t.out[m.To]
	if !ok {
		return
	}
	payload, err := encodeMessage(m)
	if err != nil {
		t.Oversize++
		return
	}
	if s.TrySend(p, payload) {
		s.Flush(p)
		t.Sent++
	}
}

// Wire format (63-byte payload): type(1) from(1) to(1) term(8) a(8) b(8)
// c(8) flags(1) cmdLen(1) cmd(<=16). Field meaning depends on type:
//
//	VoteReq:    a=lastLogIndex b=lastLogTerm
//	VoteResp:   flags bit0 = granted
//	AppendReq:  a=prevIndex b=prevTerm c=leaderCommit, one entry max
//	            (entry term reuses term field? no: entryTerm(8) in cmd area)
//	AppendResp: a=matchIndex, flags bit0 = success
func encodeMessage(m Message) ([]byte, error) {
	if len(m.Entries) > 1 {
		return nil, fmt.Errorf("raft: channel transport carries at most one entry per RPC")
	}
	buf := make([]byte, 0, 63)
	buf = append(buf, byte(m.Type), byte(m.From), byte(m.To))
	var w [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(w[:], v)
		buf = append(buf, w[:]...)
	}
	put(m.Term)
	switch m.Type {
	case MsgVoteReq:
		put(m.LastLogIndex)
		put(m.LastLogTerm)
	case MsgVoteResp:
		flags := byte(0)
		if m.Granted {
			flags = 1
		}
		buf = append(buf, flags)
	case MsgAppendReq:
		put(m.PrevIndex)
		put(m.PrevTerm)
		put(m.LeaderCommit)
		if len(m.Entries) == 1 {
			e := m.Entries[0]
			if len(e.Cmd) > MaxCmdBytes {
				return nil, fmt.Errorf("raft: command of %d bytes exceeds %d", len(e.Cmd), MaxCmdBytes)
			}
			put(e.Term)
			buf = append(buf, byte(len(e.Cmd)))
			buf = append(buf, e.Cmd...)
		} else {
			put(0)
			buf = append(buf, 0xFF) // no entry marker
		}
	case MsgAppendResp:
		put(m.MatchIndex)
		flags := byte(0)
		if m.Success {
			flags = 1
		}
		buf = append(buf, flags)
	}
	return buf, nil
}

func decodeMessage(payload []byte) (Message, error) {
	if len(payload) < 11 {
		return Message{}, fmt.Errorf("raft: short message")
	}
	var m Message
	m.Type = MsgType(payload[0])
	m.From = int(payload[1])
	m.To = int(payload[2])
	b := payload[3:]
	get := func() uint64 {
		v := binary.LittleEndian.Uint64(b[:8])
		b = b[8:]
		return v
	}
	m.Term = get()
	switch m.Type {
	case MsgVoteReq:
		m.LastLogIndex = get()
		m.LastLogTerm = get()
	case MsgVoteResp:
		m.Granted = b[0]&1 != 0
	case MsgAppendReq:
		m.PrevIndex = get()
		m.PrevTerm = get()
		m.LeaderCommit = get()
		entryTerm := get()
		n := b[0]
		b = b[1:]
		if n != 0xFF {
			cmd := make([]byte, n)
			copy(cmd, b[:n])
			m.Entries = []Entry{{Term: entryTerm, Cmd: cmd}}
		}
	case MsgAppendResp:
		m.MatchIndex = get()
		m.Success = b[0]&1 != 0
	default:
		return Message{}, fmt.Errorf("raft: unknown type %d", m.Type)
	}
	return m, nil
}
