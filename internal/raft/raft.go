// Package raft implements the Raft consensus algorithm (leader election,
// log replication, commitment; Ongaro & Ousterhout 2014) used to replicate
// the Oasis pod-wide allocator (§3.5). RPCs travel over an abstract
// Transport; the production transport runs on the datapath's 64-byte
// message channels, with one RPC per channel message (allocator commands
// are small fixed-size records, so no fragmentation is needed).
//
// Scope: the full core protocol — randomized election timeouts, term and
// vote safety, log matching, commit via majority match — without
// membership changes or snapshots, which the allocator does not need (its
// log is a bounded stream of placement decisions).
package raft

import (
	"fmt"
	"math/rand"
	"time"

	"oasis/internal/sim"
)

// MsgType enumerates Raft RPCs.
type MsgType byte

const (
	MsgVoteReq MsgType = iota + 1
	MsgVoteResp
	MsgAppendReq
	MsgAppendResp
)

// Entry is one log record.
type Entry struct {
	Term uint64
	Cmd  []byte
}

// Message is the single wire format for all RPCs (unused fields zero).
type Message struct {
	Type     MsgType
	From, To int
	Term     uint64

	// Vote request/response.
	LastLogIndex uint64
	LastLogTerm  uint64
	Granted      bool

	// Append request/response.
	PrevIndex    uint64
	PrevTerm     uint64
	Entries      []Entry
	LeaderCommit uint64
	Success      bool
	MatchIndex   uint64
}

// Transport delivers messages between nodes. Send must not block the
// calling process indefinitely; lossy transports are fine (Raft tolerates
// drops).
type Transport interface {
	Send(p *sim.Proc, m Message)
}

// Config tunes timers. Election timeouts are randomized per election in
// [ElectionMin, ElectionMax).
type Config struct {
	ElectionMin  sim.Duration
	ElectionMax  sim.Duration
	Heartbeat    sim.Duration
	Seed         int64 // per-node RNG seed offset for determinism
	MaxBatch     int   // max entries per AppendEntries
	ProposeLimit sim.Duration
}

// DefaultConfig uses datacenter-fast timers (the channels deliver in
// microseconds, so tens of milliseconds of election timeout is generous).
func DefaultConfig() Config {
	return Config{
		ElectionMin:  20 * time.Millisecond,
		ElectionMax:  40 * time.Millisecond,
		Heartbeat:    5 * time.Millisecond,
		MaxBatch:     1,
		ProposeLimit: 500 * time.Millisecond,
	}
}

type role int

const (
	follower role = iota
	candidate
	leader
)

func (r role) String() string {
	switch r {
	case follower:
		return "follower"
	case candidate:
		return "candidate"
	default:
		return "leader"
	}
}

// Node is one Raft replica. Create with New, then Start.
type Node struct {
	eng   *sim.Engine
	id    int
	peers []int // all node ids including self
	cfg   Config
	tr    Transport
	apply func(index uint64, cmd []byte)

	inbox *sim.Queue[Message]
	rng   *rand.Rand

	role        role
	currentTerm uint64
	votedFor    int // -1 = none
	log         []Entry
	commitIndex uint64
	lastApplied uint64
	leaderID    int

	votes      map[int]bool
	nextIndex  map[int]uint64
	matchIndex map[int]uint64

	deadline  sim.Duration // next election/heartbeat action
	commitSig *sim.Signal
	stopped   bool

	// Stats.
	Elections  int64
	TermsSeen  uint64
	AppliedCnt int64
}

// New creates a node. peers must list every node id, including id itself.
// apply is invoked exactly once per committed entry, in log order.
func New(eng *sim.Engine, id int, peers []int, tr Transport, apply func(index uint64, cmd []byte), cfg Config) *Node {
	n := &Node{
		eng:        eng,
		id:         id,
		peers:      peers,
		cfg:        cfg,
		tr:         tr,
		apply:      apply,
		inbox:      sim.NewQueue[Message](eng),
		rng:        rand.New(rand.NewSource(cfg.Seed + int64(id)*7919)),
		votedFor:   -1,
		leaderID:   -1,
		votes:      make(map[int]bool),
		nextIndex:  make(map[int]uint64),
		matchIndex: make(map[int]uint64),
		commitSig:  sim.NewSignal(eng),
	}
	return n
}

// ID returns the node id.
func (n *Node) ID() int { return n.id }

// IsLeader reports whether this node currently believes it is the leader.
func (n *Node) IsLeader() bool { return n.role == leader }

// Leader returns the last known leader id (-1 if unknown).
func (n *Node) Leader() int { return n.leaderID }

// Term returns the current term.
func (n *Node) Term() uint64 { return n.currentTerm }

// CommitIndex returns the highest committed log index.
func (n *Node) CommitIndex() uint64 { return n.commitIndex }

// Deliver hands an incoming message to the node (called by transports).
func (n *Node) Deliver(m Message) { n.inbox.Push(m) }

// Stop halts the node (simulating a crash); it stops processing messages.
// The role field is deliberately left as-is — a crashed ex-leader still
// *believes* it is leader, which is exactly the zombie the cluster's term
// checks must fence. Callers scanning for a live leader must therefore
// check Stopped() alongside IsLeader().
func (n *Node) Stop() { n.stopped = true }

// Stopped reports whether the node is crashed (stopped, not restarted).
func (n *Node) Stopped() bool { return n.stopped }

// Restart revives a stopped node as a follower (volatile state reset, log
// retained — we model a process restart with durable log, as Raft assumes).
func (n *Node) Restart() {
	n.stopped = false
	n.role = follower
	n.votes = make(map[int]bool)
	n.resetElectionTimer()
}

// Start launches the node's process.
func (n *Node) Start() {
	n.eng.Go(fmt.Sprintf("raft-%d", n.id), n.run)
}

// Propose appends cmd to the replicated log if this node is leader,
// blocking the calling process until the entry commits (or the node loses
// leadership / times out). It returns true on commitment.
func (n *Node) Propose(p *sim.Proc, cmd []byte) bool {
	if n.role != leader || n.stopped {
		return false
	}
	n.log = append(n.log, Entry{Term: n.currentTerm, Cmd: cmd})
	index := uint64(len(n.log))
	n.matchIndex[n.id] = index
	n.broadcastAppends(p)
	deadline := p.Now() + n.cfg.ProposeLimit
	for n.commitIndex < index {
		if n.role != leader || n.stopped {
			return false
		}
		remaining := deadline - p.Now()
		if remaining <= 0 {
			return false
		}
		n.commitSig.WaitTimeout(p, remaining)
	}
	// Committed; entry must still be ours (term check).
	return n.log[index-1].Term == n.currentTerm
}

// run is the node's main loop.
func (n *Node) run(p *sim.Proc) {
	n.resetElectionTimer()
	for {
		wait := n.deadline - p.Now()
		if wait < 0 {
			wait = 0
		}
		m, ok := n.inbox.PopTimeout(p, wait)
		if n.stopped {
			// Crashed: drain and ignore until Restart.
			p.Sleep(n.cfg.Heartbeat)
			continue
		}
		if ok {
			n.step(p, m)
		}
		if p.Now() >= n.deadline {
			n.onTimer(p)
		}
	}
}

func (n *Node) resetElectionTimer() {
	span := n.cfg.ElectionMax - n.cfg.ElectionMin
	d := n.cfg.ElectionMin + sim.Duration(n.rng.Int63n(int64(span)))
	n.deadline = n.eng.Now() + d
}

func (n *Node) onTimer(p *sim.Proc) {
	if n.role == leader {
		n.broadcastAppends(p) // heartbeat
		n.deadline = p.Now() + n.cfg.Heartbeat
		return
	}
	n.startElection(p)
}

func (n *Node) startElection(p *sim.Proc) {
	n.role = candidate
	n.currentTerm++
	n.votedFor = n.id
	n.leaderID = -1
	n.votes = map[int]bool{n.id: true}
	n.Elections++
	n.resetElectionTimer()
	lastIdx, lastTerm := n.lastLog()
	for _, peer := range n.peers {
		if peer == n.id {
			continue
		}
		n.tr.Send(p, Message{
			Type: MsgVoteReq, From: n.id, To: peer, Term: n.currentTerm,
			LastLogIndex: lastIdx, LastLogTerm: lastTerm,
		})
	}
	n.maybeWinElection(p)
}

func (n *Node) lastLog() (idx, term uint64) {
	if len(n.log) == 0 {
		return 0, 0
	}
	return uint64(len(n.log)), n.log[len(n.log)-1].Term
}

// becomeFollower drops to follower in the given term.
func (n *Node) becomeFollower(term uint64) {
	if term > n.currentTerm {
		n.currentTerm = term
		n.votedFor = -1
	}
	if n.role != follower {
		n.role = follower
	}
	n.resetElectionTimer()
}

func (n *Node) step(p *sim.Proc, m Message) {
	if m.Term > n.currentTerm {
		n.becomeFollower(m.Term)
	}
	switch m.Type {
	case MsgVoteReq:
		n.handleVoteReq(p, m)
	case MsgVoteResp:
		n.handleVoteResp(p, m)
	case MsgAppendReq:
		n.handleAppendReq(p, m)
	case MsgAppendResp:
		n.handleAppendResp(p, m)
	}
	if m.Term > n.TermsSeen {
		n.TermsSeen = m.Term
	}
}

func (n *Node) handleVoteReq(p *sim.Proc, m Message) {
	granted := false
	if m.Term >= n.currentTerm && (n.votedFor == -1 || n.votedFor == m.From) {
		// §5.4.1 election restriction: candidate's log must be at least as
		// up-to-date as ours.
		lastIdx, lastTerm := n.lastLog()
		upToDate := m.LastLogTerm > lastTerm ||
			(m.LastLogTerm == lastTerm && m.LastLogIndex >= lastIdx)
		if upToDate {
			granted = true
			n.votedFor = m.From
			n.resetElectionTimer()
		}
	}
	n.tr.Send(p, Message{
		Type: MsgVoteResp, From: n.id, To: m.From, Term: n.currentTerm, Granted: granted,
	})
}

func (n *Node) handleVoteResp(p *sim.Proc, m Message) {
	if n.role != candidate || m.Term != n.currentTerm || !m.Granted {
		return
	}
	n.votes[m.From] = true
	n.maybeWinElection(p)
}

func (n *Node) maybeWinElection(p *sim.Proc) {
	if n.role != candidate || len(n.votes) <= len(n.peers)/2 {
		return
	}
	n.role = leader
	n.leaderID = n.id
	lastIdx, _ := n.lastLog()
	for _, peer := range n.peers {
		n.nextIndex[peer] = lastIdx + 1
		n.matchIndex[peer] = 0
	}
	n.matchIndex[n.id] = lastIdx
	n.broadcastAppends(p)
	n.deadline = p.Now() + n.cfg.Heartbeat
}

func (n *Node) broadcastAppends(p *sim.Proc) {
	for _, peer := range n.peers {
		if peer != n.id {
			n.sendAppend(p, peer)
		}
	}
}

func (n *Node) sendAppend(p *sim.Proc, peer int) {
	next := n.nextIndex[peer]
	if next == 0 {
		next = 1
	}
	prevIdx := next - 1
	var prevTerm uint64
	if prevIdx > 0 && prevIdx <= uint64(len(n.log)) {
		prevTerm = n.log[prevIdx-1].Term
	}
	var entries []Entry
	for i := next; i <= uint64(len(n.log)) && len(entries) < n.cfg.MaxBatch; i++ {
		entries = append(entries, n.log[i-1])
	}
	n.tr.Send(p, Message{
		Type: MsgAppendReq, From: n.id, To: peer, Term: n.currentTerm,
		PrevIndex: prevIdx, PrevTerm: prevTerm,
		Entries: entries, LeaderCommit: n.commitIndex,
	})
}

func (n *Node) handleAppendReq(p *sim.Proc, m Message) {
	resp := Message{Type: MsgAppendResp, From: n.id, To: m.From, Term: n.currentTerm}
	if m.Term < n.currentTerm {
		n.tr.Send(p, resp)
		return
	}
	// Valid leader for this term.
	n.leaderID = m.From
	if n.role != follower {
		n.role = follower
	}
	n.resetElectionTimer()
	// Log matching check.
	if m.PrevIndex > 0 {
		if m.PrevIndex > uint64(len(n.log)) || n.log[m.PrevIndex-1].Term != m.PrevTerm {
			n.tr.Send(p, resp) // Success=false: leader backs up
			return
		}
	}
	// Append, truncating conflicts.
	idx := m.PrevIndex
	for _, e := range m.Entries {
		idx++
		if idx <= uint64(len(n.log)) {
			if n.log[idx-1].Term != e.Term {
				n.log = n.log[:idx-1]
				n.log = append(n.log, e)
			}
		} else {
			n.log = append(n.log, e)
		}
	}
	if m.LeaderCommit > n.commitIndex {
		last := uint64(len(n.log))
		n.commitIndex = min64(m.LeaderCommit, last)
		n.applyCommitted()
	}
	resp.Success = true
	resp.MatchIndex = idx
	n.tr.Send(p, resp)
}

func (n *Node) handleAppendResp(p *sim.Proc, m Message) {
	if n.role != leader || m.Term != n.currentTerm {
		return
	}
	if !m.Success {
		if n.nextIndex[m.From] > 1 {
			n.nextIndex[m.From]--
		}
		n.sendAppend(p, m.From)
		return
	}
	if m.MatchIndex > n.matchIndex[m.From] {
		n.matchIndex[m.From] = m.MatchIndex
		n.nextIndex[m.From] = m.MatchIndex + 1
	}
	n.advanceCommit()
	// More to replicate?
	if n.nextIndex[m.From] <= uint64(len(n.log)) {
		n.sendAppend(p, m.From)
	}
}

// advanceCommit commits the highest index replicated on a majority whose
// entry is from the current term (§5.4.2).
func (n *Node) advanceCommit() {
	for idx := uint64(len(n.log)); idx > n.commitIndex; idx-- {
		if n.log[idx-1].Term != n.currentTerm {
			break
		}
		count := 0
		for _, peer := range n.peers {
			if n.matchIndex[peer] >= idx {
				count++
			}
		}
		if count > len(n.peers)/2 {
			n.commitIndex = idx
			n.applyCommitted()
			n.commitSig.Broadcast()
			break
		}
	}
}

func (n *Node) applyCommitted() {
	for n.lastApplied < n.commitIndex {
		n.lastApplied++
		n.AppliedCnt++
		if n.apply != nil {
			n.apply(n.lastApplied, n.log[n.lastApplied-1].Cmd)
		}
	}
}

// LogLen returns the log length (tests).
func (n *Node) LogLen() int { return len(n.log) }

// EntryAt returns the log entry at 1-based index (tests).
func (n *Node) EntryAt(idx uint64) Entry { return n.log[idx-1] }

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
