package raft

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/sim"
)

// cluster spins up n nodes on a LocalTransport.
type cluster struct {
	eng   *sim.Engine
	tr    *LocalTransport
	nodes []*Node
	// applied[i] is the command sequence node i's state machine saw.
	applied [][]([]byte)
}

func newCluster(n int, seed int64) *cluster {
	eng := sim.New()
	c := &cluster{eng: eng, tr: NewLocalTransport(eng, 50*time.Microsecond)}
	c.applied = make([][]([]byte), n)
	var ids []int
	for i := 0; i < n; i++ {
		ids = append(ids, i)
	}
	cfg := DefaultConfig()
	cfg.Seed = seed
	for i := 0; i < n; i++ {
		i := i
		node := New(eng, i, ids, c.tr, func(_ uint64, cmd []byte) {
			cp := make([]byte, len(cmd))
			copy(cp, cmd)
			c.applied[i] = append(c.applied[i], cp)
		}, cfg)
		c.tr.Register(node)
		c.nodes = append(c.nodes, node)
	}
	for _, node := range c.nodes {
		node.Start()
	}
	return c
}

// leader returns the unique live leader, or nil.
func (c *cluster) leader() *Node {
	var l *Node
	for _, n := range c.nodes {
		if n.IsLeader() && !n.stopped {
			if l != nil && l.Term() == n.Term() {
				return nil // two leaders in one term: safety violation
			}
			if l == nil || n.Term() > l.Term() {
				l = n
			}
		}
	}
	return l
}

func TestElectsExactlyOneLeader(t *testing.T) {
	c := newCluster(3, 1)
	c.eng.RunUntil(200 * time.Millisecond)
	l := c.leader()
	if l == nil {
		t.Fatal("no leader after 200ms")
	}
	// Every node agrees on the leader.
	for _, n := range c.nodes {
		if n.Leader() != l.ID() {
			t.Fatalf("node %d thinks leader is %d, want %d", n.ID(), n.Leader(), l.ID())
		}
	}
	c.eng.Shutdown()
}

func TestReplicationAppliesInOrderEverywhere(t *testing.T) {
	c := newCluster(3, 2)
	committed := 0
	c.eng.Go("proposer", func(p *sim.Proc) {
		p.Sleep(100 * time.Millisecond) // allow election
		l := c.leader()
		if l == nil {
			t.Error("no leader")
			return
		}
		for i := 0; i < 20; i++ {
			cmd := []byte(fmt.Sprintf("cmd-%02d", i))
			if !l.Propose(p, cmd) {
				t.Errorf("propose %d failed", i)
				return
			}
			committed++
		}
	})
	c.eng.RunUntil(2 * time.Second)
	if committed != 20 {
		t.Fatalf("committed %d/20", committed)
	}
	// Allow followers to apply via subsequent heartbeats.
	for i, seq := range c.applied {
		if len(seq) != 20 {
			t.Fatalf("node %d applied %d entries, want 20", i, len(seq))
		}
		for j, cmd := range seq {
			want := []byte(fmt.Sprintf("cmd-%02d", j))
			if !bytes.Equal(cmd, want) {
				t.Fatalf("node %d applied %q at %d, want %q", i, cmd, j, want)
			}
		}
	}
	c.eng.Shutdown()
}

func TestLeaderFailureTriggersReelection(t *testing.T) {
	c := newCluster(3, 3)
	var oldLeader, newLeader int
	c.eng.Go("chaos", func(p *sim.Proc) {
		p.Sleep(100 * time.Millisecond)
		l := c.leader()
		if l == nil {
			t.Error("no initial leader")
			return
		}
		oldLeader = l.ID()
		l.Stop()
		p.Sleep(300 * time.Millisecond)
		nl := c.leader()
		if nl == nil {
			t.Error("no new leader after failure")
			return
		}
		newLeader = nl.ID()
	})
	c.eng.RunUntil(time.Second)
	if newLeader == oldLeader {
		t.Fatalf("leadership did not move (still %d)", oldLeader)
	}
	c.eng.Shutdown()
}

func TestRestartedNodeCatchesUp(t *testing.T) {
	c := newCluster(3, 4)
	c.eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(100 * time.Millisecond)
		l := c.leader()
		if l == nil {
			t.Error("no leader")
			return
		}
		// Pick a follower and crash it.
		var victim *Node
		for _, n := range c.nodes {
			if n != l {
				victim = n
				break
			}
		}
		victim.Stop()
		for i := 0; i < 5; i++ {
			if !l.Propose(p, []byte{byte(i)}) {
				t.Errorf("propose %d failed", i)
			}
		}
		victim.Restart()
		p.Sleep(300 * time.Millisecond)
		if victim.CommitIndex() < 5 {
			t.Errorf("restarted node commit=%d, want >=5", victim.CommitIndex())
		}
	})
	c.eng.RunUntil(time.Second)
	c.eng.Shutdown()
}

func TestPartitionedLeaderCannotCommit(t *testing.T) {
	c := newCluster(3, 5)
	c.eng.Go("driver", func(p *sim.Proc) {
		p.Sleep(100 * time.Millisecond)
		l := c.leader()
		if l == nil {
			t.Error("no leader")
			return
		}
		c.tr.Isolate(l.ID(), true)
		if l.Propose(p, []byte("doomed")) {
			t.Error("isolated leader committed an entry")
		}
		// The rest elect a new leader and commit there.
		p.Sleep(300 * time.Millisecond)
		nl := c.leader()
		if nl == nil || nl.ID() == l.ID() {
			// l may still believe it leads, but a live majority leader must
			// exist on the other side.
			found := false
			for _, n := range c.nodes {
				if n.ID() != l.ID() && n.IsLeader() {
					found = true
					nl = n
				}
			}
			if !found {
				t.Error("majority side never elected a leader")
				return
			}
		}
		if !nl.Propose(p, []byte("survives")) {
			t.Error("majority leader could not commit")
		}
		// Heal; old leader must step down and converge.
		c.tr.Isolate(l.ID(), false)
		p.Sleep(300 * time.Millisecond)
		if l.IsLeader() && l.Term() <= nl.Term() {
			t.Error("stale leader did not step down after heal")
		}
	})
	c.eng.RunUntil(2 * time.Second)
	// Logs must agree on the committed prefix.
	var ref []([]byte)
	for i, seq := range c.applied {
		if ref == nil && len(seq) > 0 {
			ref = seq
			continue
		}
		m := len(seq)
		if len(ref) < m {
			m = len(ref)
		}
		for j := 0; j < m; j++ {
			if !bytes.Equal(seq[j], ref[j]) {
				t.Fatalf("node %d disagrees at applied index %d", i, j)
			}
		}
	}
	c.eng.Shutdown()
}

func TestFiveNodeClusterCommits(t *testing.T) {
	c := newCluster(5, 6)
	done := false
	c.eng.Go("proposer", func(p *sim.Proc) {
		p.Sleep(150 * time.Millisecond)
		l := c.leader()
		if l == nil {
			t.Error("no leader")
			return
		}
		// Two followers down: still a majority.
		stopped := 0
		for _, n := range c.nodes {
			if n != l && stopped < 2 {
				n.Stop()
				stopped++
			}
		}
		for i := 0; i < 5; i++ {
			if !l.Propose(p, []byte{byte(i)}) {
				t.Errorf("propose %d failed with 3/5 alive", i)
				return
			}
		}
		done = true
	})
	c.eng.RunUntil(2 * time.Second)
	if !done {
		t.Fatal("proposals did not finish")
	}
	c.eng.Shutdown()
}

func TestDeterministicElections(t *testing.T) {
	run := func() (int, uint64) {
		c := newCluster(3, 42)
		c.eng.RunUntil(500 * time.Millisecond)
		l := c.leader()
		if l == nil {
			return -1, 0
		}
		id, term := l.ID(), l.Term()
		c.eng.Shutdown()
		return id, term
	}
	id1, t1 := run()
	id2, t2 := run()
	if id1 != id2 || t1 != t2 {
		t.Fatalf("nondeterministic election: (%d,%d) vs (%d,%d)", id1, t1, id2, t2)
	}
}

func TestChannelTransportEndToEnd(t *testing.T) {
	// Three allocator replicas on three pod hosts, Raft over real 64 B CXL
	// message channels (§3.5).
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<26, cxl.DefaultParams())
	var hosts []*host.Host
	var trs []*ChannelTransport
	ids := []int{0, 1, 2}
	for i := range ids {
		hosts = append(hosts, host.New(eng, i, fmt.Sprintf("h%d", i), pool, host.DefaultConfig()))
		trs = append(trs, NewChannelTransport(eng, i))
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if err := trs[i].ConnectPeer(pool, hosts[i], trs[j], hosts[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
	applied := make([]int, 3)
	var nodes []*Node
	cfg := DefaultConfig()
	cfg.Seed = 7
	for i := range ids {
		i := i
		n := New(eng, i, ids, trs[i], func(_ uint64, cmd []byte) { applied[i]++ }, cfg)
		trs[i].Bind(n)
		nodes = append(nodes, n)
		n.Start()
	}
	committed := 0
	eng.Go("proposer", func(p *sim.Proc) {
		p.Sleep(150 * time.Millisecond)
		var l *Node
		for _, n := range nodes {
			if n.IsLeader() {
				l = n
			}
		}
		if l == nil {
			t.Error("no leader over channel transport")
			return
		}
		for i := 0; i < 10; i++ {
			if !l.Propose(p, []byte("decision")) {
				t.Errorf("propose %d failed", i)
				return
			}
			committed++
		}
	})
	eng.RunUntil(2 * time.Second)
	if committed != 10 {
		t.Fatalf("committed %d/10 over channels", committed)
	}
	for i, a := range applied {
		if a != 10 {
			t.Fatalf("replica %d applied %d/10", i, a)
		}
	}
	eng.Shutdown()
}

func TestMessageCodecRoundTrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgVoteReq, From: 1, To: 2, Term: 7, LastLogIndex: 42, LastLogTerm: 6},
		{Type: MsgVoteResp, From: 2, To: 1, Term: 7, Granted: true},
		{Type: MsgAppendReq, From: 0, To: 1, Term: 9, PrevIndex: 3, PrevTerm: 8,
			LeaderCommit: 2, Entries: []Entry{{Term: 9, Cmd: []byte("0123456789abcdef")}}},
		{Type: MsgAppendReq, From: 0, To: 1, Term: 9, PrevIndex: 0, PrevTerm: 0, LeaderCommit: 5},
		{Type: MsgAppendResp, From: 1, To: 0, Term: 9, Success: true, MatchIndex: 4},
	}
	for i, m := range msgs {
		b, err := encodeMessage(m)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if len(b) > 63 {
			t.Fatalf("msg %d: %d bytes exceeds 64 B slot payload", i, len(b))
		}
		got, err := decodeMessage(b)
		if err != nil {
			t.Fatalf("msg %d decode: %v", i, err)
		}
		if got.Type != m.Type || got.Term != m.Term || got.From != m.From || got.To != m.To ||
			got.Granted != m.Granted || got.Success != m.Success ||
			got.PrevIndex != m.PrevIndex || got.MatchIndex != m.MatchIndex ||
			len(got.Entries) != len(m.Entries) {
			t.Fatalf("msg %d round trip mismatch:\n got %+v\nwant %+v", i, got, m)
		}
		if len(m.Entries) == 1 && !bytes.Equal(got.Entries[0].Cmd, m.Entries[0].Cmd) {
			t.Fatalf("msg %d entry mismatch", i)
		}
	}
}

func TestOversizedCommandRejected(t *testing.T) {
	m := Message{Type: MsgAppendReq, Entries: []Entry{{Cmd: make([]byte, 17)}}}
	if _, err := encodeMessage(m); err == nil {
		t.Fatal("oversized command accepted")
	}
}

func TestChaosLogMatchingProperty(t *testing.T) {
	// Property (Raft's Log Matching + State Machine Safety): under random
	// crash/restart/partition chaos, every node's applied sequence is a
	// prefix of the longest applied sequence.
	for _, seed := range []int64{10, 20, 30} {
		c := newCluster(3, seed)
		rng := rand.New(rand.NewSource(seed))
		committed := 0
		c.eng.Go("chaos", func(p *sim.Proc) {
			for round := 0; round < 8; round++ {
				p.Sleep(150 * time.Millisecond)
				// Random disruption.
				victim := c.nodes[rng.Intn(len(c.nodes))]
				switch rng.Intn(3) {
				case 0:
					victim.Stop()
					p.Sleep(time.Duration(rng.Intn(100)) * time.Millisecond)
					victim.Restart()
				case 1:
					c.tr.Isolate(victim.ID(), true)
					p.Sleep(time.Duration(rng.Intn(100)) * time.Millisecond)
					c.tr.Isolate(victim.ID(), false)
				}
				p.Sleep(100 * time.Millisecond)
				if l := c.leader(); l != nil {
					if l.Propose(p, []byte{byte(round)}) {
						committed++
					}
				}
			}
		})
		c.eng.RunUntil(5 * time.Second)
		c.eng.Shutdown()
		// Prefix property across all applied sequences.
		longest := 0
		for i := range c.applied {
			if len(c.applied[i]) > longest {
				longest = len(c.applied[i])
			}
		}
		for i := range c.applied {
			for j := range c.applied[i] {
				for k := range c.applied {
					if j < len(c.applied[k]) && !bytes.Equal(c.applied[i][j], c.applied[k][j]) {
						t.Fatalf("seed %d: applied sequences diverge at %d (nodes %d vs %d)", seed, j, i, k)
					}
				}
			}
		}
		if committed == 0 {
			t.Fatalf("seed %d: chaos prevented all commits", seed)
		}
	}
}

func TestAtMostOneLeaderPerTermProperty(t *testing.T) {
	// Election Safety: sample leadership frequently under churn; two
	// leaders in the same term is a protocol violation.
	c := newCluster(5, 99)
	violation := false
	c.eng.Go("observer", func(p *sim.Proc) {
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 300; i++ {
			p.Sleep(5 * time.Millisecond)
			leaders := map[uint64][]int{}
			for _, n := range c.nodes {
				if n.IsLeader() {
					leaders[n.Term()] = append(leaders[n.Term()], n.ID())
				}
			}
			for term, ids := range leaders {
				if len(ids) > 1 {
					t.Errorf("term %d has leaders %v", term, ids)
					violation = true
				}
			}
			if i%40 == 20 {
				victim := c.nodes[rng.Intn(len(c.nodes))]
				c.tr.Isolate(victim.ID(), true)
			}
			if i%40 == 35 {
				for _, n := range c.nodes {
					c.tr.Isolate(n.ID(), false)
				}
			}
		}
	})
	c.eng.RunUntil(2 * time.Second)
	c.eng.Shutdown()
	if violation {
		t.Fatal("election safety violated")
	}
}
