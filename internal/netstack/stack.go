package netstack

import (
	"fmt"
	"time"

	"oasis/internal/netsw"
	"oasis/internal/sim"
)

// Endpoint is the stack's attachment to the world: for a pod instance it
// writes the frame into the instance's CXL TX buffer area and signals the
// frontend driver (§3.3.1); for a raw load-generator client it hands the
// frame straight to a switch port.
//
// Transmit takes ownership of frame: the caller never touches it again, so
// an endpoint that copies the bytes out (e.g. into a CXL buffer area) may
// return the slice to the engine's buffer pool, while one that retains the
// slice (e.g. handing it to the switch) simply keeps it.
type Endpoint interface {
	Transmit(p *sim.Proc, frame []byte)
}

// Config tunes the stack's costs and protocol timers.
type Config struct {
	RxCost     sim.Duration // per-packet receive-side processing
	TxCost     sim.Duration // per-packet transmit-side processing
	ARPTimeout sim.Duration
	ARPRetries int
	RTOInitial sim.Duration // TCP retransmission timeout (fixed-base, doubled on loss)
	RTOMax     sim.Duration
	TCPWindow  int // bytes in flight per connection
}

// DefaultConfig models a lean kernel-bypass stack (Junction-class).
func DefaultConfig() Config {
	return Config{
		RxCost:     400 * time.Nanosecond,
		TxCost:     400 * time.Nanosecond,
		ARPTimeout: time.Millisecond,
		ARPRetries: 5,
		RTOInitial: 20 * time.Millisecond,
		RTOMax:     320 * time.Millisecond,
		TCPWindow:  256 << 10,
	}
}

type eventKind int

const (
	evFrameIn eventKind = iota
	evTxFrame
	evTCPTimer
)

type event struct {
	kind  eventKind
	frame []byte
	owned bool // frame came from the engine's buffer pool and is ours to recycle
	conn  *TCPConn
	gen   int
}

// Stack is one endpoint's network stack. All protocol processing runs on a
// single stack process (the instance's network thread); applications
// interact through connection objects from their own processes.
type Stack struct {
	eng  *sim.Engine
	name string
	ip   IP
	cfg  Config

	// macFn returns the current source MAC — the MAC of the NIC presently
	// serving this instance, which changes on graceful migration (§3.3.4).
	macFn func() netsw.MAC
	ep    Endpoint

	events *sim.Queue[event]

	arp        map[IP]netsw.MAC
	arpWaiters map[IP]*sim.Signal

	udp       map[uint16]*UDPConn
	listeners map[uint16]*TCPListener
	conns     map[fourTuple]*TCPConn
	nextPort  uint16

	// Stats.
	RxPackets, TxPackets int64
	RxNoSocket           int64
	RxParseErrors        int64
}

type fourTuple struct {
	localPort  uint16
	remoteIP   IP
	remotePort uint16
}

// NewStack builds a stack; call Start to launch its process.
func NewStack(eng *sim.Engine, name string, ip IP, macFn func() netsw.MAC, ep Endpoint, cfg Config) *Stack {
	return &Stack{
		eng:        eng,
		name:       name,
		ip:         ip,
		cfg:        cfg,
		macFn:      macFn,
		ep:         ep,
		events:     sim.NewQueue[event](eng),
		arp:        make(map[IP]netsw.MAC),
		arpWaiters: make(map[IP]*sim.Signal),
		udp:        make(map[uint16]*UDPConn),
		listeners:  make(map[uint16]*TCPListener),
		conns:      make(map[fourTuple]*TCPConn),
		nextPort:   49152,
	}
}

// IP returns the stack's address.
func (s *Stack) IP() IP { return s.ip }

// Name returns the stack's diagnostic name.
func (s *Stack) Name() string { return s.name }

// Start launches the stack process.
func (s *Stack) Start() {
	s.eng.Go(s.name+"/netstack", s.loop)
}

// DeliverFrame hands an arrived frame to the stack. Callable from event
// callbacks and other processes; processing happens on the stack process.
// The frame may be shared with other sinks (switch floods); the stack only
// reads it.
func (s *Stack) DeliverFrame(frame []byte) {
	s.events.Push(event{kind: evFrameIn, frame: frame})
}

// DeliverOwnedFrame is DeliverFrame for a frame the caller exclusively owns
// (drivers copying out of DMA buffers): the stack recycles it through the
// engine's buffer pool once protocol processing has copied out what it
// needs.
func (s *Stack) DeliverOwnedFrame(frame []byte) {
	s.events.Push(event{kind: evFrameIn, frame: frame, owned: true})
}

// loop is the stack process: frames in, frames out, TCP timers.
func (s *Stack) loop(p *sim.Proc) {
	for {
		ev := s.events.Pop(p)
		switch ev.kind {
		case evFrameIn:
			p.Sleep(s.cfg.RxCost)
			s.handleFrame(p, ev.frame)
			if ev.owned {
				// handleFrame copies every byte it keeps (UDP payloads, TCP
				// segment data), so the frame is dead here.
				s.eng.Bufs().Put(ev.frame)
			}
		case evTxFrame:
			p.Sleep(s.cfg.TxCost)
			s.TxPackets++
			s.ep.Transmit(p, ev.frame)
		case evTCPTimer:
			ev.conn.onTimer(p, ev.gen)
		}
	}
}

// transmit queues a packet for the stack process to marshal out. The frame
// is drawn from the engine's buffer pool; ownership passes to the endpoint
// (see Endpoint).
func (s *Stack) transmit(pk *Packet) {
	frame := s.eng.Bufs().Get(pk.WireLen())
	pk.MarshalTo(frame)
	s.events.Push(event{kind: evTxFrame, frame: frame})
}

func (s *Stack) handleFrame(p *sim.Proc, frame []byte) {
	pk, err := Unmarshal(frame)
	if err != nil {
		s.RxParseErrors++
		return
	}
	s.RxPackets++
	switch pk.EtherType {
	case EtherTypeARP:
		s.handleARP(pk)
	case EtherTypeIPv4:
		if pk.DstIP != s.ip {
			s.RxNoSocket++
			return
		}
		// Opportunistically learn the peer's mapping; saves an ARP round
		// trip on the reply path in a trusted rack.
		s.learn(pk.SrcIP, pk.SrcMAC)
		switch pk.Proto {
		case ProtoUDP:
			s.handleUDP(pk)
		case ProtoTCP:
			s.handleTCP(p, pk)
		}
	}
}

// learn records (and propagates to live connections) an IP→MAC mapping.
func (s *Stack) learn(ip IP, mac netsw.MAC) {
	if ip == 0 || ip == s.ip {
		return
	}
	prev, had := s.arp[ip]
	s.arp[ip] = mac
	if sig := s.arpWaiters[ip]; sig != nil {
		sig.Broadcast()
	}
	if had && prev != mac {
		// The peer migrated to a different NIC (GARP, §3.3.4): update every
		// established connection's cached next hop.
		for _, c := range s.conns {
			if c.remoteIP == ip {
				c.remoteMAC = mac
			}
		}
	}
}

func (s *Stack) handleARP(pk *Packet) {
	s.learn(pk.ARPSenderIP, pk.ARPSenderMAC)
	if pk.ARPOp == ARPRequest && pk.ARPTargetIP == s.ip {
		s.transmit(&Packet{
			SrcMAC:       s.macFn(),
			DstMAC:       pk.ARPSenderMAC,
			EtherType:    EtherTypeARP,
			ARPOp:        ARPReply,
			ARPSenderMAC: s.macFn(),
			ARPSenderIP:  s.ip,
			ARPTargetMAC: pk.ARPSenderMAC,
			ARPTargetIP:  pk.ARPSenderIP,
		})
	}
}

// GratuitousARP broadcasts this stack's current IP→MAC binding. The
// network engine invokes it after a graceful migration so peers repoint
// their ARP entries at the new NIC (§3.3.4); the broadcast also teaches the
// switch the MAC's new port.
func (s *Stack) GratuitousARP() {
	mac := s.macFn()
	s.transmit(&Packet{
		SrcMAC:       mac,
		DstMAC:       netsw.Broadcast,
		EtherType:    EtherTypeARP,
		ARPOp:        ARPReply,
		ARPSenderMAC: mac,
		ARPSenderIP:  s.ip,
		ARPTargetMAC: netsw.Broadcast,
		ARPTargetIP:  s.ip,
	})
}

// Resolve returns the MAC for ip, performing ARP if needed. It blocks the
// calling (application) process; it must not be called from the stack
// process itself.
func (s *Stack) Resolve(p *sim.Proc, ip IP) (netsw.MAC, error) {
	if mac, ok := s.arp[ip]; ok {
		return mac, nil
	}
	sig := s.arpWaiters[ip]
	if sig == nil {
		sig = sim.NewSignal(s.eng)
		s.arpWaiters[ip] = sig
	}
	for try := 0; try < s.cfg.ARPRetries; try++ {
		s.transmit(&Packet{
			SrcMAC:       s.macFn(),
			DstMAC:       netsw.Broadcast,
			EtherType:    EtherTypeARP,
			ARPOp:        ARPRequest,
			ARPSenderMAC: s.macFn(),
			ARPSenderIP:  s.ip,
			ARPTargetIP:  ip,
		})
		sig.WaitTimeout(p, s.cfg.ARPTimeout)
		if mac, ok := s.arp[ip]; ok {
			return mac, nil
		}
	}
	return netsw.MAC{}, fmt.Errorf("netstack %s: ARP resolution of %v failed", s.name, ip)
}

// allocPort returns a free ephemeral port.
func (s *Stack) allocPort() uint16 {
	for i := 0; i < 1<<16; i++ {
		port := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 49152
		}
		if _, udpUsed := s.udp[port]; udpUsed {
			continue
		}
		inUse := false
		for t := range s.conns {
			if t.localPort == port {
				inUse = true
				break
			}
		}
		if !inUse {
			return port
		}
	}
	panic("netstack: ephemeral ports exhausted")
}

// Datagram is one received UDP payload.
type Datagram struct {
	Src     IP
	SrcPort uint16
	Data    []byte
}

// UDPConn is a bound UDP socket.
type UDPConn struct {
	stack *Stack
	port  uint16
	rq    *sim.Queue[Datagram]

	Dropped int64 // payload-too-large send attempts
}

// ListenUDP binds a UDP socket; port 0 picks an ephemeral port.
func (s *Stack) ListenUDP(port uint16) (*UDPConn, error) {
	if port == 0 {
		port = s.allocPort()
	}
	if _, exists := s.udp[port]; exists {
		return nil, fmt.Errorf("netstack %s: UDP port %d in use", s.name, port)
	}
	c := &UDPConn{stack: s, port: port, rq: sim.NewQueue[Datagram](s.eng)}
	s.udp[port] = c
	return c, nil
}

func (s *Stack) handleUDP(pk *Packet) {
	c, ok := s.udp[pk.DstPort]
	if !ok {
		s.RxNoSocket++
		return
	}
	data := make([]byte, len(pk.Payload))
	copy(data, pk.Payload)
	c.rq.Push(Datagram{Src: pk.SrcIP, SrcPort: pk.SrcPort, Data: data})
}

// Port returns the bound local port.
func (c *UDPConn) Port() uint16 { return c.port }

// SendTo transmits one datagram, resolving the destination MAC if needed.
func (c *UDPConn) SendTo(p *sim.Proc, dst IP, dstPort uint16, payload []byte) error {
	if len(payload) > MaxUDPPayload {
		c.Dropped++
		return fmt.Errorf("netstack: UDP payload %d exceeds %d", len(payload), MaxUDPPayload)
	}
	mac, err := c.stack.Resolve(p, dst)
	if err != nil {
		return err
	}
	c.stack.transmit(&Packet{
		SrcMAC:    c.stack.macFn(),
		DstMAC:    mac,
		EtherType: EtherTypeIPv4,
		SrcIP:     c.stack.ip,
		DstIP:     dst,
		Proto:     ProtoUDP,
		SrcPort:   c.port,
		DstPort:   dstPort,
		Payload:   payload,
	})
	return nil
}

// Recv blocks until a datagram arrives.
func (c *UDPConn) Recv(p *sim.Proc) Datagram { return c.rq.Pop(p) }

// RecvTimeout blocks up to d for a datagram.
func (c *UDPConn) RecvTimeout(p *sim.Proc, d sim.Duration) (Datagram, bool) {
	return c.rq.PopTimeout(p, d)
}

// Pending returns the number of queued datagrams.
func (c *UDPConn) Pending() int { return c.rq.Len() }

// Close unbinds the socket.
func (c *UDPConn) Close() { delete(c.stack.udp, c.port) }
