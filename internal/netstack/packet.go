// Package netstack implements the user-level network stack container
// instances run on (§4): Ethernet framing, ARP (including the gratuitous
// ARP used for graceful migration, §3.3.4), IPv4, UDP, and a compact TCP
// with retransmission — enough to reproduce the paper's echo, web-app,
// memcached, and failover experiments with real bytes on the simulated
// wire.
//
// Checksums are omitted (the simulated fabric does not corrupt frames);
// header sizes and offsets match real Ethernet/IPv4 so that wire byte
// counts — and therefore bandwidth results — are faithful.
package netstack

import (
	"encoding/binary"
	"fmt"

	"oasis/internal/netsw"
)

// IP is an IPv4 address.
type IP uint32

// IPv4 builds an address from dotted-quad parts.
func IPv4(a, b, c, d byte) IP {
	return IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// String renders dotted-quad form.
func (ip IP) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// EtherTypes and protocol numbers (real values).
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806

	ProtoTCP = 6
	ProtoUDP = 17

	// ARP opcodes.
	ARPRequest = 1
	ARPReply   = 2
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
)

// Header sizes.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20
	UDPHeaderLen  = 8
	TCPHeaderLen  = 20
	ARPBodyLen    = 28

	// MTU is the Ethernet payload limit; MaxUDPPayload is what fits in one
	// unfragmented datagram frame (the stack does not fragment).
	MTU           = 1500
	MaxUDPPayload = MTU - IPv4HeaderLen - UDPHeaderLen // 1472
	// MSS is the TCP payload per segment.
	MSS = MTU - IPv4HeaderLen - TCPHeaderLen // 1460
)

// Packet is the parsed form of a frame. Exactly one of the ARP or IPv4
// field groups is meaningful, selected by EtherType.
type Packet struct {
	SrcMAC, DstMAC netsw.MAC
	EtherType      uint16

	// ARP fields.
	ARPOp        uint16
	ARPSenderMAC netsw.MAC
	ARPSenderIP  IP
	ARPTargetMAC netsw.MAC
	ARPTargetIP  IP

	// IPv4 fields.
	SrcIP, DstIP IP
	Proto        byte

	// Transport fields (UDP and TCP).
	SrcPort, DstPort uint16

	// TCP fields.
	Seq, Ack uint32
	Flags    byte
	Window   uint16

	Payload []byte
}

// WireLen returns the marshalled frame size.
func (pk *Packet) WireLen() int {
	switch pk.EtherType {
	case EtherTypeARP:
		return EthHeaderLen + ARPBodyLen
	case EtherTypeIPv4:
		var thl int
		switch pk.Proto {
		case ProtoUDP:
			thl = UDPHeaderLen
		case ProtoTCP:
			thl = TCPHeaderLen
		default:
			panic(fmt.Sprintf("netstack: cannot marshal IPv4 proto %d", pk.Proto))
		}
		return EthHeaderLen + IPv4HeaderLen + thl + len(pk.Payload)
	default:
		panic(fmt.Sprintf("netstack: cannot marshal ethertype %#x", pk.EtherType))
	}
}

// Marshal renders the packet to wire bytes.
func (pk *Packet) Marshal() []byte {
	b := make([]byte, pk.WireLen())
	pk.MarshalTo(b)
	return b
}

// MarshalTo renders the packet into b, which must be exactly WireLen() long.
// Every byte of b is written, so recycled buffers marshal identically to
// fresh ones.
func (pk *Packet) MarshalTo(b []byte) {
	if len(b) != pk.WireLen() {
		panic("netstack: MarshalTo buffer length mismatch")
	}
	switch pk.EtherType {
	case EtherTypeARP:
		pk.marshalEth(b)
		a := b[EthHeaderLen:]
		binary.BigEndian.PutUint16(a[0:2], 1)      // htype: Ethernet
		binary.BigEndian.PutUint16(a[2:4], 0x0800) // ptype: IPv4
		a[4], a[5] = 6, 4
		binary.BigEndian.PutUint16(a[6:8], pk.ARPOp)
		copy(a[8:14], pk.ARPSenderMAC[:])
		binary.BigEndian.PutUint32(a[14:18], uint32(pk.ARPSenderIP))
		copy(a[18:24], pk.ARPTargetMAC[:])
		binary.BigEndian.PutUint32(a[24:28], uint32(pk.ARPTargetIP))
	case EtherTypeIPv4:
		var thl int
		switch pk.Proto {
		case ProtoUDP:
			thl = UDPHeaderLen
		case ProtoTCP:
			thl = TCPHeaderLen
		default:
			panic(fmt.Sprintf("netstack: cannot marshal IPv4 proto %d", pk.Proto))
		}
		pk.marshalEth(b)
		ip := b[EthHeaderLen:]
		ip[0] = 0x45 // version 4, IHL 5
		ip[1] = 0    // TOS
		binary.BigEndian.PutUint16(ip[2:4], uint16(IPv4HeaderLen+thl+len(pk.Payload)))
		ip[4], ip[5], ip[6], ip[7] = 0, 0, 0, 0 // ID, flags/fragment
		ip[8] = 64                              // TTL
		ip[9] = pk.Proto
		ip[10], ip[11] = 0, 0 // header checksum (unused)
		binary.BigEndian.PutUint32(ip[12:16], uint32(pk.SrcIP))
		binary.BigEndian.PutUint32(ip[16:20], uint32(pk.DstIP))
		tp := ip[IPv4HeaderLen:]
		binary.BigEndian.PutUint16(tp[0:2], pk.SrcPort)
		binary.BigEndian.PutUint16(tp[2:4], pk.DstPort)
		switch pk.Proto {
		case ProtoUDP:
			binary.BigEndian.PutUint16(tp[4:6], uint16(UDPHeaderLen+len(pk.Payload)))
			tp[6], tp[7] = 0, 0 // checksum (unused)
			copy(tp[UDPHeaderLen:], pk.Payload)
		case ProtoTCP:
			binary.BigEndian.PutUint32(tp[4:8], pk.Seq)
			binary.BigEndian.PutUint32(tp[8:12], pk.Ack)
			tp[12] = 0x50 // data offset 5 words
			tp[13] = pk.Flags
			binary.BigEndian.PutUint16(tp[14:16], pk.Window)
			tp[16], tp[17], tp[18], tp[19] = 0, 0, 0, 0 // checksum, urgent (unused)
			copy(tp[TCPHeaderLen:], pk.Payload)
		}
	default:
		panic(fmt.Sprintf("netstack: cannot marshal ethertype %#x", pk.EtherType))
	}
}

func (pk *Packet) marshalEth(b []byte) {
	copy(b[0:6], pk.DstMAC[:])
	copy(b[6:12], pk.SrcMAC[:])
	binary.BigEndian.PutUint16(b[12:14], pk.EtherType)
}

// Unmarshal parses wire bytes. The returned packet's Payload aliases b.
func Unmarshal(b []byte) (*Packet, error) {
	if len(b) < EthHeaderLen {
		return nil, fmt.Errorf("netstack: frame too short (%d bytes)", len(b))
	}
	var pk Packet
	copy(pk.DstMAC[:], b[0:6])
	copy(pk.SrcMAC[:], b[6:12])
	pk.EtherType = binary.BigEndian.Uint16(b[12:14])
	rest := b[EthHeaderLen:]
	switch pk.EtherType {
	case EtherTypeARP:
		if len(rest) < ARPBodyLen {
			return nil, fmt.Errorf("netstack: truncated ARP")
		}
		pk.ARPOp = binary.BigEndian.Uint16(rest[6:8])
		copy(pk.ARPSenderMAC[:], rest[8:14])
		pk.ARPSenderIP = IP(binary.BigEndian.Uint32(rest[14:18]))
		copy(pk.ARPTargetMAC[:], rest[18:24])
		pk.ARPTargetIP = IP(binary.BigEndian.Uint32(rest[24:28]))
		return &pk, nil
	case EtherTypeIPv4:
		if len(rest) < IPv4HeaderLen {
			return nil, fmt.Errorf("netstack: truncated IPv4 header")
		}
		pk.Proto = rest[9]
		pk.SrcIP = IP(binary.BigEndian.Uint32(rest[12:16]))
		pk.DstIP = IP(binary.BigEndian.Uint32(rest[16:20]))
		totalLen := int(binary.BigEndian.Uint16(rest[2:4]))
		if totalLen > len(rest) {
			return nil, fmt.Errorf("netstack: IPv4 total length %d exceeds frame", totalLen)
		}
		tp := rest[IPv4HeaderLen:totalLen]
		switch pk.Proto {
		case ProtoUDP:
			if len(tp) < UDPHeaderLen {
				return nil, fmt.Errorf("netstack: truncated UDP header")
			}
			pk.SrcPort = binary.BigEndian.Uint16(tp[0:2])
			pk.DstPort = binary.BigEndian.Uint16(tp[2:4])
			pk.Payload = tp[UDPHeaderLen:]
		case ProtoTCP:
			if len(tp) < TCPHeaderLen {
				return nil, fmt.Errorf("netstack: truncated TCP header")
			}
			pk.SrcPort = binary.BigEndian.Uint16(tp[0:2])
			pk.DstPort = binary.BigEndian.Uint16(tp[2:4])
			pk.Seq = binary.BigEndian.Uint32(tp[4:8])
			pk.Ack = binary.BigEndian.Uint32(tp[8:12])
			pk.Flags = tp[13]
			pk.Window = binary.BigEndian.Uint16(tp[14:16])
			pk.Payload = tp[TCPHeaderLen:]
		default:
			return nil, fmt.Errorf("netstack: unsupported IPv4 proto %d", pk.Proto)
		}
		return &pk, nil
	default:
		return nil, fmt.Errorf("netstack: unsupported ethertype %#x", pk.EtherType)
	}
}

// FlowKey extracts the destination IPv4 address from a frame for NIC flow
// tagging (§3.3.1). It reports ok=false for non-IPv4 frames, which then take
// the backend's payload-inspection fallback path.
func FlowKey(frame []byte) (uint32, bool) {
	if len(frame) < EthHeaderLen+IPv4HeaderLen {
		return 0, false
	}
	if binary.BigEndian.Uint16(frame[12:14]) != EtherTypeIPv4 {
		return 0, false
	}
	return binary.BigEndian.Uint32(frame[30:34]), true
}

// DstIPOf returns the instance-identifying IP a backend extracts when it
// must inspect a payload (flow-tag miss): the IPv4 destination, or the ARP
// target IP.
func DstIPOf(pk *Packet) (IP, bool) {
	switch pk.EtherType {
	case EtherTypeIPv4:
		return pk.DstIP, true
	case EtherTypeARP:
		return pk.ARPTargetIP, true
	}
	return 0, false
}
