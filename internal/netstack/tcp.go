package netstack

import (
	"fmt"
	"time"

	"oasis/internal/netsw"
	"oasis/internal/sim"
)

// TCP-lite: connection setup, in-order byte-stream delivery with a reorder
// buffer, cumulative ACKs, a fixed-base exponential-backoff retransmission
// timer, and FIN/RST teardown. Congestion control and adaptive RTT
// estimation are intentionally omitted — the paper's TCP result (Fig. 14)
// depends on loss recovery inflating post-failover latency, which the RTO
// machinery reproduces; it does not depend on cwnd dynamics at these RTTs.

type tcpState int

const (
	stateSynSent tcpState = iota
	stateSynReceived
	stateEstablished
	stateClosed
)

// TCPListener accepts inbound connections on a port.
type TCPListener struct {
	stack   *Stack
	port    uint16
	acceptQ *sim.Queue[*TCPConn]
}

// ListenTCP binds a listening socket.
func (s *Stack) ListenTCP(port uint16) (*TCPListener, error) {
	if port == 0 {
		port = s.allocPort()
	}
	if _, exists := s.listeners[port]; exists {
		return nil, fmt.Errorf("netstack %s: TCP port %d in use", s.name, port)
	}
	l := &TCPListener{stack: s, port: port, acceptQ: sim.NewQueue[*TCPConn](s.eng)}
	s.listeners[port] = l
	return l, nil
}

// Accept blocks until a connection completes its handshake.
func (l *TCPListener) Accept(p *sim.Proc) *TCPConn { return l.acceptQ.Pop(p) }

// Close unbinds the listener.
func (l *TCPListener) Close() { delete(l.stack.listeners, l.port) }

type tcpSegment struct {
	seq  uint32
	data []byte
}

// TCPConn is one connection endpoint.
type TCPConn struct {
	stack      *Stack
	localPort  uint16
	remoteIP   IP
	remotePort uint16
	remoteMAC  netsw.MAC // next hop, refreshed from every received segment
	state      tcpState
	listener   *TCPListener // set on passively-opened connections

	// Send side.
	sndNxt, sndUna uint32
	unacked        []tcpSegment
	inflight       int
	sendWait       *sim.Signal
	rto            sim.Duration
	rtxDeadline    sim.Duration
	timerGen       int
	dupAcks        int
	established    *sim.Signal

	// Receive side.
	rcvNxt  uint32
	reorder map[uint32][]byte
	recvQ   *sim.Queue[[]byte] // in-order chunks; nil chunk = EOF
	readBuf []byte

	// Stats.
	Retransmits     int64
	FastRetransmits int64
	closed          bool
}

func (s *Stack) newConn(localPort uint16, rip IP, rport uint16, mac netsw.MAC, st tcpState) *TCPConn {
	c := &TCPConn{
		stack:       s,
		localPort:   localPort,
		remoteIP:    rip,
		remotePort:  rport,
		remoteMAC:   mac,
		state:       st,
		rto:         s.cfg.RTOInitial,
		sendWait:    sim.NewSignal(s.eng),
		established: sim.NewSignal(s.eng),
		reorder:     make(map[uint32][]byte),
		recvQ:       sim.NewQueue[[]byte](s.eng),
	}
	s.conns[fourTuple{localPort, rip, rport}] = c
	return c
}

// DialTCP opens a connection, blocking the calling process through the
// handshake (SYN retransmission included).
func (s *Stack) DialTCP(p *sim.Proc, dst IP, dstPort uint16) (*TCPConn, error) {
	mac, err := s.Resolve(p, dst)
	if err != nil {
		return nil, err
	}
	c := s.newConn(s.allocPort(), dst, dstPort, mac, stateSynSent)
	// Deterministic ISNs keep simulations reproducible.
	c.sndNxt = 1000
	c.sndUna = 1000
	c.sendFlags(FlagSYN, nil)
	c.sndNxt++ // SYN consumes a sequence number
	for try := 0; try < 8 && c.state != stateEstablished; try++ {
		c.established.WaitTimeout(p, c.rto)
		if c.state == stateEstablished {
			break
		}
		if c.closed {
			break
		}
		c.sendSegmentAt(c.sndNxt-1, nil, FlagSYN)
		c.Retransmits++
	}
	if c.state != stateEstablished {
		c.teardown()
		return nil, fmt.Errorf("netstack %s: connect to %v:%d timed out", s.name, dst, dstPort)
	}
	return c, nil
}

// handleTCP dispatches a TCP segment on the stack process.
func (s *Stack) handleTCP(p *sim.Proc, pk *Packet) {
	t := fourTuple{pk.DstPort, pk.SrcIP, pk.SrcPort}
	if c, ok := s.conns[t]; ok {
		c.remoteMAC = pk.SrcMAC
		c.handleSegment(p, pk)
		return
	}
	if pk.Flags&FlagSYN != 0 && pk.Flags&FlagACK == 0 {
		if l, ok := s.listeners[pk.DstPort]; ok {
			c := s.newConn(pk.DstPort, pk.SrcIP, pk.SrcPort, pk.SrcMAC, stateSynReceived)
			c.listener = l
			c.rcvNxt = pk.Seq + 1
			c.sndNxt = 2000
			c.sndUna = 2000
			c.sendFlags(FlagSYN|FlagACK, nil)
			c.sndNxt++
			return
		}
	}
	if pk.Flags&FlagRST == 0 {
		// No socket: refuse.
		s.transmit(&Packet{
			SrcMAC: s.macFn(), DstMAC: pk.SrcMAC, EtherType: EtherTypeIPv4,
			SrcIP: s.ip, DstIP: pk.SrcIP, Proto: ProtoTCP,
			SrcPort: pk.DstPort, DstPort: pk.SrcPort,
			Seq: pk.Ack, Flags: FlagRST,
		})
	}
	s.RxNoSocket++
}

func (c *TCPConn) handleSegment(p *sim.Proc, pk *Packet) {
	if pk.Flags&FlagRST != 0 {
		c.teardown()
		return
	}
	switch c.state {
	case stateSynSent:
		if pk.Flags&(FlagSYN|FlagACK) == FlagSYN|FlagACK && pk.Ack == c.sndNxt {
			c.rcvNxt = pk.Seq + 1
			c.sndUna = pk.Ack
			c.state = stateEstablished
			c.sendAck()
			c.established.Broadcast()
		}
	case stateSynReceived:
		if pk.Flags&FlagACK != 0 && pk.Ack == c.sndNxt {
			c.state = stateEstablished
			c.sndUna = pk.Ack
			if c.listener != nil {
				c.listener.acceptQ.Push(c)
			}
		}
		// Fall through to data handling: the ACK may carry data.
		if c.state == stateEstablished && len(pk.Payload) > 0 {
			c.handleData(pk)
		}
	case stateEstablished:
		if pk.Flags&FlagACK != 0 {
			c.handleAck(pk.Ack)
		}
		if len(pk.Payload) > 0 {
			c.handleData(pk)
		}
		if pk.Flags&FlagFIN != 0 && pk.Seq == c.rcvNxt {
			c.rcvNxt++
			c.sendAck()
			c.recvQ.Push(nil) // EOF
			c.state = stateClosed
		}
	case stateClosed:
		// Late segment: re-ACK so the peer can make progress tearing down.
		if len(pk.Payload) > 0 {
			c.sendAck()
		}
	}
}

// seqLEQ compares sequence numbers modulo 2^32.
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }

func (c *TCPConn) handleAck(ack uint32) {
	if !seqLEQ(ack, c.sndNxt) || !seqLEQ(c.sndUna, ack) {
		return // out of window
	}
	if ack == c.sndUna {
		// Duplicate ACK: the receiver is missing the segment at sndUna but
		// still getting later data. Three in a row trigger fast retransmit
		// (RFC 5681 §3.2) — without it, every gap costs a full RTO and the
		// paper's ~133 ms TCP failover recovery (Fig. 14) would be seconds.
		if len(c.unacked) > 0 {
			c.dupAcks++
			if c.dupAcks >= 3 {
				c.dupAcks = 0
				seg := c.unacked[0]
				c.sendSegmentAt(seg.seq, seg.data, FlagACK|FlagPSH)
				c.Retransmits++
				c.FastRetransmits++
				c.armTimer()
			}
		}
		return
	}
	c.dupAcks = 0
	c.sndUna = ack
	kept := c.unacked[:0]
	for _, seg := range c.unacked {
		if seqLEQ(seg.seq+uint32(len(seg.data)), ack) {
			c.inflight -= len(seg.data)
			// Fully acknowledged: the copy in Send was the last reference
			// (retransmits marshal their own copy of the bytes).
			c.stack.eng.Bufs().Put(seg.data)
			continue
		}
		kept = append(kept, seg)
	}
	c.unacked = kept
	c.sendWait.Broadcast()
	c.rto = c.stack.cfg.RTOInitial // fresh progress resets backoff
	if len(c.unacked) == 0 {
		c.timerGen++ // disarm
	} else {
		c.armTimer()
	}
}

func (c *TCPConn) handleData(pk *Packet) {
	if seqLEQ(pk.Seq+uint32(len(pk.Payload)), c.rcvNxt) {
		c.sendAck() // fully old: re-ACK
		return
	}
	if pk.Seq != c.rcvNxt {
		if !seqLEQ(pk.Seq, c.rcvNxt) {
			data := c.stack.eng.Bufs().Get(len(pk.Payload))
			copy(data, pk.Payload)
			c.reorder[pk.Seq] = data
		}
		c.sendAck() // duplicate ACK signals the gap
		return
	}
	data := c.stack.eng.Bufs().Get(len(pk.Payload))
	copy(data, pk.Payload)
	c.deliver(data)
	for {
		next, ok := c.reorder[c.rcvNxt]
		if !ok {
			break
		}
		delete(c.reorder, c.rcvNxt)
		c.deliver(next)
	}
	c.sendAck()
}

func (c *TCPConn) deliver(data []byte) {
	c.rcvNxt += uint32(len(data))
	c.recvQ.Push(data)
}

// Send writes data to the stream, blocking while the window is full. Must
// be called from an application process.
func (c *TCPConn) Send(p *sim.Proc, data []byte) error {
	for len(data) > 0 {
		if c.state != stateEstablished {
			return fmt.Errorf("netstack: send on closed connection")
		}
		for c.inflight >= c.stack.cfg.TCPWindow {
			c.sendWait.Wait(p)
			if c.state != stateEstablished {
				return fmt.Errorf("netstack: connection closed while sending")
			}
		}
		n := len(data)
		if n > MSS {
			n = MSS
		}
		chunk := c.stack.eng.Bufs().Get(n)
		copy(chunk, data[:n])
		seg := tcpSegment{seq: c.sndNxt, data: chunk}
		c.unacked = append(c.unacked, seg)
		c.inflight += n
		c.sendSegmentAt(seg.seq, seg.data, FlagACK|FlagPSH)
		c.sndNxt += uint32(n)
		c.armTimer()
		data = data[n:]
		p.Sleep(100 * time.Nanosecond) // per-segment submit cost
	}
	return nil
}

// Recv returns the next in-order chunk (nil means EOF), blocking until data
// arrives.
func (c *TCPConn) Recv(p *sim.Proc) []byte { return c.recvQ.Pop(p) }

// Read returns exactly n bytes from the stream, buffering chunk remainders.
// It returns an error on EOF.
func (c *TCPConn) Read(p *sim.Proc, n int) ([]byte, error) {
	for len(c.readBuf) < n {
		chunk := c.recvQ.Pop(p)
		if chunk == nil {
			return nil, fmt.Errorf("netstack: connection closed mid-read")
		}
		c.readBuf = append(c.readBuf, chunk...)
		c.stack.eng.Bufs().Put(chunk)
	}
	out := c.readBuf[:n:n]
	c.readBuf = c.readBuf[n:]
	return out, nil
}

// ReadTimeout is Read with a deadline; ok=false on timeout.
func (c *TCPConn) ReadTimeout(p *sim.Proc, n int, d sim.Duration) ([]byte, bool, error) {
	deadline := c.stack.eng.Now() + d
	for len(c.readBuf) < n {
		remaining := deadline - c.stack.eng.Now()
		if remaining <= 0 {
			return nil, false, nil
		}
		chunk, ok := c.recvQ.PopTimeout(p, remaining)
		if !ok {
			return nil, false, nil
		}
		if chunk == nil {
			return nil, false, fmt.Errorf("netstack: connection closed mid-read")
		}
		c.readBuf = append(c.readBuf, chunk...)
		c.stack.eng.Bufs().Put(chunk)
	}
	out := c.readBuf[:n:n]
	c.readBuf = c.readBuf[n:]
	return out, true, nil
}

// Close sends FIN and tears the connection down (no TIME_WAIT modelling).
func (c *TCPConn) Close(p *sim.Proc) {
	if c.state == stateEstablished {
		c.sendFlags(FlagFIN|FlagACK, nil)
	}
	c.teardown()
}

func (c *TCPConn) teardown() {
	if c.closed {
		return
	}
	c.closed = true
	c.state = stateClosed
	c.timerGen++
	delete(c.stack.conns, fourTuple{c.localPort, c.remoteIP, c.remotePort})
	c.recvQ.Push(nil)
	c.sendWait.Broadcast()
	c.established.Broadcast()
}

// State helpers for tests.
func (c *TCPConn) Established() bool { return c.state == stateEstablished }

// RemoteMAC returns the cached next-hop MAC (tests observe migration).
func (c *TCPConn) RemoteMAC() netsw.MAC { return c.remoteMAC }

// sendAck emits a bare cumulative ACK.
func (c *TCPConn) sendAck() { c.sendSegmentAt(c.sndNxt, nil, FlagACK) }

// sendFlags emits a segment at sndNxt.
func (c *TCPConn) sendFlags(flags byte, payload []byte) {
	c.sendSegmentAt(c.sndNxt, payload, flags)
}

// sendSegmentAt emits a segment with an explicit sequence number (used by
// retransmission). It uses the cached remote MAC so it never blocks — safe
// on both application and stack processes.
func (c *TCPConn) sendSegmentAt(seq uint32, payload []byte, flags byte) {
	c.stack.transmit(&Packet{
		SrcMAC:    c.stack.macFn(),
		DstMAC:    c.remoteMAC,
		EtherType: EtherTypeIPv4,
		SrcIP:     c.stack.ip,
		DstIP:     c.remoteIP,
		Proto:     ProtoTCP,
		SrcPort:   c.localPort,
		DstPort:   c.remotePort,
		Seq:       seq,
		Ack:       c.rcvNxt,
		Flags:     flags,
		Window:    65535,
		Payload:   payload,
	})
}

// armTimer (re)schedules the retransmission timer rto from now.
func (c *TCPConn) armTimer() {
	c.timerGen++
	gen := c.timerGen
	c.rtxDeadline = c.stack.eng.Now() + c.rto
	c.stack.eng.After(c.rto, func() {
		if c.timerGen == gen {
			c.stack.events.Push(event{kind: evTCPTimer, conn: c, gen: gen})
		}
	})
}

// onTimer runs on the stack process when the retransmission timer fires.
func (c *TCPConn) onTimer(p *sim.Proc, gen int) {
	if c.timerGen != gen || c.state == stateClosed || len(c.unacked) == 0 {
		return
	}
	// Go-back-N lite: retransmit the oldest unacked segment, double the RTO.
	seg := c.unacked[0]
	c.sendSegmentAt(seg.seq, seg.data, FlagACK|FlagPSH)
	c.Retransmits++
	c.rto *= 2
	if c.rto > c.stack.cfg.RTOMax {
		c.rto = c.stack.cfg.RTOMax
	}
	c.armTimer()
}
