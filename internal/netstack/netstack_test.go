package netstack

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"oasis/internal/netsw"
	"oasis/internal/sim"
)

func TestIPString(t *testing.T) {
	if got := IPv4(10, 0, 1, 200).String(); got != "10.0.1.200" {
		t.Fatalf("IP string = %q", got)
	}
}

func TestMarshalUnmarshalUDP(t *testing.T) {
	pk := &Packet{
		SrcMAC:    netsw.MAC{1, 2, 3, 4, 5, 6},
		DstMAC:    netsw.MAC{7, 8, 9, 10, 11, 12},
		EtherType: EtherTypeIPv4,
		SrcIP:     IPv4(10, 0, 0, 1),
		DstIP:     IPv4(10, 0, 0, 2),
		Proto:     ProtoUDP,
		SrcPort:   1234,
		DstPort:   5678,
		Payload:   []byte("hello udp"),
	}
	b := pk.Marshal()
	if len(b) != EthHeaderLen+IPv4HeaderLen+UDPHeaderLen+9 {
		t.Fatalf("frame length = %d", len(b))
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcIP != pk.SrcIP || got.DstIP != pk.DstIP || got.SrcPort != 1234 ||
		got.DstPort != 5678 || !bytes.Equal(got.Payload, pk.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestMarshalUnmarshalTCP(t *testing.T) {
	pk := &Packet{
		SrcMAC: netsw.MAC{1}, DstMAC: netsw.MAC{2},
		EtherType: EtherTypeIPv4,
		SrcIP:     IPv4(10, 0, 0, 1), DstIP: IPv4(10, 0, 0, 2),
		Proto: ProtoTCP, SrcPort: 80, DstPort: 9999,
		Seq: 0xDEADBEEF, Ack: 0xCAFEBABE, Flags: FlagACK | FlagPSH,
		Window: 4096, Payload: []byte("tcp data"),
	}
	got, err := Unmarshal(pk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != pk.Seq || got.Ack != pk.Ack || got.Flags != pk.Flags ||
		got.Window != 4096 || !bytes.Equal(got.Payload, pk.Payload) {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestMarshalUnmarshalARP(t *testing.T) {
	pk := &Packet{
		SrcMAC: netsw.MAC{1}, DstMAC: netsw.Broadcast,
		EtherType:    EtherTypeARP,
		ARPOp:        ARPRequest,
		ARPSenderMAC: netsw.MAC{1},
		ARPSenderIP:  IPv4(10, 0, 0, 1),
		ARPTargetIP:  IPv4(10, 0, 0, 2),
	}
	got, err := Unmarshal(pk.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.ARPOp != ARPRequest || got.ARPSenderIP != pk.ARPSenderIP || got.ARPTargetIP != pk.ARPTargetIP {
		t.Fatalf("ARP round trip mismatch: %+v", got)
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 5),
		make([]byte, 20), // zero ethertype
	}
	for i, b := range cases {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

func TestUDPRoundTripProperty(t *testing.T) {
	f := func(payload []byte, sport, dport uint16) bool {
		if len(payload) > MaxUDPPayload {
			payload = payload[:MaxUDPPayload]
		}
		pk := &Packet{
			EtherType: EtherTypeIPv4, Proto: ProtoUDP,
			SrcIP: IPv4(1, 2, 3, 4), DstIP: IPv4(5, 6, 7, 8),
			SrcPort: sport, DstPort: dport, Payload: payload,
		}
		got, err := Unmarshal(pk.Marshal())
		if err != nil {
			return false
		}
		return bytes.Equal(got.Payload, payload) && got.SrcPort == sport && got.DstPort == dport
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowKey(t *testing.T) {
	pk := &Packet{
		EtherType: EtherTypeIPv4, Proto: ProtoUDP,
		SrcIP: IPv4(1, 1, 1, 1), DstIP: IPv4(10, 0, 0, 42),
		Payload: []byte("x"),
	}
	key, ok := FlowKey(pk.Marshal())
	if !ok || IP(key) != IPv4(10, 0, 0, 42) {
		t.Fatalf("FlowKey = %v,%v", IP(key), ok)
	}
	arp := &Packet{EtherType: EtherTypeARP, ARPOp: ARPRequest}
	if _, ok := FlowKey(arp.Marshal()); ok {
		t.Fatal("FlowKey matched an ARP frame")
	}
}

// --- live-stack tests over the simulated switch ---

// node is a raw endpoint: a stack attached directly to a switch port.
type node struct {
	stack *Stack
	port  *netsw.Port
}

func (n *node) Transmit(p *sim.Proc, frame []byte) {
	f := &netsw.Frame{Bytes: frame}
	copy(f.Dst[:], frame[0:6])
	copy(f.Src[:], frame[6:12])
	n.port.Send(f)
}

func (n *node) DeliverFrame(f *netsw.Frame) { n.stack.DeliverFrame(f.Bytes) }

// twoNodes wires two stacks through a switch.
func twoNodes(eng *sim.Engine) (a, b *node, sw *netsw.Switch) {
	sw = netsw.New(eng, netsw.DefaultParams())
	a = &node{}
	b = &node{}
	macA := netsw.MAC{0xaa, 0, 0, 0, 0, 1}
	macB := netsw.MAC{0xbb, 0, 0, 0, 0, 2}
	a.port = sw.AttachPort("a", a)
	b.port = sw.AttachPort("b", b)
	a.stack = NewStack(eng, "a", IPv4(10, 0, 0, 1), func() netsw.MAC { return macA }, a, DefaultConfig())
	b.stack = NewStack(eng, "b", IPv4(10, 0, 0, 2), func() netsw.MAC { return macB }, b, DefaultConfig())
	a.stack.Start()
	b.stack.Start()
	return a, b, sw
}

func TestARPResolution(t *testing.T) {
	eng := sim.New()
	a, b, _ := twoNodes(eng)
	eng.Go("test", func(p *sim.Proc) {
		mac, err := a.stack.Resolve(p, b.stack.IP())
		if err != nil {
			t.Errorf("resolve failed: %v", err)
			return
		}
		want := netsw.MAC{0xbb, 0, 0, 0, 0, 2}
		if mac != want {
			t.Errorf("resolved %v, want %v", mac, want)
		}
		eng.Shutdown()
	})
	eng.Run()
}

func TestARPResolutionFailsForUnknownIP(t *testing.T) {
	eng := sim.New()
	a, _, _ := twoNodes(eng)
	eng.Go("test", func(p *sim.Proc) {
		if _, err := a.stack.Resolve(p, IPv4(10, 0, 0, 99)); err == nil {
			t.Error("resolving a nonexistent IP succeeded")
		}
		eng.Shutdown()
	})
	eng.Run()
}

func TestUDPEchoOverSwitch(t *testing.T) {
	eng := sim.New()
	a, b, _ := twoNodes(eng)
	var rtt sim.Duration
	eng.Go("server", func(p *sim.Proc) {
		conn, err := b.stack.ListenUDP(7)
		if err != nil {
			t.Error(err)
			return
		}
		for {
			dg := conn.Recv(p)
			if err := conn.SendTo(p, dg.Src, dg.SrcPort, dg.Data); err != nil {
				t.Errorf("echo send: %v", err)
				return
			}
		}
	})
	eng.Go("client", func(p *sim.Proc) {
		conn, err := a.stack.ListenUDP(0)
		if err != nil {
			t.Error(err)
			return
		}
		payload := []byte("ping payload")
		for i := 0; i < 5; i++ {
			start := p.Now()
			if err := conn.SendTo(p, b.stack.IP(), 7, payload); err != nil {
				t.Errorf("send: %v", err)
				return
			}
			dg := conn.Recv(p)
			if !bytes.Equal(dg.Data, payload) {
				t.Error("echo payload mismatch")
				return
			}
			rtt = p.Now() - start
		}
		eng.Shutdown()
	})
	eng.Run()
	// Two switch hops, stack costs: a few µs at most.
	if rtt <= 0 || rtt > 20*time.Microsecond {
		t.Fatalf("echo RTT = %v, want small positive", rtt)
	}
}

func TestTCPConnectSendRecv(t *testing.T) {
	eng := sim.New()
	a, b, _ := twoNodes(eng)
	request := bytes.Repeat([]byte("Q"), 5000) // several MSS
	response := bytes.Repeat([]byte("R"), 3000)
	eng.Go("server", func(p *sim.Proc) {
		l, err := b.stack.ListenTCP(80)
		if err != nil {
			t.Error(err)
			return
		}
		conn := l.Accept(p)
		got, err := conn.Read(p, len(request))
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if !bytes.Equal(got, request) {
			t.Error("server received corrupted request")
		}
		if err := conn.Send(p, response); err != nil {
			t.Errorf("server send: %v", err)
		}
	})
	eng.Go("client", func(p *sim.Proc) {
		conn, err := a.stack.DialTCP(p, b.stack.IP(), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			eng.Shutdown()
			return
		}
		if err := conn.Send(p, request); err != nil {
			t.Errorf("client send: %v", err)
		}
		got, err := conn.Read(p, len(response))
		if err != nil {
			t.Errorf("client read: %v", err)
		} else if !bytes.Equal(got, response) {
			t.Error("client received corrupted response")
		}
		conn.Close(p)
		eng.Shutdown()
	})
	eng.Run()
}

func TestTCPRetransmissionAfterOutage(t *testing.T) {
	// The Fig. 14 mechanism: segments lost during a link outage are
	// retransmitted and delivered after it heals.
	eng := sim.New()
	a, b, sw := twoNodes(eng)
	serverDone := make(chan struct{}, 1)
	var received []byte
	want := bytes.Repeat([]byte("D"), 4000)
	eng.Go("server", func(p *sim.Proc) {
		l, _ := b.stack.ListenTCP(80)
		conn := l.Accept(p)
		got, err := conn.Read(p, len(want))
		if err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		received = got
		serverDone <- struct{}{}
		eng.Shutdown()
	})
	eng.Go("client", func(p *sim.Proc) {
		conn, err := a.stack.DialTCP(p, b.stack.IP(), 80)
		if err != nil {
			t.Errorf("dial: %v", err)
			eng.Shutdown()
			return
		}
		// Cut the server's port mid-transfer.
		eng.After(100*time.Microsecond, func() { sw.Ports()[1].SetEnabled(false) })
		eng.After(30*time.Millisecond, func() { sw.Ports()[1].SetEnabled(true) })
		if err := conn.Send(p, want); err != nil {
			t.Errorf("client send: %v", err)
		}
		if conn.Retransmits == 0 {
			// Sends complete quickly (window 256 KB > 4 KB); retransmits
			// happen later via the timer.
			p.Sleep(200 * time.Millisecond)
		}
	})
	eng.Run()
	select {
	case <-serverDone:
	default:
		t.Fatal("server never received the full stream after outage")
	}
	if !bytes.Equal(received, want) {
		t.Fatal("stream corrupted across outage")
	}
}

func TestTCPConnectTimeoutWhenServerUnreachable(t *testing.T) {
	eng := sim.New()
	a, b, sw := twoNodes(eng)
	eng.Go("client", func(p *sim.Proc) {
		// Resolve first (so ARP succeeds), then cut the port before SYN.
		if _, err := a.stack.Resolve(p, b.stack.IP()); err != nil {
			t.Errorf("resolve: %v", err)
		}
		sw.Ports()[1].SetEnabled(false)
		if _, err := a.stack.DialTCP(p, b.stack.IP(), 80); err == nil {
			t.Error("dial succeeded with server unreachable")
		}
		eng.Shutdown()
	})
	eng.Run()
}

func TestGratuitousARPUpdatesPeers(t *testing.T) {
	eng := sim.New()
	a, b, sw := twoNodes(eng)
	newMAC := netsw.MAC{0xbb, 0xff, 0, 0, 0, 9}
	eng.Go("test", func(p *sim.Proc) {
		if _, err := a.stack.Resolve(p, b.stack.IP()); err != nil {
			t.Errorf("resolve: %v", err)
		}
		// b "migrates": its serving MAC changes and it announces via GARP.
		b.stack.macFn = func() netsw.MAC { return newMAC }
		b.stack.GratuitousARP()
		p.Sleep(100 * time.Microsecond)
		mac, err := a.stack.Resolve(p, b.stack.IP())
		if err != nil || mac != newMAC {
			t.Errorf("peer ARP entry = %v (%v), want %v", mac, err, newMAC)
		}
		if got := sw.LookupMAC(newMAC); got != sw.Ports()[1] {
			t.Error("switch did not learn the new MAC's port from the GARP")
		}
		eng.Shutdown()
	})
	eng.Run()
}

func TestUDPOversizedPayloadRejected(t *testing.T) {
	eng := sim.New()
	a, b, _ := twoNodes(eng)
	eng.Go("test", func(p *sim.Proc) {
		conn, _ := a.stack.ListenUDP(0)
		if err := conn.SendTo(p, b.stack.IP(), 7, make([]byte, MaxUDPPayload+1)); err == nil {
			t.Error("oversized datagram accepted")
		}
		eng.Shutdown()
	})
	eng.Run()
}

func TestDuplicatePortRejected(t *testing.T) {
	eng := sim.New()
	a, _, _ := twoNodes(eng)
	if _, err := a.stack.ListenUDP(53); err != nil {
		t.Fatal(err)
	}
	if _, err := a.stack.ListenUDP(53); err == nil {
		t.Fatal("duplicate UDP bind accepted")
	}
	if _, err := a.stack.ListenTCP(80); err != nil {
		t.Fatal(err)
	}
	if _, err := a.stack.ListenTCP(80); err == nil {
		t.Fatal("duplicate TCP bind accepted")
	}
	eng.Shutdown()
	eng.Run()
}

func TestTCPStreamIntegrityUnderRandomLoss(t *testing.T) {
	// Property: for any loss pattern up to 10%, the byte stream delivered
	// is exactly the byte stream sent (TCP's contract, and the foundation
	// of Fig. 14's recovery behaviour).
	for _, seed := range []int64{1, 2, 3, 4} {
		seed := seed
		eng := sim.New()
		a, b, sw := twoNodes(eng)
		payload := make([]byte, 60000)
		for i := range payload {
			payload[i] = byte(i*7 + int(seed))
		}
		var received []byte
		eng.Go("server", func(p *sim.Proc) {
			l, _ := b.stack.ListenTCP(80)
			conn := l.Accept(p)
			got, err := conn.Read(p, len(payload))
			if err != nil {
				t.Errorf("seed %d: server read: %v", seed, err)
				return
			}
			received = got
			eng.Shutdown()
		})
		eng.Go("client", func(p *sim.Proc) {
			conn, err := a.stack.DialTCP(p, b.stack.IP(), 80)
			if err != nil {
				t.Errorf("seed %d: dial: %v", seed, err)
				eng.Shutdown()
				return
			}
			// Loss starts after the handshake to keep setup deterministic.
			sw.SetLossRate(0.10, seed)
			if err := conn.Send(p, payload); err != nil {
				t.Errorf("seed %d: send: %v", seed, err)
			}
		})
		eng.RunUntil(30 * time.Second)
		eng.Shutdown()
		if !bytes.Equal(received, payload) {
			t.Fatalf("seed %d: stream corrupted (%d/%d bytes, dropped %d frames)",
				seed, len(received), len(payload), sw.LossDropped)
		}
		if sw.LossDropped == 0 {
			t.Fatalf("seed %d: loss injection never fired", seed)
		}
	}
}

func TestTCPFastRetransmitEngages(t *testing.T) {
	eng := sim.New()
	a, b, sw := twoNodes(eng)
	payload := bytes.Repeat([]byte{9}, 30000)
	var cl *TCPConn
	eng.Go("server", func(p *sim.Proc) {
		l, _ := b.stack.ListenTCP(80)
		conn := l.Accept(p)
		if _, err := conn.Read(p, len(payload)); err == nil {
			eng.Shutdown()
		}
	})
	eng.Go("client", func(p *sim.Proc) {
		conn, err := a.stack.DialTCP(p, b.stack.IP(), 80)
		if err != nil {
			eng.Shutdown()
			return
		}
		cl = conn
		sw.SetLossRate(0.05, 42)
		conn.Send(p, payload)
	})
	eng.RunUntil(30 * time.Second)
	eng.Shutdown()
	if cl == nil || cl.FastRetransmits == 0 {
		t.Fatal("fast retransmit never engaged under loss")
	}
}

func TestTCPRSTTearsDownConnection(t *testing.T) {
	eng := sim.New()
	a, b, _ := twoNodes(eng)
	eng.Go("client", func(p *sim.Proc) {
		// No listener on port 81: the SYN must be refused with RST and the
		// dial must fail quickly (not retry to the full timeout ladder).
		start := p.Now()
		if _, err := a.stack.DialTCP(p, b.stack.IP(), 81); err == nil {
			t.Error("dial to closed port succeeded")
		}
		if p.Now()-start > 5*time.Second {
			t.Error("RST did not shortcut the connect timeout")
		}
		eng.Shutdown()
	})
	eng.Run()
}

func TestTCPSendWindowBlocks(t *testing.T) {
	// With the receiver's app not consuming fast and a small window, Send
	// must block rather than buffer unboundedly, and complete once ACKs
	// drain.
	eng := sim.New()
	sw := netsw.New(eng, netsw.DefaultParams())
	mkNode := func(name string, ip IP, macLow byte, cfg Config) *node {
		n := &node{}
		mac := netsw.MAC{0xaa, 0, 0, 0, 0, macLow}
		n.port = sw.AttachPort(name, n)
		n.stack = NewStack(eng, name, ip, func() netsw.MAC { return mac }, n, cfg)
		n.stack.Start()
		return n
	}
	cfg := DefaultConfig()
	cfg.TCPWindow = 4096 // tiny window
	a := mkNode("a", IPv4(10, 0, 0, 1), 1, cfg)
	b := mkNode("b", IPv4(10, 0, 0, 2), 2, DefaultConfig())
	total := 64 * 1024
	done := false
	eng.Go("server", func(p *sim.Proc) {
		l, _ := b.stack.ListenTCP(80)
		conn := l.Accept(p)
		if _, err := conn.Read(p, total); err == nil {
			done = true
		}
		eng.Shutdown()
	})
	eng.Go("client", func(p *sim.Proc) {
		conn, err := a.stack.DialTCP(p, b.stack.IP(), 80)
		if err != nil {
			eng.Shutdown()
			return
		}
		conn.Send(p, make([]byte, total))
	})
	eng.RunUntil(10 * time.Second)
	eng.Shutdown()
	if !done {
		t.Fatal("windowed transfer never completed")
	}
}

func TestUDPPendingAndClose(t *testing.T) {
	eng := sim.New()
	a, b, _ := twoNodes(eng)
	eng.Go("test", func(p *sim.Proc) {
		srv, _ := b.stack.ListenUDP(9)
		cli, _ := a.stack.ListenUDP(0)
		cli.SendTo(p, b.stack.IP(), 9, []byte("1"))
		cli.SendTo(p, b.stack.IP(), 9, []byte("2"))
		p.Sleep(100 * time.Microsecond)
		if srv.Pending() != 2 {
			t.Errorf("pending = %d, want 2", srv.Pending())
		}
		if srv.Port() != 9 {
			t.Errorf("port = %d", srv.Port())
		}
		srv.Close()
		// Packets to a closed port are counted, not delivered.
		before := b.stack.RxNoSocket
		cli.SendTo(p, b.stack.IP(), 9, []byte("3"))
		p.Sleep(100 * time.Microsecond)
		if b.stack.RxNoSocket <= before {
			t.Error("closed-port datagram not counted")
		}
		eng.Shutdown()
	})
	eng.Run()
}

func TestTCPReadTimeout(t *testing.T) {
	eng := sim.New()
	a, b, _ := twoNodes(eng)
	eng.Go("server", func(p *sim.Proc) {
		l, _ := b.stack.ListenTCP(80)
		l.Accept(p) // accept but never send
	})
	eng.Go("client", func(p *sim.Proc) {
		conn, err := a.stack.DialTCP(p, b.stack.IP(), 80)
		if err != nil {
			t.Error(err)
			eng.Shutdown()
			return
		}
		start := p.Now()
		_, ok, err := conn.ReadTimeout(p, 100, 5*time.Millisecond)
		if ok || err != nil {
			t.Errorf("ReadTimeout = ok=%v err=%v, want timeout", ok, err)
		}
		if el := p.Now() - start; el < 5*time.Millisecond {
			t.Errorf("returned after %v, before the deadline", el)
		}
		eng.Shutdown()
	})
	eng.Run()
}

func TestTCPCloseDeliversEOF(t *testing.T) {
	eng := sim.New()
	a, b, _ := twoNodes(eng)
	eng.Go("server", func(p *sim.Proc) {
		l, _ := b.stack.ListenTCP(80)
		conn := l.Accept(p)
		if chunk := conn.Recv(p); chunk == nil {
			// EOF from the client's close.
			eng.Shutdown()
			return
		}
		t.Error("expected EOF chunk")
		eng.Shutdown()
	})
	eng.Go("client", func(p *sim.Proc) {
		conn, err := a.stack.DialTCP(p, b.stack.IP(), 80)
		if err != nil {
			t.Error(err)
			eng.Shutdown()
			return
		}
		conn.Close(p)
	})
	eng.Run()
}

func TestListenerCloseUnbinds(t *testing.T) {
	eng := sim.New()
	a, _, _ := twoNodes(eng)
	l, err := a.stack.ListenTCP(443)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := a.stack.ListenTCP(443); err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	eng.Shutdown()
	eng.Run()
}

func TestUnmarshalNeverPanicsOnRandomBytes(t *testing.T) {
	// Robustness property: arbitrary wire bytes must produce an error or a
	// packet — never a panic (the backend's inspection path feeds it raw
	// DMA buffers).
	f := func(b []byte) bool {
		defer func() {
			if recover() != nil {
				t.Errorf("Unmarshal panicked on %d bytes", len(b))
			}
		}()
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Adversarial shapes: valid Ethernet+IPv4 prefix with lying lengths.
	hdr := (&Packet{EtherType: EtherTypeIPv4, Proto: ProtoUDP, SrcIP: 1, DstIP: 2, Payload: []byte("x")}).Marshal()
	for cut := 0; cut < len(hdr); cut++ {
		if _, err := Unmarshal(hdr[:cut]); err == nil && cut < EthHeaderLen+IPv4HeaderLen+UDPHeaderLen {
			t.Fatalf("truncated frame of %d bytes accepted", cut)
		}
	}
	// Total-length larger than the frame must be rejected, not sliced OOB.
	bad := make([]byte, len(hdr))
	copy(bad, hdr)
	bad[16], bad[17] = 0xFF, 0xFF // IPv4 total length
	if _, err := Unmarshal(bad); err == nil {
		t.Fatal("oversized total-length accepted")
	}
}
