package host

import (
	"bytes"
	"testing"
	"time"

	"oasis/internal/cxl"
	"oasis/internal/sim"
)

func TestLocalMemoryCPURoundTrip(t *testing.T) {
	eng := sim.New()
	mem := NewLocalMemory(eng, 1<<20, DefaultMemParams())
	data := []byte("local ddr contents")
	eng.Go("t", func(p *sim.Proc) {
		start := p.Now()
		mem.CPUWrite(p, 5000, data)
		buf := make([]byte, len(data))
		mem.CPURead(p, 5000, buf)
		if !bytes.Equal(buf, data) {
			t.Error("round trip mismatch")
		}
		if el := p.Now() - start; el < 150*time.Nanosecond {
			t.Errorf("two DDR accesses took %v, want >= 2×90ns-ish", el)
		}
	})
	eng.Run()
}

func TestLocalMemoryDMAVisibilityAtCompletion(t *testing.T) {
	eng := sim.New()
	mem := NewLocalMemory(eng, 1<<20, DefaultMemParams())
	var done sim.Duration
	eng.At(0, func() { done = mem.DMAWrite(0, []byte{42}, "payload") })
	probe := make([]byte, 1)
	eng.At(done/2, func() { mem.Peek(0, probe) }) // mid-flight: not yet visible
	eng.Run()
	if probe[0] != 0 {
		t.Fatal("DMA write visible before completion")
	}
	final := make([]byte, 1)
	mem.Peek(0, final)
	if final[0] != 42 {
		t.Fatal("DMA write never landed")
	}
}

func TestLocalMemoryAllocFree(t *testing.T) {
	eng := sim.New()
	mem := NewLocalMemory(eng, 1<<16, DefaultMemParams())
	base, rounded, err := mem.Alloc(100)
	if err != nil || rounded != 128 {
		t.Fatalf("Alloc = %d,%d,%v", base, rounded, err)
	}
	mem.Free(base, rounded)
	if _, _, err := mem.Alloc(1 << 16); err != nil {
		t.Fatalf("full-size alloc after free: %v", err)
	}
}

func TestLocalMemoryBoundsPanic(t *testing.T) {
	eng := sim.New()
	mem := NewLocalMemory(eng, 4096, DefaultMemParams())
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-range panic")
		}
	}()
	mem.Poke(4090, make([]byte, 10))
}

func TestHostInPod(t *testing.T) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<20, cxl.DefaultParams())
	h := New(eng, 0, "host0", pool, DefaultConfig())
	if !h.InPod() || h.Cache == nil || h.CXLPort == nil {
		t.Fatal("pod host must have CXL port and cache")
	}
	client := New(eng, 1, "client", nil, DefaultConfig())
	if client.InPod() || client.Cache != nil {
		t.Fatal("non-pod host must not have CXL attachments")
	}
}
