// Package host models a pod member: a server with local DDR memory, a CPU
// cache in front of its CXL port, and attachment points for PCIe devices
// and container instances.
//
// Local memory is cache-coherent within the host (ordinary DDR), so it has
// a flat cost model; the interesting coherence behaviour only exists on the
// CXL side (package cache).
package host

import (
	"fmt"
	"time"

	"oasis/internal/cache"
	"oasis/internal/cxl"
	"oasis/internal/memalloc"
	"oasis/internal/sim"
)

// MemParams is the local-DDR cost model.
type MemParams struct {
	// CPULatency is the per-access latency for CPU reads/writes (a miss to
	// DRAM; hits are folded in, since local-memory hot paths in Oasis are
	// queue rings with predictable locality).
	CPULatency sim.Duration
	// CPUBandwidth is the streaming copy bandwidth in bytes/s.
	CPUBandwidth float64
	// DMALatency is a device's PCIe round-trip to DDR.
	DMALatency sim.Duration
	// DMABandwidth is the device DMA bandwidth in bytes/s.
	DMABandwidth float64
}

// DefaultMemParams models DDR5 behind a PCIe 5.0 device.
func DefaultMemParams() MemParams {
	return MemParams{
		CPULatency:   90 * time.Nanosecond,
		CPUBandwidth: 64e9,
		DMALatency:   350 * time.Nanosecond,
		DMABandwidth: 32e9,
	}
}

const pageSize = 4096

// LocalMemory is one host's DDR: sparse backing pages plus an allocator.
// It implements nic.DMAMemory.
type LocalMemory struct {
	eng    *sim.Engine
	params MemParams
	size   int64
	pages  [][]byte // sparse backing store, indexed by addr/pageSize
	alloc  *memalloc.Allocator
	dma    *sim.Resource
	frees  []*memWrite // recycled posted-write ops (engine-local, no lock)
}

// NewLocalMemory returns size bytes of DDR.
func NewLocalMemory(eng *sim.Engine, size int64, params MemParams) *LocalMemory {
	if size <= 0 || size%pageSize != 0 {
		panic("host: local memory size must be a positive multiple of 4096")
	}
	return &LocalMemory{
		eng:    eng,
		params: params,
		size:   size,
		pages:  make([][]byte, size/pageSize),
		alloc:  memalloc.New(size, cxl.LineSize),
		dma:    sim.NewResource(eng),
	}
}

// Alloc reserves a line-aligned buffer, returning its base address.
func (m *LocalMemory) Alloc(size int64) (int64, int64, error) {
	return m.alloc.Alloc(size)
}

// Free releases a buffer returned by Alloc.
func (m *LocalMemory) Free(base, size int64) { m.alloc.Free(base, size) }

func (m *LocalMemory) check(addr int64, n int) {
	if addr < 0 || addr+int64(n) > m.size {
		panic(fmt.Sprintf("host: local access [%d, %d) outside memory of size %d", addr, addr+int64(n), m.size))
	}
}

func (m *LocalMemory) page(addr int64) []byte {
	i := addr / pageSize
	pg := m.pages[i]
	if pg == nil {
		pg = make([]byte, pageSize)
		m.pages[i] = pg
	}
	return pg
}

// Peek copies raw contents without timing.
func (m *LocalMemory) Peek(addr int64, buf []byte) {
	m.check(addr, len(buf))
	for len(buf) > 0 {
		pg := m.page(addr)
		off := addr & (pageSize - 1)
		n := copy(buf, pg[off:])
		buf = buf[n:]
		addr += int64(n)
	}
}

// Poke writes raw contents without timing.
func (m *LocalMemory) Poke(addr int64, data []byte) {
	m.check(addr, len(data))
	for len(data) > 0 {
		pg := m.page(addr)
		off := addr & (pageSize - 1)
		n := copy(pg[off:], data)
		data = data[n:]
		addr += int64(n)
	}
}

// CPURead copies memory into buf, charging latency plus streaming time.
func (m *LocalMemory) CPURead(p *sim.Proc, addr int64, buf []byte) {
	m.Peek(addr, buf)
	p.Sleep(m.params.CPULatency + m.streamTime(len(buf), m.params.CPUBandwidth))
}

// CPUWrite stores data, charging latency plus streaming time.
func (m *LocalMemory) CPUWrite(p *sim.Proc, addr int64, data []byte) {
	m.Poke(addr, data)
	p.Sleep(m.params.CPULatency + m.streamTime(len(data), m.params.CPUBandwidth))
}

// DMARead implements nic.DMAMemory for device reads from DDR.
func (m *LocalMemory) DMARead(addr int64, buf []byte, category string) sim.Duration {
	m.Peek(addr, buf)
	return m.dma.Reserve(m.streamTime(len(buf), m.params.DMABandwidth)) + m.params.DMALatency
}

// DMAWrite implements nic.DMAMemory for device writes to DDR.
func (m *LocalMemory) DMAWrite(addr int64, data []byte, category string) sim.Duration {
	done := m.dma.Reserve(m.streamTime(len(data), m.params.DMABandwidth)) + m.params.DMALatency
	snap := m.eng.Bufs().Get(len(data))
	copy(snap, data)
	var w *memWrite
	if n := len(m.frees); n > 0 {
		w = m.frees[n-1]
		m.frees[n-1] = nil
		m.frees = m.frees[:n-1]
	} else {
		w = &memWrite{}
	}
	w.m, w.addr, w.snap = m, addr, snap
	m.eng.AtTimer(done, w)
	return done
}

// memWrite is the pooled in-flight half of DMAWrite; firing it as a
// sim.Timer avoids a closure allocation per DMA (see sim.Timer).
type memWrite struct {
	m    *LocalMemory
	addr int64
	snap []byte
}

func (w *memWrite) Fire() {
	m := w.m
	m.Poke(w.addr, w.snap)
	m.eng.Bufs().Put(w.snap)
	w.m, w.snap = nil, nil
	m.frees = append(m.frees, w)
}

func (m *LocalMemory) streamTime(n int, bw float64) sim.Duration {
	return sim.Duration(float64(n) / bw * float64(time.Second))
}

// TouchCost returns the CPU cost of moving n bytes through local memory
// without materializing an address — used to charge for copies whose
// destination buffer identity does not matter (e.g. the frontend's
// isolation copy into an instance's private memory, §3.3.2).
func (m *LocalMemory) TouchCost(n int) sim.Duration {
	return m.params.CPULatency + m.streamTime(n, m.params.CPUBandwidth)
}

// Host is one pod member.
type Host struct {
	Name string
	ID   int

	Eng   *sim.Engine
	Local *LocalMemory
	// CXLPort is the host's CPU-side attachment to the pool (nil for hosts
	// outside the pod, e.g. load-generator clients).
	CXLPort *cxl.Port
	// Cache is the CPU cache in front of CXLPort.
	Cache *cache.Cache

	// IPCCost is the cost of posting one message on an intra-host shared
	// memory ring (instance <-> frontend driver, Junction-style).
	IPCCost sim.Duration
}

// Config sizes a host.
type Config struct {
	LocalMemBytes int64
	MemParams     MemParams
	CacheParams   cache.Params
	IPCCost       sim.Duration
}

// DefaultConfig matches the evaluation hosts (768 GB is overkill for the
// simulation; 1 GiB of modelled DDR is plenty since buffers are recycled).
func DefaultConfig() Config {
	return Config{
		LocalMemBytes: 1 << 30,
		MemParams:     DefaultMemParams(),
		CacheParams:   cache.DefaultParams(),
		IPCCost:       150 * time.Nanosecond,
	}
}

// New creates a host. pool may be nil for hosts outside the CXL pod.
func New(eng *sim.Engine, id int, name string, pool *cxl.Pool, cfg Config) *Host {
	h := &Host{
		Name:    name,
		ID:      id,
		Eng:     eng,
		Local:   NewLocalMemory(eng, cfg.LocalMemBytes, cfg.MemParams),
		IPCCost: cfg.IPCCost,
	}
	if pool != nil {
		h.CXLPort = pool.AttachPort(name)
		h.Cache = cache.New(eng, h.CXLPort, cfg.CacheParams)
	}
	return h
}

// InPod reports whether the host is attached to the CXL pool.
func (h *Host) InPod() bool { return h.CXLPort != nil }
