package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// HistSummary is a histogram's fixed-quantile digest, carried by value in a
// Point so snapshots stay self-contained and JSON-stable.
type HistSummary struct {
	Count int64         `json:"count"`
	Min   time.Duration `json:"min_ns"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P90   time.Duration `json:"p90_ns"`
	P99   time.Duration `json:"p99_ns"`
	P999  time.Duration `json:"p999_ns"`
	Max   time.Duration `json:"max_ns"`
}

// Point is one sampled series: a counter or gauge value, or a histogram
// summary. Meter-backed instruments emit one Point per category with Label
// set, so `cxl/port/host0/rd_bytes` appears once per traffic class.
type Point struct {
	Name  string       `json:"name"`
	Kind  string       `json:"kind"`
	Label string       `json:"label,omitempty"`
	Value float64      `json:"value"`
	Hist  *HistSummary `json:"hist,omitempty"`
}

// Snapshot is one deterministic sample of every registered instrument:
// points sorted by (Name, Label), plus the retained tail of the trace ring.
// Identical runs produce byte-identical JSON encodings.
type Snapshot struct {
	At     time.Duration `json:"at_ns"`
	Points []Point       `json:"points"`
	Events []Event       `json:"events,omitempty"`
}

// Snapshot samples every instrument at virtual time `at`.
func (r *Registry) Snapshot(at time.Duration) Snapshot {
	r.mu.Lock()
	insts := make([]*instrument, len(r.order))
	copy(insts, r.order)
	r.mu.Unlock()

	s := Snapshot{At: at}
	for _, i := range insts {
		switch {
		case i.counter != nil:
			s.Points = append(s.Points, Point{Name: i.name, Kind: i.kind, Value: float64(i.counter())})
		case i.gauge != nil:
			s.Points = append(s.Points, Point{Name: i.name, Kind: i.kind, Value: i.gauge()})
		case i.hist != nil:
			h := i.hist
			s.Points = append(s.Points, Point{Name: i.name, Kind: KindHistogram, Hist: &HistSummary{
				Count: h.Count(),
				Min:   h.Min(),
				Mean:  h.Mean(),
				P50:   h.Percentile(50),
				P90:   h.Percentile(90),
				P99:   h.Percentile(99),
				P999:  h.Percentile(99.9),
				Max:   h.Max(),
			}})
		case i.meter != nil:
			for _, cat := range i.meter.Categories() { // sorted
				s.Points = append(s.Points, Point{Name: i.name, Kind: KindCounter, Label: cat,
					Value: float64(i.meter.Category(cat))})
			}
		}
	}
	sort.Slice(s.Points, func(a, b int) bool {
		if s.Points[a].Name != s.Points[b].Name {
			return s.Points[a].Name < s.Points[b].Name
		}
		return s.Points[a].Label < s.Points[b].Label
	})
	s.Events = r.Events.Events()
	return s
}

// Point returns the first point with the given name (any label).
func (s Snapshot) Point(name string) (Point, bool) {
	for _, pt := range s.Points {
		if pt.Name == name {
			return pt, true
		}
	}
	return Point{}, false
}

// Value returns a counter's or gauge's sampled value, 0 if absent.
func (s Snapshot) Value(name string) float64 {
	pt, _ := s.Point(name)
	return pt.Value
}

// Category returns a meter point's value for one category, 0 if absent.
func (s Snapshot) Category(name, label string) float64 {
	for _, pt := range s.Points {
		if pt.Name == name && pt.Label == label {
			return pt.Value
		}
	}
	return 0
}

// Histogram returns a histogram point's summary, nil if absent.
func (s Snapshot) Histogram(name string) *HistSummary {
	pt, ok := s.Point(name)
	if !ok {
		return nil
	}
	return pt.Hist
}

// JSON returns the snapshot's deterministic JSON encoding.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// The type marshals by construction; reaching this is a bug.
		panic(fmt.Sprintf("obs: snapshot marshal: %v", err))
	}
	return b
}

// fmtValue renders an integral float without a decimal point, so counters
// read as counts.
func fmtValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// String renders the human-readable report: one line per point, histogram
// digests inline, trace events at the tail. This is what Pod.StatsReport
// prints.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pod after %v of virtual time\n", s.At)
	for _, pt := range s.Points {
		switch {
		case pt.Hist != nil:
			h := pt.Hist
			fmt.Fprintf(&b, "  %s count=%d p50=%v p90=%v p99=%v max=%v\n",
				pt.Name, h.Count, h.P50, h.P90, h.P99, h.Max)
		case pt.Label != "":
			fmt.Fprintf(&b, "  %s{%s} %s\n", pt.Name, pt.Label, fmtValue(pt.Value))
		default:
			fmt.Fprintf(&b, "  %s %s\n", pt.Name, fmtValue(pt.Value))
		}
	}
	if len(s.Events) > 0 {
		fmt.Fprintf(&b, "  events (%d retained):\n", len(s.Events))
		for _, ev := range s.Events {
			fmt.Fprintf(&b, "    t=%-12v %s: %s\n", ev.At, ev.Src, ev.Msg)
		}
	}
	return b.String()
}

// promName sanitizes a hierarchical instrument name into a Prometheus metric
// name: slashes and other forbidden runes become underscores, with an oasis_
// namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("oasis_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// PromText renders the snapshot in the Prometheus text exposition format:
// counters and gauges as single samples, histograms as summary quantiles in
// seconds plus a _count sample.
func (s Snapshot) PromText() string {
	var b strings.Builder
	for _, pt := range s.Points {
		name := promName(pt.Name)
		switch {
		case pt.Hist != nil:
			h := pt.Hist
			for _, q := range []struct {
				q string
				v time.Duration
			}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}, {"0.999", h.P999}} {
				fmt.Fprintf(&b, "%s{quantile=%q} %s\n", name, q.q,
					strconv.FormatFloat(q.v.Seconds(), 'g', -1, 64))
			}
			fmt.Fprintf(&b, "%s_count %d\n", name, h.Count)
		case pt.Label != "":
			fmt.Fprintf(&b, "%s{category=%q} %s\n", name, pt.Label, fmtValue(pt.Value))
		default:
			fmt.Fprintf(&b, "%s %s\n", name, fmtValue(pt.Value))
		}
	}
	return b.String()
}
