package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"oasis/internal/metrics"
)

func TestRegistryNameCollisionRejected(t *testing.T) {
	r := New()
	if err := r.RegisterCounter("nic1/tx_packets", func() int64 { return 0 }); err != nil {
		t.Fatalf("first registration: %v", err)
	}
	if err := r.RegisterCounter("nic1/tx_packets", func() int64 { return 0 }); err == nil {
		t.Fatal("duplicate counter registration accepted")
	}
	// Collisions are rejected across kinds too: the namespace is shared.
	if err := r.RegisterGauge("nic1/tx_packets", func() float64 { return 0 }); err == nil {
		t.Fatal("duplicate gauge registration accepted")
	}
	if err := r.RegisterHistogram("nic1/tx_packets", &metrics.Histogram{}); err == nil {
		t.Fatal("duplicate histogram registration accepted")
	}
	if err := r.RegisterCounter("", func() int64 { return 0 }); err == nil {
		t.Fatal("empty name accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("panic convenience did not panic on collision")
		}
	}()
	r.Counter("nic1/tx_packets", func() int64 { return 0 })
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	// Empty histogram: every digest field is zero.
	var h metrics.Histogram
	r := New()
	r.Histogram("lat", &h)
	sum := r.Snapshot(0).Histogram("lat")
	if sum == nil {
		t.Fatal("histogram point missing")
	}
	if sum.Count != 0 || sum.P50 != 0 || sum.P999 != 0 || sum.Min != 0 || sum.Max != 0 {
		t.Fatalf("empty histogram summary not zero: %+v", sum)
	}

	// Single sample: every quantile collapses to it.
	h.Record(1234 * time.Nanosecond)
	sum = r.Snapshot(0).Histogram("lat")
	if sum.Count != 1 {
		t.Fatalf("count = %d, want 1", sum.Count)
	}
	for _, q := range []time.Duration{sum.P50, sum.P90, sum.P99, sum.P999, sum.Min, sum.Max, sum.Mean} {
		if q != 1234*time.Nanosecond {
			t.Fatalf("single-sample digest not collapsed: %+v", sum)
		}
	}

	// Bucket boundaries: values below subBuckets (128 ns) are recorded
	// exactly; the first bucketed magnitude keeps <0.8% relative error.
	var hb metrics.Histogram
	for _, v := range []time.Duration{0, 1, 127, 128, 129, 255, 256} {
		hb.Record(v)
	}
	if got := hb.Percentile(0); got != 0 {
		t.Fatalf("P0 = %v, want 0 (clamped to min)", got)
	}
	if got := hb.Percentile(100); got != 256 {
		t.Fatalf("P100 = %v, want exact max 256", got)
	}
	// Median of 7 samples is the 4th (128 ns): an exact boundary value.
	if got := hb.Percentile(50); got != 128 {
		t.Fatalf("P50 = %v, want 128ns", got)
	}
}

func TestSnapshotSortedAndDeterministic(t *testing.T) {
	build := func() Snapshot {
		r := New()
		m := metrics.NewMeter()
		m.Add("payload", 100)
		m.Add("message", 7)
		r.Meter("cxl/port/host0/rd_bytes", m)
		r.Counter("z/last", func() int64 { return 9 })
		r.Counter("a/first", func() int64 { return 1 })
		r.Gauge("m/mid", func() float64 { return 2.5 })
		h := r.NewHistogram("m/lat")
		h.Record(5 * time.Microsecond)
		r.Events.Emit(time.Millisecond, "alloc", "placement ip=10.0.0.1 nic=1")
		return r.Snapshot(42 * time.Millisecond)
	}
	s := build()
	for i := 1; i < len(s.Points); i++ {
		a, b := s.Points[i-1], s.Points[i]
		if a.Name > b.Name || (a.Name == b.Name && a.Label >= b.Label) {
			t.Fatalf("points not strictly sorted: %q{%s} before %q{%s}", a.Name, a.Label, b.Name, b.Label)
		}
	}
	if s.Category("cxl/port/host0/rd_bytes", "payload") != 100 {
		t.Fatal("meter category point missing")
	}
	if !bytes.Equal(build().JSON(), s.JSON()) {
		t.Fatal("identical registries produced different snapshot JSON")
	}
	if s.Value("a/first") != 1 || s.Value("m/mid") != 2.5 {
		t.Fatalf("point lookup broken: %s", s.JSON())
	}
	if len(s.Events) != 1 || s.Events[0].Src != "alloc" {
		t.Fatalf("events not carried: %+v", s.Events)
	}
}

func TestSnapshotEncodings(t *testing.T) {
	r := New()
	r.Counter("host0/fe/tx_forwarded", func() int64 { return 12 })
	m := metrics.NewMeter()
	m.Add("payload", 64)
	r.Meter("cxl/port/host0/wr_bytes", m)
	h := r.NewHistogram("host0/fe/chan/nic1/rx_lat")
	h.Record(2 * time.Microsecond)
	s := r.Snapshot(time.Second)

	str := s.String()
	for _, want := range []string{"pod after 1s", "host0/fe/tx_forwarded 12",
		"cxl/port/host0/wr_bytes{payload} 64", "rx_lat count=1"} {
		if !strings.Contains(str, want) {
			t.Fatalf("String() missing %q:\n%s", want, str)
		}
	}
	prom := s.PromText()
	for _, want := range []string{"oasis_host0_fe_tx_forwarded 12",
		`oasis_cxl_port_host0_wr_bytes{category="payload"} 64`,
		`oasis_host0_fe_chan_nic1_rx_lat{quantile="0.5"}`,
		"oasis_host0_fe_chan_nic1_rx_lat_count 1"} {
		if !strings.Contains(prom, want) {
			t.Fatalf("PromText() missing %q:\n%s", want, prom)
		}
	}
}

func TestTraceRingBounded(t *testing.T) {
	tr := NewTraceRing(4)
	for i := 0; i < 10; i++ {
		tr.Emit(time.Duration(i), "src", "msg")
	}
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	if evs[0].At != 6 || evs[3].At != 9 {
		t.Fatalf("ring did not keep the newest tail: %+v", evs)
	}
	if tr.Total() != 10 {
		t.Fatalf("total = %d, want 10", tr.Total())
	}
	// A nil ring swallows emits so components can trace unconditionally.
	var nilRing *TraceRing
	nilRing.Emit(0, "x", "y")
	if nilRing.Events() != nil || nilRing.Total() != 0 {
		t.Fatal("nil ring not inert")
	}
}
