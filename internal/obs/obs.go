// Package obs is the pod-wide observability layer: a registry of typed
// instruments — counters, gauges, log-bucketed latency histograms, and
// categorized byte meters — plus a bounded trace-event ring, sampled into a
// deterministic Snapshot the experiments harness and operators can query
// numerically instead of scraping a prose dump.
//
// Every component registers its instruments under a stable hierarchical
// name, slash-separated from coarse to fine:
//
//	nic1/rx_no_desc              device counters
//	host0/fe/tx_forwarded        per-host engine counters
//	host0/fe/chan/nic1/rx_lat    per-message-channel latency histograms
//	cxl/port/host0/rd_bytes      CXL byte meters (one point per category)
//	alloc/failovers              control-plane decisions
//	core/host0/iters             driver-core accounting
//
// Counters and gauges are usually registered as sampling closures over a
// component's existing counter fields, so instrumentation adds no work — and
// in particular no virtual time — to the simulated datapath; the registry
// reads everything lazily at Snapshot time. Registration happens once at
// wiring time; duplicate names are rejected (a wiring bug), which the
// Register* forms report as an error and the panic conveniences enforce.
package obs

import (
	"fmt"
	"sync"

	"oasis/internal/metrics"
)

// Instrument kinds, as reported in Snapshot points.
const (
	KindCounter   = "counter"
	KindGauge     = "gauge"
	KindHistogram = "histogram"
)

// Counter is an owned monotonic event counter for components that do not
// already keep their own tally.
type Counter struct {
	v int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// instrument is one registered series source.
type instrument struct {
	name    string
	kind    string
	counter func() int64
	gauge   func() float64
	hist    *metrics.Histogram
	meter   *metrics.Meter
}

// Registry holds a pod's instruments and its trace-event ring. The zero
// value is not usable; create one with New. Registration and Snapshot are
// safe for concurrent use (the simulation itself is single-threaded, but
// operators may snapshot from another goroutine).
type Registry struct {
	mu     sync.Mutex
	byName map[string]*instrument
	order  []*instrument

	// Events is the pod's bounded trace-event ring: components append
	// noteworthy transitions (placements, failovers, link state) with their
	// virtual timestamps, and Snapshot carries the retained tail.
	Events *TraceRing
}

// DefaultTraceCap bounds the trace ring: enough for a run's control-plane
// decisions without letting a chatty component grow the snapshot unboundedly.
const DefaultTraceCap = 256

// New creates an empty registry with a DefaultTraceCap-entry trace ring.
func New() *Registry {
	return &Registry{
		byName: make(map[string]*instrument),
		Events: NewTraceRing(DefaultTraceCap),
	}
}

// Len returns the number of registered instruments.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.order)
}

func (r *Registry) register(i *instrument) error {
	if i.name == "" {
		return fmt.Errorf("obs: empty instrument name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[i.name]; dup {
		return fmt.Errorf("obs: duplicate instrument %q", i.name)
	}
	r.byName[i.name] = i
	r.order = append(r.order, i)
	return nil
}

// RegisterCounter registers a sampled counter: fn is read at Snapshot time.
func (r *Registry) RegisterCounter(name string, fn func() int64) error {
	return r.register(&instrument{name: name, kind: KindCounter, counter: fn})
}

// RegisterGauge registers a sampled gauge: fn is read at Snapshot time.
func (r *Registry) RegisterGauge(name string, fn func() float64) error {
	return r.register(&instrument{name: name, kind: KindGauge, gauge: fn})
}

// RegisterHistogram registers an existing histogram; the component keeps
// recording into it and Snapshot summarizes it.
func (r *Registry) RegisterHistogram(name string, h *metrics.Histogram) error {
	if h == nil {
		return fmt.Errorf("obs: nil histogram for %q", name)
	}
	return r.register(&instrument{name: name, kind: KindHistogram, hist: h})
}

// RegisterMeter registers a categorized byte meter; Snapshot emits one
// counter point per category, labeled with the category name.
func (r *Registry) RegisterMeter(name string, m *metrics.Meter) error {
	if m == nil {
		return fmt.Errorf("obs: nil meter for %q", name)
	}
	return r.register(&instrument{name: name, kind: KindCounter, meter: m})
}

// Counter is the panic-on-collision convenience for wiring-time registration.
func (r *Registry) Counter(name string, fn func() int64) {
	if err := r.RegisterCounter(name, fn); err != nil {
		panic(err)
	}
}

// Gauge is the panic-on-collision convenience for wiring-time registration.
func (r *Registry) Gauge(name string, fn func() float64) {
	if err := r.RegisterGauge(name, fn); err != nil {
		panic(err)
	}
}

// Histogram is the panic-on-collision convenience for wiring-time
// registration.
func (r *Registry) Histogram(name string, h *metrics.Histogram) {
	if err := r.RegisterHistogram(name, h); err != nil {
		panic(err)
	}
}

// Meter is the panic-on-collision convenience for wiring-time registration.
func (r *Registry) Meter(name string, m *metrics.Meter) {
	if err := r.RegisterMeter(name, m); err != nil {
		panic(err)
	}
}

// NewCounter creates, registers, and returns an owned counter.
func (r *Registry) NewCounter(name string) *Counter {
	c := &Counter{}
	r.Counter(name, c.Value)
	return c
}

// NewHistogram creates, registers, and returns an owned histogram.
func (r *Registry) NewHistogram(name string) *metrics.Histogram {
	h := &metrics.Histogram{}
	r.Histogram(name, h)
	return h
}
