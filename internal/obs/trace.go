package obs

import (
	"sync"
	"time"
)

// Event is one trace-ring entry: a component-level transition worth keeping
// (a placement, a failover, a link going down) stamped with virtual time.
type Event struct {
	At  time.Duration `json:"at_ns"`
	Src string        `json:"src"`
	Msg string        `json:"msg"`
}

// TraceRing is a bounded ring of trace events: appends are O(1), the oldest
// entries are overwritten once the ring is full, and Total keeps counting so
// a reader can tell how much history was dropped. A nil ring ignores emits,
// so components may trace unconditionally.
type TraceRing struct {
	mu    sync.Mutex
	buf   []Event
	start int   // index of the oldest retained event
	n     int   // retained events
	total int64 // events ever emitted
}

// NewTraceRing creates a ring retaining up to capacity events (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]Event, capacity)}
}

// Emit appends one event, overwriting the oldest when full. Safe on nil.
func (t *TraceRing) Emit(at time.Duration, src, msg string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	idx := (t.start + t.n) % len(t.buf)
	t.buf[idx] = Event{At: at, Src: src, Msg: msg}
	if t.n < len(t.buf) {
		t.n++
	} else {
		t.start = (t.start + 1) % len(t.buf)
	}
	t.total++
}

// Events returns the retained events, oldest first.
func (t *TraceRing) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, t.n)
	for i := 0; i < t.n; i++ {
		out[i] = t.buf[(t.start+i)%len(t.buf)]
	}
	return out
}

// Total returns how many events were ever emitted (retained or not).
func (t *TraceRing) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Cap returns the ring's retention bound.
func (t *TraceRing) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}
