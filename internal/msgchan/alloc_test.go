package msgchan

import (
	"testing"
	"time"

	"oasis/internal/sim"
)

// TestSendReceiveAllocFree guards the message-channel hot path: once the
// engine's free lists, the cache's line pool, and the channel's slot buffers
// are warm, a steady send/receive stream must allocate (amortized) nothing
// per message. This is what keeps the fig6 sweeps GC-quiet.
func TestSendReceiveAllocFree(t *testing.T) {
	r := newChanRig(t, DefaultConfig())
	payload := make([]byte, 8)
	r.eng.Go("tx", func(p *sim.Proc) {
		for {
			if !r.tx.TrySend(p, payload) {
				p.Sleep(500 * time.Nanosecond)
			}
		}
	})
	r.eng.Go("rx", func(p *sim.Proc) {
		for {
			if _, ok := r.rx.Poll(p); ok {
				p.Sleep(10 * time.Nanosecond)
			}
		}
	})
	const window = 100 * time.Microsecond
	// Warm up: fill the cache, the counter lines, and every free list.
	r.eng.RunUntil(window)
	before := r.rx.Received

	const runs = 5
	allocs := testing.AllocsPerRun(runs, func() {
		r.eng.RunUntil(r.eng.Now() + window)
	})
	// AllocsPerRun adds one untimed warm-up call, so runs+1 windows passed.
	msgs := float64(r.rx.Received-before) / float64(runs+1)
	if msgs < 100 {
		t.Fatalf("only %.0f messages per window; harness broken", msgs)
	}
	perMsg := allocs / msgs
	t.Logf("%.0f msgs/window, %.1f allocs/window, %.4f allocs/msg", msgs, allocs, perMsg)
	if perMsg > 0.01 {
		t.Fatalf("send/receive allocated %.4f objects per message, want ~0", perMsg)
	}
	r.eng.Shutdown()
}
