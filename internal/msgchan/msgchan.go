// Package msgchan implements Oasis's message channel over non-coherent
// shared CXL memory (§3.2.2, §4) — the paper's core mechanism for signaling
// I/O requests and completions between frontend and backend drivers on
// different hosts.
//
// A channel is a single-producer single-consumer circular buffer of
// fixed-size slots (16 B for the network engine, 64 B for the storage
// engine) in shared CXL memory. The most significant bit of each slot is an
// epoch bit toggled every wrap, so the receiver can tell a fresh message
// from a stale one without a separate index. An 8 B consumed counter (on
// its own cache line) flows back from receiver to sender so the sender
// never overwrites unread slots; the receiver updates it in large batches
// and the sender caches it (§4).
//
// The receiver comes in the four designs the paper evaluates in Figure 6:
//
//	DesignBypassCache         ①  invalidate + fence before every poll
//	DesignNaivePrefetch       ②  + software prefetch; invalidate current
//	                             line only after an empty poll
//	DesignInvalidateConsumed  ③  + invalidate each line once all its
//	                             messages are consumed (unblocks prefetch)
//	DesignInvalidatePrefetched ④ + after an empty poll, also invalidate the
//	                             previously prefetched (possibly stale) lines
//
// The performance differences between the designs are not coded in — they
// emerge from the cache model's rules (prefetches ignore resident lines;
// resident lines go stale silently).
package msgchan

import (
	"encoding/binary"
	"fmt"

	"oasis/internal/cache"
	"oasis/internal/cxl"
	"oasis/internal/sim"
)

// Design selects the receiver's coherence strategy (Fig. 6).
type Design int

const (
	// DesignBypassCache is the baseline ①: CLFLUSHOPT + MFENCE before every
	// poll, so every poll pays a full CXL fetch.
	DesignBypassCache Design = iota
	// DesignNaivePrefetch is ②: prefetch ahead on successful polls;
	// invalidate the current line only after an empty poll.
	DesignNaivePrefetch
	// DesignInvalidateConsumed is ③: ② plus invalidating each line as soon
	// as all messages in it are consumed, so prefetching can pull in fresh
	// copies.
	DesignInvalidateConsumed
	// DesignInvalidatePrefetched is ④ (the Oasis design): ③ plus, after an
	// empty poll, invalidating the subsequent prefetched lines, which would
	// otherwise sit stale in the cache and stall the next burst.
	DesignInvalidatePrefetched
	// DesignHWCoherent assumes a CXL 3.0 pool with Back Invalidation (§6):
	// the receiver issues no software invalidations at all — remote writes
	// evict its stale lines in hardware. Requires cxl.Params.HWCoherent.
	DesignHWCoherent
)

// String names the design as in the paper's Figure 6 legend.
func (d Design) String() string {
	switch d {
	case DesignBypassCache:
		return "Bypass CPU Caches"
	case DesignNaivePrefetch:
		return "Naive Prefetching"
	case DesignInvalidateConsumed:
		return "+ Invalidate Consumed"
	case DesignInvalidatePrefetched:
		return "+ Invalidate Prefetched"
	case DesignHWCoherent:
		return "HW Coherent (CXL 3.0 BI)"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// Config sizes a channel. The defaults mirror §3.2.2: 8192 slots, 16 B
// messages, 16-line prefetch depth, counter updates every half capacity.
type Config struct {
	Slots         int    // ring capacity in messages
	MsgSize       int    // 16 or 64 bytes; must divide the line size
	PrefetchDepth int    // lines prefetched ahead (designs ②–④)
	CounterBatch  int    // consumed-counter update batch; 0 = Slots/2
	Design        Design // receiver strategy
	Category      string // CXL traffic accounting label; default "message"
	// MemClass overrides the channel region's latency class (e.g. a
	// DDR-class ring for the local-baseline configurations of Fig. 11).
	MemClass cxl.Class
}

// DefaultConfig returns the paper's network-engine channel configuration.
func DefaultConfig() Config {
	return Config{
		Slots:         8192,
		MsgSize:       16,
		PrefetchDepth: 16,
		Design:        DesignInvalidatePrefetched,
		Category:      "message",
	}
}

func (c Config) withDefaults() Config {
	if c.Slots == 0 {
		c.Slots = 8192
	}
	if c.MsgSize == 0 {
		c.MsgSize = 16
	}
	if c.PrefetchDepth == 0 {
		c.PrefetchDepth = 16
	}
	if c.CounterBatch == 0 {
		c.CounterBatch = c.Slots / 2
	}
	if c.Category == "" {
		c.Category = "message"
	}
	return c
}

func (c Config) validate() error {
	if c.MsgSize <= 0 || cxl.LineSize%c.MsgSize != 0 {
		return fmt.Errorf("msgchan: message size %d must divide the %d-byte line", c.MsgSize, cxl.LineSize)
	}
	if c.Slots <= 0 || c.Slots%(cxl.LineSize/c.MsgSize) != 0 {
		return fmt.Errorf("msgchan: %d slots must fill whole lines", c.Slots)
	}
	if c.CounterBatch < 1 || c.CounterBatch > c.Slots {
		return fmt.Errorf("msgchan: counter batch %d out of range", c.CounterBatch)
	}
	if c.PrefetchDepth < 0 {
		return fmt.Errorf("msgchan: negative prefetch depth")
	}
	return nil
}

const epochBit = 0x80

// Channel is the shared layout: one region holding the slot ring followed by
// the consumed counter on its own line.
type Channel struct {
	cfg    Config
	region cxl.Region
	// Derived layout.
	ringBase     int64 // first slot address
	counterAddr  int64 // 8-byte consumed counter, line-aligned
	slotsPerLine int
}

// RegionBytes returns the pool bytes a channel with this config needs.
func RegionBytes(cfg Config) int64 {
	cfg = cfg.withDefaults()
	return int64(cfg.Slots*cfg.MsgSize) + cxl.LineSize
}

// New lays a channel out in the given region. The region must hold
// RegionBytes(cfg).
func New(region cxl.Region, cfg Config) (*Channel, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if region.Size < RegionBytes(cfg) {
		return nil, fmt.Errorf("msgchan: region %d bytes, need %d", region.Size, RegionBytes(cfg))
	}
	if cfg.Design == DesignHWCoherent && !region.Pool().Params().HWCoherent {
		return nil, fmt.Errorf("msgchan: DesignHWCoherent requires a Back-Invalidation (HWCoherent) pool; " +
			"a receiver that never invalidates would poll stale lines forever on CXL 2.0")
	}
	return &Channel{
		cfg:          cfg,
		region:       region,
		ringBase:     region.Base,
		counterAddr:  region.Base + int64(cfg.Slots*cfg.MsgSize),
		slotsPerLine: cxl.LineSize / cfg.MsgSize,
	}, nil
}

// Config returns the channel's effective configuration.
func (ch *Channel) Config() Config { return ch.cfg }

// PayloadSize returns the usable bytes per message (slot minus header byte).
func (ch *Channel) PayloadSize() int { return ch.cfg.MsgSize - 1 }

// slotAddr maps an absolute message index to its slot address.
func (ch *Channel) slotAddr(idx int64) int64 {
	return ch.ringBase + (idx%int64(ch.cfg.Slots))*int64(ch.cfg.MsgSize)
}

// slotEpoch returns the epoch bit value a fresh message at absolute index
// idx carries. Pool memory starts zeroed, so wrap 0 writes epoch 1.
func (ch *Channel) slotEpoch(idx int64) byte {
	if (idx/int64(ch.cfg.Slots))%2 == 0 {
		return epochBit
	}
	return 0
}

// Sender is the producing endpoint. The sender is the ring's only writer, so
// it keeps a private shadow of the ring contents and pushes whole lines to
// the pool with CLWB — after filling a line under load, or explicitly via
// Flush when the send rate is low (§3.2.2). Stores are modelled at
// store-buffer cost: the read-for-ownership of a line the sender itself
// wrote one wrap ago is hidden on real cores and carries no information.
type Sender struct {
	ch    *Channel
	port  *cxl.Port
	costs cache.Params

	head           int64 // next absolute index to write
	cachedConsumed int64 // sender's view of the receiver's counter
	flushedThrough int64 // messages pushed to the pool (CLWBed)

	shadow []byte // private copy of ring contents

	// Stats.
	Sent           int64
	FullStalls     int64 // sends refused because the ring was full
	CounterReads   int64
	LinesWritten   int64
	PartialFlushes int64
}

// NewSender returns the sending endpoint. costs supplies the CPU-side
// instruction costs (use cache.DefaultParams()).
func NewSender(ch *Channel, port *cxl.Port, costs cache.Params) *Sender {
	return &Sender{
		ch:     ch,
		port:   port,
		costs:  costs,
		shadow: make([]byte, ch.cfg.Slots*ch.cfg.MsgSize),
	}
}

// Free returns how many slots the sender believes are available. It does not
// re-read the consumed counter.
func (s *Sender) Free() int { return s.ch.cfg.Slots - int(s.head-s.cachedConsumed) }

// refreshConsumed re-reads the consumed counter from the pool: CLFLUSHOPT +
// MFENCE + a CXL fetch (§4).
func (s *Sender) refreshConsumed(p *sim.Proc) {
	p.Sleep(s.costs.FlushIssue + s.costs.FenceLatency)
	arrival := s.port.FetchLine(s.ch.counterAddr, s.ch.cfg.Category)
	if wait := arrival - p.Now(); wait > 0 {
		p.Sleep(wait)
	}
	var line [cxl.LineSize]byte
	s.port.CollectLine(s.ch.counterAddr, line[:])
	s.cachedConsumed = int64(binary.LittleEndian.Uint64(line[:8]))
	s.CounterReads++
}

// TrySend writes one message. payload must be at most PayloadSize bytes.
// It returns false (after refreshing the consumed counter) when the ring is
// full; the caller decides whether to retry, back off, or drop.
func (s *Sender) TrySend(p *sim.Proc, payload []byte) bool {
	if len(payload) > s.ch.PayloadSize() {
		panic(fmt.Sprintf("msgchan: payload %d bytes exceeds slot payload %d", len(payload), s.ch.PayloadSize()))
	}
	if int(s.head-s.cachedConsumed) >= s.ch.cfg.Slots {
		s.refreshConsumed(p)
		if int(s.head-s.cachedConsumed) >= s.ch.cfg.Slots {
			s.FullStalls++
			return false
		}
	}
	// Store the message into the shadow ring.
	off := int(s.head%int64(s.ch.cfg.Slots)) * s.ch.cfg.MsgSize
	slot := s.shadow[off : off+s.ch.cfg.MsgSize]
	for i := range slot {
		slot[i] = 0
	}
	slot[0] = s.ch.slotEpoch(s.head)
	copy(slot[1:], payload)
	p.Sleep(s.costs.StoreLatency)
	s.head++
	s.Sent++
	// Filled the last slot of a line: CLWB it.
	if s.head%int64(s.ch.slotsPerLine) == 0 {
		s.writebackThrough(p, s.head)
	}
	return true
}

// Flush pushes any partially-filled line to the pool (CLWB). Drivers call it
// when their send queue drains, which makes messages visible promptly at low
// rates without paying a per-message CLWB under load.
func (s *Sender) Flush(p *sim.Proc) {
	if s.flushedThrough < s.head {
		s.PartialFlushes++
		s.writebackThrough(p, s.head)
	}
}

// writebackThrough CLWBs every line containing messages in
// [flushedThrough, through).
func (s *Sender) writebackThrough(p *sim.Proc, through int64) {
	spl := int64(s.ch.slotsPerLine)
	firstLine := s.flushedThrough / spl
	lastLine := (through - 1) / spl
	for l := firstLine; l <= lastLine; l++ {
		idx := l * spl // first slot of the line
		addr := cxl.LineAddr(s.ch.slotAddr(idx))
		off := int(idx%int64(s.ch.cfg.Slots)) * s.ch.cfg.MsgSize
		p.Sleep(s.costs.WritebackIssue)
		s.port.WriteLine(addr, s.shadow[off:off+cxl.LineSize], s.ch.cfg.Category)
		s.LinesWritten++
	}
	s.flushedThrough = through
}

// Receiver is the consuming endpoint, reading through its host's cache with
// the configured design's coherence strategy.
type Receiver struct {
	ch      *Channel
	cache   *cache.Cache
	slotBuf []byte

	tail              int64 // next absolute index to read
	pendingConsumed   int   // messages consumed since last counter update
	highestPrefetched int64 // highest absolute line index prefetch was issued for

	// Stats.
	Received       int64
	EmptyPolls     int64
	CounterUpdates int64
}

// NewReceiver returns the consuming endpoint reading through c.
func NewReceiver(ch *Channel, c *cache.Cache) *Receiver {
	return &Receiver{ch: ch, cache: c, slotBuf: make([]byte, ch.cfg.MsgSize), highestPrefetched: -1}
}

// absLine returns the absolute line index of absolute message index idx.
func (r *Receiver) absLine(idx int64) int64 { return idx / int64(r.ch.slotsPerLine) }

// lineAddrOf returns the pool address of the line holding message idx.
func (r *Receiver) lineAddrOf(idx int64) int64 {
	return cxl.LineAddr(r.ch.slotAddr(idx))
}

// Poll attempts to consume one message, advancing p's time per the design's
// cost model. On success it returns the payload (PayloadSize bytes, valid
// until the next Poll).
func (r *Receiver) Poll(p *sim.Proc) ([]byte, bool) {
	cfg := r.ch.cfg
	if cfg.Design == DesignBypassCache {
		// ①: invalidate + fence before every poll, then read (always a miss).
		r.cache.FlushLine(p, r.lineAddrOf(r.tail), cfg.Category)
		r.cache.Fence(p)
	}
	slot := r.slotBuf
	r.cache.Read(p, r.ch.slotAddr(r.tail), slot, cfg.Category)
	if slot[0]&epochBit != r.ch.slotEpoch(r.tail) {
		r.emptyPoll(p)
		return nil, false
	}
	// Fresh message.
	msgIdx := r.tail
	r.tail++
	r.Received++
	r.pendingConsumed++
	if r.pendingConsumed >= cfg.CounterBatch {
		r.updateCounter(p)
	}
	switch cfg.Design {
	case DesignNaivePrefetch, DesignInvalidateConsumed, DesignInvalidatePrefetched, DesignHWCoherent:
		r.prefetchAhead(p)
	}
	switch cfg.Design {
	case DesignInvalidateConsumed, DesignInvalidatePrefetched:
		// ③④: drop the line once all its messages are consumed so a future
		// prefetch can bring in the next wrap's contents.
		if r.tail%int64(r.ch.slotsPerLine) == 0 {
			r.cache.FlushLine(p, r.lineAddrOf(msgIdx), cfg.Category)
		}
	}
	return slot[1:], true
}

// emptyPoll applies the design's empty-poll coherence actions.
func (r *Receiver) emptyPoll(p *sim.Proc) {
	r.EmptyPolls++
	cfg := r.ch.cfg
	// Push the consumed counter when going idle so the sender cannot stay
	// blocked on a stale counter forever (the batched update alone could
	// deadlock a ring that drains below one batch).
	if r.pendingConsumed > 0 {
		r.updateCounter(p)
	}
	switch cfg.Design {
	case DesignBypassCache, DesignHWCoherent:
		// ① already invalidated before the read; HW coherence needs nothing.
	case DesignNaivePrefetch, DesignInvalidateConsumed:
		// ②③: invalidate the current line so the next poll refetches.
		r.cache.FlushLine(p, r.lineAddrOf(r.tail), cfg.Category)
		r.cache.Fence(p)
	case DesignInvalidatePrefetched:
		// ④: additionally invalidate the previously prefetched lines, which
		// may hold stale contents that would block prefetching during the
		// next burst.
		cur := r.absLine(r.tail)
		r.cache.FlushLine(p, r.lineAddrOf(r.tail), cfg.Category)
		for l := cur + 1; l <= r.highestPrefetched; l++ {
			idx := l * int64(r.ch.slotsPerLine)
			r.cache.FlushLine(p, r.lineAddrOf(idx), cfg.Category)
		}
		r.highestPrefetched = cur
		r.cache.Fence(p)
	}
}

// prefetchAhead keeps a rolling window of PrefetchDepth lines in flight
// beyond the current line.
func (r *Receiver) prefetchAhead(p *sim.Proc) {
	cur := r.absLine(r.tail)
	from := r.highestPrefetched + 1
	if from < cur+1 {
		from = cur + 1
	}
	to := cur + int64(r.ch.cfg.PrefetchDepth)
	for l := from; l <= to; l++ {
		idx := l * int64(r.ch.slotsPerLine)
		r.cache.Prefetch(p, r.ch.slotAddr(idx), r.ch.cfg.Category)
	}
	if to > r.highestPrefetched {
		r.highestPrefetched = to
	}
}

// updateCounter publishes the receiver's consumed count: store + CLWB on the
// counter's dedicated line (§4).
func (r *Receiver) updateCounter(p *sim.Proc) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(r.tail))
	r.cache.Write(p, r.ch.counterAddr, buf[:], r.ch.cfg.Category)
	r.cache.WritebackLine(p, r.ch.counterAddr, r.ch.cfg.Category)
	r.pendingConsumed = 0
	r.CounterUpdates++
}

// Consumed returns the receiver's total messages consumed.
func (r *Receiver) Consumed() int64 { return r.tail }
