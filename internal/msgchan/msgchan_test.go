package msgchan

import (
	"encoding/binary"
	"testing"
	"time"

	"oasis/internal/cache"
	"oasis/internal/cxl"
	"oasis/internal/metrics"
	"oasis/internal/sim"
)

// chanRig wires a channel between a sender port and a receiver cache on a
// fresh engine/pool.
type chanRig struct {
	eng *sim.Engine
	ch  *Channel
	tx  *Sender
	rx  *Receiver
}

func newChanRig(t *testing.T, cfg Config) *chanRig {
	t.Helper()
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<24, cxl.DefaultParams())
	region, err := pool.Alloc(RegionBytes(cfg))
	if err != nil {
		t.Fatal(err)
	}
	ch, err := New(region, cfg)
	if err != nil {
		t.Fatal(err)
	}
	txPort := pool.AttachPort("sender")
	rxCache := cache.New(eng, pool.AttachPort("receiver"), cache.DefaultParams())
	return &chanRig{
		eng: eng,
		ch:  ch,
		tx:  NewSender(ch, txPort, cache.DefaultParams()),
		rx:  NewReceiver(ch, rxCache),
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<20, cxl.DefaultParams())
	cases := []Config{
		{Slots: 70, MsgSize: 16},                      // slots don't fill whole lines
		{Slots: 128, MsgSize: 48},                     // msg size doesn't divide line
		{Slots: 128, MsgSize: 16, CounterBatch: 1000}, // batch > slots
	}
	for i, cfg := range cases {
		region, _ := pool.Alloc(1 << 16)
		if _, err := New(region, cfg); err == nil {
			t.Errorf("case %d: config %+v accepted, want error", i, cfg)
		}
	}
}

func TestSmallRegionRejected(t *testing.T) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<20, cxl.DefaultParams())
	region, _ := pool.Alloc(64)
	if _, err := New(region, DefaultConfig()); err == nil {
		t.Fatal("expected error for undersized region")
	}
}

// sendReceiveN pushes n sequenced messages and validates in-order delivery.
func sendReceiveN(t *testing.T, cfg Config, n int) (*chanRig, sim.Duration) {
	t.Helper()
	r := newChanRig(t, cfg)
	var finish sim.Duration
	r.eng.Go("sender", func(p *sim.Proc) {
		payload := make([]byte, 8)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(payload, uint64(i))
			for !r.tx.TrySend(p, payload) {
				p.Sleep(100 * time.Nanosecond)
			}
		}
		r.tx.Flush(p)
	})
	r.eng.Go("receiver", func(p *sim.Proc) {
		next := uint64(0)
		for int(next) < n {
			msg, ok := r.rx.Poll(p)
			if !ok {
				p.Sleep(50 * time.Nanosecond)
				continue
			}
			got := binary.LittleEndian.Uint64(msg[:8])
			if got != next {
				t.Errorf("out of order: got %d, want %d", got, next)
				return
			}
			next++
		}
		finish = p.Now()
	})
	r.eng.Run()
	if r.rx.Received != int64(n) {
		t.Fatalf("received %d, want %d", r.rx.Received, n)
	}
	return r, finish
}

func TestInOrderDeliveryAllDesigns(t *testing.T) {
	for _, d := range []Design{DesignBypassCache, DesignNaivePrefetch, DesignInvalidateConsumed, DesignInvalidatePrefetched} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Design = d
			sendReceiveN(t, cfg, 1000)
		})
	}
}

func TestMultipleWraps(t *testing.T) {
	// 256-slot ring, 3000 messages: >11 wraps, exercising epoch flips.
	cfg := DefaultConfig()
	cfg.Slots = 256
	cfg.CounterBatch = 64
	sendReceiveN(t, cfg, 3000)
}

func Test64ByteMessages(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MsgSize = 64 // storage-engine size: one message per line
	r, _ := sendReceiveN(t, cfg, 500)
	if r.ch.PayloadSize() != 63 {
		t.Fatalf("payload size = %d, want 63", r.ch.PayloadSize())
	}
}

func TestEmptyPollReturnsFalse(t *testing.T) {
	r := newChanRig(t, DefaultConfig())
	r.eng.Go("rx", func(p *sim.Proc) {
		if _, ok := r.rx.Poll(p); ok {
			t.Error("poll on empty channel returned a message")
		}
		if r.rx.EmptyPolls != 1 {
			t.Errorf("empty polls = %d", r.rx.EmptyPolls)
		}
	})
	r.eng.Run()
}

func TestMessageInvisibleUntilFlush(t *testing.T) {
	// A message parked in a partial line must not be visible until the
	// sender CLWBs it — the visibility rule the paper's §3.2.2 relies on.
	r := newChanRig(t, DefaultConfig())
	r.eng.Go("test", func(p *sim.Proc) {
		if !r.tx.TrySend(p, []byte{1}) {
			t.Fatal("send failed")
		}
		// One 16 B message: line 0 has 3 empty slots, so no auto-CLWB yet.
		if _, ok := r.rx.Poll(p); ok {
			t.Error("message visible before sender flush")
		}
		r.tx.Flush(p)
		p.Sleep(time.Microsecond)
		// Receiver's cache holds the stale empty line from the failed poll;
		// design ④'s empty poll already invalidated it, so this poll fetches
		// fresh data.
		if _, ok := r.rx.Poll(p); !ok {
			t.Error("message not visible after flush")
		}
	})
	r.eng.Run()
}

func TestRingFullRefusesSend(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slots = 64
	r := newChanRig(t, cfg)
	r.eng.Go("tx", func(p *sim.Proc) {
		sent := 0
		for i := 0; i < 100; i++ {
			if r.tx.TrySend(p, []byte{byte(i)}) {
				sent++
			}
		}
		if sent != 64 {
			t.Errorf("sent %d without a consumer, want exactly ring capacity 64", sent)
		}
		if r.tx.FullStalls == 0 {
			t.Error("expected full-ring stalls")
		}
	})
	r.eng.Run()
}

func TestSenderUnblocksAfterCounterUpdate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Slots = 64
	cfg.CounterBatch = 32
	r := newChanRig(t, cfg)
	total := 200
	received := 0
	r.eng.Go("tx", func(p *sim.Proc) {
		for i := 0; i < total; i++ {
			for !r.tx.TrySend(p, []byte{byte(i)}) {
				p.Sleep(200 * time.Nanosecond)
			}
		}
		r.tx.Flush(p)
	})
	r.eng.Go("rx", func(p *sim.Proc) {
		for received < total {
			if _, ok := r.rx.Poll(p); ok {
				received++
			} else {
				p.Sleep(100 * time.Nanosecond)
			}
		}
	})
	r.eng.Run()
	if received != total {
		t.Fatalf("received %d, want %d", received, total)
	}
	if r.rx.CounterUpdates == 0 || r.tx.CounterReads == 0 {
		t.Fatalf("counter flow never exercised: updates=%d reads=%d",
			r.rx.CounterUpdates, r.tx.CounterReads)
	}
}

func TestIdlePollGoesToCXLEachTime(t *testing.T) {
	// Table 3's idle row: a busy-polling receiver on an idle channel must
	// re-fetch from CXL every iteration (~0.2 GB/s at ~3-4 MHz poll rate),
	// because each empty poll invalidates the line it just read.
	r := newChanRig(t, DefaultConfig())
	rxPort := r.rx.cache.Port()
	r.eng.Go("rx", func(p *sim.Proc) {
		for i := 0; i < 1000; i++ {
			if _, ok := r.rx.Poll(p); ok {
				t.Error("unexpected message")
			}
		}
	})
	end := r.eng.Run()
	bytes := rxPort.ReadMeter().Total()
	if bytes < 900*64 {
		t.Fatalf("idle polling fetched %d bytes; every poll should fetch a line", bytes)
	}
	rate := metrics.GBps(float64(bytes) / end.Seconds())
	if rate < 0.05 || rate > 1.0 {
		t.Fatalf("idle poll bandwidth = %.2f GB/s, want order 0.2 GB/s", rate)
	}
}

func TestOneWayIdleLatency(t *testing.T) {
	// Fig. 6 at low load: idle one-way latency ≈ 2× the CXL access latency
	// (one write + one read), ~0.6 µs on the paper's hardware. With our
	// 205 ns loads, expect roughly 0.4–0.7 µs.
	cfg := DefaultConfig()
	r := newChanRig(t, cfg)
	var hist metrics.Histogram
	n := 100
	gap := 50 * time.Microsecond
	r.eng.Go("tx", func(p *sim.Proc) {
		payload := make([]byte, 8)
		for i := 0; i < n; i++ {
			p.Sleep(gap)
			binary.LittleEndian.PutUint64(payload, uint64(p.Now()))
			if !r.tx.TrySend(p, payload) {
				t.Error("send failed")
				return
			}
			r.tx.Flush(p) // low rate: push each message promptly
		}
	})
	got := 0
	r.eng.Go("rx", func(p *sim.Proc) {
		for got < n {
			msg, ok := r.rx.Poll(p)
			if !ok {
				continue // busy poll
			}
			sent := sim.Duration(binary.LittleEndian.Uint64(msg[:8]))
			hist.Record(p.Now() - sent)
			got++
		}
	})
	r.eng.Run()
	med := hist.Percentile(50)
	if med < 200*time.Nanosecond || med > 900*time.Nanosecond {
		t.Fatalf("idle one-way latency = %v, want ~0.4-0.7µs", med)
	}
}

// measureThroughput saturates the channel for a window and returns MOp/s.
func measureThroughput(t *testing.T, design Design, window sim.Duration) float64 {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Design = design
	r := newChanRig(t, cfg)
	procCost := 10 * time.Nanosecond
	r.eng.Go("tx", func(p *sim.Proc) {
		payload := make([]byte, 8)
		for p.Now() < window {
			if !r.tx.TrySend(p, payload) {
				p.Sleep(500 * time.Nanosecond)
			}
		}
		r.tx.Flush(p)
	})
	r.eng.Go("rx", func(p *sim.Proc) {
		for p.Now() < window {
			if _, ok := r.rx.Poll(p); ok {
				p.Sleep(procCost)
			}
		}
	})
	r.eng.RunUntil(window)
	r.eng.Shutdown()
	return float64(r.rx.Received) / window.Seconds() / 1e6
}

func TestFigure6DesignOrdering(t *testing.T) {
	// The paper's Figure 6 headline: ① ≈ 3 MOp/s, ② ≈ 3× that, ③ an order
	// of magnitude more. ④ matches ③ at saturation. Exact values depend on
	// the cost model; the ordering and rough ratios must not.
	window := 2 * time.Millisecond
	bypass := measureThroughput(t, DesignBypassCache, window)
	naive := measureThroughput(t, DesignNaivePrefetch, window)
	invCons := measureThroughput(t, DesignInvalidateConsumed, window)
	invPref := measureThroughput(t, DesignInvalidatePrefetched, window)
	t.Logf("throughput MOp/s: bypass=%.1f naive=%.1f +invConsumed=%.1f +invPrefetched=%.1f",
		bypass, naive, invCons, invPref)
	if bypass < 1 || bypass > 8 {
		t.Errorf("bypass = %.1f MOp/s, want a few MOp/s", bypass)
	}
	if naive < 1.5*bypass {
		t.Errorf("naive prefetching (%.1f) should clearly beat bypass (%.1f)", naive, bypass)
	}
	if invCons < 3*naive {
		t.Errorf("+invalidate consumed (%.1f) should be several × naive (%.1f)", invCons, naive)
	}
	if invCons < 10*bypass {
		t.Errorf("+invalidate consumed (%.1f) should be ~order of magnitude over bypass (%.1f)", invCons, bypass)
	}
	if invPref < 0.8*invCons {
		t.Errorf("+invalidate prefetched (%.1f) should sustain ③'s saturated throughput (%.1f)", invPref, invCons)
	}
	if invPref < 14 {
		t.Errorf("final design = %.1f MOp/s, must exceed the 14 MOp/s target (gray line in Fig. 6)", invPref)
	}
}

// measureLatencyAt drives the channel open-loop at a fixed rate and returns
// the median one-way latency.
func measureLatencyAt(t *testing.T, design Design, mops float64, window sim.Duration) time.Duration {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Design = design
	r := newChanRig(t, cfg)
	interval := sim.Duration(float64(time.Second) / (mops * 1e6))
	var hist metrics.Histogram
	r.eng.Go("tx", func(p *sim.Proc) {
		payload := make([]byte, 8)
		next := sim.Duration(0)
		for p.Now() < window {
			if wait := next - p.Now(); wait > 0 {
				r.tx.Flush(p) // queue drained: push the partial line
				p.Sleep(wait)
			}
			binary.LittleEndian.PutUint64(payload, uint64(p.Now()))
			if !r.tx.TrySend(p, payload) {
				p.Sleep(interval)
				continue
			}
			next += interval
			if next < p.Now() {
				next = p.Now()
			}
		}
		r.tx.Flush(p)
	})
	r.eng.Go("rx", func(p *sim.Proc) {
		for p.Now() < window {
			msg, ok := r.rx.Poll(p)
			if !ok {
				continue
			}
			sent := sim.Duration(binary.LittleEndian.Uint64(msg[:8]))
			hist.Record(p.Now() - sent)
			p.Sleep(10 * time.Nanosecond)
		}
	})
	r.eng.RunUntil(window)
	r.eng.Shutdown()
	if hist.Count() == 0 {
		t.Fatalf("%v at %.1f MOp/s: no messages delivered", design, mops)
	}
	return hist.Percentile(50)
}

func TestFigure6LatencyHump(t *testing.T) {
	// At the 14 MOp/s target rate, design ③ suffers from stale prefetched
	// lines (the paper's 1.2 µs hump) while design ④ stays near the idle
	// latency (~0.6 µs). Require a clear separation.
	window := 2 * time.Millisecond
	lat3 := measureLatencyAt(t, DesignInvalidateConsumed, 14, window)
	lat4 := measureLatencyAt(t, DesignInvalidatePrefetched, 14, window)
	t.Logf("median latency at 14 MOp/s: ③=%v ④=%v", lat3, lat4)
	if lat4 >= lat3 {
		t.Errorf("④ (%v) must beat ③ (%v) at moderate load", lat4, lat3)
	}
	if lat4 > time.Microsecond {
		t.Errorf("④ latency %v too high; paper reports ~0.6µs at target load", lat4)
	}
}

func TestThroughputDeterminism(t *testing.T) {
	a := measureThroughput(t, DesignInvalidatePrefetched, time.Millisecond)
	b := measureThroughput(t, DesignInvalidatePrefetched, time.Millisecond)
	if a != b {
		t.Fatalf("nondeterministic throughput: %v vs %v", a, b)
	}
}

func TestPayloadTooLargePanics(t *testing.T) {
	r := newChanRig(t, DefaultConfig())
	panicked := false
	r.eng.Go("tx", func(p *sim.Proc) {
		defer func() { panicked = recover() != nil }()
		r.tx.TrySend(p, make([]byte, 16))
	})
	r.eng.Run()
	if !panicked {
		t.Fatal("expected panic for oversized payload")
	}
}

func TestHWCoherentDesignRequiresCoherentPool(t *testing.T) {
	eng := sim.New()
	pool := cxl.NewPool(eng, 1<<20, cxl.DefaultParams()) // CXL 2.0: not coherent
	cfg := DefaultConfig()
	cfg.Design = DesignHWCoherent
	region, _ := pool.Alloc(RegionBytes(cfg))
	if _, err := New(region, cfg); err == nil {
		t.Fatal("HW-coherent receiver accepted on a non-coherent pool")
	}
}
