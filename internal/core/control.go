package core

import (
	"encoding/binary"

	"oasis/internal/netstack"
)

// The shared control plane (§3.5): every device engine's backend reports
// telemetry and link events to the pod-wide allocator, and the allocator
// commands failover, migration, and placement, over the same 15-byte
// message payloads the data planes use. Engines extend the runtime with
// typed data-plane payloads (the network engine's 15 B packet messages, the
// storage engine's 63 B NVMe mirrors) but speak one control protocol, so
// the allocator manages NICs and SSDs — and future device kinds — through a
// single path.

// DeviceKind identifies which engine a control message concerns.
type DeviceKind uint8

const (
	// DeviceNIC is the network engine (§3.3).
	DeviceNIC DeviceKind = 1
	// DeviceSSD is the storage engine (§3.4).
	DeviceSSD DeviceKind = 2
)

// String names the device kind for stats and logs.
func (k DeviceKind) String() string {
	switch k {
	case DeviceNIC:
		return "nic"
	case DeviceSSD:
		return "ssd"
	}
	return "dev"
}

// Control opcodes. They share the opcode byte with each engine's data plane
// (which uses 1..15), so a driver multiplexing data and control on one link
// can dispatch on the opcode alone.
const (
	CtlLinkDown     = 16 // backend -> allocator: device lost link
	CtlTelemetry    = 17 // backend -> allocator: periodic load record (§3.5: 100 ms)
	CtlFailover     = 18 // allocator -> frontend: reroute from failed device to backup
	CtlBorrowMAC    = 19 // allocator -> net backend: impersonate failed NIC's MAC
	CtlMigrate      = 20 // allocator -> frontend: gracefully move instance to device
	CtlLinkUp       = 21 // backend -> allocator: device link restored
	CtlAllocRequest = 22 // frontend -> allocator: pick devices for a new instance
	CtlAssign       = 23 // allocator -> frontend: primary (Dev) + backup (Aux)
)

// ControlMsg is a decoded control-plane message. Dev and Aux are pod-wide
// device ids of Kind's namespace; telemetry carries a 48-bit byte count for
// the last window plus the device's queue depth.
type ControlMsg struct {
	Op   byte
	Kind DeviceKind
	Dev  uint16
	Aux  uint16 // second device id (failover backup, assign backup)
	IP   netstack.IP

	// Epoch fences commands against zombies (§3.3.3's lease analogue for
	// storage): each failover bumps the failed device's epoch, frontends
	// stamp subsequent requests with it, and completions carrying an older
	// epoch are rejected. Zero for commands that predate fencing.
	Epoch uint16

	// Telemetry fields.
	Load   uint64 // bytes served in the last window (40-bit on the wire)
	LinkUp bool
	// AER is the per-kind health metric slot (§3.5 "health metrics"): NIC
	// backends report uncorrectable PCIe AER errors in the window, storage
	// backends their mean request service latency in µs — the scalar each
	// device class is best judged by.
	AER        uint16
	Errs       uint8  // soft error/drop events in the window (rx drops, carrier errors)
	QueueDepth uint16 // device queue occupancy at the window close
}

const maxLoad40 = (1 << 40) - 1

// EncodeControl packs m into a 15-byte channel payload (reusing buf).
//
// Layout after the opcode byte: kind (1), dev (2), then either
// aux (2) + ip (4) + epoch (2) for commands, or load (5) + errs (1) +
// linkup (1) + aer (2) + queue depth (2) for telemetry.
func EncodeControl(buf []byte, m ControlMsg) []byte {
	buf = buf[:0]
	buf = append(buf, m.Op)
	var b [14]byte
	b[0] = byte(m.Kind)
	binary.LittleEndian.PutUint16(b[1:3], m.Dev)
	if m.Op == CtlTelemetry {
		load := m.Load
		if load > maxLoad40 {
			load = maxLoad40
		}
		var l [8]byte
		binary.LittleEndian.PutUint64(l[:], load)
		copy(b[3:8], l[:5])
		b[8] = m.Errs
		if m.LinkUp {
			b[9] = 1
		}
		binary.LittleEndian.PutUint16(b[10:12], m.AER)
		binary.LittleEndian.PutUint16(b[12:14], m.QueueDepth)
	} else {
		binary.LittleEndian.PutUint16(b[3:5], m.Aux)
		binary.LittleEndian.PutUint32(b[5:9], uint32(m.IP))
		binary.LittleEndian.PutUint16(b[9:11], m.Epoch)
	}
	return append(buf, b[:]...)
}

// DecodeControl unpacks a control message from a channel payload.
func DecodeControl(payload []byte) ControlMsg {
	var m ControlMsg
	m.Op = payload[0]
	b := payload[1:]
	m.Kind = DeviceKind(b[0])
	m.Dev = binary.LittleEndian.Uint16(b[1:3])
	if m.Op == CtlTelemetry {
		var l [8]byte
		copy(l[:5], b[3:8])
		m.Load = binary.LittleEndian.Uint64(l[:])
		m.Errs = b[8]
		m.LinkUp = b[9] != 0
		m.AER = binary.LittleEndian.Uint16(b[10:12])
		m.QueueDepth = binary.LittleEndian.Uint16(b[12:14])
	} else {
		m.Aux = binary.LittleEndian.Uint16(b[3:5])
		m.IP = netstack.IP(binary.LittleEndian.Uint32(b[5:9]))
		m.Epoch = binary.LittleEndian.Uint16(b[9:11])
	}
	return m
}

// IsControlOp reports whether an opcode byte belongs to the shared control
// plane rather than an engine's data plane.
func IsControlOp(op byte) bool { return op >= CtlLinkDown && op <= CtlAssign }
