package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"oasis/internal/sim"
)

// runCrossPingPong wires a LinkSet on each of two partitions through a
// CrossEnd duplex channel and runs a request/response exchange, returning
// a rendered transcript plus the responder-side latency histogram count.
func runCrossPingPong(t *testing.T) (string, int64) {
	t.Helper()
	g := sim.NewGroup()
	a, b := g.AddPartition(), g.AddPartition()
	const lat = 700 * time.Nanosecond
	aEnd, bEnd := NewCrossChannel(g, a, b, lat)

	aLinks, bLinks := NewLinkSet(DefaultPendingLimit), NewLinkSet(DefaultPendingLimit)
	aLinks.Add(1, aEnd)
	bLinks.Add(1, bEnd)

	var out []string
	a.Go("requester", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			p.Sleep(time.Duration(200+i*110) * time.Nanosecond)
			msg := []byte(fmt.Sprintf("req-%d", i))
			if !aLinks.Get(1).Send(p, msg) {
				t.Error("cross send reported full")
				return
			}
			out = append(out, fmt.Sprintf("%8d a sent req-%d", p.Now(), i))
		}
	})
	a.Go("reply-poller", func(p *sim.Proc) {
		for n := 0; n < 8; {
			aLinks.PollEach(p, 4, func(p *sim.Proc, l *Link, payload []byte) {
				out = append(out, fmt.Sprintf("%8d a got %s", p.Now(), payload))
				n++
			})
			p.Sleep(300 * time.Nanosecond)
		}
	})
	b.Go("responder", func(p *sim.Proc) {
		for n := 0; n < 8; {
			bLinks.PollEach(p, 4, func(p *sim.Proc, l *Link, payload []byte) {
				bLinks.Get(1).Send(p, append([]byte("ack-"), payload...))
				n++
			})
			p.Sleep(250 * time.Nanosecond)
		}
	})
	g.RunUntil(60 * time.Microsecond)
	g.Shutdown()

	hist := bEnd.InLatency()
	if hist == nil {
		t.Fatal("CrossEnd.InLatency returned nil")
	}
	return fmt.Sprint(out), hist.Count()
}

// A cross-partition channel must deliver every message, in FIFO order, no
// earlier than the declared latency, and byte-identically across reruns.
func TestCrossChannelPingPong(t *testing.T) {
	first, n := runCrossPingPong(t)
	if n != 8 {
		t.Fatalf("responder drained %d messages, want 8", n)
	}
	for i := 0; i < 8; i++ {
		want := fmt.Sprintf("a got ack-req-%d", i)
		if !strings.Contains(first, want) {
			t.Fatalf("transcript missing %q:\n%s", want, first)
		}
	}
	second, _ := runCrossPingPong(t)
	if first != second {
		t.Fatalf("cross-channel exchange not deterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
}

// The latency histogram must never record a delivery faster than the
// channel's declared one-way latency — that would mean an event jumped a
// window boundary.
func TestCrossChannelLatencyFloor(t *testing.T) {
	g := sim.NewGroup()
	a, b := g.AddPartition(), g.AddPartition()
	const lat = 1 * time.Microsecond
	aEnd, bEnd := NewCrossChannel(g, a, b, lat)
	const n = 5
	a.Go("sender", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			aEnd.Send(p, []byte{byte(i)})
			p.Sleep(777 * time.Nanosecond)
		}
	})
	got := 0
	b.Go("receiver", func(p *sim.Proc) {
		for got < n {
			if _, ok := bEnd.Poll(p); ok {
				got++
				continue
			}
			p.Sleep(100 * time.Nanosecond)
		}
	})
	g.RunUntil(50 * time.Microsecond)
	g.Shutdown()
	if got != n {
		t.Fatalf("received %d/%d messages", got, n)
	}
	h := bEnd.InLatency()
	if h.Count() != n {
		t.Fatalf("histogram has %d samples, want %d", h.Count(), n)
	}
	if min := h.Min(); min < lat {
		t.Fatalf("fastest delivery %v beats the declared latency %v", min, lat)
	}
}
