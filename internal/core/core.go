// Package core implements Oasis's common datapath over non-coherent shared
// CXL memory (§3.2): I/O buffer areas that CPUs write and devices DMA, the
// coherence discipline that makes that safe without hardware coherence, and
// the duplex message-channel links drivers signal over.
//
// The two rules from §3.2.1, enforced here and relied on everywhere above:
//
//  1. When an I/O buffer passes from a frontend to a backend on another
//     host, every line of it must be written back to CXL memory first
//     (WritebackRange), and a receiving host must invalidate before — or,
//     for RX buffers, after — reading (InvalidateRange).
//  2. The backend driver never brings I/O buffers into its CPU cache, so
//     device DMA never snoops dirty lines and the backend needs no
//     per-buffer coherence work at all.
package core

import (
	"fmt"

	"oasis/internal/cache"
	"oasis/internal/cxl"
	"oasis/internal/host"
	"oasis/internal/metrics"
	"oasis/internal/msgchan"
	"oasis/internal/sim"
)

// BufferArea is a pool-resident region divided into fixed-size I/O buffers:
// a per-instance TX buffer area or a per-NIC RX buffer area (§3.3.1).
type BufferArea struct {
	region  cxl.Region
	bufSize int
	free    []int64

	// Stats.
	Allocs, Frees int64
	AllocFails    int64
}

// NewBufferArea divides region into bufSize-byte buffers. bufSize must be a
// positive multiple of the cache line size so buffers never share lines
// (line sharing would let one buffer's writeback clobber another's bytes).
func NewBufferArea(region cxl.Region, bufSize int) (*BufferArea, error) {
	if bufSize <= 0 || bufSize%cxl.LineSize != 0 {
		return nil, fmt.Errorf("core: buffer size %d must be a positive multiple of %d", bufSize, cxl.LineSize)
	}
	n := region.Size / int64(bufSize)
	if n == 0 {
		return nil, fmt.Errorf("core: region of %d bytes holds no %d-byte buffers", region.Size, bufSize)
	}
	a := &BufferArea{region: region, bufSize: bufSize, free: make([]int64, 0, n)}
	// LIFO free list, lowest addresses on top for determinism.
	for i := n - 1; i >= 0; i-- {
		a.free = append(a.free, region.Base+i*int64(bufSize))
	}
	return a, nil
}

// BufSize returns the per-buffer capacity.
func (a *BufferArea) BufSize() int { return a.bufSize }

// Capacity returns the total number of buffers.
func (a *BufferArea) Capacity() int { return int(a.region.Size / int64(a.bufSize)) }

// FreeCount returns the buffers currently available.
func (a *BufferArea) FreeCount() int { return len(a.free) }

// Alloc takes a buffer, returning its pool address.
func (a *BufferArea) Alloc() (int64, bool) {
	if len(a.free) == 0 {
		a.AllocFails++
		return 0, false
	}
	addr := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.Allocs++
	return addr, true
}

// Free returns a buffer to the area. Freeing an address the area does not
// own is a driver bug and panics.
func (a *BufferArea) Free(addr int64) {
	if !a.Owns(addr) {
		panic(fmt.Sprintf("core: freeing buffer %#x outside area [%#x,%#x)", addr, a.region.Base, a.region.Base+a.region.Size))
	}
	a.free = append(a.free, addr)
	a.Frees++
}

// Owns reports whether addr is a valid buffer base inside this area.
func (a *BufferArea) Owns(addr int64) bool {
	off := addr - a.region.Base
	return off >= 0 && off < a.region.Size && off%int64(a.bufSize) == 0
}

// WritebackRange CLWBs every line of [addr, addr+n) — the frontend-side step
// that makes a just-written I/O buffer visible to devices and other hosts.
func WritebackRange(p *sim.Proc, c *cache.Cache, addr int64, n int, category string) {
	if n <= 0 {
		return
	}
	last := cxl.LineAddr(addr + int64(n) - 1)
	for a := cxl.LineAddr(addr); a <= last; a += cxl.LineSize {
		c.WritebackLine(p, a, category)
	}
	c.Fence(p)
}

// InvalidateRange CLFLUSHOPTs every line of [addr, addr+n) — the step that
// guarantees the next CPU read of a recycled buffer comes from the pool,
// not from a stale cached copy.
func InvalidateRange(p *sim.Proc, c *cache.Cache, addr int64, n int, category string) {
	if n <= 0 {
		return
	}
	last := cxl.LineAddr(addr + int64(n) - 1)
	for a := cxl.LineAddr(addr); a <= last; a += cxl.LineSize {
		c.FlushLine(p, a, category)
	}
	c.Fence(p)
}

// ChanLatency measures one channel direction's message delivery latency —
// the Fig. 6 metric: virtual time from a successful TrySend (which includes
// any line-batching delay downstream) to the receiver's Poll that drains the
// message. Rings are FIFO and lossless once a send is accepted, so the
// sender's stamp queue pairs stamps with deliveries in order; its length is
// bounded by the ring's in-flight capacity. All samples land in Hist.
type ChanLatency struct {
	stamps []sim.Duration
	head   int
	Hist   metrics.Histogram
}

func (cl *ChanLatency) stamp(at sim.Duration) {
	if cl == nil {
		return
	}
	cl.stamps = append(cl.stamps, at)
}

func (cl *ChanLatency) observe(at sim.Duration) {
	if cl == nil || cl.head >= len(cl.stamps) {
		return
	}
	sent := cl.stamps[cl.head]
	cl.head++
	if cl.head == len(cl.stamps) {
		cl.stamps = cl.stamps[:0]
		cl.head = 0
	}
	cl.Hist.Record(at - sent)
}

// LinkEnd is one driver's end of a duplex message link: a sender toward the
// peer and a receiver from the peer, plus the latency trackers for both
// directions (shared with the peer end by NewDuplexLink; nil trackers on
// hand-built ends simply record nothing).
type LinkEnd struct {
	Out *msgchan.Sender
	In  *msgchan.Receiver

	outLat *ChanLatency // stamps accepted sends (the peer's inbound direction)
	inLat  *ChanLatency // resolves stamps on Poll (this end's inbound direction)
}

// InLatency returns the histogram of inbound delivery latencies — the
// virtual time messages spent in the channel before this end polled them.
// Nil if the end was built without trackers.
func (l *LinkEnd) InLatency() *metrics.Histogram {
	if l.inLat == nil {
		return nil
	}
	return &l.inLat.Hist
}

// Poll drains one inbound message if available.
func (l *LinkEnd) Poll(p *sim.Proc) ([]byte, bool) {
	payload, ok := l.In.Poll(p)
	if ok {
		l.inLat.observe(p.Now())
	}
	return payload, ok
}

// Send transmits one message, returning false if the ring is full.
func (l *LinkEnd) Send(p *sim.Proc, payload []byte) bool {
	if !l.Out.TrySend(p, payload) {
		return false
	}
	l.outLat.stamp(p.Now())
	return true
}

// Flush pushes any partially-filled sender line.
func (l *LinkEnd) Flush(p *sim.Proc) { l.Out.Flush(p) }

// NewDuplexLink allocates a pair of message channels in the pool between
// hosts a and b (§3.2.2: one channel per direction per driver pair) and
// returns each side's end.
func NewDuplexLink(pool *cxl.Pool, a, b *host.Host, cfg msgchan.Config) (aEnd, bEnd *LinkEnd, err error) {
	if a.Cache == nil || b.Cache == nil {
		return nil, nil, fmt.Errorf("core: both link hosts must be in the pod")
	}
	mk := func(tx, rx *host.Host) (*msgchan.Sender, *msgchan.Receiver, error) {
		region, err := pool.AllocClass(msgchan.RegionBytes(cfg), cfg.MemClass)
		if err != nil {
			return nil, nil, err
		}
		ch, err := msgchan.New(region, cfg)
		if err != nil {
			return nil, nil, err
		}
		return msgchan.NewSender(ch, tx.CXLPort, cache.DefaultParams()), msgchan.NewReceiver(ch, rx.Cache), nil
	}
	abS, abR, err := mk(a, b)
	if err != nil {
		return nil, nil, err
	}
	baS, baR, err := mk(b, a)
	if err != nil {
		return nil, nil, err
	}
	abLat, baLat := &ChanLatency{}, &ChanLatency{}
	return &LinkEnd{Out: abS, In: baR, outLat: abLat, inLat: baLat},
		&LinkEnd{Out: baS, In: abR, outLat: baLat, inLat: abLat}, nil
}
