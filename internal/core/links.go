package core

import (
	"fmt"

	"oasis/internal/metrics"
	"oasis/internal/sim"
)

// LinkStats counts one link's (or a whole LinkSet's) message traffic and
// backpressure events.
type LinkStats struct {
	Sent     int64 // messages accepted by the ring
	Received int64 // messages polled from the peer
	SendFull int64 // sends that found the ring full
	Deferred int64 // messages parked on the pending queue
	Redrives int64 // pending messages re-sent successfully
	Overflow int64 // deferrals beyond the pending bound (backlogged link)

	PendingPeak int // high-water mark of the pending queue
}

func (s *LinkStats) add(o LinkStats) {
	s.Sent += o.Sent
	s.Received += o.Received
	s.SendFull += o.SendFull
	s.Deferred += o.Deferred
	s.Redrives += o.Redrives
	s.Overflow += o.Overflow
	if o.PendingPeak > s.PendingPeak {
		s.PendingPeak = o.PendingPeak
	}
}

// ChanEnd is one driver's end of a duplex message channel: what LinkSet
// needs from an endpoint. *LinkEnd (a CXL message-channel ring pair) is the
// canonical implementation; *CrossEnd carries the same traffic across a
// partition boundary in a partitioned simulation (see cross.go).
type ChanEnd interface {
	// Send transmits one message, returning false if the channel is full.
	Send(p *sim.Proc, payload []byte) bool
	// Poll drains one inbound message if available.
	Poll(p *sim.Proc) ([]byte, bool)
	// Flush pushes any partially-batched sender state.
	Flush(p *sim.Proc)
	// InLatency returns the inbound delivery-latency histogram, or nil.
	InLatency() *metrics.Histogram
}

// Link is one registered peer in a LinkSet: the duplex channel end plus the
// bounded pending queue for messages that hit a full ring. Meta carries
// engine-specific peer state (a NIC's MAC, a host id) without the engine
// keeping its own table.
type Link struct {
	Peer uint32 // host or device id, per the owning engine's keying
	End  ChanEnd
	Meta any

	pending [][]byte
	set     *LinkSet

	Stats LinkStats
}

// Send transmits one message, returning false if the ring is full.
func (l *Link) Send(p *sim.Proc, payload []byte) bool {
	if !l.End.Send(p, payload) {
		l.Stats.SendFull++
		return false
	}
	l.Stats.Sent++
	return true
}

// SendOrQueue transmits one message, parking a copy on the link's pending
// queue if the ring is full. Queued messages must not be dropped (they carry
// buffer ownership and completions); DrainPending redrives them in FIFO
// order before new work. Beyond the set's pending bound the message is still
// queued — losing it would leak a buffer — but the overflow is counted and
// Backlogged turns true so the engine can stop accepting new work.
func (l *Link) SendOrQueue(p *sim.Proc, payload []byte) {
	if len(l.pending) == 0 && l.Send(p, payload) {
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	l.pending = append(l.pending, cp)
	l.Stats.Deferred++
	if len(l.pending) > l.Stats.PendingPeak {
		l.Stats.PendingPeak = len(l.pending)
	}
	if l.set != nil && l.set.pendingLimit > 0 && len(l.pending) > l.set.pendingLimit {
		l.Stats.Overflow++
	}
}

// Backlogged reports whether the pending queue exceeds the set's bound —
// the engine-visible backpressure signal.
func (l *Link) Backlogged() bool {
	return l.set != nil && l.set.pendingLimit > 0 && len(l.pending) > l.set.pendingLimit
}

// PendingLen returns the number of parked messages.
func (l *Link) PendingLen() int { return len(l.pending) }

// Flush pushes any partially-filled sender line.
func (l *Link) Flush(p *sim.Proc) { l.End.Flush(p) }

// LinkSet is a driver's registry of peer links, keyed by host or device id,
// iterated in insertion order for determinism (§3.2: one duplex channel per
// driver pair). It owns the shared pending bound for backpressure
// accounting.
type LinkSet struct {
	byPeer       map[uint32]*Link
	order        []*Link
	pendingLimit int
}

// DefaultPendingLimit bounds each link's pending queue before the link
// reports backpressure: one ring's worth of messages.
const DefaultPendingLimit = 64

// NewLinkSet creates an empty registry. pendingLimit bounds each link's
// pending queue before Backlogged trips; <= 0 means unbounded (no
// backpressure signal, matching an unbounded park list).
func NewLinkSet(pendingLimit int) *LinkSet {
	return &LinkSet{byPeer: make(map[uint32]*Link), pendingLimit: pendingLimit}
}

// Add registers a peer's link end. Duplicate peers are a wiring bug.
func (s *LinkSet) Add(peer uint32, end ChanEnd) *Link {
	if _, dup := s.byPeer[peer]; dup {
		panic(fmt.Sprintf("core: duplicate link for peer %d", peer))
	}
	l := &Link{Peer: peer, End: end, set: s}
	s.byPeer[peer] = l
	s.order = append(s.order, l)
	return l
}

// Get returns the link for a peer, or nil.
func (s *LinkSet) Get(peer uint32) *Link { return s.byPeer[peer] }

// Len returns the number of registered peers.
func (s *LinkSet) Len() int { return len(s.order) }

// All returns the links in insertion order. The slice is the registry's
// own; callers must not mutate it.
func (s *LinkSet) All() []*Link { return s.order }

// PollEach drains up to burst inbound messages per link, invoking handle
// for each, and returns the number handled.
func (s *LinkSet) PollEach(p *sim.Proc, burst int, handle func(p *sim.Proc, l *Link, payload []byte)) int {
	progress := 0
	for _, l := range s.order {
		for i := 0; i < burst; i++ {
			payload, ok := l.End.Poll(p)
			if !ok {
				break
			}
			l.Stats.Received++
			handle(p, l, payload)
			progress++
		}
	}
	return progress
}

// PendingCount returns the total parked messages across all links — counted
// as loop progress so a driver with undelivered completions never backs off.
func (s *LinkSet) PendingCount() int {
	n := 0
	for _, l := range s.order {
		n += len(l.pending)
	}
	return n
}

// DrainPending redrives parked messages in FIFO order per link, stopping at
// the first full ring, and returns how many were re-sent.
func (s *LinkSet) DrainPending(p *sim.Proc) int {
	drained := 0
	for _, l := range s.order {
		i := 0
		for ; i < len(l.pending); i++ {
			if !l.End.Send(p, l.pending[i]) {
				l.Stats.SendFull++
				break
			}
			l.Stats.Sent++
			l.Stats.Redrives++
			drained++
		}
		if i > 0 {
			l.pending = append(l.pending[:0], l.pending[i:]...)
		}
	}
	return drained
}

// FlushAll pushes every link's partially-filled sender line (§3.2.2: flush
// promptly at low rates so batched counters don't strand messages).
func (s *LinkSet) FlushAll(p *sim.Proc) {
	for _, l := range s.order {
		l.End.Flush(p)
	}
}

// Stats aggregates all links' counters.
func (s *LinkSet) Stats() LinkStats {
	var agg LinkStats
	for _, l := range s.order {
		agg.add(l.Stats)
	}
	return agg
}
